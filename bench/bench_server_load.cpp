// Server load: the Southampton service core under ingest + client queries.
//
// PR "control-plane hardening" acceptance bench: eight independent
// 130-day seasons of a 64-station server, each mixing daily ingest
// (uploads, state reports, update beacons, weekly compaction, a bounded
// command queue kept deliberately over-full) with a client query stream —
// directory, per-station stats, group convergence — dispatched through
// handle_query as real encoded wires. Across the eight trials the server
// answers over a million queries, including corrupted wires (refused, not
// trusted) and future-dated state reports from an rtc_drift window (ignored
// by the freshness fold, not allowed to pin the group).
//
// Every trial runs on the MonteCarloRunner (GW_BENCH_THREADS pins the
// pool); all exported numbers are derived from simulated traffic, so
// BENCH_server_load.json is byte-identical at any thread count —
// scripts/check.sh diffs 1 thread vs default. Wall-clock throughput goes
// to stdout only.
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "fault/fault.h"
#include "proto/messages.h"
#include "runner/monte_carlo_runner.h"
#include "station/southampton.h"
#include "util/strings.h"
#include "util/units.h"

namespace gw {
namespace {

using namespace util::literals;

constexpr std::size_t kTrials = 8;
constexpr int kDays = 130;
constexpr int kStations = 64;
constexpr int kQueriesPerDay = 1000;  // 8 * 130 * 1000 > 1e6 total
constexpr std::size_t kQueueLimit = 4;

struct LoadPoint {
  std::uint64_t queries_issued = 0;
  std::uint64_t queries_served = 0;
  std::uint64_t queries_refused = 0;
  std::uint64_t ingest_rejected = 0;
  std::uint64_t future_reports_ignored = 0;
  std::uint64_t files_received = 0;
  std::uint64_t compactions = 0;
  std::int64_t stats_bytes_sum = 0;    // folded from decoded responses
  std::int64_t group_fresh_sum = 0;    // ditto
  std::int64_t converged_checks = 0;   // group responses that said converged
  std::int64_t directory_names = 0;    // station names returned by dir queries
  double wall_seconds = 0.0;           // stdout only — never exported
};

std::string station_name(int index) {
  char name[8];
  std::snprintf(name, sizeof name, "n%03d", index);
  return name;
}

std::string group_name(int index) {
  char name[8];
  std::snprintf(name, sizeof name, "g%03d", index);
  return name;
}

// The churn plan, shifted per trial so the eight seasons exercise the
// outage and drift paths at different phases: a hard server_down day, a
// partial flaky week, and an rtc_drift week during which one station's
// reports run a day ahead of the clock.
fault::FaultPlan trial_plan(std::size_t trial) {
  const int shift = int(trial) * 3;
  const std::string spec =
      "server_down start=" + std::to_string(20 + shift) +
      "d duration=1d severity=1.0\n" +
      "server_down start=" + std::to_string(60 + shift) +
      "d duration=7d severity=0.4\n" +
      "rtc_drift   start=" + std::to_string(40 + shift) +
      "d duration=7d severity=1.0\n";
  auto plan = fault::FaultPlan::parse(spec);
  if (!plan.ok()) {
    std::fprintf(stderr, "bench_server_load: bad plan: %s\n",
                 plan.error().message.c_str());
    std::exit(1);
  }
  return std::move(plan.value());
}

LoadPoint run_trial(std::size_t trial) {
  // gwlint: allow(banned-api): wall-clock trial timing feeds wall_seconds,
  // a host_dependent field excluded from the determinism diff
  const auto wall_start = std::chrono::steady_clock::now();
  const sim::SimTime start = sim::to_time({2008, 9, 1, 0, 0, 0});
  fault::FaultOracle oracle{trial_plan(trial), start};

  station::SouthamptonServer server;
  server.set_fault_oracle(&oracle);
  server.set_station_queue_limit(kQueueLimit);
  server.set_ingest_stripes(8);
  server.set_received_window(4096);
  for (int i = 0; i < kStations; ++i) {
    server.sync().assign_group(station_name(i), group_name(i / 2));
  }

  LoadPoint point;
  for (int day = 0; day < kDays; ++day) {
    const sim::SimTime day_start = start + sim::days(day);

    // --- ingest: one upload + one state report per station per day -------
    for (int i = 0; i < kStations; ++i) {
      const std::string name = station_name(i);
      const sim::SimTime at = day_start + sim::minutes(i);
      if (server.down_severity(at) >= 1.0) continue;  // hard outage: no run
      server.receive_file(name, "d" + std::to_string(day),
                          util::Bytes{std::int64_t(40 + i) * 1024}, at);
      // During the drift window station n000's RTC runs a day fast: its
      // reports are future-dated and must be ignored by the fold, not
      // allowed to pin every group_view for the rest of the week.
      const bool drifted =
          i == 0 && oracle.severity(fault::FaultKind::kRtcDrift, at) > 0.0;
      server.sync().report_state(
          name, core::PowerState(2 + (day + i / 2) % 2),
          drifted ? at + sim::days(1) : at);
      if ((day + i) % 7 == 0) {
        server.receive_beacon(name, {"basestation.py", "md5", true}, at);
      }
    }
    // Operator keeps poking the same 8 stations without any fetches: the
    // bounded queues fill in 4 days and then every enqueue is a journalled
    // reject — sustained, deliberate backpressure.
    for (int i = 0; i < 8; ++i) {
      (void)server.queue_special(station_name(i * 8),
                                 {.id = "ping", .script = "uptime"},
                                 day_start + sim::hours(1));
    }
    if (day % 7 == 6) (void)server.compact_received();

    // --- the client query stream ----------------------------------------
    const sim::SimTime query_time = day_start + sim::hours(12);
    for (int q = 0; q < kQueriesPerDay; ++q) {
      ++point.queries_issued;
      if (q % 101 == 50) {
        // A corrupted wire every ~1 % of traffic: must bounce off the CRC.
        std::string corrupt = proto::DirectoryRequest{}.encode();
        corrupt[std::size_t(q) % corrupt.size()] ^= 0x01;
        (void)server.handle_query(corrupt, query_time);
        continue;
      }
      if (q % 250 == 0) {
        const auto wire = server.handle_query(
            proto::DirectoryRequest{}.encode(), query_time);
        const auto response = proto::DirectoryResponse::decode(wire);
        if (response.ok()) {
          point.directory_names +=
              std::int64_t(response.value().stations.size());
        }
        continue;
      }
      if (q % 5 == 4) {
        proto::GroupStatusRequest request;
        request.group = group_name((day * kQueriesPerDay + q) %
                                   (kStations / 2));
        const auto wire = server.handle_query(request.encode(), query_time);
        const auto response = proto::GroupStatusResponse::decode(wire);
        if (response.ok()) {
          point.group_fresh_sum += response.value().fresh;
          if (response.value().converged) ++point.converged_checks;
        }
        continue;
      }
      proto::StationStatsRequest request;
      request.station = station_name((day + q) % kStations);
      const auto wire = server.handle_query(request.encode(), query_time);
      const auto response = proto::StationStatsResponse::decode(wire);
      if (response.ok()) point.stats_bytes_sum += response.value().bytes;
    }
  }

  point.queries_served = server.queries_served();
  point.queries_refused = server.queries_refused();
  point.ingest_rejected = server.ingest_rejected();
  point.future_reports_ignored = server.sync().future_reports_ignored();
  point.files_received = server.files_received();
  point.compactions = server.compactions();
  // gwlint: allow(banned-api): wall-clock trial timing feeds wall_seconds,
  // a host_dependent field excluded from the determinism diff
  point.wall_seconds = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - wall_start)
                           .count();
  return point;
}

void run() {
  bench::heading("Server load: " + std::to_string(kTrials) + " trials x " +
                 std::to_string(kDays) + " days x " +
                 std::to_string(kQueriesPerDay) + " queries/day, " +
                 std::to_string(kStations) + " stations");
  runner::MonteCarloRunner pool{bench::thread_count()};
  std::printf("  threads: %u\n", pool.threads());

  const auto points =
      pool.run(kTrials, [](std::size_t trial) { return run_trial(trial); });

  LoadPoint total;
  double wall_total = 0.0;
  bench::row({"Trial", "Queries", "Served", "Refused", "Rejects",
              "FutureRep", "Files", "Wall s"},
             {5, 9, 9, 8, 8, 9, 7, 8});
  for (std::size_t t = 0; t < points.size(); ++t) {
    const LoadPoint& p = points[t];
    bench::row({std::to_string(t), std::to_string(p.queries_issued),
                std::to_string(p.queries_served),
                std::to_string(p.queries_refused),
                std::to_string(p.ingest_rejected),
                std::to_string(p.future_reports_ignored),
                std::to_string(p.files_received),
                util::format_fixed(p.wall_seconds, 2)},
               {5, 9, 9, 8, 8, 9, 7, 8});
    total.queries_issued += p.queries_issued;
    total.queries_served += p.queries_served;
    total.queries_refused += p.queries_refused;
    total.ingest_rejected += p.ingest_rejected;
    total.future_reports_ignored += p.future_reports_ignored;
    total.files_received += p.files_received;
    total.compactions += p.compactions;
    total.stats_bytes_sum += p.stats_bytes_sum;
    total.group_fresh_sum += p.group_fresh_sum;
    total.converged_checks += p.converged_checks;
    total.directory_names += p.directory_names;
    wall_total += p.wall_seconds;
  }
  bench::note("refused = corrupted wires bounced by the CRC envelope; "
              "rejects = bounded-queue backpressure drops; FutureRep = "
              "drifted-RTC reports ignored by the freshness fold");
  if (wall_total > 0.0) {
    // Wall-clock throughput: stdout only, never exported.
    std::printf("  ~%.0f queries/s of trial wall-clock (pool overlaps)\n",
                double(total.queries_issued) / wall_total);
  }

  obs::MetricsRegistry registry;
  const auto set = [&registry](const char* name, double value) {
    registry.gauge("load", name).set(value);
  };
  set("queries_issued", double(total.queries_issued));
  set("queries_served", double(total.queries_served));
  set("queries_refused", double(total.queries_refused));
  set("ingest_rejected", double(total.ingest_rejected));
  set("future_reports_ignored", double(total.future_reports_ignored));
  set("files_received", double(total.files_received));
  set("compactions", double(total.compactions));
  set("stats_bytes_sum", double(total.stats_bytes_sum));
  set("group_fresh_sum", double(total.group_fresh_sum));
  set("converged_checks", double(total.converged_checks));
  set("directory_names", double(total.directory_names));
  set("queries_per_sim_day",
      double(total.queries_issued) / double(kTrials * kDays));

  obs::BenchReport report;
  report.bench = "server_load";
  report.meta = {{"days", std::to_string(kDays)},
                 {"deterministic", "true"},
                 {"queries_per_day", std::to_string(kQueriesPerDay)},
                 {"queue_limit", std::to_string(kQueueLimit)},
                 {"stations", std::to_string(kStations)},
                 {"trials", std::to_string(kTrials)}};
  report.sections = {{"load", &registry, nullptr}};
  bench::export_report(report);
}

}  // namespace
}  // namespace gw

int main() {
  gw::run();
  return 0;
}
