// Fleet scaling sweep — 2 to 64 stations on the Monte Carlo runner.
//
// The paper deployed two stations; the fleet layer makes station count
// configuration. This bench answers the scaling questions that come with
// that: does the §III min-rule still converge every dGPS pair when there
// are 32 of them on one server, how much sync-convergence lag does a cold
// (deliberately diverged) fleet carry, and how does simulated event load
// grow per station as the fleet grows.
//
// Each sweep point is one independent trial on the MonteCarloRunner
// (GW_BENCH_THREADS pins the pool; results are byte-identical at any
// thread count — scripts/check.sh diffs the export at 1 thread vs default
// as the fleet determinism gate). The exported gauges are all derived from
// simulated time and simulated counters, so BENCH_fleet_scale.json is
// reproducible byte-for-byte; wall-clock throughput goes to stdout only.
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "runner/monte_carlo_runner.h"
#include "runner/parallel_plan.h"
#include "station/fleet.h"
#include "station/sharded_fleet.h"
#include "util/strings.h"

namespace gw {
namespace {

constexpr int kDays = 14;
constexpr std::uint64_t kSeedBase = 42000;
const std::vector<int> kSizes{2, 4, 8, 16, 32, 64};

// The sharded points: fleet sizes the serial sweep cannot afford at 14
// days, run on the ShardedSimulation for fewer days each. Sized so the
// whole sweep stays a few seconds on one core.
struct ShardedSize {
  int stations;
  int days;
};
const std::vector<ShardedSize> kShardedSizes{{256, 2}, {1024, 1}, {4096, 1}};

struct ScalePoint {
  int stations = 0;
  int convergence_lag_days = -1;  // first day every group was in lockstep
  int diverged_group_days = 0;    // sum over days of non-converged groups
  std::uint64_t sim_events = 0;
  double yield_bytes = 0.0;
  double stations_up = 0.0;
  double groups_total = 0.0;
  double groups_converged = 0.0;
  double probes_alive = 0.0;
  double wall_seconds = 0.0;  // stdout only — never exported
};

// One fleet season, entirely derived from the sweep size (the runner's
// usage contract). The uniform preset starts every pair diverged (state 3
// vs state 2, full vs 70 % battery), so convergence lag measures real
// min-rule work, not an already-settled fleet.
ScalePoint run_point(int stations) {
  // gwlint: allow(banned-api): wall-clock sweep timing feeds wall_seconds,
  // a host_dependent field excluded from the determinism diff
  const auto wall_start = std::chrono::steady_clock::now();
  station::Fleet fleet{station::uniform_fleet_config(
      stations, kSeedBase + std::uint64_t(stations))};
  ScalePoint point;
  point.stations = stations;
  for (int day = 1; day <= kDays; ++day) {
    fleet.run_days(1.0);
    auto& rollup = fleet.update_rollup();
    const double total = rollup.gauge_value("fleet", "groups_total");
    const double converged = rollup.gauge_value("fleet", "groups_converged");
    if (point.convergence_lag_days < 0 && converged == total) {
      point.convergence_lag_days = day;
    }
    point.diverged_group_days += int(total - converged);
  }
  point.sim_events = fleet.simulation().events_executed();
  auto& rollup = fleet.rollup_metrics();
  point.yield_bytes = rollup.gauge_value("fleet", "yield_bytes");
  point.stations_up = rollup.gauge_value("fleet", "stations_up");
  point.groups_total = rollup.gauge_value("fleet", "groups_total");
  point.groups_converged = rollup.gauge_value("fleet", "groups_converged");
  point.probes_alive = rollup.gauge_value("fleet", "probes_alive");
  // gwlint: allow(banned-api): wall-clock sweep timing feeds wall_seconds,
  // a host_dependent field excluded from the determinism diff
  point.wall_seconds = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - wall_start)
                           .count();
  return point;
}

// One sharded season, derived from its sweep entry alone. The shard count
// is a knob (GW_BENCH_FLEET_SHARDS) precisely because it must not matter:
// scripts/check.sh byte-diffs the export at 1 shard vs the default.
ScalePoint run_sharded_point(ShardedSize size, std::size_t shards,
                             unsigned workers) {
  // gwlint: allow(banned-api): wall-clock sweep timing feeds wall_seconds,
  // a host_dependent field excluded from the determinism diff
  const auto wall_start = std::chrono::steady_clock::now();
  station::ShardedFleetConfig config;
  config.fleet = station::uniform_fleet_config(
      size.stations, kSeedBase + std::uint64_t(size.stations));
  config.shards = shards;
  config.workers = workers;
  station::ShardedFleet fleet{config};
  ScalePoint point;
  point.stations = size.stations;
  for (int day = 1; day <= size.days; ++day) {
    fleet.run_days(1.0);
    auto& rollup = fleet.update_rollup();
    const double total = rollup.gauge_value("fleet", "groups_total");
    const double converged = rollup.gauge_value("fleet", "groups_converged");
    if (point.convergence_lag_days < 0 && converged == total) {
      point.convergence_lag_days = day;
    }
    point.diverged_group_days += int(total - converged);
  }
  point.sim_events = fleet.events_executed();
  auto& rollup = fleet.rollup_metrics();
  point.yield_bytes = rollup.gauge_value("fleet", "yield_bytes");
  point.stations_up = rollup.gauge_value("fleet", "stations_up");
  point.groups_total = rollup.gauge_value("fleet", "groups_total");
  point.groups_converged = rollup.gauge_value("fleet", "groups_converged");
  point.probes_alive = rollup.gauge_value("fleet", "probes_alive");
  // gwlint: allow(banned-api): wall-clock sweep timing feeds wall_seconds,
  // a host_dependent field excluded from the determinism diff
  point.wall_seconds = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - wall_start)
                           .count();
  return point;
}

// Host-dependent speedup measurement: the 1024-station season at 1, 2,
// and 4 shard workers. Opt-in (GW_BENCH_FLEET_SPEED=1) and exported as a
// *separate* BENCH_fleet_scale_speed.json so the deterministic export
// above stays byte-diffable while this one carries wall-clock numbers.
void run_speed_section(std::size_t shards) {
  bench::subheading("sharded speedup (host-dependent, 1024 stations)");
  const ShardedSize kSpeedSize{1024, 1};
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  obs::MetricsRegistry metrics;
  bench::row({"Workers", "Wall s", "Speedup vs 1"}, {8, 9, 13});
  double serial_seconds = 0.0;
  std::string oversubscribed_counts;
  for (const unsigned workers : {1u, 2u, 4u}) {
    const ScalePoint point = run_sharded_point(kSpeedSize, shards, workers);
    if (workers == 1) serial_seconds = point.wall_seconds;
    // Same clamp policy as BENCH_throughput: a pool wider than the host
    // measures oversubscription, not scaling — floor those at 1.0 and say
    // so in meta rather than exporting a phantom regression.
    const bool oversubscribed = workers > hw;
    const double denominator = oversubscribed
                                   ? std::min(point.wall_seconds,
                                              serial_seconds)
                                   : point.wall_seconds;
    const double speedup =
        denominator > 0.0 ? serial_seconds / denominator : 1.0;
    if (oversubscribed) {
      if (!oversubscribed_counts.empty()) oversubscribed_counts += ",";
      oversubscribed_counts += std::to_string(workers);
    }
    bench::row({std::to_string(workers),
                util::format_fixed(point.wall_seconds, 2),
                util::format_fixed(speedup, 2) +
                    (oversubscribed ? " (oversub)" : "")},
               {8, 9, 13});
    const std::string suffix = "_threads_" + std::to_string(workers);
    metrics.gauge("fleet", "speedup" + suffix).set(speedup);
    metrics.gauge("fleet", "wall_seconds" + suffix).set(point.wall_seconds);
  }
  metrics.gauge("fleet", "hardware_concurrency").set(double(hw));
  bench::note("byte-identity of the results themselves is gated separately; "
              "this section only times the same season at different worker "
              "counts");

  obs::BenchReport report;
  report.bench = "fleet_scale_speed";
  report.meta = {{"hardware_concurrency", std::to_string(hw)},
                 {"host_dependent", "true"},
                 {"oversubscribed_worker_counts",
                  oversubscribed_counts.empty() ? "none"
                                                : oversubscribed_counts},
                 {"shards", std::to_string(shards)},
                 {"speedup_policy",
                  "worker counts wider than the host are clamped to >= 1.0"},
                 {"workload", "1024 stations, 1 day, sharded fleet"}};
  report.sections = {{"speed", &metrics, nullptr}};
  bench::export_report(report);
}

void run() {
  bench::heading("Fleet scaling: 2 -> 64 stations, " +
                 std::to_string(kDays) + "-day seasons");
  runner::MonteCarloRunner pool{bench::thread_count()};
  std::printf("  threads: %u, one trial per fleet size\n", pool.threads());

  const auto points = pool.run(
      kSizes.size(), [](std::size_t trial) { return run_point(kSizes[trial]); });

  bench::row({"Stations", "Converged", "Lag", "Div grp-days",
              "Sim ev/stn/day", "Yield KiB/stn", "Wall s"},
             {8, 10, 6, 12, 14, 13, 8});
  for (const auto& point : points) {
    const double per_station_day =
        double(point.sim_events) / (double(point.stations) * kDays);
    bench::row(
        {std::to_string(point.stations),
         util::format_fixed(point.groups_converged, 0) + "/" +
             util::format_fixed(point.groups_total, 0),
         point.convergence_lag_days < 0
             ? "never"
             : std::to_string(point.convergence_lag_days) + "d",
         std::to_string(point.diverged_group_days),
         util::format_fixed(per_station_day, 1),
         util::format_fixed(point.yield_bytes / (1024.0 * point.stations), 1),
         util::format_fixed(point.wall_seconds, 2)},
        {8, 10, 6, 12, 14, 13, 8});
  }
  bench::note(
      "every pair starts diverged (state 3 vs 2); lag = first day all "
      "groups were in lockstep. Sim ev/stn/day should stay ~flat: per-"
      "station event load must not grow with fleet size.");

  // Wall-clock throughput: stdout only. The JSON below must stay byte-
  // identical across hosts and thread counts, so nothing timed enters it.
  double wall_total = 0.0;
  for (const auto& point : points) wall_total += point.wall_seconds;
  std::printf("  total trial wall-clock %.2f s (pool may overlap trials)\n",
              wall_total);

  // --- sharded points: 256 -> 4096 stations on the window kernel ---------
  const std::size_t shards = bench::fleet_shards();
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  // One world at a time, so the nested-parallelism plan gives the shard
  // layer whatever the (absent) trial layer leaves: the whole machine.
  const unsigned shard_workers =
      runner::plan_nested(hw, 1, shards).shard_workers;
  bench::subheading("sharded fleet: 256 -> 4096 stations (" +
                    std::to_string(shards) + " shards, " +
                    std::to_string(shard_workers) + " workers)");
  bench::row({"Stations", "Days", "Converged", "Lag", "Sim ev/stn/day",
              "Yield KiB/stn", "Wall s"},
             {8, 5, 10, 6, 14, 13, 8});
  std::vector<ScalePoint> sharded_points;
  std::vector<int> sharded_days;
  for (const ShardedSize size : kShardedSizes) {
    const ScalePoint point = run_sharded_point(size, shards, shard_workers);
    sharded_points.push_back(point);
    sharded_days.push_back(size.days);
    const double per_station_day =
        double(point.sim_events) / (double(point.stations) * size.days);
    bench::row(
        {std::to_string(point.stations), std::to_string(size.days),
         util::format_fixed(point.groups_converged, 0) + "/" +
             util::format_fixed(point.groups_total, 0),
         point.convergence_lag_days < 0
             ? "never"
             : std::to_string(point.convergence_lag_days) + "d",
         util::format_fixed(per_station_day, 1),
         util::format_fixed(point.yield_bytes / (1024.0 * point.stations), 1),
         util::format_fixed(point.wall_seconds, 2)},
        {8, 5, 10, 6, 14, 13, 8});
  }
  bench::note("GW_BENCH_FLEET_SHARDS moves the partition; the exported "
              "gauges are byte-identical at any shard or worker count "
              "(scripts/check.sh diffs 1 shard vs default)");

  obs::MetricsRegistry registry;
  const auto export_point = [&registry](const std::string& component,
                                        const ScalePoint& point, int days) {
    auto set = [&](const char* name, double value) {
      registry.gauge(component, name).set(value);
    };
    set("stations", double(point.stations));
    set("convergence_lag_days", double(point.convergence_lag_days));
    set("diverged_group_days", double(point.diverged_group_days));
    set("sim_events", double(point.sim_events));
    set("sim_events_per_station_day",
        double(point.sim_events) / (double(point.stations) * days));
    set("yield_bytes", point.yield_bytes);
    set("yield_bytes_per_station", point.yield_bytes / point.stations);
    set("stations_up", point.stations_up);
    set("groups_total", point.groups_total);
    set("groups_converged", point.groups_converged);
    set("probes_alive", point.probes_alive);
  };
  for (const auto& point : points) {
    char component[8];
    std::snprintf(component, sizeof component, "n%03d", point.stations);
    export_point(component, point, kDays);
  }
  for (std::size_t i = 0; i < sharded_points.size(); ++i) {
    char component[8];
    std::snprintf(component, sizeof component, "s%04d",
                  sharded_points[i].stations);
    export_point(component, sharded_points[i], sharded_days[i]);
  }
  obs::BenchReport report;
  report.bench = "fleet_scale";
  report.meta = {{"days", std::to_string(kDays)},
                 {"deterministic", "true"},
                 {"seed_base", std::to_string(kSeedBase)},
                 {"sharded_sizes", "256x2d,1024x1d,4096x1d"},
                 {"sizes", "2,4,8,16,32,64"}};
  report.sections = {{"sweep", &registry, nullptr}};
  bench::export_report(report);

  if (bench::fleet_speed_enabled()) {
    run_speed_section(shards);
  } else {
    bench::note("set GW_BENCH_FLEET_SPEED=1 for the host-dependent speedup "
                "section (BENCH_fleet_scale_speed.json)");
  }
}

}  // namespace
}  // namespace gw

int main() {
  gw::run();
  return 0;
}
