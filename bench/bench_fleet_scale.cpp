// Fleet scaling sweep — 2 to 64 stations on the Monte Carlo runner.
//
// The paper deployed two stations; the fleet layer makes station count
// configuration. This bench answers the scaling questions that come with
// that: does the §III min-rule still converge every dGPS pair when there
// are 32 of them on one server, how much sync-convergence lag does a cold
// (deliberately diverged) fleet carry, and how does simulated event load
// grow per station as the fleet grows.
//
// Each sweep point is one independent trial on the MonteCarloRunner
// (GW_BENCH_THREADS pins the pool; results are byte-identical at any
// thread count — scripts/check.sh diffs the export at 1 thread vs default
// as the fleet determinism gate). The exported gauges are all derived from
// simulated time and simulated counters, so BENCH_fleet_scale.json is
// reproducible byte-for-byte; wall-clock throughput goes to stdout only.
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "runner/monte_carlo_runner.h"
#include "station/fleet.h"
#include "util/strings.h"

namespace gw {
namespace {

constexpr int kDays = 14;
constexpr std::uint64_t kSeedBase = 42000;
const std::vector<int> kSizes{2, 4, 8, 16, 32, 64};

struct ScalePoint {
  int stations = 0;
  int convergence_lag_days = -1;  // first day every group was in lockstep
  int diverged_group_days = 0;    // sum over days of non-converged groups
  std::uint64_t sim_events = 0;
  double yield_bytes = 0.0;
  double stations_up = 0.0;
  double groups_total = 0.0;
  double groups_converged = 0.0;
  double probes_alive = 0.0;
  double wall_seconds = 0.0;  // stdout only — never exported
};

// One fleet season, entirely derived from the sweep size (the runner's
// usage contract). The uniform preset starts every pair diverged (state 3
// vs state 2, full vs 70 % battery), so convergence lag measures real
// min-rule work, not an already-settled fleet.
ScalePoint run_point(int stations) {
  // gwlint: allow(banned-api): wall-clock sweep timing feeds wall_seconds,
  // a host_dependent field excluded from the determinism diff
  const auto wall_start = std::chrono::steady_clock::now();
  station::Fleet fleet{station::uniform_fleet_config(
      stations, kSeedBase + std::uint64_t(stations))};
  ScalePoint point;
  point.stations = stations;
  for (int day = 1; day <= kDays; ++day) {
    fleet.run_days(1.0);
    auto& rollup = fleet.update_rollup();
    const double total = rollup.gauge_value("fleet", "groups_total");
    const double converged = rollup.gauge_value("fleet", "groups_converged");
    if (point.convergence_lag_days < 0 && converged == total) {
      point.convergence_lag_days = day;
    }
    point.diverged_group_days += int(total - converged);
  }
  point.sim_events = fleet.simulation().events_executed();
  auto& rollup = fleet.rollup_metrics();
  point.yield_bytes = rollup.gauge_value("fleet", "yield_bytes");
  point.stations_up = rollup.gauge_value("fleet", "stations_up");
  point.groups_total = rollup.gauge_value("fleet", "groups_total");
  point.groups_converged = rollup.gauge_value("fleet", "groups_converged");
  point.probes_alive = rollup.gauge_value("fleet", "probes_alive");
  // gwlint: allow(banned-api): wall-clock sweep timing feeds wall_seconds,
  // a host_dependent field excluded from the determinism diff
  point.wall_seconds = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - wall_start)
                           .count();
  return point;
}

void run() {
  bench::heading("Fleet scaling: 2 -> 64 stations, " +
                 std::to_string(kDays) + "-day seasons");
  runner::MonteCarloRunner pool{bench::thread_count()};
  std::printf("  threads: %u, one trial per fleet size\n", pool.threads());

  const auto points = pool.run(
      kSizes.size(), [](std::size_t trial) { return run_point(kSizes[trial]); });

  bench::row({"Stations", "Converged", "Lag", "Div grp-days",
              "Sim ev/stn/day", "Yield KiB/stn", "Wall s"},
             {8, 10, 6, 12, 14, 13, 8});
  for (const auto& point : points) {
    const double per_station_day =
        double(point.sim_events) / (double(point.stations) * kDays);
    bench::row(
        {std::to_string(point.stations),
         util::format_fixed(point.groups_converged, 0) + "/" +
             util::format_fixed(point.groups_total, 0),
         point.convergence_lag_days < 0
             ? "never"
             : std::to_string(point.convergence_lag_days) + "d",
         std::to_string(point.diverged_group_days),
         util::format_fixed(per_station_day, 1),
         util::format_fixed(point.yield_bytes / (1024.0 * point.stations), 1),
         util::format_fixed(point.wall_seconds, 2)},
        {8, 10, 6, 12, 14, 13, 8});
  }
  bench::note(
      "every pair starts diverged (state 3 vs 2); lag = first day all "
      "groups were in lockstep. Sim ev/stn/day should stay ~flat: per-"
      "station event load must not grow with fleet size.");

  // Wall-clock throughput: stdout only. The JSON below must stay byte-
  // identical across hosts and thread counts, so nothing timed enters it.
  double wall_total = 0.0;
  for (const auto& point : points) wall_total += point.wall_seconds;
  std::printf("  total trial wall-clock %.2f s (pool may overlap trials)\n",
              wall_total);

  obs::MetricsRegistry registry;
  for (const auto& point : points) {
    char component[8];
    std::snprintf(component, sizeof component, "n%03d", point.stations);
    auto set = [&](const char* name, double value) {
      registry.gauge(component, name).set(value);
    };
    set("stations", double(point.stations));
    set("convergence_lag_days", double(point.convergence_lag_days));
    set("diverged_group_days", double(point.diverged_group_days));
    set("sim_events", double(point.sim_events));
    set("sim_events_per_station_day",
        double(point.sim_events) / (double(point.stations) * kDays));
    set("yield_bytes", point.yield_bytes);
    set("yield_bytes_per_station", point.yield_bytes / point.stations);
    set("stations_up", point.stations_up);
    set("groups_total", point.groups_total);
    set("groups_converged", point.groups_converged);
    set("probes_alive", point.probes_alive);
  }
  obs::BenchReport report;
  report.bench = "fleet_scale";
  report.meta = {{"days", std::to_string(kDays)},
                 {"deterministic", "true"},
                 {"seed_base", std::to_string(kSeedBase)},
                 {"sizes", "2,4,8,16,32,64"}};
  report.sections = {{"sweep", &registry, nullptr}};
  bench::export_report(report);
}

}  // namespace
}  // namespace gw

int main() {
  gw::run();
  return 0;
}
