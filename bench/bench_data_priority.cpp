// §VII future work, implemented and evaluated: "enabling the base station
// to analyse the data collected and prioritise it forcing communication
// even if the available power is marginal if the data warrants it."
//
// Experiment 1 (analyser): detection latency vs step size — how many
// readings of a conductivity step it takes to escalate to kUrgent.
//
// Experiment 2 (system ablation): a station wintering in state 0 (no
// scheduled communications at all) while the spring melt signal arrives at
// its probes. With the extension OFF, Southampton hears nothing until the
// power state recovers; with it ON, the urgent data forces a session and
// the melt onset is visible within a day.
#include <cstdio>
#include <span>
#include <vector>

#include "bench_util.h"
#include "core/data_priority.h"
#include "station/deployment.h"
#include "util/strings.h"

namespace gw {
namespace {

void analyzer_latency() {
  bench::subheading("1. analyser detection latency vs step size");
  bench::row({"Step (sigma units)", "Readings to kUrgent"}, {20, 20});
  for (const double step_sigma : {2.0, 4.0, 6.0, 10.0, 20.0}) {
    core::DataPriorityAnalyzer analyzer;
    util::Rng rng{7};
    // Baseline: 300 readings around 1.0 uS, sigma 0.25.
    std::vector<proto::ProbeReading> batch;
    for (int i = 0; i < 300; ++i) {
      proto::ProbeReading reading;
      reading.probe_id = 21;
      reading.conductivity_us = 1.0 + 0.25 * rng.normal();
      reading.pressure_kpa = 600.0 + 8.0 * rng.normal();
      batch.push_back(reading);
    }
    (void)analyzer.analyze(batch);
    // Step change arrives; feed one reading at a time until urgent.
    int needed = -1;
    for (int i = 0; i < 200; ++i) {
      proto::ProbeReading reading;
      reading.probe_id = 21;
      reading.conductivity_us =
          1.0 + step_sigma * 0.25 + 0.25 * rng.normal();
      reading.pressure_kpa = 600.0 + 8.0 * rng.normal();
      const auto priority =
          analyzer.analyze(std::span<const proto::ProbeReading>{&reading, 1});
      if (priority == core::DataPriority::kUrgent) {
        needed = i + 1;
        break;
      }
    }
    bench::row({util::format_fixed(step_sigma, 1),
                needed < 0 ? "not escalated (sub-threshold)"
                           : std::to_string(needed)},
               {20, 20});
  }
  bench::note("small steps never page the operator; a real onset does");
}

struct AblationResult {
  int files_received = 0;
  int forced_days = 0;
  std::string first_file_after_onset = "(never)";
};

AblationResult run_winter_station(bool enabled) {
  station::DeploymentConfig config;
  config.seed = 99;
  config.start = sim::DateTime{2009, 2, 1, 0, 0, 0};
  config.trace_enabled = false;
  // Survival-mode firmware: every daily average maps to state 0, so the
  // *only* communications possible are data-priority-forced ones.
  for (auto* station_config : {&config.base, &config.reference}) {
    station_config->policy.state1_threshold = util::Volts{99.0};
    station_config->policy.state2_threshold = util::Volts{99.0};
    station_config->policy.state3_threshold = util::Volts{99.0};
    station_config->initial_state = core::PowerState::kState0;
    station_config->gprs.registration_success = 1.0;
    station_config->gprs.drop_per_minute = 0.0;
  }
  config.base.enable_data_priority = enabled;
  station::Deployment deployment{config};
  deployment.run_days(120.0);  // through late May: melt onset included

  // gwlint: allow(banned-api): opt-in debug printout gate; never touches
  // simulated behaviour or exports
  if (std::getenv("GW_PRIORITY_DEBUG") != nullptr) {
    std::printf(
        "  [debug] delivered=%zu urgent_batches=%d brown_outs=%d runs=%d\n",
        deployment.base().stats().probe_readings_delivered,
        deployment.base().priority_analyzer().urgent_batches(),
        deployment.base().stats().brown_outs,
        deployment.base().stats().runs_completed);
  }
  AblationResult result;
  result.files_received = deployment.server().files_from("base");
  result.forced_days = deployment.base().stats().forced_comms_days;
  const auto onset = sim::at_midnight(2009, 4, 1);
  for (const auto& file : deployment.server().received()) {
    if (file.station == "base" && file.received_at >= onset) {
      result.first_file_after_onset = sim::format_iso(file.received_at);
      break;
    }
  }
  return result;
}

void system_ablation() {
  bench::subheading(
      "2. system ablation: melt onset reaches a state-0 station");
  for (const bool enabled : {false, true}) {
    const auto result = run_winter_station(enabled);
    std::printf(
        "  data-priority %s: files received %3d, forced sessions %2d, "
        "first data after 1 Apr: %s\n",
        enabled ? "ON " : "OFF", result.files_received, result.forced_days,
        result.first_file_after_onset.c_str());
  }
  bench::note(
      "with the extension the spring melt signal escapes the glacier while "
      "the station is still in survival mode — the exact behaviour Sec VII "
      "asks for");
}

void run() {
  bench::heading("Sec VII extension: data-priority forced communication");
  analyzer_latency();
  system_ablation();
}

}  // namespace
}  // namespace gw

int main() {
  gw::run();
  return 0;
}
