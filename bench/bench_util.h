// Shared formatting helpers for the reproduction benches. Each bench binary
// regenerates one table/figure/claim from the paper and prints it in a form
// directly comparable with the original (see EXPERIMENTS.md).
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "util/strings.h"

namespace gw::bench {

inline void heading(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

inline void subheading(const std::string& title) {
  std::printf("\n--- %s ---\n", title.c_str());
}

// Prints a fixed-width row from already-formatted cells.
inline void row(const std::vector<std::string>& cells,
                const std::vector<int>& widths) {
  std::string line;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const auto width = std::size_t(i < widths.size() ? widths[i] : 12);
    line += gw::util::pad_right(cells[i], width);
    line += "  ";
  }
  std::printf("%s\n", line.c_str());
}

inline void note(const std::string& text) {
  std::printf("  %s\n", text.c_str());
}

inline void paper_vs_measured(const std::string& what,
                              const std::string& paper,
                              const std::string& measured) {
  std::printf("  %-46s paper: %-18s measured: %s\n", what.c_str(),
              paper.c_str(), measured.c_str());
}

}  // namespace gw::bench
