// Shared formatting helpers for the reproduction benches. Each bench binary
// regenerates one table/figure/claim from the paper and prints it in a form
// directly comparable with the original (see EXPERIMENTS.md), and — for the
// instrumented benches — drops a machine-readable BENCH_<name>.json beside
// it (schema glacsweb.bench.v1, see docs/OBSERVABILITY.md) so the numbers
// are diffable across PRs.
#pragma once

#include <cstddef>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "obs/export.h"
#include "util/strings.h"

namespace gw::bench {

// Thread count for MonteCarloRunner-driven benches: GW_BENCH_THREADS pins
// it (useful for scaling curves and the determinism tests); unset or 0
// means hardware concurrency. Results are byte-identical either way — the
// knob only changes wall-clock.
inline unsigned thread_count() {
  if (const char* env = std::getenv("GW_BENCH_THREADS")) {
    char* end = nullptr;
    const unsigned long parsed = std::strtoul(env, &end, 10);
    if (end == env || *end != '\0') {
      std::fprintf(stderr,
                   "[warn] GW_BENCH_THREADS=\"%s\" is not a number; "
                   "falling back to hardware concurrency\n",
                   env);
      return 0;
    }
    return static_cast<unsigned>(parsed);
  }
  return 0;
}

// Shard count for the sharded fleet points in bench_fleet_scale:
// GW_BENCH_FLEET_SHARDS pins it (scripts/check.sh diffs the export at 1
// shard vs this default as the partition-invariance gate); unset or
// invalid means 4. Like GW_BENCH_THREADS, the knob only changes
// wall-clock, never a byte of BENCH_fleet_scale.json.
inline std::size_t fleet_shards() {
  if (const char* env = std::getenv("GW_BENCH_FLEET_SHARDS")) {
    char* end = nullptr;
    const unsigned long parsed = std::strtoul(env, &end, 10);
    if (end != env && *end == '\0' && parsed > 0) {
      return std::size_t(parsed);
    }
    std::fprintf(stderr,
                 "[warn] GW_BENCH_FLEET_SHARDS=\"%s\" is not a positive "
                 "number; using 4\n",
                 env);
  }
  return 4;
}

// Opt-in switch for the host-dependent fleet speedup measurement
// (BENCH_fleet_scale_speed.json). Off by default so the default bench run
// stays cheap and fully deterministic; EXPERIMENTS.md shows the
// regeneration command.
inline bool fleet_speed_enabled() {
  const char* env = std::getenv("GW_BENCH_FLEET_SPEED");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

// Replay mode for bench_fork_warmup: GW_BENCH_FORK_MODE=cold replays every
// branch trial from day 0 instead of restoring the day-20 snapshot.
// scripts/check.sh byte-diffs the export across the two modes — the fork is
// only an optimisation if no exported byte can tell the difference.
inline bool fork_mode_cold() {
  const char* env = std::getenv("GW_BENCH_FORK_MODE");
  return env != nullptr && std::string(env) == "cold";
}

// Opt-in switch for the host-dependent warm-prefix speedup measurement
// (BENCH_fork_warmup_speed.json). Off by default, like GW_BENCH_FLEET_SPEED.
inline bool fork_speed_enabled() {
  const char* env = std::getenv("GW_BENCH_FORK_SPEED");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

inline void heading(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

inline void subheading(const std::string& title) {
  std::printf("\n--- %s ---\n", title.c_str());
}

// Prints a fixed-width row from already-formatted cells.
inline void row(const std::vector<std::string>& cells,
                const std::vector<int>& widths) {
  std::string line;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const auto width = std::size_t(i < widths.size() ? widths[i] : 12);
    line += gw::util::pad_right(cells[i], width);
    line += "  ";
  }
  std::printf("%s\n", line.c_str());
}

inline void note(const std::string& text) {
  std::printf("  %s\n", text.c_str());
}

inline void paper_vs_measured(const std::string& what,
                              const std::string& paper,
                              const std::string& measured) {
  std::printf("  %-46s paper: %-18s measured: %s\n", what.c_str(),
              paper.c_str(), measured.c_str());
}

// Writes the report as BENCH_<name>.json in the working directory and says
// so on stdout (or warns and keeps going — the printed tables remain the
// human-facing output either way).
inline void export_report(const obs::BenchReport& report) {
  const std::string path = obs::write_bench_json(report);
  if (path.empty()) {
    std::printf("\n  [warn] could not write BENCH_%s.json\n",
                report.bench.c_str());
  } else {
    std::printf("\n  wrote %s (schema glacsweb.bench.v1)\n", path.c_str());
  }
}

}  // namespace gw::bench
