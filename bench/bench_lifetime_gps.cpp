// §III's battery arithmetic: "the GPS device uses 3.6W of power[;] use
// would deplete 36AH of batteries in 5 days, where as in state 3 ... the
// dGPS unit would deplete the reserves in 117 days (for simplicity these
// figures do not include the consumption of any other component)."
//
// Both policies are run against the battery model (no charging, GPS load
// only, as the paper's simplification states) and the depletion day is
// reported, plus a sweep over intermediate duty cycles.
#include <cstdio>

#include "bench_util.h"
#include "power/battery.h"
#include "util/strings.h"

namespace gw {
namespace {

using util::Amps;
using util::Celsius;

// Days to exhaust a 36 Ah bank running the dGPS `on_hours` per day.
double depletion_days(double on_hours_per_day) {
  power::BatteryConfig config;
  config.initial_soc = 1.0;
  config.self_discharge_per_day = 0.0;
  power::LeadAcidBattery battery{config};
  const Amps gps = util::Watts{3.6} / util::Volts{12.0};
  double days = 0.0;
  while (!battery.empty() && days < 4000.0) {
    battery.step(Amps{0.0}, gps, on_hours_per_day, Celsius{25.0});
    days += 1.0;
  }
  return days;
}

void run() {
  bench::heading("Sec III: dGPS-only battery lifetime (36 Ah bank)");

  const double continuous = depletion_days(24.0);
  // State 3: 12 readings x 308 s.
  const double state3 = depletion_days(12.0 * 308.0 / 3600.0);
  // State 2: 1 reading/day.
  const double state2 = depletion_days(1.0 * 308.0 / 3600.0);

  bench::paper_vs_measured("continuous sampling depletes in", "5 days",
                           util::format_fixed(continuous, 1) + " days");
  bench::paper_vs_measured("state 3 (12/day) depletes in", "117 days",
                           util::format_fixed(state3, 0) + " days");
  bench::paper_vs_measured("state 2 (1/day) depletes in", "(not stated)",
                           util::format_fixed(state2, 0) + " days");
  bench::note("lifetime ratio state3/continuous: x" +
              util::format_fixed(state3 / continuous, 1) +
              "  (paper: 117/5 = x23.4)");

  bench::subheading("Duty-cycle sweep (readings/day -> days to empty)");
  bench::row({"Readings/day", "On h/day", "Days to empty"}, {13, 9, 14});
  for (const int per_day : {1, 2, 4, 6, 12, 24, 48, 96}) {
    const double on_hours = per_day * 308.0 / 3600.0;
    bench::row({std::to_string(per_day), util::format_fixed(on_hours, 2),
                util::format_fixed(depletion_days(on_hours), 0)},
               {13, 9, 14});
  }
  bench::note("Continuous-equivalent (24 h/day): " +
              util::format_fixed(continuous, 1) + " days");

  bench::subheading("Why continuous sampling also fails on data volume");
  // §III: each reading ~165 KB. Continuous recording produces data "too
  // great to transmit off-site in a power-efficient way".
  const double state3_mb_per_day = 12.0 * 165.0 / 1024.0;
  const double continuous_mb_per_day = (24.0 * 3600.0 / 308.0) * 165.0 / 1024.0;
  bench::note("state 3 data volume:     " +
              util::format_fixed(state3_mb_per_day, 1) + " MB/day (" +
              util::format_fixed(state3_mb_per_day * 1024.0 * 8.0 * 1024.0 /
                                     5000.0 / 3600.0,
                                 1) +
              " h of GPRS airtime)");
  bench::note("continuous data volume:  " +
              util::format_fixed(continuous_mb_per_day, 1) + " MB/day (" +
              util::format_fixed(continuous_mb_per_day * 1024.0 * 8.0 *
                                     1024.0 / 5000.0 / 3600.0,
                                 1) +
              " h of GPRS airtime — exceeds the day)");
}

}  // namespace
}  // namespace gw

int main() {
  gw::run();
  return 0;
}
