// §III's battery arithmetic: "the GPS device uses 3.6W of power[;] use
// would deplete 36AH of batteries in 5 days, where as in state 3 ... the
// dGPS unit would deplete the reserves in 117 days (for simplicity these
// figures do not include the consumption of any other component)."
//
// Both policies are run against the battery model (no charging, GPS load
// only, as the paper's simplification states) and the depletion day is
// reported, plus a sweep over intermediate duty cycles.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "power/battery.h"
#include "runner/monte_carlo_runner.h"
#include "util/strings.h"

namespace gw {
namespace {

using util::Amps;
using util::Celsius;

// Days to exhaust a 36 Ah bank running the dGPS `on_hours` per day.
double depletion_days(double on_hours_per_day) {
  power::BatteryConfig config;
  config.initial_soc = 1.0;
  config.self_discharge_per_day = 0.0;
  power::LeadAcidBattery battery{config};
  const Amps gps = util::Watts{3.6} / util::Volts{12.0};
  double days = 0.0;
  while (!battery.empty() && days < 4000.0) {
    battery.step(Amps{0.0}, gps, on_hours_per_day, Celsius{25.0});
    days += 1.0;
  }
  return days;
}

constexpr int kSweepPerDay[] = {1, 2, 4, 6, 12, 24, 48, 96};

void run() {
  bench::heading("Sec III: dGPS-only battery lifetime (36 Ah bank)");

  // Every depletion run is independent, so the named policies and the
  // duty-cycle sweep fan out across the MonteCarloRunner pool; results come
  // back indexed by job, identical at any thread count.
  const double kHoursPerReading = 308.0 / 3600.0;
  std::vector<double> on_hours_jobs = {24.0,  // continuous sampling
                                       12.0 * kHoursPerReading,  // state 3
                                       1.0 * kHoursPerReading};  // state 2
  for (const int per_day : kSweepPerDay) {
    on_hours_jobs.push_back(per_day * kHoursPerReading);
  }
  runner::MonteCarloRunner pool{bench::thread_count()};
  const std::vector<double> days_to_empty = pool.run(
      on_hours_jobs.size(),
      [&](std::size_t job) { return depletion_days(on_hours_jobs[job]); });

  const double continuous = days_to_empty[0];
  // State 3: 12 readings x 308 s.
  const double state3 = days_to_empty[1];
  // State 2: 1 reading/day.
  const double state2 = days_to_empty[2];

  bench::paper_vs_measured("continuous sampling depletes in", "5 days",
                           util::format_fixed(continuous, 1) + " days");
  bench::paper_vs_measured("state 3 (12/day) depletes in", "117 days",
                           util::format_fixed(state3, 0) + " days");
  bench::paper_vs_measured("state 2 (1/day) depletes in", "(not stated)",
                           util::format_fixed(state2, 0) + " days");
  bench::note("lifetime ratio state3/continuous: x" +
              util::format_fixed(state3 / continuous, 1) +
              "  (paper: 117/5 = x23.4)");

  bench::subheading("Duty-cycle sweep (readings/day -> days to empty)");
  bench::row({"Readings/day", "On h/day", "Days to empty"}, {13, 9, 14});
  for (std::size_t i = 0; i < std::size(kSweepPerDay); ++i) {
    bench::row({std::to_string(kSweepPerDay[i]),
                util::format_fixed(on_hours_jobs[3 + i], 2),
                util::format_fixed(days_to_empty[3 + i], 0)},
               {13, 9, 14});
  }
  bench::note("Continuous-equivalent (24 h/day): " +
              util::format_fixed(continuous, 1) + " days");

  bench::subheading("Why continuous sampling also fails on data volume");
  // §III: each reading ~165 KB. Continuous recording produces data "too
  // great to transmit off-site in a power-efficient way".
  const double state3_mb_per_day = 12.0 * 165.0 / 1024.0;
  const double continuous_mb_per_day = (24.0 * 3600.0 / 308.0) * 165.0 / 1024.0;
  bench::note("state 3 data volume:     " +
              util::format_fixed(state3_mb_per_day, 1) + " MB/day (" +
              util::format_fixed(state3_mb_per_day * 1024.0 * 8.0 * 1024.0 /
                                     5000.0 / 3600.0,
                                 1) +
              " h of GPRS airtime)");
  bench::note("continuous data volume:  " +
              util::format_fixed(continuous_mb_per_day, 1) + " MB/day (" +
              util::format_fixed(continuous_mb_per_day * 1024.0 * 8.0 *
                                     1024.0 / 5000.0 / 3600.0,
                                 1) +
              " h of GPRS airtime — exceeds the day)");
}

}  // namespace
}  // namespace gw

int main() {
  gw::run();
  return 0;
}
