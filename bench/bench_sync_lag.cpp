// §III — server-mediated state propagation lag.
//
// "The reason for the upload and download of power states being in
// different places is to allow for minor variations in timing between the
// base station and the reference station. ... as long as the time variation
// in the stations is less than the time it takes for the station which is
// ahead to upload its data then any changes will be reflected the same day.
// If the variation in time is greater than this then there will be a one
// day lag in the states being updated."
//
// We run the two-station deployment, pin the base station's battery into
// the state-2 band from day 3, and sweep the reference station's window
// offset. Reported: how long after the base station's transition the
// reference station follows (same-day ≈ minutes-hours; otherwise ~a day).
#include <cstdio>
#include <functional>

#include "bench_util.h"
#include "station/deployment.h"
#include "util/strings.h"

namespace gw {
namespace {

struct LagResult {
  bool seen = false;
  double lag_hours = 0.0;   // may be negative: follower can apply the new
                            // state before the leader's own run finishes
  int lag_days = 0;         // calendar-day difference (the paper's metric)
};

// Measures when the reference follows the base into state 2, for the given
// reference-window offset.
LagResult measure_lag(sim::Duration reference_offset) {
  station::DeploymentConfig config;
  config.start = sim::DateTime{2009, 9, 1, 0, 0, 0};
  config.base.gprs.registration_success = 1.0;
  config.base.gprs.drop_per_minute = 0.0;
  config.reference.gprs.registration_success = 1.0;
  config.reference.gprs.drop_per_minute = 0.0;
  config.base.power.battery.initial_soc = 1.0;
  config.reference.power.battery.initial_soc = 1.0;
  config.base.initial_state = core::PowerState::kState3;
  config.reference.initial_state = core::PowerState::kState3;
  config.reference.wake_time_of_day = sim::hours(12) + reference_offset;
  config.trace_enabled = false;
  station::Deployment deployment{config};

  // From day 3, pin the base battery into the state-2 voltage band (an aged
  // bank), re-clamped every 30 minutes against charging.
  const sim::SimTime pin_from = sim::at_midnight(2009, 9, 4);
  std::function<void()> clamp = [&deployment, &clamp] {
    auto& battery = deployment.base().power().battery();
    if (battery.soc() > 0.40) battery.set_soc(0.40);
    deployment.simulation().schedule_in(sim::minutes(30), clamp);
  };
  deployment.simulation().schedule_at(pin_from, clamp);

  deployment.run_days(12.0);

  // Find the transition times.
  auto transition_time = [](const station::Station& s) {
    for (const auto& change : s.state_history()) {
      if (change.at >= sim::at_midnight(2009, 9, 4) &&
          change.state <= core::PowerState::kState2) {
        return change.at;
      }
    }
    return sim::SimTime{0};
  };
  const sim::SimTime base_at = transition_time(deployment.base());
  const sim::SimTime ref_at = transition_time(deployment.reference());
  LagResult result;
  if (base_at == sim::SimTime{0} || ref_at == sim::SimTime{0}) return result;
  result.seen = true;
  result.lag_hours = (ref_at - base_at).to_hours();
  result.lag_days =
      int((sim::start_of_day(ref_at) - sim::start_of_day(base_at)).to_days());
  return result;
}

void run() {
  bench::heading("Sec III: state-sync propagation lag vs window skew");

  bench::row({"Reference window offset", "Lag", "Propagation"}, {24, 12, 14});
  for (const double offset_min :
       {-300.0, -180.0, -90.0, -45.0, -5.0, 5.0, 45.0, 90.0, 180.0}) {
    const auto result = measure_lag(sim::minutes(offset_min));
    if (!result.seen) {
      bench::row({util::format_fixed(offset_min, 0) + " min",
                  "(no transition)", "-"},
                 {24, 12, 14});
      continue;
    }
    bench::row({util::format_fixed(offset_min, 0) + " min",
                util::format_fixed(result.lag_hours, 2) + " h",
                result.lag_days == 0 ? "same day"
                                     : std::to_string(result.lag_days) +
                                           "-day lag"},
               {24, 12, 14});
  }
  bench::note(
      "paper: same-day when the follower's override fetch lands after the "
      "leader's state upload — the leader uploads its state *before* its "
      "multi-minute data upload, so modest skew still converges same-day; "
      "a follower waking hours early fetches stale state -> one-day lag");
}

}  // namespace
}  // namespace gw

int main() {
  gw::run();
  return 0;
}
