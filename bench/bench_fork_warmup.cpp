// Warm-prefix Monte Carlo branching (docs/SNAPSHOT.md).
//
// Every scenario sweep in this repo so far pays for its shared prefix once
// per trial: N branch trials of a faulted season re-simulate the same first
// 20 days N times before they diverge. This bench exercises the snapshot
// layer's answer — warm the shared prefix once, Fleet::save_snapshot(), and
// let every branch trial restore and diverge — and proves the contract that
// makes it safe: a fork-resumed season exports byte-identical results to a
// cold replay (GW_BENCH_FORK_MODE=cold; scripts/check.sh diffs the two).
//
// Two workloads:
//   A. probe survival branching — 7 probes share a 60-day burn-in, then
//      each trial redraws the survivors' remaining lifetimes from the
//      age-conditioned Weibull (wear-out given survival to the branch
//      point) and carries the curve to day 730.
//   B. faulted-season branching — a two-station fleet runs a scripted
//      season to day 20, checkpoints, and each branch trial layers its own
//      extra GPRS outage on top before running to day 40.
//
// Exports BENCH_fork_warmup.json (schema glacsweb.bench.v1, deterministic:
// no events_executed, no mode marker, no wall-clock). The opt-in
// GW_BENCH_FORK_SPEED=1 section times cold vs forked replay and writes the
// host-dependent numbers to a separate BENCH_fork_warmup_speed.json.
#include <array>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "fault/fault.h"
#include "runner/monte_carlo_runner.h"
#include "station/fleet.h"
#include "station/probe_node.h"
#include "util/strings.h"

namespace gw {
namespace {

// --- workload A: probe survival branching --------------------------------

constexpr int kProbes = 7;
constexpr int kSurvivalTrials = 400;
constexpr double kBranchDay = 60.0;
constexpr std::array<int, 8> kCurveDays{90, 180, 270, 365, 455, 547, 640,
                                        730};

struct SurvivalPrefix {
  // Which probes came through the shared 60-day burn-in (probes dead in the
  // prefix are dead in every branch — that is what sharing the prefix
  // means).
  std::array<bool, kProbes> alive{};
};

struct SurvivalOutcome {
  std::array<int, kCurveDays.size()> curve_alive{};
};

// Remaining-lifetime redraw for a probe known to have survived to age `a`:
// inverse CDF of the Weibull conditioned on T > a,
//   T = scale * ((a/scale)^shape - ln u)^(1/shape).
double conditional_weibull(util::Rng& rng, double shape, double scale,
                           double age_days) {
  double u = rng.uniform();
  while (u <= 0.0) u = rng.uniform();
  const double base = std::pow(age_days / scale, shape) - std::log(u);
  return scale * std::pow(base, 1.0 / shape);
}

SurvivalPrefix warm_survival_prefix() {
  const sim::SimTime deployed = sim::at_midnight(2008, 9, 1);
  sim::Simulation simulation{deployed};
  env::Environment environment{7};
  const util::Rng bench_rng{2008};
  std::vector<std::unique_ptr<station::ProbeNode>> probes;
  for (int i = 0; i < kProbes; ++i) {
    station::ProbeNodeConfig config;
    config.probe_id = 20 + i;
    config.sample_interval = sim::days(3650);  // no samples: fast burn-in
    probes.push_back(std::make_unique<station::ProbeNode>(
        simulation, environment,
        bench_rng.fork("probe-" + std::to_string(config.probe_id)), config));
  }
  simulation.run_until(deployed + sim::days(kBranchDay));
  SurvivalPrefix prefix;
  for (int i = 0; i < kProbes; ++i) prefix.alive[std::size_t(i)] =
      probes[std::size_t(i)]->alive();
  return prefix;
}

SurvivalOutcome survival_trial(std::size_t trial,
                               const SurvivalPrefix& prefix) {
  const sim::SimTime deployed = sim::at_midnight(2008, 9, 1);
  sim::Simulation simulation{deployed};
  env::Environment environment{7};
  const util::Rng bench_rng{2008};
  util::Rng redraw =
      bench_rng.fork("fork-redraw-" + std::to_string(trial));
  std::vector<std::unique_ptr<station::ProbeNode>> probes;
  for (int i = 0; i < kProbes; ++i) {
    station::ProbeNodeConfig config;
    config.probe_id = 20 + i;
    config.sample_interval = sim::days(3650);
    probes.push_back(std::make_unique<station::ProbeNode>(
        simulation, environment,
        bench_rng.fork("probe-" + std::to_string(config.probe_id)), config));
    auto& probe = *probes.back();
    if (!prefix.alive[std::size_t(i)]) {
      // Died during the shared prefix: dead in this branch too.
      probe.set_death_after(sim::Duration{});
    } else {
      // Survived the prefix: this branch's remaining lifetime comes from
      // the age-conditioned wear-out, so the shared 60 days are never
      // re-simulated yet the branch statistics stay exactly Weibull.
      probe.set_death_after(sim::days(conditional_weibull(
          redraw, probe.config().weibull_shape,
          probe.config().weibull_scale_days, kBranchDay)));
    }
  }
  SurvivalOutcome outcome;
  for (std::size_t c = 0; c < kCurveDays.size(); ++c) {
    simulation.run_until(deployed + sim::days(kCurveDays[c]));
    int alive = 0;
    for (const auto& probe : probes) {
      if (probe->alive()) ++alive;
    }
    outcome.curve_alive[c] = alive;
  }
  return outcome;
}

// --- workload B: faulted-season branching --------------------------------

constexpr std::uint64_t kSeasonSeed = 20080601;
constexpr double kCheckpointDays = 20.0;
constexpr double kSeasonDays = 40.0;
constexpr std::size_t kBranchTrials = 4;
// Checkpoint lands 17 minutes past the day-20 boundary: off every wake
// window, sample slot, and fault-window edge, so the fleet is quiescent.
constexpr int kCheckpointSkewMinutes = 17;

constexpr const char* kSeasonSpec =
    "# branched adversarial season (docs/SNAPSHOT.md)\n"
    "gprs_outage      start=5d  duration=7d  severity=1.0\n"
    "dgps_no_fix      start=14d duration=2d  severity=0.9\n"
    "cf_write_fail    start=16d duration=1d  severity=0.3\n"
    "server_down      start=18d duration=12h\n"
    "harvest_blackout start=25d duration=8d  severity=1.0\n";

station::FleetConfig season_config() {
  station::FleetConfig config;
  config.seed = kSeasonSeed;
  config.start = sim::DateTime{2008, 6, 1, 0, 0, 0};
  config.trace_enabled = false;
  config.fault_spec = kSeasonSpec;

  station::StationSpec base;
  base.station.name = "base";
  base.station.role = station::StationRole::kBaseStation;
  // Under-provisioned, leaky bank so the blackout post-branch actually
  // bites (same shape as bench_fault_soak).
  base.station.power.battery.capacity = util::AmpHours{6.0};
  base.station.power.battery.initial_soc = 0.6;
  base.station.power.battery.self_discharge_per_day = 0.10;
  base.station.uploads.session_timeout = sim::minutes(15);
  base.station.uploads.retry_backoff_base = sim::minutes(1);
  base.station.degrade_after_failed_days = 3;
  base.sync_group = "g1";
  base.chargers = {station::ChargerKind::kSolar, station::ChargerKind::kWind};
  base.probe_count = 3;
  config.stations.push_back(std::move(base));

  station::StationSpec reference;
  reference.station.name = "reference";
  reference.station.role = station::StationRole::kReferenceStation;
  reference.sync_group = "g1";
  reference.chargers = {station::ChargerKind::kSolar,
                        station::ChargerKind::kMains};
  reference.probe_count = 0;
  config.stations.push_back(std::move(reference));
  return config;
}

// The per-trial divergence: one extra hard GPRS outage whose start day is
// the trial index (day 22, 23, 24, 25) — scripted adversity layered on the
// shared season after the branch point.
fault::FaultWindow trial_window(std::size_t trial) {
  fault::FaultWindow window;
  window.kind = fault::FaultKind::kGprsOutage;
  window.start = sim::days(22.0 + double(trial));
  window.duration = sim::days(2.0);
  window.severity = 1.0;
  return window;
}

struct SeasonOutcome {
  std::uint64_t base_runs = 0;
  std::uint64_t base_files = 0;
  std::uint64_t base_brown_outs = 0;
  std::uint64_t base_cold_boots = 0;
  std::uint64_t queued_files = 0;
  int probes_alive = 0;
  int gprs_trips = 0;
};

SeasonOutcome season_outcome(station::Fleet& fleet) {
  station::Station& base = fleet.station(0);
  SeasonOutcome outcome;
  outcome.base_runs = std::uint64_t(base.stats().runs_completed);
  outcome.base_files = std::uint64_t(fleet.server().files_from("base"));
  outcome.base_brown_outs = std::uint64_t(base.stats().brown_outs);
  outcome.base_cold_boots = std::uint64_t(base.stats().cold_boots);
  outcome.queued_files = std::uint64_t(base.uploads().queued_files());
  outcome.probes_alive = fleet.probes_alive();
  outcome.gprs_trips =
      fleet.fault_oracle().trips(fault::FaultKind::kGprsOutage);
  return outcome;
}

sim::Duration checkpoint_offset() {
  return sim::days(kCheckpointDays) + sim::minutes(kCheckpointSkewMinutes);
}

// Warm the shared prefix once and seal it: day 0 -> day 20 + 17 min.
std::vector<std::uint8_t> warm_season_prefix() {
  station::Fleet fleet{season_config()};
  fleet.simulation().run_until(fleet.simulation().now() +
                               checkpoint_offset());
  return fleet.save_snapshot();
}

// One branch trial resumed from the shared snapshot.
SeasonOutcome forked_trial(std::size_t trial,
                           const std::vector<std::uint8_t>& snapshot) {
  auto fleet = std::make_unique<station::Fleet>(season_config());
  fleet->restore_snapshot(snapshot);
  fleet->fault_oracle().add_window(trial_window(trial));
  fleet->simulation().run_until(sim::to_time(fleet->config().start) +
                                sim::days(kSeasonDays));
  return season_outcome(*fleet);
}

// The same branch trial replayed cold from day 0 — the oracle the byte-
// identity gate compares against. The extra window is appended at the
// checkpoint time, exactly as the forked path does.
SeasonOutcome cold_trial(std::size_t trial) {
  auto fleet = std::make_unique<station::Fleet>(season_config());
  fleet->simulation().run_until(fleet->simulation().now() +
                                checkpoint_offset());
  fleet->fault_oracle().add_window(trial_window(trial));
  fleet->simulation().run_until(sim::to_time(fleet->config().start) +
                                sim::days(kSeasonDays));
  return season_outcome(*fleet);
}

// --- opt-in host-dependent speedup section -------------------------------

void run_speed_section() {
  bench::subheading(
      "warm-prefix speedup (host-dependent, GW_BENCH_FORK_SPEED=1)");
  runner::MonteCarloRunner pool{bench::thread_count()};
  // gwlint: allow(banned-api): wall-clock timing, exported as
  // host_dependent bench metadata only
  const auto cold_start = std::chrono::steady_clock::now();
  pool.run(kBranchTrials, [](std::size_t trial) { return cold_trial(trial); });
  // gwlint: allow(banned-api): wall-clock timing, exported as
  // host_dependent bench metadata only
  const auto cold_end = std::chrono::steady_clock::now();
  pool.run_forked(
      kBranchTrials, [] { return warm_season_prefix(); },
      [](std::size_t trial, const std::vector<std::uint8_t>& snapshot) {
        return forked_trial(trial, snapshot);
      });
  // gwlint: allow(banned-api): wall-clock timing, exported as
  // host_dependent bench metadata only
  const auto fork_end = std::chrono::steady_clock::now();

  const double cold_seconds =
      std::chrono::duration<double>(cold_end - cold_start).count();
  const double fork_seconds =
      std::chrono::duration<double>(fork_end - cold_end).count();
  const double speedup =
      fork_seconds > 0.0 ? cold_seconds / fork_seconds : 1.0;
  bench::row({"Mode", "Wall s"}, {10, 9});
  bench::row({"cold", util::format_fixed(cold_seconds, 2)}, {10, 9});
  bench::row({"forked", util::format_fixed(fork_seconds, 2)}, {10, 9});
  bench::note("speedup " + util::format_fixed(speedup, 2) +
              "x (expected ~" +
              util::format_fixed(kSeasonDays / (kSeasonDays - kCheckpointDays),
                                 1) +
              "x at full branch overlap: " +
              util::format_fixed(kCheckpointDays, 0) +
              " of " + util::format_fixed(kSeasonDays, 0) +
              " days are shared prefix)");

  obs::MetricsRegistry metrics;
  metrics.gauge("fork", "cold_wall_seconds").set(cold_seconds);
  metrics.gauge("fork", "forked_wall_seconds").set(fork_seconds);
  metrics.gauge("fork", "speedup").set(speedup);
  obs::BenchReport report;
  report.bench = "fork_warmup_speed";
  report.meta = {{"branch_trials", std::to_string(kBranchTrials)},
                 {"host_dependent", "true"},
                 {"workload", "two-station faulted season, fork at day 20 "
                              "of 40"}};
  report.sections = {{"speed", &metrics, nullptr}};
  bench::export_report(report);
}

void run() {
  const bool cold = bench::fork_mode_cold();
  bench::heading("warm-prefix Monte Carlo branching (docs/SNAPSHOT.md)");
  bench::note(std::string("mode: ") +
              (cold ? "cold replay (byte-identity oracle)"
                    : "forked from day-20 snapshot"));
  runner::MonteCarloRunner pool{bench::thread_count()};

  // --- workload A ---------------------------------------------------------
  bench::subheading("A. probe survival branching (" +
                    std::to_string(kSurvivalTrials) + " trials, branch at "
                    "day " + util::format_fixed(kBranchDay, 0) + ")");
  const auto survival_outcomes = pool.run_forked(
      std::size_t(kSurvivalTrials), [] { return warm_survival_prefix(); },
      [](std::size_t trial, const SurvivalPrefix& prefix) {
        return survival_trial(trial, prefix);
      });
  std::array<double, kCurveDays.size()> curve{};
  for (const SurvivalOutcome& outcome : survival_outcomes) {
    for (std::size_t c = 0; c < kCurveDays.size(); ++c) {
      curve[c] += outcome.curve_alive[c];
    }
  }
  bench::row({"Day", "Alive fraction"}, {6, 14});
  for (std::size_t c = 0; c < kCurveDays.size(); ++c) {
    curve[c] /= double(kSurvivalTrials * kProbes);
    bench::row({std::to_string(kCurveDays[c]),
                util::format_fixed(curve[c], 3)},
               {6, 14});
  }
  bench::note("survivors of the shared burn-in redraw their remaining "
              "lifetime from the age-conditioned Weibull — the prefix is "
              "simulated once, not " + std::to_string(kSurvivalTrials) +
              " times");

  // --- workload B ---------------------------------------------------------
  bench::subheading("B. faulted-season branching (" +
                    std::to_string(kBranchTrials) + " branches, checkpoint "
                    "day " + util::format_fixed(kCheckpointDays, 0) + " of " +
                    util::format_fixed(kSeasonDays, 0) + ")");
  std::vector<SeasonOutcome> seasons;
  if (cold) {
    seasons = pool.run(kBranchTrials,
                       [](std::size_t trial) { return cold_trial(trial); });
  } else {
    const std::vector<std::uint8_t> snapshot = warm_season_prefix();
    // Drop the sealed container beside the JSON so tools/gwsnap has a real
    // snapshot to inspect (section table, fingerprint, diff).
    std::ofstream out("BENCH_fork_warmup.gwsnap", std::ios::binary);
    if (out) {
      out.write(reinterpret_cast<const char*>(snapshot.data()),
                std::streamsize(snapshot.size()));
      bench::note("wrote BENCH_fork_warmup.gwsnap (" +
                  std::to_string(snapshot.size()) + " bytes, inspect with "
                  "tools/gwsnap)");
    }
    seasons = pool.run(kBranchTrials, [&](std::size_t trial) {
      return forked_trial(trial, snapshot);
    });
  }
  bench::row({"Branch", "Extra outage", "Runs", "Files", "Brown-outs",
              "Cold boots", "Backlog", "Probes"},
             {7, 13, 6, 6, 11, 11, 8, 7});
  for (std::size_t trial = 0; trial < seasons.size(); ++trial) {
    const SeasonOutcome& outcome = seasons[trial];
    bench::row({std::to_string(trial),
                "day " + std::to_string(22 + trial) + "+2d",
                std::to_string(outcome.base_runs),
                std::to_string(outcome.base_files),
                std::to_string(outcome.base_brown_outs),
                std::to_string(outcome.base_cold_boots),
                std::to_string(outcome.queued_files),
                std::to_string(outcome.probes_alive)},
               {7, 13, 6, 6, 11, 11, 8, 7});
  }
  bench::note("each branch shares days 0-20 (scripted outages included) "
              "and diverges only through its extra window — cold replay "
              "(GW_BENCH_FORK_MODE=cold) must export identical bytes");

  // --- deterministic export ----------------------------------------------
  // No mode marker, no events_executed (cold replay executes rebuild-
  // dropped no-ops the fork never sees), no wall-clock: scripts/check.sh
  // byte-diffs this file across fork/cold and 1-thread/default-pool runs.
  obs::MetricsRegistry registry;
  for (std::size_t c = 0; c < kCurveDays.size(); ++c) {
    registry.gauge("survival",
                   "alive_fraction_day_" + std::to_string(kCurveDays[c]))
        .set(curve[c]);
  }
  for (std::size_t trial = 0; trial < seasons.size(); ++trial) {
    const SeasonOutcome& outcome = seasons[trial];
    const std::string component = "branch" + std::to_string(trial);
    registry.gauge(component, "base_runs").set(double(outcome.base_runs));
    registry.gauge(component, "base_files").set(double(outcome.base_files));
    registry.gauge(component, "base_brown_outs")
        .set(double(outcome.base_brown_outs));
    registry.gauge(component, "base_cold_boots")
        .set(double(outcome.base_cold_boots));
    registry.gauge(component, "backlog_files")
        .set(double(outcome.queued_files));
    registry.gauge(component, "probes_alive")
        .set(double(outcome.probes_alive));
    registry.gauge(component, "gprs_trips").set(double(outcome.gprs_trips));
  }
  obs::BenchReport report;
  report.bench = "fork_warmup";
  report.meta = {{"branch_trials", std::to_string(kBranchTrials)},
                 {"checkpoint_day", util::format_fixed(kCheckpointDays, 0)},
                 {"season_days", util::format_fixed(kSeasonDays, 0)},
                 {"seed", std::to_string(kSeasonSeed)},
                 {"survival_trials", std::to_string(kSurvivalTrials)}};
  report.sections = {{"fork", &registry, nullptr}};
  bench::export_report(report);

  if (bench::fork_speed_enabled()) {
    run_speed_section();
  } else {
    bench::note("set GW_BENCH_FORK_SPEED=1 for the host-dependent speedup "
                "section (BENCH_fork_warmup_speed.json)");
  }
}

}  // namespace
}  // namespace gw

int main() {
  gw::run();
  return 0;
}
