// §II — the Gumsense design point: "this processing power comes at the cost
// of high power consumption (~100mA) and no useful sleep mode. It is for
// this reason that ... it is combined with an MSP430, meaning the Gumstix
// is only powered when there is a need for more processing power." And the
// Norway predecessor: "its sleep current was relatively high, which meant
// it needed a large power reserve in the winter months."
//
// Three designs over a dark, harvest-free winter (the Iceland worst case):
//   A. always-on Gumstix (no sleep mode at all);
//   B. Norway-style Linux box with a (relatively high) sleep current,
//      waking for the daily window;
//   C. Gumsense: MSP430 always on at ~50 uA, Gumstix powered ~1.2 h/day.
// Reported: days a 36 Ah bank lasts, and the bank needed for a 120-day
// winter.
#include <cstdio>

#include "bench_util.h"
#include "power/battery.h"
#include "util/strings.h"

namespace gw {
namespace {

struct Design {
  const char* name;
  double idle_watts;
  double active_watts;
  double active_hours_per_day;
};

constexpr Design kDesigns[] = {
    {"always-on Gumstix (no sleep)", 0.9, 0.9, 0.0},
    {"Norway Linux (high sleep I)", 0.16, 0.9, 1.2},
    {"Gumsense MSP430+Gumstix", 0.0006, 0.9, 1.2},
};

double survival_days(const Design& design, double capacity_ah,
                     double temperature_c) {
  power::BatteryConfig config;
  config.capacity = util::AmpHours{capacity_ah};
  config.initial_soc = 1.0;
  config.self_discharge_per_day = 0.001;
  power::LeadAcidBattery battery{config};
  const util::Volts bus{12.0};
  double days = 0.0;
  while (!battery.empty() && days < 3000.0) {
    const double idle_hours = 24.0 - design.active_hours_per_day;
    battery.step(util::Amps{0.0},
                 util::Watts{design.idle_watts} / bus, idle_hours,
                 util::Celsius{temperature_c});
    if (battery.empty()) break;
    battery.step(util::Amps{0.0},
                 util::Watts{design.active_watts} / bus,
                 design.active_hours_per_day,
                 util::Celsius{temperature_c});
    days += 1.0;
  }
  return days;
}

double bank_needed_for(const Design& design, double winter_days,
                       double temperature_c) {
  double lo = 1.0;
  double hi = 4096.0;
  for (int iteration = 0; iteration < 40; ++iteration) {
    const double mid = 0.5 * (lo + hi);
    if (survival_days(design, mid, temperature_c) >= winter_days) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return hi;
}

void run() {
  bench::heading(
      "Sec II: duty-cycling designs over a dark winter (no harvest, -10 C)");

  bench::row({"Design", "Idle draw", "36 Ah lasts", "Bank for 120 d"},
             {30, 10, 12, 15});
  for (const auto& design : kDesigns) {
    const double days = survival_days(design, 36.0, -10.0);
    const double bank = bank_needed_for(design, 120.0, -10.0);
    bench::row({design.name,
                util::format_fixed(design.idle_watts * 1000.0, 1) + " mW",
                util::format_fixed(days, 0) + " d",
                util::format_fixed(bank, 0) + " Ah"},
               {30, 10, 12, 15});
  }

  bench::note(
      "paper: the Gumstix has \"no useful sleep mode\" — alone it cannot "
      "winter on any sane battery; the Norway design survived only with a "
      "large reserve; Gumsense makes 36 Ah comfortably enough (Sec II)");

  bench::subheading("daily energy decomposition (Gumsense, state 2 day)");
  struct Item {
    const char* name;
    double watts;
    double hours;
  };
  const Item items[] = {
      {"MSP430 (always on)", 0.0006, 24.0},
      {"Gumstix window", 0.9, 1.2},
      {"dGPS 1 reading", 3.6, 308.0 / 3600.0},
      {"GPRS upload", 2.64, 0.35},
  };
  double total = 0.0;
  for (const auto& item : items) {
    const double wh = item.watts * item.hours;
    total += wh;
    bench::note(std::string(item.name) + ": " +
                util::format_fixed(wh, 3) + " Wh/day");
  }
  bench::note("total ≈ " + util::format_fixed(total, 2) +
              " Wh/day -> a 432 Wh (36 Ah) bank carries ~" +
              util::format_fixed(432.0 * 0.75 / total, 0) +
              " cold days with zero harvest");
}

}  // namespace
}  // namespace gw

int main() {
  gw::run();
  return 0;
}
