// Micro-benchmarks (google-benchmark) for the library's hot kernels: the
// event queue that drives multi-year simulations, the MD5 used by the
// update pipeline, CRC32 framing checks, the battery integrator, and a full
// NACK protocol session. These measure the *implementation*, not the paper;
// they exist so performance regressions in the substrate are visible.
#include <benchmark/benchmark.h>

#include "env/environment.h"
#include "power/battery.h"
#include "proto/bulk_transfer.h"
#include "sim/simulation.h"
#include "station/deployment.h"
#include "util/crc32.h"
#include "util/md5.h"

namespace gw {
namespace {

void BM_EventQueueScheduleRun(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulation simulation;
    for (int i = 0; i < int(state.range(0)); ++i) {
      simulation.schedule_at(sim::SimTime{(i * 7919) % 100000}, [] {});
    }
    simulation.run_all();
    benchmark::DoNotOptimize(simulation.events_executed());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EventQueueScheduleRun)->Arg(1000)->Arg(10000);

void BM_Md5Throughput(benchmark::State& state) {
  const std::string payload(std::size_t(state.range(0)), 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(util::Md5::digest(payload));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Md5Throughput)->Arg(4096)->Arg(165 * 1024);

void BM_Crc32Throughput(benchmark::State& state) {
  const std::string payload(std::size_t(state.range(0)), 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(util::crc32(payload));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Crc32Throughput)->Arg(64)->Arg(165 * 1024);

void BM_BatteryTick(benchmark::State& state) {
  power::BatteryConfig config;
  power::LeadAcidBattery battery{config};
  for (auto _ : state) {
    battery.step(util::Amps{0.5}, util::Amps{0.3}, 1.0 / 60.0,
                 util::Celsius{-5.0});
    benchmark::DoNotOptimize(battery.soc());
    if (battery.empty()) battery.set_soc(0.9);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BatteryTick);

void BM_NackSession(benchmark::State& state) {
  for (auto _ : state) {
    env::TemperatureModel temperature{env::TemperatureConfig{},
                                      util::Rng{1}};
    env::MeltModel melt{env::MeltConfig{}, util::Rng{2}};
    proto::ProbeLink link{melt, temperature, util::Rng{3}};
    proto::ProbeStore store;
    for (std::uint32_t seq = 0; seq < std::uint32_t(state.range(0)); ++seq) {
      proto::ProbeReading reading;
      reading.seq = seq;
      store.add(reading);
    }
    proto::NackBulkTransfer protocol{link};
    const auto stats = protocol.run(store, sim::at_midnight(2009, 7, 20),
                                    sim::hours(12));
    benchmark::DoNotOptimize(stats.delivered);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_NackSession)->Arg(3000);

void BM_DeploymentDay(benchmark::State& state) {
  // Cost of simulating one full two-station deployment day.
  for (auto _ : state) {
    state.PauseTiming();
    station::DeploymentConfig config;
    config.trace_enabled = false;
    station::Deployment deployment{config};
    state.ResumeTiming();
    deployment.run_days(1.0);
    benchmark::DoNotOptimize(deployment.base().stats().runs_completed);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DeploymentDay)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace gw

BENCHMARK_MAIN();
