// Fault-injection soak: a scripted adversarial season versus a clean one.
//
// The paper's resilience story is qualitative — daily retries absorb GPRS
// failures "known to occur frequently, especially in the wetter summer"
// (§I), the watchdog ends hung transfers (§VI), and §IV recovery survives
// total exhaustion. This bench quantifies it: the same two-station fleet
// runs one summer clean and one under docs/FAULTS.md's scripted season
// (week-long GPRS outage, dGPS fix loss, CF write faults, a server-down
// window, a 12-day harvest blackout), and the ledgers are compared side by
// side. Exports BENCH_fault_soak.json (schema glacsweb.bench.v1).
#include <cstdio>
#include <memory>
#include <string>

#include "bench_util.h"
#include "runner/monte_carlo_runner.h"
#include "station/deployment.h"
#include "util/strings.h"

namespace gw {
namespace {

constexpr const char* kSeasonSpec =
    "# adversarial season (docs/FAULTS.md)\n"
    "gprs_outage      start=20d duration=7d  severity=1.0\n"
    "dgps_no_fix      start=35d duration=3d  severity=0.9\n"
    "cf_write_fail    start=45d duration=2d  severity=0.3\n"
    "server_down      start=50d duration=36h\n"
    "harvest_blackout start=70d duration=12d severity=1.0\n";

constexpr double kDays = 130.0;

station::DeploymentConfig soak_config(const std::string& fault_spec) {
  station::DeploymentConfig config;
  config.seed = 20080601;
  config.start = sim::DateTime{2008, 6, 1, 0, 0, 0};
  config.fault_spec = fault_spec;
  config.trace_enabled = false;
  // Under-provisioned, leaky base bank so the scripted harvest blackout
  // actually exhausts it (§IV's recovery path in-fleet).
  config.base.power.battery.capacity = util::AmpHours{6.0};
  config.base.power.battery.initial_soc = 0.6;
  config.base.power.battery.self_discharge_per_day = 0.10;
  // Hardened comms on the base: session timeout, backoff, degraded mode.
  config.base.uploads.session_timeout = sim::minutes(15);
  config.base.uploads.retry_backoff_base = sim::minutes(1);
  config.base.degrade_after_failed_days = 3;
  return config;
}

void compare_row(const std::string& what, const std::string& clean,
                 const std::string& faulted) {
  bench::row({what, clean, faulted}, {34, 14, 14});
}

void run() {
  bench::heading("fault soak: scripted adversarial season vs clean season");
  bench::note("fleet: base + reference + 7 probes, " +
              util::format_fixed(kDays, 0) + " days from 2008-06-01");

  // The two seasons are independent worlds — run them as two parallel
  // trials (Deployment is not movable, so each comes back behind a
  // unique_ptr; trial 0 is clean, trial 1 scripted).
  runner::MonteCarloRunner pool{bench::thread_count()};
  auto seasons = pool.run(2, [](std::size_t trial) {
    auto deployment = std::make_unique<station::Deployment>(
        soak_config(trial == 0 ? "" : kSeasonSpec));
    deployment->run_days(kDays);
    return deployment;
  });
  station::Deployment& clean = *seasons[0];
  station::Deployment& faulted = *seasons[1];

  bench::subheading("1. season outcomes, same seed, same weather");
  compare_row("", "clean", "scripted");
  for (const auto& name : {std::string("base"), std::string("reference")}) {
    auto& c = name == "base" ? clean.base() : clean.reference();
    auto& f = name == "base" ? faulted.base() : faulted.reference();
    compare_row(name + ": runs completed",
                std::to_string(c.stats().runs_completed),
                std::to_string(f.stats().runs_completed));
    compare_row(name + ": files reaching Southampton",
                std::to_string(clean.server().files_from(name)),
                std::to_string(faulted.server().files_from(name)));
    compare_row(name + ": GPRS sessions attempted",
                std::to_string(c.gprs().sessions_attempted()),
                std::to_string(f.gprs().sessions_attempted()));
    compare_row(name + ": registration failures",
                std::to_string(c.gprs().registration_failures()),
                std::to_string(f.gprs().registration_failures()));
    compare_row(name + ": backlog at day " + util::format_fixed(kDays, 0),
                std::to_string(c.uploads().queued_files()),
                std::to_string(f.uploads().queued_files()));
  }
  compare_row("base: brown-outs",
              std::to_string(clean.base().stats().brown_outs),
              std::to_string(faulted.base().stats().brown_outs));
  compare_row("base: cold boots",
              std::to_string(clean.base().stats().cold_boots),
              std::to_string(faulted.base().stats().cold_boots));
  compare_row("base: degraded (log-only) days",
              std::to_string(clean.base().stats().degraded_days),
              std::to_string(faulted.base().stats().degraded_days));

  bench::subheading("2. fault trips (injected windows that actually bit)");
  for (int i = 0; i < fault::kFaultKindCount; ++i) {
    const auto kind = fault::FaultKind(i);
    bench::note(std::string(fault::to_string(kind)) + ": " +
                std::to_string(faulted.fault_oracle().trips(kind)) +
                " trips");
  }

  bench::subheading("3. invariants under injection");
  const bool ledgers =
      faulted.base().gprs().ledger_consistent() &&
      faulted.reference().gprs().ledger_consistent();
  bench::note(std::string("modem session ledgers reconcile: ") +
              (ledgers ? "yes" : "NO"));
  const bool recovered = !faulted.base().recovery().rtc_untrusted();
  bench::note(std::string("base RTC re-trusted after blackout: ") +
              (recovered ? "yes" : "NO"));
  bench::paper_vs_measured("everyday failures absorbed",
                           "daily retry design (Sec I, VI)",
                           "fleet alive after scripted season");

  obs::BenchReport report;
  report.bench = "fault_soak";
  report.meta = {{"days", util::format_fixed(kDays, 0)},
                 {"season", "gprs_outage+dgps_no_fix+cf_write_fail+"
                            "server_down+harvest_blackout"}};
  report.sections = {
      {"base", &faulted.base().metrics(), &faulted.base().journal()},
      {"reference", &faulted.reference().metrics(),
       &faulted.reference().journal()},
      {"fault", &faulted.fault_metrics(), &faulted.fault_journal()}};
  bench::export_report(report);
}

}  // namespace
}  // namespace gw

int main() {
  gw::run();
  return 0;
}
