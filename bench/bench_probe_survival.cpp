// §V — probe longevity: "The probes deployed in the summer of 2008 survived
// longer than previous generations (4/7 after one year, with fewer
// vanishing offline and data is being produced by two after 18 months under
// the ice)."
//
// Monte-Carlo over the probe wear-out model (Weibull shape 2, scale 488 d,
// fitted to exactly those two points) — expected survivors out of 7 at one
// year and 18 months, plus the survival curve and the distribution of
// survivor counts across hypothetical deployments.
//
// Trials run on runner::MonteCarloRunner: each builds an isolated world
// from its trial index (probe streams are named util::Rng forks, so seeds
// are collision-proof by construction) and the aggregation below walks the
// results in trial order — the printed numbers are identical at any thread
// count (GW_BENCH_THREADS overrides the pool size).
#include <array>
#include <chrono>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util.h"
#include "runner/monte_carlo_runner.h"
#include "station/probe_node.h"
#include "util/strings.h"

namespace gw {
namespace {

// Survival curve samples.
constexpr std::array<int, 8> kCurveDays{90, 180, 270, 365, 455, 547, 640, 730};

struct TrialOutcome {
  int alive_1y = 0;
  int alive_18m = 0;
  std::array<int, kCurveDays.size()> curve_alive{};
};

void run() {
  bench::heading("Sec V: probe survival (7 deployed, summer 2008)");

  constexpr int kTrials = 2000;
  constexpr int kProbesPerTrial = 7;
  const sim::SimTime deployed = sim::at_midnight(2008, 9, 1);
  const util::Rng bench_rng{2008};

  runner::MonteCarloRunner pool{bench::thread_count()};
  // gwlint: allow(banned-api): wall-clock trial timing, exported as
  // host_dependent bench metadata only
  const auto wall_start = std::chrono::steady_clock::now();
  const std::vector<TrialOutcome> outcomes =
      pool.run(kTrials, [&](std::size_t trial) {
        sim::Simulation simulation{deployed};
        env::Environment environment{7};
        const util::Rng trial_rng =
            bench_rng.fork("survival-trial-" + std::to_string(trial));
        std::vector<std::unique_ptr<station::ProbeNode>> probes;
        for (int i = 0; i < kProbesPerTrial; ++i) {
          station::ProbeNodeConfig config;
          config.probe_id = 20 + i;
          config.sample_interval = sim::days(3650);  // no samples: fast run
          probes.push_back(std::make_unique<station::ProbeNode>(
              simulation, environment,
              trial_rng.fork("probe-" + std::to_string(config.probe_id)),
              config));
        }
        TrialOutcome outcome;
        for (std::size_t c = 0; c < kCurveDays.size(); ++c) {
          simulation.run_until(deployed + sim::days(kCurveDays[c]));
          int alive = 0;
          for (const auto& probe : probes) {
            if (probe->alive()) ++alive;
          }
          outcome.curve_alive[c] = alive;
          if (kCurveDays[c] == 365) outcome.alive_1y = alive;
          if (kCurveDays[c] == 547) outcome.alive_18m = alive;
        }
        return outcome;
      });
  const double wall_seconds =
      // gwlint: allow(banned-api): wall-clock trial timing, exported as
      // host_dependent bench metadata only
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();

  int survivors_1y[kProbesPerTrial + 1] = {};
  int survivors_18m[kProbesPerTrial + 1] = {};
  double mean_1y = 0.0;
  double mean_18m = 0.0;
  double curve_alive[kCurveDays.size()] = {};
  for (const TrialOutcome& outcome : outcomes) {
    ++survivors_1y[outcome.alive_1y];
    ++survivors_18m[outcome.alive_18m];
    mean_1y += outcome.alive_1y;
    mean_18m += outcome.alive_18m;
    for (std::size_t c = 0; c < kCurveDays.size(); ++c) {
      curve_alive[c] += outcome.curve_alive[c];
    }
  }

  bench::subheading("expected survivors out of 7");
  bench::paper_vs_measured(
      "alive after 1 year", "4/7",
      util::format_fixed(mean_1y / kTrials, 2) + "/7 (mean over " +
          std::to_string(kTrials) + " deployments)");
  bench::paper_vs_measured(
      "alive after 18 months", "2/7",
      util::format_fixed(mean_18m / kTrials, 2) + "/7");

  bench::subheading("survival curve (fraction of probes alive)");
  bench::row({"Day", "Alive fraction"}, {6, 14});
  for (std::size_t c = 0; c < kCurveDays.size(); ++c) {
    bench::row({std::to_string(kCurveDays[c]),
                util::format_fixed(
                    curve_alive[c] / double(kTrials * kProbesPerTrial), 3)},
               {6, 14});
  }

  bench::subheading("distribution of 1-year survivor counts");
  for (int k = 0; k <= kProbesPerTrial; ++k) {
    const double fraction = survivors_1y[k] / double(kTrials);
    std::string bar(std::size_t(fraction * 60.0), '#');
    std::printf("  %d/7: %5.1f%% %s\n", k, 100.0 * fraction, bar.c_str());
  }
  bench::note(
      "the paper's 4/7 at one year sits near the mode of the fitted model; "
      "2 at 18 months matches the wear-out tail");
  bench::note(std::to_string(kTrials) + " trials on " +
              std::to_string(pool.threads()) + " threads in " +
              util::format_fixed(wall_seconds, 3) + " s");
}

}  // namespace
}  // namespace gw

int main() {
  gw::run();
  return 0;
}
