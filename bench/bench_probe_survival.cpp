// §V — probe longevity: "The probes deployed in the summer of 2008 survived
// longer than previous generations (4/7 after one year, with fewer
// vanishing offline and data is being produced by two after 18 months under
// the ice)."
//
// Monte-Carlo over the probe wear-out model (Weibull shape 2, scale 488 d,
// fitted to exactly those two points) — expected survivors out of 7 at one
// year and 18 months, plus the survival curve and the distribution of
// survivor counts across hypothetical deployments.
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util.h"
#include "station/probe_node.h"
#include "util/strings.h"

namespace gw {
namespace {

void run() {
  bench::heading("Sec V: probe survival (7 deployed, summer 2008)");

  constexpr int kTrials = 2000;
  constexpr int kProbesPerTrial = 7;
  int survivors_1y[kProbesPerTrial + 1] = {};
  int survivors_18m[kProbesPerTrial + 1] = {};
  double mean_1y = 0.0;
  double mean_18m = 0.0;
  // Survival curve samples.
  const int curve_days[] = {90, 180, 270, 365, 455, 547, 640, 730};
  double curve_alive[std::size(curve_days)] = {};

  for (int trial = 0; trial < kTrials; ++trial) {
    sim::Simulation simulation{sim::at_midnight(2008, 9, 1)};
    env::Environment environment{7};
    std::vector<std::unique_ptr<station::ProbeNode>> probes;
    for (int i = 0; i < kProbesPerTrial; ++i) {
      station::ProbeNodeConfig config;
      config.probe_id = 20 + i;
      config.sample_interval = sim::days(3650);  // no samples: fast run
      probes.push_back(std::make_unique<station::ProbeNode>(
          simulation, environment,
          util::Rng{std::uint64_t(trial) * 31 + std::uint64_t(i)}, config));
    }
    int alive_1y = 0;
    int alive_18m = 0;
    std::size_t curve_index = 0;
    for (std::size_t c = 0; c < std::size(curve_days); ++c) {
      simulation.run_until(sim::at_midnight(2008, 9, 1) +
                           sim::days(curve_days[c]));
      int alive = 0;
      for (const auto& probe : probes) {
        if (probe->alive()) ++alive;
      }
      curve_alive[c] += alive;
      if (curve_days[c] == 365) alive_1y = alive;
      if (curve_days[c] == 547) alive_18m = alive;
      (void)curve_index;
    }
    ++survivors_1y[alive_1y];
    ++survivors_18m[alive_18m];
    mean_1y += alive_1y;
    mean_18m += alive_18m;
  }

  bench::subheading("expected survivors out of 7");
  bench::paper_vs_measured(
      "alive after 1 year", "4/7",
      util::format_fixed(mean_1y / kTrials, 2) + "/7 (mean over " +
          std::to_string(kTrials) + " deployments)");
  bench::paper_vs_measured(
      "alive after 18 months", "2/7",
      util::format_fixed(mean_18m / kTrials, 2) + "/7");

  bench::subheading("survival curve (fraction of probes alive)");
  bench::row({"Day", "Alive fraction"}, {6, 14});
  for (std::size_t c = 0; c < std::size(curve_days); ++c) {
    bench::row({std::to_string(curve_days[c]),
                util::format_fixed(
                    curve_alive[c] / double(kTrials * kProbesPerTrial), 3)},
               {6, 14});
  }

  bench::subheading("distribution of 1-year survivor counts");
  for (int k = 0; k <= kProbesPerTrial; ++k) {
    const double fraction = survivors_1y[k] / double(kTrials);
    std::string bar(std::size_t(fraction * 60.0), '#');
    std::printf("  %d/7: %5.1f%% %s\n", k, 100.0 * fraction, bar.c_str());
  }
  bench::note(
      "the paper's 4/7 at one year sits near the mode of the fitted model; "
      "2 at 18 months matches the wear-out tail");
}

}  // namespace
}  // namespace gw

int main() {
  gw::run();
  return 0;
}
