// §IV — automatic schedule resetting after total power loss.
//
// "the real time clock will have reset to 0 which is 01/01/1970 00:00 ...
// It then checks that its current time is before the last time the system
// ran; if that fails it knows that the RTC is not to be trusted. ... If the
// system cannot set the time using GPS then the system will sleep for a day
// and try again. In the future this could also be extended to fall back to
// getting the time using the GPRS link and network time protocol."
//
// Experiments: (1) end-to-end exhaustion -> recharge -> recovery on a full
// station; (2) recovery-time sweep vs GPS fix availability, with and
// without the NTP fallback extension; (3) ablation: what happens with no
// recovery logic at all.
#include <cstdio>

#include "bench_util.h"
#include "core/recovery.h"
#include "station/station.h"
#include "util/strings.h"

namespace gw {
namespace {

void end_to_end() {
  bench::subheading("1. end-to-end: exhaustion, recharge, recovery");
  sim::Simulation simulation{sim::at_midnight(2009, 10, 1)};
  env::Environment environment{5};
  station::SouthamptonServer server;
  station::StationConfig config;
  config.name = "base";
  config.role = station::StationRole::kBaseStation;
  config.power.battery.initial_soc = 0.06;
  config.power.battery.self_discharge_per_day = 0.05;
  config.gprs.registration_success = 1.0;
  config.gprs.drop_per_minute = 0.0;
  station::Station s{simulation, environment, server, util::Rng{9}, config};
  s.start();
  s.gprs().power_on();  // stuck radio: drains the bank in hours
  simulation.run_until(simulation.now() + sim::days(2));
  std::printf("  day 2: brown-outs=%d, RTC reads %s (epoch reset)\n",
              s.stats().brown_outs,
              sim::format_iso(s.board().msp().rtc_now()).c_str());

  // Recharge arrives (mains hookup during a field visit).
  power::MainsChargerConfig mains{.season_start_month = 1,
                                  .season_end_month = 12};
  s.add_charger(std::make_unique<power::MainsCharger>(mains));
  simulation.run_until(simulation.now() + sim::days(4));
  std::printf(
      "  day 6: cold boots=%d, GPS resyncs=%d, RTC error=%lld ms, state=%d, "
      "runs completed=%d\n",
      s.stats().cold_boots, s.recovery().gps_resyncs(),
      (long long)s.board().msp().rtc_error_ms(),
      core::to_int(s.current_state()), s.stats().runs_completed);
  bench::paper_vs_measured("restart state after recovery", "0 (Table 2)",
                           "station restarted in state 0, then adapted");
}

void fix_probability_sweep() {
  bench::subheading("2. days to clock recovery vs GPS fix availability");
  bench::row({"P(fix per attempt)", "GPS only (days)", "with NTP fallback"},
             {19, 16, 18});
  for (const double p : {1.0, 0.9, 0.5, 0.2, 0.05}) {
    std::string cells[2];
    for (int variant = 0; variant < 2; ++variant) {
      double total_days = 0.0;
      constexpr int kTrials = 200;
      for (int trial = 0; trial < kTrials; ++trial) {
        sim::Simulation simulation{sim::at_midnight(2009, 12, 1)};
        env::Environment environment{5};
        power::PowerSystemConfig power_config;
        power::PowerSystem power{simulation, environment, power_config};
        hw::Msp430 msp{simulation, power,
                       util::Rng{std::uint64_t(trial) * 7 + 1}};
        hw::DgpsConfig dgps_config;
        dgps_config.fix_probability = p;
        hw::DgpsReceiver dgps{simulation, power,
                              util::Rng{std::uint64_t(trial) * 13 + 3},
                              dgps_config};
        hw::GprsConfig gprs_config;
        gprs_config.registration_success = 1.0;
        gprs_config.drop_per_minute = 0.0;
        hw::GprsModem gprs{simulation, power,
                           util::Rng{std::uint64_t(trial) * 19 + 7},
                           gprs_config};
        core::RecoveryConfig recovery_config;
        recovery_config.ntp_fallback = variant == 1;
        core::RecoveryManager recovery{
            simulation, msp, dgps,
            util::Rng{std::uint64_t(trial) * 17 + 5}, recovery_config};
        recovery.attach_modem(&gprs);  // NTP rides a real session now
        recovery.record_successful_run();
        msp.brown_out();
        int days = 0;
        while (recovery.rtc_untrusted() && days < 120) {
          (void)recovery.attempt();
          if (recovery.rtc_untrusted()) {
            simulation.run_until(simulation.now() + sim::days(1));
            ++days;
          }
        }
        total_days += days;
      }
      cells[variant] = util::format_fixed(total_days / kTrials, 2);
    }
    bench::row({util::format_fixed(p, 2), cells[0], cells[1]}, {19, 16, 18});
  }
  bench::note("paper: GPS-only with daily retry; NTP fallback is Sec IV's "
              "proposed extension (implemented here)");
}

void no_recovery_ablation() {
  bench::subheading("3. ablation: no RTC sanity check at all");
  // Without §IV's check the station would run with a 1970 clock: its wake
  // schedule is gone and even if rewritten blindly, every timestamped
  // reading and the dGPS synchronisation would be ~40 years wrong.
  sim::Simulation simulation{sim::at_midnight(2009, 12, 1)};
  env::Environment environment{5};
  power::PowerSystemConfig power_config;
  power::PowerSystem power{simulation, environment, power_config};
  hw::Msp430 msp{simulation, power, util::Rng{1}};
  msp.brown_out();
  const auto error_years =
      double((simulation.now() - msp.rtc_now()).to_days()) / 365.25;
  bench::note("unrepaired RTC error after brown-out: " +
              util::format_fixed(error_years, 1) + " years");
  bench::note(
      "consequences (Sec IV): schedule lost, dGPS pairs cannot be matched, "
      "\"any of the measured values\" lose meaning");
}

void run() {
  bench::heading("Sec IV: automatic schedule resetting after power loss");
  end_to_end();
  fix_probability_sweep();
  no_recovery_ablation();
}

}  // namespace
}  // namespace gw

int main() {
  gw::run();
  return 0;
}
