// §V — probe bulk transfer: "With 3000 readings being sent in the summer,
// across the weakest link (due to summer water) 400 missed packets were
// common. Fetching that many individual readings was never considered in
// the testing phase and the process could fail. Fortunately the task was
// not marked as complete in the probes; so many missing readings were
// obtained in subsequent days."
//
// Four experiments:
//   1. the headline numbers: 3000 summer readings -> ~400 stream misses;
//   2. NACK vs per-packet-ACK (stop-and-wait): packets and airtime, summer
//      and winter — the value of "avoiding acknowledge packets";
//   3. the deployed firmware failure (individual-fetch limit) and the
//      multi-day drain that rescued it;
//   4. seasonal sweep of loss and delivered yield per 2-hour window.
#include <cstdio>

#include "bench_util.h"
#include "proto/bulk_transfer.h"
#include "runner/monte_carlo_runner.h"
#include "station/wired_probe.h"
#include "util/strings.h"

namespace gw {
namespace {

struct Rig {
  env::TemperatureModel temperature{env::TemperatureConfig{}, util::Rng{1}};
  env::MeltModel melt{env::MeltConfig{}, util::Rng{2}};
  proto::ProbeLink link{melt, temperature, util::Rng{3}};
  proto::ProbeStore store;

  void fill(std::size_t n) {
    for (std::uint32_t seq = 0; seq < n; ++seq) {
      proto::ProbeReading reading;
      reading.probe_id = 21;
      reading.seq = seq;
      store.add(reading);
    }
  }

  // Advance the forward-only melt model into the target season.
  void to_summer() {
    (void)melt.water_index(sim::at_midnight(2009, 2, 1), temperature);
    (void)melt.water_index(sim::at_midnight(2009, 7, 20), temperature);
  }
};

const sim::SimTime kSummerNoon =
    sim::at_midnight(2009, 7, 20) + sim::hours(12);
const sim::SimTime kWinterNoon = sim::at_midnight(2009, 2, 1) + sim::hours(12);

// One registry/journal shared by every experiment: the exported JSON then
// aggregates all protocol sessions the bench ran.
obs::MetricsRegistry g_metrics;
obs::EventJournal g_journal;

obs::Hooks hooks() { return {&g_metrics, &g_journal}; }

void headline() {
  bench::subheading("1. the 3000-reading summer fetch");
  Rig rig;
  rig.to_summer();
  rig.fill(3000);
  proto::NackBulkTransfer protocol{rig.link, proto::NackConfig{}, hooks()};
  const auto stats = protocol.run(rig.store, kSummerNoon, sim::hours(6));
  bench::paper_vs_measured("missed packets in first stream", "~400 common",
                           std::to_string(stats.missing_after_stream));
  bench::paper_vs_measured(
      "loss rate", "~13% (weakest summer link)",
      util::format_fixed(100.0 * double(stats.missing_after_stream) / 3000.0,
                         1) +
          "%");
  bench::note("after retry rounds: delivered " +
              std::to_string(stats.delivered) + "/3000, airtime " +
              util::format_fixed(stats.airtime.to_minutes(), 1) + " min");
  g_metrics.gauge("headline", "missing_after_stream")
      .set(double(stats.missing_after_stream));
  g_metrics.gauge("headline", "loss_pct")
      .set(100.0 * double(stats.missing_after_stream) / 3000.0);
  g_metrics.gauge("headline", "delivered").set(double(stats.delivered));
}

void nack_vs_ack(const char* season, sim::SimTime when, bool summer) {
  Rig nack_rig;
  Rig saw_rig;
  if (summer) {
    nack_rig.to_summer();
    saw_rig.to_summer();
  }
  nack_rig.fill(3000);
  saw_rig.fill(3000);
  proto::NackBulkTransfer nack{nack_rig.link, proto::NackConfig{}, hooks()};
  proto::StopAndWaitTransfer saw{saw_rig.link, proto::StopAndWaitConfig{},
                                 hooks()};
  const auto nack_stats = nack.run(nack_rig.store, when, sim::hours(12));
  const auto saw_stats = saw.run(saw_rig.store, when, sim::hours(12));

  std::printf("  %-8s %-14s %10s %10s %12s %10s\n", season, "protocol",
              "data pkts", "ctrl pkts", "airtime min", "delivered");
  std::printf("  %-8s %-14s %10llu %10llu %12.1f %10zu\n", "", "NACK (Sec V)",
              (unsigned long long)nack_stats.data_packets,
              (unsigned long long)nack_stats.control_packets,
              nack_stats.airtime.to_minutes(), nack_stats.delivered);
  std::printf("  %-8s %-14s %10llu %10llu %12.1f %10zu\n", "",
              "stop-and-wait",
              (unsigned long long)saw_stats.data_packets,
              (unsigned long long)saw_stats.control_packets,
              saw_stats.airtime.to_minutes(), saw_stats.delivered);
  bench::note("airtime saving from dropping per-packet ACKs: " +
              util::format_fixed(100.0 * (saw_stats.airtime.to_minutes() -
                                          nack_stats.airtime.to_minutes()) /
                                     saw_stats.airtime.to_minutes(),
                                 1) +
              "%");
}

void firmware_failure() {
  bench::subheading(
      "3. deployed-firmware failure and the multi-day rescue (Sec V)");
  Rig rig;
  rig.to_summer();
  rig.fill(3000);
  proto::NackConfig legacy;
  legacy.legacy_individual_limit = 100;  // tested regime only
  proto::NackBulkTransfer protocol{rig.link, legacy, hooks()};
  int day = 0;
  while (!rig.store.empty() && day < 10) {
    const auto stats = protocol.run(
        rig.store, kSummerNoon + sim::days(day), sim::hours(2));
    std::printf(
        "  day %d: delivered %4zu, still pending %4zu%s\n", day + 1,
        stats.delivered, rig.store.pending_count(),
        stats.aborted ? "  [individual-fetch ABORT, as deployed]" : "");
    ++day;
  }
  bench::paper_vs_measured(
      "backlog cleared", "over subsequent days (task not marked complete)",
      "in " + std::to_string(day) + " daily windows");
}

void seasonal_sweep() {
  bench::subheading("4. seasonal sweep: loss and one-window yield");
  bench::row({"Date", "loss %", "delivered/3000 in 2h"}, {12, 8, 22});
  for (int month = 1; month <= 12; month += 1) {
    Rig rig;
    // Walk the melt model to the target month.
    sim::SimTime t = sim::at_midnight(2009, 1, 1);
    const sim::SimTime target = sim::at_midnight(2009, month, 15);
    while (t < target) {
      (void)rig.melt.water_index(t, rig.temperature);
      t += sim::days(10);
    }
    const double loss = rig.link.loss_probability(target + sim::hours(12));
    rig.fill(3000);
    proto::NackBulkTransfer protocol{rig.link, proto::NackConfig{}, hooks()};
    const auto stats =
        protocol.run(rig.store, target + sim::hours(12), sim::hours(2));
    bench::row({sim::format_iso(target).substr(0, 7),
                util::format_fixed(100.0 * loss, 1),
                std::to_string(stats.delivered)},
               {12, 8, 22});
  }
  bench::note(
      "paper (Sec III): probe radio is better in winter due to drier ice");
}

void wired_vs_radio() {
  bench::subheading(
      "5. the wired probe: lossless until the cable dies (Sec V)");
  // One season, many trials: expected data yield of a wired probe (perfect
  // link, exponential cable death, data stranded afterwards) vs a radio
  // probe (seasonal loss, task-completion semantics, probe wear-out).
  // Each trial is an isolated world, so the sweep fans out across the
  // MonteCarloRunner pool; trial-order aggregation keeps the printed means
  // identical at any thread count.
  constexpr int kTrials = 100;
  struct WiredOutcome {
    std::size_t delivered = 0;
    std::size_t stranded = 0;
    bool cable_dead = false;
  };
  runner::MonteCarloRunner pool{bench::thread_count()};
  const auto outcomes = pool.run(kTrials, [](std::size_t trial) {
    sim::Simulation simulation{sim::at_midnight(2008, 9, 1)};
    env::Environment environment{std::uint64_t(trial) + 50};
    station::WiredProbeConfig config;
    config.cable_mtbf_days = 300.0;
    station::WiredProbe probe{simulation, environment,
                              util::Rng{std::uint64_t(trial) * 3 + 1},
                              config};
    WiredOutcome outcome;
    for (int day = 0; day < 365; ++day) {
      simulation.run_until(simulation.now() + sim::days(1));
      outcome.delivered += probe.drain().size();
    }
    outcome.stranded = probe.stranded();
    outcome.cable_dead = !probe.cable_ok();
    return outcome;
  });
  double wired_delivered = 0.0;
  double wired_stranded = 0.0;
  int cables_dead = 0;
  for (const WiredOutcome& outcome : outcomes) {
    wired_delivered += double(outcome.delivered);
    wired_stranded += double(outcome.stranded);
    if (outcome.cable_dead) ++cables_dead;
  }
  std::printf(
      "  wired: %.0f readings/yr delivered (mean), %.0f stranded behind "
      "dead cables, %d/%d cables failed within the year\n",
      wired_delivered / kTrials, wired_stranded / kTrials, cables_dead,
      kTrials);
  bench::note(
      "paper: the deployed wired probe failed and was a single point of "
      "failure; several wired probes were \"ruled out ... because of the "
      "lack of serial ports\" — radio probes lose packets daily but keep "
      "delivering for as long as the electronics live");
}

void strategy_sweep() {
  bench::subheading(
      "6. retrieval-strategy sweep: when is re-streaming cheaper than "
      "individual requests? (the Sec V heuristic, remotely tunable)");
  // The deployed heuristic: individual re-requests "unless there were so
  // many that it would be as efficient to request them all again". Sweep
  // the switch-over ratio at summer loss and report total airtime.
  bench::row({"rerequest_all_ratio", "airtime min", "delivered/3000",
              "re-stream rounds"},
             {20, 12, 15, 16});
  for (const double ratio : {0.02, 0.05, 0.1, 0.2, 0.35, 0.5, 0.9}) {
    Rig rig;
    rig.to_summer();
    rig.fill(3000);
    proto::NackConfig config;
    config.rerequest_all_ratio = ratio;
    config.max_rounds = 6;
    proto::NackBulkTransfer protocol{rig.link, config, hooks()};
    const auto stats = protocol.run(rig.store, kSummerNoon, sim::hours(12));
    bench::row({util::format_fixed(ratio, 2),
                util::format_fixed(stats.airtime.to_minutes(), 1),
                std::to_string(stats.delivered),
                std::to_string(stats.rerequest_all_rounds)},
               {20, 12, 15, 16});
  }
  bench::note(
      "at summer loss (~13%) individual requests win: a request+response "
      "pair per missing reading beats replaying the whole 3000-frame dump; "
      "aggressive re-stream thresholds waste ~60% more airtime");

  // The other side of the crossover: a catastrophic link where most of the
  // stream is lost, so individual requests (two lossy trips each) lose to
  // simply replaying the dump.
  Rig bad;
  bad.to_summer();
  proto::ProbeLinkConfig terrible;
  terrible.link_quality_factor = 5.0;  // ~65% summer loss
  proto::ProbeLink bad_link{bad.melt, bad.temperature, util::Rng{13},
                            terrible};
  bench::row({"(at ~65% loss)", "", "", ""}, {20, 12, 15, 16});
  for (const double ratio : {0.1, 0.9}) {
    proto::ProbeStore store;
    for (std::uint32_t seq = 0; seq < 1000; ++seq) {
      proto::ProbeReading reading;
      reading.seq = seq;
      store.add(reading);
    }
    proto::NackConfig config;
    config.rerequest_all_ratio = ratio;
    config.max_rounds = 8;
    proto::NackBulkTransfer protocol{bad_link, config, hooks()};
    const auto stats = protocol.run(store, kSummerNoon, sim::hours(12));
    bench::row({util::format_fixed(ratio, 2),
                util::format_fixed(stats.airtime.to_minutes(), 1),
                std::to_string(stats.delivered) + "/1000",
                std::to_string(stats.rerequest_all_rounds)},
               {20, 12, 15, 16});
  }
  bench::note(
      "on a mostly-dead link the replay strategy recovers more per minute — "
      "exactly why the switch-over exists and is worth tuning remotely "
      "(Sec V lesson)");
}

void run() {
  bench::heading("Sec V: probe bulk-transfer protocol");
  headline();
  bench::subheading("2. NACK vs stop-and-wait (3000 readings)");
  nack_vs_ack("winter", kWinterNoon, false);
  nack_vs_ack("summer", kSummerNoon, true);
  firmware_failure();
  seasonal_sweep();
  wired_vs_radio();
  strategy_sweep();

  // --- machine-readable export (glacsweb.bench.v1) -----------------------
  obs::BenchReport report;
  report.bench = "probe_protocol";
  report.meta = {{"paper", "Sec V"},
                 {"experiments",
                  "headline,nack_vs_ack,firmware_failure,seasonal_sweep,"
                  "strategy_sweep"}};
  report.sections = {{"protocol", &g_metrics, &g_journal}};
  bench::export_report(report);
}

}  // namespace
}  // namespace gw

int main() {
  gw::run();
  return 0;
}
