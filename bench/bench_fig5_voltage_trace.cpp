// Fig 5 — "Sample data from Base Station showing Diurnal changes and
// ripples due to background dGPS task" (22–25 Sep 2009).
//
// The figure shows: battery voltage between ~12.0 and ~14.5 V with diurnal
// peaks near midday; the station initially *held in state 2 by the remote
// override* although voltage allowed state 3; after release it moves to
// state 3 and regular dips at 2-hour intervals appear (the dGPS reading
// every 2 h); recharge recovers the energy between dips.
//
// We run the full deployment over the same calendar window, hold the
// manual override at 2 for the first day and a half, then release it, and
// print the 30-minute voltage/state series plus shape diagnostics.
#include <cstdio>

#include "bench_util.h"
#include "sim/trace_export.h"
#include "station/deployment.h"
#include "util/strings.h"

namespace gw {
namespace {

void run() {
  bench::heading(
      "Fig 5: base-station voltage + power state, 22-25 Sep 2009 window");

  station::DeploymentConfig config;
  config.start = sim::DateTime{2009, 9, 15, 0, 0, 0};
  config.base.power.battery.initial_soc = 0.97;
  config.reference.power.battery.initial_soc = 0.97;
  config.base.gprs.registration_success = 1.0;
  config.base.gprs.drop_per_minute = 0.0;
  config.reference.gprs.registration_success = 1.0;
  config.reference.gprs.drop_per_minute = 0.0;
  config.base.initial_state = core::PowerState::kState2;
  config.reference.initial_state = core::PowerState::kState2;
  station::Deployment deployment{config};

  // Hold the stations in state 2 by remote override (the Fig 5 annotation),
  // releasing at 13:00 on 23 Sep.
  deployment.server().sync().set_manual_override(core::PowerState::kState2);
  const sim::SimTime release = sim::to_time({2009, 9, 23, 13, 0, 0});
  deployment.simulation().schedule_at(release, [&deployment] {
    deployment.server().sync().set_manual_override(std::nullopt);
  });

  deployment.run_days(11.0);  // through 26 Sep

  const auto& trace = deployment.trace();
  const auto& voltage = trace.series("base.voltage");
  const auto& state = trace.series("base.state");

  const sim::SimTime window_start = sim::at_midnight(2009, 9, 22);
  const sim::SimTime window_end = sim::at_midnight(2009, 9, 26);

  bench::subheading("series (30-min samples; columns: UTC, V, state)");
  for (std::size_t i = 0; i < voltage.size(); ++i) {
    const auto t = voltage[i].time;
    if (t < window_start || t >= window_end) continue;
    const int state_now = int(trace.value_at("base.state", t));
    std::printf("  %s  %6.2f V  state %d\n", sim::format_iso(t).c_str(),
                voltage[i].value, state_now);
  }

  // --- shape diagnostics ---------------------------------------------------
  bench::subheading("shape checks vs the published figure");

  // 1. Voltage band.
  double v_min = 1e9;
  double v_max = -1e9;
  for (const auto& point : voltage) {
    if (point.time < window_start || point.time >= window_end) continue;
    v_min = std::min(v_min, point.value);
    v_max = std::max(v_max, point.value);
  }
  bench::paper_vs_measured("voltage band", "~12.0-14.5 V",
                           util::format_fixed(v_min, 2) + "-" +
                               util::format_fixed(v_max, 2) + " V");

  // 2. Diurnal peak near midday: for each day find the argmax hour.
  for (int day = 22; day <= 25; ++day) {
    const auto day_start = sim::at_midnight(2009, 9, day);
    double best_v = -1.0;
    double best_hour = -1.0;
    for (const auto& point : voltage) {
      if (point.time < day_start || point.time >= day_start + sim::days(1)) {
        continue;
      }
      if (point.value > best_v) {
        best_v = point.value;
        best_hour = sim::time_of_day(point.time).to_hours();
      }
    }
    bench::paper_vs_measured(
        "peak hour on Sep " + std::to_string(day), "~midday",
        util::format_fixed(best_hour, 1) + " h (" +
            util::format_fixed(best_v, 2) + " V)");
  }
  bench::note(
      "note: the paper itself observes that under wind+solar recharge "
      "\"there is no regular pattern\" (Sec III on Fig 5's state-2 days); "
      "night-time wind can displace a day's maximum away from noon");

  // 3. Override hold then release: state before vs after.
  const double state_before =
      trace.value_at("base.state", release - sim::hours(2));
  const double state_after =
      trace.value_at("base.state", release + sim::days(1) + sim::hours(2));
  bench::paper_vs_measured("state while override held", "2",
                           util::format_fixed(state_before, 0));
  bench::paper_vs_measured("state after release", "3",
                           util::format_fixed(state_after, 0));

  // 4. In state 3 the dGPS fires every 2 h (12/day).
  int gps_day_readings = 0;
  (void)state;
  const int readings_before = deployment.base().dgps().readings_taken();
  deployment.run_days(1.0);
  gps_day_readings = deployment.base().dgps().readings_taken() -
                     readings_before;
  bench::paper_vs_measured("dGPS readings per state-3 day",
                           "12 (2-hour dips)",
                           std::to_string(gps_day_readings) +
                               " (incl. fetch-time bonus reading)");

  // --- machine-readable export (glacsweb.bench.v1) -----------------------
  obs::BenchReport report;
  report.bench = "fig5_voltage_trace";
  report.meta = {{"paper", "Fig 5"},
                 {"window", "2009-09-22..2009-09-26"},
                 {"seed", std::to_string(deployment.config().seed)}};
  report.sections = {
      {"base", &deployment.base().metrics(), &deployment.base().journal()},
      {"reference", &deployment.reference().metrics(),
       &deployment.reference().journal()}};
  report.series = sim::to_obs_series(
      trace, std::vector<std::string>{"base.voltage", "base.state"},
      window_start, window_end);
  bench::export_report(report);
}

}  // namespace
}  // namespace gw

int main() {
  gw::run();
  return 0;
}
