// §VII — "the CF card used to store the readings from the previous year had
// become corrupted. The exact cause of the corruption is unknown and it
// proved possible to recover the data from the card, however it prompts
// investigation into whether a more suitable file system format can be
// found for the storage card."
//
// The investigation, run: a year of daily writes under power-cut fault
// injection, plain (FAT-style in-place) vs journaled (write-ahead + atomic
// publish) formats, sweeping the brown-out frequency; plus the
// recoverability experiment (fsck) matching the deployment's outcome.
#include <cstdio>

#include "bench_util.h"
#include "hw/cf_card.h"
#include "util/strings.h"

namespace gw {
namespace {

using namespace util::literals;

struct YearResult {
  int corrupted_files = 0;
  int metadata_deaths = 0;
  double lost_kib = 0.0;
  double lost_kib_after_recovery = 0.0;
};

// One simulated year: 3 files/day written; on brown-out days the cut lands
// mid-write with probability `cut_mid_write`.
YearResult run_year(hw::StorageFormat format, int brown_outs_per_year,
                    std::uint64_t seed) {
  hw::CfCardConfig config;
  config.format = format;
  util::Rng rng{seed};
  hw::CompactFlashCard card{rng.fork("card"), config};
  util::Rng faults{seed ^ 0xfeed};

  const double cut_probability = brown_outs_per_year / 365.0;
  for (int day = 0; day < 365 && !card.metadata_corrupted(); ++day) {
    for (int i = 0; i < 3; ++i) {
      const std::string name =
          "d" + std::to_string(day) + "_" + std::to_string(i);
      if (!card.begin_write(name, 165_KiB).ok()) continue;
      // A brown-out can land between begin and commit.
      if (faults.bernoulli(cut_probability / 3.0)) {
        card.power_cut();
        continue;
      }
      (void)card.commit_write();
    }
    card.age(sim::days(1));
  }

  YearResult result;
  result.metadata_deaths = card.metadata_corrupted() ? 1 : 0;
  // First scan without recovery (what the station sees in the field)...
  hw::CompactFlashCard probe_copy = card;  // value semantics: same state
  const auto field = probe_copy.fsck(/*attempt_recovery=*/false);
  result.corrupted_files = field.corrupted_files;
  result.lost_kib = field.lost.kib();
  // ...then the lab recovery pass (§VII: data was recovered).
  const auto lab = card.fsck(/*attempt_recovery=*/true);
  result.lost_kib_after_recovery = lab.lost.kib();
  return result;
}

void run() {
  bench::heading("Sec VII: storage-format ablation under power cuts");

  bench::subheading("a year of writes, sweeping brown-out frequency");
  bench::row({"Brown-outs/yr", "Format", "Corrupt files", "Card deaths/50",
              "KiB lost", "KiB lost post-fsck"},
             {14, 10, 14, 15, 9, 18});
  for (const int brown_outs : {2, 6, 12, 26, 52}) {
    for (const auto format :
         {hw::StorageFormat::kPlain, hw::StorageFormat::kJournaled}) {
      double corrupted = 0.0;
      int deaths = 0;
      double lost = 0.0;
      double lost_recovered = 0.0;
      constexpr int kTrials = 50;
      for (int trial = 0; trial < kTrials; ++trial) {
        const auto result = run_year(format, brown_outs,
                                     std::uint64_t(trial) * 101 + 7);
        corrupted += result.corrupted_files;
        deaths += result.metadata_deaths;
        lost += result.lost_kib;
        lost_recovered += result.lost_kib_after_recovery;
      }
      bench::row({std::to_string(brown_outs),
                  format == hw::StorageFormat::kPlain ? "plain" : "journaled",
                  util::format_fixed(corrupted / kTrials, 2),
                  std::to_string(deaths),
                  util::format_fixed(lost / kTrials, 0),
                  util::format_fixed(lost_recovered / kTrials, 0)},
                 {14, 10, 14, 15, 9, 18});
    }
  }
  bench::note(
      "paper's outcome reproduced: plain-format corruption is usually "
      "recoverable offline (fsck), but a journaled format avoids the field "
      "failure entirely — the answer to Sec VII's open question");
}

}  // namespace
}  // namespace gw

int main() {
  gw::run();
  return 0;
}
