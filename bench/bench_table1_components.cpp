// Table 1 — Characteristics of system components.
//
//   Device        Transfer Rate (bps)   Power Consumption (mW)
//   Gumstix            -                      900
//   GPRS Modem        5000                   2640
//   Radio Modem       2000                   3960
//   GPS                -                     3600
//
// This bench does not just echo the configuration: it *measures* each
// device model. Power is read back from the PowerSystem energy ledger after
// a timed on-period; effective transfer rates are measured by timing real
// (failure-free) payload transfers through the models, so the protocol
// overheads the models add are visible next to the nominal line rate.
// Since the activity-state refactor (docs/ENERGY.md) the same run also
// yields an exact per-component, per-state microjoule breakdown, exported
// as BENCH_table1_components.json with the measured totals preserved as
// derived fields.
#include <cstdio>
#include <functional>

#include "bench_util.h"
#include "energy/component_model.h"
#include "env/environment.h"
#include "hw/dgps.h"
#include "hw/gprs_modem.h"
#include "hw/gumstix.h"
#include "hw/radio_modem.h"
#include "power/power_system.h"
#include "sim/simulation.h"
#include "util/strings.h"

namespace gw {
namespace {

using namespace util::literals;

struct Rig {
  sim::Simulation simulation{sim::at_midnight(2009, 9, 22)};
  env::Environment environment{1};
  power::PowerSystemConfig config;
  power::PowerSystem power{simulation, environment, config};
};

// Measures mean draw of one load by running it for an hour against the
// energy ledger.
double measured_milliwatts(Rig& rig, const std::string& load,
                           const std::function<void()>& on,
                           const std::function<void()>& off) {
  const double before = rig.power.consumed_by(load).value();
  on();
  rig.power.tick(sim::hours(1));
  off();
  const double joules = rig.power.consumed_by(load).value() - before;
  return joules / 3600.0 * 1000.0;
}

void run() {
  bench::heading("Table 1: Characteristics of system components");

  Rig rig;
  hw::Gumstix gumstix{rig.simulation, rig.power};
  hw::GprsConfig gprs_config;
  gprs_config.registration_success = 1.0;
  gprs_config.drop_per_minute = 0.0;
  hw::GprsModem gprs{rig.simulation, rig.power, util::Rng{2}, gprs_config};
  hw::RadioModem radio{rig.simulation, rig.power,
                       rig.environment.interference()};
  hw::DgpsReceiver dgps{rig.simulation, rig.power, util::Rng{3}};

  const double gumstix_mw = measured_milliwatts(
      rig, "gumstix", [&] { gumstix.power_on(); },
      [&] { gumstix.power_off(); });
  const double gprs_mw = measured_milliwatts(
      rig, "gprs", [&] { gprs.power_on(); }, [&] { gprs.power_off(); });
  const double radio_mw = measured_milliwatts(
      rig, "radio_modem", [&] { radio.power_on(); },
      [&] { radio.power_off(); });
  const double gps_mw = measured_milliwatts(
      rig, "dgps", [&] { dgps.power_on(); }, [&] { dgps.power_off(); });

  // Effective payload rates measured through the models (include protocol
  // overhead; the paper's figures are nominal line rates).
  gprs.power_on();
  const auto gprs_outcome = gprs.attempt_transfer(500_KiB);
  const double gprs_bps =
      double(gprs_outcome.sent.bits()) /
      (gprs_outcome.elapsed.to_seconds() -
       gprs_config.registration_time.to_seconds());
  gprs.power_off();
  const double radio_bps =
      double((500_KiB).bits()) / radio.transfer_time(500_KiB).to_seconds();

  bench::row({"Device", "Rate nominal", "Rate measured", "Power paper",
              "Power measured"},
             {14, 13, 14, 12, 14});
  bench::row({"Gumstix", "-", "-", "900 mW",
              util::format_fixed(gumstix_mw, 0) + " mW"},
             {14, 13, 14, 12, 14});
  bench::row({"GPRS Modem", "5000 bps",
              util::format_fixed(gprs_bps, 0) + " bps", "2640 mW",
              util::format_fixed(gprs_mw, 0) + " mW"},
             {14, 13, 14, 12, 14});
  bench::row({"Radio Modem", "2000 bps",
              util::format_fixed(radio_bps, 0) + " bps", "3960 mW",
              util::format_fixed(radio_mw, 0) + " mW"},
             {14, 13, 14, 12, 14});
  bench::row({"GPS", "-", "-", "3600 mW",
              util::format_fixed(gps_mw, 0) + " mW"},
             {14, 13, 14, 12, 14});

  bench::subheading("Derived: energy per delivered megabyte");
  const double gprs_j_per_mb = 2.640 / (gprs_bps / 8.0 / 1e6);
  const double radio_j_per_mb = 3.960 / (radio_bps / 8.0 / 1e6);
  bench::note("GPRS modem : " + util::format_fixed(gprs_j_per_mb, 0) +
              " J/MB");
  bench::note("Radio modem: " + util::format_fixed(radio_j_per_mb, 0) +
              " J/MB  (x" +
              util::format_fixed(radio_j_per_mb / gprs_j_per_mb, 2) +
              " worse — the root of the architecture decision, Sec II-III)");

  // Per-component, per-state microjoule ledgers for the same timed
  // on-periods (docs/ENERGY.md). Ledger sum vs delivered meter is the
  // conservation invariant, checked live.
  bench::subheading("Per-state energy breakdown (exact ledgers)");
  bench::row({"Component.state", "Joules", "Seconds"}, {24, 10, 9});
  obs::MetricsRegistry registry;
  for (std::size_t c = 0; c < rig.power.component_count(); ++c) {
    const energy::ComponentModel& component = rig.power.component(c);
    for (std::size_t s = 0; s < component.state_count(); ++s) {
      const std::string key =
          component.name() + "." + component.state(s).name;
      registry.gauge("breakdown", key + ".joules")
          .set(double(component.energy_uj(s)) / 1e6);
      registry.gauge("breakdown", key + ".seconds")
          .set(component.active_seconds(s));
      if (component.energy_uj(s) == 0 && component.active_ms(s) == 0) {
        continue;
      }
      bench::row({key,
                  util::format_fixed(double(component.energy_uj(s)) / 1e6, 1),
                  util::format_fixed(component.active_seconds(s), 0)},
                 {24, 10, 9});
    }
  }
  bench::paper_vs_measured(
      "ledger sum == delivered meter (uJ)",
      std::to_string(rig.power.delivered_microjoules()),
      std::to_string(rig.power.component_microjoules()));

  // Measured totals ride along as derived fields so downstream diffs keep
  // the pre-breakdown observables.
  registry.gauge("table1", "gumstix_mw").set(gumstix_mw);
  registry.gauge("table1", "gprs_mw").set(gprs_mw);
  registry.gauge("table1", "radio_mw").set(radio_mw);
  registry.gauge("table1", "gps_mw").set(gps_mw);
  registry.gauge("table1", "gprs_bps").set(gprs_bps);
  registry.gauge("table1", "radio_bps").set(radio_bps);
  registry.gauge("table1", "gprs_j_per_mb").set(gprs_j_per_mb);
  registry.gauge("table1", "radio_j_per_mb").set(radio_j_per_mb);
  obs::BenchReport report;
  report.bench = "table1_components";
  report.meta = {{"on_period_hours", "1"},
                 {"payload_kib", "500"}};
  report.sections = {{"components", &registry, nullptr}};
  bench::export_report(report);
}

}  // namespace
}  // namespace gw

int main() {
  gw::run();
  return 0;
}
