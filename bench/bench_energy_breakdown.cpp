// Component energy breakdown x DVFS sweep (docs/ENERGY.md).
//
// The paper budgets the station as a whole (Table 1 draws, Table 2 power
// states); the activity-state refactor lets us ask where the joules
// actually go. This bench warms one scripted faulted season to day 20,
// snapshots it, and branches it nine ways on MonteCarloRunner::run_forked —
// a 3 x 3 grid of Table 2 threshold variants x Gumstix DVFS frequency
// plans, both of which live in config (not in the snapshot) so every
// branch diverges from the identical day-20 world.
//
// For each branch it reads the base station's exact per-component,
// per-state microjoule ledgers off the PowerSystem and checks the
// conservation invariant live: the ledgers must sum to the battery-side
// delivered meter to the microjoule, or the bench exits non-zero.
//
// Exports BENCH_energy_breakdown.json (schema glacsweb.bench.v1,
// deterministic: integer ledgers, no wall-clock, no thread-count marker).
// scripts/check.sh byte-diffs the export at 1 thread vs the default pool.
#include <array>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/power_policy.h"
#include "power/power_system.h"
#include "runner/monte_carlo_runner.h"
#include "station/fleet.h"
#include "util/strings.h"

namespace gw {
namespace {

constexpr std::uint64_t kSeasonSeed = 20080601;
constexpr double kCheckpointDays = 20.0;
constexpr double kSeasonDays = 40.0;
// 17 minutes past the day-20 boundary: off every wake window, sample slot
// and fault-window edge (same quiescent skew as bench_fork_warmup).
constexpr int kCheckpointSkewMinutes = 17;

constexpr const char* kSeasonSpec =
    "# branched adversarial season (docs/ENERGY.md)\n"
    "gprs_outage      start=5d  duration=7d  severity=1.0\n"
    "dgps_no_fix      start=14d duration=2d  severity=0.9\n"
    "cf_write_fail    start=16d duration=1d  severity=0.3\n"
    "server_down      start=18d duration=12h\n"
    "harvest_blackout start=25d duration=8d  severity=1.0\n";

// --- the 3 x 3 branch grid ------------------------------------------------

struct ThresholdVariant {
  const char* name;
  core::PowerPolicyConfig policy;
};

// Table 2 thresholds and two shifted variants. Policy lives in config, not
// in the snapshot, so a branch may re-read the same day-20 battery with a
// different ruler.
std::array<ThresholdVariant, 3> threshold_variants() {
  ThresholdVariant paper{"paper", {}};
  ThresholdVariant cautious{"cautious", {}};
  cautious.policy.state3_threshold = util::Volts{12.8};
  cautious.policy.state2_threshold = util::Volts{12.4};
  cautious.policy.state1_threshold = util::Volts{12.0};
  ThresholdVariant eager{"eager", {}};
  eager.policy.state3_threshold = util::Volts{12.2};
  eager.policy.state2_threshold = util::Volts{11.7};
  eager.policy.state1_threshold = util::Volts{11.3};
  return {paper, cautious, eager};
}

struct FrequencyPlan {
  const char* name;
  // Operating-point index per Table 2 state (index into the default
  // three-point 200/300/400 MHz plan; -1 = top). The *set* of operating
  // points is wiring and must match the snapshot — only the per-state
  // selection varies.
  std::array<int, 4> by_state;
};

constexpr std::array<FrequencyPlan, 3> kFrequencyPlans{{
    {"top", {-1, -1, -1, -1}},     // always 400 MHz (the deployed firmware)
    {"stepped", {0, 1, 1, -1}},    // scale with the power state
    {"slow", {0, 0, 0, 0}},        // always 200 MHz
}};

constexpr std::size_t kThresholdVariants = 3;
constexpr std::size_t kBranches = kThresholdVariants * kFrequencyPlans.size();

std::string branch_label(std::size_t trial) {
  return std::string(threshold_variants()[trial / kFrequencyPlans.size()]
                         .name) +
         "/" + kFrequencyPlans[trial % kFrequencyPlans.size()].name;
}

station::FleetConfig season_config(std::size_t trial) {
  // By value: threshold_variants() returns a temporary array, and a
  // reference through operator[] would dangle past this statement.
  const ThresholdVariant thresholds =
      threshold_variants()[trial / kFrequencyPlans.size()];
  const FrequencyPlan& plan = kFrequencyPlans[trial % kFrequencyPlans.size()];

  station::FleetConfig config;
  config.seed = kSeasonSeed;
  config.start = sim::DateTime{2008, 6, 1, 0, 0, 0};
  config.trace_enabled = false;
  config.fault_spec = kSeasonSpec;

  station::StationSpec base;
  base.station.name = "base";
  base.station.role = station::StationRole::kBaseStation;
  // Under-provisioned, leaky bank so the blackout post-branch actually
  // bites and the threshold variants disagree (same shape as
  // bench_fork_warmup).
  base.station.power.battery.capacity = util::AmpHours{6.0};
  base.station.power.battery.initial_soc = 0.6;
  base.station.power.battery.self_discharge_per_day = 0.10;
  base.station.uploads.session_timeout = sim::minutes(15);
  base.station.uploads.retry_backoff_base = sim::minutes(1);
  base.station.degrade_after_failed_days = 3;
  base.station.policy = thresholds.policy;
  base.station.gumstix_freq_by_state = plan.by_state;
  base.sync_group = "g1";
  base.chargers = {station::ChargerKind::kSolar, station::ChargerKind::kWind};
  base.probe_count = 3;
  config.stations.push_back(std::move(base));

  station::StationSpec reference;
  reference.station.name = "reference";
  reference.station.role = station::StationRole::kReferenceStation;
  reference.station.policy = thresholds.policy;
  reference.station.gumstix_freq_by_state = plan.by_state;
  reference.sync_group = "g1";
  reference.chargers = {station::ChargerKind::kSolar,
                        station::ChargerKind::kMains};
  reference.probe_count = 0;
  config.stations.push_back(std::move(reference));
  return config;
}

// --- outcomes -------------------------------------------------------------

struct StateLedger {
  std::string key;  // "<component>.<state>"
  std::int64_t uj = 0;
  std::int64_t ms = 0;
};

struct BranchOutcome {
  std::vector<StateLedger> ledgers;  // base station, registration order
  std::int64_t delivered_uj = 0;
  std::int64_t component_uj = 0;
  std::int64_t absorbed_uj = 0;
  std::uint64_t base_files = 0;
  std::int64_t base_bytes = 0;
  std::uint64_t brown_outs = 0;
  std::uint64_t runs = 0;
};

BranchOutcome branch_outcome(station::Fleet& fleet) {
  BranchOutcome outcome;
  station::Station& base = fleet.station(0);
  power::PowerSystem& power = base.power();
  for (std::size_t c = 0; c < power.component_count(); ++c) {
    const energy::ComponentModel& component = power.component(c);
    for (std::size_t s = 0; s < component.state_count(); ++s) {
      outcome.ledgers.push_back({component.name() + "." +
                                     component.state(s).name,
                                 component.energy_uj(s),
                                 component.active_ms(s)});
    }
  }
  outcome.delivered_uj = power.delivered_microjoules();
  outcome.component_uj = power.component_microjoules();
  outcome.absorbed_uj = power.absorbed_microjoules();
  outcome.base_files = std::uint64_t(fleet.server().files_from("base"));
  outcome.base_bytes = fleet.server().bytes_from("base").count();
  outcome.brown_outs = std::uint64_t(base.stats().brown_outs);
  outcome.runs = std::uint64_t(base.stats().runs_completed);
  return outcome;
}

sim::Duration checkpoint_offset() {
  return sim::days(kCheckpointDays) + sim::minutes(kCheckpointSkewMinutes);
}

// Warm the shared prefix once under the paper/top branch (trial 0 — the
// deployed firmware's configuration) and seal it.
std::vector<std::uint8_t> warm_season_prefix() {
  station::Fleet fleet{season_config(0)};
  fleet.simulation().run_until(fleet.simulation().now() +
                               checkpoint_offset());
  return fleet.save_snapshot();
}

BranchOutcome forked_trial(std::size_t trial,
                           const std::vector<std::uint8_t>& snapshot) {
  auto fleet = std::make_unique<station::Fleet>(season_config(trial));
  fleet->restore_snapshot(snapshot);
  fleet->simulation().run_until(sim::to_time(fleet->config().start) +
                                sim::days(kSeasonDays));
  return branch_outcome(*fleet);
}

void run() {
  bench::heading(
      "Component energy breakdown x DVFS sweep (docs/ENERGY.md)");
  bench::note("one day-20 snapshot, " + std::to_string(kBranches) +
              " branches: Table 2 thresholds {paper, cautious, eager} x "
              "Gumstix plans {top, stepped, slow}");
  runner::MonteCarloRunner pool{bench::thread_count()};
  const std::vector<BranchOutcome> outcomes = pool.run_forked(
      kBranches, [] { return warm_season_prefix(); },
      [](std::size_t trial, const std::vector<std::uint8_t>& snapshot) {
        return forked_trial(trial, snapshot);
      });

  // Live conservation gate: per-component ledgers must sum to the
  // battery-side delivered meter exactly, in every branch.
  for (std::size_t trial = 0; trial < outcomes.size(); ++trial) {
    const BranchOutcome& outcome = outcomes[trial];
    if (outcome.component_uj != outcome.delivered_uj) {
      std::fprintf(stderr,
                   "[FAIL] branch %s: component ledgers %lld uJ != "
                   "delivered %lld uJ\n",
                   branch_label(trial).c_str(),
                   (long long)outcome.component_uj,
                   (long long)outcome.delivered_uj);
      std::exit(1);
    }
  }
  bench::note("conservation: ledger sum == delivered meter exactly, all " +
              std::to_string(kBranches) + " branches");

  bench::subheading("branch summary (base station, day 40)");
  bench::row({"Branch", "Thresholds", "Plan", "Consumed J", "Files",
              "Brown-outs", "J/KiB"},
             {7, 11, 8, 11, 6, 11, 9});
  for (std::size_t trial = 0; trial < outcomes.size(); ++trial) {
    const BranchOutcome& outcome = outcomes[trial];
    const double joules = double(outcome.delivered_uj) / 1e6;
    const double kib = double(outcome.base_bytes) / 1024.0;
    bench::row(
        {std::to_string(trial),
         threshold_variants()[trial / kFrequencyPlans.size()].name,
         kFrequencyPlans[trial % kFrequencyPlans.size()].name,
         util::format_fixed(joules, 0), std::to_string(outcome.base_files),
         std::to_string(outcome.brown_outs),
         kib > 0.0 ? util::format_fixed(joules / kib, 1) : "-"},
        {7, 11, 8, 11, 6, 11, 9});
  }

  bench::subheading("per-state breakdown, branch 0 (paper/top)");
  bench::row({"Component.state", "Joules", "Hours"}, {26, 10, 8});
  for (const StateLedger& ledger : outcomes.front().ledgers) {
    if (ledger.uj == 0 && ledger.ms == 0) continue;
    bench::row({ledger.key, util::format_fixed(double(ledger.uj) / 1e6, 1),
                util::format_fixed(double(ledger.ms) / 3.6e6, 2)},
               {26, 10, 8});
  }
  bench::note("all " + std::to_string(kBranches) +
              " branches' full ledgers are in the JSON export");

  // --- deterministic export ----------------------------------------------
  // Integer microjoule ledgers divided by 1e6: identical at any thread
  // count (scripts/check.sh leg 9 byte-diffs 1 thread vs default).
  obs::MetricsRegistry registry;
  for (std::size_t trial = 0; trial < outcomes.size(); ++trial) {
    const BranchOutcome& outcome = outcomes[trial];
    const std::string component = "branch" + std::to_string(trial);
    for (const StateLedger& ledger : outcome.ledgers) {
      registry.gauge(component, ledger.key + ".joules")
          .set(double(ledger.uj) / 1e6);
      registry.gauge(component, ledger.key + ".seconds")
          .set(double(ledger.ms) / 1e3);
    }
    registry.gauge(component, "delivered_joules")
        .set(double(outcome.delivered_uj) / 1e6);
    registry.gauge(component, "harvest_absorbed_joules")
        .set(double(outcome.absorbed_uj) / 1e6);
    registry.gauge(component, "base_files").set(double(outcome.base_files));
    registry.gauge(component, "base_bytes").set(double(outcome.base_bytes));
    registry.gauge(component, "brown_outs").set(double(outcome.brown_outs));
    registry.gauge(component, "runs").set(double(outcome.runs));
  }
  obs::BenchReport report;
  report.bench = "energy_breakdown";
  report.meta = {{"branches", std::to_string(kBranches)},
                 {"checkpoint_day", util::format_fixed(kCheckpointDays, 0)},
                 {"season_days", util::format_fixed(kSeasonDays, 0)},
                 {"seed", std::to_string(kSeasonSeed)}};
  for (std::size_t trial = 0; trial < kBranches; ++trial) {
    report.meta.push_back(
        {"branch" + std::to_string(trial), branch_label(trial)});
  }
  report.sections = {{"energy", &registry, nullptr}};
  bench::export_report(report);
}

}  // namespace
}  // namespace gw

int main() {
  gw::run();
  return 0;
}
