// Simulation throughput: how fast the substrate itself runs.
//
// Every reproduced figure is a Monte Carlo sweep over the event kernel, so
// kernel events/sec and runner trials/sec are the two numbers that bound
// how much design-space exploration a PR can afford. This bench measures
// both — the staged event kernel on a schedule/drain workload, and
// MonteCarloRunner scaling on isolated probe-survival worlds — and exports
// BENCH_throughput.json (schema glacsweb.bench.v1) so the perf trajectory
// accumulates PR over PR.
//
// Unlike every other bench export, these numbers are wall-clock
// measurements: the JSON is *not* byte-stable across runs or hosts (meta
// marks host_dependent=true). The simulation results inside each trial
// remain bit-reproducible; see docs/PERFORMANCE.md.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "runner/monte_carlo_runner.h"
#include "sim/simulation.h"
#include "station/probe_node.h"
#include "util/strings.h"

namespace gw {
namespace {

// gwlint: allow(banned-api): wall-clock throughput timing is this bench's
// purpose; results are exported under host_dependent metadata
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

// Median-of-reps events/sec for a schedule-then-drain workload of n events
// (the BM_EventQueueScheduleRun shape: pseudo-random timestamps, empty
// callbacks, so the kernel itself is the entire cost).
double kernel_events_per_sec(int n) {
  constexpr int kReps = 7;
  std::vector<double> rates;
  rates.reserve(kReps);
  for (int rep = 0; rep < kReps; ++rep) {
    sim::Simulation simulation;
    const auto start = Clock::now();
    for (int i = 0; i < n; ++i) {
      simulation.schedule_at(sim::SimTime{(i * 7919) % 100000}, [] {});
    }
    simulation.run_all();
    rates.push_back(double(n) / seconds_since(start));
  }
  std::nth_element(rates.begin(), rates.begin() + kReps / 2, rates.end());
  return rates[kReps / 2];
}

// One isolated probe-survival world, sized so a trial is a few thousand
// kernel events: 7 probes sampling 4x/day across two years.
std::uint64_t survival_trial(std::size_t trial) {
  const sim::SimTime deployed = sim::at_midnight(2008, 9, 1);
  sim::Simulation simulation{deployed};
  env::Environment environment{7};
  const util::Rng trial_rng =
      util::Rng{2008}.fork("throughput-trial-" + std::to_string(trial));
  std::vector<std::unique_ptr<station::ProbeNode>> probes;
  for (int i = 0; i < 7; ++i) {
    station::ProbeNodeConfig config;
    config.probe_id = 20 + i;
    config.sample_interval = sim::hours(6);
    probes.push_back(std::make_unique<station::ProbeNode>(
        simulation, environment,
        trial_rng.fork("probe-" + std::to_string(config.probe_id)), config));
  }
  simulation.run_until(deployed + sim::days(730));
  return simulation.events_executed();
}

void run() {
  bench::heading("simulation throughput (kernel + Monte Carlo runner)");

  obs::MetricsRegistry metrics;

  bench::subheading("1. event kernel: schedule+drain events/sec");
  bench::row({"Events", "Mevents/sec"}, {10, 12});
  for (const int n : {1000, 10000, 100000}) {
    const double rate = kernel_events_per_sec(n);
    bench::row({std::to_string(n), util::format_fixed(rate / 1e6, 2)},
               {10, 12});
    metrics.gauge("kernel", "events_per_sec_" + std::to_string(n)).set(rate);
  }

  bench::subheading("2. runner scaling: probe-survival trials/sec");
  constexpr std::size_t kTrials = 64;
  std::vector<unsigned> thread_counts{1, 2, 4};
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  if (std::find(thread_counts.begin(), thread_counts.end(), hw) ==
      thread_counts.end()) {
    thread_counts.push_back(hw);
  }
  // Serial baseline: warmed up and best-of-2, so a cold first run (page
  // faults, lazy allocation) cannot deflate the denominator every other
  // thread count is judged against.
  double serial_elapsed = 0.0;
  for (int rep = 0; rep < 2; ++rep) {
    runner::MonteCarloRunner pool{1};
    const auto start = Clock::now();
    pool.run(kTrials, survival_trial);
    const double elapsed = seconds_since(start);
    if (rep == 0 || elapsed < serial_elapsed) serial_elapsed = elapsed;
  }

  bench::row({"Threads", "Trials/sec", "Speedup vs 1", "Events/sec"},
             {8, 11, 13, 11});
  std::string oversubscribed_counts;
  for (const unsigned threads : thread_counts) {
    runner::MonteCarloRunner pool{threads};
    const auto start = Clock::now();
    const auto events = pool.run(kTrials, survival_trial);
    const double elapsed = seconds_since(start);
    std::uint64_t total_events = 0;
    for (const std::uint64_t count : events) total_events += count;
    const double rate = double(kTrials) / elapsed;
    // A pool wider than the machine measures context-switch overhead, not
    // scaling: exporting 0.57 as "speedup" on a 1-core host reads as a
    // perf regression in the BENCH diff. Clamp the denominator to the
    // serial time for oversubscribed counts (speedup floors at 1.0 there);
    // genuine wins still show, and meta records which counts were clamped.
    const bool oversubscribed = threads > hw;
    const double denominator =
        oversubscribed ? std::min(elapsed, serial_elapsed) : elapsed;
    const double speedup = serial_elapsed / denominator;
    if (oversubscribed) {
      if (!oversubscribed_counts.empty()) oversubscribed_counts += ",";
      oversubscribed_counts += std::to_string(threads);
    }
    bench::row({std::to_string(threads), util::format_fixed(rate, 1),
                util::format_fixed(speedup, 2) +
                    (oversubscribed ? " (oversub)" : ""),
                util::format_fixed(double(total_events) / elapsed / 1e6, 2) +
                    "M"},
               {8, 11, 13, 11});
    const std::string suffix = "_threads_" + std::to_string(threads);
    metrics.gauge("runner", "trials_per_sec" + suffix).set(rate);
    metrics.gauge("runner", "speedup" + suffix).set(speedup);
    metrics.gauge("runner", "sim_events_per_sec" + suffix)
        .set(double(total_events) / elapsed);
  }
  metrics.gauge("runner", "hardware_concurrency").set(double(hw));
  bench::note("speedup is bounded by the machine's core count (" +
              std::to_string(hw) + " here); oversubscribed counts are "
              "clamped to 1.0. Trial results themselves are byte-identical "
              "at every thread count");

  obs::BenchReport report;
  report.bench = "throughput";
  report.meta = {{"hardware_concurrency", std::to_string(hw)},
                 {"host_dependent", "true"},
                 {"kernel_workload", "schedule+drain, empty callbacks"},
                 {"oversubscribed_thread_counts",
                  oversubscribed_counts.empty() ? "none"
                                                : oversubscribed_counts},
                 {"runner_workload",
                  "64 probe-survival worlds, 7 probes, 730 days"},
                 {"speedup_policy",
                  "best-of-2 serial baseline; counts wider than the host "
                  "are clamped to >= 1.0"}};
  report.sections = {{"throughput", &metrics, nullptr}};
  bench::export_report(report);
}

}  // namespace
}  // namespace gw

int main() {
  gw::run();
  return 0;
}
