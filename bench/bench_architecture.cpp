// §II–§III — the architecture decision: shared long-range radio link with a
// relay (Norway style) vs two independent GPRS stations (what was built).
//
// The paper's claims:
//   * "a twofold power saving can be made, both because the hardware is
//     more efficient and the data from the base station does not have to
//     be sent to the reference station before transmission";
//   * independence: "the failure of one will not adversely affect the
//     other", whereas with the relay "all communication with the base
//     station would also cease";
//   * the relay scheme needs tight window synchronisation; dual GPRS does
//     not.
//
// We run both architectures for 60 days over identical payloads and report
// comms energy, yield, and failure coupling.
#include <cstdio>

#include "baseline/relay_architecture.h"
#include "bench_util.h"
#include "hw/gprs_modem.h"
#include "util/strings.h"

namespace gw {
namespace {

using namespace util::literals;

struct DualGprsResult {
  double joules = 0.0;
  int days_base_delivered = 0;
  int days_ref_delivered = 0;
};

// Dual-GPRS equivalent: each station pushes its own payload directly, same
// payloads and day count as the relay run.
DualGprsResult run_dual_gprs(int days, util::Bytes base_payload,
                             util::Bytes ref_payload, bool base_dead_half) {
  sim::Simulation simulation{sim::at_midnight(2009, 9, 1)};
  env::Environment environment{3};
  power::PowerSystemConfig power_config;
  power::PowerSystem base_power{simulation, environment, power_config};
  power::PowerSystem ref_power{simulation, environment, power_config};
  hw::GprsModem base_modem{simulation, base_power, util::Rng{11}};
  hw::GprsModem ref_modem{simulation, ref_power, util::Rng{12}};

  DualGprsResult result;
  for (int day = 0; day < days; ++day) {
    const bool base_dead = base_dead_half && day >= days / 2;
    if (!base_dead) {
      base_modem.power_on();
      const auto outcome = base_modem.attempt_transfer(base_payload);
      base_power.tick(outcome.elapsed);
      base_modem.power_off();
      if (outcome.success) ++result.days_base_delivered;
    }
    // The reference station is unaffected by the base station's fate.
    ref_modem.power_on();
    const auto outcome = ref_modem.attempt_transfer(ref_payload);
    ref_power.tick(outcome.elapsed);
    ref_modem.power_off();
    if (outcome.success) ++result.days_ref_delivered;
    simulation.run_until(simulation.now() + sim::days(1));
  }
  result.joules = base_power.consumed_by("gprs").value() +
                  ref_power.consumed_by("gprs").value();
  return result;
}

void run() {
  bench::heading("Sec II-III: relay-over-radio vs dual GPRS");

  constexpr int kDays = 60;
  const auto base_payload = util::kib(400);
  const auto ref_payload = util::kib(180);

  // --- experiment 1: energy, healthy operation ---------------------------
  sim::Simulation simulation{sim::at_midnight(2009, 9, 1)};
  env::Environment environment{3};
  baseline::RelayConfig relay_config;
  relay_config.base_daily_payload = base_payload;
  relay_config.relay_daily_payload = ref_payload;
  baseline::RelayDeployment relay{simulation, environment, util::Rng{7},
                                  relay_config};
  relay.run_days(kDays);
  const auto dual = run_dual_gprs(kDays, base_payload, ref_payload, false);

  bench::subheading("comms energy over 60 days (same payloads)");
  const double relay_joules = relay.comms_energy().value();
  bench::row({"Architecture", "Comms energy", "Wh", "Delivered days"},
             {26, 14, 8, 14});
  bench::row({"radio relay (Norway-style)",
              util::format_fixed(relay_joules, 0) + " J",
              util::format_fixed(relay_joules / 3600.0, 1),
              std::to_string(relay.stats().days_delivered) + "/60"},
             {26, 14, 8, 14});
  bench::row({"dual GPRS (deployed)",
              util::format_fixed(dual.joules, 0) + " J",
              util::format_fixed(dual.joules / 3600.0, 1),
              std::to_string(dual.days_base_delivered) + "/60 base"},
             {26, 14, 8, 14});
  bench::paper_vs_measured(
      "power saving of dual GPRS", ">= 2x (\"twofold\")",
      "x" + util::format_fixed(relay_joules / dual.joules, 2));

  // Decomposition: how much of the gap is hardware efficiency vs the relay
  // hop vs idle listening. Shrinking the relay's listen window isolates the
  // transfer-only cost (the paper's conservative "twofold" claim).
  bench::note("decomposition (sweeping the relay's listen window):");
  for (const double listen_h : {2.0, 1.0, 0.5}) {
    sim::Simulation sim_d{sim::at_midnight(2009, 9, 1)};
    env::Environment env_d{3};
    baseline::RelayConfig swept = relay_config;
    swept.relay_listen_window = sim::hours(listen_h);
    baseline::RelayDeployment run{sim_d, env_d, util::Rng{7}, swept};
    run.run_days(kDays);
    bench::note("  listen window " + util::format_fixed(listen_h, 1) +
                " h -> relay/dual energy ratio x" +
                util::format_fixed(run.comms_energy().value() / dual.joules,
                                   2));
  }
  bench::note(
      "  transfer-only floor: 2000 vs 5000 bps at 3960 vs 2640 mW = x3.75 "
      "per bit on the radio leg, plus the relay forwards everything again "
      "over GPRS — the paper's \"twofold\" is the conservative bound");

  // --- experiment 2: failure coupling ------------------------------------
  bench::subheading("failure coupling: partner dies on day 30");
  {
    sim::Simulation sim2{sim::at_midnight(2009, 9, 1)};
    env::Environment env2{3};
    baseline::RelayConfig failing = relay_config;
    failing.relay_fails_on_day = kDays / 2;
    baseline::RelayDeployment coupled{sim2, env2, util::Rng{7}, failing};
    coupled.run_days(kDays);
    const auto independent =
        run_dual_gprs(kDays, base_payload, ref_payload, true);
    bench::row({"Architecture", "Scenario", "Base-data days", "Other-station days"},
               {26, 22, 15, 18});
    bench::row({"radio relay", "relay dead from day 30",
                std::to_string(coupled.stats().days_delivered) + "/60",
                "0/60 (it is the relay)"},
               {26, 22, 15, 18});
    bench::row({"dual GPRS", "base dead from day 30",
                std::to_string(independent.days_base_delivered) + "/60",
                std::to_string(independent.days_ref_delivered) +
                    "/60 (unaffected)"},
               {26, 22, 15, 18});
    bench::note(
        "paper: with the relay, one failure silences both; independent "
        "stations degrade one at a time");
  }

  // --- experiment 2b: GPRS data cost --------------------------------------
  bench::subheading("GPRS data cost (\"paid for per megabyte\", Sec II)");
  {
    // §II: "the architecture does not dramatically affect the amount of
    // data sent back to Southampton so the cost implication is minimal."
    const double mib_per_day =
        (base_payload + ref_payload).mib();
    const double relay_mib = mib_per_day;        // relay forwards everything
    const double dual_mib = mib_per_day;         // same data, two modems
    const double cost_per_mib = hw::GprsConfig{}.cost_per_mib;
    bench::note("daily payload either way: " +
                util::format_fixed(mib_per_day, 2) + " MiB -> " +
                util::format_fixed(30.0 * relay_mib * cost_per_mib, 0) +
                " units/month relayed vs " +
                util::format_fixed(30.0 * dual_mib * cost_per_mib, 0) +
                " units/month dual GPRS (identical: only the *energy* "
                "differs)");
  }

  // --- experiment 3: synchronisation sensitivity -------------------------
  bench::subheading("window-synchronisation sensitivity (relay only)");
  bench::row({"Clock skew stddev", "Days delivered/30", "Days window-missed"},
             {18, 18, 18});
  for (const double skew_min : {0.5, 5.0, 30.0, 60.0, 120.0, 240.0}) {
    sim::Simulation sim3{sim::at_midnight(2009, 9, 1)};
    env::Environment env3{3};
    baseline::RelayConfig swept = relay_config;
    swept.skew_stddev = sim::minutes(skew_min);
    baseline::RelayDeployment run{sim3, env3, util::Rng{7}, swept};
    run.run_days(30);
    bench::row({util::format_fixed(skew_min, 1) + " min",
                std::to_string(run.stats().days_delivered),
                std::to_string(run.stats().days_window_missed)},
               {18, 18, 18});
  }
  bench::note(
      "dual GPRS has no pairwise window at all: \"the tight time "
      "synchronisation ... is no longer a requirement\" (Sec II)");

  // --- experiment 4: why the Norway plan didn't port ----------------------
  bench::subheading(
      "site comparison: winter wind harvest, Norway vs Iceland snow");
  // §II: Norway "had very little annual snowfall meaning the wind generator
  // could supply power in winter, whereas in Iceland the expected snow
  // would even stop that source from being useful."
  for (const bool iceland : {false, true}) {
    env::EnvironmentConfig site;
    if (!iceland) {
      // Norway: light snowfall — the turbine stays clear.
      site.snow.background_accumulation_m = 0.001;
      site.snow.storm_probability_per_day = 0.02;
      site.snow.storm_accumulation_m = 0.05;
    }
    sim::Simulation sim4{sim::at_midnight(2008, 11, 1)};
    env::Environment env4{site, 3};
    power::PowerSystemConfig power_config;
    power::PowerSystem power{sim4, env4, power_config};
    power.add_charger(
        std::make_unique<power::WindTurbine>(power::WindTurbineConfig{}));
    power.add_charger(
        std::make_unique<power::SolarPanel>(power::SolarPanelConfig{}));
    power.start();
    // December through April, the §II winter the stations must survive —
    // month by month, because Iceland's burial compounds as the pack grows.
    std::printf("  %-8s", iceland ? "Iceland:" : "Norway:");
    double previous = power.total_harvested().value();
    const int months[][2] = {{2008, 12}, {2009, 1}, {2009, 2},
                             {2009, 3},  {2009, 4}};
    for (const auto& [year, month] : months) {
      int next_year = year;
      int next_month = month + 1;
      if (next_month > 12) {
        next_month = 1;
        ++next_year;
      }
      sim4.run_until(sim::at_midnight(next_year, next_month, 1));
      const double now_wh = power.total_harvested().value();
      std::printf("  %04d-%02d:%6.0f Wh", year, month,
                  (now_wh - previous) / 3600.0);
      previous = now_wh;
    }
    std::printf("%s\n", iceland ? "  (burial compounds)" : "");
  }
  bench::note(
      "the Iceland winter removes the always-powered-relay option entirely "
      "— the self-contained Gumsense design and dual GPRS follow from it");
}

}  // namespace
}  // namespace gw

int main() {
  gw::run();
  return 0;
}
