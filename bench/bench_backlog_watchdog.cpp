// §VI — the 2-hour watchdog and its interaction with backlogs.
//
// Paper claims reproduced here:
//   * the 2-hour window holds ~21 days of state-3 dGPS files or ~259 days
//     of state-2 files (at the serial fetch rate);
//   * beyond that, data "will be processed file by file, and so over the
//     course of a few days the backlog will be cleared";
//   * a single file exceeding one window means "no progress could ever be
//     made" — a livelock cured by resuming partial transfers;
//   * a hung transfer is terminated by the watchdog, not the battery.
#include <cstdio>

#include "bench_util.h"
#include "core/watchdog.h"
#include "env/environment.h"
#include "hw/dgps.h"
#include "hw/serial_link.h"
#include "proto/transfer_manager.h"
#include "station/station.h"
#include "util/strings.h"

namespace gw {
namespace {

using namespace util::literals;

void capacity_arithmetic() {
  bench::subheading("1. how much backlog fits one 2-hour window");
  const hw::SerialLink link{util::Rng{1}};
  const double per_file_s =
      link.transfer_duration(165_KiB).to_seconds();
  const int capacity = int(7200.0 / per_file_s);
  bench::note("serial fetch: " + util::format_fixed(per_file_s, 1) +
              " s per nominal 165 KB file -> " + std::to_string(capacity) +
              " files per 2 h window");
  bench::paper_vs_measured("state 3 (12 files/day) backlog limit",
                           "~21 days",
                           util::format_fixed(capacity / 12.0, 1) + " days");
  bench::paper_vs_measured("state 2 (1 file/day) backlog limit", "~259 days",
                           std::to_string(capacity) + " days");
}

void fetch_backlog_drain() {
  bench::subheading("2. dGPS fetch backlog drains file by file across days");
  bench::row({"Backlog (days@12/day)", "Files", "Windows to drain"},
             {21, 7, 17});
  for (const int backlog_days : {10, 21, 30, 60}) {
    sim::Simulation simulation{sim::at_midnight(2009, 3, 1)};
    env::Environment environment{1};
    power::PowerSystemConfig power_config;
    power::PowerSystem power{simulation, environment, power_config};
    hw::DgpsReceiver dgps{simulation, power, util::Rng{3}};
    // Accumulate the backlog by cycling the receiver as the MSP would.
    for (int i = 0; i < backlog_days * 12; ++i) {
      dgps.power_on();
      simulation.run_until(simulation.now() + sim::seconds(308));
      dgps.power_off();
      simulation.run_until(simulation.now() + sim::seconds(10));
    }
    const std::size_t files = dgps.stored_files();
    // Daily windows: fetch over the serial link for at most 2 h/day.
    hw::SerialLink serial{util::Rng{9}};
    int windows = 0;
    while (dgps.stored_files() > 0 && windows < 100) {
      sim::Duration used{0};
      while (dgps.stored_files() > 0) {
        const auto next = dgps.peek_oldest();
        const auto estimate = serial.transfer_duration(next.value().size);
        if (used + estimate > sim::hours(2)) break;
        (void)serial.attempt_transfer(next.value().size);
        (void)dgps.fetch_oldest();
        used += estimate;
      }
      ++windows;
    }
    bench::row({std::to_string(backlog_days), std::to_string(files),
                std::to_string(windows)},
               {21, 7, 17});
  }
  bench::note("paper: backlogs beyond one window clear over a few days");
}

void gprs_backlog_drain() {
  bench::subheading("3. GPRS upload backlog (\"GPRS has not worked for a few days\")");
  bench::row({"Days offline", "Queued KiB", "Windows to clear"}, {13, 11, 17});
  for (const int offline_days : {3, 7, 14, 30}) {
    sim::Simulation simulation{sim::at_midnight(2009, 3, 1)};
    env::Environment environment{1};
    power::PowerSystemConfig power_config;
    power::PowerSystem power{simulation, environment, power_config};
    hw::GprsConfig gprs_config;
    gprs_config.registration_success = 1.0;
    gprs_config.drop_per_minute = 0.0;
    hw::GprsModem modem{simulation, power, util::Rng{5}, gprs_config};
    modem.power_on();
    proto::TransferManager manager;
    // One state-2 day ≈ 1 dGPS file + sensors + log.
    for (int day = 0; day < offline_days; ++day) {
      manager.enqueue("dgps_" + std::to_string(day), 165_KiB);
      manager.enqueue("sensors_" + std::to_string(day), 4_KiB);
      manager.enqueue("log_" + std::to_string(day), 12_KiB);
    }
    const auto queued = manager.queued_bytes();
    int windows = 0;
    while (!manager.empty() && windows < 60) {
      (void)manager.run_window(modem, sim::hours(2));
      ++windows;
    }
    bench::row({std::to_string(offline_days),
                util::format_fixed(queued.kib(), 0),
                std::to_string(windows)},
               {13, 11, 17});
  }
}

void livelock() {
  bench::subheading("4. the single-oversized-file livelock and its fix");
  for (const bool chunk_resume : {false, true}) {
    sim::Simulation simulation{sim::at_midnight(2009, 3, 1)};
    env::Environment environment{1};
    power::PowerSystemConfig power_config;
    power::PowerSystem power{simulation, environment, power_config};
    hw::GprsConfig gprs_config;
    gprs_config.registration_success = 1.0;
    gprs_config.drop_per_minute = 0.0;
    hw::GprsModem modem{simulation, power, util::Rng{5}, gprs_config};
    modem.power_on();
    proto::TransferManagerConfig manager_config;
    manager_config.chunk_resume = chunk_resume;
    proto::TransferManager manager{manager_config};
    manager.enqueue("merged_gps_file", util::mib(6.0));  // ~2.8 h at 5000 bps
    int windows = 0;
    while (!manager.empty() && windows < 10) {
      (void)manager.run_window(modem, sim::hours(2));
      ++windows;
    }
    std::printf("  %-28s -> %s\n",
                chunk_resume ? "chunk-resume (fix)" : "deployed (file-level)",
                manager.empty()
                    ? ("delivered in " + std::to_string(windows) + " windows")
                          .c_str()
                    : "NO PROGRESS after 10 windows (livelock, Sec VI)");
  }
}

void hung_transfer() {
  bench::subheading("5. hung transfer vs battery (the watchdog's job)");
  for (const bool with_watchdog : {true, false}) {
    sim::Simulation simulation{sim::at_midnight(2009, 9, 22)};
    env::Environment environment{5};
    station::SouthamptonServer server;
    station::StationConfig config;
    config.name = "reference";
    config.role = station::StationRole::kReferenceStation;
    config.power.battery.initial_soc = 0.6;
    config.gprs.hang_per_session = 1.0;  // every session wedges
    if (!with_watchdog) config.watchdog_limit = sim::days(30);
    station::Station s{simulation, environment, server, util::Rng{9},
                       config};
    s.start();
    simulation.run_until(simulation.now() + sim::days(2));
    std::printf(
        "  %-18s gumstix uptime %6.1f h, battery SoC %4.0f%%, brown-outs %d\n",
        with_watchdog ? "2h watchdog:" : "no watchdog:",
        s.board().gumstix().uptime().to_hours(),
        100.0 * s.power().battery().soc(), s.stats().brown_outs);
  }
  bench::note(
      "paper (Sec VI): without the 2-hour limit a hung SCP leaves the "
      "system running \"until its batteries are depleted\"");
}

void run() {
  bench::heading("Sec VI: watchdog, backlogs, livelock");
  capacity_arithmetic();
  fetch_backlog_drain();
  gprs_backlog_drain();
  livelock();
  hung_transfer();
}

}  // namespace
}  // namespace gw

int main() {
  gw::run();
  return 0;
}
