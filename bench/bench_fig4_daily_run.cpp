// Fig 4 — "Flowchart showing system operation": the daily execution
// sequence on each station.
//
// This bench runs one daily window on a base station and on a reference
// station and prints the steps that actually executed, in order, for three
// scenarios: normal operation, the state-0 gate ("Power state = 0 ->
// Stop"), and the §VI reordering (special before upload).
#include <cstdio>
#include <memory>

#include "bench_util.h"
#include "station/station.h"

namespace gw {
namespace {

struct Rig {
  sim::Simulation simulation{sim::at_midnight(2009, 9, 22)};
  env::Environment environment{5};
  station::SouthamptonServer server;
};

// A scenario keeps its rig and station alive until the end-of-run JSON
// export (BenchReport sections hold pointers into the stations).
struct Scenario {
  std::unique_ptr<Rig> rig = std::make_unique<Rig>();
  std::unique_ptr<station::Station> station;
  std::unique_ptr<station::ProbeNode> probe;
};

station::StationConfig reliable(const std::string& name,
                                station::StationRole role) {
  station::StationConfig config;
  config.name = name;
  config.role = role;
  config.gprs.registration_success = 1.0;
  config.gprs.drop_per_minute = 0.0;
  config.power.battery.initial_soc = 1.0;
  return config;
}

void print_steps(const station::Station& s) {
  int index = 1;
  for (const auto& step : s.last_run_steps()) {
    std::printf("  %2d. %s\n", index++, step.c_str());
  }
}

void run() {
  bench::heading("Fig 4: daily execution sequence");

  Scenario normal;
  {
    Rig& rig = *normal.rig;
    normal.station = std::make_unique<station::Station>(
        rig.simulation, rig.environment, rig.server, util::Rng{1},
        reliable("base", station::StationRole::kBaseStation));
    station::Station& base = *normal.station;
    power::MainsChargerConfig mains{.season_start_month = 1,
                                    .season_end_month = 12};
    base.add_charger(std::make_unique<power::MainsCharger>(mains));
    base.start();
    station::ProbeNodeConfig probe_config;
    probe_config.probe_id = 21;
    probe_config.weibull_scale_days = 5000.0;
    normal.probe = std::make_unique<station::ProbeNode>(
        rig.simulation, rig.environment, util::Rng{21}, probe_config);
    base.add_probe(*normal.probe);
    rig.simulation.run_until(rig.simulation.now() + sim::days(1));
    bench::subheading("base station, normal day (deployed Fig 4 order)");
    print_steps(base);
  }

  Scenario ref;
  {
    Rig& rig = *ref.rig;
    ref.station = std::make_unique<station::Station>(
        rig.simulation, rig.environment, rig.server, util::Rng{2},
        reliable("reference", station::StationRole::kReferenceStation));
    station::Station& reference = *ref.station;
    power::MainsChargerConfig mains{.season_start_month = 1,
                                    .season_end_month = 12};
    reference.add_charger(std::make_unique<power::MainsCharger>(mains));
    reference.start();
    rig.simulation.run_until(rig.simulation.now() + sim::days(1));
    bench::subheading("reference station, normal day (no probe branch)");
    print_steps(reference);
  }

  Scenario state0;
  {
    Rig& rig = *state0.rig;
    auto config = reliable("base", station::StationRole::kBaseStation);
    config.power.battery.initial_soc = 0.06;  // collapsed cell: state 0
    config.initial_state = core::PowerState::kState0;
    state0.station = std::make_unique<station::Station>(
        rig.simulation, rig.environment, rig.server, util::Rng{3}, config);
    station::Station& starved = *state0.station;
    starved.start();
    rig.simulation.run_until(rig.simulation.now() + sim::days(1));
    bench::subheading("state-0 day ('Power state = 0 -> Stop')");
    print_steps(starved);
    bench::note("GPRS sessions attempted: " +
                std::to_string(starved.gprs().sessions_attempted()) +
                " (paper: none in state 0)");
  }

  Scenario special;
  {
    Rig& rig = *special.rig;
    auto config = reliable("base", station::StationRole::kBaseStation);
    config.execute_special_before_upload = true;
    special.station = std::make_unique<station::Station>(
        rig.simulation, rig.environment, rig.server, util::Rng{4}, config);
    station::Station& reordered = *special.station;
    power::MainsChargerConfig mains{.season_start_month = 1,
                                    .season_end_month = 12};
    reordered.add_charger(std::make_unique<power::MainsCharger>(mains));
    reordered.start();
    rig.server.queue_special("base", {.id = "patch", .script = "echo hi"});
    rig.simulation.run_until(rig.simulation.now() + sim::days(1));
    bench::subheading("Sec VI reordering: special executes before upload");
    print_steps(reordered);
    if (!rig.server.special_results().empty()) {
      const auto& result = rig.server.special_results().front();
      bench::note(
          "special result latency: " +
          util::format_fixed(
              (result.results_visible_at - result.executed_at).to_hours(),
              1) +
          " h (deployed ordering: 24 h, Sec VI)");
    }
  }

  // --- machine-readable export (glacsweb.bench.v1) -----------------------
  obs::BenchReport report;
  report.bench = "fig4_daily_run";
  report.meta = {{"paper", "Fig 4"}, {"window", "one daily run per scenario"}};
  report.sections = {
      {"base_normal", &normal.station->metrics(), &normal.station->journal()},
      {"reference_normal", &ref.station->metrics(), &ref.station->journal()},
      {"state0", &state0.station->metrics(), &state0.station->journal()},
      {"special_reordered", &special.station->metrics(),
       &special.station->journal()}};
  bench::export_report(report);
}

}  // namespace
}  // namespace gw

int main() {
  gw::run();
  return 0;
}
