// Fig 6 — "Sample data from three sub-glacial nodes showing electrical
// conductivity changes at the end of winter" (probes 21, 24, 25;
// 27 Jan – 21 Apr 2009, conductivity 0–16 µS).
//
// The published curves are flat and low (< ~3 µS) through February and
// early March, then rise as spring melt reaches the glacier bed, with the
// three probes responding with different amplitudes. We run the deployment
// across the same window and print each probe's daily-mean conductivity as
// delivered through the full pipeline (probe sampling -> NACK transfer ->
// base station), plus shape diagnostics.
#include <cstdio>
#include <map>

#include "bench_util.h"
#include "station/deployment.h"
#include "util/strings.h"

namespace gw {
namespace {

void run() {
  bench::heading("Fig 6: sub-glacial conductivity, 27 Jan - 21 Apr 2009");

  station::DeploymentConfig config;
  config.start = sim::DateTime{2009, 1, 20, 0, 0, 0};
  config.base.gprs.registration_success = 1.0;
  config.base.gprs.drop_per_minute = 0.0;
  config.reference.gprs.registration_success = 1.0;
  config.reference.gprs.drop_per_minute = 0.0;
  station::Deployment deployment{config};
  deployment.run_days(98.0);  // through late April

  const auto& trace = deployment.trace();
  // The paper plots probes 21, 24 and 25.
  const std::vector<std::string> probes = {"probe21", "probe24", "probe25"};

  bench::subheading("daily mean conductivity (uS)  [columns: date, " +
                    probes[0] + ", " + probes[1] + ", " + probes[2] + "]");

  const sim::SimTime window_start = sim::at_midnight(2009, 1, 27);
  const sim::SimTime window_end = sim::at_midnight(2009, 4, 22);

  std::map<std::string, std::pair<double, double>> first_last_week;  // means
  for (sim::SimTime day = window_start; day < window_end;
       day += sim::days(2)) {
    std::string line = "  " + sim::format_iso(day).substr(0, 10);
    for (const auto& probe : probes) {
      const auto& series = trace.series(probe + ".conductivity");
      double sum = 0.0;
      int n = 0;
      for (const auto& point : series) {
        if (point.time >= day && point.time < day + sim::days(1)) {
          sum += point.value;
          ++n;
        }
      }
      const double mean = n > 0 ? sum / n : 0.0;
      line += "  " + util::pad_left(util::format_fixed(mean, 2), 7);
      auto& [first, last] = first_last_week[probe];
      if (day < window_start + sim::days(14)) first += mean / 7.0;
      if (day >= window_end - sim::days(14)) last += mean / 7.0;
    }
    std::printf("%s\n", line.c_str());
  }

  bench::subheading("shape checks vs the published figure");
  for (const auto& probe : probes) {
    const auto& [early, late] = first_last_week[probe];
    bench::paper_vs_measured(
        probe + " winter level", "~0-3 uS",
        util::format_fixed(early, 2) + " uS");
    bench::paper_vs_measured(
        probe + " late-April level", "rising, ~4-16 uS",
        util::format_fixed(late, 2) + " uS (x" +
            util::format_fixed(late / std::max(0.01, early), 1) +
            " over winter)");
  }
  bench::note(
      "interpretation (Sec V): conductivity increases show melt-water "
      "starting to reach the glacier bed at the end of winter");

  // End-to-end check: those readings actually travelled the probe protocol.
  bench::subheading("pipeline check");
  bench::note("probe readings delivered to base station over the window: " +
              std::to_string(
                  deployment.base().stats().probe_readings_delivered));
  bench::note("probes alive at window end: " +
              std::to_string(deployment.probes_alive()) + "/7");
}

}  // namespace
}  // namespace gw

int main() {
  gw::run();
  return 0;
}
