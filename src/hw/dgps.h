// Differential GPS receiver.
//
// The architecture's heaviest consumer (Table 1: 3.6 W — continuous
// operation would flatten the 36 Ah bank in 5 days, §III). Modelled
// behaviours, all from the paper:
//   * the microcontroller switches its power; the receiver "automatically
//     start[s] taking a reading whenever it is turned on" (§II), removing
//     Gumstix software from the dGPS timing path;
//   * a reading lasts ~5 minutes (calibrated so 12/day gives the paper's
//     117-day state-3 depletion figure) and produces ~165 KB, varying with
//     the number of visible satellites (§III);
//   * files accumulate on the receiver's internal compact-flash card and
//     are fetched to the Gumstix over RS232 — the fetch time per file is
//     what turns multi-day backlogs into 2-hour-watchdog overruns (§VI);
//   * when powered it can also deliver a time fix, the recovery path for a
//     reset RTC (§IV).
#pragma once

#include <deque>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "energy/component_model.h"
#include "env/gps_sky.h"
#include "fault/fault.h"
#include "power/power_system.h"
#include "sim/simulation.h"
#include "snapshot/error.h"
#include "util/result.h"
#include "util/rng.h"
#include "util/units.h"

namespace gw::hw {

struct DgpsFile {
  std::string name;
  util::Bytes size;

  template <class Archive>
  void persist(Archive& ar) {
    ar.value(name);
    ar.value(size);
  }
};

struct DgpsConfig {
  util::Watts power{3.6};                       // Table 1
  sim::Duration reading_duration = sim::seconds(308);
  util::Bytes mean_file_size = util::kib(165);  // §III
  double file_size_jitter = 0.12;               // satellite-count variation
  sim::Duration fetch_per_file = sim::seconds(28);  // RS232, calibrated (§VI)
  sim::Duration fix_acquisition = sim::seconds(90);
  double fix_probability = 0.92;  // sky view is good on an ice cap
};

class DgpsReceiver {
 public:
  // `sky` is optional: with a constellation model attached, file sizes and
  // fix behaviour follow satellite visibility (§III); without it, a plain
  // stochastic jitter stands in (unit-test mode).
  DgpsReceiver(sim::Simulation& simulation, power::PowerSystem& power,
               util::Rng rng, DgpsConfig config = {},
               env::GpsSky* sky = nullptr)
      : simulation_(simulation),
        power_(power),
        config_(config),
        rng_(rng),
        sky_(sky),
        load_(power.add_component(make_spec(config))) {}

  // Attaches scripted fault windows (dgps_no_fix); null detaches.
  void set_fault_oracle(fault::FaultOracle* oracle) { oracle_ = oracle; }

  // --- power / reading lifecycle -------------------------------------------

  [[nodiscard]] bool powered() const { return powered_; }

  // Applies power; the receiver immediately begins a reading (§II). The
  // completion callback fires when the reading is stored — the MSP430 uses
  // it to cut power again.
  void power_on(std::function<void()> on_reading_complete = {}) {
    if (powered_) return;
    powered_ = true;
    // Attribution (docs/ENERGY.md): the automatic reading that starts at
    // power-on is "acquiring"; whatever powered time follows (serial
    // fetches, a time fix for the recovery path) books as "logging". Both
    // draw Table 1's 3.6 W.
    power_.set_activity(load_, kLogging);
    power_.plan_activity(load_, {{kAcquiring, config_.reading_duration}});
    const std::uint64_t generation = ++power_generation_;
    const sim::SimTime started = simulation_.now();
    simulation_.schedule_in(config_.reading_duration,
                            [this, generation, started,
                             callback = std::move(on_reading_complete)] {
      // Power was cut mid-reading: nothing stored (and no callback).
      if (!powered_ || generation != power_generation_) return;
      store_reading(started);
      if (callback) callback();
    });
  }

  void power_off() {
    if (!powered_) return;
    powered_ = false;
    ++power_generation_;
    power_.set_activity(load_, 0);
  }

  // --- stored files ---------------------------------------------------------

  [[nodiscard]] std::size_t stored_files() const { return files_.size(); }

  [[nodiscard]] util::Bytes stored_bytes() const {
    util::Bytes total{0};
    for (const auto& file : files_) total += file.size;
    return total;
  }

  // Serial-fetch time for the oldest stored file.
  [[nodiscard]] sim::Duration fetch_duration() const {
    return config_.fetch_per_file;
  }

  // Looks at the oldest file without removing it (the station sizes the
  // serial transfer before committing window time to it).
  [[nodiscard]] util::Result<DgpsFile> peek_oldest() const {
    if (files_.empty()) return util::make_error("dgps: no stored files");
    return files_.front();
  }

  // Removes and returns the oldest file (the Gumstix fetches oldest-first
  // so backlogs drain file by file, §VI).
  [[nodiscard]] util::Result<DgpsFile> fetch_oldest() {
    if (files_.empty()) return util::make_error("dgps: no stored files");
    DgpsFile file = files_.front();
    files_.pop_front();
    return file;
  }

  [[nodiscard]] int readings_taken() const { return readings_taken_; }

  // --- time fix (recovery path, §IV) ---------------------------------------

  // Attempts a time fix; requires power. With a sky model, visibility must
  // also allow a fix and the acquisition time follows the constellation;
  // GPS time is authoritative at this resolution either way.
  [[nodiscard]] util::Result<sim::SimTime> time_fix() {
    if (!powered_) return util::make_error("dgps: not powered");
    const sim::SimTime now = simulation_.now();
    if (sky_ != nullptr && !sky_->fix_possible(now)) {
      return util::make_error("dgps: too few satellites visible");
    }
    // An active dgps_no_fix window scales the success chance down (severity
    // 1 = the constellation is effectively invisible for the window).
    const double fix_probability =
        oracle_ != nullptr
            ? oracle_->success(fault::FaultKind::kDgpsNoFix, now,
                               config_.fix_probability)
            : config_.fix_probability;
    if (!rng_.bernoulli(fix_probability)) {
      if (oracle_ != nullptr &&
          oracle_->active(fault::FaultKind::kDgpsNoFix, now)) {
        oracle_->record_trip(fault::FaultKind::kDgpsNoFix, now);
      }
      return util::make_error("dgps: no fix acquired");
    }
    const sim::Duration acquisition =
        sky_ != nullptr ? sky_->fix_time(simulation_.now())
                        : config_.fix_acquisition;
    return simulation_.now() + acquisition;
  }

  // Satellites in view right now (0 when no sky model is attached).
  [[nodiscard]] int satellites_visible() {
    return sky_ != nullptr ? sky_->visible(simulation_.now()) : 0;
  }

  [[nodiscard]] const DgpsConfig& config() const { return config_; }

  // Snapshot support (docs/SNAPSHOT.md). A reading in flight holds an
  // external completion callback the snapshot cannot reconstruct, so a save
  // while powered is refused — checkpoints must land between dGPS slots.
  template <class Archive>
  void persist(Archive& ar) {
    if constexpr (Archive::kIsSaver) {
      if (powered_) {
        throw snapshot::SnapshotError(snapshot::SnapshotErrc::kNotQuiescent,
                                      "dgps reading in flight", "dgps");
      }
    }
    ar.value(rng_);
    ar.value(power_generation_);
    ar.value(files_);
    ar.value(readings_taken_);
  }

 private:
  static constexpr std::size_t kAcquiring = 1;
  static constexpr std::size_t kLogging = 2;

  static energy::ComponentSpec make_spec(const DgpsConfig& config) {
    energy::ComponentSpec spec;
    spec.name = "dgps";
    spec.states.push_back({"off", util::Watts{0.0}, 0.0});
    spec.states.push_back({"acquiring", config.power, 0.0});
    spec.states.push_back({"logging", config.power, 0.0});
    return spec;
  }

  void store_reading(sim::SimTime started) {
    // §III: "the exact size varies depending on the number of satellites
    // available at the time of the reading."
    const double factor =
        sky_ != nullptr
            ? sky_->file_size_factor(started) *
                  (1.0 + 0.03 * rng_.normal())
            : 1.0 + config_.file_size_jitter * rng_.normal();
    const auto size = util::Bytes{std::int64_t(
        double(config_.mean_file_size.count()) * std::max(0.4, factor))};
    files_.push_back(DgpsFile{"dgps_" + sim::format_iso(started), size});
    ++readings_taken_;
  }

  sim::Simulation& simulation_;
  power::PowerSystem& power_;
  DgpsConfig config_;
  util::Rng rng_;
  env::GpsSky* sky_;
  fault::FaultOracle* oracle_ = nullptr;
  // gwlint: allow(persist-coverage): registry handle re-acquired when the
  // identically-configured power system is rebuilt before restore
  power::LoadHandle load_;
  bool powered_ = false;
  std::uint64_t power_generation_ = 0;
  std::deque<DgpsFile> files_;
  int readings_taken_ = 0;
};

}  // namespace gw::hw
