// 500 mW 466 MHz long-range radio modem — the Norway-architecture link.
//
// Table 1: 2000 bps at 3960 mW. §II documents why it lost: unreliable in
// lab testing with time-of-day-correlated drop-outs (local interference),
// the directional antenna needed at the café would not survive winter, and
// a battery-powered endpoint cannot keep a ppp daemon listening. The model
// keeps the device here and puts session/ppp semantics in proto::PppLink.
#pragma once

#include "energy/component_model.h"
#include "env/interference.h"
#include "power/power_system.h"
#include "sim/simulation.h"
#include "util/units.h"

namespace gw::hw {

struct RadioModemConfig {
  util::BitsPerSecond rate{2000.0};  // Table 1
  util::Watts power{3.96};           // Table 1
  double protocol_overhead = 1.18;   // ppp + serial framing
};

class RadioModem {
 public:
  RadioModem(sim::Simulation& simulation, power::PowerSystem& power,
             env::InterferenceModel& interference,
             RadioModemConfig config = {})
      : simulation_(simulation),
        power_(power),
        interference_(interference),
        config_(config),
        load_(power.add_component(make_spec(config))) {}

  [[nodiscard]] bool powered() const { return powered_; }

  void power_on() {
    if (powered_) return;
    powered_ = true;
    power_.set_activity(load_, 1);
  }

  void power_off() {
    if (!powered_) return;
    powered_ = false;
    power_.set_activity(load_, 0);
  }

  [[nodiscard]] sim::Duration transfer_time(util::Bytes payload) const {
    return sim::seconds(util::transfer_seconds(payload, config_.rate) *
                        config_.protocol_overhead);
  }

  // Probability the carrier drops during one connected minute at t — fed by
  // the interference model so lab vs glacier and time-of-day effects show
  // through (§II).
  [[nodiscard]] double drop_probability_per_minute(sim::SimTime t) const {
    return interference_.dropout_probability(t);
  }

  [[nodiscard]] bool draw_drop(sim::SimTime t) {
    return interference_.dropout(t);
  }

  [[nodiscard]] const RadioModemConfig& config() const { return config_; }

 private:
  static energy::ComponentSpec make_spec(const RadioModemConfig& config) {
    energy::ComponentSpec spec;
    spec.name = "radio_modem";
    spec.states.push_back({"off", util::Watts{0.0}, 0.0});
    spec.states.push_back({"carrier", config.power, 0.0});
    return spec;
  }

  sim::Simulation& simulation_;
  power::PowerSystem& power_;
  env::InterferenceModel& interference_;
  RadioModemConfig config_;
  power::LoadHandle load_;
  bool powered_ = false;
};

}  // namespace gw::hw
