// Compact-flash storage card.
//
// Both stations buffer everything locally (4 GB card, §II) until the daily
// window; §VII reports that a card "had become corrupted ... it proved
// possible to recover the data" and asks "whether a more suitable file
// system format can be found". The model supports that investigation:
//
//   * kPlain — FAT-style in-place writes. A power cut mid-write corrupts
//     the in-flight file and, with some probability, the filesystem
//     metadata (card unreadable until recovered by fsck).
//   * kJournaled — write-ahead + atomic publish. A power cut discards the
//     in-flight write; committed data and metadata stay intact.
//
// A small random bit-rot hazard reproduces the "exact cause unknown"
// corruption independent of power cuts. bench_storage_ablation sweeps both
// formats under fault injection.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "fault/fault.h"
#include "sim/simulation.h"
#include "sim/time.h"
#include "util/result.h"
#include "util/rng.h"
#include "util/units.h"

namespace gw::hw {

enum class StorageFormat { kPlain, kJournaled };

struct CfCardConfig {
  util::Bytes capacity = util::mib(4096);  // 4 GB card (§II)
  StorageFormat format = StorageFormat::kPlain;
  // Probability a power cut during an uncommitted plain write also trashes
  // filesystem metadata (whole-card corruption).
  double metadata_corruption_on_cut = 0.15;
  // Spontaneous single-file corruption hazard (per file-month).
  double bitrot_per_file_month = 0.0004;
};

class CompactFlashCard {
 public:
  struct FileInfo {
    util::Bytes size{0};
    bool corrupted = false;

    template <class Archive>
    void persist(Archive& ar) {
      ar.value(size);
      ar.value(corrupted);
    }
  };

  struct ScanReport {
    int healthy = 0;
    int corrupted_files = 0;
    bool metadata_corrupted = false;
    int recovered_files = 0;   // corrupted files brought back by recovery
    util::Bytes lost{0};       // data unrecoverable even after fsck
  };

  CompactFlashCard(util::Rng rng, CfCardConfig config = {})
      : config_(config), rng_(rng) {}

  // Attaches scripted fault windows (cf_write_fail). The card keeps no
  // Simulation reference of its own, so the clock to query windows against
  // comes along with the oracle; null/null detaches.
  void set_fault_oracle(fault::FaultOracle* oracle,
                        const sim::Simulation* simulation) {
    oracle_ = oracle;
    oracle_clock_ = simulation;
  }

  // --- writes ---------------------------------------------------------

  // Two-phase write so a power cut can land between begin and commit.
  util::Status begin_write(const std::string& name, util::Bytes size) {
    if (metadata_corrupted_) return util::make_error("cf: card corrupted");
    if (in_flight_.has_value()) return util::make_error("cf: write busy");
    if (oracle_ != nullptr && oracle_clock_ != nullptr) {
      // An active cf_write_fail window rejects writes with probability
      // severity — §VII's flaky card, scripted instead of spontaneous.
      const sim::SimTime now = oracle_clock_->now();
      const double severity =
          oracle_->severity(fault::FaultKind::kCfWriteFail, now);
      if (severity > 0.0 && rng_.bernoulli(severity)) {
        oracle_->record_trip(fault::FaultKind::kCfWriteFail, now);
        return util::make_error("cf: write fault (injected)");
      }
    }
    if ((used() + size) > config_.capacity) {
      return util::make_error("cf: card full");
    }
    in_flight_ = InFlight{name, size};
    return {};
  }

  util::Status commit_write() {
    if (!in_flight_.has_value()) return util::make_error("cf: no write open");
    files_[in_flight_->name] = FileInfo{in_flight_->size, false};
    in_flight_.reset();
    return {};
  }

  // Single-shot convenience for contexts where no cut can intervene.
  util::Status write(const std::string& name, util::Bytes size) {
    if (auto status = begin_write(name, size); !status.ok()) return status;
    return commit_write();
  }

  // --- reads -----------------------------------------------------------

  [[nodiscard]] bool exists(const std::string& name) const {
    return !metadata_corrupted_ && files_.contains(name);
  }

  [[nodiscard]] util::Result<util::Bytes> read(const std::string& name) const {
    if (metadata_corrupted_) return util::make_error("cf: card corrupted");
    const auto it = files_.find(name);
    if (it == files_.end()) return util::make_error("cf: no such file");
    if (it->second.corrupted) return util::make_error("cf: file corrupted");
    return it->second.size;
  }

  util::Status remove(const std::string& name) {
    if (metadata_corrupted_) return util::make_error("cf: card corrupted");
    return files_.erase(name) > 0
               ? util::Status{}
               : util::Status::failure("cf: no such file");
  }

  [[nodiscard]] std::vector<std::string> list() const {
    std::vector<std::string> names;
    if (metadata_corrupted_) return names;
    names.reserve(files_.size());
    for (const auto& [name, info] : files_) names.push_back(name);
    return names;
  }

  [[nodiscard]] util::Bytes used() const {
    util::Bytes total{0};
    for (const auto& [name, info] : files_) total += info.size;
    return total;
  }

  [[nodiscard]] std::size_t file_count() const { return files_.size(); }
  [[nodiscard]] bool metadata_corrupted() const { return metadata_corrupted_; }

  // --- fault model ------------------------------------------------------

  // Power cut with a write potentially in flight.
  void power_cut() {
    if (!in_flight_.has_value()) return;
    if (config_.format == StorageFormat::kJournaled) {
      // Journal replay simply discards the uncommitted record.
      in_flight_.reset();
      return;
    }
    // Plain format: the torn write lands as a corrupted file...
    files_[in_flight_->name] = FileInfo{in_flight_->size, true};
    in_flight_.reset();
    // ...and sometimes takes the allocation table with it.
    if (rng_.bernoulli(config_.metadata_corruption_on_cut)) {
      metadata_corrupted_ = true;
    }
  }

  // Advances the bit-rot clock by `elapsed`; each stored file independently
  // risks silent corruption.
  void age(sim::Duration elapsed) {
    const double months = elapsed.to_days() / 30.0;
    const double hazard = config_.bitrot_per_file_month * months;
    for (auto& [name, info] : files_) {
      if (!info.corrupted && rng_.bernoulli(hazard)) info.corrupted = true;
    }
  }

  // fsck-style scan. With `attempt_recovery`, corrupted files are
  // recovered with high probability (the deployment recovered the data,
  // §VII) and metadata corruption is always repairable offline.
  ScanReport fsck(bool attempt_recovery) {
    ScanReport report;
    report.metadata_corrupted = metadata_corrupted_;
    for (auto& [name, info] : files_) {
      if (!info.corrupted) {
        ++report.healthy;
        continue;
      }
      ++report.corrupted_files;
      if (attempt_recovery && rng_.bernoulli(0.85)) {
        info.corrupted = false;
        ++report.recovered_files;
      } else {
        report.lost += info.size;
      }
    }
    if (attempt_recovery) metadata_corrupted_ = false;
    return report;
  }

  [[nodiscard]] const CfCardConfig& config() const { return config_; }

  // Snapshot support (docs/SNAPSHOT.md).
  template <class Archive>
  void persist(Archive& ar) {
    ar.value(rng_);
    ar.value(files_);
    ar.value(in_flight_);
    ar.value(metadata_corrupted_);
  }

 private:
  struct InFlight {
    std::string name;
    util::Bytes size{0};

    template <class Archive>
    void persist(Archive& ar) {
      ar.value(name);
      ar.value(size);
    }
  };

  CfCardConfig config_;
  util::Rng rng_;
  fault::FaultOracle* oracle_ = nullptr;
  const sim::Simulation* oracle_clock_ = nullptr;
  std::map<std::string, FileInfo> files_;
  std::optional<InFlight> in_flight_;
  bool metadata_corrupted_ = false;
};

}  // namespace gw::hw
