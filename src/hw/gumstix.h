// Gumstix connex: the "high performance" half of the Gumsense pairing.
//
// §II: a 400–600 MHz ARM Linux system in an 80×20 mm footprint drawing
// ~100 mA (Table 1: 900 mW) with *no useful sleep mode* — which is the whole
// reason the platform pairs it with an MSP430 and only powers it "when there
// is a need for more processing power". The model tracks power state, boot
// latency, and cumulative uptime; the energy cost flows through the
// activity-state component it registers (docs/ENERGY.md).
//
// DVFS: the PXA-class core exposes a plan of (frequency, core voltage)
// operating points. Each point is a distinct "run@<f>MHz" activity state
// whose draw scales as P = P_top · (f/f_top) · (V/V_top)², per the classic
// CMOS dynamic-power model the DVFS literature builds on. Selecting the top
// point (the default) reproduces Table 1's 900 mW bitwise; slower points
// trade longer compute time (cpu_scale()) for lower draw, which is what
// makes a frequency plan per power state a searchable policy knob.
#pragma once

#include <cmath>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "energy/component_model.h"
#include "power/power_system.h"
#include "sim/simulation.h"
#include "util/units.h"

namespace gw::hw {

struct GumstixOperatingPoint {
  double mhz = 400.0;
  util::Volts core_volts{1.3};
};

struct GumstixConfig {
  util::Watts run_power{0.9};  // Table 1, at the top operating point
  sim::Duration boot_time = sim::seconds(25);  // Linux boot to usable shell
  // Ascending frequency; the last entry is the full-speed point whose draw
  // is exactly run_power (PXA255-class ladder).
  std::vector<GumstixOperatingPoint> frequency_plan = {
      {200.0, util::Volts{1.0}},
      {300.0, util::Volts{1.1}},
      {400.0, util::Volts{1.3}},
  };
};

class Gumstix {
 public:
  enum class State { kOff, kBooting, kRunning };

  Gumstix(sim::Simulation& simulation, power::PowerSystem& power,
          GumstixConfig config = {})
      : simulation_(simulation),
        power_(power),
        config_(std::move(config)),
        selected_(config_.frequency_plan.size() - 1),
        load_(power.add_component(make_spec(config_))) {}

  [[nodiscard]] State state() const { return state_; }
  [[nodiscard]] bool running() const { return state_ == State::kRunning; }

  // --- DVFS ---------------------------------------------------------------

  [[nodiscard]] const std::vector<GumstixOperatingPoint>& frequency_plan()
      const {
    return config_.frequency_plan;
  }
  [[nodiscard]] std::size_t selected_point() const { return selected_; }

  // Selects an operating point. Takes effect immediately when running
  // (an activity transition); while off or booting it is latched for the
  // next run state entry.
  void set_frequency_index(std::size_t index) {
    config_.frequency_plan.at(index);  // bounds check
    selected_ = index;
    if (state_ == State::kRunning) {
      power_.set_activity(load_, run_state(selected_));
    }
  }

  // How much longer CPU-bound work takes at the selected point relative to
  // full speed (1.0 at the top point, exactly).
  [[nodiscard]] double cpu_scale() const {
    return config_.frequency_plan.back().mhz /
           config_.frequency_plan[selected_].mhz;
  }

  // Stretches a full-speed compute duration by cpu_scale(); returns the
  // duration untouched (bitwise) at the top point.
  [[nodiscard]] sim::Duration scaled(sim::Duration full_speed) const {
    const double scale = cpu_scale();
    if (scale == 1.0) return full_speed;
    return sim::Duration{std::llround(double(full_speed.millis()) * scale)};
  }

  // --- power --------------------------------------------------------------

  // Applies power. Returns the time at which Linux is up; callers schedule
  // their first task at that moment. No-op (returns now) if already running.
  sim::SimTime power_on() {
    if (state_ == State::kRunning) return simulation_.now();
    if (state_ == State::kOff) {
      state_ = State::kBooting;
      power_.set_activity(load_, kBootState);
      powered_since_ = simulation_.now();
      ++boot_count_;
      boot_done_ = simulation_.now() + config_.boot_time;
      boot_event_ = simulation_.schedule_at(boot_done_, [this] { finish_boot(); });
    }
    return boot_done_;
  }

  // Hard power cut from the Gumsense board (end of window, watchdog, or
  // brown-out). Any in-flight work is simply gone — the paper's 2-hour
  // safety timeout behaves exactly like this.
  void power_off() {
    if (state_ == State::kOff) return;
    state_ = State::kOff;
    power_.set_activity(load_, 0);
    uptime_ += simulation_.now() - powered_since_;
  }

  [[nodiscard]] sim::Duration uptime() const {
    if (state_ == State::kOff) return uptime_;
    return uptime_ + (simulation_.now() - powered_since_);
  }

  [[nodiscard]] int boot_count() const { return boot_count_; }
  [[nodiscard]] const GumstixConfig& config() const { return config_; }

  // Snapshot support (docs/SNAPSHOT.md). The component's activity state is
  // restored by PowerSystem's persist; a boot in flight is rebuilt as a
  // pending event under its saved key.
  template <class Archive>
  void persist(Archive& ar) {
    ar.value(state_);
    std::uint64_t selected = selected_;
    ar.value(selected);
    selected_ = std::size_t(selected);
    ar.value(powered_since_);
    ar.value(boot_done_);
    ar.value(uptime_);
    ar.value(boot_count_);
    sim::persist_pending(ar, simulation_, boot_event_,
                         [this] { finish_boot(); });
  }

 private:
  static constexpr std::size_t kBootState = 1;
  [[nodiscard]] static std::size_t run_state(std::size_t point) {
    return 2 + point;
  }

  static energy::ComponentSpec make_spec(const GumstixConfig& config) {
    energy::ComponentSpec spec;
    spec.name = "gumstix";
    spec.states.push_back({"off", util::Watts{0.0}, 0.0});
    // Boot burns full power: the kernel brings the core up at top speed.
    spec.states.push_back({"boot", config.run_power, 0.0});
    const GumstixOperatingPoint& top = config.frequency_plan.back();
    for (const GumstixOperatingPoint& point : config.frequency_plan) {
      const double volt_ratio = point.core_volts.value() / top.core_volts.value();
      const double scale = (point.mhz / top.mhz) * volt_ratio * volt_ratio;
      spec.states.push_back(
          {"run@" + std::to_string(std::int64_t(std::llround(point.mhz))) +
               "MHz",
           util::Watts{config.run_power.value() * scale}, 0.0});
    }
    return spec;
  }

  void finish_boot() {
    if (state_ == State::kBooting) {
      state_ = State::kRunning;
      power_.set_activity(load_, run_state(selected_));
    }
  }

  sim::Simulation& simulation_;
  power::PowerSystem& power_;
  GumstixConfig config_;
  std::size_t selected_;
  // gwlint: allow(persist-coverage): registry handle re-acquired when the
  // identically-configured power system is rebuilt before restore
  power::LoadHandle load_;
  State state_ = State::kOff;
  sim::SimTime powered_since_{};
  sim::SimTime boot_done_{};
  sim::Duration uptime_{};
  sim::EventId boot_event_ = 0;
  int boot_count_ = 0;
};

}  // namespace gw::hw
