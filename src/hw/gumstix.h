// Gumstix connex: the "high performance" half of the Gumsense pairing.
//
// §II: a 400–600 MHz ARM Linux system in an 80×20 mm footprint drawing
// ~100 mA (Table 1: 900 mW) with *no useful sleep mode* — which is the whole
// reason the platform pairs it with an MSP430 and only powers it "when there
// is a need for more processing power". The model tracks power state, boot
// latency, and cumulative uptime; the energy cost flows through the
// PowerSystem load it registers.
#pragma once

#include "power/power_system.h"
#include "sim/simulation.h"
#include "util/units.h"

namespace gw::hw {

struct GumstixConfig {
  util::Watts run_power{0.9};  // Table 1
  sim::Duration boot_time = sim::seconds(25);  // Linux boot to usable shell
};

class Gumstix {
 public:
  enum class State { kOff, kBooting, kRunning };

  Gumstix(sim::Simulation& simulation, power::PowerSystem& power,
          GumstixConfig config = {})
      : simulation_(simulation),
        power_(power),
        config_(config),
        load_(power.add_load("gumstix", config.run_power)) {}

  [[nodiscard]] State state() const { return state_; }
  [[nodiscard]] bool running() const { return state_ == State::kRunning; }

  // Applies power. Returns the time at which Linux is up; callers schedule
  // their first task at that moment. No-op (returns now) if already running.
  sim::SimTime power_on() {
    if (state_ == State::kRunning) return simulation_.now();
    if (state_ == State::kOff) {
      state_ = State::kBooting;
      power_.set_load(load_, true);
      powered_since_ = simulation_.now();
      ++boot_count_;
      boot_done_ = simulation_.now() + config_.boot_time;
      boot_event_ = simulation_.schedule_at(boot_done_, [this] { finish_boot(); });
    }
    return boot_done_;
  }

  // Hard power cut from the Gumsense board (end of window, watchdog, or
  // brown-out). Any in-flight work is simply gone — the paper's 2-hour
  // safety timeout behaves exactly like this.
  void power_off() {
    if (state_ == State::kOff) return;
    state_ = State::kOff;
    power_.set_load(load_, false);
    uptime_ += simulation_.now() - powered_since_;
  }

  [[nodiscard]] sim::Duration uptime() const {
    if (state_ == State::kOff) return uptime_;
    return uptime_ + (simulation_.now() - powered_since_);
  }

  [[nodiscard]] int boot_count() const { return boot_count_; }
  [[nodiscard]] const GumstixConfig& config() const { return config_; }

  // Snapshot support (docs/SNAPSHOT.md). The load on/off flag itself is
  // restored by PowerSystem's persist; a boot in flight is rebuilt as a
  // pending event under its saved key.
  template <class Archive>
  void persist(Archive& ar) {
    ar.value(state_);
    ar.value(powered_since_);
    ar.value(boot_done_);
    ar.value(uptime_);
    ar.value(boot_count_);
    sim::persist_pending(ar, simulation_, boot_event_,
                         [this] { finish_boot(); });
  }

 private:
  void finish_boot() {
    if (state_ == State::kBooting) state_ = State::kRunning;
  }

  sim::Simulation& simulation_;
  power::PowerSystem& power_;
  GumstixConfig config_;
  power::LoadHandle load_;
  State state_ = State::kOff;
  sim::SimTime powered_since_{};
  sim::SimTime boot_done_{};
  sim::Duration uptime_{};
  sim::EventId boot_event_ = 0;
  int boot_count_ = 0;
};

}  // namespace gw::hw
