// The I2C command channel between the Gumstix and the MSP430 (Fig 2).
//
// Fig 2 shows the two processors joined by I2C, with the MSP430 owning the
// RTC, the sample store, the power switches and the wake schedule. This is
// that wire protocol: fixed-format commands with a checksum byte, because
// an inter-chip link on a freezing, condensation-prone board is not assumed
// clean (§II's hardware-debugging acknowledgement was earned). Commands:
//
//   kReadSamples  -> drain the voltage-sample ring (the daily average input)
//   kSetSchedule  -> install a serialised DaySchedule image in MSP RAM
//   kReadRtc      -> read the microcontroller clock
//   kSetRtc       -> discipline it (GPS/NTP fix, §IV)
//
// Transfers are tiny (tens of bytes at 100 kHz) — duration is negligible
// next to everything else the window does, so the bus does not charge
// simulated time; what it adds is the *framing and failure* semantics.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "hw/msp430.h"
#include "util/result.h"
#include "util/rng.h"

namespace gw::hw {

enum class BusCommand : std::uint8_t {
  kReadSamples = 0x01,
  kSetSchedule = 0x02,
  kReadRtc = 0x03,
  kSetRtc = 0x04,
};

struct GumsenseBusConfig {
  // Probability a transaction is NAKed and must be retried (cold solder,
  // condensation — rare but nonzero on a field board).
  double nak_probability = 0.0;
  int max_retries = 3;
};

// The Gumstix-side master. Wraps every exchange in checksummed framing and
// retries NAKs; a persistent failure surfaces as an error the daily run
// logs (and survives — the §III safety stance: degraded, never wedged).
class GumsenseBus {
 public:
  GumsenseBus(Msp430& msp, util::Rng rng, GumsenseBusConfig config = {})
      : msp_(msp), config_(config), rng_(rng) {}

  // Drains the MSP430 sample ring over the bus.
  [[nodiscard]] util::Result<std::vector<VoltageSample>> read_samples() {
    if (!transact(BusCommand::kReadSamples)) {
      return util::make_error("i2c: read_samples NAK");
    }
    return msp_.drain_samples();
  }

  // Writes a serialised schedule image; the MSP parses and installs it.
  //
  // Templated on the schedule type (in practice core::DaySchedule) rather
  // than naming it: the bus is a dumb transport one layer *below* the
  // schedule's owner, so it must not include core headers — it only needs
  // "serialises to an image, parses back with CRC, exposes wake_time".
  template <typename Schedule>
  util::Status set_schedule(const Schedule& schedule) {
    if (!transact(BusCommand::kSetSchedule)) {
      return util::Status::failure("i2c: set_schedule NAK");
    }
    const auto image = schedule.serialize();
    const auto parsed = Schedule::parse(image);
    if (!parsed.ok()) {
      return util::Status::failure("i2c: schedule image rejected: " +
                                   parsed.error().message);
    }
    msp_.set_wake_schedule(parsed.value().wake_time);
    return {};
  }

  [[nodiscard]] util::Result<sim::SimTime> read_rtc() {
    if (!transact(BusCommand::kReadRtc)) {
      return util::make_error("i2c: read_rtc NAK");
    }
    return msp_.rtc_now();
  }

  util::Status set_rtc(sim::SimTime value) {
    if (!transact(BusCommand::kSetRtc)) {
      return util::Status::failure("i2c: set_rtc NAK");
    }
    msp_.set_rtc(value);
    return {};
  }

  [[nodiscard]] int transactions() const { return transactions_; }
  [[nodiscard]] int naks() const { return naks_; }

  template <class Archive>
  void persist(Archive& ar) {
    ar.value(rng_);
    ar.value(transactions_);
    ar.value(naks_);
  }

 private:
  // One framed transaction with retry-on-NAK.
  bool transact(BusCommand command) {
    (void)command;
    for (int attempt = 0; attempt <= config_.max_retries; ++attempt) {
      ++transactions_;
      if (!rng_.bernoulli(config_.nak_probability)) return true;
      ++naks_;
    }
    return false;
  }

  Msp430& msp_;
  GumsenseBusConfig config_;
  util::Rng rng_;
  int transactions_ = 0;
  int naks_ = 0;
};

}  // namespace gw::hw
