// RS232 serial link: dGPS receiver -> Gumstix.
//
// §III counts "the amount of time taken to transfer the readings from the
// dGPS's internal compact flash card to the Gumstix" among the costs each
// reading incurs, and §VI identifies "an intermittent RS232 cable or dGPS
// unit" as the one plausible cause of the oversized-file livelock. The
// model: a sustained byte rate plus per-file handshake (calibrated so a
// nominal 165 KB file takes ~28 s — which makes a 2-hour window hold ~257
// files, the §VI backlog limits), and an optional per-transfer fault for
// the intermittent-cable injection experiments.
#pragma once

#include "sim/time.h"
#include "util/rng.h"
#include "util/units.h"

namespace gw::hw {

struct SerialLinkConfig {
  // ~64 kbps effective after framing: 165 KiB in ~26.4 s.
  double bytes_per_second = 6400.0;
  sim::Duration handshake = sim::milliseconds(1500);
  // Per-transfer failure probability (the §VI intermittent cable); the
  // deployed hardware "has never been encountered" failing, so 0 here.
  double fault_probability = 0.0;
};

class SerialLink {
 public:
  struct Outcome {
    bool success = false;
    sim::Duration elapsed{};
  };

  explicit SerialLink(util::Rng rng, SerialLinkConfig config = {})
      : config_(config), rng_(rng) {}

  [[nodiscard]] sim::Duration transfer_duration(util::Bytes size) const {
    return config_.handshake +
           sim::seconds(double(size.count()) / config_.bytes_per_second);
  }

  // One file transfer attempt. A fault aborts partway: the time is spent,
  // the file is not delivered and remains on the receiver.
  [[nodiscard]] Outcome attempt_transfer(util::Bytes size) {
    ++transfers_;
    const sim::Duration full = transfer_duration(size);
    if (rng_.bernoulli(config_.fault_probability)) {
      ++faults_;
      return Outcome{false,
                     config_.handshake +
                         sim::Duration{std::int64_t(
                             double((full - config_.handshake).millis()) *
                             rng_.uniform())}};
    }
    return Outcome{true, full};
  }

  [[nodiscard]] int transfers() const { return transfers_; }
  [[nodiscard]] int faults() const { return faults_; }
  [[nodiscard]] const SerialLinkConfig& config() const { return config_; }

  template <class Archive>
  void persist(Archive& ar) {
    ar.value(rng_);
    ar.value(transfers_);
    ar.value(faults_);
  }

 private:
  SerialLinkConfig config_;
  util::Rng rng_;
  int transfers_ = 0;
  int faults_ = 0;
};

}  // namespace gw::hw
