// Station sensor suite.
//
// §I-§II: besides relaying probe data, the gateway itself senses —
// temperature, ultrasonic snow level, and (via the Gumsense board) battery
// voltage, internal temperature and humidity. §VII suggests adding pitch
// and roll "so that the enclosure's movement as the ice melts can be
// tracked" — implemented here as the paper's proposed extension. All
// sensing is MSP430-driven; the paper treats its energy cost as negligible,
// so no PowerSystem load is registered.
#pragma once

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "env/environment.h"
#include "power/power_system.h"
#include "sim/time.h"
#include "util/rng.h"

namespace gw::hw {

struct SensorReading {
  std::string name;
  double value = 0.0;
  std::string unit;
};

struct SensorSuiteConfig {
  double temperature_noise_c = 0.3;
  double snow_noise_m = 0.02;
  double humidity_noise = 2.0;
  bool has_pitch_roll = false;  // §VII extension
};

class SensorSuite {
 public:
  SensorSuite(env::Environment& environment, power::PowerSystem& power,
              util::Rng rng, SensorSuiteConfig config = {})
      : environment_(environment), power_(power), config_(config), rng_(rng) {}

  // One full scan, as the MSP430 performs on its sampling schedule.
  [[nodiscard]] std::vector<SensorReading> read_all(sim::SimTime t) {
    std::vector<SensorReading> readings;
    auto& temperature = environment_.temperature();

    readings.push_back({"air_temperature",
                        temperature.air(t).value() +
                            rng_.normal(0.0, config_.temperature_noise_c),
                        "degC"});
    readings.push_back({"enclosure_temperature",
                        temperature.enclosure(t).value() +
                            rng_.normal(0.0, config_.temperature_noise_c),
                        "degC"});
    readings.push_back(
        {"enclosure_humidity", humidity(t), "%"});
    readings.push_back(
        {"snow_level",
         std::max(0.0, environment_.snow().depth(t, temperature).value() +
                           rng_.normal(0.0, config_.snow_noise_m)),
         "m"});
    readings.push_back(
        {"battery_voltage", power_.terminal_voltage().value(), "V"});

    if (config_.has_pitch_roll) {
      update_tilt(t);
      readings.push_back({"pitch", pitch_deg_, "deg"});
      readings.push_back({"roll", roll_deg_, "deg"});
    }
    return readings;
  }

  [[nodiscard]] double pitch_deg() const { return pitch_deg_; }
  [[nodiscard]] double roll_deg() const { return roll_deg_; }

  template <class Archive>
  void persist(Archive& ar) {
    ar.value(rng_);
    ar.value(tilt_day_);
    ar.value(pitch_deg_);
    ar.value(roll_deg_);
  }

 private:
  [[nodiscard]] double humidity(sim::SimTime t) {
    // Wetter when melt is active; bounded to a plausible RH band.
    const double w = environment_.melt().water_index(
        t, environment_.temperature());
    return std::clamp(55.0 + 35.0 * w + rng_.normal(0.0, config_.humidity_noise),
                      20.0, 100.0);
  }

  // The enclosure tilts as summer melt undercuts its footing — a slow
  // random walk whose step size scales with melt activity (§VII).
  void update_tilt(sim::SimTime t) {
    const std::int64_t day = t.millis_since_epoch() / 86'400'000;
    if (day == tilt_day_) return;
    tilt_day_ = day;
    const double w = environment_.melt().water_index(
        t, environment_.temperature());
    pitch_deg_ += rng_.normal(0.0, 0.05 + 0.4 * w);
    roll_deg_ += rng_.normal(0.0, 0.05 + 0.4 * w);
  }

  env::Environment& environment_;
  power::PowerSystem& power_;
  SensorSuiteConfig config_;
  util::Rng rng_;
  std::int64_t tilt_day_ = -1;
  double pitch_deg_ = 0.0;
  double roll_deg_ = 0.0;
};

}  // namespace gw::hw
