// GPRS modem.
//
// The device that won the architecture argument: 5000 bps at 2640 mW versus
// the radio modem's 2000 bps at 3960 mW (Table 1) — more than twice the
// energy efficiency per bit, plus it frees each station from relaying
// through the other (§II). Data is paid per megabyte, so the modem keeps a
// cost ledger too (§II: "the data sent over the GPRS link is paid for per
// megabyte").
//
// Transfers are drawn stochastically: registration can fail, and an
// established session can drop mid-transfer — the everyday failures (§I:
// "known to occur frequently, especially in the wetter summer") that the
// daily-retry design absorbs.
#pragma once

#include "power/power_system.h"
#include "sim/simulation.h"
#include "util/rng.h"
#include "util/units.h"

namespace gw::hw {

struct GprsConfig {
  util::BitsPerSecond rate{5000.0};  // Table 1
  util::Watts power{2.64};           // Table 1
  sim::Duration registration_time = sim::seconds(35);
  double registration_success = 0.92;
  double drop_per_minute = 0.004;    // established-session drop hazard
  double protocol_overhead = 1.12;   // TCP/PPP framing
  double cost_per_mib = 5.0;         // currency units per MiB (§II)
  // Probability a session wedges without failing — §VI's "a SCP transfer
  // hangs" scenario. A hung transfer never returns; only the 2-hour
  // watchdog ends it (the reported elapsed time is effectively infinite).
  double hang_per_session = 0.0;
};

struct TransferOutcome {
  bool success = false;
  sim::Duration elapsed{};   // connect + transfer time actually spent
  util::Bytes sent{0};       // payload bytes that got through
};

class GprsModem {
 public:
  GprsModem(sim::Simulation& simulation, power::PowerSystem& power,
            util::Rng rng, GprsConfig config = {})
      : simulation_(simulation),
        power_(power),
        config_(config),
        rng_(rng),
        load_(power.add_load("gprs", config.power)) {}

  [[nodiscard]] bool powered() const { return powered_; }

  void power_on() {
    if (powered_) return;
    powered_ = true;
    power_.set_load(load_, true);
  }

  void power_off() {
    if (!powered_) return;
    powered_ = false;
    power_.set_load(load_, false);
  }

  // Ideal payload transfer time (no failures), registration excluded.
  [[nodiscard]] sim::Duration transfer_time(util::Bytes payload) const {
    const double seconds =
        util::transfer_seconds(payload, config_.rate) *
        config_.protocol_overhead;
    return sim::seconds(seconds);
  }

  // Attempts to move `payload` over a fresh session. Draws registration and
  // per-minute drop hazards; the outcome reports how long the attempt took
  // and how much payload made it (partial progress counts: the transfer
  // manager resumes file-by-file, §VI). Requires power; the *caller* owns
  // advancing simulated time by `elapsed` — devices never block the clock.
  [[nodiscard]] TransferOutcome attempt_transfer(util::Bytes payload) {
    TransferOutcome outcome;
    if (!powered_) return outcome;
    ++sessions_attempted_;
    outcome.elapsed = config_.registration_time;
    if (!rng_.bernoulli(config_.registration_success)) {
      ++registration_failures_;
      return outcome;
    }
    if (rng_.bernoulli(config_.hang_per_session)) {
      // Wedged: nothing moves and control never comes back inside any
      // realistic window — the watchdog will cut power first (§VI).
      ++hangs_;
      outcome.elapsed = sim::hours(24);
      return outcome;
    }
    const double total_minutes = transfer_time(payload).to_minutes();
    // Walk the transfer minute by minute against the drop hazard.
    double minutes_survived = 0.0;
    bool dropped = false;
    while (minutes_survived < total_minutes) {
      const double step = std::min(1.0, total_minutes - minutes_survived);
      if (rng_.bernoulli(config_.drop_per_minute * step)) {
        dropped = true;
        // The drop lands somewhere inside this step.
        minutes_survived += step * rng_.uniform();
        break;
      }
      minutes_survived += step;
    }
    const double fraction =
        total_minutes == 0.0 ? 1.0 : minutes_survived / total_minutes;
    outcome.sent = util::Bytes{
        std::int64_t(double(payload.count()) * std::min(1.0, fraction))};
    outcome.elapsed += sim::minutes(minutes_survived);
    outcome.success = !dropped;
    bytes_sent_ += outcome.sent;
    cost_ += outcome.sent.mib() * config_.cost_per_mib;
    if (dropped) ++session_drops_;
    return outcome;
  }

  // --- ledgers ---------------------------------------------------------

  [[nodiscard]] util::Bytes bytes_sent() const { return bytes_sent_; }
  [[nodiscard]] double data_cost() const { return cost_; }
  [[nodiscard]] int sessions_attempted() const { return sessions_attempted_; }
  [[nodiscard]] int registration_failures() const {
    return registration_failures_;
  }
  [[nodiscard]] int session_drops() const { return session_drops_; }
  [[nodiscard]] int hangs() const { return hangs_; }

  [[nodiscard]] const GprsConfig& config() const { return config_; }

 private:
  sim::Simulation& simulation_;
  power::PowerSystem& power_;
  GprsConfig config_;
  util::Rng rng_;
  power::LoadHandle load_;
  bool powered_ = false;
  util::Bytes bytes_sent_{0};
  double cost_ = 0.0;
  int sessions_attempted_ = 0;
  int registration_failures_ = 0;
  int session_drops_ = 0;
  int hangs_ = 0;
};

}  // namespace gw::hw
