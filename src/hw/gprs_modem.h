// GPRS modem.
//
// The device that won the architecture argument: 5000 bps at 2640 mW versus
// the radio modem's 2000 bps at 3960 mW (Table 1) — more than twice the
// energy efficiency per bit, plus it frees each station from relaying
// through the other (§II). Data is paid per megabyte, so the modem keeps a
// cost ledger too (§II: "the data sent over the GPRS link is paid for per
// megabyte").
//
// Transfers are drawn stochastically: registration can fail, and an
// established session can drop mid-transfer — the everyday failures (§I:
// "known to occur frequently, especially in the wetter summer") that the
// daily-retry design absorbs. A fault::FaultOracle can be attached to
// compose a scripted gprs_outage window with the base hazards (registration
// and per-minute drop), so a whole wet summer can be replayed from a plan.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

#include "energy/component_model.h"
#include "fault/fault.h"
#include "power/power_system.h"
#include "sim/simulation.h"
#include "snapshot/error.h"
#include "util/rng.h"
#include "util/units.h"

namespace gw::hw {

struct GprsConfig {
  util::BitsPerSecond rate{5000.0};  // Table 1
  util::Watts power{2.64};           // Table 1
  sim::Duration registration_time = sim::seconds(35);
  double registration_success = 0.92;
  double drop_per_minute = 0.004;    // established-session drop hazard
  double protocol_overhead = 1.12;   // TCP/PPP framing
  double cost_per_mib = 5.0;         // currency units per MiB (§II)
  // Probability a session wedges without failing — §VI's "a SCP transfer
  // hangs" scenario. A hung transfer never returns by itself; how long it
  // eats is hang_duration, clamped by the caller's session cap (the 2-hour
  // watchdog bounds it regardless).
  double hang_per_session = 0.0;
  sim::Duration hang_duration = sim::hours(24);
};

struct TransferOutcome {
  bool success = false;
  bool hung = false;         // session wedged; elapsed is the capped stall
  sim::Duration elapsed{};   // connect + transfer time actually spent
  util::Bytes sent{0};       // payload bytes that got through
};

// "No cap": effectively infinite, minus headroom so adding registration
// time cannot overflow.
inline constexpr sim::Duration kNoSessionCap{
    std::numeric_limits<std::int64_t>::max() / 4};

class GprsModem {
 public:
  GprsModem(sim::Simulation& simulation, power::PowerSystem& power,
            util::Rng rng, GprsConfig config = {})
      : simulation_(simulation),
        power_(power),
        config_(config),
        rng_(rng),
        load_(power.add_component(make_spec(config))) {}

  // Attaches scripted fault windows (gprs_outage); null detaches.
  void set_fault_oracle(fault::FaultOracle* oracle) { oracle_ = oracle; }

  [[nodiscard]] bool powered() const { return powered_; }

  void power_on() {
    // An explicit power-on also cancels any pending hold_powered() auto-off
    // (the new owner decides when the modem goes dark).
    ++hold_generation_;
    if (powered_) return;
    powered_ = true;
    power_.set_activity(load_, kIdle);
  }

  void power_off() {
    ++hold_generation_;
    if (!powered_) return;
    powered_ = false;
    power_.set_activity(load_, 0);
  }

  // Powers on and schedules an automatic power-off after `duration` — the
  // recovery path uses this so an NTP resync pays real session energy
  // without blocking the caller. Any explicit power_on()/power_off() in the
  // meantime cancels the pending auto-off.
  void hold_powered(sim::Duration duration) {
    // Span at least one power-integration tick: a session shorter than the
    // tick would otherwise be invisible to the energy ledger (and a real
    // modem's boot/shutdown housekeeping eats that long anyway).
    duration =
        std::max(duration, power_.tick_interval() + sim::seconds(1));
    power_on();
    const std::uint64_t generation = hold_generation_;
    simulation_.schedule_in(duration, [this, generation] {
      if (generation == hold_generation_) power_off();
    });
  }

  // Ideal payload transfer time (no failures), registration excluded.
  [[nodiscard]] sim::Duration transfer_time(util::Bytes payload) const {
    const double seconds =
        util::transfer_seconds(payload, config_.rate) *
        config_.protocol_overhead;
    return sim::seconds(seconds);
  }

  // Attempts to move `payload` over a fresh session. Draws registration and
  // per-minute drop hazards (each composed with an active gprs_outage fault
  // window when an oracle is attached); the outcome reports how long the
  // attempt took and how much payload made it (partial progress counts: the
  // transfer manager resumes file-by-file, §VI). A wedged session stalls for
  // min(hang_duration, session_cap). Requires power; the *caller* owns
  // advancing simulated time by `elapsed` — devices never block the clock.
  [[nodiscard]] TransferOutcome attempt_transfer(
      util::Bytes payload, sim::Duration session_cap = kNoSessionCap) {
    TransferOutcome outcome;
    if (!powered_) return outcome;
    const sim::SimTime now = simulation_.now();
    ++sessions_attempted_;
    outcome.elapsed = config_.registration_time;

    const double registration_success =
        oracle_ != nullptr
            ? oracle_->success(fault::FaultKind::kGprsOutage, now,
                               config_.registration_success)
            : config_.registration_success;
    if (!rng_.bernoulli(registration_success)) {
      ++registration_failures_;
      if (oracle_ != nullptr &&
          oracle_->active(fault::FaultKind::kGprsOutage, now)) {
        oracle_->record_trip(fault::FaultKind::kGprsOutage, now);
      }
      plan_session(outcome.elapsed);
      return outcome;
    }
    if (rng_.bernoulli(config_.hang_per_session)) {
      // Wedged: nothing moves and control never comes back inside the
      // session — the watchdog (or the caller's session cap) ends it (§VI).
      ++hangs_;
      outcome.hung = true;
      outcome.elapsed += std::min(config_.hang_duration, session_cap);
      plan_session(outcome.elapsed);
      return outcome;
    }
    const double drop_per_minute = std::min(
        1.0, oracle_ != nullptr
                 ? oracle_->hazard(fault::FaultKind::kGprsOutage, now,
                                   config_.drop_per_minute)
                 : config_.drop_per_minute);
    const double total_minutes = transfer_time(payload).to_minutes();
    // Walk the transfer minute by minute against the drop hazard. The
    // per-step probability is clamped to 1: an aggressive injected hazard
    // must mean "drops immediately", not an out-of-range Bernoulli draw.
    double minutes_survived = 0.0;
    bool dropped = false;
    while (minutes_survived < total_minutes) {
      const double step = std::min(1.0, total_minutes - minutes_survived);
      if (rng_.bernoulli(std::min(1.0, drop_per_minute * step))) {
        dropped = true;
        // The drop lands somewhere inside this step.
        minutes_survived += step * rng_.uniform();
        break;
      }
      minutes_survived += step;
    }
    const double fraction =
        total_minutes == 0.0 ? 1.0 : minutes_survived / total_minutes;
    outcome.sent = util::Bytes{
        std::int64_t(double(payload.count()) * std::min(1.0, fraction))};
    outcome.elapsed += sim::minutes(minutes_survived);
    outcome.success = !dropped;
    bytes_sent_ += outcome.sent;
    cost_ += outcome.sent.mib() * config_.cost_per_mib;
    if (dropped) {
      ++session_drops_;
      if (oracle_ != nullptr &&
          oracle_->active(fault::FaultKind::kGprsOutage, now)) {
        oracle_->record_trip(fault::FaultKind::kGprsOutage, now);
      }
    } else {
      ++sessions_succeeded_;
    }
    plan_session(outcome.elapsed);
    return outcome;
  }

  // --- ledgers ---------------------------------------------------------

  [[nodiscard]] util::Bytes bytes_sent() const { return bytes_sent_; }
  [[nodiscard]] double data_cost() const { return cost_; }
  [[nodiscard]] int sessions_attempted() const { return sessions_attempted_; }
  [[nodiscard]] int sessions_succeeded() const { return sessions_succeeded_; }
  [[nodiscard]] int registration_failures() const {
    return registration_failures_;
  }
  [[nodiscard]] int session_drops() const { return session_drops_; }
  [[nodiscard]] int hangs() const { return hangs_; }

  // Every attempted session ends in exactly one of the four outcomes; the
  // soak harness asserts this never drifts.
  [[nodiscard]] bool ledger_consistent() const {
    return sessions_attempted_ == registration_failures_ + hangs_ +
                                      session_drops_ + sessions_succeeded_;
  }

  [[nodiscard]] const GprsConfig& config() const { return config_; }

  // Snapshot support (docs/SNAPSHOT.md). A powered modem may have a
  // hold_powered() auto-off in flight (an untracked guarded event), so a
  // save while powered is refused; quiescent checkpoints land outside
  // comms sessions.
  template <class Archive>
  void persist(Archive& ar) {
    if constexpr (Archive::kIsSaver) {
      if (powered_) {
        throw snapshot::SnapshotError(snapshot::SnapshotErrc::kNotQuiescent,
                                      "gprs session in flight", "gprs");
      }
    }
    ar.value(rng_);
    ar.value(hold_generation_);
    ar.value(bytes_sent_);
    ar.value(cost_);
    ar.value(sessions_attempted_);
    ar.value(sessions_succeeded_);
    ar.value(registration_failures_);
    ar.value(session_drops_);
    ar.value(hangs_);
  }

 private:
  // Activity states (docs/ENERGY.md): all powered states draw Table 1's
  // 2640 mW — the split is attribution, telling the energy ledgers how much
  // of a session went to network registration versus moving payload.
  static constexpr std::size_t kIdle = 1;
  static constexpr std::size_t kRegistering = 2;
  static constexpr std::size_t kTx = 3;

  static energy::ComponentSpec make_spec(const GprsConfig& config) {
    energy::ComponentSpec spec;
    spec.name = "gprs";
    spec.states.push_back({"off", util::Watts{0.0}, 0.0});
    spec.states.push_back({"idle", config.power, 0.0});
    spec.states.push_back({"registering", config.power, 0.0});
    spec.states.push_back({"tx", config.power, 0.0});
    return spec;
  }

  // Lays the attribution plan for a session the caller is about to walk the
  // clock through: registration first, the remainder (payload or a hung
  // stall) as tx. The base activity (idle) resumes when the plan expires.
  void plan_session(sim::Duration elapsed) {
    const sim::Duration registration =
        std::min(config_.registration_time, elapsed);
    std::vector<std::pair<std::size_t, sim::Duration>> plan;
    plan.push_back({kRegistering, registration});
    if (elapsed > registration) plan.push_back({kTx, elapsed - registration});
    power_.plan_activity(load_, plan);
  }

  sim::Simulation& simulation_;
  power::PowerSystem& power_;
  GprsConfig config_;
  util::Rng rng_;
  // gwlint: allow(persist-coverage): registry handle re-acquired when the
  // identically-configured power system is rebuilt before restore
  power::LoadHandle load_;
  fault::FaultOracle* oracle_ = nullptr;
  bool powered_ = false;
  std::uint64_t hold_generation_ = 0;
  util::Bytes bytes_sent_{0};
  double cost_ = 0.0;
  int sessions_attempted_ = 0;
  int sessions_succeeded_ = 0;
  int registration_failures_ = 0;
  int session_drops_ = 0;
  int hangs_ = 0;
};

}  // namespace gw::hw
