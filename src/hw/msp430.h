// MSP430: the "low power" half of the Gumsense pairing.
//
// The microcontroller is the only part of the station that is (nominally)
// always on. It owns:
//   * the real-time clock — which is volatile: total battery exhaustion
//     resets it to 01/01/1970 00:00 (§IV);
//   * the wake schedule — stored in RAM, also lost on exhaustion (§IV);
//   * 30-minute battery-voltage sampling into a RAM ring buffer that the
//     Gumstix drains once a day to compute the daily average (§III);
//   * switched power control for the Gumstix and peripherals.
//
// The RTC also drifts slowly relative to true (simulation) time; GPS-derived
// corrections discipline it (§II: synchronisation between dGPS readings is
// still required).
#pragma once

#include <algorithm>
#include <cmath>
#include <functional>
#include <optional>
#include <vector>

#include "energy/component_model.h"
#include "power/power_system.h"
#include "sim/simulation.h"
#include "util/ring_buffer.h"
#include "util/rng.h"
#include "util/units.h"

namespace gw::hw {

struct Msp430Config {
  util::Watts sleep_power{0.0006};   // ~50 uA at 12 V incl. regulator
  sim::Duration sample_interval = sim::minutes(30);
  std::size_t sample_capacity = 96;  // two days of headroom
  double rtc_drift_ppm = 8.0;        // crystal tolerance
};

struct VoltageSample {
  sim::SimTime rtc_time;  // as stamped by the (possibly wrong) RTC
  util::Volts voltage;

  template <class Archive>
  void persist(Archive& ar) {
    ar.value(rtc_time);
    ar.value(voltage);
  }
};

class Msp430 {
 public:
  Msp430(sim::Simulation& simulation, power::PowerSystem& power,
         util::Rng rng, Msp430Config config = {})
      : simulation_(simulation),
        power_(power),
        config_(config),
        samples_(config.sample_capacity),
        load_(power.add_component(make_spec(config))) {
    // The MSP430 is never switched: it sits in its sleep state from
    // construction (only a brown-out forces it off, and — matching the
    // modelled hardware — nothing re-arms its draw until the next world).
    power_.set_activity(load_, 1);
    // Crystal drift direction/magnitude fixed per board.
    drift_factor_ = 1.0 + config_.rtc_drift_ppm * 1e-6 * rng.uniform(-1.0, 1.0);
    rtc_anchor_sim_ = simulation_.now();
    rtc_anchor_value_ = simulation_.now();
    schedule_sample();
  }

  // --- RTC ------------------------------------------------------------

  [[nodiscard]] sim::SimTime rtc_now() const {
    const double elapsed =
        double((simulation_.now() - rtc_anchor_sim_).millis());
    return rtc_anchor_value_ +
           sim::Duration{std::int64_t(elapsed * drift_factor_)};
  }

  // Disciplines the RTC (GPS or NTP fix).
  void set_rtc(sim::SimTime value) {
    rtc_anchor_sim_ = simulation_.now();
    rtc_anchor_value_ = value;
  }

  // Absolute RTC error against true time, in milliseconds.
  [[nodiscard]] std::int64_t rtc_error_ms() const {
    return (rtc_now() - simulation_.now()).millis();
  }

  // --- wake schedule (RAM) ----------------------------------------------

  // The schedule is a daily wake time (the communications window, §I: daily
  // at midday UTC) interpreted against the RTC. Empty = no schedule (the
  // state after a brown-out, until recovery rewrites it).
  void set_wake_schedule(sim::Duration rtc_time_of_day) {
    wake_time_of_day_ = rtc_time_of_day;
  }
  [[nodiscard]] std::optional<sim::Duration> wake_schedule() const {
    return wake_time_of_day_;
  }

  // Next wake in *true* simulation time: the next moment the RTC reads the
  // scheduled time of day. Drift and resets shift this — which is exactly
  // the synchronisation hazard §II discusses. `min_delay` skips wake slots
  // closer than that (the caller's guard against double-firing a slot the
  // drifting RTC is still approaching).
  [[nodiscard]] std::optional<sim::SimTime> next_wake(
      sim::Duration min_delay = sim::Duration{0}) const {
    if (!wake_time_of_day_.has_value()) return std::nullopt;
    const sim::SimTime rtc = rtc_now();
    const sim::SimTime rtc_floor =
        rtc + sim::Duration{std::int64_t(double(min_delay.millis()) *
                                         drift_factor_)};
    sim::SimTime rtc_wake = sim::start_of_day(rtc) + *wake_time_of_day_;
    while (rtc_wake <= rtc_floor) rtc_wake += sim::days(1);
    // Convert RTC-time back to simulation time through the drift model,
    // rounding up so the RTC has provably reached the slot when we fire.
    const double rtc_delta = double((rtc_wake - rtc).millis());
    const auto sim_delta =
        std::int64_t(std::ceil(rtc_delta / drift_factor_));
    return simulation_.now() + sim::Duration{std::max<std::int64_t>(1, sim_delta)};
  }

  // --- voltage sampling ----------------------------------------------------

  // Drains the day's samples (oldest first) — what the Gumstix does once a
  // day before computing the average (§III).
  [[nodiscard]] std::vector<VoltageSample> drain_samples() {
    return samples_.drain();
  }

  [[nodiscard]] std::size_t pending_samples() const { return samples_.size(); }

  // --- brown-out ----------------------------------------------------------

  // Total exhaustion: RAM contents (schedule, samples) vanish and the RTC
  // restarts from the epoch (§IV).
  void brown_out() {
    wake_time_of_day_.reset();
    samples_.clear();
    rtc_anchor_sim_ = simulation_.now();
    rtc_anchor_value_ = sim::kEpoch;
    ++brown_out_count_;
  }

  [[nodiscard]] int brown_out_count() const { return brown_out_count_; }

  // Snapshot support (docs/SNAPSHOT.md). The drift factor is per-board
  // stochastic state drawn at construction, so it must be carried over —
  // recomputing the sample chain's next firing from a restored anchor would
  // round differently, which is why the pending sample event is a rebuild
  // record with its exact saved key.
  template <class Archive>
  void persist(Archive& ar) {
    ar.value(samples_);
    ar.value(drift_factor_);
    ar.value(rtc_anchor_sim_);
    ar.value(rtc_anchor_value_);
    ar.value(wake_time_of_day_);
    ar.value(brown_out_count_);
    sim::persist_pending(ar, simulation_, sample_event_,
                         [this] { fire_sample(); });
  }

 private:
  static energy::ComponentSpec make_spec(const Msp430Config& config) {
    energy::ComponentSpec spec;
    spec.name = "msp430";
    spec.states.push_back({"off", util::Watts{0.0}, 0.0});
    spec.states.push_back({"sleep", config.sleep_power, 0.0});
    return spec;
  }

  void schedule_sample() {
    sample_event_ =
        simulation_.schedule_in(config_.sample_interval, [this] { fire_sample(); });
  }

  void fire_sample() {
    // Sampling itself is powered by the sleep allowance; the paper calls
    // its cost negligible. Skipped while the rail is dead.
    if (!power_.browned_out()) {
      samples_.push(VoltageSample{rtc_now(), power_.terminal_voltage()});
    }
    schedule_sample();
  }

  sim::Simulation& simulation_;
  power::PowerSystem& power_;
  Msp430Config config_;
  util::RingBuffer<VoltageSample> samples_;
  // gwlint: allow(persist-coverage): registry handle re-acquired when the
  // identically-configured power system is rebuilt before restore
  power::LoadHandle load_;
  double drift_factor_ = 1.0;
  sim::SimTime rtc_anchor_sim_{};
  sim::SimTime rtc_anchor_value_{};
  std::optional<sim::Duration> wake_time_of_day_;
  sim::EventId sample_event_ = 0;
  int brown_out_count_ = 0;
};

}  // namespace gw::hw
