// Gumsense board: the MSP430 + Gumstix pairing with switched power rails.
//
// §II / Fig 2: the board lets software power peripherals on demand and
// wakes the Gumstix according to a schedule held by the MSP430. This class
// is the integration point: it owns both processors, arms the wake timer
// against the (drifting, volatile) RTC, and translates PowerSystem
// brown-out/recovery edges into the §IV semantics — schedule lost, RTC at
// epoch, cold boot on recharge.
#pragma once

#include <functional>
#include <optional>

#include "hw/gumstix.h"
#include "hw/msp430.h"
#include "power/power_system.h"
#include "sim/simulation.h"

namespace gw::hw {

class Gumsense {
 public:
  Gumsense(sim::Simulation& simulation, power::PowerSystem& power,
           util::Rng rng, GumstixConfig gumstix_config = {},
           Msp430Config msp_config = {})
      : simulation_(simulation),
        power_(power),
        msp_(simulation, power, rng.fork("msp430"), msp_config),
        gumstix_(simulation, power, gumstix_config) {
    power_.on_brown_out([this] { handle_brown_out(); });
    power_.on_recovery([this] { handle_recovery(); });
  }

  [[nodiscard]] Msp430& msp() { return msp_; }
  [[nodiscard]] Gumstix& gumstix() { return gumstix_; }

  // Programs the daily wake (RTC time of day) and the handler to run once
  // the Gumstix has booted. Re-arms itself every day until the schedule is
  // lost to a brown-out.
  void set_daily_wake(sim::Duration rtc_time_of_day,
                      std::function<void()> on_wake) {
    msp_.set_wake_schedule(rtc_time_of_day);
    on_wake_ = std::move(on_wake);
    arm();
  }

  // Invoked when power returns after total exhaustion. The handler is the
  // §IV recovery procedure (detect bogus RTC, GPS resync, state 0).
  void set_cold_boot_handler(std::function<void()> on_cold_boot) {
    on_cold_boot_ = std::move(on_cold_boot);
  }

  [[nodiscard]] bool wake_armed() const { return pending_wake_.has_value(); }

  // Snapshot support (docs/SNAPSHOT.md). on_wake_/on_cold_boot_ survive the
  // restored world's own construction; the armed wake timer is rebuilt
  // under its exact saved key — never recomputed through next_wake(), whose
  // drift rounding could land a millisecond off the original.
  template <class Archive>
  void persist(Archive& ar) {
    ar.value(msp_);
    ar.value(gumstix_);
    sim::persist_pending(ar, simulation_, pending_wake_,
                         [this] { fire_wake(); });
  }

 private:
  void arm() {
    disarm();
    // The margin keeps a freshly-fired slot from re-arming itself while the
    // drifting RTC is still a few hundred ms short of the scheduled time.
    const auto wake = msp_.next_wake(sim::minutes(5));
    if (!wake.has_value() || !on_wake_) return;
    pending_wake_ = simulation_.schedule_at(*wake, [this] { fire_wake(); });
  }

  void fire_wake() {
    pending_wake_.reset();
    if (power_.browned_out()) return;
    const sim::SimTime booted = gumstix_.power_on();
    simulation_.schedule_at(booted, [this] {
      if (gumstix_.running() && on_wake_) on_wake_();
    });
    arm();  // tomorrow's wake, from the (possibly drifted) RTC
  }

  void disarm() {
    if (pending_wake_.has_value()) {
      simulation_.cancel(*pending_wake_);
      pending_wake_.reset();
    }
  }

  void handle_brown_out() {
    msp_.brown_out();       // RAM schedule + samples gone, RTC to epoch
    gumstix_.power_off();   // rail collapsed
    disarm();
  }

  void handle_recovery() {
    if (on_cold_boot_) on_cold_boot_();
  }

  sim::Simulation& simulation_;
  power::PowerSystem& power_;
  Msp430 msp_;
  Gumstix gumstix_;
  std::function<void()> on_wake_;
  std::function<void()> on_cold_boot_;
  std::optional<sim::EventId> pending_wake_;
};

}  // namespace gw::hw
