// Trace recorder: named time series + annotated step log.
//
// The benches regenerate the paper's figures by sampling model state into a
// Trace and printing the series (Fig 5: voltage + power state; Fig 6: probe
// conductivities). Tests use traces to assert on shapes (diurnal maxima near
// midday, 2-hourly dGPS dips, melt-onset rise).
#pragma once

#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/time.h"

namespace gw::sim {

struct TracePoint {
  SimTime time;
  double value = 0.0;

  template <class Archive>
  void persist(Archive& ar) {
    ar.value(time);
    ar.value(value);
  }
};

class Trace {
 public:
  void add(const std::string& series, SimTime t, double value) {
    series_[series].push_back(TracePoint{t, value});
  }

  // Declares a series without adding a point, so exports (and the analysis
  // helpers' empty-series contract) can see it before the first sample.
  void declare(const std::string& series) { series_[series]; }

  void annotate(SimTime t, std::string text) {
    annotations_.push_back({t, std::move(text)});
  }

  [[nodiscard]] const std::vector<TracePoint>& series(
      const std::string& name) const {
    const auto it = series_.find(name);
    if (it == series_.end()) {
      throw std::out_of_range("Trace: no series named " + name);
    }
    return it->second;
  }

  [[nodiscard]] bool has_series(const std::string& name) const {
    return series_.contains(name);
  }

  [[nodiscard]] std::vector<std::string> series_names() const {
    std::vector<std::string> names;
    names.reserve(series_.size());
    for (const auto& [name, points] : series_) names.push_back(name);
    return names;
  }

  struct Annotation {
    SimTime time;
    std::string text;

    template <class Archive>
    void persist(Archive& ar) {
      ar.value(time);
      ar.value(text);
    }
  };
  [[nodiscard]] const std::vector<Annotation>& annotations() const {
    return annotations_;
  }

  template <class Archive>
  void persist(Archive& ar) {
    ar.value(series_);
    ar.value(annotations_);
  }

  // --- small analysis helpers used by tests and benches -----------------
  //
  // Contract: all helpers throw std::out_of_range for a missing series
  // (via series()) and for an empty one — never UB (`points.at(0)` on
  // min/max) or a silent NaN (`sum/0` on mean) depending on which helper
  // happened to be called.

  [[nodiscard]] double min_value(const std::string& name) const {
    const auto& points = non_empty_series(name);
    double m = points.front().value;
    for (const auto& point : points) m = std::min(m, point.value);
    return m;
  }

  [[nodiscard]] double max_value(const std::string& name) const {
    const auto& points = non_empty_series(name);
    double m = points.front().value;
    for (const auto& point : points) m = std::max(m, point.value);
    return m;
  }

  [[nodiscard]] double mean_value(const std::string& name) const {
    const auto& points = non_empty_series(name);
    double sum = 0.0;
    for (const auto& point : points) sum += point.value;
    return sum / double(points.size());
  }

  // Value of the last point at or before t (throws if none, including the
  // boundary case t strictly before the first sample).
  [[nodiscard]] double value_at(const std::string& name, SimTime t) const {
    const auto& points = series(name);
    const TracePoint* best = nullptr;
    for (const auto& point : points) {
      if (point.time <= t) best = &point;
    }
    if (best == nullptr) throw std::out_of_range("Trace: no point before t");
    return best->value;
  }

 private:
  [[nodiscard]] const std::vector<TracePoint>& non_empty_series(
      const std::string& name) const {
    const auto& points = series(name);
    if (points.empty()) {
      throw std::out_of_range("Trace: empty series " + name);
    }
    return points;
  }

  std::map<std::string, std::vector<TracePoint>> series_;
  std::vector<Annotation> annotations_;
};

}  // namespace gw::sim
