// Adapters from sim::Trace to the obs export types.
//
// obs sits *below* sim in the dependency order (it speaks raw int64
// milliseconds so that every layer can be instrumented), so the conversion
// from SimTime-stamped trace series to obs::Series lives here on the sim
// side. Benches call these to ship their Fig 5 / Fig 6 raw material inside
// a BENCH_*.json.
#pragma once

#include <limits>
#include <string>
#include <vector>

#include "obs/export.h"
#include "sim/trace.h"

namespace gw::sim {

// One series, optionally windowed to [from, to). Throws (via
// Trace::series) if the series does not exist.
[[nodiscard]] inline obs::Series to_obs_series(
    const Trace& trace, const std::string& name,
    SimTime from = SimTime{std::numeric_limits<std::int64_t>::min()},
    SimTime to = SimTime{std::numeric_limits<std::int64_t>::max()}) {
  obs::Series series;
  series.name = name;
  for (const auto& point : trace.series(name)) {
    if (point.time < from || point.time >= to) continue;
    series.points.push_back(
        obs::SeriesPoint{point.time.millis_since_epoch(), point.value});
  }
  return series;
}

// All named series, windowed; preserves the given order (export order).
[[nodiscard]] inline std::vector<obs::Series> to_obs_series(
    const Trace& trace, const std::vector<std::string>& names,
    SimTime from = SimTime{std::numeric_limits<std::int64_t>::min()},
    SimTime to = SimTime{std::numeric_limits<std::int64_t>::max()}) {
  std::vector<obs::Series> all;
  all.reserve(names.size());
  for (const auto& name : names) {
    all.push_back(to_obs_series(trace, name, from, to));
  }
  return all;
}

}  // namespace gw::sim
