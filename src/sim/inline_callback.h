// Small-buffer-optimized callback for the event kernel.
//
// Every event the kernel schedules used to carry a std::function<void()>,
// which heap-allocates for any capture larger than its (implementation-
// defined, typically 16-byte) inline buffer and again on every copy out of
// the priority queue. InlineCallback stores callables up to 48 bytes in
// place — every lambda in this repository fits ([this] plus a few captured
// scalars) — and falls back to the heap only for oversized or throwing-move
// captures. It is move-only: the kernel moves events, never copies them.
//
// Contract (documented in docs/PERFORMANCE.md):
//   * any `void()` callable is accepted; copyable is not required;
//   * inline storage requires sizeof(F) <= kInlineSize, alignof(F) <=
//     alignof(std::max_align_t), and a noexcept move constructor — the
//     last because move-assigning an InlineCallback relocates the inline
//     capture, and that relocate must not throw (slots themselves are
//     address-stable; chunks never move once allocated);
//   * moves are noexcept; a moved-from callback is empty and must not be
//     invoked;
//   * invoking an empty callback is undefined (the kernel never does).
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace gw::sim {

class InlineCallback {
 public:
  // 48 bytes holds a capture of `this` plus five 8-byte values — larger
  // than any event lambda in src/ — while keeping a heap-slot entry
  // (callback + bookkeeping) within a single cache line pair.
  static constexpr std::size_t kInlineSize = 48;

  InlineCallback() = default;

  template <typename F, typename D = std::decay_t<F>>
    requires(!std::is_same_v<D, InlineCallback> &&
             std::is_invocable_r_v<void, D&>)
  InlineCallback(F&& fn) {  // NOLINT(google-explicit-constructor)
    if constexpr (fits_inline<D>) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(fn));
      vtable_ = &kInlineVTable<D>;
    } else {
      ::new (static_cast<void*>(storage_)) D*(new D(std::forward<F>(fn)));
      vtable_ = &kHeapVTable<D>;
    }
  }

  InlineCallback(InlineCallback&& other) noexcept : vtable_(other.vtable_) {
    if (vtable_ != nullptr) {
      vtable_->relocate(other.storage_, storage_);
      other.vtable_ = nullptr;
    }
  }

  InlineCallback& operator=(InlineCallback&& other) noexcept {
    if (this != &other) {
      reset();
      vtable_ = other.vtable_;
      if (vtable_ != nullptr) {
        vtable_->relocate(other.storage_, storage_);
        other.vtable_ = nullptr;
      }
    }
    return *this;
  }

  InlineCallback(const InlineCallback&) = delete;
  InlineCallback& operator=(const InlineCallback&) = delete;

  ~InlineCallback() { reset(); }

  // In-place (re)binding without the extra relocate a construct-then-move
  // would cost — the kernel's schedule path builds the callable directly in
  // its slot.
  template <typename F, typename D = std::decay_t<F>>
    requires(!std::is_same_v<D, InlineCallback> &&
             std::is_invocable_r_v<void, D&>)
  void emplace(F&& fn) {
    reset();
    if constexpr (fits_inline<D>) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(fn));
      vtable_ = &kInlineVTable<D>;
    } else {
      ::new (static_cast<void*>(storage_)) D*(new D(std::forward<F>(fn)));
      vtable_ = &kHeapVTable<D>;
    }
  }

  void emplace(InlineCallback&& other) { *this = std::move(other); }

  void operator()() { vtable_->invoke(storage_); }

  // Fused invoke-then-destroy for the kernel's pop path: one virtual
  // dispatch instead of two, leaving this callback empty. If the callable
  // throws, its capture is leaked (never double-destroyed); kernel state
  // stays consistent.
  void invoke_and_reset() {
    const VTable* vtable = vtable_;
    vtable_ = nullptr;
    vtable->invoke_destroy(storage_);
  }

  [[nodiscard]] explicit operator bool() const { return vtable_ != nullptr; }

  // True when the callable lives in the inline buffer (exposed for tests
  // pinning the no-allocation property).
  [[nodiscard]] bool is_inline() const {
    return vtable_ != nullptr && vtable_->inline_storage;
  }

  void reset() {
    if (vtable_ != nullptr) {
      vtable_->destroy(storage_);
      vtable_ = nullptr;
    }
  }

 private:
  struct VTable {
    void (*invoke)(void*);
    void (*invoke_destroy)(void*);
    // Move-construct into `dst` from `src`, then tear down `src`.
    void (*relocate)(void* src, void* dst) noexcept;
    void (*destroy)(void*);
    bool inline_storage;
  };

  template <typename D>
  static constexpr bool fits_inline =
      sizeof(D) <= kInlineSize &&
      alignof(D) <= alignof(std::max_align_t) &&
      std::is_nothrow_move_constructible_v<D>;

  template <typename D>
  static constexpr VTable kInlineVTable{
      [](void* s) { (*std::launder(static_cast<D*>(s)))(); },
      [](void* s) {
        D* fn = std::launder(static_cast<D*>(s));
        (*fn)();
        fn->~D();
      },
      [](void* src, void* dst) noexcept {
        D* from = std::launder(static_cast<D*>(src));
        ::new (dst) D(std::move(*from));
        from->~D();
      },
      [](void* s) { std::launder(static_cast<D*>(s))->~D(); },
      true};

  template <typename D>
  static constexpr VTable kHeapVTable{
      [](void* s) { (**std::launder(static_cast<D**>(s)))(); },
      [](void* s) {
        D* fn = *std::launder(static_cast<D**>(s));
        (*fn)();
        delete fn;
      },
      [](void* src, void* dst) noexcept {
        ::new (dst) D*(*std::launder(static_cast<D**>(src)));
      },
      [](void* s) { delete *std::launder(static_cast<D**>(s)); },
      false};

  alignas(std::max_align_t) std::byte storage_[kInlineSize];
  const VTable* vtable_ = nullptr;
};

}  // namespace gw::sim
