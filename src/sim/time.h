// Simulated time: strong types plus a UTC calendar.
//
// SimTime is milliseconds since the Unix epoch, UTC. Millisecond integer
// resolution makes event ordering exact and reproducible (no floating-point
// drift over multi-year runs) while being fine enough for every latency in
// the system (the shortest modelled interval is a packet at 2000 bps).
//
// The epoch anchoring is not incidental: §IV's recovery logic depends on the
// real-time clock resetting to 01/01/1970 00:00 after total battery
// exhaustion, i.e. SimTime{0}.
#pragma once

#include <compare>
#include <cstdint>
#include <string>

namespace gw::sim {

class Duration {
 public:
  constexpr Duration() = default;
  constexpr explicit Duration(std::int64_t milliseconds)
      : ms_(milliseconds) {}

  [[nodiscard]] constexpr std::int64_t millis() const { return ms_; }
  [[nodiscard]] constexpr double to_seconds() const { return double(ms_) / 1e3; }
  [[nodiscard]] constexpr double to_minutes() const {
    return double(ms_) / 60e3;
  }
  [[nodiscard]] constexpr double to_hours() const { return double(ms_) / 3.6e6; }
  [[nodiscard]] constexpr double to_days() const { return double(ms_) / 86.4e6; }

  friend constexpr Duration operator+(Duration a, Duration b) {
    return Duration{a.ms_ + b.ms_};
  }
  friend constexpr Duration operator-(Duration a, Duration b) {
    return Duration{a.ms_ - b.ms_};
  }
  friend constexpr Duration operator*(Duration a, std::int64_t k) {
    return Duration{a.ms_ * k};
  }
  friend constexpr Duration operator*(std::int64_t k, Duration a) {
    return a * k;
  }
  friend constexpr Duration operator/(Duration a, std::int64_t k) {
    return Duration{a.ms_ / k};
  }
  friend constexpr auto operator<=>(Duration, Duration) = default;

  constexpr Duration& operator+=(Duration b) {
    ms_ += b.ms_;
    return *this;
  }

 private:
  std::int64_t ms_ = 0;
};

constexpr Duration milliseconds(std::int64_t n) { return Duration{n}; }
constexpr Duration seconds(double n) {
  return Duration{std::int64_t(n * 1e3)};
}
constexpr Duration minutes(double n) {
  return Duration{std::int64_t(n * 60e3)};
}
constexpr Duration hours(double n) { return Duration{std::int64_t(n * 3.6e6)}; }
constexpr Duration days(double n) { return Duration{std::int64_t(n * 86.4e6)}; }

class SimTime {
 public:
  constexpr SimTime() = default;
  constexpr explicit SimTime(std::int64_t ms_since_epoch)
      : ms_(ms_since_epoch) {}

  [[nodiscard]] constexpr std::int64_t millis_since_epoch() const { return ms_; }

  friend constexpr SimTime operator+(SimTime t, Duration d) {
    return SimTime{t.ms_ + d.millis()};
  }
  friend constexpr SimTime operator+(Duration d, SimTime t) { return t + d; }
  friend constexpr SimTime operator-(SimTime t, Duration d) {
    return SimTime{t.ms_ - d.millis()};
  }
  friend constexpr Duration operator-(SimTime a, SimTime b) {
    return Duration{a.ms_ - b.ms_};
  }
  friend constexpr auto operator<=>(SimTime, SimTime) = default;

  constexpr SimTime& operator+=(Duration d) {
    ms_ += d.millis();
    return *this;
  }

 private:
  std::int64_t ms_ = 0;
};

// The value an exhausted RTC wakes up with (§IV).
inline constexpr SimTime kEpoch{0};

// --- UTC calendar ------------------------------------------------------

struct DateTime {
  int year = 1970;
  int month = 1;  // 1-12
  int day = 1;    // 1-31
  int hour = 0;
  int minute = 0;
  int second = 0;

  friend constexpr auto operator<=>(const DateTime&, const DateTime&) = default;
};

// Days since 1970-01-01 for a civil date (Howard Hinnant's algorithm).
[[nodiscard]] std::int64_t days_from_civil(int year, int month, int day);
[[nodiscard]] DateTime to_datetime(SimTime t);
[[nodiscard]] SimTime to_time(const DateTime& dt);
[[nodiscard]] SimTime at_midnight(int year, int month, int day);

// 1-based day of year (1..366).
[[nodiscard]] int day_of_year(SimTime t);
// Milliseconds past the most recent UTC midnight.
[[nodiscard]] Duration time_of_day(SimTime t);
// Midnight of the day containing t.
[[nodiscard]] SimTime start_of_day(SimTime t);

// "YYYY-MM-DD HH:MM:SS" (UTC).
[[nodiscard]] std::string format_iso(SimTime t);

}  // namespace gw::sim
