// Sharded discrete-event kernel: conservative time-window parallelism.
//
// The paper's deployment is many near-independent stations that interact
// only through the Southampton server over high-latency GPRS sessions.
// That latency is *lookahead* in PDES terms: nothing one station does can
// affect another sooner than the slowest leg of a server round-trip. A
// ShardedSimulation exploits it Graphite-style (lax but bounded): K
// independent sim::Simulation kernels ("shards") advance in lockstep
// windows of exactly `lookahead`, a pool of workers runs the shards of one
// window concurrently, and every cross-shard interaction travels as a
// timestamped message that is only examined at the barrier between
// windows. A shard may therefore run ahead of the slowest shard by at most
// one window — the conservative synchronisation bound.
//
// Messages come in two flavours (docs/PARALLELISM.md):
//
//   * post()/post_from(): kernel-exact events. At the barrier that opens
//     the window containing `deliver_at`, the coordinator schedules the
//     callback on the target shard at exactly `deliver_at`; the lookahead
//     contract (deliver_at >= sender now + lookahead) guarantees that
//     barrier has not yet passed. Delivery timing is therefore independent
//     of the window grid, the shard count, and the worker count.
//   * post_apply(): coordinator messages, applied single-threaded at the
//     first barrier at or after `deliver_at` — for state that no kernel
//     event reads (e.g. the fleet's hub server, only inspected between
//     runs).
//
// Determinism argument, in three parts:
//   1. within a window, shards share no mutable state — each kernel runs
//      its own (time, seq) total order exactly as the serial kernel would;
//   2. all cross-shard mutation happens on the coordinator thread at
//      barriers, ordered by (deliver_at, key, post order). Callers key
//      messages by their originating component (a station name), and one
//      component lives on exactly one shard, so the post order of equal
//      (deliver_at, key) pairs never depends on the partition;
//   3. barrier times form a fixed grid (now + lookahead, truncated at
//      run_until deadlines), independent of shard/worker counts.
// Hence every observable — journals, metrics, traces, events_executed() —
// is byte-identical at any thread count and any shard count, which
// tests/system/sharded_determinism_test.cpp pins.
//
// Thread-safety contract: the coordinator (the thread calling run_until)
// owns everything between windows; during a window, the worker advancing
// shard i may call post_from(i, ...) and touch only shard i's state. The
// worker pool is the PR 3 MonteCarloRunner — its dispatch/complete
// handshake provides the happens-before edges TSan checks.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "runner/monte_carlo_runner.h"
#include "sim/simulation.h"
#include "sim/time.h"

namespace gw::sim {

struct ShardedConfig {
  std::size_t shards = 1;
  // Worker threads advancing shards within a window; 0 = hardware
  // concurrency, capped at the shard count (more would only idle).
  unsigned workers = 0;
  // Window length and minimum cross-shard message latency. Derived by the
  // caller from the slowest-to-cross boundary (for a fleet: the minimum
  // GPRS session set-up, see station::derive_fleet_lookahead).
  Duration lookahead = minutes(5);
  SimTime start = kEpoch;
};

class ShardedSimulation {
 public:
  explicit ShardedSimulation(ShardedConfig config);

  ShardedSimulation(const ShardedSimulation&) = delete;
  ShardedSimulation& operator=(const ShardedSimulation&) = delete;

  [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }
  [[nodiscard]] Simulation& shard(std::size_t index) {
    return *shards_[index];
  }
  [[nodiscard]] const Simulation& shard(std::size_t index) const {
    return *shards_[index];
  }
  [[nodiscard]] unsigned workers() const { return pool_.threads(); }
  [[nodiscard]] Duration lookahead() const { return config_.lookahead; }

  // Global time: the last barrier reached. Between run_until calls every
  // shard's clock equals this.
  [[nodiscard]] SimTime now() const { return now_; }

  // Invoked on the coordinator thread at every barrier, after that
  // barrier's post_apply messages ran. The fleet layer drains its replica
  // ledgers here and posts the next round of messages.
  void set_barrier_hook(std::function<void(SimTime)> hook) {
    hook_ = std::move(hook);
  }

  // --- messages -----------------------------------------------------------
  //
  // `key` names the originating component; it is the tie-breaker that makes
  // equal-timestamp delivery order partition-invariant, so it must be
  // stable across partitions (a station name, never a shard index).

  // Kernel-exact event on shard `target` at exactly `deliver_at`.
  // Coordinator context (between runs or inside the barrier hook);
  // requires deliver_at > now().
  // gw::context(coordinator)
  void post(std::size_t target, SimTime deliver_at, std::string key,
            std::function<void()> fn);

  // Same, posted by the worker currently advancing shard `origin`;
  // requires deliver_at >= shard(origin).now() + lookahead — the
  // conservative contract that makes in-flight messages always land in a
  // window that has not started. Violations throw std::invalid_argument.
  // gw::context(worker)
  void post_from(std::size_t origin, std::size_t target, SimTime deliver_at,
                 std::string key, std::function<void()> fn);

  // Coordinator message: fn(barrier_time) runs single-threaded at the
  // first barrier at or after `deliver_at`. Coordinator context; requires
  // deliver_at > now().
  // gw::context(coordinator)
  void post_apply(SimTime deliver_at, std::string key,
                  std::function<void(SimTime)> fn);

  // Worker-context variant of post_apply, posted by the worker currently
  // advancing shard `origin`; same lookahead contract as post_from.
  // gw::context(worker)
  void post_apply_from(std::size_t origin, SimTime deliver_at,
                       std::string key, std::function<void(SimTime)> fn);

  // --- execution ----------------------------------------------------------

  // Advances every shard to `deadline`, window by window. Re-entrant with
  // any deadline pattern: a deadline mid-window truncates that window (the
  // next call resumes with a fresh full window), which changes barrier
  // times but never message delivery times.
  // gw::context(coordinator)
  void run_until(SimTime deadline);
  void run_for(Duration d) { run_until(now_ + d); }

  // --- introspection ------------------------------------------------------

  // Sum over shards — partition-invariant as long as callers schedule the
  // same events per component regardless of the partition.
  [[nodiscard]] std::uint64_t events_executed() const;

  [[nodiscard]] std::uint64_t windows_run() const { return windows_run_; }
  [[nodiscard]] std::uint64_t messages_posted() const {
    return messages_posted_;
  }
  [[nodiscard]] std::uint64_t messages_delivered() const {
    return messages_delivered_;
  }
  [[nodiscard]] std::size_t messages_pending() const {
    return pending_events_.size() + pending_applies_.size();
  }

 private:
  struct Message {
    std::int64_t deliver_at_ms = 0;
    std::string key;
    std::uint64_t seq = 0;  // merge order; assigned on the coordinator
    std::size_t target = 0;
    std::function<void()> event_fn;          // post / post_from
    std::function<void(SimTime)> apply_fn;   // post_apply
  };

  // Collects the coordinator and per-shard outboxes into the pending
  // queues, assigning merge-order sequence numbers, and re-sorts them by
  // (deliver_at, key, seq). Coordinator context only.
  void merge_outboxes();
  // Schedules every pending event with deliver_at <= window_end onto its
  // target shard, in sorted order.
  void inject_events(SimTime window_end);
  // Runs every pending apply-message with deliver_at <= barrier.
  void apply_messages(SimTime barrier);

  ShardedConfig config_;
  SimTime now_;
  std::vector<std::unique_ptr<Simulation>> shards_;
  runner::MonteCarloRunner pool_;
  std::function<void(SimTime)> hook_;
  // Outboxes: [0] is the coordinator's, [1 + i] belongs to shard i and is
  // written only by the worker advancing that shard within a window.
  std::vector<std::vector<Message>> outboxes_;
  std::vector<Message> pending_events_;
  std::vector<Message> pending_applies_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t windows_run_ = 0;
  std::uint64_t messages_posted_ = 0;
  std::uint64_t messages_delivered_ = 0;
};

}  // namespace gw::sim
