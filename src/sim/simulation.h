// Discrete-event simulation kernel.
//
// One global event queue drives every model in the repository: chargers
// integrate energy on 60 s ticks, the MSP430 samples voltage every 30 min,
// stations wake at their scheduled windows, packets arrive after their
// serialisation delay. Events at equal timestamps run in scheduling order
// (a monotonic sequence number breaks ties), so runs are bit-reproducible.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <stdexcept>
#include <unordered_set>
#include <vector>

#include "sim/time.h"

namespace gw::sim {

using EventId = std::uint64_t;

class Simulation {
 public:
  explicit Simulation(SimTime start = kEpoch) : now_(start) {}

  [[nodiscard]] SimTime now() const { return now_; }

  // Schedules `fn` at absolute time `at` (>= now). Returns an id usable with
  // cancel().
  EventId schedule_at(SimTime at, std::function<void()> fn) {
    if (at < now_) throw std::invalid_argument("schedule_at in the past");
    const EventId id = next_id_++;
    queue_.push(Event{at, id, std::move(fn)});
    return id;
  }

  EventId schedule_in(Duration delay, std::function<void()> fn) {
    return schedule_at(now_ + delay, std::move(fn));
  }

  // Cancels a pending event; cancelling an already-fired or unknown id is a
  // no-op (matches how embedded timers behave).
  void cancel(EventId id) { cancelled_.insert(id); }

  [[nodiscard]] bool empty() const { return live_events() == 0; }
  [[nodiscard]] std::size_t pending() const { return live_events(); }
  [[nodiscard]] std::uint64_t events_executed() const {
    return events_executed_;
  }

  // Runs the next event, if any; returns false when the queue is exhausted.
  bool step() {
    while (!queue_.empty()) {
      Event event = queue_.top();
      queue_.pop();
      if (auto it = cancelled_.find(event.id); it != cancelled_.end()) {
        cancelled_.erase(it);
        continue;
      }
      now_ = event.at;
      ++events_executed_;
      event.fn();
      return true;
    }
    return false;
  }

  // Runs every event with timestamp <= deadline, then advances the clock to
  // the deadline (even if the queue went quiet earlier).
  void run_until(SimTime deadline) {
    while (true) {
      purge_cancelled_head();
      if (queue_.empty() || queue_.top().at > deadline) break;
      if (!step()) break;
    }
    if (now_ < deadline) now_ = deadline;
  }

  void run_for(Duration duration) { run_until(now_ + duration); }

  // Drains the queue completely. Guarded by a ceiling so a self-rescheduling
  // model can't spin forever in a test.
  void run_all(std::uint64_t max_events = 100'000'000) {
    std::uint64_t executed = 0;
    while (step()) {
      if (++executed > max_events) {
        throw std::runtime_error("Simulation::run_all exceeded event budget");
      }
    }
  }

 private:
  struct Event {
    SimTime at;
    EventId id;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.id > b.id;
    }
  };

  // Drops cancelled events sitting at the head of the queue so top() is a
  // live event (run_until's deadline check relies on this).
  void purge_cancelled_head() {
    while (!queue_.empty()) {
      const auto it = cancelled_.find(queue_.top().id);
      if (it == cancelled_.end()) break;
      cancelled_.erase(it);
      queue_.pop();
    }
  }

  [[nodiscard]] std::size_t live_events() const {
    // cancelled_ may contain ids that already fired; queue size minus
    // cancellations still pending is approximate only if ids were bogus —
    // cancel() of unknown ids keeps them in the set, so clamp at zero.
    return queue_.size() > cancelled_.size()
               ? queue_.size() - cancelled_.size()
               : 0;
  }

  SimTime now_;
  EventId next_id_ = 1;
  std::uint64_t events_executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  std::unordered_set<EventId> cancelled_;
};

}  // namespace gw::sim
