// Discrete-event simulation kernel.
//
// One global event queue drives every model in the repository: chargers
// integrate energy on 60 s ticks, the MSP430 samples voltage every 30 min,
// stations wake at their scheduled windows, packets arrive after their
// serialisation delay. Events at equal timestamps run in scheduling order
// (a monotonic sequence number breaks ties), so runs are bit-reproducible.
//
// Hot-path design (docs/PERFORMANCE.md):
//   * schedule_at() is O(1): the 16-byte POD node (time, sequence, slot
//     index) is appended to an unsorted staging buffer — no sift, no
//     allocation, no comparison;
//   * when the kernel next needs ordering it flushes the staging buffer.
//     A burst scheduled against a quiet queue (every Monte Carlo trial in
//     bench/ sets its world up this way) is sorted wholesale with a stable
//     LSD radix sort into a linear "run" that pops by cursor in O(1);
//     events staged while older ones are still pending feed a 4-ary
//     implicit heap instead (steady-state periodic traffic). The next
//     event is the smaller of the two heads, so the executed order is the
//     exact (timestamp, sequence) total order either way;
//   * callbacks are InlineCallback (48-byte small-buffer storage, no
//     per-event allocation for the lambdas this repo schedules), built
//     in place in a chunked slot slab whose addresses never move — so an
//     event is invoked directly from its slot, not copied out first;
//   * cancellation is a generation-checked tombstone: cancel() flips the
//     slot state in O(1) and the dead node is skipped when it surfaces —
//     no hash probe per executed event, and pending() is an exact counter
//     (cancelling unknown or already-fired ids no longer distorts it).
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "sim/inline_callback.h"
#include "sim/time.h"
#include "snapshot/error.h"

namespace gw::sim {

// Opaque handle: packs (slot index << 32 | slot generation). Generations
// make stale handles harmless — cancel() of a fired, cancelled, or never-
// issued id is a no-op, exactly like an embedded timer API.
using EventId = std::uint64_t;

class Simulation {
 public:
  explicit Simulation(SimTime start = kEpoch) : now_(start) {}

  [[nodiscard]] SimTime now() const { return now_; }

  // Schedules `fn` (any void() callable; move-only is fine) at absolute
  // time `at` (>= now). Returns an id usable with cancel().
  template <typename F>
  EventId schedule_at(SimTime at, F&& fn) {
    if (at < now_) throw std::invalid_argument("schedule_at in the past");
    if (next_seq_ == kMaxSeq) renumber_sequences();
    const std::uint32_t index = acquire_slot();
    Slot& slot = slot_at(index);
    slot.fn.emplace(std::forward<F>(fn));
    slot.state = SlotState::kPending;
    staging_.push_back(HeapNode{at.millis_since_epoch(), next_seq_++, index});
    ++live_count_;
    return (std::uint64_t{index} << 32) | slot.generation;
  }

  template <typename F>
  EventId schedule_in(Duration delay, F&& fn) {
    return schedule_at(now_ + delay, std::forward<F>(fn));
  }

  // Cancels a pending event; cancelling an already-fired or unknown id is a
  // no-op (matches how embedded timers behave). O(1): the queued node
  // becomes a tombstone discarded when it reaches the head.
  void cancel(EventId id) {
    const auto index = static_cast<std::uint32_t>(id >> 32);
    const auto generation = static_cast<std::uint32_t>(id);
    if (index >= slot_count_) return;
    Slot& slot = slot_at(index);
    if (slot.state != SlotState::kPending || slot.generation != generation) {
      return;
    }
    slot.state = SlotState::kCancelled;
    slot.fn.reset();  // release captures now, not when the tombstone pops
    --live_count_;
  }

  [[nodiscard]] bool empty() const { return live_count_ == 0; }
  [[nodiscard]] std::size_t pending() const { return live_count_; }
  [[nodiscard]] std::uint64_t events_executed() const {
    return events_executed_;
  }

  // Runs the next event, if any; returns false when the queue is exhausted.
  bool step() {
    while (true) {
      if (!staging_.empty()) flush_staging();
      HeapNode node;
      const bool have_run = run_cursor_ < run_.size();
      if (have_run &&
          (heap_.empty() || earlier(run_[run_cursor_], heap_.front()))) {
        node = run_[run_cursor_++];
      } else if (!heap_.empty()) {
        node = heap_pop();
      } else {
        return false;
      }
      Slot& slot = slot_at(node.slot);
      if (slot.state == SlotState::kCancelled) {
        free_slot(node.slot, slot);
        continue;
      }
      now_ = SimTime{node.at_ms};
      ++events_executed_;
      --live_count_;
      // Mark free *before* invoking so a self-cancel is a no-op, but keep
      // the slot off the free list until after: the callback may schedule
      // (slot addresses are chunk-stable, so `slot` stays valid) and must
      // not be handed its own still-occupied slot.
      slot.state = SlotState::kFree;
      slot.fn.invoke_and_reset();
      slot.next_free = free_head_;
      free_head_ = node.slot;
      return true;
    }
  }

  // Runs every event with timestamp <= deadline, then advances the clock to
  // the deadline (even if the queue went quiet earlier).
  void run_until(SimTime deadline) {
    while (true) {
      if (!staging_.empty()) flush_staging();
      purge_cancelled_heads();
      std::int64_t head_at;
      if (run_cursor_ < run_.size()) {
        head_at = run_[run_cursor_].at_ms;
        if (!heap_.empty() && heap_.front().at_ms < head_at) {
          head_at = heap_.front().at_ms;
        }
      } else if (!heap_.empty()) {
        head_at = heap_.front().at_ms;
      } else {
        break;
      }
      if (head_at > deadline.millis_since_epoch()) break;
      if (!step()) break;
    }
    if (now_ < deadline) now_ = deadline;
  }

  void run_for(Duration duration) { run_until(now_ + duration); }

  // Drains the queue completely. Guarded by a ceiling so a self-rescheduling
  // model can't spin forever in a test.
  void run_all(std::uint64_t max_events = 100'000'000) {
    std::uint64_t executed = 0;
    while (step()) {
      if (++executed > max_events) {
        throw std::runtime_error("Simulation::run_all exceeded event budget");
      }
    }
  }

  // --- snapshot support (docs/SNAPSHOT.md) --------------------------------
  //
  // The queue's InlineCallback closures are code, not data, so the kernel
  // cannot serialise itself wholesale. Instead, each component that owns a
  // pending event saves a *rebuild record* — the event's exact queued
  // (timestamp, sequence) key, looked up with pending_key() — and on
  // restore re-registers an equivalent callback under that same key with
  // schedule_rebuilt(). Because execution order is the (time, seq) total
  // order and every key is replayed verbatim (never recomputed), a
  // restored run interleaves exactly like the original.

  struct KernelCheckpoint {
    std::int64_t now_ms = 0;
    std::uint32_t next_seq = 1;
    std::uint64_t events_executed = 0;
    std::uint64_t live_events = 0;

    template <class Archive>
    void persist(Archive& ar) {
      ar.value(now_ms);
      ar.value(next_seq);
      ar.value(events_executed);
      ar.value(live_events);
    }
  };

  [[nodiscard]] KernelCheckpoint checkpoint() const {
    return KernelCheckpoint{now_.millis_since_epoch(), next_seq_,
                            events_executed_, live_count_};
  }

  // The queued (timestamp, sequence) key of a still-pending event, or
  // nullopt when `id` already fired or was cancelled. O(pending) linear
  // scan — this runs at save time only, never on the hot path.
  [[nodiscard]] std::optional<std::pair<std::int64_t, std::uint32_t>>
  pending_key(EventId id) const {
    const auto index = static_cast<std::uint32_t>(id >> 32);
    const auto generation = static_cast<std::uint32_t>(id);
    if (index >= slot_count_) return std::nullopt;
    const Slot& slot = chunks_[index >> kChunkShift][index & (kChunkSize - 1)];
    if (slot.state != SlotState::kPending || slot.generation != generation) {
      return std::nullopt;
    }
    for (const HeapNode& node : staging_) {
      if (node.slot == index) return std::make_pair(node.at_ms, node.seq);
    }
    for (std::size_t i = run_cursor_; i < run_.size(); ++i) {
      if (run_[i].slot == index) {
        return std::make_pair(run_[i].at_ms, run_[i].seq);
      }
    }
    for (const HeapNode& node : heap_) {
      if (node.slot == index) return std::make_pair(node.at_ms, node.seq);
    }
    return std::nullopt;
  }

  // Restore protocol: begin_restore() wipes the queue and pins the clock,
  // each component re-registers its events with schedule_rebuilt(), and
  // finish_restore() reinstates the sequence counter after proving every
  // saved event came back. Stale EventId members left over from the fresh
  // construction are simply overwritten — never cancel() them.
  void begin_restore(const KernelCheckpoint& ckpt) {
    staging_.clear();
    run_.clear();
    scratch_.clear();
    heap_.clear();
    run_cursor_ = 0;
    chunks_.clear();
    slot_count_ = 0;
    free_head_ = kNoSlot;
    live_count_ = 0;
    now_ = SimTime{ckpt.now_ms};
    events_executed_ = ckpt.events_executed;
    restore_ = ckpt;
    restoring_ = true;
  }

  // Re-registers one saved event under its exact saved key. Pushes straight
  // into the heap: components rebuild in section order, not sequence order,
  // and the staging radix sort is only stable for monotonically appended
  // sequences.
  template <typename F>
  EventId schedule_rebuilt(std::int64_t at_ms, std::uint32_t seq, F&& fn) {
    if (!restoring_) {
      throw snapshot::SnapshotError(snapshot::SnapshotErrc::kStateMismatch,
                                    "schedule_rebuilt outside restore",
                                    "kernel");
    }
    if (at_ms < now_.millis_since_epoch() || seq >= restore_.next_seq) {
      throw snapshot::SnapshotError(
          snapshot::SnapshotErrc::kStateMismatch,
          "rebuild record key (" + std::to_string(at_ms) + ", " +
              std::to_string(seq) + ") outside the checkpoint's horizon",
          "kernel");
    }
    const std::uint32_t index = acquire_slot();
    Slot& slot = slot_at(index);
    slot.fn.emplace(std::forward<F>(fn));
    slot.state = SlotState::kPending;
    heap_push(HeapNode{at_ms, seq, index});
    ++live_count_;
    return (std::uint64_t{index} << 32) | slot.generation;
  }

  void finish_restore() {
    if (!restoring_) {
      throw snapshot::SnapshotError(snapshot::SnapshotErrc::kStateMismatch,
                                    "finish_restore outside restore",
                                    "kernel");
    }
    restoring_ = false;
    next_seq_ = restore_.next_seq;
    if (live_count_ != restore_.live_events) {
      throw snapshot::SnapshotError(
          snapshot::SnapshotErrc::kStateMismatch,
          "rebuilt " + std::to_string(live_count_) +
              " event(s), checkpoint recorded " +
              std::to_string(restore_.live_events),
          "kernel");
    }
  }

 private:
  enum class SlotState : std::uint8_t { kFree, kPending, kCancelled };

  struct Slot {
    InlineCallback fn;
    std::uint32_t generation = 0;
    std::uint32_t next_free = kNoSlot;
    SlotState state = SlotState::kFree;
  };

  // POD queue node; sort and sift operations shuffle these 16 bytes, never
  // callbacks. `seq` is a 32-bit rolling tie-breaker: when it would wrap,
  // every pending node is renumbered in place, preserving the exact
  // (time, scheduling-order) relation — see renumber_sequences().
  struct HeapNode {
    std::int64_t at_ms;
    std::uint32_t seq;
    std::uint32_t slot;
  };

  static constexpr std::uint32_t kNoSlot = 0xffffffffu;
  static constexpr std::uint32_t kMaxSeq = 0xffffffffu;
  // 256 slots x ~64 B = one 16 KiB chunk; chunks are never moved or freed
  // until the Simulation dies, so Slot& stays valid across callbacks.
  static constexpr std::uint32_t kChunkShift = 8;
  static constexpr std::uint32_t kChunkSize = 1u << kChunkShift;

  static bool earlier(const HeapNode& a, const HeapNode& b) {
    if (a.at_ms != b.at_ms) return a.at_ms < b.at_ms;
    return a.seq < b.seq;
  }

  [[nodiscard]] Slot& slot_at(std::uint32_t index) {
    return chunks_[index >> kChunkShift][index & (kChunkSize - 1)];
  }

  std::uint32_t acquire_slot() {
    std::uint32_t index = free_head_;
    if (index != kNoSlot) {
      free_head_ = slot_at(index).next_free;
    } else {
      index = slot_count_++;
      if ((index & (kChunkSize - 1)) == 0) {
        chunks_.push_back(std::make_unique<Slot[]>(kChunkSize));
      }
    }
    ++slot_at(index).generation;  // invalidate ids from any prior use
    return index;
  }

  void free_slot(std::uint32_t index, Slot& slot) {
    slot.state = SlotState::kFree;
    slot.next_free = free_head_;
    free_head_ = index;
  }

  // Moves everything in the staging buffer into sorted position. Two modes:
  //   * the queue is otherwise idle (every Monte Carlo trial bursts its
  //     schedule against an empty queue, then drains): radix-sort the batch
  //     into a linear run popped by cursor — O(1) amortized per event, no
  //     per-element sift;
  //   * older events are still pending: push each node into the heap, the
  //     same steady-state path a periodic model exercises.
  void flush_staging() {
    if (run_cursor_ == run_.size() && heap_.empty()) {
      run_.swap(staging_);
      staging_.clear();
      run_cursor_ = 0;
      sort_run();
    } else {
      for (const HeapNode& node : staging_) heap_push(node);
      staging_.clear();
    }
  }

  // Stable LSD radix sort of run_ on (at_ms - min): only the bytes that
  // actually vary get a counting pass, and stability keeps equal-time nodes
  // in append order — which is sequence order, because schedule_at appends
  // monotonically increasing `seq`. The result is the exact (time, seq)
  // total order. Small batches use std::sort with the full comparator.
  void sort_run() {
    const std::size_t n = run_.size();
    if (n < 2) return;
    if (n <= 64) {
      std::sort(run_.begin(), run_.end(),
                [](const HeapNode& a, const HeapNode& b) {
                  return earlier(a, b);
                });
      return;
    }
    std::int64_t min_at = run_[0].at_ms;
    std::int64_t max_at = run_[0].at_ms;
    for (const HeapNode& node : run_) {
      min_at = node.at_ms < min_at ? node.at_ms : min_at;
      max_at = node.at_ms > max_at ? node.at_ms : max_at;
    }
    // Biased subtraction is overflow-safe for any int64 pair.
    const std::uint64_t range =
        static_cast<std::uint64_t>(max_at) - static_cast<std::uint64_t>(min_at);
    scratch_.resize(n);
    std::vector<HeapNode>* src = &run_;
    std::vector<HeapNode>* dst = &scratch_;
    for (int shift = 0; shift < 64 && (range >> shift) != 0; shift += 8) {
      std::size_t counts[257] = {};
      for (const HeapNode& node : *src) {
        const std::uint64_t key =
            static_cast<std::uint64_t>(node.at_ms) -
            static_cast<std::uint64_t>(min_at);
        ++counts[((key >> shift) & 0xff) + 1];
      }
      for (int d = 0; d < 256; ++d) counts[d + 1] += counts[d];
      for (const HeapNode& node : *src) {
        const std::uint64_t key =
            static_cast<std::uint64_t>(node.at_ms) -
            static_cast<std::uint64_t>(min_at);
        (*dst)[counts[(key >> shift) & 0xff]++] = node;
      }
      std::swap(src, dst);
    }
    if (src != &run_) run_.swap(scratch_);
  }

  // 4-ary implicit heap: hole-based sift (the inserted/last node is held in
  // a register and written once), half the levels of a binary heap, and the
  // four children of a node share at most two cache lines.
  void heap_push(HeapNode node) {
    std::size_t child = heap_.size();
    heap_.push_back(node);  // reserve the space; value overwritten below
    while (child > 0) {
      const std::size_t parent = (child - 1) / 4;
      if (!earlier(node, heap_[parent])) break;
      heap_[child] = heap_[parent];
      child = parent;
    }
    heap_[child] = node;
  }

  HeapNode heap_pop() {
    const HeapNode top = heap_.front();
    const HeapNode last = heap_.back();
    heap_.pop_back();
    const std::size_t size = heap_.size();
    if (size != 0) {
      std::size_t parent = 0;
      while (true) {
        const std::size_t first = 4 * parent + 1;
        if (first >= size) break;
        const std::size_t end = first + 4 < size ? first + 4 : size;
        std::size_t smallest = first;
        for (std::size_t i = first + 1; i < end; ++i) {
          if (earlier(heap_[i], heap_[smallest])) smallest = i;
        }
        if (!earlier(heap_[smallest], last)) break;
        heap_[parent] = heap_[smallest];
        parent = smallest;
      }
      heap_[parent] = last;
    }
    return top;
  }

  // Drops tombstones sitting at either head so the earliest visible node is
  // a live event (run_until's deadline check relies on this).
  void purge_cancelled_heads() {
    while (run_cursor_ < run_.size()) {
      Slot& slot = slot_at(run_[run_cursor_].slot);
      if (slot.state != SlotState::kCancelled) break;
      free_slot(run_[run_cursor_].slot, slot);
      ++run_cursor_;
    }
    while (!heap_.empty()) {
      Slot& slot = slot_at(heap_.front().slot);
      if (slot.state != SlotState::kCancelled) break;
      free_slot(heap_.front().slot, slot);
      heap_pop();
    }
  }

  // Re-packs every pending node's tie-break sequence number into 1..n.
  // Gathering all three containers and sorting by (time, seq) preserves the
  // exact execution order, and a sorted array is both a valid linear run
  // and a valid d-ary min-heap, so determinism is unaffected. Amortized
  // cost ~0: once every 2^32 - 1 scheduled events.
  void renumber_sequences() {
    staging_.insert(staging_.end(), run_.begin() + run_cursor_, run_.end());
    staging_.insert(staging_.end(), heap_.begin(), heap_.end());
    std::sort(staging_.begin(), staging_.end(),
              [](const HeapNode& a, const HeapNode& b) {
                return earlier(a, b);
              });
    std::uint32_t seq = 1;
    for (HeapNode& node : staging_) node.seq = seq++;
    run_.swap(staging_);
    staging_.clear();
    run_cursor_ = 0;
    heap_.clear();
    next_seq_ = seq;
  }

  SimTime now_;
  std::uint32_t next_seq_ = 1;
  std::uint64_t events_executed_ = 0;
  std::size_t live_count_ = 0;
  std::vector<HeapNode> staging_;   // unsorted: schedule_at appends here
  std::vector<HeapNode> run_;       // sorted run, popped at run_cursor_
  std::vector<HeapNode> scratch_;   // radix ping-pong buffer
  std::size_t run_cursor_ = 0;
  std::vector<HeapNode> heap_;      // events staged while others were pending
  std::vector<std::unique_ptr<Slot[]>> chunks_;
  std::uint32_t slot_count_ = 0;
  std::uint32_t free_head_ = kNoSlot;
  KernelCheckpoint restore_{};  // horizon while restoring_
  bool restoring_ = false;
};

// Saves or restores one component-owned pending event through a snapshot
// archive (the standard way to write a rebuild record — see
// docs/SNAPSHOT.md). On save: records whether `id` is still pending and,
// if so, its exact queued key, and counts it in ar.rebuild_records so the
// fleet save can prove every live event is accounted for. On restore:
// re-registers `rebuild` under the saved key (or writes the null id).
// `rebuild` is any void() callable; it is only consumed on the load path.
template <class Archive, typename F>
void persist_pending(Archive& ar, Simulation& sim, EventId& id, F&& rebuild) {
  if constexpr (Archive::kIsSaver) {
    const auto key = sim.pending_key(id);
    const bool live = key.has_value();
    ar.value(live);
    if (live) {
      ar.value(key->first);
      ar.value(key->second);
      ++ar.rebuild_records;
    }
  } else {
    bool live = false;
    ar.value(live);
    if (live) {
      std::int64_t at_ms = 0;
      std::uint32_t seq = 0;
      ar.value(at_ms);
      ar.value(seq);
      id = sim.schedule_rebuilt(at_ms, seq, std::forward<F>(rebuild));
    } else {
      id = EventId{0};  // generations start at 1, so 0 never matches
    }
  }
}

template <class Archive, typename F>
void persist_pending(Archive& ar, Simulation& sim, std::optional<EventId>& id,
                     F&& rebuild) {
  if constexpr (Archive::kIsSaver) {
    std::optional<std::pair<std::int64_t, std::uint32_t>> key;
    if (id.has_value()) key = sim.pending_key(*id);
    const bool live = key.has_value();
    ar.value(live);
    if (live) {
      ar.value(key->first);
      ar.value(key->second);
      ++ar.rebuild_records;
    }
  } else {
    bool live = false;
    ar.value(live);
    if (live) {
      std::int64_t at_ms = 0;
      std::uint32_t seq = 0;
      ar.value(at_ms);
      ar.value(seq);
      id = sim.schedule_rebuilt(at_ms, seq, std::forward<F>(rebuild));
    } else {
      id.reset();
    }
  }
}

}  // namespace gw::sim
