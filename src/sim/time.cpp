#include "sim/time.h"

#include <cstdio>

namespace gw::sim {
namespace {

constexpr std::int64_t kMsPerDay = 86'400'000;

// Inverse of days_from_civil (Howard Hinnant's civil_from_days).
void civil_from_days(std::int64_t z, int& year, int& month, int& day) {
  z += 719468;
  const std::int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const std::int64_t doe = z - era * 146097;                      // [0, 146096]
  const std::int64_t yoe =
      (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;      // [0, 399]
  const std::int64_t y = yoe + era * 400;
  const std::int64_t doy = doe - (365 * yoe + yoe / 4 - yoe / 100);  // [0, 365]
  const std::int64_t mp = (5 * doy + 2) / 153;                    // [0, 11]
  day = int(doy - (153 * mp + 2) / 5 + 1);
  month = int(mp < 10 ? mp + 3 : mp - 9);
  year = int(y + (month <= 2 ? 1 : 0));
}

}  // namespace

std::int64_t days_from_civil(int year, int month, int day) {
  year -= month <= 2;
  const std::int64_t era = (year >= 0 ? year : year - 399) / 400;
  const std::int64_t yoe = year - era * 400;                      // [0, 399]
  const std::int64_t doy =
      (153 * (month > 2 ? month - 3 : month + 9) + 2) / 5 + day - 1;
  const std::int64_t doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  return era * 146097 + doe - 719468;
}

DateTime to_datetime(SimTime t) {
  std::int64_t ms = t.millis_since_epoch();
  std::int64_t day_index = ms / kMsPerDay;
  std::int64_t in_day = ms % kMsPerDay;
  if (in_day < 0) {
    in_day += kMsPerDay;
    --day_index;
  }
  DateTime dt;
  civil_from_days(day_index, dt.year, dt.month, dt.day);
  const std::int64_t secs = in_day / 1000;
  dt.hour = int(secs / 3600);
  dt.minute = int((secs / 60) % 60);
  dt.second = int(secs % 60);
  return dt;
}

SimTime to_time(const DateTime& dt) {
  const std::int64_t day_index = days_from_civil(dt.year, dt.month, dt.day);
  const std::int64_t secs =
      std::int64_t(dt.hour) * 3600 + std::int64_t(dt.minute) * 60 + dt.second;
  return SimTime{day_index * kMsPerDay + secs * 1000};
}

SimTime at_midnight(int year, int month, int day) {
  return to_time(DateTime{year, month, day, 0, 0, 0});
}

int day_of_year(SimTime t) {
  const DateTime dt = to_datetime(t);
  const std::int64_t this_day = days_from_civil(dt.year, dt.month, dt.day);
  const std::int64_t jan1 = days_from_civil(dt.year, 1, 1);
  return int(this_day - jan1) + 1;
}

Duration time_of_day(SimTime t) {
  std::int64_t in_day = t.millis_since_epoch() % kMsPerDay;
  if (in_day < 0) in_day += kMsPerDay;
  return Duration{in_day};
}

SimTime start_of_day(SimTime t) { return t - time_of_day(t); }

std::string format_iso(SimTime t) {
  const DateTime dt = to_datetime(t);
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%04d-%02d-%02d %02d:%02d:%02d",
                dt.year, dt.month, dt.day, dt.hour, dt.minute, dt.second);
  return buffer;
}

}  // namespace gw::sim
