#include "sim/sharded_simulation.h"

#include <algorithm>
#include <stdexcept>
#include <thread>
#include <tuple>
#include <utility>

namespace gw::sim {
namespace {

unsigned resolve_workers(unsigned requested, std::size_t shards) {
  unsigned workers = requested;
  if (workers == 0) {
    workers = std::thread::hardware_concurrency();
    if (workers == 0) workers = 1;
  }
  const auto cap = static_cast<unsigned>(shards);
  return std::min(workers, cap);
}

}  // namespace

ShardedSimulation::ShardedSimulation(ShardedConfig config)
    : config_(config),
      now_(config.start),
      pool_(resolve_workers(config.workers,
                            config.shards == 0 ? 1 : config.shards)) {
  if (config_.shards == 0) config_.shards = 1;
  if (config_.lookahead <= Duration{0}) {
    throw std::invalid_argument(
        "ShardedSimulation: lookahead must be positive");
  }
  shards_.reserve(config_.shards);
  for (std::size_t i = 0; i < config_.shards; ++i) {
    shards_.push_back(std::make_unique<Simulation>(config_.start));
  }
  outboxes_.resize(1 + config_.shards);
}

void ShardedSimulation::post(std::size_t target, SimTime deliver_at,
                             std::string key, std::function<void()> fn) {
  if (target >= shards_.size()) {
    throw std::invalid_argument("ShardedSimulation: post to unknown shard");
  }
  if (deliver_at <= now_) {
    throw std::invalid_argument(
        "ShardedSimulation: message must be delivered after the current "
        "barrier");
  }
  Message message;
  message.deliver_at_ms = deliver_at.millis_since_epoch();
  message.key = std::move(key);
  message.target = target;
  message.event_fn = std::move(fn);
  outboxes_[0].push_back(std::move(message));
}

void ShardedSimulation::post_from(std::size_t origin, std::size_t target,
                                  SimTime deliver_at, std::string key,
                                  std::function<void()> fn) {
  if (origin >= shards_.size() || target >= shards_.size()) {
    throw std::invalid_argument(
        "ShardedSimulation: post_from with unknown shard");
  }
  if (deliver_at < shards_[origin]->now() + config_.lookahead) {
    throw std::invalid_argument(
        "ShardedSimulation: lookahead violation — a shard may not address "
        "a time its peers could already have passed");
  }
  Message message;
  message.deliver_at_ms = deliver_at.millis_since_epoch();
  message.key = std::move(key);
  message.target = target;
  message.event_fn = std::move(fn);
  outboxes_[1 + origin].push_back(std::move(message));
}

void ShardedSimulation::post_apply(SimTime deliver_at, std::string key,
                                   std::function<void(SimTime)> fn) {
  if (deliver_at <= now_) {
    throw std::invalid_argument(
        "ShardedSimulation: message must be delivered after the current "
        "barrier");
  }
  Message message;
  message.deliver_at_ms = deliver_at.millis_since_epoch();
  message.key = std::move(key);
  message.apply_fn = std::move(fn);
  outboxes_[0].push_back(std::move(message));
}

void ShardedSimulation::post_apply_from(std::size_t origin,
                                        SimTime deliver_at, std::string key,
                                        std::function<void(SimTime)> fn) {
  if (origin >= shards_.size()) {
    throw std::invalid_argument(
        "ShardedSimulation: post_apply_from with unknown shard");
  }
  if (deliver_at < shards_[origin]->now() + config_.lookahead) {
    throw std::invalid_argument(
        "ShardedSimulation: lookahead violation — a shard may not address "
        "a time its peers could already have passed");
  }
  Message message;
  message.deliver_at_ms = deliver_at.millis_since_epoch();
  message.key = std::move(key);
  message.apply_fn = std::move(fn);
  outboxes_[1 + origin].push_back(std::move(message));
}

void ShardedSimulation::merge_outboxes() {
  bool merged_any = false;
  // Coordinator outbox first, then shards in index order. Equal
  // (deliver_at, key) pairs originate from one component on one outbox, so
  // this order — though partition-dependent across outboxes — never decides
  // a tie that the sort below could observe.
  for (auto& outbox : outboxes_) {
    for (Message& message : outbox) {
      message.seq = next_seq_++;
      ++messages_posted_;
      auto& queue = message.event_fn ? pending_events_ : pending_applies_;
      queue.push_back(std::move(message));
      merged_any = true;
    }
    outbox.clear();
  }
  if (!merged_any) return;
  const auto order = [](const Message& a, const Message& b) {
    return std::tie(a.deliver_at_ms, a.key, a.seq) <
           std::tie(b.deliver_at_ms, b.key, b.seq);
  };
  std::sort(pending_events_.begin(), pending_events_.end(), order);
  std::sort(pending_applies_.begin(), pending_applies_.end(), order);
}

void ShardedSimulation::inject_events(SimTime window_end) {
  const std::int64_t horizon = window_end.millis_since_epoch();
  std::size_t injected = 0;
  while (injected < pending_events_.size() &&
         pending_events_[injected].deliver_at_ms <= horizon) {
    Message& message = pending_events_[injected];
    shards_[message.target]->schedule_at(SimTime{message.deliver_at_ms},
                                         std::move(message.event_fn));
    ++messages_delivered_;
    ++injected;
  }
  pending_events_.erase(pending_events_.begin(),
                        pending_events_.begin() + std::ptrdiff_t(injected));
}

void ShardedSimulation::apply_messages(SimTime barrier) {
  const std::int64_t horizon = barrier.millis_since_epoch();
  std::size_t applied = 0;
  while (applied < pending_applies_.size() &&
         pending_applies_[applied].deliver_at_ms <= horizon) {
    pending_applies_[applied].apply_fn(barrier);
    ++messages_delivered_;
    ++applied;
  }
  pending_applies_.erase(pending_applies_.begin(),
                         pending_applies_.begin() + std::ptrdiff_t(applied));
}

void ShardedSimulation::run_until(SimTime deadline) {
  if (deadline < now_) {
    throw std::invalid_argument("ShardedSimulation: run_until into the past");
  }
  merge_outboxes();
  while (now_ < deadline) {
    const SimTime full = now_ + config_.lookahead;
    const SimTime window_end = deadline < full ? deadline : full;
    inject_events(window_end);
    pool_.run(shards_.size(), [this, window_end](std::size_t index) {
      shards_[index]->run_until(window_end);
      return 0;
    });
    now_ = window_end;
    ++windows_run_;
    merge_outboxes();
    apply_messages(now_);
    if (hook_) {
      hook_(now_);
      merge_outboxes();
    }
  }
}

std::uint64_t ShardedSimulation::events_executed() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) total += shard->events_executed();
  return total;
}

}  // namespace gw::sim
