// Versioned, CRC-guarded snapshot container.
//
// Byte layout (all integers little-endian):
//
//   "GWSNAP"                     6-byte magic
//   u16  format version          (kFormatVersion)
//   u32  section count
//   per section, in write order:
//     u16  name length
//     ...  name bytes
//     u64  payload length
//     u32  CRC-32 of the payload
//     ...  payload bytes (a snapshot::Saver stream)
//   u32  CRC-32 of every byte above
//
// Sections are the unit of blame: each component of the world serialises
// into its own named section, so corruption, drift, or a save/load field
// mismatch is reported against a name ("station/base", "env"), not an
// offset into a monolithic blob. The reader validates *everything* up
// front — magic, version, framing, every section CRC, the file CRC — and
// throws a typed SnapshotError before any caller sees a byte; a snapshot
// either loads whole or not at all.
//
// The fingerprint is the CRC-32 over the (name, section-CRC) pairs: a
// 32-bit digest of the entire world state that golden tests pin and the
// gwsnap CLI prints. Policy and format rationale: docs/SNAPSHOT.md.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "snapshot/archive.h"
#include "snapshot/error.h"

namespace gw::snapshot {

inline constexpr std::uint16_t kFormatVersion = 1;
inline constexpr std::string_view kMagic = "GWSNAP";

class StateWriter {
 public:
  // Appends one named section. Names must be unique within a snapshot.
  void section(std::string name, std::vector<std::uint8_t> payload);

  // Seals the container: framing + per-section CRCs + file CRC.
  [[nodiscard]] std::vector<std::uint8_t> finish() const;

 private:
  struct Pending {
    std::string name;
    std::vector<std::uint8_t> payload;
  };
  std::vector<Pending> sections_;
};

struct Section {
  std::string name;
  std::uint32_t crc = 0;
  std::vector<std::uint8_t> payload;
};

class StateReader {
 public:
  // Parses and fully validates `bytes`; throws SnapshotError (kBadMagic,
  // kBadVersion, kTruncated, kDuplicateSection, kSectionCrcMismatch,
  // kFileCrcMismatch, kTrailingBytes) on anything suspect.
  explicit StateReader(std::span<const std::uint8_t> bytes);

  [[nodiscard]] const std::vector<Section>& sections() const {
    return sections_;
  }

  // The named section, or null when absent.
  [[nodiscard]] const Section* find(std::string_view name) const;

  // A Loader positioned over the named section's payload; throws
  // SnapshotError(kMissingSection) when absent.
  [[nodiscard]] Loader open(std::string_view name) const;

  // CRC-32 over the ordered (name, section CRC) pairs — the whole-world
  // digest golden tests pin.
  [[nodiscard]] std::uint32_t fingerprint() const;

  [[nodiscard]] std::uint16_t version() const { return version_; }

 private:
  std::uint16_t version_ = kFormatVersion;
  std::vector<Section> sections_;
};

// The fingerprint of a sealed snapshot without keeping a reader around.
[[nodiscard]] std::uint32_t fingerprint(std::span<const std::uint8_t> bytes);

}  // namespace gw::snapshot
