#include "snapshot/state_writer.h"

#include <algorithm>

#include "util/crc32.h"

namespace gw::snapshot {

namespace {

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t x) {
  out.push_back(std::uint8_t(x));
  out.push_back(std::uint8_t(x >> 8));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t x) {
  for (int i = 0; i < 4; ++i) out.push_back(std::uint8_t(x >> (8 * i)));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t x) {
  for (int i = 0; i < 8; ++i) out.push_back(std::uint8_t(x >> (8 * i)));
}

// Strict cursor over the raw container bytes; all reads are bounds-checked
// against kTruncated (the archive Loader's underrun error is for *payload*
// reads, which have their own section context).
class Cursor {
 public:
  explicit Cursor(std::span<const std::uint8_t> data) : data_(data) {}

  [[nodiscard]] std::span<const std::uint8_t> take(std::uint64_t n,
                                                   const char* what) {
    if (n > data_.size() - pos_) {
      throw SnapshotError(SnapshotErrc::kTruncated,
                          std::string("stream ends inside ") + what);
    }
    const auto out = data_.subspan(pos_, n);
    pos_ += n;
    return out;
  }

  [[nodiscard]] std::uint16_t take_u16(const char* what) {
    const auto raw = take(2, what);
    return std::uint16_t(raw[0] | (std::uint16_t(raw[1]) << 8));
  }

  [[nodiscard]] std::uint32_t take_u32(const char* what) {
    const auto raw = take(4, what);
    std::uint32_t x = 0;
    for (int i = 0; i < 4; ++i) x |= std::uint32_t(raw[std::size_t(i)]) << (8 * i);
    return x;
  }

  [[nodiscard]] std::uint64_t take_u64(const char* what) {
    const auto raw = take(8, what);
    std::uint64_t x = 0;
    for (int i = 0; i < 8; ++i) x |= std::uint64_t(raw[std::size_t(i)]) << (8 * i);
    return x;
  }

  [[nodiscard]] std::size_t pos() const { return pos_; }
  [[nodiscard]] std::size_t left() const { return data_.size() - pos_; }

 private:
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

std::uint32_t pairs_fingerprint(const std::vector<Section>& sections) {
  std::vector<std::uint8_t> digest_input;
  for (const Section& section : sections) {
    digest_input.insert(digest_input.end(), section.name.begin(),
                        section.name.end());
    put_u32(digest_input, section.crc);
  }
  return util::crc32(digest_input);
}

}  // namespace

void StateWriter::section(std::string name,
                          std::vector<std::uint8_t> payload) {
  const bool duplicate =
      std::any_of(sections_.begin(), sections_.end(),
                  [&](const Pending& p) { return p.name == name; });
  if (duplicate) {
    throw SnapshotError(SnapshotErrc::kDuplicateSection,
                        "section written twice", name);
  }
  sections_.push_back(Pending{std::move(name), std::move(payload)});
}

std::vector<std::uint8_t> StateWriter::finish() const {
  std::vector<std::uint8_t> out;
  out.insert(out.end(), kMagic.begin(), kMagic.end());
  put_u16(out, kFormatVersion);
  put_u32(out, std::uint32_t(sections_.size()));
  for (const Pending& section : sections_) {
    put_u16(out, std::uint16_t(section.name.size()));
    out.insert(out.end(), section.name.begin(), section.name.end());
    put_u64(out, section.payload.size());
    put_u32(out, util::crc32(section.payload));
    out.insert(out.end(), section.payload.begin(), section.payload.end());
  }
  put_u32(out, util::crc32(out));
  return out;
}

StateReader::StateReader(std::span<const std::uint8_t> bytes) {
  // The file CRC covers everything before itself; check it first so every
  // later diagnostic is about *structure*, not random bit damage.
  if (bytes.size() < kMagic.size()) {
    throw SnapshotError(SnapshotErrc::kBadMagic, "stream shorter than magic");
  }
  if (!std::equal(kMagic.begin(), kMagic.end(), bytes.begin())) {
    throw SnapshotError(SnapshotErrc::kBadMagic, "not a GWSNAP stream");
  }
  Cursor cursor(bytes);
  (void)cursor.take(kMagic.size(), "magic");
  version_ = cursor.take_u16("format version");
  if (version_ != kFormatVersion) {
    throw SnapshotError(SnapshotErrc::kBadVersion,
                        "format version " + std::to_string(version_) +
                            ", this build speaks " +
                            std::to_string(kFormatVersion));
  }
  const std::uint32_t count = cursor.take_u32("section count");
  sections_.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    Section section;
    const std::uint16_t name_len = cursor.take_u16("section name length");
    const auto name_raw = cursor.take(name_len, "section name");
    section.name.assign(name_raw.begin(), name_raw.end());
    const std::uint64_t payload_len = cursor.take_u64("section length");
    section.crc = cursor.take_u32("section crc");
    const auto payload = cursor.take(payload_len, "section payload");
    section.payload.assign(payload.begin(), payload.end());
    if (util::crc32(section.payload) != section.crc) {
      throw SnapshotError(SnapshotErrc::kSectionCrcMismatch,
                          "payload does not match its CRC", section.name);
    }
    for (const Section& existing : sections_) {
      if (existing.name == section.name) {
        throw SnapshotError(SnapshotErrc::kDuplicateSection,
                            "section appears twice", section.name);
      }
    }
    sections_.push_back(std::move(section));
  }
  const std::size_t body_end = cursor.pos();
  const std::uint32_t file_crc = cursor.take_u32("file crc");
  if (cursor.left() != 0) {
    throw SnapshotError(SnapshotErrc::kTrailingBytes,
                        std::to_string(cursor.left()) +
                            " byte(s) after the file CRC");
  }
  if (util::crc32(bytes.subspan(0, body_end)) != file_crc) {
    throw SnapshotError(SnapshotErrc::kFileCrcMismatch,
                        "file CRC does not match the stream");
  }
}

const Section* StateReader::find(std::string_view name) const {
  for (const Section& section : sections_) {
    if (section.name == name) return &section;
  }
  return nullptr;
}

Loader StateReader::open(std::string_view name) const {
  const Section* section = find(name);
  if (section == nullptr) {
    throw SnapshotError(SnapshotErrc::kMissingSection,
                        "snapshot has no such section", std::string(name));
  }
  return Loader(section->payload);
}

std::uint32_t StateReader::fingerprint() const {
  return pairs_fingerprint(sections_);
}

std::uint32_t fingerprint(std::span<const std::uint8_t> bytes) {
  return StateReader(bytes).fingerprint();
}

}  // namespace gw::snapshot
