// Typed snapshot failures.
//
// A snapshot that cannot be trusted must be refused loudly, never half
// restored: every structural problem — wrong magic, wrong format version,
// truncation, a CRC mismatch in any section, a section that reads past its
// own payload — maps to one SnapshotErrc value carried by SnapshotError,
// with the offending section named where one is known. Callers (tests, the
// gwsnap CLI, the Monte Carlo fork path) switch on code(), not on message
// text. See docs/SNAPSHOT.md for the format these errors guard.
#pragma once

#include <stdexcept>
#include <string>

namespace gw::snapshot {

enum class SnapshotErrc {
  kBadMagic,            // file does not start with "GWSNAP"
  kBadVersion,          // format version this build does not speak
  kTruncated,           // byte stream ends inside a header or payload
  kSectionCrcMismatch,  // a section's payload fails its CRC-32
  kFileCrcMismatch,     // the whole-file trailer CRC fails
  kDuplicateSection,    // two sections share a name
  kMissingSection,      // a reader asked for a section that is not there
  kSectionUnderrun,     // a persist() read past its section's payload
  kTrailingBytes,       // a persist() left unread bytes in its section
  kNotQuiescent,        // save attempted with unaccounted in-flight events
  kStateMismatch,       // restore-time cross-check failed (config drift)
};

[[nodiscard]] constexpr const char* to_string(SnapshotErrc code) {
  switch (code) {
    case SnapshotErrc::kBadMagic: return "bad_magic";
    case SnapshotErrc::kBadVersion: return "bad_version";
    case SnapshotErrc::kTruncated: return "truncated";
    case SnapshotErrc::kSectionCrcMismatch: return "section_crc_mismatch";
    case SnapshotErrc::kFileCrcMismatch: return "file_crc_mismatch";
    case SnapshotErrc::kDuplicateSection: return "duplicate_section";
    case SnapshotErrc::kMissingSection: return "missing_section";
    case SnapshotErrc::kSectionUnderrun: return "section_underrun";
    case SnapshotErrc::kTrailingBytes: return "trailing_bytes";
    case SnapshotErrc::kNotQuiescent: return "not_quiescent";
    case SnapshotErrc::kStateMismatch: return "state_mismatch";
  }
  return "unknown";
}

class SnapshotError : public std::runtime_error {
 public:
  SnapshotError(SnapshotErrc code, std::string detail,
                std::string section = {})
      : std::runtime_error(std::string("snapshot: ") + to_string(code) +
                           (section.empty() ? "" : " [" + section + "]") +
                           ": " + detail),
        code_(code),
        section_(std::move(section)) {}

  [[nodiscard]] SnapshotErrc code() const { return code_; }
  // The section the failure was localised to; empty for file-level errors.
  [[nodiscard]] const std::string& section() const { return section_; }

 private:
  SnapshotErrc code_;
  std::string section_;
};

}  // namespace gw::snapshot
