// Byte archive for the snapshot layer: one symmetric persist protocol.
//
// Every persistable class implements a single template member
//
//   template <class Archive> void persist(Archive& ar) { ar.value(x_); ... }
//
// instantiated with Saver (serialise) and Loader (restore). One function for
// both directions means the field list can never drift between save and
// load — the classic cause of silently-corrupt checkpoints. Direction-
// dependent work (rebuilding scheduled events, cross-checks) branches on
// `if constexpr (Archive::kIsSaver)`.
//
// The encoding is deliberately platform-independent and boring:
//   * integers: 8-byte little-endian two's complement, whatever the width;
//   * bool: one byte (0/1); enums: their underlying integer;
//   * double: IEEE-754 bit pattern as a little-endian u64;
//   * std::string: u64 length + raw bytes;
//   * vector/deque/map/optional/pair/array: size/flag prefix + elements;
//   * util::Rng: the full RngState (xoshiro words + construction seed);
//   * quantity types (Volts, Watts, ...): their double; Bytes: its count;
//     sim::SimTime / sim::Duration: their millisecond int64 (detected
//     structurally — this layer sits below sim and never includes it);
//   * anything else: its own persist() member, recursively.
//
// A Loader that runs out of payload throws SnapshotError(kSectionUnderrun)
// immediately — short reads never yield zero-filled state.
#pragma once

#include <bit>
#include <concepts>
#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "snapshot/error.h"
#include "util/rng.h"

namespace gw::snapshot {

namespace detail {

// sim::Duration / sim::SimTime, detected structurally so this layer does
// not depend on sim (which sits above it in the DAG).
template <class T>
concept DurationLike = requires(const T& t) {
  { t.millis() } -> std::convertible_to<std::int64_t>;
} && std::constructible_from<T, std::int64_t>;

template <class T>
concept TimePointLike = requires(const T& t) {
  { t.millis_since_epoch() } -> std::convertible_to<std::int64_t>;
} && std::constructible_from<T, std::int64_t>;

// util::Bytes and friends: an integer count.
template <class T>
concept CountLike = requires(const T& t) {
  { t.count() } -> std::convertible_to<std::int64_t>;
} && std::constructible_from<T, std::int64_t> && !DurationLike<T> &&
    !TimePointLike<T>;

// util::Quantity descendants (Volts, Watts, ...): a double value.
template <class T>
concept QuantityLike = requires(const T& t) {
  { t.value() } -> std::convertible_to<double>;
} && std::constructible_from<T, double> && !CountLike<T> &&
    !DurationLike<T> && !TimePointLike<T>;

}  // namespace detail

class Saver {
 public:
  static constexpr bool kIsSaver = true;

  // Component-owned rebuild records written so far (sim::persist_pending
  // bumps this); the fleet save cross-checks it against the kernel's live
  // event count to prove the snapshot accounts for every pending event.
  std::size_t rebuild_records = 0;

  [[nodiscard]] std::vector<std::uint8_t> take() { return std::move(bytes_); }
  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const {
    return bytes_;
  }

  template <class T>
  void value(const T& v) {
    using D = std::remove_cvref_t<T>;
    if constexpr (std::is_same_v<D, bool>) {
      bytes_.push_back(v ? 1 : 0);
    } else if constexpr (std::is_enum_v<D>) {
      put_u64(std::uint64_t(
          static_cast<std::underlying_type_t<D>>(v)));
    } else if constexpr (std::is_integral_v<D>) {
      put_u64(std::uint64_t(static_cast<std::int64_t>(v)));
    } else if constexpr (std::is_floating_point_v<D>) {
      put_u64(std::bit_cast<std::uint64_t>(double(v)));
    } else if constexpr (std::is_same_v<D, std::string>) {
      put_u64(v.size());
      bytes_.insert(bytes_.end(), v.begin(), v.end());
    } else if constexpr (std::is_same_v<D, util::Rng>) {
      const util::RngState s = v.state();
      for (const std::uint64_t word : s.words) put_u64(word);
      put_u64(s.seed);
    } else if constexpr (detail::DurationLike<D>) {
      put_u64(std::uint64_t(std::int64_t(v.millis())));
    } else if constexpr (detail::TimePointLike<D>) {
      put_u64(std::uint64_t(std::int64_t(v.millis_since_epoch())));
    } else if constexpr (detail::CountLike<D>) {
      put_u64(std::uint64_t(std::int64_t(v.count())));
    } else if constexpr (detail::QuantityLike<D>) {
      put_u64(std::bit_cast<std::uint64_t>(double(v.value())));
    } else {
      // Persistable class; const_cast lets one persist() serve both
      // directions (the saver never mutates through it).
      const_cast<D&>(v).persist(*this);
    }
  }

  template <class T>
  void value(const std::vector<T>& v) {
    put_u64(v.size());
    for (const T& item : v) value(item);
  }

  template <class T>
  void value(const std::deque<T>& v) {
    put_u64(v.size());
    for (const T& item : v) value(item);
  }

  template <class K, class V>
  void value(const std::map<K, V>& v) {
    put_u64(v.size());
    for (const auto& [key, item] : v) {
      value(key);
      value(item);
    }
  }

  template <class T>
  void value(const std::optional<T>& v) {
    value(v.has_value());
    if (v.has_value()) value(*v);
  }

  template <class A, class B>
  void value(const std::pair<A, B>& v) {
    value(v.first);
    value(v.second);
  }

  template <class T, std::size_t N>
  void value(const std::array<T, N>& v) {
    for (const T& item : v) value(item);
  }

 private:
  void put_u64(std::uint64_t x) {
    for (int i = 0; i < 8; ++i) {
      bytes_.push_back(std::uint8_t(x >> (8 * i)));
    }
  }

  std::vector<std::uint8_t> bytes_;
};

class Loader {
 public:
  static constexpr bool kIsSaver = false;

  explicit Loader(std::span<const std::uint8_t> payload) : data_(payload) {}

  template <class T>
  void value(T& v) {
    using D = std::remove_cvref_t<T>;
    if constexpr (std::is_same_v<D, bool>) {
      v = take_byte() != 0;
    } else if constexpr (std::is_enum_v<D>) {
      v = static_cast<D>(
          static_cast<std::underlying_type_t<D>>(std::int64_t(take_u64())));
    } else if constexpr (std::is_integral_v<D>) {
      v = static_cast<D>(std::int64_t(take_u64()));
    } else if constexpr (std::is_floating_point_v<D>) {
      v = static_cast<D>(std::bit_cast<double>(take_u64()));
    } else if constexpr (std::is_same_v<D, std::string>) {
      const std::uint64_t n = take_u64();
      const std::span<const std::uint8_t> raw = take_bytes(n);
      v.assign(raw.begin(), raw.end());
    } else if constexpr (std::is_same_v<D, util::Rng>) {
      util::RngState s;
      for (std::uint64_t& word : s.words) word = take_u64();
      s.seed = take_u64();
      v.restore_state(s);
    } else if constexpr (detail::DurationLike<D> ||
                         detail::TimePointLike<D> || detail::CountLike<D>) {
      v = D{std::int64_t(take_u64())};
    } else if constexpr (detail::QuantityLike<D>) {
      v = D{std::bit_cast<double>(take_u64())};
    } else {
      v.persist(*this);
    }
  }

  template <class T>
  void value(std::vector<T>& v) {
    const std::uint64_t n = take_u64();
    v.clear();
    v.reserve(std::size_t(n));
    for (std::uint64_t i = 0; i < n; ++i) {
      T item{};
      value(item);
      v.push_back(std::move(item));
    }
  }

  template <class T>
  void value(std::deque<T>& v) {
    const std::uint64_t n = take_u64();
    v.clear();
    for (std::uint64_t i = 0; i < n; ++i) {
      T item{};
      value(item);
      v.push_back(std::move(item));
    }
  }

  template <class K, class V>
  void value(std::map<K, V>& v) {
    const std::uint64_t n = take_u64();
    v.clear();
    for (std::uint64_t i = 0; i < n; ++i) {
      K key{};
      value(key);
      V item{};
      value(item);
      v.emplace(std::move(key), std::move(item));
    }
  }

  template <class T>
  void value(std::optional<T>& v) {
    bool present = false;
    value(present);
    if (present) {
      v.emplace();
      value(*v);
    } else {
      v.reset();
    }
  }

  template <class A, class B>
  void value(std::pair<A, B>& v) {
    value(v.first);
    value(v.second);
  }

  template <class T, std::size_t N>
  void value(std::array<T, N>& v) {
    for (T& item : v) value(item);
  }

  [[nodiscard]] std::size_t remaining() const {
    return data_.size() - pos_;
  }

  // A persist() must consume its section exactly; leftover bytes mean the
  // payload and the code disagree about the field list.
  void expect_end() const {
    if (pos_ != data_.size()) {
      throw SnapshotError(SnapshotErrc::kTrailingBytes,
                          std::to_string(data_.size() - pos_) +
                              " unread byte(s) after persist()");
    }
  }

  // Raw helpers (the framing reader reuses them).
  [[nodiscard]] std::uint64_t take_u64() {
    const std::span<const std::uint8_t> raw = take_bytes(8);
    std::uint64_t x = 0;
    for (int i = 0; i < 8; ++i) x |= std::uint64_t(raw[std::size_t(i)]) << (8 * i);
    return x;
  }

  [[nodiscard]] std::uint8_t take_byte() { return take_bytes(1)[0]; }

  [[nodiscard]] std::span<const std::uint8_t> take_bytes(std::uint64_t n) {
    if (n > data_.size() - pos_) {
      throw SnapshotError(SnapshotErrc::kSectionUnderrun,
                          "read of " + std::to_string(n) + " byte(s) with " +
                              std::to_string(data_.size() - pos_) +
                              " left");
    }
    const std::span<const std::uint8_t> out = data_.subspan(pos_, n);
    pos_ += n;
    return out;
  }

 private:
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace gw::snapshot
