// The four Table 2 power states, as shared vocabulary.
//
// The enum lives in the power layer — below the protocol and policy layers —
// because both need to *name* the states: core's PowerPolicy maps voltages
// onto them (Table 2) and proto's control-plane messages carry them over the
// wire (§VI). Keeping the type here keeps the layer DAG pointing downward;
// the policy that chooses between states stays in core/power_policy.h.
#pragma once

namespace gw::power {

enum class PowerState : int {
  kState0 = 0,  // survival: no communications at all
  kState1 = 1,
  kState2 = 2,
  kState3 = 3,
};

[[nodiscard]] constexpr int to_int(PowerState state) {
  return static_cast<int>(state);
}

[[nodiscard]] constexpr PowerState from_int(int value) {
  if (value <= 0) return PowerState::kState0;
  if (value >= 3) return PowerState::kState3;
  return static_cast<PowerState>(value);
}

}  // namespace gw::power
