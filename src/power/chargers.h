// Energy harvesting sources.
//
// The base station carries a 10 W solar panel and a 50 W wind turbine; the
// reference station has a solar panel plus a mains charger that only works
// while the café has power (the tourist season, April–September) — the
// constraint that forced the self-contained Gumsense design in the first
// place (§II). Chargers expose their instantaneous output given the
// environment; PowerSystem integrates them.
#pragma once

#include <algorithm>
#include <memory>
#include <string>

#include "env/environment.h"
#include "sim/time.h"
#include "util/units.h"

namespace gw::power {

class Charger {
 public:
  virtual ~Charger() = default;
  [[nodiscard]] virtual std::string name() const = 0;
  [[nodiscard]] virtual util::Watts output(sim::SimTime t,
                                           env::Environment& environment) = 0;
};

struct SolarPanelConfig {
  util::Watts rated{10.0};               // base-station panel (§III)
  double rated_irradiance = 1000.0;      // W/m^2 at which `rated` is reached
  double system_efficiency = 0.85;       // wiring + regulator losses
};

// Flat-plate panel; output scales with irradiance and is reduced by snow
// occlusion (deep snow buried the base station in the deployment).
class SolarPanel final : public Charger {
 public:
  explicit SolarPanel(SolarPanelConfig config) : config_(config) {}

  [[nodiscard]] std::string name() const override { return "solar"; }

  [[nodiscard]] util::Watts output(sim::SimTime t,
                                   env::Environment& environment) override {
    const double irradiance = environment.solar().irradiance(t).value();
    const double occlusion =
        environment.snow().panel_occlusion(t, environment.temperature());
    const double fraction = irradiance / config_.rated_irradiance;
    return config_.rated * std::min(1.2, fraction) *
           config_.system_efficiency * (1.0 - occlusion);
  }

 private:
  SolarPanelConfig config_;
};

struct WindTurbineConfig {
  util::Watts rated{50.0};  // base-station turbine (§III)
  double cut_in_ms = 3.0;
  double rated_speed_ms = 12.0;
  double cut_out_ms = 25.0;
};

// Standard cubic power curve between cut-in and rated speed; zero above
// cut-out (furling) or when buried by snow — the Iceland winter failure
// mode the paper calls out.
class WindTurbine final : public Charger {
 public:
  explicit WindTurbine(WindTurbineConfig config) : config_(config) {}

  [[nodiscard]] std::string name() const override { return "wind"; }

  [[nodiscard]] util::Watts output(sim::SimTime t,
                                   env::Environment& environment) override {
    if (environment.snow().turbine_buried(t, environment.temperature())) {
      return util::Watts{0.0};
    }
    const double v = environment.wind().speed(t).value();
    if (v < config_.cut_in_ms || v > config_.cut_out_ms) {
      return util::Watts{0.0};
    }
    if (v >= config_.rated_speed_ms) return config_.rated;
    const double span = config_.rated_speed_ms - config_.cut_in_ms;
    const double x = (v - config_.cut_in_ms) / span;
    return config_.rated * (x * x * x);
  }

 private:
  WindTurbineConfig config_;
};

struct MainsChargerConfig {
  util::Watts rated{30.0};
  int season_start_month = 4;  // April: café opens
  int season_end_month = 9;    // September: café closes
};

// Café mains input: full output inside the tourist season, nothing outside.
class MainsCharger final : public Charger {
 public:
  explicit MainsCharger(MainsChargerConfig config) : config_(config) {}

  [[nodiscard]] std::string name() const override { return "mains"; }

  [[nodiscard]] bool in_season(sim::SimTime t) const {
    const int month = sim::to_datetime(t).month;
    return month >= config_.season_start_month &&
           month <= config_.season_end_month;
  }

  [[nodiscard]] util::Watts output(sim::SimTime t,
                                   env::Environment&) override {
    return in_season(t) ? config_.rated : util::Watts{0.0};
  }

 private:
  MainsChargerConfig config_;
};

}  // namespace gw::power
