// PowerSystem: the station's electrical backbone.
//
// Owns the battery, the chargers, and a registry of switched loads (every
// hw device registers one — the Gumsense board's software-controlled
// peripheral power switches, §II). A periodic tick integrates harvest
// against consumption, tracks per-load and per-source energy ledgers, and
// detects the two edges the paper's recovery logic cares about:
//   * depletion (brown-out): all loads drop, MSP430 RAM/RTC are lost;
//   * recovery: external charging lifts the bank back above a restart
//     threshold and the station can cold-boot (§IV).
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "env/environment.h"
#include "fault/fault.h"
#include "obs/journal.h"
#include "power/battery.h"
#include "power/chargers.h"
#include "sim/simulation.h"
#include "snapshot/error.h"
#include "util/units.h"

namespace gw::power {

using LoadHandle = std::size_t;

struct PowerSystemConfig {
  BatteryConfig battery;
  sim::Duration tick = sim::minutes(1);
  double recovery_soc = 0.15;  // cold-boot allowed above this
  util::Volts nominal{12.0};
};

class PowerSystem {
 public:
  PowerSystem(sim::Simulation& simulation, env::Environment& environment,
              PowerSystemConfig config)
      : simulation_(simulation),
        environment_(environment),
        config_(config),
        battery_(config.battery) {}

  // --- wiring ------------------------------------------------------------

  void add_charger(std::unique_ptr<Charger> charger) {
    chargers_.push_back(std::move(charger));
    harvested_.emplace(chargers_.back()->name(), util::Joules{0.0});
  }

  // Registers a named load; it starts switched off.
  LoadHandle add_load(std::string name, util::Watts draw_when_on) {
    loads_.push_back(Load{std::move(name), draw_when_on, false});
    consumed_.emplace(loads_.back().name, util::Joules{0.0});
    return loads_.size() - 1;
  }

  void set_load(LoadHandle handle, bool on) {
    loads_.at(handle).on = on && !browned_out_;
  }

  // Some devices vary their draw (e.g. GPRS modem idle vs transmitting).
  void set_load_power(LoadHandle handle, util::Watts draw) {
    loads_.at(handle).draw = draw;
  }

  [[nodiscard]] bool load_on(LoadHandle handle) const {
    return loads_.at(handle).on;
  }

  // --- lifecycle ----------------------------------------------------------

  // Starts the periodic integration tick. Call once after wiring.
  void start() { schedule_tick(); }

  void on_brown_out(std::function<void()> fn) {
    brown_out_handlers_.push_back(std::move(fn));
  }
  void on_recovery(std::function<void()> fn) {
    recovery_handlers_.push_back(std::move(fn));
  }

  // Optional instrumentation (docs/OBSERVABILITY.md): brown-out/restore
  // edges go to the journal as they happen; the energy ledgers are mirrored
  // into gauges by publish_ledgers() (ledger writes stay plain doubles on
  // the per-tick path).
  void set_hooks(obs::Hooks hooks) { hooks_ = hooks; }

  // Attaches scripted fault windows (harvest_blackout: a buried panel or a
  // frozen turbine delivers severity-scaled-down watts); null detaches.
  void set_fault_oracle(fault::FaultOracle* oracle) { oracle_ = oracle; }

  // Snapshots the ledgers and battery health into the registry under the
  // "power" component: harvested_joules.<charger>, consumed_joules.<load>,
  // battery_soc, brown_outs. Call at any natural boundary (the station does
  // so at the end of each daily run).
  void publish_ledgers() {
    if (hooks_.metrics == nullptr) return;
    auto& metrics = *hooks_.metrics;
    for (const auto& [name, joules] : harvested_) {
      metrics.gauge("power", "harvested_joules." + name).set(joules.value());
    }
    for (const auto& [name, joules] : consumed_) {
      metrics.gauge("power", "consumed_joules." + name).set(joules.value());
    }
    metrics.gauge("power", "battery_soc").set(battery_.soc());
  }

  // --- observation ---------------------------------------------------------

  [[nodiscard]] sim::Duration tick_interval() const { return config_.tick; }
  [[nodiscard]] LeadAcidBattery& battery() { return battery_; }
  [[nodiscard]] const LeadAcidBattery& battery() const { return battery_; }
  [[nodiscard]] bool browned_out() const { return browned_out_; }

  // Instantaneous terminal voltage under the present net current — what the
  // Gumsense ADC samples every 30 minutes.
  [[nodiscard]] util::Volts terminal_voltage() {
    const util::Amps net = last_charge_current_ - total_load_current();
    return battery_.terminal_voltage(net);
  }

  [[nodiscard]] util::Watts total_load_power() const {
    util::Watts sum{0.0};
    for (const auto& load : loads_) {
      if (load.on) sum += load.draw;
    }
    return sum;
  }

  [[nodiscard]] util::Amps total_load_current() const {
    return total_load_power() / config_.nominal;
  }

  [[nodiscard]] util::Joules consumed_by(const std::string& name) const {
    const auto it = consumed_.find(name);
    if (it == consumed_.end()) {
      throw std::out_of_range("PowerSystem: unknown load " + name);
    }
    return it->second;
  }

  [[nodiscard]] util::Joules harvested_by(const std::string& name) const {
    const auto it = harvested_.find(name);
    if (it == harvested_.end()) {
      throw std::out_of_range("PowerSystem: unknown charger " + name);
    }
    return it->second;
  }

  [[nodiscard]] util::Joules total_consumed() const {
    util::Joules sum{0.0};
    for (const auto& [name, joules] : consumed_) sum += joules;
    return sum;
  }

  [[nodiscard]] util::Joules total_harvested() const {
    util::Joules sum{0.0};
    for (const auto& [name, joules] : harvested_) sum += joules;
    return sum;
  }

  [[nodiscard]] int brown_out_count() const { return brown_out_count_; }

  // Snapshot support (docs/SNAPSHOT.md). Chargers, handlers, hooks and the
  // oracle pointer are wiring the restored world rebuilds; load *names* are
  // saved as a cross-check that the wiring actually matches.
  template <class Archive>
  void persist(Archive& ar) {
    double soc = battery_.soc();
    ar.value(soc);
    if constexpr (!Archive::kIsSaver) battery_.set_soc(soc);
    std::uint64_t load_count = loads_.size();
    ar.value(load_count);
    if (load_count != loads_.size()) {
      throw snapshot::SnapshotError(
          snapshot::SnapshotErrc::kStateMismatch,
          "snapshot has " + std::to_string(load_count) +
              " load(s), this world wired " + std::to_string(loads_.size()));
    }
    for (auto& load : loads_) {
      std::string name = load.name;
      ar.value(name);
      if (name != load.name) {
        throw snapshot::SnapshotError(snapshot::SnapshotErrc::kStateMismatch,
                                      "load '" + name +
                                          "' in snapshot, '" + load.name +
                                          "' in this world");
      }
      ar.value(load.draw);
      ar.value(load.on);
    }
    ar.value(consumed_);
    ar.value(harvested_);
    ar.value(last_charge_current_);
    ar.value(browned_out_);
    ar.value(brown_out_count_);
    sim::persist_pending(ar, simulation_, tick_event_,
                         [this] { fire_tick(); });
  }

  // Single integration step, public so unit tests can drive it directly
  // without a Simulation.
  void tick(sim::Duration dt) {
    const sim::SimTime now = simulation_.now();
    const util::Celsius temp = environment_.temperature().air(now);
    const double dt_hours = dt.to_hours();
    const double dt_seconds = dt.to_seconds();

    const double harvest_factor =
        oracle_ != nullptr
            ? 1.0 - oracle_->severity(fault::FaultKind::kHarvestBlackout, now)
            : 1.0;
    util::Watts harvest_total{0.0};
    for (const auto& charger : chargers_) {
      const util::Watts watts =
          charger->output(now, environment_) * harvest_factor;
      harvested_[charger->name()] += util::energy(watts, dt_seconds);
      harvest_total += watts;
    }
    last_charge_current_ = harvest_total / config_.nominal;

    for (auto& load : loads_) {
      if (load.on) {
        consumed_[load.name] += util::energy(load.draw, dt_seconds);
      }
    }

    battery_.step(last_charge_current_, total_load_current(), dt_hours, temp);

    if (battery_.empty() && !browned_out_) {
      browned_out_ = true;
      ++brown_out_count_;
      for (auto& load : loads_) load.on = false;  // hardware brown-out
      if (hooks_.metrics != nullptr) {
        hooks_.metrics->counter("power", "brown_outs").increment();
      }
      if (hooks_.journal != nullptr) {
        hooks_.journal->record(now.millis_since_epoch(),
                               obs::EventType::kBrownOut, "power",
                               double(brown_out_count_));
      }
      for (const auto& fn : brown_out_handlers_) fn();
    } else if (browned_out_ && battery_.soc() >= config_.recovery_soc) {
      browned_out_ = false;
      if (hooks_.metrics != nullptr) {
        hooks_.metrics->counter("power", "restores").increment();
      }
      if (hooks_.journal != nullptr) {
        hooks_.journal->record(now.millis_since_epoch(),
                               obs::EventType::kPowerRestored, "power",
                               battery_.soc());
      }
      for (const auto& fn : recovery_handlers_) fn();
    }
  }

 private:
  struct Load {
    std::string name;
    util::Watts draw{0.0};
    bool on = false;
  };

  void schedule_tick() {
    tick_event_ = simulation_.schedule_in(config_.tick, [this] { fire_tick(); });
  }

  void fire_tick() {
    tick(config_.tick);
    schedule_tick();
  }

  sim::Simulation& simulation_;
  env::Environment& environment_;
  PowerSystemConfig config_;
  LeadAcidBattery battery_;
  std::vector<std::unique_ptr<Charger>> chargers_;
  std::vector<Load> loads_;
  std::map<std::string, util::Joules> consumed_;
  std::map<std::string, util::Joules> harvested_;
  util::Amps last_charge_current_{0.0};
  obs::Hooks hooks_;
  fault::FaultOracle* oracle_ = nullptr;
  sim::EventId tick_event_ = 0;
  bool browned_out_ = false;
  int brown_out_count_ = 0;
  std::vector<std::function<void()>> brown_out_handlers_;
  std::vector<std::function<void()>> recovery_handlers_;
};

}  // namespace gw::power
