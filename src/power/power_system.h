// PowerSystem: the station's electrical backbone.
//
// Owns the battery, the chargers, and a registry of energy components
// (every hw device registers one — the Gumsense board's software-controlled
// peripheral power switches, §II). Each component is an activity-state
// machine (energy::ComponentModel, docs/ENERGY.md): instead of a flat
// on/off load, devices report transitions between named states (boot,
// run@400MHz, registering, tx, ...) whose draws may depend on air
// temperature. A periodic tick integrates harvest against consumption,
// keeps two views of the books —
//   * legacy per-device double ledgers (consumed_by / harvested_by), and
//   * exact integer-microjoule per-component, per-state ledgers whose sum
//     equals the battery-side delivered meter to the microjoule
//     (the conservation invariant; integer addition is associative so no
//     grouping of the sum can break it) —
// and detects the two edges the paper's recovery logic cares about:
//   * depletion (brown-out): all components drop to their off state,
//     MSP430 RAM/RTC are lost; transitions attempted while browned out are
//     refused and journalled (obs::EventType::kActivityDropped), never
//     silently parked for the post-recovery world;
//   * recovery: external charging lifts the bank back above a restart
//     threshold and the station can cold-boot (§IV).
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "energy/component_model.h"
#include "env/environment.h"
#include "fault/fault.h"
#include "obs/journal.h"
#include "power/battery.h"
#include "power/chargers.h"
#include "sim/simulation.h"
#include "snapshot/error.h"
#include "util/units.h"

namespace gw::power {

using LoadHandle = std::size_t;

struct PowerSystemConfig {
  BatteryConfig battery;
  sim::Duration tick = sim::minutes(1);
  double recovery_soc = 0.15;  // cold-boot allowed above this
  util::Volts nominal{12.0};
};

class PowerSystem {
 public:
  PowerSystem(sim::Simulation& simulation, env::Environment& environment,
              PowerSystemConfig config)
      : simulation_(simulation),
        environment_(environment),
        config_(config),
        battery_(config.battery) {}

  // --- wiring ------------------------------------------------------------

  void add_charger(std::unique_ptr<Charger> charger) {
    chargers_.push_back(std::move(charger));
    harvested_.emplace(chargers_.back()->name(), util::Joules{0.0});
    harvested_uj_.emplace(chargers_.back()->name(), 0);
  }

  // Registers an activity-state component; it starts in state 0 (off).
  LoadHandle add_component(energy::ComponentSpec spec) {
    components_.emplace_back(std::move(spec));
    consumed_.emplace(components_.back().name(), util::Joules{0.0});
    return components_.size() - 1;
  }

  // Legacy wiring shim: a plain switched load is a two-state component.
  LoadHandle add_load(std::string name, util::Watts draw_when_on) {
    return add_component(energy::switched_load(std::move(name), draw_when_on));
  }

  // Base-activity transition. While browned out only the off state is
  // reachable: anything else is refused and journalled as a dropped
  // transition rather than silently applied to the post-recovery world.
  void set_activity(LoadHandle handle, std::size_t state) {
    energy::ComponentModel& component = components_.at(handle);
    if (browned_out_ && state != 0) {
      journal_dropped(component, state);
      return;
    }
    component.set_activity(state);
  }

  // Attribution overlay (docs/ENERGY.md): a contiguous run of
  // (state, dwell) spans starting now, for devices whose work is computed
  // synchronously (e.g. a whole GPRS session). Refused while browned out.
  void plan_activity(
      LoadHandle handle,
      const std::vector<std::pair<std::size_t, sim::Duration>>& segments) {
    energy::ComponentModel& component = components_.at(handle);
    if (browned_out_) {
      if (!segments.empty()) journal_dropped(component, segments.front().first);
      return;
    }
    component.set_plan(simulation_.now(), segments);
  }

  void set_load(LoadHandle handle, bool on) {
    set_activity(handle, on ? 1 : 0);
  }

  // Legacy draw mutation (state 1 of a switched load). Like any other
  // transition it is refused and journalled during a brown-out — the new
  // draw must not stick to the post-recovery component.
  void set_load_power(LoadHandle handle, util::Watts draw) {
    energy::ComponentModel& component = components_.at(handle);
    if (browned_out_) {
      journal_dropped(component, component.activity());
      return;
    }
    component.set_state_draw(1, draw);
  }

  [[nodiscard]] bool load_on(LoadHandle handle) const {
    return components_.at(handle).activity() != 0;
  }

  // --- lifecycle ----------------------------------------------------------

  // Starts the periodic integration tick. Call once after wiring.
  void start() { schedule_tick(); }

  void on_brown_out(std::function<void()> fn) {
    brown_out_handlers_.push_back(std::move(fn));
  }
  void on_recovery(std::function<void()> fn) {
    recovery_handlers_.push_back(std::move(fn));
  }

  // Optional instrumentation (docs/OBSERVABILITY.md): brown-out/restore
  // edges and dropped transitions go to the journal as they happen; the
  // energy ledgers are mirrored into gauges by publish_ledgers() (ledger
  // writes stay plain integers/doubles on the per-tick path).
  void set_hooks(obs::Hooks hooks) { hooks_ = hooks; }

  // Attaches scripted fault windows (harvest_blackout: a buried panel or a
  // frozen turbine delivers severity-scaled-down watts); null detaches.
  void set_fault_oracle(fault::FaultOracle* oracle) { oracle_ = oracle; }

  // Snapshots the ledgers and battery health into the registry. Legacy
  // totals stay under the "power" component (harvested_joules.<charger>,
  // consumed_joules.<load>, battery_soc, brown_outs); the per-state
  // breakdown lands under "energy" as <component>.<state>.joules /
  // .seconds plus the two conservation meters. Call at any natural
  // boundary (the station does so at the end of each daily run).
  void publish_ledgers() {
    if (hooks_.metrics == nullptr) return;
    auto& metrics = *hooks_.metrics;
    for (const auto& [name, joules] : harvested_) {
      metrics.gauge("power", "harvested_joules." + name).set(joules.value());
    }
    for (const auto& [name, joules] : consumed_) {
      metrics.gauge("power", "consumed_joules." + name).set(joules.value());
    }
    metrics.gauge("power", "battery_soc").set(battery_.soc());
    for (const auto& component : components_) {
      for (std::size_t i = 0; i < component.state_count(); ++i) {
        const std::string key = component.name() + "." + component.state(i).name;
        metrics.gauge("energy", key + ".joules")
            .set(double(component.energy_uj(i)) / 1e6);
        metrics.gauge("energy", key + ".seconds")
            .set(component.active_seconds(i));
      }
    }
    metrics.gauge("energy", "battery_delivered_joules")
        .set(double(delivered_uj_) / 1e6);
    metrics.gauge("energy", "harvest_absorbed_joules")
        .set(double(absorbed_uj_) / 1e6);
  }

  // --- observation ---------------------------------------------------------

  [[nodiscard]] sim::Duration tick_interval() const { return config_.tick; }
  [[nodiscard]] LeadAcidBattery& battery() { return battery_; }
  [[nodiscard]] const LeadAcidBattery& battery() const { return battery_; }
  [[nodiscard]] bool browned_out() const { return browned_out_; }

  [[nodiscard]] std::size_t component_count() const {
    return components_.size();
  }
  [[nodiscard]] const energy::ComponentModel& component(
      LoadHandle handle) const {
    return components_.at(handle);
  }
  [[nodiscard]] const energy::ComponentModel* find_component(
      const std::string& name) const {
    for (const auto& component : components_) {
      if (component.name() == name) return &component;
    }
    return nullptr;
  }

  // Battery-side conservation meters: every microjoule quantum charged to
  // any component ledger is simultaneously added to delivered_uj_, and
  // every harvest quantum to absorbed_uj_ — so
  //   sum over components/states of energy_uj == delivered_microjoules()
  // holds exactly, always.
  [[nodiscard]] energy::MicroJoules delivered_microjoules() const {
    return delivered_uj_;
  }
  [[nodiscard]] energy::MicroJoules absorbed_microjoules() const {
    return absorbed_uj_;
  }
  [[nodiscard]] energy::MicroJoules component_microjoules() const {
    energy::MicroJoules total = 0;
    for (const auto& component : components_) total += component.total_uj();
    return total;
  }
  [[nodiscard]] energy::MicroJoules harvested_microjoules(
      const std::string& name) const {
    const auto it = harvested_uj_.find(name);
    if (it == harvested_uj_.end()) {
      throw std::out_of_range("PowerSystem: unknown charger " + name);
    }
    return it->second;
  }

  // Instantaneous terminal voltage under the present net current — what the
  // Gumsense ADC samples every 30 minutes.
  [[nodiscard]] util::Volts terminal_voltage() {
    const util::Amps net = last_charge_current_ - total_load_current();
    return battery_.terminal_voltage(net);
  }

  [[nodiscard]] util::Watts total_load_power() const {
    const sim::SimTime now = simulation_.now();
    util::Watts sum{0.0};
    for (const auto& component : components_) {
      sum += component.draw_at(component.active_at(now), last_temp_);
    }
    return sum;
  }

  [[nodiscard]] util::Amps total_load_current() const {
    return total_load_power() / config_.nominal;
  }

  [[nodiscard]] util::Joules consumed_by(const std::string& name) const {
    const auto it = consumed_.find(name);
    if (it == consumed_.end()) {
      throw std::out_of_range("PowerSystem: unknown load " + name);
    }
    return it->second;
  }

  [[nodiscard]] util::Joules harvested_by(const std::string& name) const {
    const auto it = harvested_.find(name);
    if (it == harvested_.end()) {
      throw std::out_of_range("PowerSystem: unknown charger " + name);
    }
    return it->second;
  }

  [[nodiscard]] util::Joules total_consumed() const {
    util::Joules sum{0.0};
    for (const auto& [name, joules] : consumed_) sum += joules;
    return sum;
  }

  [[nodiscard]] util::Joules total_harvested() const {
    util::Joules sum{0.0};
    for (const auto& [name, joules] : harvested_) sum += joules;
    return sum;
  }

  [[nodiscard]] int brown_out_count() const { return brown_out_count_; }

  // Snapshot support (docs/SNAPSHOT.md). Chargers, handlers, hooks and the
  // oracle pointer are wiring the restored world rebuilds; component names
  // and state counts are saved as a cross-check that the wiring actually
  // matches (energy::ComponentModel::persist enforces both).
  template <class Archive>
  void persist(Archive& ar) {
    double soc = battery_.soc();
    ar.value(soc);
    if constexpr (!Archive::kIsSaver) battery_.set_soc(soc);
    std::uint64_t component_count = components_.size();
    ar.value(component_count);
    if (component_count != components_.size()) {
      throw snapshot::SnapshotError(
          snapshot::SnapshotErrc::kStateMismatch,
          "snapshot has " + std::to_string(component_count) +
              " component(s), this world wired " +
              std::to_string(components_.size()));
    }
    for (auto& component : components_) component.persist(ar);
    ar.value(consumed_);
    ar.value(harvested_);
    ar.value(harvested_uj_);
    ar.value(delivered_uj_);
    ar.value(absorbed_uj_);
    ar.value(last_temp_);
    ar.value(last_charge_current_);
    ar.value(browned_out_);
    ar.value(brown_out_count_);
    sim::persist_pending(ar, simulation_, tick_event_,
                         [this] { fire_tick(); });
  }

  // Single integration step, public so unit tests can drive it directly
  // without a Simulation.
  void tick(sim::Duration dt) {
    const sim::SimTime now = simulation_.now();
    const util::Celsius temp = environment_.temperature().air(now);
    const double dt_hours = dt.to_hours();
    const double dt_seconds = dt.to_seconds();
    last_temp_ = temp;

    const double harvest_factor =
        oracle_ != nullptr
            ? 1.0 - oracle_->severity(fault::FaultKind::kHarvestBlackout, now)
            : 1.0;
    util::Watts harvest_total{0.0};
    for (const auto& charger : chargers_) {
      const util::Watts watts =
          charger->output(now, environment_) * harvest_factor;
      harvested_[charger->name()] += util::energy(watts, dt_seconds);
      const energy::MicroJoules uj = energy::quantum(watts, dt_seconds);
      harvested_uj_[charger->name()] += uj;
      absorbed_uj_ += uj;
      harvest_total += watts;
    }
    last_charge_current_ = harvest_total / config_.nominal;

    for (auto& component : components_) {
      // Physics: the state active at tick time governs the whole interval
      // (transitions land on scheduled events, which fire on tick
      // boundaries' clock anyway), so battery drain is identical to the
      // old flat-load model whenever a component's powered states share
      // one draw.
      const std::size_t active = component.active_at(now);
      const util::Watts draw = component.draw_at(active, temp);
      consumed_[component.name()] += util::energy(draw, dt_seconds);
      // Attribution: split the interval across the plan overlay so
      // sub-tick spans (GPRS registration vs tx) land in the right
      // per-state ledger. Each quantum also feeds the battery-side meter,
      // keeping the conservation invariant exact by construction.
      component.attribute(
          now - dt, now,
          [&](std::size_t state, sim::SimTime from, sim::SimTime to) {
            const sim::Duration span = to - from;
            const energy::MicroJoules uj = energy::quantum(
                component.draw_at(state, temp), span.to_seconds());
            component.charge(state, uj, span.millis());
            delivered_uj_ += uj;
          });
      component.prune_plan(now);
    }

    battery_.step(last_charge_current_, total_load_current(), dt_hours, temp);

    if (battery_.empty() && !browned_out_) {
      browned_out_ = true;
      ++brown_out_count_;
      // Hardware brown-out: every component collapses to its off state
      // and any attribution plan is void.
      for (auto& component : components_) component.set_activity(0);
      if (hooks_.metrics != nullptr) {
        hooks_.metrics->counter("power", "brown_outs").increment();
      }
      if (hooks_.journal != nullptr) {
        hooks_.journal->record(now.millis_since_epoch(),
                               obs::EventType::kBrownOut, "power",
                               double(brown_out_count_));
      }
      for (const auto& fn : brown_out_handlers_) fn();
    } else if (browned_out_ && battery_.soc() >= config_.recovery_soc) {
      browned_out_ = false;
      if (hooks_.metrics != nullptr) {
        hooks_.metrics->counter("power", "restores").increment();
      }
      if (hooks_.journal != nullptr) {
        hooks_.journal->record(now.millis_since_epoch(),
                               obs::EventType::kPowerRestored, "power",
                               battery_.soc());
      }
      for (const auto& fn : recovery_handlers_) fn();
    }
  }

 private:
  void journal_dropped(const energy::ComponentModel& component,
                       std::size_t requested) {
    if (hooks_.journal == nullptr) return;
    hooks_.journal->record(simulation_.now().millis_since_epoch(),
                           obs::EventType::kActivityDropped, component.name(),
                           double(requested), double(component.activity()));
  }

  void schedule_tick() {
    tick_event_ = simulation_.schedule_in(config_.tick, [this] { fire_tick(); });
  }

  void fire_tick() {
    tick(config_.tick);
    schedule_tick();
  }

  sim::Simulation& simulation_;
  env::Environment& environment_;
  PowerSystemConfig config_;
  LeadAcidBattery battery_;
  // gwlint: allow(persist-coverage): polymorphic chargers are built from
  // config at construction; their dynamics live in battery_/components_
  std::vector<std::unique_ptr<Charger>> chargers_;
  std::vector<energy::ComponentModel> components_;
  std::map<std::string, util::Joules> consumed_;
  std::map<std::string, util::Joules> harvested_;
  std::map<std::string, energy::MicroJoules> harvested_uj_;
  energy::MicroJoules delivered_uj_ = 0;
  energy::MicroJoules absorbed_uj_ = 0;
  util::Celsius last_temp_{25.0};
  util::Amps last_charge_current_{0.0};
  obs::Hooks hooks_;
  fault::FaultOracle* oracle_ = nullptr;
  sim::EventId tick_event_ = 0;
  bool browned_out_ = false;
  int brown_out_count_ = 0;
  std::vector<std::function<void()>> brown_out_handlers_;
  std::vector<std::function<void()>> recovery_handlers_;
};

}  // namespace gw::power
