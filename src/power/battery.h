// Lead-acid battery bank model.
//
// The stations run from a 12 V lead-acid bank (the paper's worked example
// uses 36 Ah). The model is deliberately shape-level, not electrochemical:
//   * open-circuit voltage is linear in state of charge (~11.9 V empty,
//     ~12.75 V full at rest) — the range Table 2's thresholds live in;
//   * terminal voltage adds an IR term: charging lifts it toward the
//     regulator float limit (Fig 5 peaks ~14.5 V at midday), loads dip it
//     (Fig 5's 2-hourly dGPS dips in state 3);
//   * charge acceptance tapers near full, coulombic efficiency < 1;
//   * usable capacity derates in the cold;
//   * hitting empty is a *brown-out*: the MSP430 loses its RAM schedule and
//     the RTC resets (§IV) — callers watch the depleted()/recovered edge.
#pragma once

#include <algorithm>

#include "util/units.h"

namespace gw::power {

struct BatteryConfig {
  util::AmpHours capacity{36.0};  // paper's worked example
  util::Volts ocv_empty{11.9};   // rest voltage at the knee (see knee_soc)
  util::Volts ocv_full{12.75};
  // Below knee_soc the cell voltage collapses toward ocv_at_zero — the
  // steep tail of a lead-acid discharge curve. Without it the Table 2
  // state-0 threshold (11.5 V) could never be crossed at rest.
  double knee_soc = 0.15;
  util::Volts ocv_at_zero{10.5};
  util::Ohms discharge_resistance{0.25};
  util::Ohms charge_resistance{0.5};
  util::Volts float_limit{14.5};   // regulator clamp; Fig 5 ceiling
  double coulombic_efficiency = 0.88;
  double acceptance_taper_start = 0.90;  // SoC where charging tapers
  double capacity_temp_coeff = 0.008;    // fractional capacity per degC from 25
  double min_capacity_fraction = 0.55;   // deep-cold floor
  double self_discharge_per_day = 0.001;
  double initial_soc = 0.9;
};

class LeadAcidBattery {
 public:
  explicit LeadAcidBattery(BatteryConfig config)
      : config_(config), soc_(config.initial_soc) {}

  [[nodiscard]] double soc() const { return soc_; }
  void set_soc(double soc) { soc_ = std::clamp(soc, 0.0, 1.0); }

  [[nodiscard]] util::AmpHours nominal_capacity() const {
    return config_.capacity;
  }

  // Temperature-derated usable capacity.
  [[nodiscard]] util::AmpHours effective_capacity(util::Celsius temp) const {
    const double fraction =
        std::clamp(1.0 + config_.capacity_temp_coeff * (temp.value() - 25.0),
                   config_.min_capacity_fraction, 1.05);
    return config_.capacity * fraction;
  }

  [[nodiscard]] util::Volts open_circuit_voltage() const {
    if (soc_ >= config_.knee_soc) {
      // Linear plateau: ocv_empty at the knee up to ocv_full when full.
      const double x =
          (soc_ - config_.knee_soc) / (1.0 - config_.knee_soc);
      return config_.ocv_empty + (config_.ocv_full - config_.ocv_empty) * x;
    }
    // Steep collapse below the knee.
    const double x = soc_ / config_.knee_soc;
    return config_.ocv_at_zero +
           (config_.ocv_empty - config_.ocv_at_zero) * x;
  }

  // Terminal voltage under the given net current (positive = charging).
  [[nodiscard]] util::Volts terminal_voltage(util::Amps net_current) const {
    const util::Volts ocv = open_circuit_voltage();
    if (net_current.value() >= 0.0) {
      const util::Volts v = ocv + net_current * config_.charge_resistance;
      return std::min(v, config_.float_limit);
    }
    return ocv + net_current * config_.discharge_resistance;
  }

  // How much of an offered charging current the battery accepts (tapers as
  // it approaches full).
  [[nodiscard]] util::Amps accepted_charge_current(util::Amps offered) const {
    if (soc_ < config_.acceptance_taper_start) return offered;
    const double headroom =
        (1.0 - soc_) / (1.0 - config_.acceptance_taper_start);
    return offered * std::clamp(headroom, 0.0, 1.0);
  }

  // Integrates one step. charge/load are the currents over the interval;
  // duration in hours. Returns true if the battery hit empty this step.
  bool step(util::Amps charge_current, util::Amps load_current,
            double duration_hours, util::Celsius temp) {
    const util::Amps accepted = accepted_charge_current(charge_current);
    const double delta_ah =
        (accepted.value() * config_.coulombic_efficiency -
         load_current.value()) *
        duration_hours;
    const double cap = effective_capacity(temp).value();
    double soc = soc_ + delta_ah / cap;
    soc -= config_.self_discharge_per_day * (duration_hours / 24.0);
    const bool was_empty = soc_ <= 0.0;
    soc_ = std::clamp(soc, 0.0, 1.0);
    return !was_empty && soc_ <= 0.0;
  }

  // Tolerance absorbs floating-point residue from repeated integration.
  [[nodiscard]] bool empty() const { return soc_ <= 1e-9; }

  [[nodiscard]] const BatteryConfig& config() const { return config_; }

 private:
  BatteryConfig config_;
  double soc_;
};

}  // namespace gw::power
