// ShardedFleet: a fleet world partitioned across a ShardedSimulation.
//
// The serial Fleet runs every station on one kernel with one shared
// environment and one Southampton server. That is exactly what blocks
// within-world parallelism, so the sharded assembly changes the ownership
// story (docs/PARALLELISM.md):
//
//   * stations are partitioned by *sync group* (a dGPS pair records in
//     lockstep and chats daily — keep it on one shard; an ungrouped
//     station is its own singleton group), groups round-robined over
//     shards in spec order;
//   * every mutable dependency becomes station-owned: each station gets
//     its own env::Environment replica (the environment models are
//     call-history-stateful, so sharing one across shards would both race
//     and make draws depend on the partition), its own SouthamptonServer
//     *replica* (the only server object its daily run touches), and its
//     own FaultOracle + fault instrumentation pair;
//   * cross-station coupling happens only through timestamped messages
//     drained from the replicas at window barriers: fresh sync reports are
//     relayed into every group peer's replica as kernel-exact events at
//     report time + latency, and uploads / beacons / special results flow
//     to the authoritative *hub* server as coordinator messages. The
//     latency is the GPRS session set-up floor (derive_fleet_lookahead) —
//     uniform even between stations that happen to share a shard, so
//     behaviour never depends on who was co-resident.
//
// The result: rollup gauges, per-station metrics/journals, traces, hub
// ledgers, and events_executed() are byte-identical at any worker count
// and any shard count (tests/system/sharded_determinism_test.cpp). A
// sharded world is *not* draw-for-draw identical to the serial Fleet —
// per-station environment replicas change which rng streams interleave —
// it is the serial world of the sharded semantics, defined as shards=1.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "env/environment.h"
#include "fault/fault.h"
#include "obs/journal.h"
#include "obs/metrics.h"
#include "sim/sharded_simulation.h"
#include "sim/trace.h"
#include "station/fleet.h"
#include "station/probe_node.h"
#include "station/southampton.h"
#include "station/station.h"

namespace gw::station {

// The conservative lookahead of a fleet: the fastest any station-to-server
// interaction can cross a shard boundary. A GPRS session must register
// before the first byte moves (§VI: ~35 s), so the floor is the minimum
// registration time over the fleet plus one second of transfer margin.
// Falls back to one minute for an empty fleet.
[[nodiscard]] sim::Duration derive_fleet_lookahead(const FleetConfig& config);

struct ShardedFleetConfig {
  FleetConfig fleet;
  // Desired shard count; clamped to [1, number of sync groups].
  std::size_t shards = 1;
  // Worker threads advancing shards (0 = hardware concurrency, capped at
  // the shard count).
  unsigned workers = 0;
  // Cross-shard message latency = window length. Non-positive (the
  // default) derives derive_fleet_lookahead(fleet). Must cover the window:
  // the ShardedSimulation uses this same value as its lookahead.
  sim::Duration latency{0};
};

class ShardedFleet {
 public:
  explicit ShardedFleet(ShardedFleetConfig config);

  ShardedFleet(const ShardedFleet&) = delete;
  ShardedFleet& operator=(const ShardedFleet&) = delete;

  // Advances the whole system by `days` simulated days (whole windows; the
  // final, deadline-truncated window ends exactly at the deadline).
  void run_days(double days);

  // --- stations (spec order, like Fleet) ----------------------------------

  [[nodiscard]] std::size_t size() const { return worlds_.size(); }
  [[nodiscard]] Station& station(std::size_t index) {
    return *worlds_[index]->station;
  }
  [[nodiscard]] const Station& station(std::size_t index) const {
    return *worlds_[index]->station;
  }
  [[nodiscard]] Station* find_station(const std::string& name);

  [[nodiscard]] std::vector<std::unique_ptr<ProbeNode>>& probes(
      std::size_t index) {
    return worlds_[index]->probes;
  }
  [[nodiscard]] int probes_alive() const;

  // --- partition ----------------------------------------------------------

  [[nodiscard]] sim::ShardedSimulation& sharded() { return *sharded_; }
  [[nodiscard]] std::size_t shard_count() const {
    return sharded_->shard_count();
  }
  [[nodiscard]] sim::Duration latency() const { return config_.latency; }
  // Shard of station `index`; group members always share one shard.
  [[nodiscard]] std::size_t shard_of(std::size_t index) const {
    return worlds_[index]->shard;
  }

  // --- per-station worlds -------------------------------------------------

  // The replica server station `index` talks to (its queues, its sync
  // ledger view). Operator actions go through the fleet-level helpers
  // below, which route to the right replica.
  [[nodiscard]] SouthamptonServer& station_server(std::size_t index) {
    return *worlds_[index]->server;
  }
  [[nodiscard]] const sim::Trace& station_trace(std::size_t index) const {
    return worlds_[index]->trace;
  }
  [[nodiscard]] const obs::MetricsRegistry& station_fault_metrics(
      std::size_t index) const {
    return worlds_[index]->fault_metrics;
  }
  [[nodiscard]] const obs::EventJournal& station_fault_journal(
      std::size_t index) const {
    return worlds_[index]->fault_journal;
  }

  // --- operator actions (coordinator context, between runs) ---------------

  // Each returns what the station's replica said: false when its bounded
  // per-station queue refused the item (SouthamptonServer backpressure).
  // gw::context(coordinator)
  bool queue_special(const std::string& station_name,
                     core::SpecialCommand command);
  // gw::context(coordinator)
  bool queue_update(const std::string& station_name,
                    core::UpdatePackage package);
  // gw::context(coordinator)
  bool queue_config_update(const std::string& station_name,
                           core::ConfigUpdate update);
  // gw::context(coordinator)
  void set_manual_override(std::optional<core::PowerState> override_state);
  // gw::context(coordinator)
  void set_group_override(const std::string& group,
                          std::optional<core::PowerState> override_state);

  // --- the hub ------------------------------------------------------------

  // The authoritative Southampton ledger: receives every upload, beacon,
  // and special result as barrier messages at +latency. Mutated only on
  // the coordinator thread; read it between runs.
  [[nodiscard]] SouthamptonServer& hub() { return hub_; }
  [[nodiscard]] const SouthamptonServer& hub() const { return hub_; }

  // --- fleet rollup (same gauges as Fleet::update_rollup) -----------------

  // gw::context(coordinator)
  [[nodiscard]] std::vector<Fleet::GroupStatus> group_status() const;
  // gw::context(coordinator)
  obs::MetricsRegistry& update_rollup();
  [[nodiscard]] obs::MetricsRegistry& rollup_metrics() { return rollup_; }
  [[nodiscard]] obs::EventJournal& rollup_journal() {
    return rollup_journal_;
  }

  // --- merged emission (partition-invariant order) ------------------------

  // Station + fault journals merged by (time, station, seq); fault
  // journals are labelled "<station>/fault".
  [[nodiscard]] std::vector<obs::MergedEvent> merged_journal() const;
  // Per-station trace series concatenated in series-name order.
  [[nodiscard]] std::vector<std::string> merged_trace_series_names() const;

  [[nodiscard]] std::string probe_series_name(const std::string& station_name,
                                              int probe_id) const;
  [[nodiscard]] std::uint64_t events_executed() const {
    return sharded_->events_executed();
  }
  [[nodiscard]] const ShardedFleetConfig& config() const { return config_; }

 private:
  // Everything one station owns or is the only writer of while its shard
  // runs. unique_ptr-held so addresses stay stable across construction.
  struct World {
    std::size_t shard = 0;
    std::string group;                // "" when ungrouped (self-syncing)
    std::vector<std::size_t> peers;   // same-group worlds, excluding self
    std::unique_ptr<env::Environment> environment;
    obs::MetricsRegistry fault_metrics;
    obs::EventJournal fault_journal;
    std::unique_ptr<fault::FaultOracle> oracle;  // null when no fault plan
    std::unique_ptr<SouthamptonServer> server;   // the station's replica
    std::unique_ptr<Station> station;
    std::vector<std::unique_ptr<ProbeNode>> probes;
    sim::Trace trace;
  };

  // Barrier hook: drains every replica's outbound ledgers into messages.
  // gw::context(coordinator)
  void drain(sim::SimTime barrier);
  // Runs on the worker advancing the station's shard (scheduled as a
  // kernel-exact repeating event); touches only that shard's World.
  // gw::context(worker)
  void sample_trace(std::size_t index);
  [[nodiscard]] std::size_t index_of(const std::string& station_name) const;

  ShardedFleetConfig config_;
  // Declared before the worlds: stations schedule onto its shards.
  std::unique_ptr<sim::ShardedSimulation> sharded_;
  SouthamptonServer hub_;
  std::vector<std::unique_ptr<World>> worlds_;
  // Real sync groups (ungrouped stations excluded), name -> member world
  // indices in spec order.
  std::map<std::string, std::vector<std::size_t>> groups_;
  obs::MetricsRegistry rollup_;
  obs::EventJournal rollup_journal_;
  std::map<std::string, bool> last_converged_;
};

}  // namespace gw::station
