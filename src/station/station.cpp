#include "station/station.h"

#include <algorithm>
#include <functional>

#include "snapshot/archive.h"
#include "util/strings.h"

namespace gw::station {

using namespace util::literals;

namespace {

// The special-command poll has no typed codec message (it is a bare GET in
// the deployed system); its size is a constant.
constexpr util::Bytes kSpecialQuery{768};

// Serialised sizes for packaged data.
constexpr std::int64_t kSampleRecordBytes = 16;
constexpr std::int64_t kSensorRecordBytes = 24;

// Clock for the daily-run ScopedTimer: simulated seconds since the epoch.
double sim_clock_seconds(void* ctx) {
  return double(
             static_cast<sim::Simulation*>(ctx)->now().millis_since_epoch()) /
         1e3;
}

// Buckets for recovery.time_to_recover_hours: an hour to a month.
std::vector<double> recovery_hour_buckets() {
  return {1, 2, 4, 8, 12, 24, 48, 96, 168, 336, 720};
}

}  // namespace

Station::Station(sim::Simulation& simulation, env::Environment& environment,
                 SouthamptonServer& server, util::Rng rng,
                 StationConfig config)
    : simulation_(simulation),
      environment_(environment),
      server_(server),
      config_(config),
      rng_(rng),
      power_(simulation, environment, config.power),
      board_(simulation, power_, rng.fork("board"), config.gumstix,
             config.msp),
      dgps_(simulation, power_, rng.fork("dgps"), config.dgps,
            &environment.gps_sky()),
      gprs_(simulation, power_, rng.fork("gprs"), config.gprs),
      cf_(rng.fork("cf"), config.cf),
      sensors_(environment, power_, rng.fork("sensors"), config.sensors),
      serial_(rng.fork("serial"), config.serial),
      bus_(board_.msp(), rng.fork("i2c"), config.bus),
      uploads_(config.uploads),
      policy_(config.policy),
      watchdog_(simulation, config.watchdog_limit),
      recovery_(simulation, board_.msp(), dgps_, rng.fork("recovery"),
                config.recovery),
      updates_(rng.fork("updates")),
      log_manager_(logger_, config.log_budget),
      priority_analyzer_(config.data_priority),
      state_(config.initial_state),
      local_voltage_state_(config.initial_state) {
  power_.on_brown_out([this] { on_brown_out(); });
  board_.set_cold_boot_handler([this] { on_cold_boot(); });
  uploads_.set_completion_callback(
      [this](const std::string& name, util::Bytes size) {
        server_.receive_file(config_.name, name, size, simulation_.now());
      });
  // Unified observability: every subsystem reports into this station's
  // registry and journal (docs/OBSERVABILITY.md instrumentation contract).
  const obs::Hooks hooks{&metrics_, &journal_};
  power_.set_hooks(hooks);
  watchdog_.set_hooks(hooks);
  recovery_.set_hooks(hooks);
  uploads_.set_hooks(hooks);
  // §IV NTP fallback rides a real modem session (registration, energy,
  // data cost) rather than a free clock write.
  recovery_.attach_modem(&gprs_);
}

void Station::set_fault_oracle(fault::FaultOracle* oracle) {
  // The shared server carries the server_down windows; a standalone station
  // (the fault tests) must attach it here, not only via Deployment.
  server_.set_fault_oracle(oracle);
  gprs_.set_fault_oracle(oracle);
  dgps_.set_fault_oracle(oracle);
  cf_.set_fault_oracle(oracle, oracle != nullptr ? &simulation_ : nullptr);
  power_.set_fault_oracle(oracle);
  recovery_.set_fault_oracle(oracle);
}

void Station::add_probe(ProbeNode& probe) { probes_.push_back(&probe); }

void Station::add_charger(std::unique_ptr<power::Charger> charger) {
  power_.add_charger(std::move(charger));
}

void Station::start() {
  if (started_) return;
  started_ = true;
  power_.start();
  board_.set_daily_wake(config_.wake_time_of_day, [this] { on_wake(); });
  state_history_.push_back({simulation_.now(), state_});
  recovery_.record_successful_run();  // deployment day counts as a good run
  schedule_gps_program();
}

void Station::set_state(core::PowerState state) {
  if (state == state_) return;
  metrics_.counter("power_policy", "transitions").increment();
  journal_.record(simulation_.now().millis_since_epoch(),
                  obs::EventType::kStateTransition, "power_policy",
                  double(core::to_int(state_)),
                  double(core::to_int(state)));
  state_ = state;
  state_history_.push_back({simulation_.now(), state_});
  logger_.info(simulation_.now().millis_since_epoch(), "power",
               "state -> " + std::to_string(core::to_int(state_)));
}

// --- daily run ----------------------------------------------------------

void Station::on_wake() {
  if (sequence_ && sequence_->running()) {
    ++stats_.windows_missed;  // previous run somehow still alive
    return;
  }
  ++day_counter_;
  log_manager_.new_day(simulation_.now().millis_since_epoch());
  // The CF card silently ages (§VII: corruption of unknown cause).
  cf_.age(sim::days(1));
  urgent_data_today_ = false;
  forced_comms_counted_ = false;
  run_started_ = simulation_.now();
  run_readings_ = 0;
  // Rotate the service order daily so a fat backlog on one probe cannot
  // starve the others forever when the session budget runs out.
  probe_cursor_ = 0;
  probe_offset_ = probes_.empty()
                      ? 0
                      : std::size_t(day_counter_) % probes_.size();
  probe_budget_used_ = sim::Duration{0};
  metrics_.counter("station", "wakes").increment();
  run_timer_.emplace(metrics_.histogram("station", "run_seconds"),
                     &sim_clock_seconds, &simulation_);
  watchdog_.arm([this] {
    logger_.error(simulation_.now().millis_since_epoch(), "watchdog",
                  "2h limit hit during step " + sequence_->current_step());
    if (sequence_) sequence_->abort();
  });
  apply_frequency_plan();
  build_sequence();
  sequence_->run([this](bool aborted) { finish_run(aborted); });
}

// DVFS (docs/ENERGY.md): pick the operating point the day's window runs at
// from the power state the station woke up in. -1 (the default) means the
// top point — deployed behaviour, draw and timings bitwise unchanged.
void Station::apply_frequency_plan() {
  const auto& plan = board_.gumstix().frequency_plan();
  const int configured =
      config_.gumstix_freq_by_state[std::size_t(core::to_int(state_))];
  const std::size_t index =
      configured < 0 ? plan.size() - 1
                     : std::min(std::size_t(configured), plan.size() - 1);
  board_.gumstix().set_frequency_index(index);
}

void Station::build_sequence() {
  sequence_ = std::make_unique<core::ActionSequence>(simulation_);

  // A one-shot step: runs its body once, consuming the returned duration.
  const auto one_shot = [](std::function<sim::Duration()> fn) {
    return [fn = std::move(fn),
            done = false]() mutable -> std::optional<sim::Duration> {
      if (done) return std::nullopt;
      done = true;
      return fn();
    };
  };
  // Fig 4's "Power state = 0 -> Stop": steps below the gate evaporate when
  // the station is in survival mode (unless §VII's data-priority override
  // has earned today a forced session).
  const auto gated = [this](core::ActionSequence::Chunk fn) {
    return [this, fn = std::move(fn)]() mutable -> std::optional<sim::Duration> {
      if (!comms_allowed()) return std::nullopt;
      return fn();
    };
  };

  // Fig 4: "Basestation?" — probe jobs run first and in every power state
  // (Table 2: winter radio is the good radio).
  if (config_.role == StationRole::kBaseStation) {
    sequence_->add_step("get_probe_data", [this] { return probe_chunk(); });
  }

  // CPU-bound steps stretch with the selected DVFS point (identity at the
  // top point): slower silicon spends longer — but fewer joules — on the
  // same work.
  sequence_->add_fixed("read_msp", board_.gumstix().scaled(sim::seconds(8)),
                       [this] { read_msp_and_sensors(); });
  sequence_->add_fixed("calc_power_state",
                       board_.gumstix().scaled(sim::seconds(1)),
                       [this] { compute_local_state(); });

  if (config_.execute_special_before_upload) {
    // §VI's suggested reordering: remote code runs before the transfer so a
    // backlog cannot starve it.
    sequence_->add_step("get_special_early",
                        gated(one_shot([this] { return run_special(); })));
  }

  sequence_->add_step("get_gps_files",
                      gated([this] { return gps_fetch_chunk(); }));
  sequence_->add_step("package_data", gated(one_shot([this] {
                        package_data();
                        return board_.gumstix().scaled(sim::seconds(12));
                      })));
  sequence_->add_step("upload_power_state", gated(one_shot([this] {
                        return upload_power_state();
                      })));
  sequence_->add_step("upload_data",
                      gated(one_shot([this] { return upload_data(); })));
  sequence_->add_step("get_override",
                      gated(one_shot([this] { return fetch_override(); })));
  if (!config_.execute_special_before_upload) {
    sequence_->add_step("get_special",
                        gated(one_shot([this] { return run_special(); })));
  }
  sequence_->add_step("check_updates", gated(one_shot([this] {
                        return apply_pending_update();
                      })));
  sequence_->add_step("check_config", gated(one_shot([this] {
                        return apply_pending_config();
                      })));
}

void Station::finish_run(bool aborted) {
  watchdog_.disarm();
  run_timer_.reset();  // observes into station.run_seconds
  if (sequence_) {
    last_run_steps_ = sequence_->completed_steps();
    for (const auto& step : sequence_->step_durations()) {
      metrics_.histogram("station", "step_seconds." + step.name)
          .observe(step.elapsed.to_seconds());
    }
  }
  if (aborted) {
    ++stats_.runs_aborted;
    metrics_.counter("station", "runs_aborted").increment();
  } else {
    ++stats_.runs_completed;
    metrics_.counter("station", "runs_completed").increment();
    recovery_.record_successful_run();
    if (local_voltage_state_ == core::PowerState::kState0) {
      ++stats_.state0_days;
    }
  }
  // New effective state: voltage-derived, clamped by the server override
  // fetched this run (§III rules).
  const core::PowerState applied =
      core::SyncRules::apply(local_voltage_state_, last_override_);
  if (applied < local_voltage_state_) {
    // The server's min-rule pulled us below what the battery allows (§III).
    metrics_.counter("state_sync", "clamps").increment();
    journal_.record(simulation_.now().millis_since_epoch(),
                    obs::EventType::kSyncClamp, "state_sync",
                    double(core::to_int(local_voltage_state_)),
                    double(core::to_int(applied)));
  }
  if (last_override_.has_value()) {
    metrics_.counter("state_sync", "overrides_received").increment();
  }
  set_state(applied);
  // State occupancy: one count per daily run, keyed by the state the
  // station ends the day in (the Table 2 duty-cycle observable).
  metrics_
      .counter("power_policy",
               "occupancy_days.state" + std::to_string(core::to_int(state_)))
      .increment();
  if (degraded_) {
    ++stats_.degraded_days;
    metrics_.counter("station", "degraded_days").increment();
  }
  power_.publish_ledgers();
  if (!power_.browned_out()) {
    schedule_gps_program();
  }
  shutdown_peripherals();
}

void Station::shutdown_peripherals() {
  gprs_.power_off();
  board_.gumstix().power_off();
  // The dGPS is MSP-scheduled and powers itself off after each reading; the
  // daily run leaves it alone unless a fetch left it on.
  if (dgps_.powered()) dgps_.power_off();
}

// --- step bodies --------------------------------------------------------

std::optional<sim::Duration> Station::probe_chunk() {
  while (probe_cursor_ < probes_.size()) {
    ProbeNode* probe =
        probes_[(probe_cursor_ + probe_offset_) % probes_.size()];
    ++probe_cursor_;

    // Degraded mode defers probe work: half the session budget, so the
    // queue the network cannot drain stops growing twice as fast.
    const sim::Duration session_budget =
        degraded_ ? config_.probe_session_budget / 2
                  : config_.probe_session_budget;
    const sim::Duration budget_left = std::min(
        session_budget - probe_budget_used_, watchdog_.remaining());
    if (budget_left <= sim::Duration{0}) return std::nullopt;

    if (!probe->alive()) {
      // The base station cannot know the probe died; it queries and times
      // out ("vanishing offline", §V).
      const auto timeout = sim::seconds(15);
      probe_budget_used_ += timeout;
      logger_.warn(simulation_.now().millis_since_epoch(), "probes",
                   "probe " + std::to_string(probe->id()) + " silent");
      return timeout;
    }

    proto::NackBulkTransfer protocol{probe->link(),
                                     effective_probe_protocol(),
                                     obs::Hooks{&metrics_, &journal_}};
    const auto stats =
        protocol.run(probe->store(), simulation_.now(), budget_left);
    probe_budget_used_ += stats.airtime;
    run_readings_ += stats.delivered;
    stats_.probe_readings_delivered += stats.delivered;
    // §VII extension: score the fresh data; an urgent batch can justify
    // communications even in state 0.
    if (config_.enable_data_priority &&
        priority_analyzer_.analyze(stats.delivered_readings) ==
            core::DataPriority::kUrgent) {
      urgent_data_today_ = true;
    }
    if (config_.verbose_probe_logging) {
      // The deployed binaries logged every frame (§VI's 1 MB problem); the
      // LogManager budget suppresses the flood after the first few KiB.
      for (const auto& reading : stats.delivered_readings) {
        log_manager_.debug(
            simulation_.now().millis_since_epoch(), "probes",
            "rx probe=" + std::to_string(reading.probe_id) +
                " seq=" + std::to_string(reading.seq) +
                " cond=" + util::format_fixed(reading.conductivity_us, 2) +
                " pres=" + util::format_fixed(reading.pressure_kpa, 1));
      }
    }
    log_manager_.info(simulation_.now().millis_since_epoch(), "probes",
                 "probe " + std::to_string(probe->id()) + ": " +
                     std::to_string(stats.delivered) + "/" +
                     std::to_string(stats.offered) + " readings, " +
                     std::to_string(stats.missing_after_stream) +
                     " missed in stream" + (stats.aborted ? " [ABORT]" : ""));
    if (stats.airtime > sim::Duration{0}) return stats.airtime;
  }
  return std::nullopt;
}

std::optional<sim::Duration> Station::gps_fetch_chunk() {
  // Fig 4 gates the GPS fetch on state > 1.
  if (local_voltage_state_ < core::PowerState::kState2) return std::nullopt;
  const auto next = dgps_.peek_oldest();
  if (!next.ok()) {
    if (dgps_.powered()) dgps_.power_off();
    return std::nullopt;
  }
  const sim::Duration estimate =
      serial_.transfer_duration(next.value().size);
  if (watchdog_.remaining() < estimate) {
    // §VI: the 2-hour cut lands between files; the rest waits for
    // tomorrow's window.
    if (dgps_.powered()) dgps_.power_off();
    return std::nullopt;
  }
  if (!dgps_.powered()) {
    // Powering the receiver for the serial fetch auto-starts a reading
    // (§II's turn-on-means-record design) — the day gains one bonus file.
    dgps_.power_on();
  }
  const auto outcome = serial_.attempt_transfer(next.value().size);
  if (!outcome.success) {
    // §VI's "intermittent RS232 cable": the file stays on the receiver and
    // the time is burned anyway.
    log_manager_.warn(simulation_.now().millis_since_epoch(), "gps",
                      "serial transfer fault on " + next.value().name);
    return outcome.elapsed;
  }
  const auto file = dgps_.fetch_oldest();
  if (!file.ok()) return std::nullopt;
  ++stats_.gps_files_fetched;
  if (cf_.begin_write(file.value().name, file.value().size).ok()) {
    (void)cf_.commit_write();
  }
  uploads_.enqueue(file.value().name, file.value().size);
  return outcome.elapsed;
}

void Station::read_msp_and_sensors() {
  // Over the I2C bus (Fig 2); a dead bus degrades to "no samples today",
  // which compute_local_state treats as keep-the-current-state.
  pending_voltages_.clear();
  const auto samples_result = bus_.read_samples();
  std::vector<hw::VoltageSample> samples;
  if (samples_result.ok()) {
    samples = samples_result.value();
  } else {
    log_manager_.error(simulation_.now().millis_since_epoch(), "i2c",
                       samples_result.error().message);
  }
  pending_voltages_.reserve(samples.size());
  for (const auto& sample : samples) {
    pending_voltages_.push_back(sample.voltage);
  }
  const auto readings = sensors_.read_all(simulation_.now());
  const auto size = util::Bytes{
      std::int64_t(samples.size()) * kSampleRecordBytes +
      std::int64_t(readings.size()) * kSensorRecordBytes};
  const std::string name =
      "sensors_" + sim::format_iso(simulation_.now());
  if (cf_.begin_write(name, size).ok()) (void)cf_.commit_write();
  sensor_file_ = proto::UploadFile{name, size, util::Bytes{0}};
}

void Station::compute_local_state() {
  const auto average = core::daily_average(pending_voltages_);
  if (!average.has_value()) {
    // First day after a brown-out: no samples yet; stay put.
    local_voltage_state_ = state_;
    return;
  }
  daily_averages_.push_back({simulation_.now(), *average});
  local_voltage_state_ = policy_.state_for(*average);
  metrics_.gauge("power_policy", "daily_average_volts").set(average->value());
  logger_.info(simulation_.now().millis_since_epoch(), "power",
               "daily avg " + util::format_fixed(average->value(), 2) +
                   " V -> local state " +
                   std::to_string(core::to_int(local_voltage_state_)));
}

void Station::package_data() {
  const int science = config_.prioritize_science_data ? 1 : 0;
  if (run_readings_ > 0) {
    const auto size = util::Bytes{
        std::int64_t(run_readings_) * proto::kReadingPayload.count()};
    const std::string name = "probes_" + sim::format_iso(simulation_.now());
    if (cf_.begin_write(name, size).ok()) (void)cf_.commit_write();
    uploads_.enqueue(name, size, science);
  }
  if (sensor_file_.has_value()) {
    uploads_.enqueue(sensor_file_->name, sensor_file_->size, science);
    sensor_file_.reset();
  }
  // The daily logfile rides along with the data (§VI).
  const std::string log_text = logger_.drain();
  if (!log_text.empty()) {
    uploads_.enqueue("log_" + sim::format_iso(simulation_.now()),
                     util::Bytes{std::int64_t(log_text.size())}, science);
  }
}

sim::Duration Station::upload_power_state() {
  gprs_.power_on();
  // Encode the real message; its wire size is what the modem carries.
  proto::StateReport report;
  report.station = config_.name;
  report.state = local_voltage_state_;
  report.day_ms = board_.msp().rtc_now().millis_since_epoch();
  const std::string wire = report.encode();
  const auto outcome = gprs_.attempt_transfer(proto::wire_size(wire));
  if (outcome.success && server_reachable()) {
    // The server decodes what actually arrived.
    const auto decoded = proto::StateReport::decode(wire);
    if (decoded.ok()) {
      server_.sync().report_state(decoded.value().station,
                                  decoded.value().state, simulation_.now());
    }
  } else {
    // GPRS session failed, or it came up but Southampton never answered.
    ++stats_.state_upload_failures;
  }
  return outcome.elapsed;
}

sim::Duration Station::upload_data() {
  gprs_.power_on();
  // Keep a slice of the window for the remaining control steps.
  const sim::Duration reserve = sim::minutes(5);
  sim::Duration budget = watchdog_.remaining() - reserve;
  if (degraded_) {
    budget = std::min(budget, config_.degraded_upload_budget);
  }
  if (budget <= sim::Duration{0}) return sim::Duration{0};
  if (!server_reachable()) {
    // The modem can register but the rendezvous endpoint never answers:
    // the day makes no progress at the cost of the retry budget's worth of
    // dialling. Nothing reaches run_window, so the transfer ledger and the
    // server's receipts stay reconciled.
    note_upload_day(/*progressed=*/false);
    return gprs_.config().registration_time *
           std::int64_t(1 + config_.uploads.max_session_retries);
  }
  proto::AdmitPredicate admit;
  if (degraded_) {
    // Log-only upload: the logfile (and the state it describes) still gets
    // out daily; science files wait for the network to come back.
    admit = [](const proto::UploadFile& file) {
      return file.name.rfind("log_", 0) == 0;
    };
  }
  const auto report =
      uploads_.run_window(gprs_, budget, simulation_.now(), admit);
  note_upload_day(report.files_completed > 0);
  return report.elapsed;
}

bool Station::server_reachable() {
  const double severity = server_.down_severity(simulation_.now());
  if (severity <= 0.0) return true;
  if (!rng_.bernoulli(severity)) return true;
  if (server_.fault_oracle() != nullptr) {
    server_.fault_oracle()->record_trip(fault::FaultKind::kServerDown,
                                        simulation_.now());
  }
  return false;
}

void Station::note_upload_day(bool progressed) {
  if (config_.degrade_after_failed_days <= 0) return;
  if (progressed) {
    failed_upload_days_ = 0;
    if (degraded_) {
      degraded_ = false;
      const int days_degraded = day_counter_ - degraded_since_day_;
      journal_.record(simulation_.now().millis_since_epoch(),
                      obs::EventType::kDegradedExit, "station",
                      double(days_degraded));
      log_manager_.info(simulation_.now().millis_since_epoch(), "degraded",
                        "upload progress: leaving log-only mode after " +
                            std::to_string(days_degraded) + " days");
    }
    return;
  }
  ++failed_upload_days_;
  if (!degraded_ &&
      failed_upload_days_ >= config_.degrade_after_failed_days) {
    degraded_ = true;
    degraded_since_day_ = day_counter_;
    journal_.record(simulation_.now().millis_since_epoch(),
                    obs::EventType::kDegradedEnter, "station",
                    double(failed_upload_days_),
                    double(uploads_.queued_files()));
    log_manager_.warn(simulation_.now().millis_since_epoch(), "degraded",
                      std::to_string(failed_upload_days_) +
                          " days without upload progress: log-only mode");
  }
}

sim::Duration Station::fetch_override() {
  gprs_.power_on();
  proto::OverrideRequest request;
  request.station = config_.name;
  const std::string request_wire = request.encode();
  // Request up + response down ride one session.
  proto::OverrideResponse response;
  const auto server_override =
      server_.sync().override_for_client(config_.name, simulation_.now());
  response.has_override = server_override.has_value();
  if (server_override.has_value()) response.state = *server_override;
  const std::string response_wire = response.encode();
  const auto outcome = gprs_.attempt_transfer(
      proto::wire_size(request_wire) + proto::wire_size(response_wire));
  if (outcome.success && server_reachable()) {
    const auto decoded = proto::OverrideResponse::decode(response_wire);
    if (decoded.ok() && decoded.value().has_override) {
      last_override_ = decoded.value().state;
    } else {
      last_override_.reset();
    }
  } else {
    // §III: fetch failed — rely on the local state.
    last_override_.reset();
    ++stats_.override_fetch_failures;
  }
  return outcome.elapsed;
}

sim::Duration Station::run_special() {
  gprs_.power_on();
  const auto outcome = gprs_.attempt_transfer(kSpecialQuery);
  if (!outcome.success || !server_reachable()) return outcome.elapsed;
  const auto command = server_.fetch_special(config_.name);
  if (!command.has_value()) return outcome.elapsed;

  // Execute: output goes into the normal logfile, which only reaches
  // Southampton with the *next* upload — §VI's 24 h results latency (48 h
  // with the deployed post-upload ordering, since today's upload already
  // happened).
  ++stats_.specials_executed;
  logger_.info(simulation_.now().millis_since_epoch(), "special",
               "executed " + command->id + " (" +
                   std::to_string(command->output_size.count()) +
                   " B output)");
  core::SpecialExecution execution;
  execution.id = command->id;
  execution.executed_at = simulation_.now();
  execution.results_visible_at =
      simulation_.now() +
      (config_.execute_special_before_upload ? sim::minutes(30)
                                             : sim::days(1));
  server_.record_special_result(execution);
  return outcome.elapsed + command->runtime;
}

sim::Duration Station::apply_pending_update() {
  if (!server_reachable()) return sim::Duration{0};
  const auto package = server_.fetch_update(config_.name);
  if (!package.has_value()) return sim::Duration{0};
  gprs_.power_on();
  const auto payload_size =
      util::Bytes{std::int64_t(package->payload.size())};
  const auto outcome = gprs_.attempt_transfer(payload_size);
  if (!outcome.success) {
    // Download died; the package waits in Southampton for a retry.
    server_.queue_update(config_.name, *package, simulation_.now());
    return outcome.elapsed;
  }
  auto beacon = updates_.apply(*package);
  if (!beacon.verified) {
    // Resend tomorrow.
    server_.queue_update(config_.name, *package, simulation_.now());
  }
  // Immediate HTTP GET beacon (§VI): tiny, piggybacks on the session.
  server_.receive_beacon(config_.name, beacon, simulation_.now());
  return outcome.elapsed + sim::seconds(5);
}

bool Station::comms_allowed() {
  if (local_voltage_state_ != core::PowerState::kState0) return true;
  if (!config_.enable_data_priority || !urgent_data_today_) return false;
  if (power_.battery().soc() < config_.forced_comms_min_soc) return false;
  // §VII: "forcing communication even if the available power is marginal
  // if the data warrants it."
  if (!forced_comms_counted_) {
    forced_comms_counted_ = true;
    ++stats_.forced_comms_days;
    log_manager_.warn(simulation_.now().millis_since_epoch(), "priority",
                      "urgent data: forcing communications in state 0");
  }
  return true;
}

sim::Duration Station::apply_pending_config() {
  if (!server_reachable()) return sim::Duration{0};
  const auto update = server_.fetch_config_update(config_.name);
  if (!update.has_value()) return sim::Duration{0};
  gprs_.power_on();
  const auto payload =
      util::Bytes{std::int64_t(update->canonical_encoding().size()) + 180};
  const auto outcome = gprs_.attempt_transfer(payload);
  if (!outcome.success) {
    // Retry tomorrow.
    server_.queue_config_update(config_.name, *update, simulation_.now());
    return outcome.elapsed;
  }
  const auto status = remote_config_.apply(*update);
  if (status.ok()) {
    log_manager_.info(simulation_.now().millis_since_epoch(), "config",
                      "applied remote config v" +
                          std::to_string(update->version));
  } else {
    // §V's "reliable robust" requirement: a bad update is refused whole,
    // the old configuration stays live, and Southampton resends.
    log_manager_.warn(simulation_.now().millis_since_epoch(), "config",
                      "rejected remote config: " + status.error().message);
  }
  return outcome.elapsed;
}

proto::NackConfig Station::effective_probe_protocol() const {
  proto::NackConfig knobs = config_.probe_protocol;
  knobs.max_rounds = int(remote_config_.get_int("probe.max_rounds",
                                                knobs.max_rounds));
  knobs.rerequest_all_ratio = remote_config_.get_double(
      "probe.rerequest_all_ratio", knobs.rerequest_all_ratio);
  knobs.legacy_individual_limit = std::size_t(remote_config_.get_int(
      "probe.individual_limit",
      std::int64_t(knobs.legacy_individual_limit)));
  return knobs;
}

// --- dGPS intra-day program ----------------------------------------------

void Station::schedule_gps_program() {
  cancel_gps_program();
  // The Gumstix derives the day plan from the power state and writes it
  // into MSP430 RAM as a serialised image; the microcontroller executes
  // what it parses back (a corrupted image yields no program rather than a
  // garbage one).
  const auto schedule =
      core::DaySchedule::for_state(state_, config_.wake_time_of_day);
  const auto parsed = core::DaySchedule::parse(schedule.serialize());
  if (!parsed.ok()) {
    log_manager_.error(simulation_.now().millis_since_epoch(), "schedule",
                       "RAM schedule image rejected: " +
                           parsed.error().message);
    return;
  }
  for (const auto& slot : parsed.value().gps_slots) {
    gps_program_.push_back(
        simulation_.schedule_in(slot, [this] { fire_gps_slot(); }));
  }
}

void Station::fire_gps_slot() {
  if (power_.browned_out()) return;
  // §II: the microcontroller powers the receiver; it auto-starts a
  // reading and is cut again on completion — Gumstix never involved.
  dgps_.power_on([this] { dgps_.power_off(); });
}

void Station::cancel_gps_program() {
  for (const auto id : gps_program_) simulation_.cancel(id);
  gps_program_.clear();
}

// --- failure and recovery -------------------------------------------------

void Station::on_brown_out() {
  ++stats_.brown_outs;
  brown_out_at_ = simulation_.now();
  logger_.error(simulation_.now().millis_since_epoch(), "power",
                "battery exhausted: brown-out");
  if (sequence_ && sequence_->running()) sequence_->abort();
  watchdog_.disarm();
  cancel_gps_program();
  cf_.power_cut();
  gprs_.power_off();
  dgps_.power_off();
  set_state(core::PowerState::kState0);
}

void Station::on_cold_boot() {
  ++stats_.cold_boots;
  metrics_.counter("station", "cold_boots").increment();
  journal_.record(simulation_.now().millis_since_epoch(),
                  obs::EventType::kColdBoot, "station",
                  double(stats_.cold_boots));
  // First boot after an uncontrolled power loss: scan the card. The field
  // scan only *detects* (§VII: recovery was done off-site); a corrupted
  // card is still usable for new files once fsck clears the metadata.
  const auto scan = cf_.fsck(/*attempt_recovery=*/cf_.metadata_corrupted());
  if (scan.corrupted_files > 0 || scan.metadata_corrupted) {
    log_manager_.error(simulation_.now().millis_since_epoch(), "storage",
                       "cf scan: " + std::to_string(scan.corrupted_files) +
                           " corrupted files" +
                           (scan.metadata_corrupted ? ", metadata damaged"
                                                    : ""));
  }
  const auto outcome = recovery_.attempt();
  switch (outcome) {
    case core::RecoveryOutcome::kClockTrusted:
    case core::RecoveryOutcome::kResyncedByGps:
    case core::RecoveryOutcome::kResyncedByNtp:
      // Brown-out edge to working clock: the §IV outage the paper survives.
      if (brown_out_at_.has_value()) {
        metrics_
            .histogram("recovery", "time_to_recover_hours",
                       recovery_hour_buckets())
            .observe((simulation_.now() - *brown_out_at_).to_hours());
        brown_out_at_.reset();
      }
      // §IV: clock restored -> rewrite the RAM schedule and restart in
      // state 0.
      local_voltage_state_ = core::PowerState::kState0;
      set_state(core::PowerState::kState0);
      board_.set_daily_wake(config_.wake_time_of_day, [this] { on_wake(); });
      schedule_gps_program();
      logger_.warn(simulation_.now().millis_since_epoch(), "recovery",
                   "cold boot: clock restored, state 0");
      break;
    case core::RecoveryOutcome::kDeferred:
      // "sleep for a day and try again."
      recovery_retry_ = simulation_.schedule_in(
          recovery_.config().retry_interval,
          [this] { fire_recovery_retry(); });
      break;
  }
}

void Station::fire_recovery_retry() {
  recovery_retry_.reset();
  if (!power_.browned_out()) on_cold_boot();
}

// --- snapshot -------------------------------------------------------------

// The full station state minus wiring (probes_, hooks, callbacks — all
// re-established by constructing an identical fleet before restoring).
// Pending events are captured as rebuild records; anything whose closure
// cannot be rebuilt from data (an in-run ActionSequence, the armed
// watchdog, a dGPS reading or GPRS session in flight) makes the save refuse
// with kNotQuiescent instead of silently dropping work.
template <class Archive>
void Station::persist(Archive& ar) {
  if constexpr (Archive::kIsSaver) {
    if ((sequence_ && sequence_->running()) || run_timer_.has_value()) {
      throw snapshot::SnapshotError(snapshot::SnapshotErrc::kNotQuiescent,
                                    "daily run in progress", config_.name);
    }
  }
  ar.value(rng_);
  ar.value(metrics_);
  ar.value(journal_);
  ar.value(logger_);
  ar.value(power_);
  ar.value(board_);
  ar.value(dgps_);
  ar.value(gprs_);
  ar.value(cf_);
  ar.value(sensors_);
  ar.value(serial_);
  ar.value(bus_);
  ar.value(uploads_);
  ar.value(watchdog_);
  ar.value(recovery_);
  ar.value(updates_);
  ar.value(log_manager_);
  ar.value(priority_analyzer_);
  ar.value(remote_config_);
  ar.value(urgent_data_today_);
  ar.value(forced_comms_counted_);
  ar.value(degraded_);
  ar.value(failed_upload_days_);
  ar.value(degraded_since_day_);
  ar.value(probe_cursor_);
  ar.value(probe_offset_);
  ar.value(run_started_);
  ar.value(probe_budget_used_);
  ar.value(run_readings_);
  ar.value(pending_voltages_);
  ar.value(sensor_file_);
  ar.value(state_);
  ar.value(local_voltage_state_);
  ar.value(last_override_);
  ar.value(state_history_);
  ar.value(daily_averages_);
  ar.value(last_run_steps_);
  ar.value(brown_out_at_);
  ar.value(stats_);
  ar.value(day_counter_);
  ar.value(started_);
  // The MSP-driven dGPS slots: every entry shares one rebuild body, so the
  // program persists as a count plus one (live, at, seq) record per slot.
  std::uint64_t slots = gps_program_.size();
  ar.value(slots);
  if constexpr (!Archive::kIsSaver) {
    gps_program_.assign(std::size_t(slots), sim::EventId{0});
  }
  for (std::size_t i = 0; i < std::size_t(slots); ++i) {
    sim::persist_pending(ar, simulation_, gps_program_[i],
                         [this] { fire_gps_slot(); });
  }
  sim::persist_pending(ar, simulation_, recovery_retry_,
                       [this] { fire_recovery_retry(); });
}

template void Station::persist<snapshot::Saver>(snapshot::Saver&);
template void Station::persist<snapshot::Loader>(snapshot::Loader&);

}  // namespace gw::station
