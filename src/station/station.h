// Glacsweb field station: the Gumsense platform running the paper's
// daily-cycle software (Fig 4).
//
// One class serves both roles — the glacier base station (probes, solar +
// wind) and the café reference station (fixed dGPS, solar + seasonal
// mains) — because §II's point is that they run *identical hardware and
// software* and differ only in peripherals and duties.
//
// The daily run, executed when the Gumsense wakes the Gumstix at the
// scheduled window (12:00 UTC):
//
//   [base only] get sub-glacial probe data       (NACK bulk protocol, §V)
//   get readings from MSP (voltage samples + sensor scan)
//   calculate local power state                  (Table 2 on daily average)
//   state 0  -> stop (no communications)
//   state >1 -> fetch dGPS files to the CF card  (28 s each, §VI)
//   package data to be sent
//   upload power state                           (server sync, §III)
//   upload data (+ logfile)                      (file-by-file, §VI)
//   get override power state                     (min rule + clamps)
//   get special -> execute                       (§V remote config)
//
// A 2-hour watchdog armed at wake aborts the sequence wherever it stands
// (§VI); brown-out kills everything and the §IV cold-boot recovery path
// restores clock, schedule, and state 0 when charge returns.
#pragma once

#include <array>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/action_sequence.h"
#include "core/data_priority.h"
#include "core/log_manager.h"
#include "core/power_policy.h"
#include "core/recovery.h"
#include "core/remote_config.h"
#include "core/schedule.h"
#include "core/special_command.h"
#include "core/state_sync.h"
#include "core/update_manager.h"
#include "core/watchdog.h"
#include "env/environment.h"
#include "hw/cf_card.h"
#include "hw/dgps.h"
#include "hw/gprs_modem.h"
#include "hw/gumsense.h"
#include "hw/gumsense_bus.h"
#include "hw/sensors.h"
#include "hw/serial_link.h"
#include "obs/journal.h"
#include "obs/metrics.h"
#include "power/chargers.h"
#include "power/power_system.h"
#include "proto/bulk_transfer.h"
#include "proto/messages.h"
#include "proto/transfer_manager.h"
#include "sim/simulation.h"
#include "station/probe_node.h"
#include "station/southampton.h"
#include "util/logging.h"

namespace gw::station {

enum class StationRole { kBaseStation, kReferenceStation };

struct StationConfig {
  std::string name = "base";
  StationRole role = StationRole::kBaseStation;
  sim::Duration wake_time_of_day = sim::hours(12);  // daily window, §I
  sim::Duration watchdog_limit = sim::hours(2);     // §VI
  core::PowerState initial_state = core::PowerState::kState2;

  // §VI suggested fix: run the special *before* the data upload so a big
  // backlog cannot starve remote commands. Off = deployed (Fig 4) order.
  bool execute_special_before_upload = false;

  // Slice of the watchdog window reserved for probe sessions.
  sim::Duration probe_session_budget = sim::minutes(30);

  core::PowerPolicyConfig policy;
  core::RecoveryConfig recovery;
  power::PowerSystemConfig power;
  hw::GumstixConfig gumstix;
  hw::Msp430Config msp;
  hw::DgpsConfig dgps;
  hw::GprsConfig gprs;
  hw::CfCardConfig cf;
  hw::SensorSuiteConfig sensors;
  hw::SerialLinkConfig serial;
  hw::GumsenseBusConfig bus;
  proto::TransferManagerConfig uploads;
  proto::NackConfig probe_protocol;
  core::LogBudgetConfig log_budget;
  // Log every received probe reading at debug level (the deployed binaries'
  // behaviour that produced >1 MB logs, §VI). The LogManager's budget is
  // what keeps it affordable.
  bool verbose_probe_logging = true;
  // §VII extension: analyse the day's probe data and force a GPRS session
  // in state 0 when the data is urgent (melt onset, pressure spike). Off =
  // deployed behaviour.
  bool enable_data_priority = false;
  // §VII-adjacent extension: science data (probe readings, sensors, log)
  // jumps ahead of dGPS backlog files in the upload queue. Requires
  // uploads.priority_ordering; this flag sets the priorities.
  bool prioritize_science_data = false;
  core::DataPriorityConfig data_priority;
  // Forced communication still needs a sliver of battery.
  double forced_comms_min_soc = 0.05;
  // Graceful degradation under sustained comms failure: after this many
  // consecutive daily runs with zero upload progress the station drops to a
  // log-only upload (science files stay queued), shrinks the window to
  // degraded_upload_budget, and halves the probe session budget — burning
  // watts into a dead network is the one thing a glacier winter cannot
  // forgive. A day that completes any upload exits the mode. 0 = disabled
  // (deployed behaviour).
  int degrade_after_failed_days = 0;
  sim::Duration degraded_upload_budget = sim::minutes(8);
  // DVFS frequency plan by power state (docs/ENERGY.md): for each of the
  // four Table 2 states, the operating-point index (into
  // gumstix.frequency_plan) the Gumstix runs the daily window at. -1 = the
  // top (full-speed) point, which reproduces the deployed behaviour
  // exactly. Applied at wake from the state the station woke up in; the
  // fixed compute steps of the window stretch by Gumstix::cpu_scale().
  std::array<int, 4> gumstix_freq_by_state{-1, -1, -1, -1};
};

struct StationStats {
  int runs_completed = 0;
  int runs_aborted = 0;        // watchdog expiries mid-run
  int windows_missed = 0;      // wakes skipped (brown-out / no schedule)
  int state0_days = 0;         // runs that stopped at the state-0 gate
  int brown_outs = 0;
  int cold_boots = 0;
  int gps_files_fetched = 0;
  std::size_t probe_readings_delivered = 0;
  int specials_executed = 0;
  int override_fetch_failures = 0;
  int state_upload_failures = 0;
  int forced_comms_days = 0;  // §VII data-priority override engaged
  int degraded_days = 0;      // daily runs spent in log-only degraded mode

  template <class Archive>
  void persist(Archive& ar) {
    ar.value(runs_completed);
    ar.value(runs_aborted);
    ar.value(windows_missed);
    ar.value(state0_days);
    ar.value(brown_outs);
    ar.value(cold_boots);
    ar.value(gps_files_fetched);
    ar.value(probe_readings_delivered);
    ar.value(specials_executed);
    ar.value(override_fetch_failures);
    ar.value(state_upload_failures);
    ar.value(forced_comms_days);
    ar.value(degraded_days);
  }
};

class Station {
 public:
  Station(sim::Simulation& simulation, env::Environment& environment,
          SouthamptonServer& server, util::Rng rng, StationConfig config);

  // Non-copyable: owns device graph wired by reference.
  Station(const Station&) = delete;
  Station& operator=(const Station&) = delete;

  // Base-station duty: attach the subglacial probes it serves.
  void add_probe(ProbeNode& probe);

  // Installs chargers (role-specific harvest mix) — call before start().
  void add_charger(std::unique_ptr<power::Charger> charger);

  // Arms the daily schedule and the power tick. Call once.
  void start();

  // Attaches scripted fault windows to every device that models one (modem,
  // dGPS, CF card, power system, recovery). The deployment wires this when
  // a fault plan is configured; null detaches everywhere.
  void set_fault_oracle(fault::FaultOracle* oracle);

  // --- observation -------------------------------------------------------

  [[nodiscard]] core::PowerState current_state() const { return state_; }
  [[nodiscard]] bool degraded() const { return degraded_; }
  [[nodiscard]] const StationStats& stats() const { return stats_; }
  [[nodiscard]] power::PowerSystem& power() { return power_; }
  [[nodiscard]] hw::Gumsense& board() { return board_; }
  [[nodiscard]] hw::DgpsReceiver& dgps() { return dgps_; }
  [[nodiscard]] hw::GprsModem& gprs() { return gprs_; }
  [[nodiscard]] hw::CompactFlashCard& cf() { return cf_; }
  [[nodiscard]] hw::SerialLink& serial() { return serial_; }
  [[nodiscard]] hw::GumsenseBus& bus() { return bus_; }
  [[nodiscard]] proto::TransferManager& uploads() { return uploads_; }
  [[nodiscard]] util::Logger& logger() { return logger_; }
  [[nodiscard]] core::LogManager& log_manager() { return log_manager_; }
  [[nodiscard]] core::DataPriorityAnalyzer& priority_analyzer() {
    return priority_analyzer_;
  }
  [[nodiscard]] core::RemoteConfig& remote_config() { return remote_config_; }
  [[nodiscard]] core::RecoveryManager& recovery() { return recovery_; }
  [[nodiscard]] core::UpdateManager& updates() { return updates_; }
  [[nodiscard]] core::Watchdog& watchdog() { return watchdog_; }
  [[nodiscard]] const std::string& name() const { return config_.name; }
  [[nodiscard]] const StationConfig& config() const { return config_; }

  // The unified observability pair (docs/OBSERVABILITY.md): every subsystem
  // of this station reports into one registry/journal, exported per-station
  // by the benches.
  [[nodiscard]] obs::MetricsRegistry& metrics() { return metrics_; }
  [[nodiscard]] const obs::MetricsRegistry& metrics() const {
    return metrics_;
  }
  [[nodiscard]] obs::EventJournal& journal() { return journal_; }
  [[nodiscard]] const obs::EventJournal& journal() const { return journal_; }

  // (time, state) transitions, newest last — the Fig 5 state series.
  struct StateChange {
    sim::SimTime at;
    core::PowerState state;

    template <class Archive>
    void persist(Archive& ar) {
      ar.value(at);
      ar.value(state);
    }
  };
  [[nodiscard]] const std::vector<StateChange>& state_history() const {
    return state_history_;
  }

  // Daily voltage averages as computed by the station (§III).
  struct DailyAverage {
    sim::SimTime at;
    util::Volts average;

    template <class Archive>
    void persist(Archive& ar) {
      ar.value(at);
      ar.value(average);
    }
  };
  [[nodiscard]] const std::vector<DailyAverage>& daily_averages() const {
    return daily_averages_;
  }

  // Steps fully completed by the most recent daily run (Fig 4 trace).
  [[nodiscard]] const std::vector<std::string>& last_run_steps() const {
    return last_run_steps_;
  }

  // Snapshot support (docs/SNAPSHOT.md): the whole station state minus
  // wiring, defined in station.cpp and instantiated for snapshot::Saver /
  // snapshot::Loader. Saving requires quiescence — no daily run, watchdog
  // disarmed — so every pending event is a rebuildable record.
  template <class Archive>
  void persist(Archive& ar);

 private:
  // --- daily run (Fig 4) -------------------------------------------------
  void on_wake();
  void apply_frequency_plan();
  void build_sequence();
  void finish_run(bool aborted);
  void shutdown_peripherals();

  // Step bodies (chunk functions live inside build_sequence; these helpers
  // do the per-chunk work).
  std::optional<sim::Duration> probe_chunk();
  std::optional<sim::Duration> gps_fetch_chunk();
  void read_msp_and_sensors();
  void compute_local_state();
  void package_data();
  sim::Duration upload_power_state();
  sim::Duration upload_data();
  sim::Duration fetch_override();
  sim::Duration run_special();
  sim::Duration apply_pending_update();
  sim::Duration apply_pending_config();
  // Probe-protocol knobs after remote-config overlay (§V: "try different
  // strategies for retrieving data").
  [[nodiscard]] proto::NackConfig effective_probe_protocol() const;

  // --- dGPS intra-day program (MSP430-driven, §II) -----------------------
  void schedule_gps_program();
  void cancel_gps_program();
  void fire_gps_slot();
  void fire_recovery_retry();

  // Fig 4's state-0 gate, plus the §VII data-priority exception.
  [[nodiscard]] bool comms_allowed();

  // One Bernoulli draw against any active server_down window: does this
  // contact with Southampton get through? Draws nothing when no window is
  // active, so seeded runs without a fault plan are unchanged.
  [[nodiscard]] bool server_reachable();

  // Tracks consecutive zero-progress upload days and drives the degraded
  // mode (entered/exited + journalled here).
  void note_upload_day(bool progressed);

  // --- failure / recovery -------------------------------------------------
  void on_brown_out();
  void on_cold_boot();
  void set_state(core::PowerState state);

  sim::Simulation& simulation_;
  env::Environment& environment_;
  SouthamptonServer& server_;
  StationConfig config_;
  util::Rng rng_;

  // Declared before the subsystems so the instrumentation sinks outlive
  // every hooked component.
  obs::MetricsRegistry metrics_;
  obs::EventJournal journal_;

  power::PowerSystem power_;
  hw::Gumsense board_;
  hw::DgpsReceiver dgps_;
  hw::GprsModem gprs_;
  hw::CompactFlashCard cf_;
  hw::SensorSuite sensors_;
  hw::SerialLink serial_;
  hw::GumsenseBus bus_;
  proto::TransferManager uploads_;
  // gwlint: allow(persist-coverage): stateless decision table over its
  // construction config; every input it reads is persisted elsewhere
  core::PowerPolicy policy_;
  core::Watchdog watchdog_;
  core::RecoveryManager recovery_;
  core::UpdateManager updates_;
  util::Logger logger_;
  core::LogManager log_manager_;
  core::DataPriorityAnalyzer priority_analyzer_;
  core::RemoteConfig remote_config_;
  bool urgent_data_today_ = false;
  bool forced_comms_counted_ = false;
  bool degraded_ = false;
  int failed_upload_days_ = 0;   // consecutive zero-progress upload days
  int degraded_since_day_ = 0;   // day_counter_ when degraded mode began

  std::vector<ProbeNode*> probes_;
  std::size_t probe_cursor_ = 0;      // per-run iteration over probes_
  std::size_t probe_offset_ = 0;      // daily round-robin start
  sim::SimTime run_started_{};
  sim::Duration probe_budget_used_{};
  std::size_t run_readings_ = 0;      // probe readings fetched this run
  std::vector<util::Volts> pending_voltages_;
  std::optional<proto::UploadFile> sensor_file_;
  core::PowerState state_;
  core::PowerState local_voltage_state_;
  std::optional<core::PowerState> last_override_;
  std::unique_ptr<core::ActionSequence> sequence_;
  std::vector<sim::EventId> gps_program_;
  // Deferred §IV cold-boot retry ("sleep for a day and try again") — tracked
  // so a checkpoint taken while a station waits out a flat battery restores
  // the retry instead of stranding it.
  std::optional<sim::EventId> recovery_retry_;
  std::vector<StateChange> state_history_;
  std::vector<DailyAverage> daily_averages_;
  std::vector<std::string> last_run_steps_;
  // Daily-run latency probe (simulated clock): armed at wake, observed into
  // station.run_seconds when the run finishes.
  std::optional<obs::ScopedTimer> run_timer_;
  // Brown-out edge time, for the recovery.time_to_recover_hours histogram.
  std::optional<sim::SimTime> brown_out_at_;
  StationStats stats_;
  int day_counter_ = 0;
  bool started_ = false;
};

}  // namespace gw::station
