#include "station/fleet.h"

#include <stdexcept>

#include "power/chargers.h"
#include "station/fleet_assembly.h"

namespace gw::station {

Fleet::Fleet(FleetConfig config)
    : config_(std::move(config)),
      simulation_(sim::to_time(config_.start)),
      environment_(config_.environment, config_.seed) {
  util::Rng rng{config_.seed};

  if (!config_.fault_spec.empty()) {
    auto plan = fault::FaultPlan::parse(config_.fault_spec);
    if (!plan.ok()) {
      throw std::invalid_argument("Fleet: " + plan.error().message);
    }
    fault_oracle_ = fault::FaultOracle{std::move(plan.value()),
                                      sim::to_time(config_.start)};
    fault_oracle_.set_hooks(obs::Hooks{&fault_metrics_, &fault_journal_});
    server_.set_fault_oracle(&fault_oracle_);
  }
  server_.set_received_window(config_.server_received_window);
  server_.set_station_queue_limit(config_.server_station_queue_limit);
  // Anomaly paths (ingest_rejected, future_report) journal into the rollup
  // sinks; an honest season under default limits records nothing here.
  server_.set_hooks(obs::Hooks{&rollup_, &rollup_journal_});

  // Pass 1: stations with their harvest mix, in spec order. Every station
  // forks its rng stream by name (order-insensitive), so the assembly
  // sequence itself never perturbs the draws.
  for (const StationSpec& spec : config_.stations) {
    auto& built = stations_.emplace_back(std::make_unique<Station>(
        simulation_, environment_, server_, rng.fork(spec.station.name),
        spec.station));
    if (!config_.fault_spec.empty()) built->set_fault_oracle(&fault_oracle_);
    for (const ChargerKind kind : spec.chargers) {
      built->add_charger(assembly::make_charger(kind));
    }
    if (!spec.sync_group.empty()) {
      server_.sync().assign_group(spec.station.name, spec.sync_group);
    }
  }

  // Pass 2: subglacial probes, attached to their serving station. Probe ids
  // start at 20 per station (the paper names probes 21/24/25); the rng /
  // trace namespace is station-scoped unless the legacy preset asked for
  // the bare two-station names.
  probes_.resize(stations_.size());
  for (std::size_t s = 0; s < config_.stations.size(); ++s) {
    const StationSpec& spec = config_.stations[s];
    for (int i = 0; i < spec.probe_count; ++i) {
      const auto& variant = assembly::probe_variant(i);
      ProbeNodeConfig probe_config;
      probe_config.probe_id = 20 + i;
      probe_config.conductivity_base_us = variant.base_us;
      probe_config.conductivity_gain_us = variant.gain_us;
      probe_config.link_quality_factor = variant.link_quality;
      probes_[s].push_back(std::make_unique<ProbeNode>(
          simulation_, environment_,
          rng.fork(
              probe_series_name(spec.station.name, probe_config.probe_id)),
          probe_config));
      stations_[s]->add_probe(*probes_[s].back());
    }
  }

  for (auto& built : stations_) built->start();

  if (config_.trace_enabled) sample_trace();
}

void Fleet::run_days(double days) {
  simulation_.run_until(simulation_.now() + sim::days(days));
}

Station* Fleet::find_station(const std::string& name) {
  for (auto& built : stations_) {
    if (built->name() == name) return built.get();
  }
  return nullptr;
}

int Fleet::probes_alive() const {
  int alive = 0;
  for (const auto& station_probes : probes_) {
    for (const auto& probe : station_probes) {
      if (probe->alive()) ++alive;
    }
  }
  return alive;
}

std::string Fleet::probe_series_name(const std::string& station,
                                     int probe_id) const {
  const std::string bare = "probe" + std::to_string(probe_id);
  return config_.station_scoped_probe_names ? station + "/" + bare : bare;
}

std::vector<Fleet::GroupStatus> Fleet::group_status() const {
  std::map<std::string, GroupStatus> by_group;
  for (const auto& built : stations_) {
    const std::string group = server_.sync().group_of(built->name());
    if (group.empty()) continue;
    GroupStatus& status = by_group[group];
    if (status.members == 0) {
      status.name = group;
      status.converged = true;
      status.state = built->current_state();
    } else if (built->current_state() != status.state) {
      status.converged = false;
    }
    ++status.members;
  }
  std::vector<GroupStatus> all;
  all.reserve(by_group.size());
  for (auto& [name, status] : by_group) all.push_back(std::move(status));
  return all;
}

obs::MetricsRegistry& Fleet::update_rollup() {
  int up = 0;
  double yield_bytes = 0.0;
  for (const auto& built : stations_) {
    if (built->current_state() != core::PowerState::kState0) ++up;
    yield_bytes += double(server_.bytes_from(built->name()).count());
  }
  const auto groups = group_status();
  int converged = 0;
  const std::int64_t now_ms = simulation_.now().millis_since_epoch();
  for (const auto& group : groups) {
    if (group.converged) ++converged;
    // Journal the flips, not the steady state: the rollup journal reads as
    // "when did pair g3 fall out of lockstep, when did it recover".
    const auto last = last_converged_.find(group.name);
    if (last == last_converged_.end() || last->second != group.converged) {
      rollup_journal_.record(
          now_ms,
          group.converged ? obs::EventType::kGroupConverged
                          : obs::EventType::kGroupDiverged,
          group.name, double(group.members),
          group.converged ? double(core::to_int(group.state)) : 0.0);
      last_converged_[group.name] = group.converged;
    }
  }
  rollup_.gauge("fleet", "stations_total").set(double(stations_.size()));
  rollup_.gauge("fleet", "stations_up").set(double(up));
  rollup_.gauge("fleet", "groups_total").set(double(groups.size()));
  rollup_.gauge("fleet", "groups_converged").set(double(converged));
  rollup_.gauge("fleet", "yield_bytes").set(yield_bytes);
  rollup_.gauge("fleet", "probes_alive").set(double(probes_alive()));
  return rollup_;
}

void Fleet::sample_trace() {
  const sim::SimTime now = simulation_.now();
  for (const auto& built : stations_) {
    const std::string prefix = built->name() + ".";
    trace_.add(prefix + "voltage", now,
               built->power().terminal_voltage().value());
    trace_.add(prefix + "state", now,
               double(core::to_int(built->current_state())));
    trace_.add(prefix + "soc", now, built->power().battery().soc());
  }
  for (std::size_t s = 0; s < stations_.size(); ++s) {
    for (const auto& probe : probes_[s]) {
      if (!probe->alive()) continue;
      const auto conductivity = environment_.melt().conductivity(
          now, environment_.temperature(),
          probe->config().conductivity_base_us,
          probe->config().conductivity_gain_us);
      trace_.add(
          probe_series_name(stations_[s]->name(), probe->id()) +
              ".conductivity",
          now, conductivity.value());
    }
  }
  trace_event_ =
      simulation_.schedule_in(config_.trace_interval, [this] { sample_trace(); });
}

FleetConfig uniform_fleet_config(int stations, std::uint64_t seed) {
  FleetConfig config;
  config.seed = seed;
  // Summer anchor (see the fault-soak harness): the glacier winter already
  // zeroes harvest for real; a scaling sweep wants the sync dynamics, not a
  // seasonal battery collapse.
  config.start = sim::DateTime{2008, 6, 1, 0, 0, 0};
  config.trace_enabled = false;
  config.server_received_window = 4096;
  config.stations.reserve(std::size_t(stations));
  for (int i = 0; i < stations; ++i) {
    const bool base_role = (i % 2 == 0);
    StationSpec spec;
    char name[8];
    std::snprintf(name, sizeof name, "s%03d", i);
    spec.station.name = name;
    spec.station.role = base_role ? StationRole::kBaseStation
                                  : StationRole::kReferenceStation;
    // Real fleets don't wake in perfect unison: stagger the daily windows
    // a few minutes apart (47 is coprime to 60, so offsets spread).
    spec.station.wake_time_of_day = sim::hours(12) + sim::minutes(i % 47);
    spec.station.initial_state = base_role ? core::PowerState::kState3
                                           : core::PowerState::kState2;
    spec.station.power.battery.initial_soc = base_role ? 1.0 : 0.7;
    char group[8];
    std::snprintf(group, sizeof group, "g%03d", i / 2);
    spec.sync_group = group;
    spec.chargers = base_role
                        ? std::vector<ChargerKind>{ChargerKind::kSolar,
                                                   ChargerKind::kWind}
                        : std::vector<ChargerKind>{ChargerKind::kSolar,
                                                   ChargerKind::kMains};
    spec.probe_count = base_role ? 2 : 0;
    config.stations.push_back(std::move(spec));
  }
  return config;
}

}  // namespace gw::station
