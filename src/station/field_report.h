// Field report generator: the season summary a Glacsweb operator reads.
//
// The paper's evaluation is exactly this kind of artefact — "has the
// system produced data continuously, what failed, what did it cost" — so
// the library ships a renderer that turns a Deployment's ledgers into the
// table the team would look at after a season (§VII: "data collated from
// the base station can provide useful insights into the condition of the
// system").
#pragma once

#include <string>

#include "station/deployment.h"
#include "util/strings.h"

namespace gw::station {

class FieldReport {
 public:
  explicit FieldReport(Deployment& deployment) : deployment_(deployment) {}

  [[nodiscard]] std::string render() const {
    std::string out;
    out += "GLACSWEB FIELD REPORT  (as of " +
           sim::format_iso(deployment_.simulation().now()) + ")\n";
    out += line();
    for (auto* station : {&deployment_.base(), &deployment_.reference()}) {
      out += render_station(*station);
    }
    out += render_probes();
    out += render_server();
    return out;
  }

 private:
  [[nodiscard]] static std::string line() {
    return std::string(64, '-') + "\n";
  }

  [[nodiscard]] std::string render_station(Station& station) const {
    const auto& stats = station.stats();
    std::string out;
    out += "[" + station.name() + " station]\n";
    out += "  power state " +
           std::to_string(core::to_int(station.current_state())) +
           ", battery " +
           util::format_fixed(100.0 * station.power().battery().soc(), 0) +
           "% SoC";
    if (station.power().browned_out()) out += "  ** BROWNED OUT **";
    out += "\n";
    out += "  runs: " + std::to_string(stats.runs_completed) + " ok, " +
           std::to_string(stats.runs_aborted) + " watchdog-aborted, " +
           std::to_string(stats.state0_days) + " state-0 days\n";
    out += "  failures: " + std::to_string(stats.brown_outs) +
           " brown-outs, " + std::to_string(stats.cold_boots) +
           " cold boots, " + std::to_string(stats.override_fetch_failures) +
           " override-fetch failures\n";
    out += "  dGPS: " + std::to_string(station.dgps().readings_taken()) +
           " readings, " + std::to_string(stats.gps_files_fetched) +
           " files fetched\n";
    out += "  GPRS: " + util::format_fixed(station.gprs().bytes_sent().mib(), 2) +
           " MiB, cost " + util::format_fixed(station.gprs().data_cost(), 2) +
           ", " + std::to_string(station.gprs().session_drops()) +
           " drops, " + std::to_string(station.gprs().hangs()) + " hangs\n";
    out += "  energy: " +
           util::format_fixed(station.power().total_harvested().value() / 3600.0,
                              1) +
           " Wh harvested / " +
           util::format_fixed(station.power().total_consumed().value() / 3600.0,
                              1) +
           " Wh consumed\n";
    if (station.config().role == StationRole::kBaseStation) {
      out += "  probes: " + std::to_string(stats.probe_readings_delivered) +
             " readings retrieved";
      if (stats.forced_comms_days > 0) {
        out += ", " + std::to_string(stats.forced_comms_days) +
               " data-priority forced sessions";
      }
      out += "\n";
    }
    out += line();
    return out;
  }

  [[nodiscard]] std::string render_probes() const {
    std::string out = "[subglacial probes]\n";
    int alive = 0;
    for (const auto& probe : deployment_.probes()) {
      if (probe->alive()) ++alive;
      out += "  probe " + std::to_string(probe->id()) + ": " +
             (probe->alive() ? "alive " : "OFFLINE") + "  sampled " +
             std::to_string(probe->readings_sampled()) + ", delivered " +
             std::to_string(probe->store().delivered_total()) +
             ", pending " + std::to_string(probe->store().pending_count()) +
             "\n";
    }
    out += "  " + std::to_string(alive) + "/" +
           std::to_string(deployment_.probes().size()) + " alive\n";
    out += line();
    return out;
  }

  [[nodiscard]] std::string render_server() const {
    auto& server = deployment_.server();
    std::string out = "[southampton]\n";
    out += "  received " + std::to_string(server.received().size()) +
           " files (" +
           util::format_fixed(server.bytes_from("base").mib() +
                                  server.bytes_from("reference").mib(),
                              2) +
           " MiB)\n";
    out += "  specials executed: " +
           std::to_string(server.special_results().size()) +
           ", update beacons: " + std::to_string(server.beacons().size()) +
           "\n";
    return out;
  }

  Deployment& deployment_;
};

}  // namespace gw::station
