// Internal assembly helpers shared by the serial Fleet and the
// ShardedFleet: the per-probe variant table (Fig 6's distinct conductivity
// curves) and the charger factory. Both assemblies must install identical
// hardware for a given spec, so the tables live in one place.
#pragma once

#include <cstddef>
#include <memory>
#include <stdexcept>

#include "power/chargers.h"
#include "station/fleet.h"

namespace gw::station::assembly {

// Per-probe spread: Fig 6 shows distinct conductivity curves for probes
// 21/24/25 — different positions relative to basal drainage give different
// baselines and melt responses; radio quality varies with depth/orientation.
// Fleets cycle the same seven variants per station.
struct ProbeVariant {
  double base_us;
  double gain_us;
  double link_quality;
};

inline constexpr ProbeVariant kProbeVariants[] = {
    {0.5, 9.0, 1.0},  {0.8, 13.5, 1.1}, {0.3, 7.0, 0.9}, {1.2, 15.0, 1.3},
    {0.6, 11.0, 1.0}, {0.9, 8.5, 1.2},  {0.4, 12.0, 0.8},
};

inline const ProbeVariant& probe_variant(int probe_index) {
  return kProbeVariants[std::size_t(probe_index) %
                        std::size(kProbeVariants)];
}

inline std::unique_ptr<power::Charger> make_charger(ChargerKind kind) {
  switch (kind) {
    case ChargerKind::kSolar:
      return std::make_unique<power::SolarPanel>(power::SolarPanelConfig{});
    case ChargerKind::kWind:
      return std::make_unique<power::WindTurbine>(power::WindTurbineConfig{});
    case ChargerKind::kMains:
      return std::make_unique<power::MainsCharger>(
          power::MainsChargerConfig{});
  }
  throw std::invalid_argument("Fleet: unknown charger kind");
}

}  // namespace gw::station::assembly
