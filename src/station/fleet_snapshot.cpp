// Fleet checkpoint / restore: the whole-world GWSNAP container
// (docs/SNAPSHOT.md).
//
// Layout is one section per subsystem, written in a fixed order:
//
//   meta               world shape — seed, start, station names, probe counts
//   kernel             simulation clock, sequence counter, live-event count
//   env                every environment model's stochastic state
//   fault              fault-oracle trip counters + instrumentation
//   server             the Southampton ingest/query server
//   fleet              trace, rollup sinks, convergence memory, trace event
//   station/<name>     one per station, in spec order
//   probe/<station>/<id>  one per probe, station-major
//
// Restore rebuilds the object graph by constructing a fresh Fleet from the
// identical FleetConfig (wiring, callbacks, and configuration all come from
// the constructor), then overwrites the dynamic state section by section.
// Pending events are not serialised as closures: each owner records a
// rebuild record (live flag + execution time + sequence number) and
// re-schedules its own callback through Simulation::schedule_rebuilt, which
// replays the exact heap position. The save refuses (kNotQuiescent) unless
// every pending kernel event is claimed by exactly one rebuild record —
// that is the catch-all that keeps untracked one-shot events (a comms
// session's power-down, a boot trampoline) from being silently dropped.

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "snapshot/archive.h"
#include "snapshot/error.h"
#include "snapshot/state_writer.h"
#include "station/fleet.h"

namespace gw::station {

namespace {

// The world-shape facts a snapshot is only valid against. Everything else
// about configuration is rebuilt by the Fleet constructor; these are the
// fields whose disagreement would make the restored bytes land in a
// structurally different world (wrong rng streams, wrong station list).
struct SnapshotMeta {
  std::uint64_t seed = 0;
  std::int64_t start_ms = 0;
  bool station_scoped_probe_names = true;
  std::vector<std::string> station_names;
  std::vector<std::uint64_t> probe_counts;

  template <class Archive>
  void persist(Archive& ar) {
    ar.value(seed);
    ar.value(start_ms);
    ar.value(station_scoped_probe_names);
    ar.value(station_names);
    ar.value(probe_counts);
  }
};

SnapshotMeta fleet_shape(const FleetConfig& config) {
  SnapshotMeta meta;
  meta.seed = config.seed;
  meta.start_ms = sim::to_time(config.start).millis_since_epoch();
  meta.station_scoped_probe_names = config.station_scoped_probe_names;
  meta.station_names.reserve(config.stations.size());
  meta.probe_counts.reserve(config.stations.size());
  for (const StationSpec& spec : config.stations) {
    meta.station_names.push_back(spec.station.name);
    meta.probe_counts.push_back(std::uint64_t(spec.probe_count));
  }
  return meta;
}

void check_meta(const SnapshotMeta& saved, const SnapshotMeta& mine) {
  using snapshot::SnapshotErrc;
  using snapshot::SnapshotError;
  if (saved.seed != mine.seed) {
    throw SnapshotError(SnapshotErrc::kStateMismatch,
                        "snapshot seed " + std::to_string(saved.seed) +
                            " != fleet seed " + std::to_string(mine.seed),
                        "meta");
  }
  if (saved.start_ms != mine.start_ms) {
    throw SnapshotError(SnapshotErrc::kStateMismatch,
                        "snapshot start " + std::to_string(saved.start_ms) +
                            "ms != fleet start " +
                            std::to_string(mine.start_ms) + "ms",
                        "meta");
  }
  if (saved.station_scoped_probe_names != mine.station_scoped_probe_names) {
    throw SnapshotError(SnapshotErrc::kStateMismatch,
                        "probe naming mode differs", "meta");
  }
  if (saved.station_names != mine.station_names) {
    throw SnapshotError(SnapshotErrc::kStateMismatch,
                        "station list differs (snapshot has " +
                            std::to_string(saved.station_names.size()) +
                            " stations, fleet has " +
                            std::to_string(mine.station_names.size()) + ")",
                        "meta");
  }
  if (saved.probe_counts != mine.probe_counts) {
    throw SnapshotError(SnapshotErrc::kStateMismatch,
                        "per-station probe counts differ", "meta");
  }
}

std::string station_section(const std::string& name) {
  return "station/" + name;
}

std::string probe_section(const std::string& station, int probe_id) {
  return "probe/" + station + "/" + std::to_string(probe_id);
}

}  // namespace

template <class Archive>
void Fleet::persist_fault_section(Archive& ar) {
  ar.value(fault_oracle_);
  ar.value(fault_metrics_);
  ar.value(fault_journal_);
}

template <class Archive>
void Fleet::persist_fleet_section(Archive& ar) {
  ar.value(trace_);
  ar.value(rollup_);
  ar.value(rollup_journal_);
  ar.value(last_converged_);
  sim::persist_pending(ar, simulation_, trace_event_,
                       [this] { sample_trace(); });
}

std::vector<std::uint8_t> Fleet::save_snapshot() {
  snapshot::StateWriter writer;
  std::size_t rebuild_records = 0;
  const auto write_section = [&](std::string name, auto&& fill) {
    snapshot::Saver saver;
    fill(saver);
    rebuild_records += saver.rebuild_records;
    writer.section(std::move(name), saver.take());
  };

  write_section("meta", [&](snapshot::Saver& ar) {
    SnapshotMeta meta = fleet_shape(config_);
    ar.value(meta);
  });
  write_section("kernel", [&](snapshot::Saver& ar) {
    auto checkpoint = simulation_.checkpoint();
    ar.value(checkpoint);
  });
  write_section("env", [&](snapshot::Saver& ar) { ar.value(environment_); });
  write_section("fault",
                [&](snapshot::Saver& ar) { persist_fault_section(ar); });
  write_section("server", [&](snapshot::Saver& ar) { ar.value(server_); });
  write_section("fleet",
                [&](snapshot::Saver& ar) { persist_fleet_section(ar); });
  for (std::size_t s = 0; s < stations_.size(); ++s) {
    write_section(station_section(stations_[s]->name()),
                  [&](snapshot::Saver& ar) { ar.value(*stations_[s]); });
    for (const auto& probe : probes_[s]) {
      write_section(probe_section(stations_[s]->name(), probe->id()),
                    [&](snapshot::Saver& ar) { ar.value(*probe); });
    }
  }

  // Every live kernel event must have been claimed by exactly one rebuild
  // record above. A shortfall means some component holds an untracked
  // one-shot (comms power-down, boot trampoline) — resuming without it
  // would silently change the world, so the save refuses instead.
  if (rebuild_records != simulation_.pending()) {
    throw snapshot::SnapshotError(
        snapshot::SnapshotErrc::kNotQuiescent,
        std::to_string(simulation_.pending()) + " pending events but " +
            std::to_string(rebuild_records) + " rebuild records",
        "kernel");
  }
  return writer.finish();
}

void Fleet::restore_snapshot(std::span<const std::uint8_t> bytes) {
  const snapshot::StateReader reader(bytes);
  const auto read_section = [&](const std::string& name, auto&& fill) {
    snapshot::Loader loader = reader.open(name);
    fill(loader);
    loader.expect_end();
  };

  // Shape check before any state is touched: a snapshot from a different
  // world must fail loudly, not half-apply.
  read_section("meta", [&](snapshot::Loader& ar) {
    SnapshotMeta saved;
    ar.value(saved);
    check_meta(saved, fleet_shape(config_));
  });

  sim::Simulation::KernelCheckpoint checkpoint;
  read_section("kernel",
               [&](snapshot::Loader& ar) { ar.value(checkpoint); });
  simulation_.begin_restore(checkpoint);

  read_section("env", [&](snapshot::Loader& ar) { ar.value(environment_); });
  read_section("fault",
               [&](snapshot::Loader& ar) { persist_fault_section(ar); });
  read_section("server", [&](snapshot::Loader& ar) { ar.value(server_); });
  read_section("fleet",
               [&](snapshot::Loader& ar) { persist_fleet_section(ar); });
  for (std::size_t s = 0; s < stations_.size(); ++s) {
    read_section(station_section(stations_[s]->name()),
                 [&](snapshot::Loader& ar) { ar.value(*stations_[s]); });
    for (auto& probe : probes_[s]) {
      read_section(probe_section(stations_[s]->name(), probe->id()),
                   [&](snapshot::Loader& ar) { ar.value(*probe); });
    }
  }

  simulation_.finish_restore();
}

}  // namespace gw::station
