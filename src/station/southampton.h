// The Southampton server.
//
// §III: "the communications are managed by a server in Southampton" — it is
// the only rendezvous between the stations. It keeps the state-sync ledger
// (core::SyncServer, sync-group aware), queues "special" command scripts
// and update packages per station, receives the daily data/log uploads, and
// collects MD5 beacons. The received-data ledger is what the architecture
// and backlog benches measure as *yield*.
//
// Fleet hygiene: per-station totals (files, bytes) are maintained as exact
// counters in receive_file, so queries are O(log stations) regardless of
// how many files a 130-day × N-station soak has ingested; the raw receipt
// ledger can be capped behind a rolling window (set_received_window) so
// memory stays bounded while the totals stay exact. Read paths never
// mutate: fetching from a station with nothing queued leaves the ledgers
// untouched.
#pragma once

#include <deque>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/remote_config.h"
#include "core/special_command.h"
#include "core/state_sync.h"
#include "core/update_manager.h"
#include "fault/fault.h"
#include "sim/time.h"
#include "util/units.h"

namespace gw::station {

struct ReceivedFile {
  std::string station;
  std::string name;
  util::Bytes size{0};
  sim::SimTime received_at{};
};

class SouthamptonServer {
 public:
  // --- availability -----------------------------------------------------

  // Attaches scripted fault windows (server_down); null detaches. The
  // server itself stays deterministic: it only reports the active outage
  // severity, and each *station* draws its own reachability Bernoulli
  // against it (so two stations can disagree about a partial outage, as
  // they would about a flaky internet path).
  void set_fault_oracle(fault::FaultOracle* oracle) { oracle_ = oracle; }

  // Severity of any active server_down window at `now` (0 = fully up,
  // 1 = hard down for the whole window).
  [[nodiscard]] double down_severity(sim::SimTime now) const {
    return oracle_ != nullptr
               ? oracle_->severity(fault::FaultKind::kServerDown, now)
               : 0.0;
  }

  [[nodiscard]] fault::FaultOracle* fault_oracle() const { return oracle_; }

  // --- state sync -----------------------------------------------------

  [[nodiscard]] core::SyncServer& sync() { return sync_; }
  [[nodiscard]] const core::SyncServer& sync() const { return sync_; }

  // --- data ingest ------------------------------------------------------

  // Caps the raw receipt ledger to the most recent `window` files (0 =
  // unbounded, the legacy behaviour). Totals from files_from/bytes_from are
  // unaffected: they are counters, not scans.
  void set_received_window(std::size_t window) {
    received_window_ = window;
    trim_received();
  }
  [[nodiscard]] std::size_t received_window() const {
    return received_window_;
  }

  void receive_file(const std::string& station, const std::string& name,
                    util::Bytes size, sim::SimTime at) {
    received_.push_back(ReceivedFile{station, name, size, at});
    bytes_by_station_[station] += size;
    ++files_by_station_[station];
    ++files_received_;
    trim_received();
  }

  // The rolling receipt window (all receipts when no window is set).
  [[nodiscard]] const std::deque<ReceivedFile>& received() const {
    return received_;
  }

  // Exact lifetime totals, independent of the receipt window.
  [[nodiscard]] std::uint64_t files_received() const {
    return files_received_;
  }

  [[nodiscard]] util::Bytes bytes_from(const std::string& station) const {
    const auto it = bytes_by_station_.find(station);
    return it == bytes_by_station_.end() ? util::Bytes{0} : it->second;
  }

  [[nodiscard]] int files_from(const std::string& station) const {
    const auto it = files_by_station_.find(station);
    return it == files_by_station_.end() ? 0 : it->second;
  }

  // --- special commands ---------------------------------------------------

  void queue_special(const std::string& station,
                     core::SpecialCommand command) {
    specials_[station].push_back(std::move(command));
  }

  [[nodiscard]] std::optional<core::SpecialCommand> fetch_special(
      const std::string& station) {
    const auto it = specials_.find(station);
    if (it == specials_.end() || it->second.empty()) return std::nullopt;
    core::SpecialCommand command = it->second.front();
    it->second.pop_front();
    return command;
  }

  void record_special_result(core::SpecialExecution execution) {
    special_results_.push_back(std::move(execution));
  }

  [[nodiscard]] const std::vector<core::SpecialExecution>& special_results()
      const {
    return special_results_;
  }

  // --- remote configuration (§V lesson) -----------------------------------

  void queue_config_update(const std::string& station,
                           core::ConfigUpdate update) {
    config_updates_[station].push_back(std::move(update));
  }

  [[nodiscard]] std::optional<core::ConfigUpdate> fetch_config_update(
      const std::string& station) {
    const auto it = config_updates_.find(station);
    if (it == config_updates_.end() || it->second.empty()) {
      return std::nullopt;
    }
    core::ConfigUpdate update = it->second.front();
    it->second.pop_front();
    return update;
  }

  // --- code updates ------------------------------------------------------

  void queue_update(const std::string& station, core::UpdatePackage package) {
    updates_[station].push_back(std::move(package));
  }

  [[nodiscard]] std::optional<core::UpdatePackage> fetch_update(
      const std::string& station) {
    const auto it = updates_.find(station);
    if (it == updates_.end() || it->second.empty()) return std::nullopt;
    core::UpdatePackage package = it->second.front();
    it->second.pop_front();
    return package;
  }

  void receive_beacon(core::UpdateBeacon beacon, sim::SimTime at) {
    beacons_.push_back({std::move(beacon), at});
  }

  struct TimedBeacon {
    core::UpdateBeacon beacon;
    sim::SimTime at{};
  };
  [[nodiscard]] const std::vector<TimedBeacon>& beacons() const {
    return beacons_;
  }

  // --- shard-message drains (sim/sharded_simulation.h) --------------------
  //
  // A sharded fleet runs one replica of this server per station and relays
  // what the station handed its replica — receipts, beacons, special
  // results — to the authoritative hub as timestamped messages drained at
  // window barriers (docs/PARALLELISM.md). Drains move the raw ledgers out
  // in arrival order; the exact per-station totals are counters and stay.

  [[nodiscard]] std::vector<ReceivedFile> drain_received() {
    std::vector<ReceivedFile> drained{
        std::make_move_iterator(received_.begin()),
        std::make_move_iterator(received_.end())};
    received_.clear();
    return drained;
  }

  [[nodiscard]] std::vector<TimedBeacon> drain_beacons() {
    std::vector<TimedBeacon> drained;
    drained.swap(beacons_);
    return drained;
  }

  [[nodiscard]] std::vector<core::SpecialExecution> drain_special_results() {
    std::vector<core::SpecialExecution> drained;
    drained.swap(special_results_);
    return drained;
  }

  // --- ledger introspection (tests / leak guards) -------------------------

  // Number of stations with a materialised queue of each kind. Queues are
  // created by queue_* only; fetch_* from an unknown station must leave
  // these counts unchanged.
  [[nodiscard]] std::size_t special_queue_count() const {
    return specials_.size();
  }
  [[nodiscard]] std::size_t update_queue_count() const {
    return updates_.size();
  }
  [[nodiscard]] std::size_t config_update_queue_count() const {
    return config_updates_.size();
  }

 private:
  void trim_received() {
    if (received_window_ == 0) return;
    while (received_.size() > received_window_) received_.pop_front();
  }

  fault::FaultOracle* oracle_ = nullptr;
  core::SyncServer sync_;
  std::deque<ReceivedFile> received_;
  std::size_t received_window_ = 0;  // 0 = unbounded
  std::uint64_t files_received_ = 0;
  std::map<std::string, util::Bytes> bytes_by_station_;
  std::map<std::string, int> files_by_station_;
  std::map<std::string, std::deque<core::SpecialCommand>> specials_;
  std::map<std::string, std::deque<core::UpdatePackage>> updates_;
  std::map<std::string, std::deque<core::ConfigUpdate>> config_updates_;
  std::vector<core::SpecialExecution> special_results_;
  std::vector<TimedBeacon> beacons_;
};

}  // namespace gw::station
