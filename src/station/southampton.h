// The Southampton server.
//
// §III: "the communications are managed by a server in Southampton" — it is
// the only rendezvous between the stations. It keeps the state-sync ledger
// (core::SyncServer, sync-group aware), queues "special" command scripts
// and update packages per station, receives the daily data/log uploads, and
// collects MD5 beacons. The received-data ledger is what the architecture
// and backlog benches measure as *yield*.
//
// Service core: the command/update/config queues live in ingest *stripes*
// keyed by sync group (ungrouped stations stripe by name), so a fleet's
// control traffic partitions the way its deployments do; per-station queues
// can be bounded (set_station_queue_limit) and a full queue *rejects* the
// enqueue — explicit backpressure with a journalled drop, never an
// unbounded deque on a 130-day soak. The raw receipt ledger can be folded
// into exact per-station summaries (compact_received) or capped behind a
// rolling window (set_received_window); the lifetime totals are counters
// and survive both. Read paths never mutate: fetching or querying a station
// with nothing queued leaves the ledgers untouched.
//
// The server also answers a consumer read API (proto "consumer read API"
// messages): station directory, per-station season rollups, and sync-group
// convergence status, all dispatched through handle_query so query traffic
// pays real wire sizes and corrupt requests are refused, not trusted.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/remote_config.h"
#include "core/special_command.h"
#include "core/state_sync.h"
#include "core/update_manager.h"
#include "fault/fault.h"
#include "obs/journal.h"
#include "proto/messages.h"
#include "sim/time.h"
#include "util/units.h"

namespace gw::station {

struct ReceivedFile {
  std::string station;
  std::string name;
  util::Bytes size{0};
  sim::SimTime received_at{};

  template <class Archive>
  void persist(Archive& ar) {
    ar.value(station);
    ar.value(name);
    ar.value(size);
    ar.value(received_at);
  }
};

// What compact_received() folds a station's raw receipts into: the exact
// file/byte totals of every receipt compacted so far, plus the covered
// time range. Totals here + the surviving raw deque always equal the
// lifetime counters — compaction moves precision around, it never loses it.
struct ReceiptSummary {
  std::int64_t files = 0;
  util::Bytes bytes{0};
  sim::SimTime first_at{};
  sim::SimTime last_at{};

  template <class Archive>
  void persist(Archive& ar) {
    ar.value(files);
    ar.value(bytes);
    ar.value(first_at);
    ar.value(last_at);
  }
};

class SouthamptonServer {
 public:
  // --- availability -----------------------------------------------------

  // Attaches scripted fault windows (server_down); null detaches. The
  // server itself stays deterministic: it only reports the active outage
  // severity, and each *station* draws its own reachability Bernoulli
  // against it (so two stations can disagree about a partial outage, as
  // they would about a flaky internet path).
  void set_fault_oracle(fault::FaultOracle* oracle) { oracle_ = oracle; }

  // Severity of any active server_down window at `now` (0 = fully up,
  // 1 = hard down for the whole window).
  [[nodiscard]] double down_severity(sim::SimTime now) const {
    return oracle_ != nullptr
               ? oracle_->severity(fault::FaultKind::kServerDown, now)
               : 0.0;
  }

  [[nodiscard]] fault::FaultOracle* fault_oracle() const { return oracle_; }

  // --- instrumentation ----------------------------------------------------

  // Wires the journal into the server's anomaly paths (kIngestRejected)
  // and forwards the same hooks to the sync ledger (kFutureReport). Honest
  // traffic under default limits records nothing.
  void set_hooks(obs::Hooks hooks) {
    hooks_ = hooks;
    sync_.set_hooks(hooks);
  }

  // --- state sync -----------------------------------------------------

  [[nodiscard]] core::SyncServer& sync() { return sync_; }
  [[nodiscard]] const core::SyncServer& sync() const { return sync_; }

  // --- ingest striping & backpressure -------------------------------------

  // Repartitions the command/update/config queues over `count` stripes
  // (min 1). Existing queues are re-hashed, so this is safe at any time,
  // but it is configuration: set it at fleet assembly, next to the sync
  // groups that define the stripe keys.
  void set_ingest_stripes(std::size_t count);
  [[nodiscard]] std::size_t ingest_stripes() const { return stripes_.size(); }

  // Caps every per-station queue (each kind separately) at `limit` items;
  // 0 = unbounded (the legacy behaviour). A full queue makes queue_*
  // return false and journal a kIngestRejected drop.
  void set_station_queue_limit(std::size_t limit) {
    station_queue_limit_ = limit;
  }
  [[nodiscard]] std::size_t station_queue_limit() const {
    return station_queue_limit_;
  }

  // Enqueues refused by a full per-station queue (all kinds).
  [[nodiscard]] std::uint64_t ingest_rejected() const {
    return ingest_rejected_;
  }

  // --- data ingest ------------------------------------------------------

  // Caps the raw receipt ledger to the most recent `window` files (0 =
  // unbounded, the legacy behaviour). Totals from files_from/bytes_from are
  // unaffected: they are counters, not scans.
  void set_received_window(std::size_t window) {
    received_window_ = window;
    trim_received();
  }
  [[nodiscard]] std::size_t received_window() const {
    return received_window_;
  }

  void receive_file(const std::string& station, const std::string& name,
                    util::Bytes size, sim::SimTime at) {
    received_.push_back(ReceivedFile{station, name, size, at});
    bytes_by_station_[station] += size;
    ++files_by_station_[station];
    ++files_received_;
    trim_received();
  }

  // The rolling receipt window (all receipts when no window is set).
  [[nodiscard]] const std::deque<ReceivedFile>& received() const {
    return received_;
  }

  // Folds every raw receipt into its station's ReceiptSummary and clears
  // the raw deque. Returns the number of receipts folded. Lifetime totals
  // (files_received, files_from, bytes_from) are untouched; the summaries
  // account exactly for everything ever compacted.
  std::size_t compact_received();

  // Per-station compaction summaries, in name order (std::map).
  [[nodiscard]] const std::map<std::string, ReceiptSummary>&
  receipt_summaries() const {
    return receipt_summaries_;
  }

  [[nodiscard]] std::uint64_t compactions() const { return compactions_; }

  // Exact lifetime totals, independent of the receipt window/compaction.
  [[nodiscard]] std::uint64_t files_received() const {
    return files_received_;
  }

  [[nodiscard]] util::Bytes bytes_from(const std::string& station) const {
    const auto it = bytes_by_station_.find(station);
    return it == bytes_by_station_.end() ? util::Bytes{0} : it->second;
  }

  [[nodiscard]] int files_from(const std::string& station) const {
    const auto it = files_by_station_.find(station);
    return it == files_by_station_.end() ? 0 : it->second;
  }

  // --- special commands ---------------------------------------------------

  // queue_* return false when the station's queue of that kind is full
  // (set_station_queue_limit); the item is dropped and the drop journalled.
  // Unbounded queues (the default) always accept.
  bool queue_special(const std::string& station, core::SpecialCommand command,
                     sim::SimTime at = sim::kEpoch) {
    return enqueue(stripe_for(station).specials, station, std::move(command),
                   kSpecialQueue, at);
  }

  [[nodiscard]] std::optional<core::SpecialCommand> fetch_special(
      const std::string& station) {
    return dequeue(stripe_for(station).specials, station);
  }

  void record_special_result(core::SpecialExecution execution) {
    special_results_.push_back(std::move(execution));
  }

  [[nodiscard]] const std::vector<core::SpecialExecution>& special_results()
      const {
    return special_results_;
  }

  // --- remote configuration (§V lesson) -----------------------------------

  bool queue_config_update(const std::string& station,
                           core::ConfigUpdate update,
                           sim::SimTime at = sim::kEpoch) {
    return enqueue(stripe_for(station).config_updates, station,
                   std::move(update), kConfigQueue, at);
  }

  [[nodiscard]] std::optional<core::ConfigUpdate> fetch_config_update(
      const std::string& station) {
    return dequeue(stripe_for(station).config_updates, station);
  }

  // --- code updates ------------------------------------------------------

  bool queue_update(const std::string& station, core::UpdatePackage package,
                    sim::SimTime at = sim::kEpoch) {
    return enqueue(stripe_for(station).updates, station, std::move(package),
                   kUpdateQueue, at);
  }

  [[nodiscard]] std::optional<core::UpdatePackage> fetch_update(
      const std::string& station) {
    return dequeue(stripe_for(station).updates, station);
  }

  void receive_beacon(const std::string& station, core::UpdateBeacon beacon,
                      sim::SimTime at) {
    ++beacons_by_station_[station];
    beacons_.push_back({station, std::move(beacon), at});
  }

  struct TimedBeacon {
    std::string station;
    core::UpdateBeacon beacon;
    sim::SimTime at{};

    template <class Archive>
    void persist(Archive& ar) {
      ar.value(station);
      ar.value(beacon);
      ar.value(at);
    }
  };
  [[nodiscard]] const std::vector<TimedBeacon>& beacons() const {
    return beacons_;
  }

  [[nodiscard]] std::int64_t beacons_from(const std::string& station) const {
    const auto it = beacons_by_station_.find(station);
    return it == beacons_by_station_.end() ? 0 : it->second;
  }

  // --- consumer read API --------------------------------------------------

  // Every station the read side knows about — sync-ledger reporters, data
  // uploaders, beacon senders — in name order. Stations that are only
  // *targets* (queued commands, never heard from) are not listed: the
  // directory is evidence of contact, not intent.
  [[nodiscard]] std::vector<std::string> station_directory() const;

  // Season rollup for one station; known=false when the directory has
  // never heard of it (zero counters, not an error).
  [[nodiscard]] proto::StationStatsResponse station_stats(
      const std::string& station) const;

  // Decodes one client query wire, serves it, and returns the encoded
  // response (a typed response or a QueryError with reason "bad_wire",
  // "bad_request" or "unknown_msg"). Read-only with respect to the
  // ledgers; only the query counters move.
  [[nodiscard]] std::string handle_query(const std::string& wire,
                                         sim::SimTime now = sim::kEpoch);

  [[nodiscard]] std::uint64_t queries_served() const {
    return queries_served_;
  }
  [[nodiscard]] std::uint64_t queries_refused() const {
    return queries_refused_;
  }

  // --- shard-message drains (sim/sharded_simulation.h) --------------------
  //
  // A sharded fleet runs one replica of this server per station and relays
  // what the station handed its replica — receipts, beacons, special
  // results — to the authoritative hub as timestamped messages drained at
  // window barriers (docs/PARALLELISM.md). Drains move the raw ledgers out
  // in arrival order; the exact per-station totals are counters and stay.

  [[nodiscard]] std::vector<ReceivedFile> drain_received() {
    std::vector<ReceivedFile> drained{
        std::make_move_iterator(received_.begin()),
        std::make_move_iterator(received_.end())};
    received_.clear();
    return drained;
  }

  [[nodiscard]] std::vector<TimedBeacon> drain_beacons() {
    std::vector<TimedBeacon> drained;
    drained.swap(beacons_);
    return drained;
  }

  [[nodiscard]] std::vector<core::SpecialExecution> drain_special_results() {
    std::vector<core::SpecialExecution> drained;
    drained.swap(special_results_);
    return drained;
  }

  // --- ledger introspection (tests / leak guards) -------------------------

  // Number of stations with a *non-empty* queue of each kind, summed over
  // the stripes. Draining a station's queue releases its map entry, so a
  // long-lived server's counts reflect pending work, not traffic history.
  [[nodiscard]] std::size_t special_queue_count() const {
    std::size_t count = 0;
    for (const auto& stripe : stripes_) count += stripe.specials.size();
    return count;
  }
  [[nodiscard]] std::size_t update_queue_count() const {
    std::size_t count = 0;
    for (const auto& stripe : stripes_) count += stripe.updates.size();
    return count;
  }
  [[nodiscard]] std::size_t config_update_queue_count() const {
    std::size_t count = 0;
    for (const auto& stripe : stripes_) count += stripe.config_updates.size();
    return count;
  }

  // Snapshot support (docs/SNAPSHOT.md). Everything including the stripe
  // layout (the saved stripe count re-partitions the queues identically);
  // the fault oracle and hooks are wiring.
  template <class Archive>
  void persist(Archive& ar) {
    ar.value(sync_);
    ar.value(received_);
    ar.value(received_window_);
    ar.value(receipt_summaries_);
    ar.value(compactions_);
    ar.value(files_received_);
    ar.value(bytes_by_station_);
    ar.value(files_by_station_);
    ar.value(beacons_by_station_);
    ar.value(stripes_);
    ar.value(station_queue_limit_);
    ar.value(ingest_rejected_);
    ar.value(queries_served_);
    ar.value(queries_refused_);
    ar.value(special_results_);
    ar.value(beacons_);
  }

 private:
  // Journal `a` codes for kIngestRejected (docs/OBSERVABILITY.md).
  static constexpr int kSpecialQueue = 0;
  static constexpr int kUpdateQueue = 1;
  static constexpr int kConfigQueue = 2;

  static constexpr std::size_t kDefaultIngestStripes = 8;

  struct IngestStripe {
    std::map<std::string, std::deque<core::SpecialCommand>> specials;
    std::map<std::string, std::deque<core::UpdatePackage>> updates;
    std::map<std::string, std::deque<core::ConfigUpdate>> config_updates;

    template <class Archive>
    void persist(Archive& ar) {
      ar.value(specials);
      ar.value(updates);
      ar.value(config_updates);
    }
  };

  // The stripe key is the station's sync group when it has one — a dGPS
  // pair's control traffic lands together — and the station name otherwise.
  [[nodiscard]] IngestStripe& stripe_for(const std::string& station) {
    const std::string group = sync_.group_of(station);
    return stripes_[stripe_index(group.empty() ? station : group)];
  }
  [[nodiscard]] std::size_t stripe_index(const std::string& key) const;

  template <typename Item>
  bool enqueue(std::map<std::string, std::deque<Item>>& queues,
               const std::string& station, Item item, int kind,
               sim::SimTime at) {
    if (station_queue_limit_ != 0) {
      const auto it = queues.find(station);
      if (it != queues.end() && it->second.size() >= station_queue_limit_) {
        ++ingest_rejected_;
        if (hooks_.journal != nullptr) {
          hooks_.journal->record(at.millis_since_epoch(),
                                 obs::EventType::kIngestRejected,
                                 "southampton", double(kind),
                                 double(station_queue_limit_));
        }
        return false;
      }
    }
    queues[station].push_back(std::move(item));
    return true;
  }

  // Move-out pop; releases the station's map entry once its deque empties
  // so drained queues cannot accumulate as permanent empty tombstones.
  template <typename Item>
  static std::optional<Item> dequeue(
      std::map<std::string, std::deque<Item>>& queues,
      const std::string& station) {
    const auto it = queues.find(station);
    if (it == queues.end() || it->second.empty()) return std::nullopt;
    Item item = std::move(it->second.front());
    it->second.pop_front();
    if (it->second.empty()) queues.erase(it);
    return item;
  }

  void trim_received() {
    if (received_window_ == 0) return;
    while (received_.size() > received_window_) received_.pop_front();
  }

  fault::FaultOracle* oracle_ = nullptr;
  obs::Hooks hooks_;
  core::SyncServer sync_;
  std::deque<ReceivedFile> received_;
  std::size_t received_window_ = 0;  // 0 = unbounded
  std::map<std::string, ReceiptSummary> receipt_summaries_;
  std::uint64_t compactions_ = 0;
  std::uint64_t files_received_ = 0;
  std::map<std::string, util::Bytes> bytes_by_station_;
  std::map<std::string, int> files_by_station_;
  std::map<std::string, std::int64_t> beacons_by_station_;
  std::vector<IngestStripe> stripes_{kDefaultIngestStripes};
  std::size_t station_queue_limit_ = 0;  // 0 = unbounded
  std::uint64_t ingest_rejected_ = 0;
  std::uint64_t queries_served_ = 0;
  std::uint64_t queries_refused_ = 0;
  std::vector<core::SpecialExecution> special_results_;
  std::vector<TimedBeacon> beacons_;
};

}  // namespace gw::station
