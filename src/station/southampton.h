// The Southampton server.
//
// §III: "the communications are managed by a server in Southampton" — it is
// the only rendezvous between the two stations. It keeps the state-sync
// ledger (core::SyncServer), queues "special" command scripts and update
// packages per station, receives the daily data/log uploads, and collects
// MD5 beacons. The received-data ledger is what the architecture and
// backlog benches measure as *yield*.
#pragma once

#include <deque>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/remote_config.h"
#include "core/special_command.h"
#include "core/state_sync.h"
#include "core/update_manager.h"
#include "fault/fault.h"
#include "sim/time.h"
#include "util/units.h"

namespace gw::station {

struct ReceivedFile {
  std::string station;
  std::string name;
  util::Bytes size{0};
  sim::SimTime received_at{};
};

class SouthamptonServer {
 public:
  // --- availability -----------------------------------------------------

  // Attaches scripted fault windows (server_down); null detaches. The
  // server itself stays deterministic: it only reports the active outage
  // severity, and each *station* draws its own reachability Bernoulli
  // against it (so two stations can disagree about a partial outage, as
  // they would about a flaky internet path).
  void set_fault_oracle(fault::FaultOracle* oracle) { oracle_ = oracle; }

  // Severity of any active server_down window at `now` (0 = fully up,
  // 1 = hard down for the whole window).
  [[nodiscard]] double down_severity(sim::SimTime now) const {
    return oracle_ != nullptr
               ? oracle_->severity(fault::FaultKind::kServerDown, now)
               : 0.0;
  }

  [[nodiscard]] fault::FaultOracle* fault_oracle() const { return oracle_; }

  // --- state sync -----------------------------------------------------

  [[nodiscard]] core::SyncServer& sync() { return sync_; }

  // --- data ingest ------------------------------------------------------

  void receive_file(const std::string& station, const std::string& name,
                    util::Bytes size, sim::SimTime at) {
    received_.push_back(ReceivedFile{station, name, size, at});
    bytes_by_station_[station] += size;
  }

  [[nodiscard]] const std::vector<ReceivedFile>& received() const {
    return received_;
  }

  [[nodiscard]] util::Bytes bytes_from(const std::string& station) const {
    const auto it = bytes_by_station_.find(station);
    return it == bytes_by_station_.end() ? util::Bytes{0} : it->second;
  }

  [[nodiscard]] int files_from(const std::string& station) const {
    int n = 0;
    for (const auto& file : received_) {
      if (file.station == station) ++n;
    }
    return n;
  }

  // --- special commands ---------------------------------------------------

  void queue_special(const std::string& station,
                     core::SpecialCommand command) {
    specials_[station].push_back(std::move(command));
  }

  [[nodiscard]] std::optional<core::SpecialCommand> fetch_special(
      const std::string& station) {
    auto& queue = specials_[station];
    if (queue.empty()) return std::nullopt;
    core::SpecialCommand command = queue.front();
    queue.pop_front();
    return command;
  }

  void record_special_result(core::SpecialExecution execution) {
    special_results_.push_back(std::move(execution));
  }

  [[nodiscard]] const std::vector<core::SpecialExecution>& special_results()
      const {
    return special_results_;
  }

  // --- remote configuration (§V lesson) -----------------------------------

  void queue_config_update(const std::string& station,
                           core::ConfigUpdate update) {
    config_updates_[station].push_back(std::move(update));
  }

  [[nodiscard]] std::optional<core::ConfigUpdate> fetch_config_update(
      const std::string& station) {
    auto& queue = config_updates_[station];
    if (queue.empty()) return std::nullopt;
    core::ConfigUpdate update = queue.front();
    queue.pop_front();
    return update;
  }

  // --- code updates ------------------------------------------------------

  void queue_update(const std::string& station, core::UpdatePackage package) {
    updates_[station].push_back(std::move(package));
  }

  [[nodiscard]] std::optional<core::UpdatePackage> fetch_update(
      const std::string& station) {
    auto& queue = updates_[station];
    if (queue.empty()) return std::nullopt;
    core::UpdatePackage package = queue.front();
    queue.pop_front();
    return package;
  }

  void receive_beacon(core::UpdateBeacon beacon, sim::SimTime at) {
    beacons_.push_back({std::move(beacon), at});
  }

  struct TimedBeacon {
    core::UpdateBeacon beacon;
    sim::SimTime at{};
  };
  [[nodiscard]] const std::vector<TimedBeacon>& beacons() const {
    return beacons_;
  }

 private:
  fault::FaultOracle* oracle_ = nullptr;
  core::SyncServer sync_;
  std::vector<ReceivedFile> received_;
  std::map<std::string, util::Bytes> bytes_by_station_;
  std::map<std::string, std::deque<core::SpecialCommand>> specials_;
  std::map<std::string, std::deque<core::UpdatePackage>> updates_;
  std::map<std::string, std::deque<core::ConfigUpdate>> config_updates_;
  std::vector<core::SpecialExecution> special_results_;
  std::vector<TimedBeacon> beacons_;
};

}  // namespace gw::station
