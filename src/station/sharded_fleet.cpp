#include "station/sharded_fleet.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "station/fleet_assembly.h"

namespace gw::station {

sim::Duration derive_fleet_lookahead(const FleetConfig& config) {
  // The fastest cross-boundary interaction is a report landing in
  // Southampton: no station can influence another before its GPRS session
  // has even registered. One extra second stands in for the first byte of
  // transfer — generous lookahead only costs window length, never
  // correctness.
  if (config.stations.empty()) return sim::minutes(1);
  sim::Duration min_registration =
      config.stations.front().station.gprs.registration_time;
  for (const StationSpec& spec : config.stations) {
    min_registration =
        std::min(min_registration, spec.station.gprs.registration_time);
  }
  if (min_registration <= sim::Duration{0}) {
    min_registration = sim::seconds(1);
  }
  return min_registration + sim::seconds(1);
}

ShardedFleet::ShardedFleet(ShardedFleetConfig config)
    : config_(std::move(config)) {
  FleetConfig& fleet = config_.fleet;
  if (config_.latency <= sim::Duration{0}) {
    config_.latency = derive_fleet_lookahead(fleet);
  }

  // Partition: distinct groups in spec-appearance order, round-robined
  // over shards; an ungrouped station forms a singleton group keyed by its
  // own (unique) name. Appearance order is configuration, so the
  // assignment never depends on thread scheduling.
  std::map<std::string, std::size_t> group_slot;
  std::size_t distinct_groups = 0;
  for (const StationSpec& spec : fleet.stations) {
    const std::string key = spec.sync_group.empty()
                                ? "~solo:" + spec.station.name
                                : spec.sync_group;
    if (group_slot.emplace(key, distinct_groups).second) ++distinct_groups;
  }
  if (distinct_groups == 0) distinct_groups = 1;
  const std::size_t shard_count =
      std::clamp<std::size_t>(config_.shards, 1, distinct_groups);

  sim::ShardedConfig sharded_config;
  sharded_config.shards = shard_count;
  sharded_config.workers = config_.workers;
  sharded_config.lookahead = config_.latency;
  sharded_config.start = sim::to_time(fleet.start);
  sharded_ = std::make_unique<sim::ShardedSimulation>(sharded_config);

  std::optional<fault::FaultPlan> plan;
  if (!fleet.fault_spec.empty()) {
    auto parsed = fault::FaultPlan::parse(fleet.fault_spec);
    if (!parsed.ok()) {
      throw std::invalid_argument("ShardedFleet: " + parsed.error().message);
    }
    plan = std::move(parsed.value());
  }

  hub_.set_received_window(fleet.server_received_window);
  hub_.set_station_queue_limit(fleet.server_station_queue_limit);
  // Hub-side anomaly journal (ingest_rejected, future_report) mirrors the
  // serial Fleet wiring; honest seasons record nothing here. The replicas
  // stay uninstrumented — their ledgers drain into the hub anyway.
  hub_.set_hooks(obs::Hooks{&rollup_, &rollup_journal_});

  util::Rng rng{fleet.seed};

  // Pass 1: one world per station, on its group's shard. The replica
  // server mirrors the serial wiring (oracle, sync groups) but owns only
  // this station's traffic; its report log feeds the barrier drains.
  worlds_.reserve(fleet.stations.size());
  for (const StationSpec& spec : fleet.stations) {
    auto world = std::make_unique<World>();
    const std::string key = spec.sync_group.empty()
                                ? "~solo:" + spec.station.name
                                : spec.sync_group;
    world->shard = group_slot.at(key) % shard_count;
    world->group = spec.sync_group;
    world->environment =
        std::make_unique<env::Environment>(fleet.environment, fleet.seed);
    world->server = std::make_unique<SouthamptonServer>();
    world->server->set_station_queue_limit(fleet.server_station_queue_limit);
    world->server->sync().enable_report_log();
    if (plan.has_value()) {
      world->oracle = std::make_unique<fault::FaultOracle>(
          *plan, sim::to_time(fleet.start));
      world->oracle->set_hooks(
          obs::Hooks{&world->fault_metrics, &world->fault_journal});
      world->server->set_fault_oracle(world->oracle.get());
    }
    world->station = std::make_unique<Station>(
        sharded_->shard(world->shard), *world->environment, *world->server,
        rng.fork(spec.station.name), spec.station);
    if (plan.has_value()) {
      world->station->set_fault_oracle(world->oracle.get());
    }
    for (const ChargerKind kind : spec.chargers) {
      world->station->add_charger(assembly::make_charger(kind));
    }
    if (!spec.sync_group.empty()) {
      groups_[spec.sync_group].push_back(worlds_.size());
    }
    worlds_.push_back(std::move(world));
  }

  // Group wiring: every replica knows its whole group's membership (the
  // min-rule runs over the replica ledger), and every world lists its
  // peers for the report relay.
  for (const auto& [group, members] : groups_) {
    for (const std::size_t member : members) {
      World& world = *worlds_[member];
      for (const std::size_t other : members) {
        world.server->sync().assign_group(
            worlds_[other]->station->name(), group);
        if (other != member) world.peers.push_back(other);
      }
    }
  }

  // Pass 2: probes, on their station's shard and environment replica.
  for (std::size_t s = 0; s < fleet.stations.size(); ++s) {
    const StationSpec& spec = fleet.stations[s];
    World& world = *worlds_[s];
    for (int i = 0; i < spec.probe_count; ++i) {
      const auto& variant = assembly::probe_variant(i);
      ProbeNodeConfig probe_config;
      probe_config.probe_id = 20 + i;
      probe_config.conductivity_base_us = variant.base_us;
      probe_config.conductivity_gain_us = variant.gain_us;
      probe_config.link_quality_factor = variant.link_quality;
      world.probes.push_back(std::make_unique<ProbeNode>(
          sharded_->shard(world.shard), *world.environment,
          rng.fork(
              probe_series_name(spec.station.name, probe_config.probe_id)),
          probe_config));
      world.station->add_probe(*world.probes.back());
    }
  }

  for (auto& world : worlds_) world->station->start();

  if (fleet.trace_enabled) {
    for (std::size_t s = 0; s < worlds_.size(); ++s) sample_trace(s);
  }

  sharded_->set_barrier_hook(
      [this](sim::SimTime barrier) { drain(barrier); });
}

void ShardedFleet::run_days(double days) {
  sharded_->run_until(sharded_->now() + sim::days(days));
}

Station* ShardedFleet::find_station(const std::string& name) {
  for (auto& world : worlds_) {
    if (world->station->name() == name) return world->station.get();
  }
  return nullptr;
}

int ShardedFleet::probes_alive() const {
  int alive = 0;
  for (const auto& world : worlds_) {
    for (const auto& probe : world->probes) {
      if (probe->alive()) ++alive;
    }
  }
  return alive;
}

std::size_t ShardedFleet::index_of(const std::string& station_name) const {
  for (std::size_t s = 0; s < worlds_.size(); ++s) {
    if (worlds_[s]->station->name() == station_name) return s;
  }
  throw std::invalid_argument("ShardedFleet: unknown station " +
                              station_name);
}

bool ShardedFleet::queue_special(const std::string& station_name,
                                 core::SpecialCommand command) {
  return worlds_[index_of(station_name)]->server->queue_special(
      station_name, std::move(command));
}

bool ShardedFleet::queue_update(const std::string& station_name,
                                core::UpdatePackage package) {
  return worlds_[index_of(station_name)]->server->queue_update(
      station_name, std::move(package));
}

bool ShardedFleet::queue_config_update(const std::string& station_name,
                                       core::ConfigUpdate update) {
  return worlds_[index_of(station_name)]->server->queue_config_update(
      station_name, std::move(update));
}

void ShardedFleet::set_manual_override(
    std::optional<core::PowerState> override_state) {
  for (auto& world : worlds_) {
    world->server->sync().set_manual_override(override_state);
  }
  hub_.sync().set_manual_override(override_state);
}

void ShardedFleet::set_group_override(
    const std::string& group, std::optional<core::PowerState> override_state) {
  for (auto& world : worlds_) {
    world->server->sync().set_group_override(group, override_state);
  }
  hub_.sync().set_group_override(group, override_state);
}

std::vector<Fleet::GroupStatus> ShardedFleet::group_status() const {
  std::vector<Fleet::GroupStatus> all;
  all.reserve(groups_.size());
  for (const auto& [name, members] : groups_) {
    Fleet::GroupStatus status;
    status.name = name;
    status.converged = true;
    for (const std::size_t member : members) {
      const core::PowerState state = worlds_[member]->station->current_state();
      if (status.members == 0) {
        status.state = state;
      } else if (state != status.state) {
        status.converged = false;
      }
      ++status.members;
    }
    all.push_back(std::move(status));
  }
  return all;
}

obs::MetricsRegistry& ShardedFleet::update_rollup() {
  int up = 0;
  double yield_bytes = 0.0;
  for (const auto& world : worlds_) {
    if (world->station->current_state() != core::PowerState::kState0) ++up;
    yield_bytes +=
        double(hub_.bytes_from(world->station->name()).count());
  }
  const auto groups = group_status();
  int converged = 0;
  const std::int64_t now_ms = sharded_->now().millis_since_epoch();
  for (const auto& group : groups) {
    if (group.converged) ++converged;
    const auto last = last_converged_.find(group.name);
    if (last == last_converged_.end() || last->second != group.converged) {
      rollup_journal_.record(
          now_ms,
          group.converged ? obs::EventType::kGroupConverged
                          : obs::EventType::kGroupDiverged,
          group.name, double(group.members),
          group.converged ? double(core::to_int(group.state)) : 0.0);
      last_converged_[group.name] = group.converged;
    }
  }
  rollup_.gauge("fleet", "stations_total").set(double(worlds_.size()));
  rollup_.gauge("fleet", "stations_up").set(double(up));
  rollup_.gauge("fleet", "groups_total").set(double(groups.size()));
  rollup_.gauge("fleet", "groups_converged").set(double(converged));
  rollup_.gauge("fleet", "yield_bytes").set(yield_bytes);
  rollup_.gauge("fleet", "probes_alive").set(double(probes_alive()));
  return rollup_;
}

std::vector<obs::MergedEvent> ShardedFleet::merged_journal() const {
  std::vector<std::pair<std::string, const obs::EventJournal*>> journals;
  journals.reserve(worlds_.size() * 2);
  for (const auto& world : worlds_) {
    journals.emplace_back(world->station->name(),
                          &world->station->journal());
    journals.emplace_back(world->station->name() + "/fault",
                          &world->fault_journal);
  }
  return obs::merge_journals(journals);
}

std::vector<std::string> ShardedFleet::merged_trace_series_names() const {
  std::vector<std::string> names;
  for (const auto& world : worlds_) {
    for (const auto& name : world->trace.series_names()) {
      names.push_back(name);
    }
  }
  std::sort(names.begin(), names.end());
  return names;
}

std::string ShardedFleet::probe_series_name(const std::string& station_name,
                                            int probe_id) const {
  const std::string bare = "probe" + std::to_string(probe_id);
  return config_.fleet.station_scoped_probe_names ? station_name + "/" + bare
                                                  : bare;
}

void ShardedFleet::drain(sim::SimTime barrier) {
  (void)barrier;
  for (std::size_t s = 0; s < worlds_.size(); ++s) {
    World& world = *worlds_[s];
    // Fresh sync reports relay to every group peer's replica as
    // kernel-exact events at report time + latency: visibility is uniform
    // whether or not the peer shares a shard, so partition never shows.
    for (const auto& report : world.server->sync().drain_report_log()) {
      for (const std::size_t peer : world.peers) {
        core::SyncServer* target = &worlds_[peer]->server->sync();
        sharded_->post(worlds_[peer]->shard,
                       report.reported_at + config_.latency, report.station,
                       [target, report] {
                         target->record_remote_state(report.station,
                                                     report.state,
                                                     report.reported_at);
                       });
      }
    }
    // Ingest flows to the hub as coordinator messages; the hub ledger
    // keeps the station-side timestamps.
    for (auto& file : world.server->drain_received()) {
      sharded_->post_apply(file.received_at + config_.latency, file.station,
                           [this, file](sim::SimTime) {
                             hub_.receive_file(file.station, file.name,
                                               file.size, file.received_at);
                           });
    }
    for (auto& beacon : world.server->drain_beacons()) {
      sharded_->post_apply(beacon.at + config_.latency,
                           world.station->name(),
                           [this, beacon](sim::SimTime) {
                             hub_.receive_beacon(beacon.station, beacon.beacon,
                                                 beacon.at);
                           });
    }
    for (auto& result : world.server->drain_special_results()) {
      sharded_->post_apply(result.executed_at + config_.latency,
                           world.station->name(),
                           [this, result](sim::SimTime) {
                             hub_.record_special_result(result);
                           });
    }
  }
}

void ShardedFleet::sample_trace(std::size_t index) {
  World& world = *worlds_[index];
  sim::Simulation& shard = sharded_->shard(world.shard);
  const sim::SimTime now = shard.now();
  const std::string prefix = world.station->name() + ".";
  world.trace.add(prefix + "voltage", now,
                  world.station->power().terminal_voltage().value());
  world.trace.add(prefix + "state", now,
                  double(core::to_int(world.station->current_state())));
  world.trace.add(prefix + "soc", now,
                  world.station->power().battery().soc());
  for (const auto& probe : world.probes) {
    if (!probe->alive()) continue;
    const auto conductivity = world.environment->melt().conductivity(
        now, world.environment->temperature(),
        probe->config().conductivity_base_us,
        probe->config().conductivity_gain_us);
    world.trace.add(
        probe_series_name(world.station->name(), probe->id()) +
            ".conductivity",
        now, conductivity.value());
  }
  shard.schedule_in(config_.fleet.trace_interval,
                    [this, index] { sample_trace(index); });
}

}  // namespace gw::station
