// The wired probe (§V).
//
// One probe was cabled directly to the base station: a lossless serial path
// immune to summer water in the ice — but §V reports "the failure of the
// wired probe", and notes that deploying several wired probes to remove the
// single point of failure "was ruled out in this deployment because of the
// lack of serial ports". The model: perfect data delivery while the cable
// lives; a permanent, exponentially-distributed cable failure (ice
// deformation shears it); one serial port per station enforced by the
// benches that compare wired vs radio reliability.
#pragma once

#include <vector>

#include "env/environment.h"
#include "proto/reading.h"
#include "sim/simulation.h"
#include "util/rng.h"

namespace gw::station {

struct WiredProbeConfig {
  int probe_id = 10;
  sim::Duration sample_interval = sim::hours(1);
  double conductivity_base_us = 0.7;
  double conductivity_gain_us = 11.0;
  // Mean time to cable failure. Ice creep at the bed is relentless; the
  // deployed cable died within the season.
  double cable_mtbf_days = 300.0;
};

class WiredProbe {
 public:
  WiredProbe(sim::Simulation& simulation, env::Environment& environment,
             util::Rng rng, WiredProbeConfig config)
      : simulation_(simulation),
        environment_(environment),
        config_(config),
        rng_(rng),
        deployed_at_(simulation.now()) {
    cable_fails_after_ =
        sim::days(rng_.exponential(1.0 / config_.cable_mtbf_days));
    schedule_sample();
  }

  [[nodiscard]] int id() const { return config_.probe_id; }

  // The probe electronics outlive the cable; what fails is the link.
  [[nodiscard]] bool cable_ok() const {
    return (simulation_.now() - deployed_at_) < cable_fails_after_;
  }

  [[nodiscard]] std::size_t pending_count() const { return pending_.size(); }
  [[nodiscard]] std::uint32_t readings_sampled() const { return next_seq_; }

  // Serial drain: lossless and effectively instant at cable rates, but only
  // while the cable lives. A dead cable strands everything on the probe.
  [[nodiscard]] std::vector<proto::ProbeReading> drain() {
    if (!cable_ok()) return {};
    std::vector<proto::ProbeReading> out;
    out.swap(pending_);
    delivered_total_ += out.size();
    return out;
  }

  [[nodiscard]] std::size_t delivered_total() const {
    return delivered_total_;
  }

  // Readings stranded behind a broken cable (the §V data loss).
  [[nodiscard]] std::size_t stranded() const {
    return cable_ok() ? 0 : pending_.size();
  }

 private:
  void schedule_sample() {
    simulation_.schedule_in(config_.sample_interval, [this] {
      sample_now();
      schedule_sample();  // the probe keeps sampling even if the cable died
    });
  }

  void sample_now() {
    const sim::SimTime now = simulation_.now();
    proto::ProbeReading reading;
    reading.probe_id = config_.probe_id;
    reading.seq = next_seq_++;
    reading.sampled_ms = now.millis_since_epoch();
    reading.conductivity_us =
        environment_.melt()
            .conductivity(now, environment_.temperature(),
                          config_.conductivity_base_us,
                          config_.conductivity_gain_us)
            .value();
    const double w =
        environment_.melt().water_index(now, environment_.temperature());
    reading.pressure_kpa = 600.0 + 250.0 * w + rng_.normal(0.0, 8.0);
    reading.temperature_c = -0.4 + rng_.normal(0.0, 0.05);
    pending_.push_back(reading);
  }

  sim::Simulation& simulation_;
  env::Environment& environment_;
  WiredProbeConfig config_;
  util::Rng rng_;
  sim::SimTime deployed_at_;
  sim::Duration cable_fails_after_{};
  std::vector<proto::ProbeReading> pending_;
  std::uint32_t next_seq_ = 0;
  std::size_t delivered_total_ = 0;
};

}  // namespace gw::station
