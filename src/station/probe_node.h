// Subglacial probe node.
//
// Probes sit ~70 m below the surface (§I), sampling conductivity,
// orientation and pressure on a fixed interval and holding everything until
// the base station fetches it (task-completion semantics, §V). The 2008
// generation "survived longer than previous generations (4/7 after one
// year ... two after 18 months)" — mortality is a Weibull wear-out hazard
// calibrated to exactly those two points (shape 2, scale ~488 days), swept
// in bench_probe_survival.
#pragma once

#include <string>

#include "env/environment.h"
#include "proto/probe_link.h"
#include "proto/probe_store.h"
#include "proto/reading.h"
#include "sim/simulation.h"
#include "util/rng.h"

namespace gw::station {

struct ProbeNodeConfig {
  int probe_id = 0;
  sim::Duration sample_interval = sim::hours(1);
  // Per-probe conductivity response (Fig 6 shows distinct probe curves).
  double conductivity_base_us = 0.8;
  double conductivity_gain_us = 12.0;
  // Radio quality factor relative to the nominal seasonal link.
  double link_quality_factor = 1.0;
  // Weibull wear-out: S(365 d) ≈ 4/7, S(547 d) ≈ 2/7 (§V).
  double weibull_shape = 2.0;
  double weibull_scale_days = 488.0;
};

class ProbeNode {
 public:
  ProbeNode(sim::Simulation& simulation, env::Environment& environment,
            util::Rng rng, ProbeNodeConfig config)
      : simulation_(simulation),
        environment_(environment),
        config_(config),
        rng_(rng),
        link_(environment.melt(), environment.temperature(),
              rng.fork("link"),
              proto::ProbeLinkConfig{
                  .link_quality_factor = config.link_quality_factor}),
        deployed_at_(simulation.now()) {
    // Draw this probe's death day once, at deployment.
    death_after_ = sim::days(rng_.weibull(config_.weibull_shape,
                                          config_.weibull_scale_days));
    schedule_sample();
  }

  [[nodiscard]] int id() const { return config_.probe_id; }

  [[nodiscard]] bool alive() const {
    return (simulation_.now() - deployed_at_) < death_after_;
  }

  [[nodiscard]] sim::Duration age() const {
    return simulation_.now() - deployed_at_;
  }

  [[nodiscard]] proto::ProbeStore& store() { return store_; }
  [[nodiscard]] proto::ProbeLink& link() { return link_; }

  [[nodiscard]] std::uint32_t readings_sampled() const { return next_seq_; }

  [[nodiscard]] const ProbeNodeConfig& config() const { return config_; }

  [[nodiscard]] sim::Duration death_after() const { return death_after_; }

  // Replaces the wear-out draw — the fork bench redraws lifetimes for
  // probes still alive at the branch point (conditional resampling).
  void set_death_after(sim::Duration death_after) {
    death_after_ = death_after;
  }

  // Snapshot support (docs/SNAPSHOT.md). The sample chain is a rebuild
  // record: a dead probe has no pending event and stays silent on restore.
  template <class Archive>
  void persist(Archive& ar) {
    ar.value(rng_);
    ar.value(link_);
    ar.value(store_);
    ar.value(deployed_at_);
    ar.value(death_after_);
    ar.value(next_seq_);
    ar.value(tilt_);
    sim::persist_pending(ar, simulation_, sample_event_,
                         [this] { fire_sample(); });
  }

 private:
  void schedule_sample() {
    sample_event_ =
        simulation_.schedule_in(config_.sample_interval, [this] {
          fire_sample();
        });
  }

  void fire_sample() {
    if (alive()) {
      sample_now();
      schedule_sample();
    }
    // A dead probe never reschedules: it vanishes from the air, exactly
    // how the paper's losses present ("fewer vanishing offline").
  }

  void sample_now() {
    const sim::SimTime now = simulation_.now();
    proto::ProbeReading reading;
    reading.probe_id = config_.probe_id;
    reading.seq = next_seq_++;
    reading.sampled_ms = now.millis_since_epoch();
    reading.conductivity_us =
        environment_.melt()
            .conductivity(now, environment_.temperature(),
                          config_.conductivity_base_us,
                          config_.conductivity_gain_us)
            .value();
    // Basal water pressure tracks the melt index (stick-slip studies, §I).
    const double w =
        environment_.melt().water_index(now, environment_.temperature());
    reading.pressure_kpa = 600.0 + 250.0 * w + rng_.normal(0.0, 8.0);
    reading.tilt_deg = tilt_ += rng_.normal(0.0, 0.02 + 0.1 * w);
    reading.temperature_c = -0.4 + rng_.normal(0.0, 0.05);
    store_.add(reading);
  }

  sim::Simulation& simulation_;
  env::Environment& environment_;
  ProbeNodeConfig config_;
  util::Rng rng_;
  proto::ProbeLink link_;
  proto::ProbeStore store_;
  sim::SimTime deployed_at_;
  sim::Duration death_after_{};
  std::uint32_t next_seq_ = 0;
  double tilt_ = 0.0;
  sim::EventId sample_event_ = 0;
};

}  // namespace gw::station
