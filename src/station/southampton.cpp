#include "station/southampton.h"

#include <set>
#include <utility>

namespace gw::station {
namespace {

// FNV-1a, the same stable string hash everywhere a stripe key is needed:
// std::hash is implementation-defined and would make stripe placement (and
// anything exported from it) differ across standard libraries.
std::uint64_t fnv1a(const std::string& key) {
  std::uint64_t hash = 1469598103934665603ULL;
  for (const unsigned char byte : key) {
    hash ^= byte;
    hash *= 1099511628211ULL;
  }
  return hash;
}

}  // namespace

std::size_t SouthamptonServer::stripe_index(const std::string& key) const {
  return std::size_t(fnv1a(key) % stripes_.size());
}

void SouthamptonServer::set_ingest_stripes(std::size_t count) {
  if (count == 0) count = 1;
  std::vector<IngestStripe> old;
  old.swap(stripes_);
  stripes_.resize(count);
  for (auto& stripe : old) {
    for (auto& [station, queue] : stripe.specials) {
      auto& target = stripe_for(station).specials[station];
      for (auto& item : queue) target.push_back(std::move(item));
    }
    for (auto& [station, queue] : stripe.updates) {
      auto& target = stripe_for(station).updates[station];
      for (auto& item : queue) target.push_back(std::move(item));
    }
    for (auto& [station, queue] : stripe.config_updates) {
      auto& target = stripe_for(station).config_updates[station];
      for (auto& item : queue) target.push_back(std::move(item));
    }
  }
}

std::size_t SouthamptonServer::compact_received() {
  const std::size_t folded = received_.size();
  for (const ReceivedFile& file : received_) {
    auto [it, inserted] = receipt_summaries_.try_emplace(file.station);
    ReceiptSummary& summary = it->second;
    if (inserted || file.received_at < summary.first_at) {
      summary.first_at = file.received_at;
    }
    if (inserted || summary.last_at < file.received_at) {
      summary.last_at = file.received_at;
    }
    ++summary.files;
    summary.bytes += file.size;
  }
  received_.clear();
  if (folded > 0) ++compactions_;
  return folded;
}

std::vector<std::string> SouthamptonServer::station_directory() const {
  std::set<std::string> names;
  for (const auto& [station, files] : files_by_station_) names.insert(station);
  for (const auto& [station, count] : beacons_by_station_) {
    names.insert(station);
  }
  for (const auto& [station, summary] : receipt_summaries_) {
    names.insert(station);
  }
  for (const auto& station : sync_.reported_stations()) names.insert(station);
  return {names.begin(), names.end()};
}

proto::StationStatsResponse SouthamptonServer::station_stats(
    const std::string& station) const {
  proto::StationStatsResponse response;
  response.station = station;
  response.files = files_from(station);
  response.bytes = bytes_from(station).count();
  response.beacons = beacons_from(station);
  response.known = response.files > 0 || response.beacons > 0 ||
                   receipt_summaries_.contains(station) ||
                   sync_.reported_state(station).has_value();
  return response;
}

std::string SouthamptonServer::handle_query(const std::string& wire,
                                            sim::SimTime now) {
  const auto form = proto::Form::decode(wire);
  if (!form.ok()) {
    ++queries_refused_;
    return proto::QueryError{"bad_wire"}.encode();
  }
  const std::string msg = form.value().get("msg").value_or("");
  if (msg == "dir_request") {
    ++queries_served_;
    proto::DirectoryResponse response;
    response.stations = station_directory();
    return response.encode();
  }
  if (msg == "stats_request") {
    const auto request = proto::StationStatsRequest::decode(wire);
    if (!request.ok()) {
      ++queries_refused_;
      return proto::QueryError{"bad_request"}.encode();
    }
    ++queries_served_;
    return station_stats(request.value().station).encode();
  }
  if (msg == "group_request") {
    const auto request = proto::GroupStatusRequest::decode(wire);
    if (!request.ok()) {
      ++queries_refused_;
      return proto::QueryError{"bad_request"}.encode();
    }
    const auto view = sync_.group_view(request.value().group, now);
    proto::GroupStatusResponse response;
    response.group = request.value().group;
    response.members = view.members;
    response.fresh = view.fresh;
    response.converged = view.converged;
    response.state = view.state;
    ++queries_served_;
    return response.encode();
  }
  ++queries_refused_;
  return proto::QueryError{"unknown_msg"}.encode();
}

}  // namespace gw::station
