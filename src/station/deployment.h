// Deployment: the paper's Iceland field system as a two-station preset
// over the fleet layer.
//
// One object assembles what the paper deployed in 2008: a glacier base
// station (solar + wind, 7 subglacial probes, dGPS, GPRS), a café reference
// station (solar + seasonal mains, fixed dGPS, GPRS), the Southampton
// server mediating them, and the shared environment — all reproducible
// from a single seed. The benches and examples run a Deployment for N days
// and read the ledgers and traces off it.
//
// Since the fleet refactor this class owns no wiring of its own: it maps
// DeploymentConfig onto a two-StationSpec FleetConfig (both stations in
// sync group "dgps", legacy bare probe<id> trace names) and delegates.
// Exports are byte-identical to the pre-fleet hand-wired assembly — the
// shape-stability suite pins that equivalence.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "station/fleet.h"

namespace gw::station {

struct DeploymentConfig {
  std::uint64_t seed = 42;
  // Probes went in during the summer 2008 field season (§V).
  sim::DateTime start{2008, 9, 1, 0, 0, 0};
  int probe_count = 7;
  env::EnvironmentConfig environment;
  StationConfig base;
  StationConfig reference;
  bool trace_enabled = true;
  sim::Duration trace_interval = sim::minutes(30);
  // Optional fault plan (docs/FAULTS.md spec text). When non-empty it is
  // parsed at construction, anchored at `start`, and wired into both
  // stations and the server. A parse error throws std::invalid_argument:
  // a scripted season that silently runs clean would defeat the test.
  std::string fault_spec;

  DeploymentConfig() {
    base.name = "base";
    base.role = StationRole::kBaseStation;
    reference.name = "reference";
    reference.role = StationRole::kReferenceStation;
  }

  // The equivalent fleet description: base (solar + wind, the probes) and
  // reference (solar + mains) paired in sync group "dgps", legacy probe
  // naming. Exposed so fleet users can start from the paper's shape.
  [[nodiscard]] FleetConfig to_fleet_config() const;
};

class Deployment {
 public:
  explicit Deployment(DeploymentConfig config = {});

  Deployment(const Deployment&) = delete;
  Deployment& operator=(const Deployment&) = delete;

  // Advances the whole system by `days` simulated days.
  void run_days(double days) { fleet_.run_days(days); }

  [[nodiscard]] sim::Simulation& simulation() { return fleet_.simulation(); }
  [[nodiscard]] env::Environment& environment() {
    return fleet_.environment();
  }
  [[nodiscard]] SouthamptonServer& server() { return fleet_.server(); }
  [[nodiscard]] Station& base() { return fleet_.station(0); }
  [[nodiscard]] Station& reference() { return fleet_.station(1); }
  [[nodiscard]] std::vector<std::unique_ptr<ProbeNode>>& probes() {
    return fleet_.probes(0);
  }

  [[nodiscard]] int probes_alive() const { return fleet_.probes_alive(); }

  // 30-minute series: "<station>.voltage", "<station>.state",
  // "<station>.soc", and "probe<id>.conductivity" — the raw material for
  // the Fig 5 / Fig 6 benches.
  [[nodiscard]] sim::Trace& trace() { return fleet_.trace(); }

  // The shared fault oracle (always present; empty plan when no fault_spec
  // was given) and its instrumentation pair — fleet-level observables the
  // soak harness exports alongside the per-station registries.
  [[nodiscard]] fault::FaultOracle& fault_oracle() {
    return fleet_.fault_oracle();
  }
  [[nodiscard]] obs::MetricsRegistry& fault_metrics() {
    return fleet_.fault_metrics();
  }
  [[nodiscard]] obs::EventJournal& fault_journal() {
    return fleet_.fault_journal();
  }

  // The underlying fleet (rollup registry, group status, probe namespace).
  [[nodiscard]] Fleet& fleet() { return fleet_; }

  [[nodiscard]] const DeploymentConfig& config() const { return config_; }

 private:
  DeploymentConfig config_;
  Fleet fleet_;
};

}  // namespace gw::station
