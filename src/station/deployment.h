// Deployment: the full Iceland field system wired together.
//
// One object assembles what the paper deployed in 2008: a glacier base
// station (solar + wind, 7 subglacial probes, dGPS, GPRS), a café reference
// station (solar + seasonal mains, fixed dGPS, GPRS), the Southampton
// server mediating them, and the shared environment — all reproducible
// from a single seed. The benches and examples run a Deployment for N days
// and read the ledgers and traces off it.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "env/environment.h"
#include "fault/fault.h"
#include "obs/journal.h"
#include "obs/metrics.h"
#include "sim/simulation.h"
#include "sim/trace.h"
#include "station/probe_node.h"
#include "station/southampton.h"
#include "station/station.h"

namespace gw::station {

struct DeploymentConfig {
  std::uint64_t seed = 42;
  // Probes went in during the summer 2008 field season (§V).
  sim::DateTime start{2008, 9, 1, 0, 0, 0};
  int probe_count = 7;
  env::EnvironmentConfig environment;
  StationConfig base;
  StationConfig reference;
  bool trace_enabled = true;
  sim::Duration trace_interval = sim::minutes(30);
  // Optional fault plan (docs/FAULTS.md spec text). When non-empty it is
  // parsed at construction, anchored at `start`, and wired into both
  // stations and the server. A parse error throws std::invalid_argument:
  // a scripted season that silently runs clean would defeat the test.
  std::string fault_spec;

  DeploymentConfig() {
    base.name = "base";
    base.role = StationRole::kBaseStation;
    reference.name = "reference";
    reference.role = StationRole::kReferenceStation;
  }
};

class Deployment {
 public:
  explicit Deployment(DeploymentConfig config = {});

  Deployment(const Deployment&) = delete;
  Deployment& operator=(const Deployment&) = delete;

  // Advances the whole system by `days` simulated days.
  void run_days(double days);

  [[nodiscard]] sim::Simulation& simulation() { return simulation_; }
  [[nodiscard]] env::Environment& environment() { return environment_; }
  [[nodiscard]] SouthamptonServer& server() { return server_; }
  [[nodiscard]] Station& base() { return *base_; }
  [[nodiscard]] Station& reference() { return *reference_; }
  [[nodiscard]] std::vector<std::unique_ptr<ProbeNode>>& probes() {
    return probes_;
  }

  [[nodiscard]] int probes_alive() const;

  // 30-minute series: "<station>.voltage", "<station>.state",
  // "<station>.soc", and "probe<id>.conductivity" — the raw material for
  // the Fig 5 / Fig 6 benches.
  [[nodiscard]] sim::Trace& trace() { return trace_; }

  // The shared fault oracle (always present; empty plan when no fault_spec
  // was given) and its instrumentation pair — fleet-level observables the
  // soak harness exports alongside the per-station registries.
  [[nodiscard]] fault::FaultOracle& fault_oracle() { return fault_oracle_; }
  [[nodiscard]] obs::MetricsRegistry& fault_metrics() {
    return fault_metrics_;
  }
  [[nodiscard]] obs::EventJournal& fault_journal() { return fault_journal_; }

  [[nodiscard]] const DeploymentConfig& config() const { return config_; }

 private:
  void sample_trace();

  DeploymentConfig config_;
  sim::Simulation simulation_;
  env::Environment environment_;
  // Declared before the stations: devices hold FaultOracle* into this.
  obs::MetricsRegistry fault_metrics_;
  obs::EventJournal fault_journal_;
  fault::FaultOracle fault_oracle_;
  SouthamptonServer server_;
  std::unique_ptr<Station> base_;
  std::unique_ptr<Station> reference_;
  std::vector<std::unique_ptr<ProbeNode>> probes_;
  sim::Trace trace_;
};

}  // namespace gw::station
