// Fleet: a config-driven N-station deployment.
//
// The paper deployed exactly two stations (glacier base + café reference),
// and for three PRs this repo hard-wired that shape into Deployment. The
// fleet layer makes station count, role mix, harvest mix, probe load, and
// sync topology *configuration*: a FleetConfig is a vector of StationSpec,
// each naming its chargers, its subglacial probe count, and the sync group
// it records in lockstep with (a dGPS pair is one group; an ungrouped
// station self-syncs). One Fleet owns the shared simulation, environment,
// fault oracle, Southampton server, the stations and their probes, a
// 30-minute trace, and a fleet-level rollup registry.
//
// Deployment (station/deployment.h) is now a thin two-station preset over
// this class and keeps its byte-identical exports; bench_fleet_scale sweeps
// 2 -> 64 stations on the MonteCarloRunner. See docs/FLEET.md.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "env/environment.h"
#include "fault/fault.h"
#include "obs/journal.h"
#include "obs/metrics.h"
#include "sim/simulation.h"
#include "sim/trace.h"
#include "station/probe_node.h"
#include "station/southampton.h"
#include "station/station.h"

namespace gw::station {

// Harvest hardware a spec can install, in declaration order (§III mixes:
// base = solar + wind, reference = solar + seasonal mains).
enum class ChargerKind { kSolar, kWind, kMains };

// One station in the fleet: its full StationConfig plus the fleet-level
// facts the assembly needs (who it syncs with, what charges it, how many
// subglacial probes it serves).
struct StationSpec {
  StationConfig station;
  // Sync-group name; members apply the §III min-rule to each other. Empty =
  // ungrouped (self-syncing).
  std::string sync_group;
  std::vector<ChargerKind> chargers;
  int probe_count = 0;
};

struct FleetConfig {
  std::uint64_t seed = 42;
  sim::DateTime start{2008, 9, 1, 0, 0, 0};
  env::EnvironmentConfig environment;
  std::vector<StationSpec> stations;
  bool trace_enabled = true;
  sim::Duration trace_interval = sim::minutes(30);
  // Optional fault plan (docs/FAULTS.md spec text). When non-empty it is
  // parsed at construction, anchored at `start`, and wired into every
  // station and the server. A parse error throws std::invalid_argument: a
  // scripted season that silently runs clean would defeat the test.
  std::string fault_spec;
  // Probe trace-series / rng namespace: "<station>/probe<id>" when true
  // (the fleet default — two stations may both serve a probe 20), bare
  // "probe<id>" when false (the legacy two-station Deployment preset,
  // which must keep byte-identical exports).
  bool station_scoped_probe_names = true;
  // Rolling receipt-ledger window handed to the server (0 = unbounded, the
  // legacy preset's setting). Totals stay exact either way.
  std::size_t server_received_window = 0;
  // Per-station bound on each of the server's command/update/config queues
  // (0 = unbounded, the legacy setting). A full queue rejects the enqueue
  // and journals an ingest_rejected drop (docs/FLEET.md backpressure).
  std::size_t server_station_queue_limit = 0;
};

class Fleet {
 public:
  explicit Fleet(FleetConfig config);

  Fleet(const Fleet&) = delete;
  Fleet& operator=(const Fleet&) = delete;

  // Advances the whole system by `days` simulated days.
  void run_days(double days);

  [[nodiscard]] std::size_t size() const { return stations_.size(); }
  [[nodiscard]] Station& station(std::size_t index) {
    return *stations_[index];
  }
  [[nodiscard]] const Station& station(std::size_t index) const {
    return *stations_[index];
  }
  // Station by name; null when absent.
  [[nodiscard]] Station* find_station(const std::string& name);

  // The probes served by station `index` (empty vector for probe-less
  // specs, e.g. the reference role).
  [[nodiscard]] std::vector<std::unique_ptr<ProbeNode>>& probes(
      std::size_t index) {
    return probes_[index];
  }

  [[nodiscard]] int probes_alive() const;

  [[nodiscard]] sim::Simulation& simulation() { return simulation_; }
  [[nodiscard]] env::Environment& environment() { return environment_; }
  [[nodiscard]] SouthamptonServer& server() { return server_; }

  // 30-minute series: "<station>.voltage", "<station>.state",
  // "<station>.soc", and "<station>/probe<id>.conductivity" (bare
  // "probe<id>.conductivity" under legacy naming) — the raw material for
  // the Fig 5 / Fig 6 benches.
  [[nodiscard]] sim::Trace& trace() { return trace_; }

  // The trace-series / rng namespace of one probe under this fleet's
  // naming mode ("base/probe21" or legacy "probe21").
  [[nodiscard]] std::string probe_series_name(const std::string& station,
                                              int probe_id) const;

  // The shared fault oracle (always present; empty plan when no fault_spec
  // was given) and its instrumentation pair — fleet-level observables the
  // soak harness exports alongside the per-station registries.
  [[nodiscard]] fault::FaultOracle& fault_oracle() { return fault_oracle_; }
  [[nodiscard]] obs::MetricsRegistry& fault_metrics() {
    return fault_metrics_;
  }
  [[nodiscard]] obs::EventJournal& fault_journal() { return fault_journal_; }

  // --- fleet rollup (docs/FLEET.md) --------------------------------------

  // Convergence status of one sync group: converged when every member sits
  // in the same power state right now.
  struct GroupStatus {
    std::string name;
    int members = 0;
    bool converged = false;
    core::PowerState state = core::PowerState::kState0;  // when converged
  };
  // Status of every sync group, in group-name order.
  [[nodiscard]] std::vector<GroupStatus> group_status() const;

  // Recomputes the fleet gauges (fleet.stations_total/up, groups_total/
  // converged, yield_bytes, probes_alive) into the rollup registry and
  // journals group convergence flips (kGroupDiverged / kGroupConverged)
  // since the previous refresh. Call it at whatever cadence the harness
  // samples — it draws no randomness and schedules nothing.
  obs::MetricsRegistry& update_rollup();

  // The rollup sinks (refreshed by update_rollup, not continuously).
  [[nodiscard]] obs::MetricsRegistry& rollup_metrics() { return rollup_; }
  [[nodiscard]] obs::EventJournal& rollup_journal() {
    return rollup_journal_;
  }

  [[nodiscard]] const FleetConfig& config() const { return config_; }

  // --- checkpoint / fork (docs/SNAPSHOT.md) -------------------------------

  // Serialises the whole world — kernel clock/queue, environment, fault
  // oracle, server, every station and probe — into a versioned GWSNAP
  // container (fleet_snapshot.cpp). The fleet must be quiescent: a save
  // taken mid-daily-run, mid-comms-session, or with any pending event no
  // component claims throws SnapshotError(kNotQuiescent).
  [[nodiscard]] std::vector<std::uint8_t> save_snapshot();

  // Restores a snapshot into a fleet freshly constructed from the *same*
  // FleetConfig. The meta section is cross-checked against this fleet's
  // shape (seed, start, station names, probe counts); any disagreement
  // throws SnapshotError(kStateMismatch) before state is touched.
  void restore_snapshot(std::span<const std::uint8_t> bytes);

 private:
  void sample_trace();

  // Shared field lists for the multi-object snapshot sections, one template
  // each so the save and restore byte streams can never drift
  // (fleet_snapshot.cpp).
  template <class Archive>
  void persist_fault_section(Archive& ar);
  template <class Archive>
  void persist_fleet_section(Archive& ar);

  FleetConfig config_;
  sim::Simulation simulation_;
  env::Environment environment_;
  // Declared before the stations: devices hold FaultOracle* into this.
  obs::MetricsRegistry fault_metrics_;
  obs::EventJournal fault_journal_;
  fault::FaultOracle fault_oracle_;
  SouthamptonServer server_;
  std::vector<std::unique_ptr<Station>> stations_;
  // probes_[i] belong to stations_[i].
  std::vector<std::vector<std::unique_ptr<ProbeNode>>> probes_;
  sim::Trace trace_;
  obs::MetricsRegistry rollup_;
  obs::EventJournal rollup_journal_;
  // Convergence as of the last update_rollup(), per group name (absent =
  // never observed), for flip detection.
  std::map<std::string, bool> last_converged_;
  // The 30-minute trace sampler's pending event (rebuilt on restore).
  sim::EventId trace_event_ = 0;
};

// The canonical scaling preset used by bench_fleet_scale and the fleet
// determinism tests: `stations` stations named s000..s<N-1>, paired into
// dGPS sync groups g000.. (even = base role with solar + wind and two
// subglacial probes, odd = reference role with solar + mains), wake windows
// staggered a few minutes apart, and each pair starting deliberately
// diverged (state 3 vs state 2, full vs 70 % battery) so the §III min-rule
// has real convergence work to do. Trace off, receipt window capped —
// sized for repeated 2 -> 64 sweeps.
[[nodiscard]] FleetConfig uniform_fleet_config(int stations,
                                               std::uint64_t seed);

}  // namespace gw::station
