#include "station/deployment.h"

#include <stdexcept>

#include "power/chargers.h"

namespace gw::station {
namespace {

// Per-probe spread: Fig 6 shows distinct conductivity curves for probes
// 21/24/25 — different positions relative to basal drainage give different
// baselines and melt responses; radio quality varies with depth/orientation.
struct ProbeVariant {
  double base_us;
  double gain_us;
  double link_quality;
};

constexpr ProbeVariant kVariants[] = {
    {0.5, 9.0, 1.0},  {0.8, 13.5, 1.1}, {0.3, 7.0, 0.9}, {1.2, 15.0, 1.3},
    {0.6, 11.0, 1.0}, {0.9, 8.5, 1.2},  {0.4, 12.0, 0.8},
};

}  // namespace

Deployment::Deployment(DeploymentConfig config)
    : config_(config),
      simulation_(sim::to_time(config.start)),
      environment_(config.environment, config.seed) {
  util::Rng rng{config.seed};

  if (!config_.fault_spec.empty()) {
    auto plan = fault::FaultPlan::parse(config_.fault_spec);
    if (!plan.ok()) {
      throw std::invalid_argument("Deployment: " + plan.error().message);
    }
    fault_oracle_ =
        fault::FaultOracle{std::move(plan.value()), sim::to_time(config.start)};
    fault_oracle_.set_hooks(obs::Hooks{&fault_metrics_, &fault_journal_});
    server_.set_fault_oracle(&fault_oracle_);
  }

  base_ = std::make_unique<Station>(simulation_, environment_, server_,
                                    rng.fork("base"), config.base);
  if (!config_.fault_spec.empty()) base_->set_fault_oracle(&fault_oracle_);
  // §III: base station harvest = 10 W solar + 50 W wind turbine.
  base_->add_charger(
      std::make_unique<power::SolarPanel>(power::SolarPanelConfig{}));
  base_->add_charger(
      std::make_unique<power::WindTurbine>(power::WindTurbineConfig{}));

  reference_ = std::make_unique<Station>(simulation_, environment_, server_,
                                         rng.fork("reference"),
                                         config.reference);
  if (!config_.fault_spec.empty()) {
    reference_->set_fault_oracle(&fault_oracle_);
  }
  // §III: reference station = solar panel + café mains (tourist season).
  reference_->add_charger(
      std::make_unique<power::SolarPanel>(power::SolarPanelConfig{}));
  reference_->add_charger(
      std::make_unique<power::MainsCharger>(power::MainsChargerConfig{}));

  for (int i = 0; i < config.probe_count; ++i) {
    const auto& variant = kVariants[std::size_t(i) % std::size(kVariants)];
    ProbeNodeConfig probe_config;
    probe_config.probe_id = 20 + i;  // the paper names probes 21/24/25
    probe_config.conductivity_base_us = variant.base_us;
    probe_config.conductivity_gain_us = variant.gain_us;
    probe_config.link_quality_factor = variant.link_quality;
    probes_.push_back(std::make_unique<ProbeNode>(
        simulation_, environment_,
        rng.fork("probe" + std::to_string(probe_config.probe_id)),
        probe_config));
    base_->add_probe(*probes_.back());
  }

  base_->start();
  reference_->start();

  if (config_.trace_enabled) sample_trace();
}

void Deployment::run_days(double days) {
  simulation_.run_until(simulation_.now() + sim::days(days));
}

int Deployment::probes_alive() const {
  int alive = 0;
  for (const auto& probe : probes_) {
    if (probe->alive()) ++alive;
  }
  return alive;
}

void Deployment::sample_trace() {
  const sim::SimTime now = simulation_.now();
  for (Station* station : {base_.get(), reference_.get()}) {
    const std::string prefix = station->name() + ".";
    trace_.add(prefix + "voltage", now,
               station->power().terminal_voltage().value());
    trace_.add(prefix + "state", now,
               double(core::to_int(station->current_state())));
    trace_.add(prefix + "soc", now, station->power().battery().soc());
  }
  for (const auto& probe : probes_) {
    if (!probe->alive()) continue;
    const auto conductivity = environment_.melt().conductivity(
        now, environment_.temperature(), probe->config().conductivity_base_us,
        probe->config().conductivity_gain_us);
    trace_.add("probe" + std::to_string(probe->id()) + ".conductivity", now,
               conductivity.value());
  }
  simulation_.schedule_in(config_.trace_interval, [this] { sample_trace(); });
}

}  // namespace gw::station
