#include "station/deployment.h"

namespace gw::station {

FleetConfig DeploymentConfig::to_fleet_config() const {
  FleetConfig fleet;
  fleet.seed = seed;
  fleet.start = start;
  fleet.environment = environment;
  fleet.trace_enabled = trace_enabled;
  fleet.trace_interval = trace_interval;
  fleet.fault_spec = fault_spec;
  // Legacy knobs: bare probe<id> names and an uncapped receipt ledger keep
  // every pre-fleet export byte-identical.
  fleet.station_scoped_probe_names = false;
  fleet.server_received_window = 0;

  // §III: base station harvest = 10 W solar + 50 W wind turbine; reference
  // station = solar panel + café mains (tourist season). The two stations
  // are one dGPS pair, so they share a sync group.
  StationSpec base_spec;
  base_spec.station = base;
  base_spec.sync_group = "dgps";
  base_spec.chargers = {ChargerKind::kSolar, ChargerKind::kWind};
  base_spec.probe_count = probe_count;

  StationSpec reference_spec;
  reference_spec.station = reference;
  reference_spec.sync_group = "dgps";
  reference_spec.chargers = {ChargerKind::kSolar, ChargerKind::kMains};

  fleet.stations = {std::move(base_spec), std::move(reference_spec)};
  return fleet;
}

Deployment::Deployment(DeploymentConfig config)
    : config_(std::move(config)), fleet_(config_.to_fleet_config()) {}

}  // namespace gw::station
