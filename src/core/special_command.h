// "Special" remote command scripts (§V-§VI).
//
// Southampton can queue a shell script per station; the daily run downloads
// and executes it ("Get special / Special exists / Execute", Fig 4). Two
// deployed lessons are encoded here:
//   * the script's output lands in the normal logfile, which is only
//     uploaded with the *next* day's data — so results reach Southampton
//     ~24 h after execution and a follow-up decision takes ~48 h (§VI);
//   * Fig 4 executes the special *after* the upload, which combined with
//     the 2-hour watchdog means a special can be starved by a big backlog;
//     §VI suggests running remote code *before* the transfer. Stations
//     expose that ordering as a config flag.
#pragma once

#include <string>

#include "sim/time.h"
#include "util/units.h"

namespace gw::core {

struct SpecialCommand {
  std::string id;
  std::string script;
  sim::Duration runtime = sim::seconds(30);
  util::Bytes output_size = util::Bytes{2048};  // lands in the logfile

  template <class Archive>
  void persist(Archive& ar) {
    ar.value(id);
    ar.value(script);
    ar.value(runtime);
    ar.value(output_size);
  }
};

struct SpecialExecution {
  std::string id;
  sim::SimTime executed_at{};
  // When the output (inside the daily log upload) becomes visible in
  // Southampton — the §VI latency observation.
  sim::SimTime results_visible_at{};

  template <class Archive>
  void persist(Archive& ar) {
    ar.value(id);
    ar.value(executed_at);
    ar.value(results_visible_at);
  }
};

}  // namespace gw::core
