// The MSP430's RAM-resident day schedule, as a first-class type.
//
// §IV: "the schedule for the microprocessor is stored in RAM so will need
// to be re-written" after exhaustion. This is that object: the daily comms
// window, the dGPS reading slots implied by the power state (Table 2), and
// the sensor sampling cadence — serialisable to the compact image the
// Gumstix writes into the microcontroller, and parseable back with CRC
// protection (a corrupted image must be detected, not executed).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/power_policy.h"
#include "sim/time.h"
#include "util/crc32.h"
#include "util/result.h"

namespace gw::core {

struct DaySchedule {
  sim::Duration wake_time = sim::hours(12);      // daily window (§I)
  sim::Duration sample_interval = sim::minutes(30);
  // Offsets from the wake at which the MSP powers the dGPS (Table 2's
  // 12-per-day state gives the Fig 5 two-hour rhythm).
  std::vector<sim::Duration> gps_slots;

  // The schedule a given power state implies.
  [[nodiscard]] static DaySchedule for_state(
      PowerState state, sim::Duration wake_time = sim::hours(12)) {
    DaySchedule schedule;
    schedule.wake_time = wake_time;
    const int per_day = PowerPolicy::actions_for(state).gps_readings_per_day;
    for (int k = 1; k <= per_day; ++k) {
      schedule.gps_slots.push_back(sim::hours(24.0 / per_day) * k);
    }
    return schedule;
  }

  friend bool operator==(const DaySchedule&, const DaySchedule&) = default;

  // --- MSP RAM image ------------------------------------------------------
  //
  // [ 'G' 'S' version=1 ] [wake_min u16] [sample_min u16] [n u8]
  // [slot_min u16] * n  [crc32 u32 over everything before it]
  // All little-endian; minutes resolution matches the MSP timer grid.

  [[nodiscard]] std::vector<std::uint8_t> serialize() const {
    std::vector<std::uint8_t> image;
    image.push_back('G');
    image.push_back('S');
    image.push_back(1);
    push_u16(image, std::uint16_t(wake_time.to_minutes()));
    push_u16(image, std::uint16_t(sample_interval.to_minutes()));
    image.push_back(std::uint8_t(gps_slots.size()));
    for (const auto& slot : gps_slots) {
      push_u16(image, std::uint16_t(slot.to_minutes()));
    }
    const std::uint32_t crc = util::crc32(
        std::span<const std::uint8_t>(image.data(), image.size()));
    for (int b = 0; b < 4; ++b) {
      image.push_back(std::uint8_t((crc >> (8 * b)) & 0xff));
    }
    return image;
  }

  [[nodiscard]] static util::Result<DaySchedule> parse(
      std::span<const std::uint8_t> image) {
    if (image.size() < 12) return util::make_error("schedule: truncated");
    const std::size_t body = image.size() - 4;
    std::uint32_t stored = 0;
    for (int b = 0; b < 4; ++b) {
      stored |= std::uint32_t(image[body + std::size_t(b)]) << (8 * b);
    }
    if (util::crc32(image.subspan(0, body)) != stored) {
      return util::make_error("schedule: crc mismatch");
    }
    if (image[0] != 'G' || image[1] != 'S' || image[2] != 1) {
      return util::make_error("schedule: bad magic/version");
    }
    DaySchedule schedule;
    schedule.wake_time = sim::minutes(read_u16(image, 3));
    schedule.sample_interval = sim::minutes(read_u16(image, 5));
    const std::size_t n = image[7];
    if (image.size() != 8 + 2 * n + 4) {
      return util::make_error("schedule: slot count mismatch");
    }
    for (std::size_t k = 0; k < n; ++k) {
      schedule.gps_slots.push_back(
          sim::minutes(read_u16(image, 8 + 2 * k)));
    }
    return schedule;
  }

 private:
  static void push_u16(std::vector<std::uint8_t>& image, std::uint16_t v) {
    image.push_back(std::uint8_t(v & 0xff));
    image.push_back(std::uint8_t(v >> 8));
  }
  static std::uint16_t read_u16(std::span<const std::uint8_t> image,
                                std::size_t at) {
    return std::uint16_t(image[at] | (std::uint16_t(image[at + 1]) << 8));
  }
};

}  // namespace gw::core
