// Automatic schedule resetting after total power loss (§IV).
//
// External charging means a flat battery can come back — but it wakes with
// a RAM schedule gone and an RTC reading 01/01/1970. Detection: the station
// persists the last time it successfully ran (on the CF card, which is
// non-volatile); if the RTC now reads *before* that, the clock cannot be
// trusted. Repair: power the GPS and take a time fix; "if the system cannot
// set the time using GPS then the system will sleep for a day and try
// again." §IV also sketches the extension implemented here behind a flag:
// fall back to NTP over the GPRS link. Once the clock is right the station
// rewrites the wake schedule and restarts in state 0.
#pragma once

#include <functional>
#include <optional>

#include "fault/fault.h"
#include "hw/dgps.h"
#include "hw/gprs_modem.h"
#include "hw/msp430.h"
#include "obs/journal.h"
#include "sim/simulation.h"
#include "util/rng.h"

namespace gw::core {

struct RecoveryConfig {
  bool ntp_fallback = false;          // §IV future work, implemented
  double ntp_success = 0.85;          // NTP reachability once a session is up
  util::Bytes ntp_payload = util::Bytes{128};   // a few SNTP datagrams
  sim::Duration retry_interval = sim::days(1);  // "sleep for a day"
  // rtc_drift fault windows degrade NTP discipline: the clock lands up to
  // this far off true time, scaled by the window severity.
  sim::Duration drift_skew = sim::minutes(10);
};

enum class RecoveryOutcome {
  kClockTrusted,   // nothing to do
  kResyncedByGps,
  kResyncedByNtp,  // extension path
  kDeferred,       // no fix; sleeping a day before retrying
};

class RecoveryManager {
 public:
  RecoveryManager(sim::Simulation& simulation, hw::Msp430& msp,
                  hw::DgpsReceiver& dgps, util::Rng rng,
                  RecoveryConfig config = {})
      : simulation_(simulation),
        msp_(msp),
        dgps_(dgps),
        config_(config),
        rng_(rng) {}

  // Persists "the last time that it successfully ran" — written to the CF
  // card at the end of each good daily run, so it survives brown-outs.
  // Stored as the RTC's reading, which is all the station has.
  void record_successful_run() { last_successful_run_ = msp_.rtc_now(); }

  [[nodiscard]] std::optional<sim::SimTime> last_successful_run() const {
    return last_successful_run_;
  }

  // §IV detection: "checks that its current time is before the last time
  // the system ran; if that fails it knows that the RTC is not to be
  // trusted."
  [[nodiscard]] bool rtc_untrusted() const {
    return last_successful_run_.has_value() &&
           msp_.rtc_now() < *last_successful_run_;
  }

  // Optional instrumentation: attempt/resync/deferral counters under
  // "recovery", plus journal records for each trigger outcome.
  void set_hooks(obs::Hooks hooks) { hooks_ = hooks; }

  // The NTP fallback needs a real GPRS session (registration time, session
  // energy, per-MiB cost); without a modem attached the fallback is treated
  // as unavailable and the attempt defers. Null detaches.
  void attach_modem(hw::GprsModem* gprs) { gprs_ = gprs; }

  // Attaches scripted fault windows (rtc_drift degrades NTP discipline);
  // null detaches.
  void set_fault_oracle(fault::FaultOracle* oracle) { oracle_ = oracle; }

  // One recovery attempt (the cold-boot path). Consumes device time
  // directly via the dGPS fix-acquisition model; the caller runs it inside
  // a daily-run step. On kDeferred the caller sleeps retry_interval.
  RecoveryOutcome attempt() {
    ++attempts_;
    if (hooks_.metrics != nullptr) {
      hooks_.metrics->counter("recovery", "attempts").increment();
    }
    if (!rtc_untrusted()) return RecoveryOutcome::kClockTrusted;

    // GPS first (§IV): power it just for the fix.
    const bool was_powered = dgps_.powered();
    if (!was_powered) dgps_.power_on();
    const auto fix = dgps_.time_fix();
    if (!was_powered) dgps_.power_off();
    if (fix.ok()) {
      msp_.set_rtc(fix.value());
      ++gps_resyncs_;
      record_outcome(RecoveryOutcome::kResyncedByGps);
      return RecoveryOutcome::kResyncedByGps;
    }

    // Extension: NTP over GPRS (§IV "in the future this could also be
    // extended to fall back to getting the time using the GPRS link"). The
    // resync is *not* free: it rides a real modem session — registration
    // time, transfer time for a few SNTP datagrams, per-MiB data cost, and
    // session energy all land in the same ledgers a daily upload would hit.
    if (config_.ntp_fallback && gprs_ != nullptr) {
      const bool was_powered = gprs_->powered();
      if (!was_powered) gprs_->power_on();
      const hw::TransferOutcome session =
          gprs_->attempt_transfer(config_.ntp_payload);
      if (!was_powered) {
        // Keep the modem drawing power for exactly as long as the session
        // ran, then let it cut itself off — attempt() returns immediately
        // in sim time, so the energy is integrated by the scheduled hold.
        gprs_->hold_powered(session.elapsed);
      }
      if (session.success && rng_.bernoulli(config_.ntp_success)) {
        // NTP disciplines to within protocol error — unless an rtc_drift
        // window is active, in which case the clock lands severity-scaled
        // skew off true time (degraded discipline, §IV).
        sim::Duration skew{0};
        if (oracle_ != nullptr) {
          const double severity = oracle_->severity(
              fault::FaultKind::kRtcDrift, simulation_.now());
          if (severity > 0.0) {
            skew = sim::Duration{
                std::int64_t(double(config_.drift_skew.millis()) * severity)};
            oracle_->record_trip(fault::FaultKind::kRtcDrift,
                                 simulation_.now());
          }
        }
        msp_.set_rtc(simulation_.now() + session.elapsed + skew);
        ++ntp_resyncs_;
        record_outcome(RecoveryOutcome::kResyncedByNtp);
        return RecoveryOutcome::kResyncedByNtp;
      }
    }

    ++deferrals_;
    record_outcome(RecoveryOutcome::kDeferred);
    return RecoveryOutcome::kDeferred;
  }

  [[nodiscard]] const RecoveryConfig& config() const { return config_; }
  [[nodiscard]] int attempts() const { return attempts_; }
  [[nodiscard]] int gps_resyncs() const { return gps_resyncs_; }
  [[nodiscard]] int ntp_resyncs() const { return ntp_resyncs_; }
  [[nodiscard]] int deferrals() const { return deferrals_; }

  template <class Archive>
  void persist(Archive& ar) {
    ar.value(rng_);
    ar.value(last_successful_run_);
    ar.value(attempts_);
    ar.value(gps_resyncs_);
    ar.value(ntp_resyncs_);
    ar.value(deferrals_);
  }

 private:
  void record_outcome(RecoveryOutcome outcome) {
    const std::int64_t now_ms = simulation_.now().millis_since_epoch();
    switch (outcome) {
      case RecoveryOutcome::kResyncedByGps:
      case RecoveryOutcome::kResyncedByNtp:
        if (hooks_.metrics != nullptr) {
          hooks_.metrics->counter("recovery", "resyncs").increment();
        }
        if (hooks_.journal != nullptr) {
          hooks_.journal->record(
              now_ms, obs::EventType::kRecoveryResync, "recovery",
              outcome == RecoveryOutcome::kResyncedByNtp ? 1.0 : 0.0,
              double(attempts_));
        }
        break;
      case RecoveryOutcome::kDeferred:
        if (hooks_.metrics != nullptr) {
          hooks_.metrics->counter("recovery", "deferrals").increment();
        }
        if (hooks_.journal != nullptr) {
          hooks_.journal->record(now_ms, obs::EventType::kRecoveryDeferred,
                                 "recovery", double(attempts_));
        }
        break;
      case RecoveryOutcome::kClockTrusted:
        break;
    }
  }

  sim::Simulation& simulation_;
  hw::Msp430& msp_;
  hw::DgpsReceiver& dgps_;
  RecoveryConfig config_;
  util::Rng rng_;
  obs::Hooks hooks_;
  hw::GprsModem* gprs_ = nullptr;
  fault::FaultOracle* oracle_ = nullptr;
  std::optional<sim::SimTime> last_successful_run_;
  int attempts_ = 0;
  int gps_resyncs_ = 0;
  int ntp_resyncs_ = 0;
  int deferrals_ = 0;
};

}  // namespace gw::core
