// Checksummed remote code update (§VI).
//
// Field stations are unreachable for months, so every code change is
// lab-verified, shipped over GPRS, and *verified on arrival*: "scripts on
// the system ... automatically download the program, calculate a checksum
// and if it is correct replace the old file with the new one." The computed
// MD5 is immediately beaconed back with an HTTP GET (the deployed wget
// lacked POST), so Southampton learns the outcome without waiting the 24 h
// log round-trip. The transfer-corruption probability models the lossy GPRS
// path; a mismatch leaves the old version installed.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "util/md5.h"
#include "util/result.h"
#include "util/rng.h"

namespace gw::core {

struct UpdatePackage {
  std::string name;      // e.g. "basestation.py"
  std::string payload;   // file contents
  std::string expected_md5;  // computed in Southampton before sending

  template <class Archive>
  void persist(Archive& ar) {
    ar.value(name);
    ar.value(payload);
    ar.value(expected_md5);
  }
};

struct UpdateBeacon {
  std::string name;
  std::string md5;      // as calculated on the station
  bool verified = false;
  // Rendered as the HTTP GET the station issues (§VI).
  [[nodiscard]] std::string http_get() const {
    return "GET /update_result?file=" + name + "&md5=" + md5 +
           "&ok=" + (verified ? "1" : "0");
  }

  template <class Archive>
  void persist(Archive& ar) {
    ar.value(name);
    ar.value(md5);
    ar.value(verified);
  }
};

struct UpdateManagerConfig {
  double transfer_corruption = 0.03;  // per-download bit-damage probability
};

class UpdateManager {
 public:
  UpdateManager(util::Rng rng, UpdateManagerConfig config = {})
      : config_(config), rng_(rng) {}

  // Downloads + verifies + (maybe) installs. Returns the beacon to upload.
  UpdateBeacon apply(const UpdatePackage& package) {
    ++downloads_;
    std::string received = package.payload;
    if (rng_.bernoulli(config_.transfer_corruption) && !received.empty()) {
      // Flip one byte somewhere in the body.
      const auto index = rng_.uniform_index(received.size());
      received[index] = char(received[index] ^ 0x20);
    }
    UpdateBeacon beacon;
    beacon.name = package.name;
    beacon.md5 = util::Md5::hex_digest(received);
    beacon.verified = beacon.md5 == package.expected_md5;
    if (beacon.verified) {
      installed_[package.name] = received;
      ++installs_;
    } else {
      ++rejections_;  // old file stays in place
    }
    return beacon;
  }

  [[nodiscard]] bool has(const std::string& name) const {
    return installed_.contains(name);
  }
  [[nodiscard]] const std::string& installed(const std::string& name) const {
    return installed_.at(name);
  }

  [[nodiscard]] int downloads() const { return downloads_; }
  [[nodiscard]] int installs() const { return installs_; }
  [[nodiscard]] int rejections() const { return rejections_; }

  template <class Archive>
  void persist(Archive& ar) {
    ar.value(rng_);
    ar.value(installed_);
    ar.value(downloads_);
    ar.value(installs_);
    ar.value(rejections_);
  }

 private:
  UpdateManagerConfig config_;
  util::Rng rng_;
  std::map<std::string, std::string> installed_;
  int downloads_ = 0;
  int installs_ = 0;
  int rejections_ = 0;
};

}  // namespace gw::core
