// Sequential, abortable, time-consuming step runner.
//
// The daily run (Fig 4) is a chain of steps — query probes, drain the MSP,
// compute state, fetch GPS files, upload, fetch override, run the special —
// each of which *takes time* and can be cut short by the watchdog. A step
// is a chunk function invoked repeatedly: every call does a unit of work
// (one probe session, one file fetch, one upload) and returns the simulated
// time it consumed, or nullopt when the step is finished. Chunking is what
// lets the 2-hour cut land *between* files, so backlogs drain file by file
// across days (§VI) instead of losing a whole window's progress.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "sim/simulation.h"

namespace gw::core {

class ActionSequence {
 public:
  // Chunk: does one unit of work now; returns time consumed, or nullopt if
  // the step has nothing (more) to do.
  using Chunk = std::function<std::optional<sim::Duration>()>;

  explicit ActionSequence(sim::Simulation& simulation)
      : simulation_(simulation) {}

  ActionSequence& add_step(std::string name, Chunk chunk) {
    steps_.push_back(Step{std::move(name), std::move(chunk)});
    return *this;
  }

  // Convenience: a fixed-duration step that runs `action` then sleeps `d`.
  ActionSequence& add_fixed(std::string name, sim::Duration d,
                            std::function<void()> action = {}) {
    bool done = false;
    return add_step(std::move(name),
                    [d, done, action = std::move(action)]() mutable
                    -> std::optional<sim::Duration> {
                      if (done) return std::nullopt;
                      done = true;
                      if (action) action();
                      return d;
                    });
  }

  // Starts the sequence; `on_done(aborted)` fires when the last step
  // finishes or after abort(). A sequence can only run once.
  void run(std::function<void(bool aborted)> on_done) {
    on_done_ = std::move(on_done);
    running_ = true;
    advance();
  }

  // Hard stop (watchdog expiry / brown-out): nothing further runs; the
  // in-flight chunk's time was already spent.
  void abort() {
    if (!running_) return;
    running_ = false;
    if (pending_.has_value()) {
      simulation_.cancel(*pending_);
      pending_.reset();
    }
    aborted_ = true;
    finish();
  }

  [[nodiscard]] bool running() const { return running_; }
  [[nodiscard]] bool aborted() const { return aborted_; }
  [[nodiscard]] const std::string& current_step() const {
    static const std::string kNone = "(idle)";
    return index_ < steps_.size() ? steps_[index_].name : kNone;
  }

  // Names of steps that fully completed (for the Fig 4 trace bench).
  [[nodiscard]] const std::vector<std::string>& completed_steps() const {
    return completed_;
  }

  // Simulated time each completed step spanned, in completion order — the
  // raw material for the station's per-step latency histograms.
  struct StepDuration {
    std::string name;
    sim::Duration elapsed;
  };
  [[nodiscard]] const std::vector<StepDuration>& step_durations() const {
    return durations_;
  }

 private:
  struct Step {
    std::string name;
    Chunk chunk;
  };

  void advance() {
    if (!running_) return;
    pending_.reset();
    while (index_ < steps_.size()) {
      if (!step_started_.has_value()) step_started_ = simulation_.now();
      const auto duration = steps_[index_].chunk();
      if (!duration.has_value()) {
        completed_.push_back(steps_[index_].name);
        durations_.push_back(StepDuration{
            steps_[index_].name, simulation_.now() - *step_started_});
        step_started_.reset();
        ++index_;
        continue;
      }
      pending_ = simulation_.schedule_in(*duration, [this] { advance(); });
      return;
    }
    running_ = false;
    finish();
  }

  void finish() {
    if (on_done_) {
      auto fn = std::move(on_done_);
      on_done_ = nullptr;
      fn(aborted_);
    }
  }

  sim::Simulation& simulation_;
  std::vector<Step> steps_;
  std::size_t index_ = 0;
  bool running_ = false;
  bool aborted_ = false;
  std::optional<sim::EventId> pending_;
  std::optional<sim::SimTime> step_started_;
  std::function<void(bool)> on_done_;
  std::vector<std::string> completed_;
  std::vector<StepDuration> durations_;
};

}  // namespace gw::core
