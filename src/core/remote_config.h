// Remote configuration system (§V lesson, implemented).
//
// "Small adjustments could be made to the base station behaviour in order
// to try different strategies for retrieving data ... One of the many
// lessons learnt from this deployment is the importance of a reliable
// robust remote configuration system."
//
// RemoteConfig is a versioned key-value store: Southampton ships a
// ConfigUpdate (version, entries, MD5 over the canonical encoding); the
// station verifies the checksum, refuses stale or replayed versions, and
// applies atomically — a corrupted or out-of-order update can never leave
// the station half-configured. Typed getters with defaults keep missing
// keys safe. The station maps config keys onto the probe-protocol knobs,
// which is exactly the §V "different strategies for retrieving data".
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "util/md5.h"
#include "util/result.h"

namespace gw::core {

struct ConfigUpdate {
  std::uint32_t version = 0;
  std::map<std::string, std::string> entries;
  std::string md5;  // over canonical_encoding(version, entries)

  // Canonical form: "v=<version>\n<key>=<value>\n..." with sorted keys
  // (std::map iteration order).
  [[nodiscard]] std::string canonical_encoding() const {
    std::string body = "v=" + std::to_string(version) + "\n";
    for (const auto& [key, value] : entries) {
      body += key + "=" + value + "\n";
    }
    return body;
  }

  // Stamps the checksum (done in Southampton before sending).
  void seal() { md5 = util::Md5::hex_digest(canonical_encoding()); }

  template <class Archive>
  void persist(Archive& ar) {
    ar.value(version);
    ar.value(entries);
    ar.value(md5);
  }
};

class RemoteConfig {
 public:
  // Applies an update if and only if it verifies and advances the version.
  util::Status apply(const ConfigUpdate& update) {
    if (update.md5 != util::Md5::hex_digest(update.canonical_encoding())) {
      ++rejected_;
      return util::Status::failure("config: checksum mismatch");
    }
    if (update.version <= version_) {
      ++rejected_;
      return util::Status::failure("config: stale version " +
                                   std::to_string(update.version));
    }
    entries_ = update.entries;  // atomic: all keys replaced together
    version_ = update.version;
    ++applied_;
    return {};
  }

  [[nodiscard]] std::uint32_t version() const { return version_; }
  [[nodiscard]] int applied() const { return applied_; }
  [[nodiscard]] int rejected() const { return rejected_; }

  [[nodiscard]] std::optional<std::string> get(const std::string& key) const {
    const auto it = entries_.find(key);
    if (it == entries_.end()) return std::nullopt;
    return it->second;
  }

  [[nodiscard]] std::int64_t get_int(const std::string& key,
                                     std::int64_t fallback) const {
    const auto text = get(key);
    if (!text.has_value()) return fallback;
    try {
      return std::stoll(*text);
    } catch (...) {
      return fallback;
    }
  }

  [[nodiscard]] double get_double(const std::string& key,
                                  double fallback) const {
    const auto text = get(key);
    if (!text.has_value()) return fallback;
    try {
      return std::stod(*text);
    } catch (...) {
      return fallback;
    }
  }

  [[nodiscard]] bool get_bool(const std::string& key, bool fallback) const {
    const auto text = get(key);
    if (!text.has_value()) return fallback;
    return *text == "1" || *text == "true";
  }

  template <class Archive>
  void persist(Archive& ar) {
    ar.value(entries_);
    ar.value(version_);
    ar.value(applied_);
    ar.value(rejected_);
  }

 private:
  std::map<std::string, std::string> entries_;
  std::uint32_t version_ = 0;
  int applied_ = 0;
  int rejected_ = 0;
};

}  // namespace gw::core
