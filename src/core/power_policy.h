// Table 2: the voltage-driven power-state policy.
//
//   State  Min threshold  Probe jobs  Sensors  GPS        GPRS
//     3       12.5 V         yes        yes    12 / day    yes
//     2       12.0 V         yes        yes     1 / day    yes
//     1       11.5 V         yes        yes     none       yes
//     0         —            yes        yes     none       no
//
// The input is the *daily average* of the MSP430's 48 half-hourly samples —
// averaging captures overall bank health rather than the midday peak the
// Gumstix happens to be awake for (§III, Fig 5). Probe jobs run in every
// state because winter ice is the best radio season (§III); sensing is
// MSP430-driven and effectively free.
#pragma once

#include <optional>
#include <vector>

#include "power/power_state.h"
#include "util/units.h"

namespace gw::core {

// The state enum itself is shared vocabulary and lives one layer down
// (power/power_state.h) so the wire codec can name states without reaching
// up into core. Aliased here: `core::PowerState` stays valid everywhere.
using power::from_int;
using power::PowerState;
using power::to_int;

struct StateActions {
  bool probe_jobs = true;       // always attempted (Table 2)
  bool sensor_readings = true;  // always on (Table 2)
  int gps_readings_per_day = 0;
  bool gprs = false;
};

struct PowerPolicyConfig {
  util::Volts state3_threshold{12.5};
  util::Volts state2_threshold{12.0};
  util::Volts state1_threshold{11.5};
};

class PowerPolicy {
 public:
  explicit PowerPolicy(PowerPolicyConfig config = {}) : config_(config) {}

  // Maps the daily average voltage to the highest state whose minimum
  // threshold it clears (Table 2).
  [[nodiscard]] PowerState state_for(util::Volts daily_average) const {
    if (daily_average >= config_.state3_threshold) return PowerState::kState3;
    if (daily_average >= config_.state2_threshold) return PowerState::kState2;
    if (daily_average >= config_.state1_threshold) return PowerState::kState1;
    return PowerState::kState0;
  }

  [[nodiscard]] static StateActions actions_for(PowerState state) {
    StateActions actions;
    switch (state) {
      case PowerState::kState3:
        actions.gps_readings_per_day = 12;
        actions.gprs = true;
        break;
      case PowerState::kState2:
        actions.gps_readings_per_day = 1;
        actions.gprs = true;
        break;
      case PowerState::kState1:
        actions.gps_readings_per_day = 0;
        actions.gprs = true;
        break;
      case PowerState::kState0:
        actions.gps_readings_per_day = 0;
        actions.gprs = false;
        break;
    }
    return actions;
  }

  [[nodiscard]] const PowerPolicyConfig& config() const { return config_; }

 private:
  PowerPolicyConfig config_;
};

// Daily average of the MSP430 sample batch (§III). Throws nothing; an empty
// batch (e.g. first day after a brown-out) yields no value.
[[nodiscard]] inline std::optional<util::Volts> daily_average(
    const std::vector<util::Volts>& samples) {
  if (samples.empty()) return std::nullopt;
  double sum = 0.0;
  for (const auto v : samples) sum += v.value();
  return util::Volts{sum / double(samples.size())};
}

}  // namespace gw::core
