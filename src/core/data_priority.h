// Data-priority analysis — the paper's proposed extension, implemented.
//
// §VII: "This work could be extended by enabling the base station to
// analyse the data collected and prioritise it forcing communication even
// if the available power is marginal if the data warrants it." (Also
// trailed in §III via [8].)
//
// Detector design: per probe and channel (conductivity, basal pressure), a
// FAST and a SLOW exponential moving average. Their divergence, scaled by a
// fixed per-channel reference sigma, is the anomaly score:
//   * white noise        -> the two means agree          -> routine;
//   * slow seasonal drift -> both track it, small gap    -> routine;
//   * melt-onset ramp or step -> the fast mean runs ahead of the slow one
//     by (rate x time-constant gap)                      -> urgent.
// A sustain counter requires the divergence to persist before paging, and
// after an urgent report the slow mean is re-anchored so a new regime is
// reported once, not forever. (A naive z-score with *adaptive* variance
// fails here: a ramp's systematic residual inflates the variance until the
// score saturates near 1 — found the hard way, kept as a test.)
#pragma once

#include <algorithm>
#include <cmath>
#include <map>
#include <span>

#include "proto/reading.h"

namespace gw::core {

enum class DataPriority : int {
  kRoutine = 0,
  kInteresting = 1,
  kUrgent = 2,
};

struct DataPriorityConfig {
  double fast_alpha = 0.05;   // hours-scale tracker (hourly sampling)
  double slow_alpha = 0.002;  // weeks-scale baseline
  double interesting_sigma = 4.0;  // divergence thresholds (reference sigmas)
  double urgent_sigma = 6.0;
  int urgent_sustain = 6;     // consecutive excursions required
  double conductivity_sigma_us = 0.25;  // reference scales
  double pressure_sigma_kpa = 10.0;
};

class DataPriorityAnalyzer {
 public:
  explicit DataPriorityAnalyzer(DataPriorityConfig config = {})
      : config_(config) {}

  // Scores a batch of readings (one probe session's worth); returns the
  // highest priority seen and updates the running baselines.
  DataPriority analyze(std::span<const proto::ProbeReading> readings) {
    DataPriority batch_priority = DataPriority::kRoutine;
    for (const auto& reading : readings) {
      batch_priority = std::max(batch_priority, score(reading));
    }
    last_batch_ = batch_priority;
    return batch_priority;
  }

  [[nodiscard]] DataPriority last_batch() const { return last_batch_; }
  [[nodiscard]] int urgent_batches() const { return urgent_batches_; }

  template <class Archive>
  void persist(Archive& ar) {
    ar.value(per_probe_);
    ar.value(last_batch_);
    ar.value(urgent_batches_);
  }

 private:
  struct Channel {
    bool primed = false;
    double fast = 0.0;
    double slow = 0.0;

    template <class Archive>
    void persist(Archive& ar) {
      ar.value(primed);
      ar.value(fast);
      ar.value(slow);
    }

    // Divergence in reference sigmas after folding in the new sample.
    double advance(double x, const DataPriorityConfig& config,
                   double sigma_ref) {
      if (!primed) {
        primed = true;
        fast = x;
        slow = x;
        return 0.0;
      }
      fast += config.fast_alpha * (x - fast);
      slow += config.slow_alpha * (x - slow);
      return std::abs(fast - slow) / sigma_ref;
    }

    // A reported regime change becomes the new normal.
    void accept_regime() { slow = fast; }
  };

  DataPriority score(const proto::ProbeReading& reading) {
    auto& trackers = per_probe_[reading.probe_id];
    const double z_cond = trackers.conductivity.advance(
        reading.conductivity_us, config_, config_.conductivity_sigma_us);
    const double z_pres = trackers.pressure.advance(
        reading.pressure_kpa, config_, config_.pressure_sigma_kpa);
    const double z = std::max(z_cond, z_pres);

    if (z < config_.interesting_sigma) {
      trackers.consecutive = 0;
      return DataPriority::kRoutine;
    }
    if (z >= config_.urgent_sigma &&
        ++trackers.consecutive >= config_.urgent_sustain) {
      ++urgent_batches_;
      trackers.conductivity.accept_regime();
      trackers.pressure.accept_regime();
      trackers.consecutive = 0;
      return DataPriority::kUrgent;
    }
    if (z < config_.urgent_sigma) trackers.consecutive = 0;
    return DataPriority::kInteresting;
  }

  struct ProbeTrackers {
    Channel conductivity;
    Channel pressure;
    int consecutive = 0;

    template <class Archive>
    void persist(Archive& ar) {
      ar.value(conductivity);
      ar.value(pressure);
      ar.value(consecutive);
    }
  };

  DataPriorityConfig config_;
  std::map<int, ProbeTrackers> per_probe_;
  DataPriority last_batch_ = DataPriority::kRoutine;
  int urgent_batches_ = 0;
};

}  // namespace gw::core
