// Log-volume budgeting (§VI field lesson).
//
// "the amount of output from the binaries ... is excessive for remote
// debugging ... when a probe is communicated with for the first time in a
// few months then over 1 megabyte of log data can be produced, which then
// takes time/power/money to transfer but is of little use."
//
// The LogManager fronts the station Logger with per-component daily byte
// budgets: once a component exhausts its budget, its records below the
// protected floor are suppressed at the source and replaced, at day
// rollover, by a single summary line ("probes: suppressed 11734 records,
// 1.1 MiB"). Warnings and errors always get through — the field rule is to
// cut *redundant* output, not evidence.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "util/logging.h"
#include "util/units.h"

namespace gw::core {

struct LogBudgetConfig {
  std::size_t component_daily_budget_bytes = 16 * 1024;
  // Severities at or above this are never suppressed.
  util::LogLevel protected_floor = util::LogLevel::kWarn;
};

class LogManager {
 public:
  LogManager(util::Logger& logger, LogBudgetConfig config = {})
      : logger_(logger), config_(config) {}

  void log(std::int64_t time_ms, util::LogLevel level,
           const std::string& component, std::string message) {
    auto& usage = usage_[component];
    const bool is_protected =
        static_cast<int>(level) >= static_cast<int>(config_.protected_floor);
    if (!is_protected &&
        usage.bytes_today >= config_.component_daily_budget_bytes) {
      ++usage.suppressed_records;
      usage.suppressed_bytes += message.size() + component.size() + 24;
      ++total_suppressed_;
      return;
    }
    util::LogRecord record{time_ms, level, component, message};
    usage.bytes_today += record.rendered_bytes();
    logger_.log(time_ms, level, component, std::move(message));
  }

  void debug(std::int64_t t, const std::string& c, std::string m) {
    log(t, util::LogLevel::kDebug, c, std::move(m));
  }
  void info(std::int64_t t, const std::string& c, std::string m) {
    log(t, util::LogLevel::kInfo, c, std::move(m));
  }
  void warn(std::int64_t t, const std::string& c, std::string m) {
    log(t, util::LogLevel::kWarn, c, std::move(m));
  }
  void error(std::int64_t t, const std::string& c, std::string m) {
    log(t, util::LogLevel::kError, c, std::move(m));
  }

  // Day rollover: emits one summary line per suppressed component and
  // resets the budgets (called at the top of each daily run).
  void new_day(std::int64_t time_ms) {
    for (auto& [component, usage] : usage_) {
      if (usage.suppressed_records > 0) {
        logger_.info(time_ms, component,
                     "log budget: suppressed " +
                         std::to_string(usage.suppressed_records) +
                         " records (" +
                         std::to_string(usage.suppressed_bytes / 1024) +
                         " KiB) yesterday");
      }
      usage = Usage{};
    }
  }

  [[nodiscard]] std::size_t total_suppressed() const {
    return total_suppressed_;
  }

  [[nodiscard]] std::size_t suppressed_for(const std::string& component) const {
    const auto it = usage_.find(component);
    return it == usage_.end() ? 0 : it->second.suppressed_records;
  }

  // What the suppression saved on the daily GPRS upload, in link-seconds.
  [[nodiscard]] double saved_transfer_seconds(
      util::BitsPerSecond rate) const {
    std::size_t bytes = 0;
    for (const auto& [component, usage] : usage_) {
      bytes += usage.suppressed_bytes;
    }
    return util::transfer_seconds(util::Bytes{std::int64_t(bytes)}, rate);
  }

  template <class Archive>
  void persist(Archive& ar) {
    ar.value(usage_);
    ar.value(total_suppressed_);
  }

 private:
  struct Usage {
    std::size_t bytes_today = 0;
    std::size_t suppressed_records = 0;
    std::size_t suppressed_bytes = 0;

    template <class Archive>
    void persist(Archive& ar) {
      ar.value(bytes_today);
      ar.value(suppressed_records);
      ar.value(suppressed_bytes);
    }
  };

  util::Logger& logger_;
  LogBudgetConfig config_;
  std::map<std::string, Usage> usage_;
  std::size_t total_suppressed_ = 0;
};

}  // namespace gw::core
