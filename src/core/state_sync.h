// Server-mediated power-state synchronisation (§III).
//
// The dGPS needs *both* stations recording on the same schedule, but the
// dual-GPRS architecture removed the inter-station link. The fix: each
// station uploads its local state daily; when a station later asks for its
// override, the server "looks up both the existing states from the stations
// and returns the lowest one" (optionally floored further by a manual
// override from Southampton). Station-side safety clamps then apply:
//   * never above what the battery voltage allows;
//   * never forced into state 0 (a state with no communications could
//     otherwise be made permanent from afar);
//   * if the fetch fails, just run the local state (§III).
//
// SyncRules is the pure logic; SyncServer is the Southampton ledger. The
// upload/download split across the daily run (upload *before* fetching the
// override) gives same-day convergence only when the stations' window skew
// is smaller than the upload duration — otherwise a one-day lag (§III),
// which bench_sync_lag sweeps.
#pragma once

#include <algorithm>
#include <map>
#include <optional>
#include <string>

#include "core/power_policy.h"
#include "sim/time.h"

namespace gw::core {

struct SyncRules {
  // Station-side clamp combining the voltage-derived state with the
  // server's override (if any).
  [[nodiscard]] static PowerState apply(
      PowerState voltage_allowed, std::optional<PowerState> server_override) {
    if (!server_override.has_value()) return voltage_allowed;  // fetch failed
    // A remote command can lower the state but never below 1 (§III): the
    // station must keep communicating so the override can be undone.
    const PowerState floor_protected =
        std::max(*server_override, PowerState::kState1);
    return std::min(voltage_allowed, floor_protected);
  }
};

// Southampton's ledger: latest reported state per station + manual override.
//
// Reports carry a timestamp and expire after max_report_age: a station that
// has gone silent (flat battery, weeks-long GPRS outage) must not pin the
// whole deployment to its last — typically lowest — reported state forever.
// Once its report ages out, the min-rule is computed over the stations
// still talking. The manual override never expires.
class SyncServer {
 public:
  // Reports older than this are ignored by override_for_client(). Generous
  // by default: a silent week is an outage, not a state opinion.
  void set_max_report_age(sim::Duration age) { max_report_age_ = age; }
  [[nodiscard]] sim::Duration max_report_age() const {
    return max_report_age_;
  }

  // `at` defaults to the epoch so timestamp-free callers (unit tests,
  // benches predating expiry) keep the old always-fresh behaviour.
  void report_state(const std::string& station, PowerState state,
                    sim::SimTime at = sim::kEpoch) {
    latest_[station] = Entry{state, at};
  }

  // Operator intervention ("easy manual overriding of the power states if
  // required", §III). nullopt clears it.
  void set_manual_override(std::optional<PowerState> override_state) {
    manual_override_ = override_state;
  }

  // The override returned to any asking station: the minimum over every
  // *fresh* reported state and the manual override. Before any reports
  // exist there is nothing to say.
  [[nodiscard]] std::optional<PowerState> override_for_client(
      sim::SimTime now = sim::kEpoch) const {
    std::optional<PowerState> lowest = manual_override_;
    for (const auto& [station, entry] : latest_) {
      if (now - entry.reported_at > max_report_age_) continue;  // stale
      if (!lowest.has_value() || entry.state < *lowest) lowest = entry.state;
    }
    return lowest;
  }

  [[nodiscard]] std::optional<PowerState> reported_state(
      const std::string& station) const {
    const auto it = latest_.find(station);
    if (it == latest_.end()) return std::nullopt;
    return it->second.state;
  }

  [[nodiscard]] std::optional<sim::SimTime> reported_at(
      const std::string& station) const {
    const auto it = latest_.find(station);
    if (it == latest_.end()) return std::nullopt;
    return it->second.reported_at;
  }

 private:
  struct Entry {
    PowerState state = PowerState::kState0;
    sim::SimTime reported_at{};
  };

  std::map<std::string, Entry> latest_;
  std::optional<PowerState> manual_override_;
  sim::Duration max_report_age_ = sim::days(5);
};

}  // namespace gw::core
