// Server-mediated power-state synchronisation (§III), generalised to
// N-station fleets via named sync groups.
//
// The dGPS needs *both* stations of a pair recording on the same schedule,
// but the dual-GPRS architecture removed the inter-station link. The fix:
// each station uploads its local state daily; when a station later asks for
// its override, the server "looks up both the existing states from the
// stations and returns the lowest one" (optionally floored further by a
// manual override from Southampton). Station-side safety clamps then apply:
//   * never above what the battery voltage allows;
//   * never forced into state 0 (a state with no communications could
//     otherwise be made permanent from afar);
//   * if the fetch fails, just run the local state (§III).
//
// Fleet generalisation: stations are assigned to named *sync groups* (a
// dGPS pair is one group). The min-rule and the group override apply only
// within a group; an ungrouped station self-syncs (its own fresh report is
// the only ledger entry that binds it). The fleet-wide manual override
// still floors every station — that is the operator's big red lever. The
// legacy no-argument query remains the fleet-wide view (min over every
// fresh report) for pre-fleet callers.
//
// SyncRules is the pure logic; SyncServer is the Southampton ledger. The
// upload/download split across the daily run (upload *before* fetching the
// override) gives same-day convergence only when the stations' window skew
// is smaller than the upload duration — otherwise a one-day lag (§III),
// which bench_sync_lag sweeps.
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/power_policy.h"
#include "obs/journal.h"
#include "sim/time.h"

namespace gw::core {

struct SyncRules {
  // Station-side clamp combining the voltage-derived state with the
  // server's override (if any).
  [[nodiscard]] static PowerState apply(
      PowerState voltage_allowed, std::optional<PowerState> server_override) {
    if (!server_override.has_value()) return voltage_allowed;  // fetch failed
    // A remote command can lower the state but never below 1 (§III): the
    // station must keep communicating so the override can be undone.
    const PowerState floor_protected =
        std::max(*server_override, PowerState::kState1);
    return std::min(voltage_allowed, floor_protected);
  }
};

// Southampton's ledger: latest reported state per station, sync-group
// membership, and the manual overrides (fleet-wide and per-group).
//
// Reports carry a timestamp and expire after max_report_age: a station that
// has gone silent (flat battery, weeks-long GPRS outage) must not pin its
// group to its last — typically lowest — reported state forever. Once its
// report ages out, the min-rule is computed over the members still talking.
// Manual overrides never expire.
class SyncServer {
 public:
  // Reports older than this are ignored by override_for_client(). Generous
  // by default: a silent week is an outage, not a state opinion.
  void set_max_report_age(sim::Duration age) { max_report_age_ = age; }
  [[nodiscard]] sim::Duration max_report_age() const {
    return max_report_age_;
  }

  // Optional instrumentation: future-dated reports journal a
  // kFutureReport record ("state_sync") when they are ignored by a
  // freshness fold. Null hooks cost one branch on the anomalous path only.
  void set_hooks(obs::Hooks hooks) { hooks_ = hooks; }

  // Times a freshness fold ignored an entry whose reported_at lay in the
  // future (see fold_entry). Counts per *fold*, not per entry: a future
  // report consulted by ten queries counts ten — it is an ongoing anomaly,
  // like an alert that fires per evaluation.
  [[nodiscard]] std::uint64_t future_reports_ignored() const {
    return future_reports_ignored_;
  }

  // `at` defaults to the epoch so timestamp-free callers (unit tests,
  // benches predating expiry) keep the old always-fresh behaviour.
  void report_state(const std::string& station, PowerState state,
                    sim::SimTime at = sim::kEpoch) {
    latest_[station] = Entry{state, at};
    if (report_log_enabled_) report_log_.push_back({station, state, at});
  }

  // --- shard-message access points (sim/sharded_simulation.h) -------------
  //
  // A sharded fleet gives every station its own SyncServer replica and
  // relays fresh reports between replicas as timestamped inter-shard
  // messages (docs/PARALLELISM.md). The replica-side hooks: an outbound
  // log of locally made reports (drained at window barriers) and an apply
  // path that updates the ledger *without* re-logging, so a relayed report
  // can never echo back across the shard boundary.

  struct ReportRecord {
    std::string station;
    PowerState state = PowerState::kState0;
    sim::SimTime reported_at{};

    template <class Archive>
    void persist(Archive& ar) {
      ar.value(station);
      ar.value(state);
      ar.value(reported_at);
    }
  };

  // Off by default: the serial server keeps its zero-overhead ledger.
  void enable_report_log(bool enabled = true) { report_log_enabled_ = enabled; }
  [[nodiscard]] bool report_log_enabled() const { return report_log_enabled_; }

  // Moves out everything report_state() logged since the previous drain,
  // in report order. Always empty while the log is disabled.
  [[nodiscard]] std::vector<ReportRecord> drain_report_log() {
    std::vector<ReportRecord> drained;
    drained.swap(report_log_);
    return drained;
  }

  // Applies a report relayed from another replica: same ledger update as
  // report_state (freshness keeps the *original* report time), no log entry.
  void record_remote_state(const std::string& station, PowerState state,
                           sim::SimTime reported_at) {
    latest_[station] = Entry{state, reported_at};
  }

  // --- sync groups --------------------------------------------------------

  // Puts `station` in `group` (an empty group name removes it). Membership
  // is configuration, not data: the fleet assembly declares its dGPS pairs
  // once, before any report arrives.
  void assign_group(const std::string& station, const std::string& group) {
    if (group.empty()) {
      group_of_.erase(station);
    } else {
      group_of_[station] = group;
    }
  }

  // The station's group, or "" when it is ungrouped (self-syncing).
  [[nodiscard]] std::string group_of(const std::string& station) const {
    const auto it = group_of_.find(station);
    return it == group_of_.end() ? std::string{} : it->second;
  }

  // Members of a group, in name order (deterministic export order).
  [[nodiscard]] std::vector<std::string> group_members(
      const std::string& group) const {
    std::vector<std::string> members;
    for (const auto& [station, g] : group_of_) {
      if (g == group) members.push_back(station);
    }
    return members;
  }

  // Distinct group names, sorted.
  [[nodiscard]] std::vector<std::string> groups() const {
    std::vector<std::string> names;
    for (const auto& [station, g] : group_of_) {
      if (std::find(names.begin(), names.end(), g) == names.end()) {
        names.push_back(g);
      }
    }
    std::sort(names.begin(), names.end());
    return names;
  }

  // --- overrides ----------------------------------------------------------

  // Operator intervention ("easy manual overriding of the power states if
  // required", §III). Fleet-wide: floors every station. nullopt clears it.
  void set_manual_override(std::optional<PowerState> override_state) {
    manual_override_ = override_state;
  }

  // Group-scoped operator override: floors only that group's members.
  void set_group_override(const std::string& group,
                          std::optional<PowerState> override_state) {
    if (override_state.has_value()) {
      group_overrides_[group] = *override_state;
    } else {
      group_overrides_.erase(group);
    }
  }

  [[nodiscard]] std::optional<PowerState> group_override(
      const std::string& group) const {
    const auto it = group_overrides_.find(group);
    if (it == group_overrides_.end()) return std::nullopt;
    return it->second;
  }

  // --- queries ------------------------------------------------------------

  // Legacy fleet-wide view: the minimum over every *fresh* reported state
  // and the fleet-wide manual override. Before any reports exist there is
  // nothing to say. (Pre-fleet callers and diagnostics; stations use the
  // per-station overload below.)
  [[nodiscard]] std::optional<PowerState> override_for_client(
      sim::SimTime now = sim::kEpoch) const {
    std::optional<PowerState> lowest = manual_override_;
    for (const auto& [station, entry] : latest_) {
      fold_entry(entry, now, lowest);
    }
    return lowest;
  }

  // The override returned to `station`: grouped stations get the min over
  // their group's fresh reports, floored by the group override; ungrouped
  // stations self-sync (only their own fresh report binds). The fleet-wide
  // manual override applies to everyone.
  [[nodiscard]] std::optional<PowerState> override_for_client(
      const std::string& station, sim::SimTime now = sim::kEpoch) const {
    std::optional<PowerState> lowest = manual_override_;
    const std::string group = group_of(station);
    if (group.empty()) {
      const auto it = latest_.find(station);
      if (it != latest_.end()) fold_entry(it->second, now, lowest);
      return lowest;
    }
    if (const auto scoped = group_override(group); scoped.has_value()) {
      if (!lowest.has_value() || *scoped < *lowest) lowest = *scoped;
    }
    for (const auto& [member, g] : group_of_) {
      if (g != group) continue;
      const auto it = latest_.find(member);
      if (it != latest_.end()) fold_entry(it->second, now, lowest);
    }
    return lowest;
  }

  [[nodiscard]] std::optional<PowerState> reported_state(
      const std::string& station) const {
    const auto it = latest_.find(station);
    if (it == latest_.end()) return std::nullopt;
    return it->second.state;
  }

  [[nodiscard]] std::optional<sim::SimTime> reported_at(
      const std::string& station) const {
    const auto it = latest_.find(station);
    if (it == latest_.end()) return std::nullopt;
    return it->second.reported_at;
  }

  // Every station with a ledger entry, in name order (directory queries).
  [[nodiscard]] std::vector<std::string> reported_stations() const {
    std::vector<std::string> names;
    names.reserve(latest_.size());
    for (const auto& [station, entry] : latest_) names.push_back(station);
    return names;
  }

  // The consumer-facing convergence view of one group, computed from the
  // *ledger* (reported states), not live station objects — this is what a
  // Southampton operator can actually see. Converged means every member
  // has a fresh, honest report and all of them agree.
  struct GroupView {
    int members = 0;
    int fresh = 0;
    bool converged = false;
    PowerState state = PowerState::kState0;  // agreed state when converged
  };
  [[nodiscard]] GroupView group_view(const std::string& group,
                                     sim::SimTime now = sim::kEpoch) const {
    GroupView view;
    bool agree = true;
    for (const auto& [member, g] : group_of_) {
      if (g != group) continue;
      ++view.members;
      const auto it = latest_.find(member);
      if (it == latest_.end()) continue;
      std::optional<PowerState> folded;
      fold_entry(it->second, now, folded);
      if (!folded.has_value()) continue;  // stale or future-dated
      if (view.fresh > 0 && *folded != view.state) agree = false;
      view.state = view.fresh == 0 ? *folded : std::min(view.state, *folded);
      ++view.fresh;
    }
    view.converged = view.members > 0 && view.fresh == view.members && agree;
    if (!view.converged) view.state = PowerState::kState0;
    return view;
  }

  // Snapshot support (docs/SNAPSHOT.md). Group membership is configuration
  // (re-declared by the fleet assembly), but it is cheap and saving it makes
  // the section self-describing; hooks are wiring and excluded.
  template <class Archive>
  void persist(Archive& ar) {
    ar.value(latest_);
    ar.value(future_reports_ignored_);
    ar.value(report_log_enabled_);
    ar.value(report_log_);
    ar.value(group_of_);
    ar.value(group_overrides_);
    ar.value(manual_override_);
    ar.value(max_report_age_);
  }

 private:
  struct Entry {
    PowerState state = PowerState::kState0;
    sim::SimTime reported_at{};

    template <class Archive>
    void persist(Archive& ar) {
      ar.value(state);
      ar.value(reported_at);
    }
  };

  // Folds a ledger entry into the running minimum iff it is still fresh.
  //
  // A future-dated report is *rejected*, not treated as eternally fresh:
  // `now - reported_at` goes negative for a station whose RTC runs ahead
  // (rtc_drift fault) or a cross-shard relay consulted before the replica's
  // clock caught up, and the old `age > max` test then held forever — one
  // drifted clock could pin its group's min-rule indefinitely. Once real
  // time reaches the claimed timestamp the entry folds normally, so honest
  // reports (reported_at <= now) behave exactly as before.
  void fold_entry(const Entry& entry, sim::SimTime now,
                  std::optional<PowerState>& lowest) const {
    if (entry.reported_at > now) {  // from the future: not evidence
      ++future_reports_ignored_;
      if (hooks_.journal != nullptr) {
        hooks_.journal->record(now.millis_since_epoch(),
                               obs::EventType::kFutureReport, "state_sync",
                               (entry.reported_at - now).to_seconds(),
                               double(to_int(entry.state)));
      }
      return;
    }
    if (now - entry.reported_at > max_report_age_) return;  // stale
    if (!lowest.has_value() || entry.state < *lowest) lowest = entry.state;
  }

  std::map<std::string, Entry> latest_;
  obs::Hooks hooks_;
  // Mutable: queries are logically const reads of the ledger; the anomaly
  // count is instrumentation, not state the min-rule depends on.
  mutable std::uint64_t future_reports_ignored_ = 0;
  bool report_log_enabled_ = false;
  std::vector<ReportRecord> report_log_;
  std::map<std::string, std::string> group_of_;
  std::map<std::string, PowerState> group_overrides_;
  std::optional<PowerState> manual_override_;
  sim::Duration max_report_age_ = sim::days(5);
};

}  // namespace gw::core
