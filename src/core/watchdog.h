// The two-hour safety watchdog (§VI).
//
// "This safety mechanism prevents the system from running for more than two
// hours at a time ... if something crashes in the system — for example a
// SCP transfer hangs — the system does not remain running until its
// batteries are depleted." The MSP430 arms it when it powers the Gumstix;
// expiry cuts power no matter what the Linux side is doing. The same
// mechanism is what truncates oversized backlogs (§VI), so the expiry count
// is an observable the benches report.
#pragma once

#include <functional>
#include <optional>

#include "obs/journal.h"
#include "sim/simulation.h"
#include "snapshot/error.h"

namespace gw::core {

class Watchdog {
 public:
  explicit Watchdog(sim::Simulation& simulation,
                    sim::Duration limit = sim::hours(2))
      : simulation_(simulation), limit_(limit) {}

  // Optional instrumentation: arms/expiries to "watchdog" counters, each
  // expiry to the journal (the §VI observable the benches report).
  void set_hooks(obs::Hooks hooks) { hooks_ = hooks; }

  // Arms (or re-arms) the timer; on expiry runs `on_expire` exactly once.
  void arm(std::function<void()> on_expire) {
    disarm();
    expired_ = false;
    deadline_ = simulation_.now() + limit_;
    if (hooks_.metrics != nullptr) {
      hooks_.metrics->counter("watchdog", "arms").increment();
    }
    pending_ = simulation_.schedule_in(limit_, [this,
                                                fn = std::move(on_expire)] {
      pending_.reset();
      expired_ = true;
      ++expiry_count_;
      if (hooks_.metrics != nullptr) {
        hooks_.metrics->counter("watchdog", "expiries").increment();
      }
      if (hooks_.journal != nullptr) {
        hooks_.journal->record(simulation_.now().millis_since_epoch(),
                               obs::EventType::kWatchdogExpiry, "watchdog",
                               limit_.to_seconds());
      }
      fn();
    });
  }

  // Normal shutdown path: the run finished inside the window.
  void disarm() {
    if (pending_.has_value()) {
      simulation_.cancel(*pending_);
      pending_.reset();
    }
  }

  [[nodiscard]] bool armed() const { return pending_.has_value(); }
  [[nodiscard]] bool expired() const { return expired_; }
  [[nodiscard]] int expiry_count() const { return expiry_count_; }
  [[nodiscard]] sim::Duration limit() const { return limit_; }

  // Time left before the cut — the daily run checks this before starting
  // another file fetch or upload chunk.
  [[nodiscard]] sim::Duration remaining() const {
    if (!pending_.has_value()) return sim::Duration{0};
    return deadline_ - simulation_.now();
  }

  // Snapshot support (docs/SNAPSHOT.md). The pending expiry event captures
  // an arbitrary on_expire closure, which cannot be rebuilt from data — a
  // save requires the watchdog disarmed (checkpoints land between runs).
  template <class Archive>
  void persist(Archive& ar) {
    if constexpr (Archive::kIsSaver) {
      if (pending_.has_value()) {
        throw snapshot::SnapshotError(snapshot::SnapshotErrc::kNotQuiescent,
                                      "watchdog armed", "watchdog");
      }
    }
    ar.value(expired_);
    ar.value(expiry_count_);
  }

 private:
  sim::Simulation& simulation_;
  // gwlint: allow(persist-coverage): construction constant, never mutated
  sim::Duration limit_;
  obs::Hooks hooks_;
  std::optional<sim::EventId> pending_;
  // gwlint: allow(persist-coverage): only meaningful while armed; saves
  // refuse with kNotQuiescent when armed, so there is nothing to carry
  sim::SimTime deadline_{};
  bool expired_ = false;
  int expiry_count_ = 0;
};

}  // namespace gw::core
