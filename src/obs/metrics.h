// MetricsRegistry: counters, gauges, and fixed-bucket histograms.
//
// The repo used to measure itself three different ways (sim::Trace series,
// util::Logger byte accounting, power::PowerSystem energy ledgers) with no
// common registry and no machine-readable export. This is the common
// registry: every metric is keyed by (component, name) — the naming contract
// is documented in docs/OBSERVABILITY.md — and handles are stable references
// into node-based maps, so a subsystem looks its metric up once and then
// increments through the cached handle on the hot path (per-tick use is a
// single pointer-chase, no string hashing).
//
// The registry is deliberately *below* sim in the dependency order
// (util -> obs -> sim -> ...): it speaks raw int64 milliseconds and doubles,
// never SimTime, so every layer including sim itself can be instrumented.
#pragma once

#include <cstdint>
#include <limits>
#include <map>
#include <string>
#include <vector>

namespace gw::obs {

// Monotonically increasing event count (frames sent, watchdog expiries,
// brown-outs). Never decremented, never reset mid-run.
class Counter {
 public:
  void increment(std::uint64_t n = 1) { value_ += n; }
  [[nodiscard]] std::uint64_t value() const { return value_; }

  template <class Archive>
  void persist(Archive& ar) {
    ar.value(value_);
  }

 private:
  std::uint64_t value_ = 0;
};

// Last-write-wins sample of a continuously-valued quantity (battery SoC,
// joules consumed by a load, queue depth).
class Gauge {
 public:
  void set(double value) { value_ = value; }
  void add(double delta) { value_ += delta; }
  [[nodiscard]] double value() const { return value_; }

  template <class Archive>
  void persist(Archive& ar) {
    ar.value(value_);
  }

 private:
  double value_ = 0.0;
};

// Fixed-bucket histogram: observations are counted into the first bucket
// whose upper bound is >= the value; values beyond the last bound land in
// an implicit overflow bucket. Bounds are fixed at creation so the export
// schema is stable across runs.
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds)
      : upper_bounds_(std::move(upper_bounds)),
        counts_(upper_bounds_.size() + 1, 0) {}

  void observe(double value) {
    ++count_;
    sum_ += value;
    min_ = value < min_ ? value : min_;
    max_ = value > max_ ? value : max_;
    std::size_t bucket = upper_bounds_.size();  // overflow by default
    for (std::size_t i = 0; i < upper_bounds_.size(); ++i) {
      if (value <= upper_bounds_[i]) {
        bucket = i;
        break;
      }
    }
    ++counts_[bucket];
  }

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double mean() const {
    return count_ == 0 ? 0.0 : sum_ / double(count_);
  }
  // min()/max() are only meaningful when count() > 0.
  [[nodiscard]] double min() const { return count_ == 0 ? 0.0 : min_; }
  [[nodiscard]] double max() const { return count_ == 0 ? 0.0 : max_; }
  [[nodiscard]] const std::vector<double>& upper_bounds() const {
    return upper_bounds_;
  }
  // counts()[i] pairs with upper_bounds()[i]; the extra last entry is the
  // overflow bucket (> upper_bounds().back()).
  [[nodiscard]] const std::vector<std::uint64_t>& counts() const {
    return counts_;
  }

  // A general-purpose duration scale in seconds: 1 ms .. ~18 h, decade
  // steps with a 1-3 split. Used when a call site has no better idea.
  [[nodiscard]] static std::vector<double> default_seconds_buckets() {
    return {0.001, 0.003, 0.01,  0.03,  0.1,    0.3,     1.0,     3.0,
            10.0,  30.0,  100.0, 300.0, 1000.0, 3000.0, 10000.0, 65536.0};
  }

  template <class Archive>
  void persist(Archive& ar) {
    ar.value(upper_bounds_);
    ar.value(counts_);
    ar.value(count_);
    ar.value(sum_);
    ar.value(min_);
    ar.value(max_);
  }

 private:
  std::vector<double> upper_bounds_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

struct MetricKey {
  std::string component;
  std::string name;

  friend auto operator<=>(const MetricKey&, const MetricKey&) = default;

  // The exported "component.metric" form of the contract.
  [[nodiscard]] std::string full_name() const {
    return component + "." + name;
  }

  template <class Archive>
  void persist(Archive& ar) {
    ar.value(component);
    ar.value(name);
  }
};

class MetricsRegistry {
 public:
  // Lookup-or-create. Returned references stay valid for the registry's
  // lifetime (node-based map), so call sites cache them.
  Counter& counter(const std::string& component, const std::string& name) {
    return counters_[MetricKey{component, name}];
  }
  Gauge& gauge(const std::string& component, const std::string& name) {
    return gauges_[MetricKey{component, name}];
  }
  // Bucket bounds apply only on first creation; later lookups of the same
  // key return the existing histogram unchanged (schema stability).
  Histogram& histogram(const std::string& component, const std::string& name,
                       std::vector<double> upper_bounds = {}) {
    const MetricKey key{component, name};
    auto it = histograms_.find(key);
    if (it == histograms_.end()) {
      if (upper_bounds.empty()) {
        upper_bounds = Histogram::default_seconds_buckets();
      }
      it = histograms_.emplace(key, Histogram{std::move(upper_bounds)}).first;
    }
    return it->second;
  }

  // --- read side (exporters and tests) -----------------------------------

  [[nodiscard]] const Counter* find_counter(const std::string& component,
                                            const std::string& name) const {
    const auto it = counters_.find(MetricKey{component, name});
    return it == counters_.end() ? nullptr : &it->second;
  }
  [[nodiscard]] const Gauge* find_gauge(const std::string& component,
                                        const std::string& name) const {
    const auto it = gauges_.find(MetricKey{component, name});
    return it == gauges_.end() ? nullptr : &it->second;
  }
  [[nodiscard]] const Histogram* find_histogram(
      const std::string& component, const std::string& name) const {
    const auto it = histograms_.find(MetricKey{component, name});
    return it == histograms_.end() ? nullptr : &it->second;
  }

  // Convenience for assertions: 0 / 0.0 when absent.
  [[nodiscard]] std::uint64_t counter_value(const std::string& component,
                                            const std::string& name) const {
    const Counter* c = find_counter(component, name);
    return c == nullptr ? 0 : c->value();
  }
  [[nodiscard]] double gauge_value(const std::string& component,
                                   const std::string& name) const {
    const Gauge* g = find_gauge(component, name);
    return g == nullptr ? 0.0 : g->value();
  }

  // Deterministically ordered (by component, then name) — the export order.
  [[nodiscard]] const std::map<MetricKey, Counter>& counters() const {
    return counters_;
  }
  [[nodiscard]] const std::map<MetricKey, Gauge>& gauges() const {
    return gauges_;
  }
  [[nodiscard]] const std::map<MetricKey, Histogram>& histograms() const {
    return histograms_;
  }

  [[nodiscard]] std::size_t size() const {
    return counters_.size() + gauges_.size() + histograms_.size();
  }

  // Snapshot support (docs/SNAPSHOT.md). Histogram has no default
  // constructor (bounds are fixed at creation), so the histogram map is
  // rebuilt by emplacing empty-bounds shells and persisting into them —
  // the bounds themselves are part of the persisted payload.
  template <class Archive>
  void persist(Archive& ar) {
    ar.value(counters_);
    ar.value(gauges_);
    if constexpr (Archive::kIsSaver) {
      ar.value(histograms_.size());
      for (const auto& [key, histogram] : histograms_) {
        ar.value(key);
        ar.value(histogram);
      }
    } else {
      std::uint64_t n = 0;
      ar.value(n);
      histograms_.clear();
      for (std::uint64_t i = 0; i < n; ++i) {
        MetricKey key;
        ar.value(key);
        auto it =
            histograms_.emplace(std::move(key), Histogram{std::vector<double>{}})
                .first;
        ar.value(it->second);
      }
    }
  }

 private:
  std::map<MetricKey, Counter> counters_;
  std::map<MetricKey, Gauge> gauges_;
  std::map<MetricKey, Histogram> histograms_;
};

// RAII latency probe: observes clock() - start into a histogram on
// destruction. The clock is injected (simulated seconds in the station,
// wall seconds in a host profiler) so obs stays clock-agnostic.
class ScopedTimer {
 public:
  using Clock = double (*)(void*);

  ScopedTimer(Histogram& histogram, Clock clock, void* clock_ctx)
      : histogram_(histogram),
        clock_(clock),
        clock_ctx_(clock_ctx),
        start_(clock(clock_ctx)) {}

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  ~ScopedTimer() { histogram_.observe(clock_(clock_ctx_) - start_); }

 private:
  Histogram& histogram_;
  Clock clock_;
  void* clock_ctx_;
  double start_;
};

}  // namespace gw::obs
