// EventJournal: a bounded, typed record of the moments the paper's analysis
// hangs off — state transitions (Fig 5's step plot), sync clamps (§III),
// recovery triggers (§IV), NACK/retransmit rounds (§V), watchdog expiries
// and brown-out/restore edges (§VI).
//
// Metrics answer "how many / how much"; the journal answers "when, in what
// order". Records are typed (EventType + two numeric slots with per-type
// meaning, see the table in docs/OBSERVABILITY.md) rather than free text so
// exports are diffable and tests can assert on them without parsing log
// prose. A capacity cap keeps multi-year runs bounded: the journal drops the
// *oldest* records and counts the drops, mirroring how the real station's
// logfile was rotated rather than allowed to eat the CF card.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.h"

namespace gw::obs {

enum class EventType : int {
  kStateTransition = 0,  // a = previous state, b = new state
  kSyncClamp = 1,        // a = voltage-allowed state, b = clamped state
  kRecoveryResync = 2,   // a = 0 GPS / 1 NTP, b = attempts so far
  kRecoveryDeferred = 3, // a = attempts so far
  kWatchdogExpiry = 4,   // a = limit in seconds
  kRetransmitRound = 5,  // a = round number, b = readings still missing
  kSessionAborted = 6,   // a = readings on the individual-fetch list (§V)
  kBrownOut = 7,         // a = brown-out count
  kPowerRestored = 8,    // a = state of charge at restore
  kColdBoot = 9,         // a = cold-boot count
  kWindowExhausted = 10, // a = files left queued, b = bytes left queued
  kFaultTrip = 11,       // a = fault::FaultKind, b = window severity
  kDegradedEnter = 12,   // a = consecutive failed upload days, b = queued files
  kDegradedExit = 13,    // a = days spent degraded
  kSessionTimeout = 14,  // a = session elapsed seconds, b = cap seconds
  kGroupDiverged = 15,   // a = members in the sync group, b = distinct states
  kGroupConverged = 16,  // a = members in the sync group, b = agreed state
  kFutureReport = 17,    // a = seconds the report runs ahead, b = its state
  kIngestRejected = 18,  // a = queue kind (0 special/1 update/2 config),
                         // b = the per-station queue limit that was full
  kActivityDropped = 19, // a = requested activity-state index,
                         // b = the index the component stayed in (brown-out)
};

[[nodiscard]] const char* to_string(EventType type);

struct Event {
  std::int64_t time_ms = 0;  // SimTime::millis_since_epoch() of the edge
  EventType type = EventType::kStateTransition;
  std::string component;  // same naming domain as metrics ("watchdog", ...)
  double a = 0.0;         // per-type meaning, see EventType
  double b = 0.0;

  template <class Archive>
  void persist(Archive& ar) {
    ar.value(time_ms);
    ar.value(type);
    ar.value(component);
    ar.value(a);
    ar.value(b);
  }
};

class EventJournal {
 public:
  explicit EventJournal(std::size_t capacity = 65536)
      : capacity_(capacity) {}

  void record(std::int64_t time_ms, EventType type, std::string component,
              double a = 0.0, double b = 0.0) {
    events_.push_back(Event{time_ms, type, std::move(component), a, b});
    ++total_recorded_;
    if (events_.size() > capacity_) {
      events_.pop_front();
      ++dropped_;
    }
  }

  [[nodiscard]] const std::deque<Event>& events() const { return events_; }
  [[nodiscard]] std::size_t size() const { return events_.size(); }
  [[nodiscard]] bool empty() const { return events_.empty(); }
  [[nodiscard]] std::uint64_t total_recorded() const {
    return total_recorded_;
  }
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

  [[nodiscard]] std::size_t count(EventType type) const {
    std::size_t n = 0;
    for (const auto& event : events_) {
      if (event.type == type) ++n;
    }
    return n;
  }

  [[nodiscard]] std::vector<Event> of_type(EventType type) const {
    std::vector<Event> matching;
    for (const auto& event : events_) {
      if (event.type == type) matching.push_back(event);
    }
    return matching;
  }

  // capacity_ stays whatever this journal was constructed with: it is a
  // wiring decision, not world state.
  template <class Archive>
  void persist(Archive& ar) {
    ar.value(events_);
    ar.value(total_recorded_);
    ar.value(dropped_);
  }

 private:
  // gwlint: allow(persist-coverage): wiring decision, not world state —
  // restore targets a journal constructed with the same capacity
  std::size_t capacity_;
  std::deque<Event> events_;
  std::uint64_t total_recorded_ = 0;
  std::uint64_t dropped_ = 0;
};

// The wiring bundle subsystems accept: both pointers optional, null = the
// subsystem runs uninstrumented at zero cost. Passed by value (two
// pointers).
struct Hooks {
  MetricsRegistry* metrics = nullptr;
  EventJournal* journal = nullptr;
};

// --- merge-ordered emission (sharded worlds) ------------------------------
//
// A sharded fleet keeps one journal per station so recording stays
// race-free; exports need one global order. merge_journals() interleaves by
// (time, station, per-journal record index) — the same (time, station, seq)
// rule the sharded kernel applies to messages — so the merged sequence is
// independent of how stations were partitioned onto shards and of how many
// threads advanced them.

struct MergedEvent {
  std::string station;
  Event event;
};

[[nodiscard]] std::vector<MergedEvent> merge_journals(
    const std::vector<std::pair<std::string, const EventJournal*>>& journals);

}  // namespace gw::obs
