#include "obs/journal.h"

namespace gw::obs {

const char* to_string(EventType type) {
  switch (type) {
    case EventType::kStateTransition:
      return "state_transition";
    case EventType::kSyncClamp:
      return "sync_clamp";
    case EventType::kRecoveryResync:
      return "recovery_resync";
    case EventType::kRecoveryDeferred:
      return "recovery_deferred";
    case EventType::kWatchdogExpiry:
      return "watchdog_expiry";
    case EventType::kRetransmitRound:
      return "retransmit_round";
    case EventType::kSessionAborted:
      return "session_aborted";
    case EventType::kBrownOut:
      return "brown_out";
    case EventType::kPowerRestored:
      return "power_restored";
    case EventType::kColdBoot:
      return "cold_boot";
    case EventType::kWindowExhausted:
      return "window_exhausted";
    case EventType::kFaultTrip:
      return "fault_trip";
    case EventType::kDegradedEnter:
      return "degraded_enter";
    case EventType::kDegradedExit:
      return "degraded_exit";
    case EventType::kSessionTimeout:
      return "session_timeout";
    case EventType::kGroupDiverged:
      return "group_diverged";
    case EventType::kGroupConverged:
      return "group_converged";
  }
  return "unknown";
}

}  // namespace gw::obs
