#include "obs/journal.h"

#include <algorithm>
#include <tuple>

namespace gw::obs {

const char* to_string(EventType type) {
  switch (type) {
    case EventType::kStateTransition:
      return "state_transition";
    case EventType::kSyncClamp:
      return "sync_clamp";
    case EventType::kRecoveryResync:
      return "recovery_resync";
    case EventType::kRecoveryDeferred:
      return "recovery_deferred";
    case EventType::kWatchdogExpiry:
      return "watchdog_expiry";
    case EventType::kRetransmitRound:
      return "retransmit_round";
    case EventType::kSessionAborted:
      return "session_aborted";
    case EventType::kBrownOut:
      return "brown_out";
    case EventType::kPowerRestored:
      return "power_restored";
    case EventType::kColdBoot:
      return "cold_boot";
    case EventType::kWindowExhausted:
      return "window_exhausted";
    case EventType::kFaultTrip:
      return "fault_trip";
    case EventType::kDegradedEnter:
      return "degraded_enter";
    case EventType::kDegradedExit:
      return "degraded_exit";
    case EventType::kSessionTimeout:
      return "session_timeout";
    case EventType::kGroupDiverged:
      return "group_diverged";
    case EventType::kGroupConverged:
      return "group_converged";
    case EventType::kFutureReport:
      return "future_report";
    case EventType::kIngestRejected:
      return "ingest_rejected";
    case EventType::kActivityDropped:
      return "activity_dropped";
  }
  return "unknown";
}

std::vector<MergedEvent> merge_journals(
    const std::vector<std::pair<std::string, const EventJournal*>>&
        journals) {
  struct Keyed {
    std::size_t source;  // index into `journals`
    std::size_t index;   // record index within that journal
  };
  std::vector<Keyed> order;
  std::size_t total = 0;
  for (const auto& [station, journal] : journals) total += journal->size();
  order.reserve(total);
  for (std::size_t source = 0; source < journals.size(); ++source) {
    for (std::size_t index = 0; index < journals[source].second->size();
         ++index) {
      order.push_back(Keyed{source, index});
    }
  }
  const auto key = [&](const Keyed& k) {
    return std::tie(journals[k.source].second->events()[k.index].time_ms,
                    journals[k.source].first, k.index);
  };
  std::sort(order.begin(), order.end(),
            [&](const Keyed& a, const Keyed& b) { return key(a) < key(b); });
  std::vector<MergedEvent> merged;
  merged.reserve(order.size());
  for (const Keyed& k : order) {
    merged.push_back(MergedEvent{
        journals[k.source].first,
        journals[k.source].second->events()[k.index]});
  }
  return merged;
}

}  // namespace gw::obs
