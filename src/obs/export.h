// Machine-readable export of the observability state: the registry, the
// journal, and time series, rendered to JSON ("glacsweb.bench.v1", the
// schema docs/OBSERVABILITY.md documents field by field) and to CSV.
//
// The benches use BenchReport + write_bench_json() to drop a
// BENCH_<name>.json next to their stdout tables, which is what makes the
// perf trajectory diffable across PRs: same seed, same schema, same key
// order — any change in the numbers is a change in the system.
//
// Determinism contract: all maps are ordered, all doubles are printed with
// "%.10g", and nothing host-dependent (wall time, paths, locale) enters the
// rendered text. Two identically-seeded runs must byte-match.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "obs/journal.h"
#include "obs/metrics.h"

namespace gw::obs {

struct SeriesPoint {
  std::int64_t time_ms = 0;
  double value = 0.0;
};

// A named time series — the obs-level mirror of one sim::Trace series
// (sim/trace_export.h adapts; obs itself cannot see SimTime).
struct Series {
  std::string name;
  std::vector<SeriesPoint> points;
};

// One named slice of a report: a registry plus (optionally) its journal.
// Benches that observe several actors (base + reference station, or one rig
// per experiment) emit one section per actor.
struct ReportSection {
  std::string name;
  const MetricsRegistry* metrics = nullptr;  // required
  const EventJournal* journal = nullptr;     // optional
};

struct BenchReport {
  std::string bench;  // exported as BENCH_<bench>.json
  // Free-form provenance (seed, calendar window, knob settings). Ordered
  // at render time for determinism.
  std::vector<std::pair<std::string, std::string>> meta;
  std::vector<ReportSection> sections;
  std::vector<Series> series;
};

// --- JSON ----------------------------------------------------------------

[[nodiscard]] std::string to_json(const BenchReport& report);

// Renders a bare registry (no bench wrapper) — handy for tests and ad-hoc
// dumps.
[[nodiscard]] std::string registry_json(const MetricsRegistry& registry);

// Writes to_json(report) to `<directory>/BENCH_<bench>.json` and returns
// the path; empty string on I/O failure (benches warn but keep printing).
std::string write_bench_json(const BenchReport& report,
                             const std::string& directory = ".");

// --- CSV -----------------------------------------------------------------

// kind,component,name,value,count,sum,min,max — one row per metric;
// counters and gauges fill `value`, histograms fill the aggregate columns.
[[nodiscard]] std::string registry_csv(const MetricsRegistry& registry);

// series,time_ms,value — one row per point, series in given order.
[[nodiscard]] std::string series_csv(const std::vector<Series>& series);

// JSON string escaping, exposed for the doc examples and tests.
[[nodiscard]] std::string json_escape(const std::string& text);

}  // namespace gw::obs
