#include "obs/export.h"

#include <cstdio>
#include <fstream>

namespace gw::obs {
namespace {

// One formatting routine for every double in the export: shortest-ish,
// locale-independent, reproducible.
std::string fmt(double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.10g", value);
  return buffer;
}

std::string fmt(std::uint64_t value) { return std::to_string(value); }
std::string fmt(std::int64_t value) { return std::to_string(value); }

void append_counters(std::string& out, const MetricsRegistry& registry) {
  out += "\"counters\":[";
  bool first = true;
  for (const auto& [key, counter] : registry.counters()) {
    if (!first) out += ",";
    first = false;
    out += "{\"metric\":\"" + json_escape(key.full_name()) + "\",\"value\":" +
           fmt(counter.value()) + "}";
  }
  out += "]";
}

void append_gauges(std::string& out, const MetricsRegistry& registry) {
  out += "\"gauges\":[";
  bool first = true;
  for (const auto& [key, gauge] : registry.gauges()) {
    if (!first) out += ",";
    first = false;
    out += "{\"metric\":\"" + json_escape(key.full_name()) + "\",\"value\":" +
           fmt(gauge.value()) + "}";
  }
  out += "]";
}

void append_histograms(std::string& out, const MetricsRegistry& registry) {
  out += "\"histograms\":[";
  bool first = true;
  for (const auto& [key, histogram] : registry.histograms()) {
    if (!first) out += ",";
    first = false;
    out += "{\"metric\":\"" + json_escape(key.full_name()) + "\"";
    out += ",\"count\":" + fmt(histogram.count());
    out += ",\"sum\":" + fmt(histogram.sum());
    out += ",\"min\":" + fmt(histogram.min());
    out += ",\"max\":" + fmt(histogram.max());
    out += ",\"buckets\":[";
    const auto& bounds = histogram.upper_bounds();
    const auto& counts = histogram.counts();
    for (std::size_t i = 0; i < counts.size(); ++i) {
      if (i > 0) out += ",";
      // The final bucket is the overflow: le is the JSON string "inf".
      out += "{\"le\":";
      out += i < bounds.size() ? fmt(bounds[i]) : std::string("\"inf\"");
      out += ",\"count\":" + fmt(counts[i]) + "}";
    }
    out += "]}";
  }
  out += "]";
}

void append_journal(std::string& out, const EventJournal& journal) {
  out += "\"events\":{\"total\":" + fmt(journal.total_recorded());
  out += ",\"dropped\":" + fmt(journal.dropped());
  out += ",\"records\":[";
  bool first = true;
  for (const auto& event : journal.events()) {
    if (!first) out += ",";
    first = false;
    out += "{\"t_ms\":" + fmt(event.time_ms);
    out += ",\"type\":\"" + std::string(to_string(event.type)) + "\"";
    out += ",\"component\":\"" + json_escape(event.component) + "\"";
    out += ",\"a\":" + fmt(event.a);
    out += ",\"b\":" + fmt(event.b) + "}";
  }
  out += "]}";
}

void append_registry_body(std::string& out, const MetricsRegistry& registry) {
  append_counters(out, registry);
  out += ",";
  append_gauges(out, registry);
  out += ",";
  append_histograms(out, registry);
}

}  // namespace

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string registry_json(const MetricsRegistry& registry) {
  std::string out = "{";
  append_registry_body(out, registry);
  out += "}";
  return out;
}

std::string to_json(const BenchReport& report) {
  std::string out = "{\"schema\":\"glacsweb.bench.v1\"";
  out += ",\"bench\":\"" + json_escape(report.bench) + "\"";

  // meta: insertion order is the bench author's narrative order; keep it.
  out += ",\"meta\":{";
  bool first = true;
  for (const auto& [key, value] : report.meta) {
    if (!first) out += ",";
    first = false;
    out += "\"" + json_escape(key) + "\":\"" + json_escape(value) + "\"";
  }
  out += "}";

  out += ",\"sections\":[";
  first = true;
  for (const auto& section : report.sections) {
    if (!first) out += ",";
    first = false;
    out += "{\"name\":\"" + json_escape(section.name) + "\",";
    if (section.metrics != nullptr) {
      append_registry_body(out, *section.metrics);
    } else {
      static const MetricsRegistry kEmpty;
      append_registry_body(out, kEmpty);
    }
    if (section.journal != nullptr) {
      out += ",";
      append_journal(out, *section.journal);
    }
    out += "}";
  }
  out += "]";

  out += ",\"series\":[";
  first = true;
  for (const auto& series : report.series) {
    if (!first) out += ",";
    first = false;
    out += "{\"name\":\"" + json_escape(series.name) + "\",\"points\":[";
    bool first_point = true;
    for (const auto& point : series.points) {
      if (!first_point) out += ",";
      first_point = false;
      out += "[" + fmt(point.time_ms) + "," + fmt(point.value) + "]";
    }
    out += "]}";
  }
  out += "]}";
  return out;
}

std::string write_bench_json(const BenchReport& report,
                             const std::string& directory) {
  const std::string path = directory + "/BENCH_" + report.bench + ".json";
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file) return "";
  const std::string body = to_json(report);
  file.write(body.data(), std::streamsize(body.size()));
  file.put('\n');
  return file.good() ? path : "";
}

std::string registry_csv(const MetricsRegistry& registry) {
  std::string out = "kind,component,name,value,count,sum,min,max\n";
  for (const auto& [key, counter] : registry.counters()) {
    out += "counter," + key.component + "," + key.name + "," +
           fmt(counter.value()) + ",,,,\n";
  }
  for (const auto& [key, gauge] : registry.gauges()) {
    out += "gauge," + key.component + "," + key.name + "," +
           fmt(gauge.value()) + ",,,,\n";
  }
  for (const auto& [key, histogram] : registry.histograms()) {
    out += "histogram," + key.component + "," + key.name + ",," +
           fmt(histogram.count()) + "," + fmt(histogram.sum()) + "," +
           fmt(histogram.min()) + "," + fmt(histogram.max()) + "\n";
  }
  return out;
}

std::string series_csv(const std::vector<Series>& series) {
  std::string out = "series,time_ms,value\n";
  for (const auto& s : series) {
    for (const auto& point : s.points) {
      out += s.name + "," + fmt(point.time_ms) + "," + fmt(point.value) +
             "\n";
    }
  }
  return out;
}

}  // namespace gw::obs
