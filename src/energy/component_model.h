// Activity-state component energy model (docs/ENERGY.md).
//
// A ComponentModel is a small state machine over named activity states
// ("off", "boot", "run@400MHz", "registering", ...). State 0 is always the
// quiescent/off state and draws nothing. Each state carries a nominal draw
// and an optional temperature coefficient; the effective draw at air
// temperature T is draw * (1 + coeff * (T - 25C)), computed so that a zero
// coefficient returns the nominal draw bitwise-exactly.
//
// Energy is accounted in integer microjoules. Every tick the owning
// PowerSystem charges each component one quantum per constant-activity
// span; the same quantum is added to a battery-side delivered meter, so
// the per-component, per-state ledgers sum *exactly* to the battery-side
// total — integer addition is associative, so the invariant holds across
// brown-outs, snapshot round-trips, and any regrouping of the sum.
//
// Besides the base activity (set_activity), a component may carry a timed
// *plan*: a contiguous run of (state, end-time) segments anchored at the
// moment the plan was laid down. Plans let synchronous device code (e.g. a
// GPRS transfer that computes its whole session up front) attribute the
// elapsed interval to registering/tx spans without changing when any
// simulation event fires. Once every segment has expired the component
// falls back to its base activity; set_activity clears any plan.
#pragma once

#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "sim/time.h"
#include "snapshot/error.h"
#include "util/units.h"

namespace gw::energy {

using MicroJoules = std::int64_t;

// One quantum: the microjoules drawn at `watts` over `seconds`, rounded to
// the nearest integer. All ledgers and meters accumulate these quanta.
[[nodiscard]] inline MicroJoules quantum(util::Watts watts, double seconds) {
  return std::llround(watts.value() * seconds * 1e6);
}

struct ActivityState {
  std::string name;
  util::Watts draw{0.0};
  // Fractional draw change per degree Celsius away from the 25 C
  // reference (0 = temperature-independent).
  double temp_coeff = 0.0;
};

struct ComponentSpec {
  std::string name;
  // states[0] must be the off/quiescent state (zero draw).
  std::vector<ActivityState> states;
};

// Convenience spec for a plain switched load: off + one powered state.
[[nodiscard]] inline ComponentSpec switched_load(std::string name,
                                                util::Watts draw) {
  ComponentSpec spec;
  spec.name = std::move(name);
  spec.states.push_back({"off", util::Watts{0.0}, 0.0});
  spec.states.push_back({"on", draw, 0.0});
  return spec;
}

class ComponentModel {
 public:
  explicit ComponentModel(ComponentSpec spec) : spec_(std::move(spec)) {
    energy_uj_.assign(spec_.states.size(), 0);
    active_ms_.assign(spec_.states.size(), 0);
  }

  [[nodiscard]] const std::string& name() const { return spec_.name; }
  [[nodiscard]] std::size_t state_count() const { return spec_.states.size(); }
  [[nodiscard]] const ActivityState& state(std::size_t index) const {
    return spec_.states.at(index);
  }
  [[nodiscard]] std::size_t activity() const { return activity_; }

  [[nodiscard]] std::size_t index_of(const std::string& state_name) const {
    for (std::size_t i = 0; i < spec_.states.size(); ++i) {
      if (spec_.states[i].name == state_name) return i;
    }
    throw std::out_of_range("unknown activity state: " + spec_.name + "." +
                            state_name);
  }

  // Base-activity transition; discards any timed plan.
  void set_activity(std::size_t index) {
    activity_ = checked(index);
    plan_.clear();
  }

  // Lays down a contiguous timed overlay starting at `now`: each entry is
  // (state, dwell). Attribution-only — the base activity is untouched and
  // becomes current again once the last segment expires.
  void set_plan(sim::SimTime now,
                const std::vector<std::pair<std::size_t, sim::Duration>>&
                    segments) {
    plan_.clear();
    plan_anchor_ = now;
    sim::SimTime end = now;
    for (const auto& [state, dwell] : segments) {
      if (dwell.millis() <= 0) continue;
      end = end + dwell;
      plan_.push_back({checked(state), end});
    }
  }

  [[nodiscard]] bool has_plan() const { return !plan_.empty(); }

  // The state governing instant `t`: the plan segment covering t if one
  // exists (segments are half-open [begin, end)), else the base activity.
  [[nodiscard]] std::size_t active_at(sim::SimTime t) const {
    if (plan_.empty() || t < plan_anchor_) return activity_;
    for (const auto& segment : plan_) {
      if (t < segment.end) return segment.state;
    }
    return activity_;
  }

  // Effective draw of `index` at air temperature `temp`. The coeff == 0
  // branch returns the nominal draw without touching it, so the default
  // (temperature-independent) components behave bitwise like fixed loads.
  [[nodiscard]] util::Watts draw_at(std::size_t index,
                                    util::Celsius temp) const {
    const ActivityState& s = spec_.states.at(index);
    if (s.temp_coeff == 0.0) return s.draw;
    const double factor = 1.0 + s.temp_coeff * (temp.value() - 25.0);
    return util::Watts{s.draw.value() * (factor > 0.0 ? factor : 0.0)};
  }

  // Walks [from, to) and calls emit(state, begin, end) once per
  // constant-activity span, honouring the plan overlay. Spans are
  // half-open and cover the interval exactly (no gaps, no overlap).
  template <class Fn>
  void attribute(sim::SimTime from, sim::SimTime to, Fn&& emit) const {
    sim::SimTime cursor = from;
    sim::SimTime segment_begin = plan_anchor_;
    for (const auto& segment : plan_) {
      if (cursor >= to) break;
      if (cursor < segment_begin) {
        const sim::SimTime gap_end = segment_begin < to ? segment_begin : to;
        if (gap_end > cursor) emit(activity_, cursor, gap_end);
        cursor = gap_end;
      }
      const sim::SimTime span_end = segment.end < to ? segment.end : to;
      if (span_end > cursor) {
        emit(segment.state, cursor, span_end);
        cursor = span_end;
      }
      segment_begin = segment.end;
    }
    if (cursor < to) emit(activity_, cursor, to);
  }

  // Drops plan segments that ended at or before `now`.
  void prune_plan(sim::SimTime now) {
    std::size_t drop = 0;
    while (drop < plan_.size() && plan_[drop].end <= now) {
      plan_anchor_ = plan_[drop].end;
      ++drop;
    }
    if (drop > 0) plan_.erase(plan_.begin(), plan_.begin() + drop);
  }

  // Ledger write: one quantum of energy plus active time for `index`.
  void charge(std::size_t index, MicroJoules uj, std::int64_t active_ms) {
    energy_uj_.at(index) += uj;
    active_ms_.at(index) += active_ms;
  }

  // Mutates the nominal draw of `index` (set_load_power compatibility).
  void set_state_draw(std::size_t index, util::Watts draw) {
    spec_.states.at(index).draw = draw;
  }

  [[nodiscard]] MicroJoules energy_uj(std::size_t index) const {
    return energy_uj_.at(index);
  }
  [[nodiscard]] MicroJoules total_uj() const {
    MicroJoules total = 0;
    for (const MicroJoules uj : energy_uj_) total += uj;
    return total;
  }
  [[nodiscard]] std::int64_t active_ms(std::size_t index) const {
    return active_ms_.at(index);
  }
  [[nodiscard]] double active_seconds(std::size_t index) const {
    return double(active_ms_.at(index)) / 1e3;
  }

  template <class Archive>
  void persist(Archive& ar) {
    std::string name = spec_.name;
    ar.value(name);
    if (name != spec_.name) {
      throw snapshot::SnapshotError(
          snapshot::SnapshotErrc::kStateMismatch,
          "component name mismatch: wired " + spec_.name + ", snapshot " +
              name);
    }
    std::uint64_t states = spec_.states.size();
    ar.value(states);
    if (states != spec_.states.size()) {
      throw snapshot::SnapshotError(
          snapshot::SnapshotErrc::kStateMismatch,
          "component " + spec_.name + " activity-state count mismatch");
    }
    std::uint64_t activity = activity_;
    ar.value(activity);
    activity_ = std::size_t(activity);
    // Draws are persisted (not just wiring): set_load_power may have
    // mutated them since construction.
    for (auto& s : spec_.states) ar.value(s.draw);
    ar.value(energy_uj_);
    ar.value(active_ms_);
    ar.value(plan_anchor_);
    std::vector<std::pair<std::uint64_t, sim::SimTime>> plan;
    if constexpr (Archive::kIsSaver) {
      for (const auto& segment : plan_) plan.push_back({segment.state, segment.end});
    }
    ar.value(plan);
    if constexpr (!Archive::kIsSaver) {
      plan_.clear();
      for (const auto& [state, end] : plan) plan_.push_back({checked(std::size_t(state)), end});
    }
  }

 private:
  struct PlanSegment {
    std::size_t state = 0;
    sim::SimTime end;
  };

  [[nodiscard]] std::size_t checked(std::size_t index) const {
    if (index >= spec_.states.size()) {
      throw std::out_of_range("activity index out of range for " + spec_.name);
    }
    return index;
  }

  ComponentSpec spec_;
  std::size_t activity_ = 0;
  std::vector<PlanSegment> plan_;
  sim::SimTime plan_anchor_;
  std::vector<MicroJoules> energy_uj_;
  std::vector<std::int64_t> active_ms_;
};

}  // namespace gw::energy
