// Deterministic, schedule-driven fault injection.
//
// The paper's central claim is that the daily-retry design absorbs everyday
// failures — GPRS sessions dropping "frequently, especially in the wetter
// summer" (§I), SCP hangs ended only by the 2-hour watchdog (§VI), total
// battery exhaustion recovered by the RTC sanity check (§IV). Before this
// layer existed those failures could only be provoked through per-device
// Bernoulli knobs, so no test could script a *specific* adversarial season.
//
// A FaultPlan is a list of typed windows (kind, start offset, duration,
// severity) parsed from a small text spec; a FaultOracle anchors the plan at
// a season origin and answers point queries. Devices keep their base
// stochastic hazards and compose them with the oracle — "base hazard ∘
// active fault windows" — through hazard() (probability union, for failure
// draws) or success() (severity-scaled, for success draws). A null oracle
// pointer means no injection: the device behaves exactly as before.
//
// The oracle never draws randomness itself; devices draw from their own
// forked streams, so attaching a plan perturbs nothing outside the windows
// and two same-seed runs under the same plan are byte-reproducible.
#pragma once

#include <array>
#include <string>
#include <string_view>
#include <vector>

#include "obs/journal.h"
#include "sim/time.h"
#include "util/result.h"

namespace gw::fault {

// The failure modes a plan can script, one per §I–§VII mechanism the repo
// models. Values are stable: journal records carry them as payload slot a.
enum class FaultKind : int {
  kGprsOutage = 0,       // GPRS registration/session failures (§I wet summer)
  kServerDown = 1,       // Southampton unreachable (§III single rendezvous)
  kRtcDrift = 2,         // degraded clock discipline on resync (§IV)
  kCfWriteFail = 3,      // CF card write faults (§VII corruption)
  kDgpsNoFix = 4,        // receiver cannot acquire a time fix (§IV)
  kHarvestBlackout = 5,  // chargers deliver nothing (buried panel, dead wind)
};

inline constexpr int kFaultKindCount = 6;

[[nodiscard]] const char* to_string(FaultKind kind);
[[nodiscard]] util::Result<FaultKind> parse_fault_kind(std::string_view name);

// One scripted window. `start` is an offset from the plan origin (the season
// start the oracle is anchored at), so the same plan text replays against
// any deployment calendar.
struct FaultWindow {
  FaultKind kind = FaultKind::kGprsOutage;
  sim::Duration start{};
  sim::Duration duration{};
  double severity = 1.0;  // [0, 1]; 1.0 = hard outage for the whole window
};

// A season's worth of scripted windows, in spec order. Parsed from a small
// line-based text format (see docs/FAULTS.md):
//
//   # wet-summer season
//   gprs_outage  start=10d  duration=7d   severity=1.0
//   server_down  start=40d  duration=36h
//   dgps_no_fix  start=60d  duration=12h  severity=0.5
//
// Durations take a number plus one unit suffix (d, h, m, s). severity
// defaults to 1.0. '#' starts a comment; blank lines are skipped. Parse
// errors carry the offending line number.
class FaultPlan {
 public:
  [[nodiscard]] static util::Result<FaultPlan> parse(std::string_view spec);

  void add(FaultWindow window) { windows_.push_back(window); }

  [[nodiscard]] const std::vector<FaultWindow>& windows() const {
    return windows_;
  }
  [[nodiscard]] bool empty() const { return windows_.empty(); }

 private:
  std::vector<FaultWindow> windows_;
};

// The injectable query point. Devices hold a FaultOracle* (null = run
// clean) and ask for the active severity of the kinds they model, then
// compose it with their own base hazard and draw from their own Rng.
class FaultOracle {
 public:
  FaultOracle() = default;
  FaultOracle(FaultPlan plan, sim::SimTime origin)
      : plan_(std::move(plan)), origin_(origin) {}

  // Optional instrumentation under "fault": trip counters per kind, plus a
  // journal record for every fault a device actually fired.
  void set_hooks(obs::Hooks hooks) { hooks_ = hooks; }

  // Highest severity over the windows of `kind` covering `now`; 0 outside
  // every window. Windows are closed-open: [start, start + duration).
  [[nodiscard]] double severity(FaultKind kind, sim::SimTime now) const {
    double highest = 0.0;
    for (const auto& window : plan_.windows()) {
      if (window.kind != kind) continue;
      const sim::SimTime open = origin_ + window.start;
      if (now >= open && now < open + window.duration) {
        highest = window.severity > highest ? window.severity : highest;
      }
    }
    return highest;
  }

  [[nodiscard]] bool active(FaultKind kind, sim::SimTime now) const {
    return severity(kind, now) > 0.0;
  }

  // base hazard ∘ active windows, failure-probability form: the union
  // 1 - (1-base)(1-severity). severity 1 forces the failure; severity 0
  // leaves the base hazard untouched.
  [[nodiscard]] double hazard(FaultKind kind, sim::SimTime now,
                              double base) const {
    const double s = severity(kind, now);
    return 1.0 - (1.0 - base) * (1.0 - s);
  }

  // base hazard ∘ active windows, success-probability form: the base
  // success chance scaled down by the active severity.
  [[nodiscard]] double success(FaultKind kind, sim::SimTime now,
                               double base) const {
    return base * (1.0 - severity(kind, now));
  }

  // Called by a device when a failure actually fired while a window of
  // `kind` was active — the observable that ties an injected season to its
  // effects.
  void record_trip(FaultKind kind, sim::SimTime now) {
    ++trips_[std::size_t(kind)];
    if (hooks_.metrics != nullptr) {
      hooks_.metrics
          ->counter("fault", std::string("trips.") + to_string(kind))
          .increment();
    }
    if (hooks_.journal != nullptr) {
      hooks_.journal->record(now.millis_since_epoch(),
                             obs::EventType::kFaultTrip, "fault",
                             double(int(kind)), severity(kind, now));
    }
  }

  [[nodiscard]] int trips(FaultKind kind) const {
    return trips_[std::size_t(kind)];
  }

  [[nodiscard]] const FaultPlan& plan() const { return plan_; }
  [[nodiscard]] sim::SimTime origin() const { return origin_; }

  // Appends one window to the anchored plan. The Monte Carlo fork path uses
  // this to give each branched trial its own extra adversity on top of the
  // shared scripted season (docs/SNAPSHOT.md).
  void add_window(FaultWindow window) { plan_.add(window); }

  // Snapshot support: only the trip counters are dynamics — the plan and
  // origin are configuration the restored world is rebuilt with.
  template <class Archive>
  void persist(Archive& ar) {
    ar.value(trips_);
  }

 private:
  // The scripted season and its anchor are configuration the restored
  // world is rebuilt with (see the persist() comment above).
  FaultPlan plan_;  // gwlint: allow(persist-coverage): rebuilt configuration
  // gwlint: allow(persist-coverage): rebuilt configuration
  sim::SimTime origin_{};
  obs::Hooks hooks_;
  std::array<int, kFaultKindCount> trips_{};
};

}  // namespace gw::fault
