#include "fault/fault.h"

#include <cctype>
#include <cstdlib>

namespace gw::fault {
namespace {

// Splits `text` on unquoted whitespace; the spec has no quoting.
std::vector<std::string_view> split_tokens(std::string_view text) {
  std::vector<std::string_view> tokens;
  std::size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i]))) {
      ++i;
    }
    std::size_t start = i;
    while (i < text.size() &&
           !std::isspace(static_cast<unsigned char>(text[i]))) {
      ++i;
    }
    if (i > start) tokens.push_back(text.substr(start, i - start));
  }
  return tokens;
}

util::Result<double> parse_number(std::string_view text) {
  const std::string copy{text};
  char* end = nullptr;
  const double value = std::strtod(copy.c_str(), &end);
  if (end == copy.c_str() || *end != '\0') {
    return util::make_error("not a number: '" + copy + "'");
  }
  return value;
}

// "7d" / "36h" / "90m" / "30s" / "0.5d" -> Duration.
util::Result<sim::Duration> parse_duration(std::string_view text) {
  if (text.empty()) return util::make_error("empty duration");
  const char unit = text.back();
  const auto number = parse_number(text.substr(0, text.size() - 1));
  if (!number.ok()) {
    return util::make_error("bad duration '" + std::string(text) +
                            "' (want <number><d|h|m|s>)");
  }
  switch (unit) {
    case 'd':
      return sim::days(number.value());
    case 'h':
      return sim::hours(number.value());
    case 'm':
      return sim::minutes(number.value());
    case 's':
      return sim::seconds(number.value());
    default:
      return util::make_error("bad duration unit in '" + std::string(text) +
                              "' (want d, h, m or s)");
  }
}

}  // namespace

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kGprsOutage:
      return "gprs_outage";
    case FaultKind::kServerDown:
      return "server_down";
    case FaultKind::kRtcDrift:
      return "rtc_drift";
    case FaultKind::kCfWriteFail:
      return "cf_write_fail";
    case FaultKind::kDgpsNoFix:
      return "dgps_no_fix";
    case FaultKind::kHarvestBlackout:
      return "harvest_blackout";
  }
  return "unknown";
}

util::Result<FaultKind> parse_fault_kind(std::string_view name) {
  for (int i = 0; i < kFaultKindCount; ++i) {
    const auto kind = FaultKind(i);
    if (name == to_string(kind)) return kind;
  }
  return util::make_error("unknown fault kind '" + std::string(name) + "'");
}

util::Result<FaultPlan> FaultPlan::parse(std::string_view spec) {
  FaultPlan plan;
  int line_number = 0;
  std::size_t position = 0;
  while (position <= spec.size()) {
    const std::size_t newline = spec.find('\n', position);
    std::string_view line =
        spec.substr(position, newline == std::string_view::npos
                                  ? std::string_view::npos
                                  : newline - position);
    position = newline == std::string_view::npos ? spec.size() + 1
                                                 : newline + 1;
    ++line_number;
    if (const auto hash = line.find('#'); hash != std::string_view::npos) {
      line = line.substr(0, hash);
    }
    const auto tokens = split_tokens(line);
    if (tokens.empty()) continue;

    const std::string where = "fault plan line " + std::to_string(line_number);
    const auto kind = parse_fault_kind(tokens[0]);
    if (!kind.ok()) {
      return util::make_error(where + ": " + kind.error().message);
    }
    FaultWindow window;
    window.kind = kind.value();
    bool have_start = false;
    bool have_duration = false;
    for (std::size_t i = 1; i < tokens.size(); ++i) {
      const std::string_view token = tokens[i];
      const std::size_t eq = token.find('=');
      if (eq == std::string_view::npos) {
        return util::make_error(where + ": expected key=value, got '" +
                                std::string(token) + "'");
      }
      const std::string_view key = token.substr(0, eq);
      const std::string_view value = token.substr(eq + 1);
      if (key == "start" || key == "duration") {
        const auto duration = parse_duration(value);
        if (!duration.ok()) {
          return util::make_error(where + ": " + duration.error().message);
        }
        if (duration.value() < sim::Duration{0}) {
          return util::make_error(where + ": " + std::string(key) +
                                  " must be non-negative");
        }
        (key == "start" ? window.start : window.duration) = duration.value();
        (key == "start" ? have_start : have_duration) = true;
      } else if (key == "severity") {
        const auto severity = parse_number(value);
        if (!severity.ok()) {
          return util::make_error(where + ": " + severity.error().message);
        }
        if (severity.value() < 0.0 || severity.value() > 1.0) {
          return util::make_error(where + ": severity must be in [0, 1]");
        }
        window.severity = severity.value();
      } else {
        return util::make_error(where + ": unknown key '" + std::string(key) +
                                "'");
      }
    }
    if (!have_start || !have_duration) {
      return util::make_error(where + ": start= and duration= are required");
    }
    plan.add(window);
  }
  return plan;
}

}  // namespace gw::fault
