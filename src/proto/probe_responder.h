// Probe-side radio firmware: the state machine that answers the base
// station's frames.
//
// This is the half of the §V dialogue that runs 70 m under the ice. It is
// deliberately tiny and stateless between frames (MSP430-class firmware):
//   kQueryPending  -> stream every pending reading, one frame each;
//   kResendRequest -> retransmit exactly that sequence, if still held;
//   kConfirm       -> release the named readings (task-completion
//                     semantics: nothing leaves until confirmed) and ack;
//   kAck           -> silence (only stop-and-wait bases send these).
// Frames for a different probe id are ignored — all probes share the ice
// as a broadcast medium.
#pragma once

#include <vector>

#include "proto/probe_frames.h"
#include "proto/probe_store.h"

namespace gw::proto {

class ProbeResponder {
 public:
  ProbeResponder(ProbeStore& store, std::uint16_t probe_id)
      : store_(store), probe_id_(probe_id) {}

  // Handles one decoded frame; returns the wire frames to transmit back.
  [[nodiscard]] std::vector<std::vector<std::uint8_t>> handle(
      const Frame& frame) {
    if (frame.probe_id != probe_id_) return {};  // not addressed to us
    switch (frame.type) {
      case FrameType::kQueryPending:
        return stream_pending();
      case FrameType::kResendRequest:
        return resend(frame.seq);
      case FrameType::kConfirm:
        return confirm(frame);
      case FrameType::kAck:
      case FrameType::kReadingData:
        return {};  // nothing a probe needs to do
    }
    return {};
  }

  [[nodiscard]] std::size_t confirms_processed() const {
    return confirms_processed_;
  }

 private:
  [[nodiscard]] std::vector<std::vector<std::uint8_t>> stream_pending() {
    std::vector<std::vector<std::uint8_t>> out;
    out.reserve(store_.pending_count());
    for (const auto& reading : store_.pending()) {
      out.push_back(encode_reading_frame(reading));
    }
    return out;
  }

  [[nodiscard]] std::vector<std::vector<std::uint8_t>> resend(
      std::uint32_t seq) {
    const ProbeReading* reading = store_.find(seq);
    if (reading == nullptr) return {};  // already released or never existed
    return {encode_reading_frame(*reading)};
  }

  [[nodiscard]] std::vector<std::vector<std::uint8_t>> confirm(
      const Frame& frame) {
    const auto seqs = parse_confirm(frame);
    if (!seqs.ok()) return {};  // malformed: base will retry
    std::set<std::uint32_t> set(seqs.value().begin(), seqs.value().end());
    (void)store_.confirm_delivered(set);
    ++confirms_processed_;
    return {encode_ack(probe_id_, frame.seq)};
  }

  ProbeStore& store_;
  std::uint16_t probe_id_;
  std::size_t confirms_processed_ = 0;
};

}  // namespace gw::proto
