#include "proto/frame_session.h"

#include <vector>

namespace gw::proto {
namespace {

// The physical trip for one encoded frame: airtime, loss draw, optional
// bit damage. Returns the frame the receiver decodes, or nullopt for a
// loss / CRC rejection (indistinguishable to the §V algorithm).
class Radio {
 public:
  Radio(ProbeLink& link, util::Rng& rng, double corruption,
        sim::SimTime start, sim::Duration budget)
      : link_(link),
        rng_(rng),
        corruption_(corruption),
        now_(start),
        deadline_(start + budget) {}

  [[nodiscard]] bool out_of_budget() const { return now_ >= deadline_; }
  [[nodiscard]] sim::SimTime now() const { return now_; }
  [[nodiscard]] sim::Duration elapsed(sim::SimTime start) const {
    return now_ - start;
  }
  void wait(sim::Duration d) { now_ += d; }

  std::optional<Frame> send(std::vector<std::uint8_t> wire) {
    now_ += link_.airtime(util::Bytes{std::int64_t(wire.size())});
    if (!link_.packet_survives(now_)) return std::nullopt;
    if (rng_.bernoulli(corruption_)) {
      const auto byte = rng_.uniform_index(wire.size());
      wire[byte] = std::uint8_t(wire[byte] ^ 0x08);
    }
    auto decoded = decode_frame(wire);
    if (!decoded.ok()) return std::nullopt;  // broken: CRC caught it
    return decoded.value();
  }

 private:
  ProbeLink& link_;
  util::Rng& rng_;
  double corruption_;
  sim::SimTime now_;
  sim::SimTime deadline_;
};

}  // namespace

TransferStats FrameLevelTransfer::run(ProbeResponder& responder,
                                      ProbeStore& store,
                                      std::uint16_t probe_id,
                                      sim::SimTime start,
                                      sim::Duration budget) {
  TransferStats stats;
  Radio radio{link_, rng_, config_.corruption_probability, start, budget};

  // The daily query opens the session. Model it as reliable (it is retried
  // by the command layer until the probe answers or the day is abandoned).
  std::vector<std::uint32_t> wanted;
  for (const auto& reading : store.pending()) wanted.push_back(reading.seq);
  stats.offered = wanted.size();
  ++stats.control_packets;
  const auto query = decode_frame(encode_query_pending(probe_id));
  const auto stream = responder.handle(query.value());

  std::set<std::uint32_t> received;
  auto receive_reading = [&](std::optional<Frame> frame) {
    if (!frame.has_value()) return;
    const auto parsed = parse_reading(frame->payload);
    if (parsed.ok()) received.insert(parsed.value().seq);
  };

  // Round 0: the probe streams everything pending.
  for (const auto& wire : stream) {
    if (radio.out_of_budget()) {
      stats.budget_exhausted = true;
      break;
    }
    ++stats.data_packets;
    receive_reading(radio.send(wire));
  }

  auto missing_list = [&] {
    std::vector<std::uint32_t> missing;
    for (const auto seq : wanted) {
      if (!received.contains(seq)) missing.push_back(seq);
    }
    return missing;
  };
  stats.missing_after_stream = missing_list().size();

  for (int round = 1; round < config_.max_rounds; ++round) {
    if (stats.budget_exhausted) break;
    const auto missing = missing_list();
    if (missing.empty()) break;

    if (double(missing.size()) >=
        config_.rerequest_all_ratio * double(stats.offered)) {
      // Replay the whole dump (§V: "request them all again").
      ++stats.rerequest_all_rounds;
      ++stats.control_packets;
      const auto replay = responder.handle(query.value());
      for (const auto& wire : replay) {
        if (radio.out_of_budget()) {
          stats.budget_exhausted = true;
          break;
        }
        ++stats.data_packets;
        receive_reading(radio.send(wire));
      }
      continue;
    }

    for (const auto seq : missing) {
      if (radio.out_of_budget()) {
        stats.budget_exhausted = true;
        break;
      }
      ++stats.control_packets;
      const auto request = radio.send(encode_resend_request(probe_id, seq));
      if (!request.has_value()) {
        radio.wait(config_.response_timeout);  // probe never heard us
        continue;
      }
      const auto responses = responder.handle(*request);
      if (responses.empty()) continue;  // already released / unknown
      ++stats.data_packets;
      receive_reading(radio.send(responses.front()));
    }
  }

  // Capture the payloads before confirmation releases them.
  for (const auto& reading : store.pending()) {
    if (received.contains(reading.seq)) {
      stats.delivered_readings.push_back(reading);
    }
  }

  // Confirmation dialogue: chunked confirm frames, command-layer reliable.
  if (!received.empty()) {
    std::vector<std::uint32_t> confirmed(received.begin(), received.end());
    for (const auto& wire : encode_confirm(probe_id, confirmed)) {
      ++stats.control_packets;
      const auto frame = decode_frame(wire);
      (void)responder.handle(frame.value());
    }
  }

  stats.delivered = stats.offered - store.pending_count();
  stats.still_missing = store.pending_count();
  stats.airtime = radio.elapsed(start);
  return stats;
}

}  // namespace gw::proto
