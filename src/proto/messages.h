// Control-plane message codec for station <-> Southampton exchanges.
//
// The deployed stations spoke to the server over plain HTTP GETs and small
// uploads (§VI: even the MD5 beacon was a GET because the onboard wget
// lacked POST). This codec renders each control message as a compact
// "key=value&key=value" form with a trailing CRC-32, so the simulation's
// transfer sizes come from real encodings and corrupted messages are
// detected rather than trusted — field lesson §VI applied to the control
// plane.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "power/power_state.h"
#include "util/result.h"
#include "util/units.h"

namespace gw::proto {

// A flat, ordered key=value form. Keys and values must not contain '=', '&'
// or '#' (the CRC separator); the station-side code only ever uses
// identifiers and numbers.
class Form {
 public:
  void set(const std::string& key, const std::string& value) {
    fields_[key] = value;
  }
  void set_int(const std::string& key, std::int64_t value) {
    fields_[key] = std::to_string(value);
  }

  [[nodiscard]] std::optional<std::string> get(const std::string& key) const {
    const auto it = fields_.find(key);
    if (it == fields_.end()) return std::nullopt;
    return it->second;
  }

  [[nodiscard]] std::optional<std::int64_t> get_int(
      const std::string& key) const {
    const auto text = get(key);
    if (!text.has_value()) return std::nullopt;
    try {
      return std::stoll(*text);
    } catch (...) {
      return std::nullopt;
    }
  }

  [[nodiscard]] std::size_t size() const { return fields_.size(); }

  // Renders "k1=v1&k2=v2#crc32hex".
  [[nodiscard]] std::string encode() const;

  // Parses and verifies the CRC.
  [[nodiscard]] static util::Result<Form> decode(const std::string& wire);

 private:
  std::map<std::string, std::string> fields_;
};

// --- typed messages -------------------------------------------------------

struct StateReport {
  std::string station;
  power::PowerState state = power::PowerState::kState0;
  std::int64_t day_ms = 0;  // station RTC at report time

  [[nodiscard]] std::string encode() const;
  [[nodiscard]] static util::Result<StateReport> decode(
      const std::string& wire);
};

struct OverrideRequest {
  std::string station;
  [[nodiscard]] std::string encode() const;
  [[nodiscard]] static util::Result<OverrideRequest> decode(
      const std::string& wire);
};

struct OverrideResponse {
  bool has_override = false;
  power::PowerState state = power::PowerState::kState3;
  [[nodiscard]] std::string encode() const;
  [[nodiscard]] static util::Result<OverrideResponse> decode(
      const std::string& wire);
};

// The wire size of an encoded message, for transfer accounting.
[[nodiscard]] inline util::Bytes wire_size(const std::string& encoded) {
  // HTTP request line + headers the deployed wget added (~180 B) + body.
  return util::Bytes{std::int64_t(encoded.size()) + 180};
}

}  // namespace gw::proto
