// Control-plane message codec for station <-> Southampton exchanges.
//
// The deployed stations spoke to the server over plain HTTP GETs and small
// uploads (§VI: even the MD5 beacon was a GET because the onboard wget
// lacked POST). This codec renders each control message as a compact
// "key=value&key=value" form with a trailing CRC-32, so the simulation's
// transfer sizes come from real encodings and corrupted messages are
// detected rather than trusted — field lesson §VI applied to the control
// plane.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "power/power_state.h"
#include "util/result.h"
#include "util/units.h"

namespace gw::proto {

// A flat, ordered key=value form. Keys and values must not contain '=', '&'
// or '#' (the CRC separator); the station-side code only ever uses
// identifiers and numbers.
class Form {
 public:
  void set(const std::string& key, const std::string& value) {
    fields_[key] = value;
  }
  void set_int(const std::string& key, std::int64_t value) {
    fields_[key] = std::to_string(value);
  }

  [[nodiscard]] std::optional<std::string> get(const std::string& key) const {
    const auto it = fields_.find(key);
    if (it == fields_.end()) return std::nullopt;
    return it->second;
  }

  // Strict full-string integer parse: the entire value must be a base-10
  // integer (optional leading '-'). Leading whitespace, '+' signs, trailing
  // garbage ("42xyz"), and overflow all return nullopt — a field-lesson §VI
  // server never guesses what a half-numeric value meant.
  [[nodiscard]] std::optional<std::int64_t> get_int(
      const std::string& key) const;

  // The parser behind get_int, exposed so tests can pin its strictness.
  [[nodiscard]] static std::optional<std::int64_t> parse_int(
      std::string_view text);

  [[nodiscard]] std::size_t size() const { return fields_.size(); }

  // Renders "k1=v1&k2=v2#crc32hex".
  [[nodiscard]] std::string encode() const;

  // Parses and verifies the CRC.
  [[nodiscard]] static util::Result<Form> decode(const std::string& wire);

 private:
  std::map<std::string, std::string> fields_;
};

// --- typed messages -------------------------------------------------------

struct StateReport {
  std::string station;
  power::PowerState state = power::PowerState::kState0;
  std::int64_t day_ms = 0;  // station RTC at report time

  [[nodiscard]] std::string encode() const;
  [[nodiscard]] static util::Result<StateReport> decode(
      const std::string& wire);
};

struct OverrideRequest {
  std::string station;
  [[nodiscard]] std::string encode() const;
  [[nodiscard]] static util::Result<OverrideRequest> decode(
      const std::string& wire);
};

struct OverrideResponse {
  bool has_override = false;
  power::PowerState state = power::PowerState::kState3;
  [[nodiscard]] std::string encode() const;
  [[nodiscard]] static util::Result<OverrideResponse> decode(
      const std::string& wire);
};

// --- consumer read API ----------------------------------------------------
//
// The client-facing query surface served by station::SouthamptonServer
// (docs/FLEET.md "The server read API"): a station directory, per-station
// season rollups, and sync-group convergence status. Every message renders
// through the same Form codec as the control plane, so query traffic has
// real wire sizes and corrupted requests are detected, not trusted.

// "Which stations does this server know about?"
struct DirectoryRequest {
  [[nodiscard]] std::string encode() const;
  [[nodiscard]] static util::Result<DirectoryRequest> decode(
      const std::string& wire);
};

// Decode refuses a count above this: a malformed (but CRC-valid) count
// must not drive an unbounded field loop.
inline constexpr std::int64_t kMaxDirectoryStations = 65536;

struct DirectoryResponse {
  std::vector<std::string> stations;  // sorted by name (server contract)

  [[nodiscard]] std::string encode() const;
  [[nodiscard]] static util::Result<DirectoryResponse> decode(
      const std::string& wire);
};

// "What has station X delivered this season?"
struct StationStatsRequest {
  std::string station;
  [[nodiscard]] std::string encode() const;
  [[nodiscard]] static util::Result<StationStatsRequest> decode(
      const std::string& wire);
};

struct StationStatsResponse {
  std::string station;
  bool known = false;  // false: the server has never heard of the station
  std::int64_t files = 0;
  std::int64_t bytes = 0;
  std::int64_t beacons = 0;

  [[nodiscard]] std::string encode() const;
  [[nodiscard]] static util::Result<StationStatsResponse> decode(
      const std::string& wire);
};

// "Is sync group G in lockstep right now?"
struct GroupStatusRequest {
  std::string group;
  [[nodiscard]] std::string encode() const;
  [[nodiscard]] static util::Result<GroupStatusRequest> decode(
      const std::string& wire);
};

struct GroupStatusResponse {
  std::string group;
  std::int64_t members = 0;
  std::int64_t fresh = 0;  // members with an unexpired report
  bool converged = false;
  power::PowerState state = power::PowerState::kState0;  // when converged

  [[nodiscard]] std::string encode() const;
  [[nodiscard]] static util::Result<GroupStatusResponse> decode(
      const std::string& wire);
};

// The server's refusal envelope: `reason` is a short identifier code
// ("bad_wire", "unknown_msg", ...) — codes, not prose, so they survive the
// Form charset rules and tests can switch on them.
struct QueryError {
  std::string reason;
  [[nodiscard]] std::string encode() const;
  [[nodiscard]] static util::Result<QueryError> decode(
      const std::string& wire);
};

// The wire size of an encoded message, for transfer accounting.
[[nodiscard]] inline util::Bytes wire_size(const std::string& encoded) {
  // HTTP request line + headers the deployed wget added (~180 B) + body.
  return util::Bytes{std::int64_t(encoded.size()) + 180};
}

}  // namespace gw::proto
