// PPP session over the long-range radio modem (Norway architecture).
//
// §II: with a battery-powered reference station "the ability to
// differentiate between reasons for disconnects becomes vital" — an
// interference drop means *stay powered and retry*; a completed transfer
// means *kill the radio now*. The session model surfaces exactly that
// distinction, plus the dial/negotiate latency and the time-of-day
// interference drops that made the link untrustworthy in the lab.
#pragma once

#include "hw/radio_modem.h"
#include "sim/time.h"
#include "util/rng.h"
#include "util/units.h"

namespace gw::proto {

enum class PppDisconnectReason {
  kCompleted,     // transfer finished; radio can power off immediately
  kInterference,  // carrier lost; stay powered, attempt reconnect
  kDialFailed,    // never negotiated
};

struct PppOutcome {
  bool connected = false;
  PppDisconnectReason reason = PppDisconnectReason::kDialFailed;
  sim::Duration elapsed{};
  util::Bytes transferred{0};
};

struct PppConfig {
  sim::Duration dial_time = sim::seconds(20);
  double dial_success = 0.85;  // lab experience: "very unreliable"
  int max_reconnect_attempts = 3;
};

class PppLink {
 public:
  PppLink(hw::RadioModem& modem, util::Rng rng, PppConfig config = {})
      : modem_(modem), config_(config), rng_(rng) {}

  // Attempts to move `payload` across the link starting at `start`,
  // reconnecting after interference drops up to the configured attempt
  // count. Requires the modem to be powered.
  [[nodiscard]] PppOutcome transfer(sim::SimTime start, util::Bytes payload) {
    PppOutcome outcome;
    if (!modem_.powered()) return outcome;
    sim::SimTime now = start;
    util::Bytes remaining = payload;

    for (int attempt = 0; attempt < config_.max_reconnect_attempts;
         ++attempt) {
      // Dial + ppp negotiation.
      now += config_.dial_time;
      ++dials_;
      if (!rng_.bernoulli(config_.dial_success)) {
        ++dial_failures_;
        continue;
      }
      outcome.connected = true;

      // Push the payload minute by minute against the interference hazard.
      const double total_minutes =
          modem_.transfer_time(remaining).to_minutes();
      double survived = 0.0;
      bool dropped = false;
      while (survived < total_minutes) {
        const double step = std::min(1.0, total_minutes - survived);
        if (modem_.draw_drop(now + sim::minutes(survived))) {
          dropped = true;
          survived += step * rng_.uniform();
          break;
        }
        survived += step;
      }
      const double fraction =
          total_minutes == 0.0 ? 1.0 : survived / total_minutes;
      const auto moved = util::Bytes{std::int64_t(
          double(remaining.count()) * std::min(1.0, fraction))};
      remaining -= moved;
      outcome.transferred += moved;
      now += sim::minutes(survived);

      if (!dropped) {
        outcome.reason = PppDisconnectReason::kCompleted;
        outcome.elapsed = now - start;
        return outcome;
      }
      ++interference_drops_;
      // Interference: remain powered and redial (§II's retry rule).
    }

    outcome.reason = outcome.connected ? PppDisconnectReason::kInterference
                                       : PppDisconnectReason::kDialFailed;
    outcome.elapsed = now - start;
    return outcome;
  }

  [[nodiscard]] int dials() const { return dials_; }
  [[nodiscard]] int dial_failures() const { return dial_failures_; }
  [[nodiscard]] int interference_drops() const { return interference_drops_; }

 private:
  hw::RadioModem& modem_;
  PppConfig config_;
  util::Rng rng_;
  int dials_ = 0;
  int dial_failures_ = 0;
  int interference_drops_ = 0;
};

}  // namespace gw::proto
