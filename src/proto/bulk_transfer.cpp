#include "proto/bulk_transfer.h"

#include <vector>

namespace gw::proto {
namespace {

// Shared session bookkeeping: advances a time cursor per frame and stops at
// the budget. Time advances with airtime because loss probability is
// time-dependent (a session can straddle changing conditions).
class Session {
 public:
  Session(ProbeLink& link, sim::SimTime start, sim::Duration budget)
      : link_(link), now_(start), deadline_(start + budget) {}

  [[nodiscard]] bool out_of_budget() const { return now_ >= deadline_; }
  [[nodiscard]] sim::SimTime now() const { return now_; }
  [[nodiscard]] sim::Duration elapsed(sim::SimTime start) const {
    return now_ - start;
  }

  // Sends one frame: spends airtime, draws survival.
  bool send(util::Bytes wire_size) {
    now_ += link_.airtime(wire_size);
    return link_.packet_survives(now_);
  }

  // Idle wait (retransmission timeouts).
  void wait(sim::Duration d) { now_ += d; }

 private:
  ProbeLink& link_;
  sim::SimTime now_;
  sim::SimTime deadline_;
};

// Session-end bookkeeping shared by both protocols: totals into the
// "bulk_transfer" component (docs/OBSERVABILITY.md core set).
void publish_session(obs::Hooks hooks, const TransferStats& stats,
                     sim::SimTime end) {
  if (hooks.metrics != nullptr) {
    auto& metrics = *hooks.metrics;
    metrics.counter("bulk_transfer", "sessions").increment();
    metrics.counter("bulk_transfer", "data_frames")
        .increment(stats.data_packets);
    metrics.counter("bulk_transfer", "control_frames")
        .increment(stats.control_packets);
    metrics.counter("bulk_transfer", "delivered_readings")
        .increment(stats.delivered);
    metrics.counter("bulk_transfer", "retransmit_rounds")
        .increment(std::uint64_t(stats.retransmit_rounds));
    metrics.counter("bulk_transfer", "rerequest_all_rounds")
        .increment(std::uint64_t(stats.rerequest_all_rounds));
    if (stats.aborted) {
      metrics.counter("bulk_transfer", "aborted_sessions").increment();
    }
    if (stats.budget_exhausted) {
      metrics.counter("bulk_transfer", "budget_exhausted_sessions")
          .increment();
    }
    if (stats.delivered > 0) {
      // The §V efficiency observable: cost on air per reading landed.
      metrics
          .histogram("bulk_transfer", "bytes_per_reading",
                     {8, 12, 16, 24, 32, 48, 64, 96, 128, 256, 1024})
          .observe(double(stats.bytes_on_air.count()) /
                   double(stats.delivered));
    }
  }
  if (hooks.journal != nullptr && stats.aborted) {
    hooks.journal->record(end.millis_since_epoch(),
                          obs::EventType::kSessionAborted, "bulk_transfer",
                          double(stats.offered - stats.delivered));
  }
}

}  // namespace

TransferStats NackBulkTransfer::run(ProbeStore& store, sim::SimTime start,
                                    sim::Duration budget) {
  TransferStats stats;
  Session session{link_, start, budget};

  // Snapshot the work list: the probe answers the daily query with its
  // pending backlog.
  std::vector<std::uint32_t> wanted;
  wanted.reserve(store.pending_count());
  for (const auto& reading : store.pending()) wanted.push_back(reading.seq);
  stats.offered = wanted.size();

  std::set<std::uint32_t> received;

  // Round 0: stream everything with no per-packet ACKs (§V).
  auto stream = [&](const std::vector<std::uint32_t>& seqs) {
    for (const auto seq : seqs) {
      if (session.out_of_budget()) {
        stats.budget_exhausted = true;
        break;
      }
      ++stats.data_packets;
      stats.bytes_on_air += kReadingWireSize;
      if (session.send(kReadingWireSize)) received.insert(seq);
    }
  };
  stream(wanted);

  auto missing_list = [&] {
    std::vector<std::uint32_t> missing;
    for (const auto seq : wanted) {
      if (!received.contains(seq)) missing.push_back(seq);
    }
    return missing;
  };

  stats.missing_after_stream = missing_list().size();

  for (int round = 1; round < config_.max_rounds; ++round) {
    if (stats.budget_exhausted || stats.aborted) break;
    const std::vector<std::uint32_t> missing = missing_list();
    if (missing.empty()) break;
    ++stats.retransmit_rounds;
    if (hooks_.journal != nullptr) {
      hooks_.journal->record(session.now().millis_since_epoch(),
                             obs::EventType::kRetransmitRound,
                             "bulk_transfer", double(round),
                             double(missing.size()));
    }

    // "unless there were so many that it would be as efficient to request
    // them all again" — the probe's bulk mode can only replay its *entire*
    // pending dump, so the whole set is re-streamed (already-received
    // frames arrive as duplicates and are dropped). That costs one data
    // frame per reading offered; the individual path costs a request +
    // response (+ timeout risk) per *missing* reading — the crossover the
    // ratio knob encodes sits near 50%.
    if (double(missing.size()) >=
        config_.rerequest_all_ratio * double(stats.offered)) {
      ++stats.rerequest_all_rounds;
      stream(wanted);
      continue;
    }

    // Individual re-requests — the path that "could fail" in the deployed
    // firmware when ~400 readings landed on it (§V).
    if (config_.legacy_individual_limit > 0 &&
        missing.size() > config_.legacy_individual_limit) {
      stats.aborted = true;
      break;
    }
    for (const auto seq : missing) {
      if (session.out_of_budget()) {
        stats.budget_exhausted = true;
        break;
      }
      ++stats.control_packets;
      stats.bytes_on_air += kRequestWireSize;
      if (!session.send(kRequestWireSize)) {
        // Request lost: the probe never answers; wait out the response
        // timer before moving on.
        session.wait(config_.response_timeout);
        continue;
      }
      ++stats.data_packets;
      stats.bytes_on_air += kReadingWireSize;
      if (session.send(kReadingWireSize)) received.insert(seq);
    }
  }

  // Final confirmation: tell the probe what arrived so it can drop those
  // readings. Small frame; modelled as reliable (it is retried at the
  // command layer until it gets through).
  if (!received.empty()) {
    ++stats.control_packets;
    stats.bytes_on_air += kAckWireSize;
  }

  for (const auto& reading : store.pending()) {
    if (received.contains(reading.seq)) {
      stats.delivered_readings.push_back(reading);
    }
  }
  stats.delivered = store.confirm_delivered(received);
  stats.still_missing = stats.offered - stats.delivered;
  stats.airtime = session.elapsed(start);
  publish_session(hooks_, stats, session.now());
  return stats;
}

TransferStats StopAndWaitTransfer::run(ProbeStore& store, sim::SimTime start,
                                       sim::Duration budget) {
  TransferStats stats;
  Session session{link_, start, budget};

  std::vector<std::uint32_t> wanted;
  wanted.reserve(store.pending_count());
  for (const auto& reading : store.pending()) wanted.push_back(reading.seq);
  stats.offered = wanted.size();

  std::set<std::uint32_t> acked;

  for (const auto seq : wanted) {
    if (session.out_of_budget()) {
      stats.budget_exhausted = true;
      break;
    }
    for (int attempt = 0; attempt < config_.max_retries_per_reading;
         ++attempt) {
      if (session.out_of_budget()) {
        stats.budget_exhausted = true;
        break;
      }
      ++stats.data_packets;
      stats.bytes_on_air += kReadingWireSize;
      const bool data_arrived = session.send(kReadingWireSize);
      if (!data_arrived) {
        session.wait(config_.ack_timeout);  // sender times out, retransmits
        continue;
      }
      ++stats.control_packets;
      stats.bytes_on_air += kAckWireSize;
      const bool ack_arrived = session.send(kAckWireSize);
      if (ack_arrived) {
        acked.insert(seq);
        break;
      }
      // ACK lost: sender waits out the timer, then retransmits a reading
      // the base already has — the duplicate cost the NACK design avoids.
      session.wait(config_.ack_timeout);
    }
  }

  for (const auto& reading : store.pending()) {
    if (acked.contains(reading.seq)) {
      stats.delivered_readings.push_back(reading);
    }
  }
  stats.delivered = store.confirm_delivered(acked);
  stats.still_missing = stats.offered - stats.delivered;
  stats.airtime = session.elapsed(start);
  publish_session(hooks_, stats, session.now());
  return stats;
}

}  // namespace gw::proto
