// Frame-level bulk-transfer session.
//
// NackBulkTransfer models the §V protocol with wire-size arithmetic; this
// class *runs* it — every frame is actually encoded, passed through the
// lossy link (plus optional in-flight bit corruption), decoded at the far
// end, and answered by the probe's ProbeResponder firmware. It exists to
// validate the abstract model: tests assert that both implementations
// agree on delivery, airtime and packet counts, so the fast model the
// benches use can be trusted.
#pragma once

#include "proto/bulk_transfer.h"
#include "proto/probe_frames.h"
#include "proto/probe_link.h"
#include "proto/probe_responder.h"
#include "proto/probe_store.h"
#include "sim/time.h"
#include "util/rng.h"

namespace gw::proto {

struct FrameSessionConfig {
  int max_rounds = 4;
  double rerequest_all_ratio = 0.5;
  // Probability a frame that physically arrives is bit-damaged (detected
  // by its CRC and treated as missing — §V's "broken data packets").
  double corruption_probability = 0.005;
  sim::Duration response_timeout = sim::milliseconds(250);
};

class FrameLevelTransfer {
 public:
  FrameLevelTransfer(ProbeLink& link, util::Rng rng,
                     FrameSessionConfig config = {})
      : link_(link), config_(config), rng_(rng) {}

  // Runs one full fetch session against a probe's firmware.
  TransferStats run(ProbeResponder& responder, ProbeStore& store,
                    std::uint16_t probe_id, sim::SimTime start,
                    sim::Duration budget);

 private:
  ProbeLink& link_;
  FrameSessionConfig config_;
  util::Rng rng_;
};

}  // namespace gw::proto
