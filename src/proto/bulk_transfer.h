// Probe bulk-data transfer protocols.
//
// NackBulkTransfer is the paper's §V algorithm: stream every pending
// reading *without* per-packet acknowledgements, record which arrived,
// then request the missing ones individually — "unless there were so many
// that it would be as efficient to request them all again". The
// `legacy_individual_limit` knob reproduces the deployed firmware's
// failure: a fetch of ~400 individually-requested readings "was never
// considered in the testing phase and the process could fail".
//
// StopAndWaitTransfer is the conventional per-packet-ACK comparator the
// paper's "new technique, avoiding acknowledge packets" is measured
// against in bench_probe_protocol.
//
// Both protocols account airtime against a session budget (the slice of
// the 2-hour window allotted to probe jobs) and only *confirm* delivered
// readings to the probe store — unconfirmed readings stay pending for the
// next day's window, exactly the behaviour that rescued the deployment.
#pragma once

#include <set>
#include <vector>

#include "obs/journal.h"
#include "proto/probe_link.h"
#include "proto/probe_store.h"
#include "sim/time.h"

namespace gw::proto {

struct TransferStats {
  std::size_t offered = 0;        // pending at session start
  std::size_t delivered = 0;      // confirmed this session
  std::size_t still_missing = 0;  // left pending for tomorrow
  std::uint64_t data_packets = 0;     // probe -> base frames
  std::uint64_t control_packets = 0;  // base -> probe requests/ACKs
  sim::Duration airtime{};
  bool aborted = false;           // legacy firmware failure (§V)
  bool budget_exhausted = false;
  int rerequest_all_rounds = 0;   // times the whole set was re-streamed
  int retransmit_rounds = 0;      // retry rounds entered after the stream
  std::size_t missing_after_stream = 0;  // the "~400 of 3000" number
  util::Bytes bytes_on_air{0};    // every frame sent, both directions
  // The payloads that made it — the base station decodes, logs and packages
  // these (and the §VII data-priority analyser inspects them).
  std::vector<ProbeReading> delivered_readings;
};

struct NackConfig {
  int max_rounds = 4;
  // If missing/offered after a round reaches this, re-stream everything
  // missing instead of issuing per-reading requests.
  double rerequest_all_ratio = 0.5;
  // >0 reproduces the deployed bug: the session aborts when the individual
  // re-request list exceeds this (0 = fixed firmware, no limit).
  std::size_t legacy_individual_limit = 0;
  // How long the base waits for a probe response to a lost request.
  sim::Duration response_timeout = sim::milliseconds(250);
};

class NackBulkTransfer {
 public:
  // `hooks` (optional) records per-session counters and histograms under
  // the "bulk_transfer" component plus per-round journal records — see
  // docs/OBSERVABILITY.md.
  explicit NackBulkTransfer(ProbeLink& link, NackConfig config = {},
                            obs::Hooks hooks = {})
      : link_(link), config_(config), hooks_(hooks) {}

  TransferStats run(ProbeStore& store, sim::SimTime start,
                    sim::Duration budget);

 private:
  ProbeLink& link_;
  NackConfig config_;
  obs::Hooks hooks_;
};

struct StopAndWaitConfig {
  int max_retries_per_reading = 4;
  sim::Duration ack_timeout = sim::milliseconds(250);
};

class StopAndWaitTransfer {
 public:
  explicit StopAndWaitTransfer(ProbeLink& link, StopAndWaitConfig config = {},
                               obs::Hooks hooks = {})
      : link_(link), config_(config), hooks_(hooks) {}

  TransferStats run(ProbeStore& store, sim::SimTime start,
                    sim::Duration budget);

 private:
  ProbeLink& link_;
  StopAndWaitConfig config_;
  obs::Hooks hooks_;
};

}  // namespace gw::proto
