#include "proto/probe_frames.h"

#include <cstring>

namespace gw::proto {
namespace {

constexpr std::uint8_t kSync0 = 0x7e;
constexpr std::uint8_t kSync1 = 0x81;
constexpr std::uint8_t kVersion = 1;

void push_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(std::uint8_t(v & 0xff));
  out.push_back(std::uint8_t(v >> 8));
}

void push_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int b = 0; b < 4; ++b) out.push_back(std::uint8_t((v >> (8 * b)) & 0xff));
}

void push_i64(std::vector<std::uint8_t>& out, std::int64_t v) {
  for (int b = 0; b < 8; ++b) {
    out.push_back(std::uint8_t((std::uint64_t(v) >> (8 * b)) & 0xff));
  }
}

void push_f64(std::vector<std::uint8_t>& out, double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  for (int b = 0; b < 8; ++b) {
    out.push_back(std::uint8_t((bits >> (8 * b)) & 0xff));
  }
}

std::uint16_t read_u16(std::span<const std::uint8_t> in, std::size_t at) {
  return std::uint16_t(in[at] | (std::uint16_t(in[at + 1]) << 8));
}

std::uint32_t read_u32(std::span<const std::uint8_t> in, std::size_t at) {
  std::uint32_t v = 0;
  for (int b = 0; b < 4; ++b) {
    v |= std::uint32_t(in[at + std::size_t(b)]) << (8 * b);
  }
  return v;
}

std::int64_t read_i64(std::span<const std::uint8_t> in, std::size_t at) {
  std::uint64_t v = 0;
  for (int b = 0; b < 8; ++b) {
    v |= std::uint64_t(in[at + std::size_t(b)]) << (8 * b);
  }
  return std::int64_t(v);
}

double read_f64(std::span<const std::uint8_t> in, std::size_t at) {
  std::uint64_t bits = 0;
  for (int b = 0; b < 8; ++b) {
    bits |= std::uint64_t(in[at + std::size_t(b)]) << (8 * b);
  }
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

}  // namespace

std::vector<std::uint8_t> encode_frame(const Frame& frame) {
  std::vector<std::uint8_t> wire;
  wire.reserve(kHeaderBytes + frame.payload.size() + kTrailerBytes);
  wire.push_back(kSync0);
  wire.push_back(kSync1);
  wire.push_back(kVersion);
  wire.push_back(std::uint8_t(frame.type));
  push_u16(wire, frame.probe_id);
  push_u16(wire, std::uint16_t(frame.payload.size()));
  push_u32(wire, frame.seq);
  wire.insert(wire.end(), frame.payload.begin(), frame.payload.end());
  const std::uint32_t crc =
      util::crc32(std::span<const std::uint8_t>(wire.data(), wire.size()));
  push_u32(wire, crc);
  return wire;
}

util::Result<Frame> decode_frame(std::span<const std::uint8_t> wire) {
  if (wire.size() < kHeaderBytes + kTrailerBytes) {
    return util::make_error("frame: truncated");
  }
  const std::size_t body = wire.size() - kTrailerBytes;
  if (util::crc32(wire.subspan(0, body)) != read_u32(wire, body)) {
    return util::make_error("frame: crc mismatch");
  }
  if (wire[0] != kSync0 || wire[1] != kSync1) {
    return util::make_error("frame: bad sync");
  }
  if (wire[2] != kVersion) return util::make_error("frame: bad version");
  Frame frame;
  frame.type = FrameType(wire[3]);
  frame.probe_id = read_u16(wire, 4);
  const std::uint16_t length = read_u16(wire, 6);
  frame.seq = read_u32(wire, 8);
  if (wire.size() != kHeaderBytes + length + kTrailerBytes) {
    return util::make_error("frame: length mismatch");
  }
  frame.payload.assign(wire.begin() + kHeaderBytes,
                       wire.begin() + std::ptrdiff_t(kHeaderBytes + length));
  return frame;
}

std::vector<std::uint8_t> serialize_reading(const ProbeReading& reading) {
  std::vector<std::uint8_t> payload;
  payload.reserve(std::size_t(kReadingPayload.count()));
  push_u16(payload, std::uint16_t(reading.probe_id));
  push_u32(payload, reading.seq);
  push_i64(payload, reading.sampled_ms);
  push_f64(payload, reading.conductivity_us);
  push_f64(payload, reading.pressure_kpa);
  push_f64(payload, reading.tilt_deg);
  push_f64(payload, reading.temperature_c);
  // Pad to the fixed record size (2+4+8+32 = 46 -> 48).
  while (payload.size() < std::size_t(kReadingPayload.count())) {
    payload.push_back(0);
  }
  return payload;
}

util::Result<ProbeReading> parse_reading(
    std::span<const std::uint8_t> payload) {
  if (payload.size() != std::size_t(kReadingPayload.count())) {
    return util::make_error("reading: wrong payload size");
  }
  ProbeReading reading;
  reading.probe_id = read_u16(payload, 0);
  reading.seq = read_u32(payload, 2);
  reading.sampled_ms = read_i64(payload, 6);
  reading.conductivity_us = read_f64(payload, 14);
  reading.pressure_kpa = read_f64(payload, 22);
  reading.tilt_deg = read_f64(payload, 30);
  reading.temperature_c = read_f64(payload, 38);
  return reading;
}

std::vector<std::uint8_t> encode_reading_frame(const ProbeReading& reading) {
  Frame frame;
  frame.type = FrameType::kReadingData;
  frame.probe_id = std::uint16_t(reading.probe_id);
  frame.seq = reading.seq;
  frame.payload = serialize_reading(reading);
  return encode_frame(frame);
}

std::vector<std::uint8_t> encode_resend_request(std::uint16_t probe_id,
                                                std::uint32_t seq) {
  Frame frame;
  frame.type = FrameType::kResendRequest;
  frame.probe_id = probe_id;
  frame.seq = seq;
  // Payload: the request window (count=1 for individual re-fetch, §V) and
  // a flags word.
  push_u32(frame.payload, 1);
  push_u32(frame.payload, 0);
  return encode_frame(frame);
}

std::vector<std::uint8_t> encode_ack(std::uint16_t probe_id,
                                     std::uint32_t seq) {
  Frame frame;
  frame.type = FrameType::kAck;
  frame.probe_id = probe_id;
  frame.seq = seq;
  push_u32(frame.payload, 0);  // status word
  return encode_frame(frame);
}

std::vector<std::vector<std::uint8_t>> encode_confirm(
    std::uint16_t probe_id, std::span<const std::uint32_t> seqs) {
  std::vector<std::vector<std::uint8_t>> frames;
  for (std::size_t offset = 0; offset < seqs.size();
       offset += kMaxSeqsPerConfirm) {
    const std::size_t n =
        std::min(kMaxSeqsPerConfirm, seqs.size() - offset);
    Frame frame;
    frame.type = FrameType::kConfirm;
    frame.probe_id = probe_id;
    frame.seq = std::uint32_t(offset);  // chunk index for idempotency
    push_u16(frame.payload, std::uint16_t(n));
    for (std::size_t i = 0; i < n; ++i) {
      push_u32(frame.payload, seqs[offset + i]);
    }
    frames.push_back(encode_frame(frame));
  }
  if (frames.empty()) {
    // An empty confirmation is still a frame (keeps the dialogue regular).
    Frame frame;
    frame.type = FrameType::kConfirm;
    frame.probe_id = probe_id;
    push_u16(frame.payload, 0);
    frames.push_back(encode_frame(frame));
  }
  return frames;
}

util::Result<std::vector<std::uint32_t>> parse_confirm(const Frame& frame) {
  if (frame.type != FrameType::kConfirm) {
    return util::make_error("confirm: wrong frame type");
  }
  if (frame.payload.size() < 2) {
    return util::make_error("confirm: truncated payload");
  }
  const std::uint16_t n = read_u16(frame.payload, 0);
  if (frame.payload.size() != 2 + 4 * std::size_t(n)) {
    return util::make_error("confirm: count mismatch");
  }
  std::vector<std::uint32_t> seqs;
  seqs.reserve(n);
  for (std::uint16_t i = 0; i < n; ++i) {
    seqs.push_back(read_u32(frame.payload, 2 + 4 * std::size_t(i)));
  }
  return seqs;
}

std::vector<std::uint8_t> encode_query_pending(std::uint16_t probe_id) {
  Frame frame;
  frame.type = FrameType::kQueryPending;
  frame.probe_id = probe_id;
  return encode_frame(frame);
}

}  // namespace gw::proto
