// Probe radio frame codec.
//
// The wire format behind the §V protocol's arithmetic: every frame carries
// a 16-byte header+trailer (sync, version, type, probe id, payload length,
// sequence, CRC-32) around its payload. The constants in reading.h
// (kReadingWireSize = 64, kRequestWireSize = 24, kAckWireSize = 20) are
// *derived* from these encodings, and the tests pin them together so the
// protocol benches can never drift from the codec.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "proto/reading.h"
#include "util/crc32.h"
#include "util/result.h"

namespace gw::proto {

enum class FrameType : std::uint8_t {
  kReadingData = 1,   // probe -> base: one reading (stream or re-send)
  kResendRequest = 2, // base -> probe: send this sequence number again
  kAck = 3,           // base -> probe: stop-and-wait acknowledgement
  kConfirm = 4,       // base -> probe: these sequences arrived; drop them
  kQueryPending = 5,  // base -> probe: start the daily session
};

struct Frame {
  FrameType type = FrameType::kReadingData;
  std::uint16_t probe_id = 0;
  std::uint32_t seq = 0;
  std::vector<std::uint8_t> payload;
};

// Header: sync(2) ver(1) type(1) probe_id(2) len(2) seq(4) = 12 bytes;
// trailer: crc32(4). Total framing = 16 bytes (kFrameOverhead).
inline constexpr std::size_t kHeaderBytes = 12;
inline constexpr std::size_t kTrailerBytes = 4;

[[nodiscard]] std::vector<std::uint8_t> encode_frame(const Frame& frame);
[[nodiscard]] util::Result<Frame> decode_frame(
    std::span<const std::uint8_t> wire);

// --- reading payload (fixed 48 bytes = kReadingPayload) --------------------

[[nodiscard]] std::vector<std::uint8_t> serialize_reading(
    const ProbeReading& reading);
[[nodiscard]] util::Result<ProbeReading> parse_reading(
    std::span<const std::uint8_t> payload);

// --- whole-frame builders ---------------------------------------------------

[[nodiscard]] std::vector<std::uint8_t> encode_reading_frame(
    const ProbeReading& reading);
[[nodiscard]] std::vector<std::uint8_t> encode_resend_request(
    std::uint16_t probe_id, std::uint32_t seq);
[[nodiscard]] std::vector<std::uint8_t> encode_ack(std::uint16_t probe_id,
                                                   std::uint32_t seq);

// A confirmation frame carries up to kMaxSeqsPerConfirm sequence numbers;
// larger sets are chunked across frames.
inline constexpr std::size_t kMaxSeqsPerConfirm = 56;
[[nodiscard]] std::vector<std::vector<std::uint8_t>> encode_confirm(
    std::uint16_t probe_id, std::span<const std::uint32_t> seqs);
[[nodiscard]] util::Result<std::vector<std::uint32_t>> parse_confirm(
    const Frame& frame);

[[nodiscard]] std::vector<std::uint8_t> encode_query_pending(
    std::uint16_t probe_id);

}  // namespace gw::proto
