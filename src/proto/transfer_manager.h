// Resumable upload queue for the daily GPRS window.
//
// Everything leaving the glacier (dGPS files, probe readings, sensor
// packages, the logfile) goes through this queue. §VI's backlog behaviour
// is implemented literally: data is processed *file by file*, so a backlog
// too big for one window drains over several days — but a single file
// larger than a whole window makes no progress at all ("no progress could
// ever be made"), the livelock the paper flags. `chunk_resume` is the
// obvious fix (keep partial progress across windows); it defaults off to
// match the deployed system and is swept in bench_backlog_watchdog.
#pragma once

#include <algorithm>
#include <deque>
#include <functional>
#include <string>

#include "hw/gprs_modem.h"
#include "obs/journal.h"
#include "sim/time.h"
#include "util/units.h"

namespace gw::proto {

struct UploadFile {
  std::string name;
  util::Bytes size{0};
  util::Bytes sent{0};  // partial progress (kept only with chunk_resume)
  int priority = 0;     // higher uploads first (extension; see config)

  template <class Archive>
  void persist(Archive& ar) {
    ar.value(name);
    ar.value(size);
    ar.value(sent);
    ar.value(priority);
  }
};

struct UploadReport {
  int files_completed = 0;
  util::Bytes bytes_sent{0};
  sim::Duration elapsed{};
  bool window_exhausted = false;
  int failed_sessions = 0;
  int sessions_timed_out = 0;      // sessions that wedged and hit the cap
  sim::Duration backoff_spent{};   // window time burned waiting to retry
};

struct TransferManagerConfig {
  bool chunk_resume = false;  // off = deployed behaviour (§VI livelock)
  int max_session_retries = 2;
  // Extension in the spirit of §VII's data prioritisation: when set,
  // higher-priority files jump the queue (stable within a priority), so
  // fresh science data is not starved behind a multi-day dGPS backlog.
  // Off = deployed behaviour (strict FIFO).
  bool priority_ordering = false;
  // Per-session timeout: a wedged session (§VI's hung SCP) is cut after
  // min(session_timeout, window budget left) instead of eating the whole
  // hang_duration and leaving the 2-hour watchdog as the only backstop.
  // Zero = disabled (deployed behaviour).
  sim::Duration session_timeout{0};
  // Capped exponential backoff between failed sessions: the k-th
  // consecutive failure waits min(base * 2^(k-1), cap) of window time
  // before redialling — a flaky network is not hammered at line rate.
  // Zero base = disabled (deployed behaviour: immediate redial).
  sim::Duration retry_backoff_base{0};
  sim::Duration retry_backoff_cap = sim::minutes(16);
};

// Optional file-admission filter for run_window: return false to leave a
// file queued this window. The degraded-mode station uses it to upload the
// logfile and state report only ("log-only upload") while science data
// waits for the network to come back.
using AdmitPredicate = std::function<bool(const UploadFile&)>;

class TransferManager {
 public:
  explicit TransferManager(TransferManagerConfig config = {})
      : config_(config) {}

  void enqueue(std::string name, util::Bytes size, int priority = 0) {
    UploadFile file{std::move(name), size, util::Bytes{0}, priority};
    if (!config_.priority_ordering || priority == 0) {
      // FIFO fast path; priority 0 never overtakes anything.
      queue_.push_back(std::move(file));
      return;
    }
    // Stable insert before the first strictly-lower-priority entry, but
    // never ahead of a file with partial progress (abandoning a
    // half-transferred file would waste its sent bytes).
    auto it = queue_.begin();
    while (it != queue_.end() &&
           (it->priority >= priority || it->sent.count() > 0)) {
      ++it;
    }
    queue_.insert(it, std::move(file));
  }

  // Invoked once per fully-delivered file (the server ingest hook).
  void set_completion_callback(
      std::function<void(const std::string&, util::Bytes)> fn) {
    on_complete_ = std::move(fn);
  }

  // Optional instrumentation under "transfer_manager": per-window counters
  // plus a journal record whenever a window closes with work left queued
  // (§VI's multi-day backlog drain made visible).
  void set_hooks(obs::Hooks hooks) { hooks_ = hooks; }

  [[nodiscard]] std::size_t queued_files() const { return queue_.size(); }
  [[nodiscard]] util::Bytes queued_bytes() const {
    util::Bytes total{0};
    for (const auto& file : queue_) total += file.size - file.sent;
    return total;
  }
  [[nodiscard]] bool empty() const { return queue_.empty(); }

  // Uploads as much of the queue as fits in `budget`, oldest admitted file
  // first (no `admit` = oldest file, the deployed behaviour). The modem
  // must already be powered; the caller owns advancing simulated time by
  // report.elapsed (it is part of the daily run's sequence). `now` only
  // timestamps journal records (instrumented callers pass it).
  //
  // The retry budget is explicit: max_session_retries extra sessions per
  // window beyond the first of each attempt, consecutive failures separated
  // by capped exponential backoff (when configured) that consumes window
  // time like any other use of the channel.
  UploadReport run_window(hw::GprsModem& modem, sim::Duration budget,
                          sim::SimTime now = sim::kEpoch,
                          const AdmitPredicate& admit = {}) {
    UploadReport report;
    int retries_left = config_.max_session_retries;
    int consecutive_failures = 0;

    while (!queue_.empty()) {
      const auto it =
          admit ? std::find_if(queue_.begin(), queue_.end(),
                               [&](const UploadFile& f) { return admit(f); })
                : queue_.begin();
      if (it == queue_.end()) break;  // nothing admitted this window
      UploadFile& file = *it;
      const util::Bytes remaining = file.size - file.sent;
      const sim::Duration budget_left = budget - report.elapsed;
      if (budget_left <= sim::Duration{0}) {
        report.window_exhausted = true;
        break;
      }

      // Cap the attempt at what the remaining window can carry (the 2-hour
      // watchdog will cut power regardless, so nothing longer is useful).
      const double seconds_left = budget_left.to_seconds();
      const double usable_seconds =
          seconds_left - modem.config().registration_time.to_seconds();
      if (usable_seconds <= 0.0) {
        report.window_exhausted = true;
        break;
      }
      const auto max_bytes = util::Bytes{std::int64_t(
          usable_seconds * modem.config().rate.value() /
          (8.0 * modem.config().protocol_overhead))};
      const util::Bytes attempt_size = std::min(remaining, max_bytes);
      const bool truncated_by_window = attempt_size < remaining;

      const sim::Duration session_cap =
          config_.session_timeout > sim::Duration{0}
              ? std::min(config_.session_timeout, budget_left)
              : hw::kNoSessionCap;
      const hw::TransferOutcome outcome =
          modem.attempt_transfer(attempt_size, session_cap);
      report.elapsed += outcome.elapsed;
      report.bytes_sent += outcome.sent;
      if (outcome.hung) {
        ++report.sessions_timed_out;
        publish_timeout(outcome.elapsed, session_cap, now);
      }

      if (!outcome.success && outcome.sent.count() == 0) {
        // Registration failure, instant drop, or a wedged session.
        ++report.failed_sessions;
        if (--retries_left < 0) break;
        apply_backoff(++consecutive_failures, budget, report);
        continue;
      }

      const util::Bytes progressed = outcome.sent;
      if (outcome.success && !truncated_by_window &&
          progressed == remaining) {
        // Whole file made it: it leaves the glacier.
        consecutive_failures = 0;
        complete_file(it, report);
        continue;
      }

      // Partial: either the session dropped or the window ran out.
      if (config_.chunk_resume) {
        file.sent += progressed;
        if (file.sent >= file.size) {
          consecutive_failures = 0;
          complete_file(it, report);
          continue;
        }
      }
      // Without chunk_resume the partial upload is discarded server-side
      // (incomplete file), so `sent` stays 0 — §VI's livelock for
      // single-window-exceeding files.
      if (truncated_by_window) {
        report.window_exhausted = true;
        break;
      }
      ++report.failed_sessions;
      if (--retries_left < 0) break;
      apply_backoff(++consecutive_failures, budget, report);
    }
    publish_window(report, now);
    return report;
  }

  [[nodiscard]] const std::deque<UploadFile>& queue() const { return queue_; }

  // Snapshot support (docs/SNAPSHOT.md). Only the queue is state; the
  // completion callback and hooks are wiring re-established by the owner.
  template <class Archive>
  void persist(Archive& ar) {
    ar.value(queue_);
  }

 private:
  void complete_file(std::deque<UploadFile>::iterator it,
                     UploadReport& report) {
    if (on_complete_) on_complete_(it->name, it->size);
    queue_.erase(it);
    ++report.files_completed;
  }

  // Burns min(base * 2^(k-1), cap) of window time before the next redial;
  // no-op when backoff is disabled. Never pushes elapsed past the budget —
  // the top-of-loop exhaustion check handles a backoff that would.
  void apply_backoff(int consecutive_failures, sim::Duration budget,
                     UploadReport& report) {
    if (config_.retry_backoff_base <= sim::Duration{0}) return;
    sim::Duration wait = config_.retry_backoff_base;
    for (int i = 1; i < consecutive_failures && wait < config_.retry_backoff_cap;
         ++i) {
      wait = wait * 2;
    }
    wait = std::min(wait, config_.retry_backoff_cap);
    wait = std::min(wait, budget - report.elapsed);
    if (wait <= sim::Duration{0}) return;
    report.elapsed += wait;
    report.backoff_spent += wait;
  }

  void publish_timeout(sim::Duration elapsed, sim::Duration cap,
                       sim::SimTime now) {
    if (hooks_.metrics != nullptr) {
      hooks_.metrics->counter("transfer_manager", "sessions_timed_out")
          .increment();
    }
    if (hooks_.journal != nullptr) {
      hooks_.journal->record(now.millis_since_epoch(),
                             obs::EventType::kSessionTimeout,
                             "transfer_manager", elapsed.to_seconds(),
                             cap.to_seconds());
    }
  }

  void publish_window(const UploadReport& report, sim::SimTime now) {
    if (hooks_.metrics != nullptr) {
      auto& metrics = *hooks_.metrics;
      metrics.counter("transfer_manager", "windows").increment();
      metrics.counter("transfer_manager", "files_completed")
          .increment(std::uint64_t(report.files_completed));
      metrics.counter("transfer_manager", "bytes_sent")
          .increment(std::uint64_t(report.bytes_sent.count()));
      metrics.counter("transfer_manager", "failed_sessions")
          .increment(std::uint64_t(report.failed_sessions));
      metrics.counter("transfer_manager", "backoff_seconds")
          .increment(std::uint64_t(report.backoff_spent.to_seconds()));
      if (report.window_exhausted) {
        metrics.counter("transfer_manager", "windows_exhausted").increment();
      }
      metrics.gauge("transfer_manager", "backlog_files")
          .set(double(queue_.size()));
      metrics.gauge("transfer_manager", "backlog_bytes")
          .set(double(queued_bytes().count()));
    }
    if (hooks_.journal != nullptr && report.window_exhausted) {
      hooks_.journal->record(now.millis_since_epoch(),
                             obs::EventType::kWindowExhausted,
                             "transfer_manager", double(queue_.size()),
                             double(queued_bytes().count()));
    }
  }

  TransferManagerConfig config_;
  std::deque<UploadFile> queue_;
  std::function<void(const std::string&, util::Bytes)> on_complete_;
  obs::Hooks hooks_;
};

}  // namespace gw::proto
