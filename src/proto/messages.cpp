#include "proto/messages.h"

#include <charconv>
#include <cstdio>
#include <system_error>

#include "util/crc32.h"
#include "util/strings.h"

namespace gw::proto {
namespace {

std::string crc_hex(std::string_view body) {
  char buffer[16];
  std::snprintf(buffer, sizeof(buffer), "%08x", util::crc32(body));
  return buffer;
}

}  // namespace

std::optional<std::int64_t> Form::parse_int(std::string_view text) {
  // std::from_chars is exactly the strictness wanted: no leading
  // whitespace, no '+', no locale. The only extra requirement is that it
  // consumed the *whole* value — std::stoll's silent "42xyz" -> 42 was the
  // lenient path this replaces.
  std::int64_t value = 0;
  const char* const first = text.data();
  const char* const last = first + text.size();
  const auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec != std::errc{} || ptr != last) return std::nullopt;
  return value;
}

std::optional<std::int64_t> Form::get_int(const std::string& key) const {
  const auto text = get(key);
  if (!text.has_value()) return std::nullopt;
  return parse_int(*text);
}

std::string Form::encode() const {
  std::string body;
  for (const auto& [key, value] : fields_) {
    if (!body.empty()) body += '&';
    body += key;
    body += '=';
    body += value;
  }
  return body + '#' + crc_hex(body);
}

util::Result<Form> Form::decode(const std::string& wire) {
  const auto hash = wire.rfind('#');
  if (hash == std::string::npos) {
    return util::make_error("form: missing crc");
  }
  const std::string body = wire.substr(0, hash);
  const std::string crc = wire.substr(hash + 1);
  if (crc != crc_hex(body)) {
    return util::make_error("form: crc mismatch");
  }
  Form form;
  if (body.empty()) return form;
  for (const auto& pair : util::split(body, '&')) {
    const auto eq = pair.find('=');
    if (eq == std::string::npos) {
      return util::make_error("form: malformed field '" + pair + "'");
    }
    form.set(pair.substr(0, eq), pair.substr(eq + 1));
  }
  return form;
}

// --- StateReport ----------------------------------------------------------

std::string StateReport::encode() const {
  Form form;
  form.set("msg", "state_report");
  form.set("station", station);
  form.set_int("state", power::to_int(state));
  form.set_int("rtc_ms", day_ms);
  return form.encode();
}

util::Result<StateReport> StateReport::decode(const std::string& wire) {
  auto form = Form::decode(wire);
  if (!form.ok()) return form.error();
  if (form.value().get("msg").value_or("") != "state_report") {
    return util::make_error("state_report: wrong message type");
  }
  const auto station = form.value().get("station");
  const auto state = form.value().get_int("state");
  const auto rtc = form.value().get_int("rtc_ms");
  if (!station || !state || !rtc) {
    return util::make_error("state_report: missing fields");
  }
  StateReport report;
  report.station = *station;
  report.state = power::from_int(int(*state));
  report.day_ms = *rtc;
  return report;
}

// --- OverrideRequest --------------------------------------------------------

std::string OverrideRequest::encode() const {
  Form form;
  form.set("msg", "override_request");
  form.set("station", station);
  return form.encode();
}

util::Result<OverrideRequest> OverrideRequest::decode(
    const std::string& wire) {
  auto form = Form::decode(wire);
  if (!form.ok()) return form.error();
  if (form.value().get("msg").value_or("") != "override_request") {
    return util::make_error("override_request: wrong message type");
  }
  const auto station = form.value().get("station");
  if (!station) return util::make_error("override_request: missing station");
  OverrideRequest request;
  request.station = *station;
  return request;
}

// --- OverrideResponse -------------------------------------------------------

std::string OverrideResponse::encode() const {
  Form form;
  form.set("msg", "override_response");
  form.set_int("has", has_override ? 1 : 0);
  form.set_int("state", power::to_int(state));
  return form.encode();
}

util::Result<OverrideResponse> OverrideResponse::decode(
    const std::string& wire) {
  auto form = Form::decode(wire);
  if (!form.ok()) return form.error();
  if (form.value().get("msg").value_or("") != "override_response") {
    return util::make_error("override_response: wrong message type");
  }
  const auto has = form.value().get_int("has");
  const auto state = form.value().get_int("state");
  if (!has || !state) {
    return util::make_error("override_response: missing fields");
  }
  OverrideResponse response;
  response.has_override = *has != 0;
  response.state = power::from_int(int(*state));
  return response;
}

// --- read API -------------------------------------------------------------

namespace {

// Shared preamble for every typed decode: verify the CRC envelope, then the
// message-type tag.
util::Result<Form> decode_as(const std::string& wire, const char* msg) {
  auto form = Form::decode(wire);
  if (!form.ok()) return form.error();
  if (form.value().get("msg").value_or("") != msg) {
    return util::make_error(std::string(msg) + ": wrong message type");
  }
  return form;
}

}  // namespace

std::string DirectoryRequest::encode() const {
  Form form;
  form.set("msg", "dir_request");
  return form.encode();
}

util::Result<DirectoryRequest> DirectoryRequest::decode(
    const std::string& wire) {
  auto form = decode_as(wire, "dir_request");
  if (!form.ok()) return form.error();
  return DirectoryRequest{};
}

std::string DirectoryResponse::encode() const {
  Form form;
  form.set("msg", "dir_response");
  form.set_int("n", std::int64_t(stations.size()));
  for (std::size_t i = 0; i < stations.size(); ++i) {
    form.set("s" + std::to_string(i), stations[i]);
  }
  return form.encode();
}

util::Result<DirectoryResponse> DirectoryResponse::decode(
    const std::string& wire) {
  auto form = decode_as(wire, "dir_response");
  if (!form.ok()) return form.error();
  const auto count = form.value().get_int("n");
  if (!count || *count < 0 || *count > kMaxDirectoryStations) {
    return util::make_error("dir_response: bad station count");
  }
  DirectoryResponse response;
  response.stations.reserve(std::size_t(*count));
  for (std::int64_t i = 0; i < *count; ++i) {
    const auto name = form.value().get("s" + std::to_string(i));
    if (!name) return util::make_error("dir_response: missing station field");
    response.stations.push_back(*name);
  }
  return response;
}

std::string StationStatsRequest::encode() const {
  Form form;
  form.set("msg", "stats_request");
  form.set("station", station);
  return form.encode();
}

util::Result<StationStatsRequest> StationStatsRequest::decode(
    const std::string& wire) {
  auto form = decode_as(wire, "stats_request");
  if (!form.ok()) return form.error();
  const auto station = form.value().get("station");
  if (!station) return util::make_error("stats_request: missing station");
  StationStatsRequest request;
  request.station = *station;
  return request;
}

std::string StationStatsResponse::encode() const {
  Form form;
  form.set("msg", "stats_response");
  form.set("station", station);
  form.set_int("known", known ? 1 : 0);
  form.set_int("files", files);
  form.set_int("bytes", bytes);
  form.set_int("beacons", beacons);
  return form.encode();
}

util::Result<StationStatsResponse> StationStatsResponse::decode(
    const std::string& wire) {
  auto form = decode_as(wire, "stats_response");
  if (!form.ok()) return form.error();
  const auto station = form.value().get("station");
  const auto known = form.value().get_int("known");
  const auto files = form.value().get_int("files");
  const auto bytes = form.value().get_int("bytes");
  const auto beacons = form.value().get_int("beacons");
  if (!station || !known || !files || !bytes || !beacons) {
    return util::make_error("stats_response: missing fields");
  }
  StationStatsResponse response;
  response.station = *station;
  response.known = *known != 0;
  response.files = *files;
  response.bytes = *bytes;
  response.beacons = *beacons;
  return response;
}

std::string GroupStatusRequest::encode() const {
  Form form;
  form.set("msg", "group_request");
  form.set("group", group);
  return form.encode();
}

util::Result<GroupStatusRequest> GroupStatusRequest::decode(
    const std::string& wire) {
  auto form = decode_as(wire, "group_request");
  if (!form.ok()) return form.error();
  const auto group = form.value().get("group");
  if (!group) return util::make_error("group_request: missing group");
  GroupStatusRequest request;
  request.group = *group;
  return request;
}

std::string GroupStatusResponse::encode() const {
  Form form;
  form.set("msg", "group_response");
  form.set("group", group);
  form.set_int("members", members);
  form.set_int("fresh", fresh);
  form.set_int("converged", converged ? 1 : 0);
  form.set_int("state", power::to_int(state));
  return form.encode();
}

util::Result<GroupStatusResponse> GroupStatusResponse::decode(
    const std::string& wire) {
  auto form = decode_as(wire, "group_response");
  if (!form.ok()) return form.error();
  const auto group = form.value().get("group");
  const auto members = form.value().get_int("members");
  const auto fresh = form.value().get_int("fresh");
  const auto converged = form.value().get_int("converged");
  const auto state = form.value().get_int("state");
  if (!group || !members || !fresh || !converged || !state.has_value()) {
    return util::make_error("group_response: missing fields");
  }
  GroupStatusResponse response;
  response.group = *group;
  response.members = *members;
  response.fresh = *fresh;
  response.converged = *converged != 0;
  response.state = power::from_int(int(*state));
  return response;
}

std::string QueryError::encode() const {
  Form form;
  form.set("msg", "error");
  form.set("reason", reason);
  return form.encode();
}

util::Result<QueryError> QueryError::decode(const std::string& wire) {
  auto form = decode_as(wire, "error");
  if (!form.ok()) return form.error();
  const auto reason = form.value().get("reason");
  if (!reason) return util::make_error("error: missing reason");
  QueryError error;
  error.reason = *reason;
  return error;
}

}  // namespace gw::proto
