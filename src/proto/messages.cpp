#include "proto/messages.h"

#include <cstdio>

#include "util/crc32.h"
#include "util/strings.h"

namespace gw::proto {
namespace {

std::string crc_hex(std::string_view body) {
  char buffer[16];
  std::snprintf(buffer, sizeof(buffer), "%08x", util::crc32(body));
  return buffer;
}

}  // namespace

std::string Form::encode() const {
  std::string body;
  for (const auto& [key, value] : fields_) {
    if (!body.empty()) body += '&';
    body += key;
    body += '=';
    body += value;
  }
  return body + '#' + crc_hex(body);
}

util::Result<Form> Form::decode(const std::string& wire) {
  const auto hash = wire.rfind('#');
  if (hash == std::string::npos) {
    return util::make_error("form: missing crc");
  }
  const std::string body = wire.substr(0, hash);
  const std::string crc = wire.substr(hash + 1);
  if (crc != crc_hex(body)) {
    return util::make_error("form: crc mismatch");
  }
  Form form;
  if (body.empty()) return form;
  for (const auto& pair : util::split(body, '&')) {
    const auto eq = pair.find('=');
    if (eq == std::string::npos) {
      return util::make_error("form: malformed field '" + pair + "'");
    }
    form.set(pair.substr(0, eq), pair.substr(eq + 1));
  }
  return form;
}

// --- StateReport ----------------------------------------------------------

std::string StateReport::encode() const {
  Form form;
  form.set("msg", "state_report");
  form.set("station", station);
  form.set_int("state", power::to_int(state));
  form.set_int("rtc_ms", day_ms);
  return form.encode();
}

util::Result<StateReport> StateReport::decode(const std::string& wire) {
  auto form = Form::decode(wire);
  if (!form.ok()) return form.error();
  if (form.value().get("msg").value_or("") != "state_report") {
    return util::make_error("state_report: wrong message type");
  }
  const auto station = form.value().get("station");
  const auto state = form.value().get_int("state");
  const auto rtc = form.value().get_int("rtc_ms");
  if (!station || !state || !rtc) {
    return util::make_error("state_report: missing fields");
  }
  StateReport report;
  report.station = *station;
  report.state = power::from_int(int(*state));
  report.day_ms = *rtc;
  return report;
}

// --- OverrideRequest --------------------------------------------------------

std::string OverrideRequest::encode() const {
  Form form;
  form.set("msg", "override_request");
  form.set("station", station);
  return form.encode();
}

util::Result<OverrideRequest> OverrideRequest::decode(
    const std::string& wire) {
  auto form = Form::decode(wire);
  if (!form.ok()) return form.error();
  if (form.value().get("msg").value_or("") != "override_request") {
    return util::make_error("override_request: wrong message type");
  }
  const auto station = form.value().get("station");
  if (!station) return util::make_error("override_request: missing station");
  OverrideRequest request;
  request.station = *station;
  return request;
}

// --- OverrideResponse -------------------------------------------------------

std::string OverrideResponse::encode() const {
  Form form;
  form.set("msg", "override_response");
  form.set_int("has", has_override ? 1 : 0);
  form.set_int("state", power::to_int(state));
  return form.encode();
}

util::Result<OverrideResponse> OverrideResponse::decode(
    const std::string& wire) {
  auto form = Form::decode(wire);
  if (!form.ok()) return form.error();
  if (form.value().get("msg").value_or("") != "override_response") {
    return util::make_error("override_response: wrong message type");
  }
  const auto has = form.value().get_int("has");
  const auto state = form.value().get_int("state");
  if (!has || !state) {
    return util::make_error("override_response: missing fields");
  }
  OverrideResponse response;
  response.has_override = *has != 0;
  response.state = power::from_int(int(*state));
  return response;
}

}  // namespace gw::proto
