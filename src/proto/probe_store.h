// Probe-side reading store with task-completion semantics.
//
// §V's saving grace: "the task was not marked as complete in the probes; so
// many missing readings were obtained in subsequent days." The store keeps
// every reading until the base station has confirmed it, so a failed or
// truncated session simply leaves work for tomorrow.
#pragma once

#include <cstdint>
#include <deque>
#include <set>
#include <vector>

#include "proto/reading.h"

namespace gw::proto {

class ProbeStore {
 public:
  void add(ProbeReading reading) { pending_.push_back(reading); }

  [[nodiscard]] std::size_t pending_count() const { return pending_.size(); }
  [[nodiscard]] bool empty() const { return pending_.empty(); }

  // Everything awaiting delivery, oldest first (what the probe streams when
  // the base station queries it).
  [[nodiscard]] const std::deque<ProbeReading>& pending() const {
    return pending_;
  }

  // Lookup by sequence number (individual re-request path).
  [[nodiscard]] const ProbeReading* find(std::uint32_t seq) const {
    for (const auto& reading : pending_) {
      if (reading.seq == seq) return &reading;
    }
    return nullptr;
  }

  // The base station confirms delivery of a set of sequence numbers; only
  // then do readings leave the probe. Returns how many were released.
  std::size_t confirm_delivered(const std::set<std::uint32_t>& seqs) {
    const std::size_t before = pending_.size();
    std::deque<ProbeReading> keep;
    for (auto& reading : pending_) {
      if (!seqs.contains(reading.seq)) keep.push_back(reading);
    }
    pending_ = std::move(keep);
    delivered_total_ += before - pending_.size();
    return before - pending_.size();
  }

  [[nodiscard]] std::size_t delivered_total() const {
    return delivered_total_;
  }

  template <class Archive>
  void persist(Archive& ar) {
    ar.value(pending_);
    ar.value(delivered_total_);
  }

 private:
  std::deque<ProbeReading> pending_;
  std::size_t delivered_total_ = 0;
};

}  // namespace gw::proto
