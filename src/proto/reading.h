// Subglacial probe readings and their wire format.
//
// Probes sit ~70 m under the ice (§I) measuring conductivity, orientation
// and pressure. A reading is one sample of that suite; on the radio it
// travels as one framed packet with CRC. Sizes are calibrated so a summer
// backlog of 3000 readings is a realistic multi-hour transfer at probe
// radio rates (§V).
#pragma once

#include <cstdint>

#include "util/units.h"

namespace gw::proto {

struct ProbeReading {
  int probe_id = 0;
  std::uint32_t seq = 0;       // per-probe monotonically increasing
  std::int64_t sampled_ms = 0; // probe RTC timestamp
  double conductivity_us = 0.0;
  double pressure_kpa = 0.0;
  double tilt_deg = 0.0;
  double temperature_c = 0.0;

  template <class Archive>
  void persist(Archive& ar) {
    ar.value(probe_id);
    ar.value(seq);
    ar.value(sampled_ms);
    ar.value(conductivity_us);
    ar.value(pressure_kpa);
    ar.value(tilt_deg);
    ar.value(temperature_c);
  }
};

// Payload bytes of one serialised reading.
inline constexpr util::Bytes kReadingPayload{48};
// Framing: sync, addressing, length, sequence, CRC-32.
inline constexpr util::Bytes kFrameOverhead{16};
inline constexpr util::Bytes kReadingWireSize{kReadingPayload.count() +
                                              kFrameOverhead.count()};
// A retransmission request names one sequence number.
inline constexpr util::Bytes kRequestWireSize{24};
// A link-layer acknowledgement (stop-and-wait baseline only).
inline constexpr util::Bytes kAckWireSize{20};

}  // namespace gw::proto
