// Base-station <-> subglacial-probe radio link.
//
// Through-ice radio quality is seasonal: "radio communication with the
// probes is better in the winter due to the drier ice conditions" (§III);
// in summer, 3000 readings commonly lost ~400 packets across "the weakest
// link (due to summer water)" (§V). Packet-loss probability comes from the
// melt model; airtime from the link rate. Both transfer protocols (§V NACK
// and the stop-and-wait baseline) run over this.
#pragma once

#include "env/melt.h"
#include "env/temperature.h"
#include "sim/time.h"
#include "util/rng.h"
#include "util/units.h"

namespace gw::proto {

struct ProbeLinkConfig {
  util::BitsPerSecond rate{2400.0};  // through-ice low-rate radio
  sim::Duration turnaround = sim::milliseconds(40);  // rx/tx switch
  // Extra loss multiplier for a specific probe (antenna orientation, depth);
  // 1.0 = the environment's nominal loss.
  double link_quality_factor = 1.0;
};

class ProbeLink {
 public:
  ProbeLink(env::MeltModel& melt, env::TemperatureModel& temperature,
            util::Rng rng, ProbeLinkConfig config = {})
      : melt_(melt), temperature_(temperature), config_(config), rng_(rng) {}

  // Instantaneous per-packet loss probability.
  [[nodiscard]] double loss_probability(sim::SimTime t) {
    return std::min(0.95, melt_.probe_link_loss(t, temperature_) *
                              config_.link_quality_factor);
  }

  // Draws whether a single packet survives the trip at time t.
  [[nodiscard]] bool packet_survives(sim::SimTime t) {
    const bool survived = !rng_.bernoulli(loss_probability(t));
    ++packets_attempted_;
    if (!survived) ++packets_lost_;
    return survived;
  }

  // Airtime for one frame of the given wire size, including turnaround.
  [[nodiscard]] sim::Duration airtime(util::Bytes wire_size) const {
    return sim::seconds(util::transfer_seconds(wire_size, config_.rate)) +
           config_.turnaround;
  }

  [[nodiscard]] std::uint64_t packets_attempted() const {
    return packets_attempted_;
  }
  [[nodiscard]] std::uint64_t packets_lost() const { return packets_lost_; }

  [[nodiscard]] const ProbeLinkConfig& config() const { return config_; }

  template <class Archive>
  void persist(Archive& ar) {
    ar.value(rng_);
    ar.value(packets_attempted_);
    ar.value(packets_lost_);
  }

 private:
  env::MeltModel& melt_;
  env::TemperatureModel& temperature_;
  ProbeLinkConfig config_;
  util::Rng rng_;
  std::uint64_t packets_attempted_ = 0;
  std::uint64_t packets_lost_ = 0;
};

}  // namespace gw::proto
