#include "env/wind.h"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace gw::env {

WindModel::WindModel(WindConfig config, util::Rng rng)
    : config_(config), rng_(rng) {}

void WindModel::refresh_day(sim::SimTime t) {
  const std::int64_t day = t.millis_since_epoch() / 86'400'000;
  if (day == day_) return;
  day_ = day;
  const int doy = sim::day_of_year(t);
  // Seasonal Weibull scale: peaks mid-January (doy ~15).
  const double seasonal =
      config_.scale_mean +
      config_.scale_winter_boost *
          std::cos(2.0 * std::numbers::pi * (doy - 15) / 365.0);
  daily_mean_ = rng_.weibull(config_.weibull_shape, std::max(0.5, seasonal));
}

void WindModel::refresh_hour(sim::SimTime t) {
  const std::int64_t hour = t.millis_since_epoch() / 3'600'000;
  if (hour == hour_) return;
  hour_ = hour;
  const double innovation =
      rng_.normal(0.0, config_.gust_stddev *
                           std::sqrt(1.0 - config_.gust_persistence *
                                               config_.gust_persistence));
  gust_state_ = config_.gust_persistence * gust_state_ + innovation;
}

util::MetresPerSecond WindModel::speed(sim::SimTime t) {
  refresh_day(t);
  refresh_hour(t);
  const double v = daily_mean_ * std::max(0.0, 1.0 + gust_state_);
  return util::MetresPerSecond{v};
}

}  // namespace gw::env
