// Environment facade: one object owning every weather/glacier model with
// independent RNG streams forked from a single seed. Stations and chargers
// take an Environment& so a whole deployment is reproducible from one seed.
#pragma once

#include "env/gps_sky.h"
#include "env/interference.h"
#include "env/melt.h"
#include "env/snow.h"
#include "env/solar.h"
#include "env/temperature.h"
#include "env/wind.h"
#include "util/rng.h"

namespace gw::env {

struct EnvironmentConfig {
  SolarConfig solar;
  WindConfig wind;
  TemperatureConfig temperature;
  SnowConfig snow;
  MeltConfig melt;
  InterferenceConfig interference;
  RadioSite radio_site = RadioSite::kGlacier;
  GpsSkyConfig gps_sky;
};

class Environment {
 public:
  Environment(EnvironmentConfig config, std::uint64_t seed)
      : rng_(seed),
        solar_(config.solar, rng_.fork("solar")),
        wind_(config.wind, rng_.fork("wind")),
        temperature_(config.temperature, rng_.fork("temperature")),
        snow_(config.snow, rng_.fork("snow")),
        melt_(config.melt, rng_.fork("melt")),
        interference_(config.interference, config.radio_site,
                      rng_.fork("interference")),
        gps_sky_(config.gps_sky, rng_.fork("gps_sky")) {}

  explicit Environment(std::uint64_t seed)
      : Environment(EnvironmentConfig{}, seed) {}

  [[nodiscard]] SolarModel& solar() { return solar_; }
  [[nodiscard]] WindModel& wind() { return wind_; }
  [[nodiscard]] TemperatureModel& temperature() { return temperature_; }
  [[nodiscard]] SnowModel& snow() { return snow_; }
  [[nodiscard]] MeltModel& melt() { return melt_; }
  [[nodiscard]] InterferenceModel& interference() { return interference_; }
  [[nodiscard]] GpsSky& gps_sky() { return gps_sky_; }

  // Convenience: fork a named RNG stream tied to this environment's seed
  // (used by device fault models so they stay reproducible too).
  [[nodiscard]] util::Rng fork_rng(std::string_view name) const {
    return rng_.fork(name);
  }

  // Snapshot support (docs/SNAPSHOT.md): every model's stochastic state,
  // in construction order. Configs are rebuilt with the world, not saved.
  template <class Archive>
  void persist(Archive& ar) {
    ar.value(rng_);
    ar.value(solar_);
    ar.value(wind_);
    ar.value(temperature_);
    ar.value(snow_);
    ar.value(melt_);
    ar.value(interference_);
    ar.value(gps_sky_);
  }

 private:
  util::Rng rng_;
  SolarModel solar_;
  WindModel wind_;
  TemperatureModel temperature_;
  SnowModel snow_;
  MeltModel melt_;
  InterferenceModel interference_;
  GpsSky gps_sky_;
};

}  // namespace gw::env
