#include "env/temperature.h"

#include <cmath>
#include <numbers>

namespace gw::env {

TemperatureModel::TemperatureModel(TemperatureConfig config, util::Rng rng)
    : config_(config), rng_(rng) {}

util::Celsius TemperatureModel::air(sim::SimTime t) {
  const std::int64_t day = t.millis_since_epoch() / 86'400'000;
  if (day != day_) {
    day_ = day;
    const double innovation =
        rng_.normal(0.0, config_.noise_stddev_c *
                             std::sqrt(1.0 - config_.noise_persistence *
                                                 config_.noise_persistence));
    noise_state_ =
        config_.noise_persistence * noise_state_ + innovation;
  }
  const int doy = sim::day_of_year(t);
  // Warmest around late July (doy ~205).
  const double seasonal =
      config_.annual_mean_c +
      config_.seasonal_amplitude_c *
          std::cos(2.0 * std::numbers::pi * (doy - 205) / 365.0);
  const double hour = sim::time_of_day(t).to_hours();
  // Warmest mid-afternoon (~15:00).
  const double diurnal =
      config_.diurnal_amplitude_c *
      std::cos(2.0 * std::numbers::pi * (hour - 15.0) / 24.0);
  return util::Celsius{seasonal + diurnal + noise_state_};
}

}  // namespace gw::env
