// Wind speed model.
//
// Wind is the base station's main winter energy source in Norway and an
// unreliable one in Iceland, where heavy snow can bury the turbine and the
// paper notes the expected snow "would even stop that source from being
// useful". Daily mean speeds are Weibull-distributed with a seasonal scale
// (stormier winters); within a day an AR(1) gust process modulates the mean.
#pragma once

#include "sim/time.h"
#include "util/rng.h"
#include "util/units.h"

namespace gw::env {

struct WindConfig {
  double weibull_shape = 2.0;
  double scale_mean = 6.5;       // m/s annual mean of the Weibull scale
  double scale_winter_boost = 2.5;  // added around mid-winter
  double gust_stddev = 0.25;     // relative intra-day modulation
  double gust_persistence = 0.7;
};

class WindModel {
 public:
  WindModel(WindConfig config, util::Rng rng);

  [[nodiscard]] util::MetresPerSecond speed(sim::SimTime t);

  [[nodiscard]] const WindConfig& config() const { return config_; }

  template <class Archive>
  void persist(Archive& ar) {
    ar.value(rng_);
    ar.value(day_);
    ar.value(hour_);
    ar.value(daily_mean_);
    ar.value(gust_state_);
  }

 private:
  void refresh_day(sim::SimTime t);
  void refresh_hour(sim::SimTime t);

  WindConfig config_;
  util::Rng rng_;
  std::int64_t day_ = -1;
  std::int64_t hour_ = -1;
  double daily_mean_ = 0.0;
  double gust_state_ = 0.0;
};

}  // namespace gw::env
