// Air and enclosure temperature.
//
// Temperature matters twice: lead-acid capacity derates in the cold, and
// the Gumsense board reports internal temperature as one of its telemetry
// streams (§II). Seasonal sinusoid + diurnal swing + persistent noise.
#pragma once

#include "sim/time.h"
#include "util/rng.h"
#include "util/units.h"

namespace gw::env {

// Calibrated to the paper's phenology: afternoon maxima first cross 0°C in
// early April (Fig 6's melt onset reaching the bed by late April), deep
// winter stays well below freezing, and July afternoons reach ~+13°C.
struct TemperatureConfig {
  double annual_mean_c = -1.0;     // glacier-margin annual mean
  double seasonal_amplitude_c = 10.0;
  double diurnal_amplitude_c = 4.0;
  double noise_stddev_c = 2.0;
  double noise_persistence = 0.9;
};

class TemperatureModel {
 public:
  TemperatureModel(TemperatureConfig config, util::Rng rng);

  [[nodiscard]] util::Celsius air(sim::SimTime t);

  // Enclosure runs slightly warmer than ambient (electronics + insulation).
  [[nodiscard]] util::Celsius enclosure(sim::SimTime t) {
    return air(t) + util::Celsius{3.0};
  }

  template <class Archive>
  void persist(Archive& ar) {
    ar.value(rng_);
    ar.value(day_);
    ar.value(noise_state_);
  }

 private:
  TemperatureConfig config_;
  util::Rng rng_;
  std::int64_t day_ = -1;
  double noise_state_ = 0.0;
};

}  // namespace gw::env
