// Solar irradiance at the deployment site.
//
// Vatnajökull sits at ~64°N: near-total darkness around the winter solstice
// and ~20 h days in June. The model computes solar elevation from the
// standard declination/hour-angle formulas, converts to clear-sky
// irradiance, and multiplies by a slowly-varying stochastic cloud factor.
// This is what makes winter the hard season the paper designs for: the
// solar panel contributes essentially nothing from November to February.
#pragma once

#include "sim/time.h"
#include "util/rng.h"
#include "util/units.h"

namespace gw::env {

struct SolarConfig {
  double latitude_deg = 64.3;   // Vatnajökull ice cap
  double clear_sky_peak = 990;  // W/m^2 at solar elevation 90 deg
  double cloud_mean = 0.55;     // long-run mean transmission factor
  double cloud_stddev = 0.18;
  double cloud_persistence = 0.85;  // AR(1) day-to-day correlation
};

class SolarModel {
 public:
  SolarModel(SolarConfig config, util::Rng rng);

  // Sine of solar elevation (may be negative: sun below horizon).
  [[nodiscard]] double sin_elevation(sim::SimTime t) const;

  // Irradiance on a horizontal surface, including cloud attenuation.
  [[nodiscard]] util::WattsPerSquareMetre irradiance(sim::SimTime t);

  // Daylight length in hours for the day containing t (cloud-independent).
  [[nodiscard]] double daylight_hours(sim::SimTime t) const;

  [[nodiscard]] const SolarConfig& config() const { return config_; }

  // Snapshot support (docs/SNAPSHOT.md): the AR(1) cloud state and the RNG
  // stream are dynamics; the per-day geometry memo is deliberately not
  // saved — it is recomputed bit-identically on first use.
  template <class Archive>
  void persist(Archive& ar) {
    ar.value(rng_);
    ar.value(cloud_day_);
    ar.value(cloud_state_);
  }

 private:
  // Memoized per-day geometry: declination and daylight length depend only
  // on (latitude, day of year), yet the charger integrates irradiance every
  // simulated minute — recomputing sin/cos/tan of the declination per call
  // was pure waste. A single-entry cache fits the access pattern (simulated
  // time moves through one day at a time) and costs nothing to construct —
  // trials that never read the sun pay nothing. The cached factors are
  // computed with exactly the expressions the per-call formulas used, so
  // results are bit-identical.
  struct DayGeometry {
    double sin_decl = 0.0;
    double cos_decl = 0.0;
    double daylight_hours = 0.0;
  };

  const DayGeometry& geometry_for(int doy) const;
  double cloud_factor(sim::SimTime t);

  SolarConfig config_;
  util::Rng rng_;
  // Derived from config_.latitude at construction; pure caches.
  double sin_lat_ = 0.0;  // gwlint: allow(persist-coverage): derived cache
  double cos_lat_ = 0.0;  // gwlint: allow(persist-coverage): derived cache
  double lat_rad_ = 0.0;  // gwlint: allow(persist-coverage): derived cache
  mutable int cached_doy_ = -1;
  mutable DayGeometry cached_;
  // AR(1) cloud state, refreshed once per simulated day.
  std::int64_t cloud_day_ = -1;
  double cloud_state_ = 0.0;
};

}  // namespace gw::env
