// Solar irradiance at the deployment site.
//
// Vatnajökull sits at ~64°N: near-total darkness around the winter solstice
// and ~20 h days in June. The model computes solar elevation from the
// standard declination/hour-angle formulas, converts to clear-sky
// irradiance, and multiplies by a slowly-varying stochastic cloud factor.
// This is what makes winter the hard season the paper designs for: the
// solar panel contributes essentially nothing from November to February.
#pragma once

#include "sim/time.h"
#include "util/rng.h"
#include "util/units.h"

namespace gw::env {

struct SolarConfig {
  double latitude_deg = 64.3;   // Vatnajökull ice cap
  double clear_sky_peak = 990;  // W/m^2 at solar elevation 90 deg
  double cloud_mean = 0.55;     // long-run mean transmission factor
  double cloud_stddev = 0.18;
  double cloud_persistence = 0.85;  // AR(1) day-to-day correlation
};

class SolarModel {
 public:
  SolarModel(SolarConfig config, util::Rng rng);

  // Sine of solar elevation (may be negative: sun below horizon).
  [[nodiscard]] double sin_elevation(sim::SimTime t) const;

  // Irradiance on a horizontal surface, including cloud attenuation.
  [[nodiscard]] util::WattsPerSquareMetre irradiance(sim::SimTime t);

  // Daylight length in hours for the day containing t (cloud-independent).
  [[nodiscard]] double daylight_hours(sim::SimTime t) const;

  [[nodiscard]] const SolarConfig& config() const { return config_; }

 private:
  double cloud_factor(sim::SimTime t);

  SolarConfig config_;
  util::Rng rng_;
  // AR(1) cloud state, refreshed once per simulated day.
  std::int64_t cloud_day_ = -1;
  double cloud_state_ = 0.0;
};

}  // namespace gw::env
