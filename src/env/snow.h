// Snow accumulation and its operational consequences.
//
// Deep snow is a recurring antagonist in the paper: it buried and damaged
// the base station, ruled out a directional antenna on the café, and makes
// the wind turbine useless in an Icelandic winter. The model integrates
// daily accumulation (when cold, with storm events) against temperature-
// driven melt, and exposes derived factors: how much of the solar panel is
// occluded, whether the turbine is buried, and a storm flag used by the
// damage fault models.
#pragma once

#include "env/temperature.h"
#include "sim/time.h"
#include "util/rng.h"
#include "util/units.h"

namespace gw::env {

// Calibrated for Vatnajökull's heavy maritime snowfall (§II: snow "would
// even stop that [wind] source from being useful"; the base station was
// "damaged by deep snow"): several metres accumulate over winter, the panel
// goes dark mid-winter, the turbine is buried by early winter, and the pack
// melts out by early summer.
struct SnowConfig {
  double storm_probability_per_day = 0.10;  // in the accumulation season
  double storm_accumulation_m = 0.20;       // mean per storm event
  double background_accumulation_m = 0.012;  // per cold day
  double melt_rate_m_per_degree_day = 0.025;
  double panel_burial_depth_m = 1.2;   // panel fully occluded beyond this
  double turbine_burial_depth_m = 2.0;
};

// Forward-only: state integrates day by day from the first query onward, so
// callers must sample in chronological order (querying an earlier time
// returns the state already reached — exactly how a physical gauge behaves).
class SnowModel {
 public:
  SnowModel(SnowConfig config, util::Rng rng);

  // Advances internal state to the day containing t and returns snow depth.
  [[nodiscard]] util::Metres depth(sim::SimTime t,
                                   TemperatureModel& temperature);

  // Fraction of solar panel output lost to snow cover, in [0, 1].
  [[nodiscard]] double panel_occlusion(sim::SimTime t,
                                       TemperatureModel& temperature);

  [[nodiscard]] bool turbine_buried(sim::SimTime t,
                                    TemperatureModel& temperature);

  // True on days with an active storm event (drives structural damage
  // faults in the station models).
  [[nodiscard]] bool storm_today(sim::SimTime t,
                                 TemperatureModel& temperature);

  template <class Archive>
  void persist(Archive& ar) {
    ar.value(rng_);
    ar.value(day_);
    ar.value(depth_m_);
    ar.value(storm_today_);
  }

 private:
  void advance_to(sim::SimTime t, TemperatureModel& temperature);

  SnowConfig config_;
  util::Rng rng_;
  std::int64_t day_ = -1;
  double depth_m_ = 0.0;
  bool storm_today_ = false;
};

}  // namespace gw::env
