// GPS constellation visibility.
//
// §III: "each dGPS reading is approximately 165KB, although the exact size
// varies depending on the number of satellites available at the time of the
// reading." The visible-satellite count at a fixed site oscillates with the
// constellation's ~11 h 58 min orbital period (half a sidereal day) around
// a mean of ~9-10 for an open-sky site; an ice cap has excellent horizons.
// The model produces a smooth, deterministic count (two incommensurate
// harmonics + per-hour jitter) that drives dGPS file size, fix probability
// and fix time.
#pragma once

#include <algorithm>
#include <cmath>
#include <numbers>

#include "sim/time.h"
#include "util/rng.h"

namespace gw::env {

struct GpsSkyConfig {
  double mean_visible = 9.5;
  double orbital_amplitude = 1.8;   // main constellation-geometry swing
  double secondary_amplitude = 0.9; // beat against the second harmonic
  double jitter = 0.7;              // masking, multipath, outages
  int min_for_fix = 4;              // below this no position/time fix
};

class GpsSky {
 public:
  GpsSky(GpsSkyConfig config, util::Rng rng) : config_(config), rng_(rng) {}

  // Visible satellites at time t (>= 0, typically 5-13).
  [[nodiscard]] int visible(sim::SimTime t) {
    // Half a sidereal day: the constellation geometry repeats every
    // 11 h 57 m 58 s at a fixed site.
    constexpr double kHalfSiderealHours = 11.9661;
    const double hours =
        double(t.millis_since_epoch()) / 3.6e6;
    const double phase =
        2.0 * std::numbers::pi * hours / kHalfSiderealHours;
    const double smooth =
        config_.mean_visible +
        config_.orbital_amplitude * std::sin(phase) +
        config_.secondary_amplitude * std::sin(2.71 * phase + 1.3);
    refresh_jitter(t);
    const double n = smooth + jitter_state_;
    return std::max(0, int(std::lround(n)));
  }

  // Whether a position/time fix is possible right now.
  [[nodiscard]] bool fix_possible(sim::SimTime t) {
    return visible(t) >= config_.min_for_fix;
  }

  // Fix acquisition scales down as more satellites are in view.
  [[nodiscard]] sim::Duration fix_time(sim::SimTime t) {
    const int n = visible(t);
    if (n < config_.min_for_fix) return sim::minutes(30);  // effectively no
    const double seconds = 45.0 + 420.0 / double(n);
    return sim::seconds(seconds);
  }

  // RINEX-style observation volume scales with tracked satellites: file
  // size multiplier relative to the nominal (mean) sky.
  [[nodiscard]] double file_size_factor(sim::SimTime t) {
    return std::max(0.4, double(visible(t)) / config_.mean_visible);
  }

  [[nodiscard]] const GpsSkyConfig& config() const { return config_; }

  template <class Archive>
  void persist(Archive& ar) {
    ar.value(rng_);
    ar.value(jitter_hour_);
    ar.value(jitter_state_);
  }

 private:
  void refresh_jitter(sim::SimTime t) {
    const std::int64_t hour = t.millis_since_epoch() / 3'600'000;
    if (hour == jitter_hour_) return;
    jitter_hour_ = hour;
    jitter_state_ = rng_.normal(0.0, config_.jitter);
  }

  GpsSkyConfig config_;
  util::Rng rng_;
  std::int64_t jitter_hour_ = -1;
  double jitter_state_ = 0.0;
};

}  // namespace gw::env
