#include "env/snow.h"

#include <algorithm>

namespace gw::env {

SnowModel::SnowModel(SnowConfig config, util::Rng rng)
    : config_(config), rng_(rng) {}

void SnowModel::advance_to(sim::SimTime t, TemperatureModel& temperature) {
  const std::int64_t target_day = t.millis_since_epoch() / 86'400'000;
  if (day_ < 0) day_ = target_day - 1;
  while (day_ < target_day) {
    ++day_;
    const sim::SimTime noon{day_ * 86'400'000 + 43'200'000};
    const double temp_c = temperature.air(noon).value();
    storm_today_ = false;
    if (temp_c < 0.5) {
      depth_m_ += config_.background_accumulation_m;
      if (rng_.bernoulli(config_.storm_probability_per_day)) {
        storm_today_ = true;
        depth_m_ += rng_.exponential(1.0 / config_.storm_accumulation_m);
      }
    } else {
      // Degree-day melt.
      depth_m_ -= config_.melt_rate_m_per_degree_day * temp_c;
    }
    depth_m_ = std::max(0.0, depth_m_);
  }
}

util::Metres SnowModel::depth(sim::SimTime t, TemperatureModel& temperature) {
  advance_to(t, temperature);
  return util::Metres{depth_m_};
}

double SnowModel::panel_occlusion(sim::SimTime t,
                                  TemperatureModel& temperature) {
  advance_to(t, temperature);
  return std::clamp(depth_m_ / config_.panel_burial_depth_m, 0.0, 1.0);
}

bool SnowModel::turbine_buried(sim::SimTime t,
                               TemperatureModel& temperature) {
  advance_to(t, temperature);
  return depth_m_ >= config_.turbine_burial_depth_m;
}

bool SnowModel::storm_today(sim::SimTime t, TemperatureModel& temperature) {
  advance_to(t, temperature);
  return storm_today_;
}

}  // namespace gw::env
