#include "env/solar.h"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace gw::env {
namespace {

constexpr double kDegToRad = std::numbers::pi / 180.0;

// Solar declination (degrees) for 1-based day of year (Cooper's equation).
double declination_deg(int doy) {
  return 23.44 * std::sin(2.0 * std::numbers::pi * (284.0 + doy) / 365.0);
}

}  // namespace

SolarModel::SolarModel(SolarConfig config, util::Rng rng)
    : config_(config), rng_(rng), cloud_state_(config.cloud_mean) {
  lat_rad_ = config_.latitude_deg * kDegToRad;
  sin_lat_ = std::sin(lat_rad_);
  cos_lat_ = std::cos(lat_rad_);
}

const SolarModel::DayGeometry& SolarModel::geometry_for(int doy) const {
  if (doy != cached_doy_) {
    const double decl = declination_deg(doy) * kDegToRad;
    cached_.sin_decl = std::sin(decl);
    cached_.cos_decl = std::cos(decl);
    const double cos_h0 = -std::tan(lat_rad_) * std::tan(decl);
    if (cos_h0 <= -1.0) {
      cached_.daylight_hours = 24.0;  // midnight sun
    } else if (cos_h0 >= 1.0) {
      cached_.daylight_hours = 0.0;  // polar night
    } else {
      cached_.daylight_hours = 2.0 * std::acos(cos_h0) / (15.0 * kDegToRad);
    }
    cached_doy_ = doy;
  }
  return cached_;
}

double SolarModel::sin_elevation(sim::SimTime t) const {
  const DayGeometry& day = geometry_for(sim::day_of_year(t));
  const double hour = sim::time_of_day(t).to_hours();
  const double hour_angle = (hour - 12.0) * 15.0 * kDegToRad;
  return sin_lat_ * day.sin_decl +
         cos_lat_ * day.cos_decl * std::cos(hour_angle);
}

util::WattsPerSquareMetre SolarModel::irradiance(sim::SimTime t) {
  const double sin_el = sin_elevation(t);
  if (sin_el <= 0.0) return util::WattsPerSquareMetre{0.0};
  // Simple air-mass attenuation: direct+diffuse scale roughly with sin(el)
  // raised to a small extra power near the horizon.
  const double clear = config_.clear_sky_peak * sin_el *
                       std::pow(sin_el, 0.15);
  return util::WattsPerSquareMetre{clear * cloud_factor(t)};
}

double SolarModel::daylight_hours(sim::SimTime t) const {
  return geometry_for(sim::day_of_year(t)).daylight_hours;
}

double SolarModel::cloud_factor(sim::SimTime t) {
  const std::int64_t day = t.millis_since_epoch() / 86'400'000;
  if (day != cloud_day_) {
    // AR(1) walk around the mean; one draw per simulated day keeps weather
    // persistent across the diurnal cycle, as real fronts are.
    const double innovation =
        rng_.normal(0.0, config_.cloud_stddev *
                             std::sqrt(1.0 - config_.cloud_persistence *
                                                 config_.cloud_persistence));
    cloud_state_ = config_.cloud_mean +
                   config_.cloud_persistence *
                       (cloud_state_ - config_.cloud_mean) +
                   innovation;
    cloud_state_ = std::clamp(cloud_state_, 0.08, 1.0);
    cloud_day_ = day;
  }
  return cloud_state_;
}

}  // namespace gw::env
