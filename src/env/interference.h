// RF interference for the long-range 466 MHz radio-modem link.
//
// §II: lab testing of the long-range modems found frequent drop-outs whose
// rate varied with the *time of day*, implicating local interference;
// initial glacier tests looked cleaner. The model gives a per-minute
// drop-out probability with a diurnal "business hours" bump scaled by a
// site factor, so the architecture bench can reproduce the lab-vs-glacier
// difference and the ppp session model can draw disconnect events from it.
#pragma once

#include "sim/time.h"
#include "util/rng.h"

namespace gw::env {

enum class RadioSite { kLab, kGlacier };

struct InterferenceConfig {
  // Baseline drop-out probability per connected minute.
  double base_dropout_per_min = 0.004;
  // Extra during 08:00-20:00 local time at an urban site.
  double busy_hours_extra = 0.035;
  double lab_site_factor = 1.0;
  double glacier_site_factor = 0.25;
};

class InterferenceModel {
 public:
  InterferenceModel(InterferenceConfig config, RadioSite site, util::Rng rng)
      : config_(config), site_(site), rng_(rng) {}

  // Probability that an established link drops during the minute at t.
  [[nodiscard]] double dropout_probability(sim::SimTime t) const {
    const double hour = sim::time_of_day(t).to_hours();
    const bool busy = hour >= 8.0 && hour < 20.0;
    const double rate =
        config_.base_dropout_per_min + (busy ? config_.busy_hours_extra : 0.0);
    const double site_factor = site_ == RadioSite::kLab
                                   ? config_.lab_site_factor
                                   : config_.glacier_site_factor;
    return rate * site_factor;
  }

  // Draws whether the link drops in the minute at t.
  [[nodiscard]] bool dropout(sim::SimTime t) {
    return rng_.bernoulli(dropout_probability(t));
  }

  [[nodiscard]] RadioSite site() const { return site_; }

  template <class Archive>
  void persist(Archive& ar) {
    ar.value(rng_);
  }

 private:
  InterferenceConfig config_;
  RadioSite site_;  // gwlint: allow(persist-coverage): construction constant
  util::Rng rng_;
};

}  // namespace gw::env
