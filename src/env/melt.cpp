#include "env/melt.h"

#include <algorithm>
#include <cmath>

namespace gw::env {

MeltModel::MeltModel(MeltConfig config, util::Rng rng)
    : config_(config), rng_(rng), index_(config.winter_floor) {}

void MeltModel::advance_to(sim::SimTime t, TemperatureModel& temperature) {
  const std::int64_t target_day = t.millis_since_epoch() / 86'400'000;
  if (day_ < 0) {
    day_ = target_day - 1;
    // Initialise to the season: start from the floor in the cold half of
    // the year, from a wet state in summer.
    const int doy = sim::day_of_year(t);
    index_ = (doy > 150 && doy < 270) ? 0.8 : config_.winter_floor;
  }
  while (day_ < target_day) {
    ++day_;
    // Surface melt is driven by the afternoon maximum, not the daily mean —
    // spring afternoons cross 0°C weeks before the mean does, which is what
    // puts the Fig 6 conductivity rise in April.
    const sim::SimTime afternoon{day_ * 86'400'000 + 54'000'000};  // 15:00
    const double temp_c = temperature.air(afternoon).value();
    if (temp_c > 0.0) {
      index_ += config_.degree_day_gain * temp_c;
    }
    index_ -= config_.decay_per_day * (index_ - config_.winter_floor);
    index_ = std::clamp(index_, config_.winter_floor, 1.0);
  }
}

double MeltModel::water_index(sim::SimTime t, TemperatureModel& temperature) {
  advance_to(t, temperature);
  return index_;
}

util::MicroSiemens MeltModel::conductivity(sim::SimTime t,
                                           TemperatureModel& temperature,
                                           double probe_base_us,
                                           double probe_gain_us) {
  const double w = water_index(t, temperature);
  const double noise = rng_.normal(0.0, 0.15 + 0.4 * w);
  return util::MicroSiemens{
      std::max(0.0, probe_base_us + probe_gain_us * w + noise)};
}

double MeltModel::probe_link_loss(sim::SimTime t,
                                  TemperatureModel& temperature) {
  const double w = water_index(t, temperature);
  return config_.winter_packet_loss +
         (config_.summer_packet_loss - config_.winter_packet_loss) * w;
}

}  // namespace gw::env
