// Basal melt-water model.
//
// Two of the paper's observations hang off how much melt water reaches the
// glacier bed:
//   * Fig 6 — subglacial probe conductivity is flat through winter and
//     rises sharply when spring melt reaches the bed;
//   * §III/§V — probe radio works *better* in winter "due to the drier ice
//     conditions"; in summer 3000 readings commonly lost ~400 packets.
// The model integrates positive degree-days (with decay) into a water index
// in [0, 1]; conductivity and probe-link loss are both functions of it.
#pragma once

#include "env/temperature.h"
#include "sim/time.h"
#include "util/rng.h"
#include "util/units.h"

namespace gw::env {

struct MeltConfig {
  double degree_day_gain = 0.035;  // index gain per positive degree-day
  double decay_per_day = 0.04;     // drainage when input stops
  double winter_floor = 0.03;      // residual basal water in deep winter
  // Seasonal probe radio loss endpoints (calibrated to §V: ~400/3000 lost in
  // summer; winter "better").
  double winter_packet_loss = 0.02;
  double summer_packet_loss = 0.133;
};

// Forward-only like SnowModel: sample in chronological order.
class MeltModel {
 public:
  MeltModel(MeltConfig config, util::Rng rng);

  // Basal water index in [0, 1]; advances internal integration to t.
  [[nodiscard]] double water_index(sim::SimTime t,
                                   TemperatureModel& temperature);

  // Electrical conductivity seen by a probe. Probes differ in where they
  // sit relative to drainage channels, expressed as (base, gain) pairs.
  [[nodiscard]] util::MicroSiemens conductivity(sim::SimTime t,
                                                TemperatureModel& temperature,
                                                double probe_base_us,
                                                double probe_gain_us);

  // Packet-loss probability for the base-station <-> probe radio link.
  [[nodiscard]] double probe_link_loss(sim::SimTime t,
                                       TemperatureModel& temperature);

  [[nodiscard]] const MeltConfig& config() const { return config_; }

  template <class Archive>
  void persist(Archive& ar) {
    ar.value(rng_);
    ar.value(day_);
    ar.value(index_);
  }

 private:
  void advance_to(sim::SimTime t, TemperatureModel& temperature);

  MeltConfig config_;
  util::Rng rng_;
  std::int64_t day_ = -1;
  double index_ = 0.0;
};

}  // namespace gw::env
