// Nested parallelism policy: trials × shards.
//
// Two layers of this repo can each use every core: the MonteCarloRunner
// fans independent trials out across a pool (PR 3), and a ShardedSimulation
// fans the shards of *one* world out across its own pool. A bench that
// runs sharded worlds as trials must split the machine between the layers
// or oversubscribe it — worker threads multiply, not share.
//
// The policy (docs/PARALLELISM.md): outer trial parallelism wins. Trials
// are embarrassingly parallel — no barriers, no messages — so a thread
// spent there is never idle; shard workers synchronise every window and
// scale sub-linearly. Shards only get what the trial layer cannot use
// (fewer trials than cores, or a single interactive world).
#pragma once

#include <algorithm>
#include <cstddef>

namespace gw::runner {

struct ParallelPlan {
  unsigned trial_threads = 1;  // MonteCarloRunner pool size
  unsigned shard_workers = 1;  // ShardedSimulation workers per trial
};

// Splits `hardware` threads (0 is treated as 1) between `trials` outer
// jobs and `shards` shards per job. trial_threads * shard_workers never
// exceeds max(hardware, 1): the plan refuses to oversubscribe.
[[nodiscard]] inline ParallelPlan plan_nested(unsigned hardware,
                                              std::size_t trials,
                                              std::size_t shards) {
  if (hardware == 0) hardware = 1;
  if (trials == 0) trials = 1;
  if (shards == 0) shards = 1;
  ParallelPlan plan;
  plan.trial_threads = static_cast<unsigned>(
      std::min<std::size_t>(hardware, trials));
  const unsigned leftover = hardware / plan.trial_threads;
  plan.shard_workers = static_cast<unsigned>(
      std::min<std::size_t>(std::max(1u, leftover), shards));
  return plan;
}

}  // namespace gw::runner
