// Parallel Monte Carlo trial execution with deterministic aggregation.
//
// Every headline number in bench/ is an average over independent trials —
// 2000 probe-survival worlds, yield sweeps, fault soaks — and each trial
// builds a fully isolated world (its own sim::Simulation, env::Environment,
// forked util::Rng stream, obs sinks) from nothing but its trial index.
// That makes trials embarrassingly parallel *and* lets parallelism stay
// invisible in the output: results land in a vector indexed by trial, so
// aggregation order — and therefore every exported byte — is identical at
// 1, 2, or N threads (pinned by runner determinism tests).
//
// Usage contract (docs/PERFORMANCE.md):
//   * the trial callable must derive all randomness from the trial index
//     (fork a fresh util::Rng per trial; never share mutable state);
//   * anything captured by reference must be immutable for the duration of
//     run() — configs are fine, accumulators are not;
//   * aggregate over the returned vector on the caller's thread.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace gw::runner {

class MonteCarloRunner {
 public:
  // threads == 0 picks the hardware concurrency (at least 1). The pool is
  // fixed-size and reused across run() calls.
  explicit MonteCarloRunner(unsigned threads = 0);
  ~MonteCarloRunner();

  MonteCarloRunner(const MonteCarloRunner&) = delete;
  MonteCarloRunner& operator=(const MonteCarloRunner&) = delete;

  [[nodiscard]] unsigned threads() const {
    return static_cast<unsigned>(workers_.size());
  }

  // Evaluates fn(trial) for every trial in [0, trials) across the pool and
  // returns the results in trial order. Workers claim indices from a shared
  // queue, so the wall-clock schedule is nondeterministic — the output is
  // not. If any trial throws, the exception from the lowest-numbered
  // throwing trial is rethrown after all trials finish (a deterministic
  // choice; "first to fail on the clock" would race).
  template <typename Fn>
  auto run(std::size_t trials, Fn&& fn)
      -> std::vector<std::invoke_result_t<Fn&, std::size_t>> {
    using Result = std::invoke_result_t<Fn&, std::size_t>;
    static_assert(!std::is_void_v<Result>,
                  "trial callables must return their per-trial result");
    std::vector<std::optional<Result>> slots(trials);
    std::vector<std::exception_ptr> errors(trials);
    if (trials != 0) {
      dispatch(trials, [&](std::size_t trial) {
        try {
          slots[trial].emplace(fn(trial));
        } catch (...) {
          errors[trial] = std::current_exception();
        }
      });
    }
    for (std::size_t trial = 0; trial < trials; ++trial) {
      if (errors[trial]) std::rethrow_exception(errors[trial]);
    }
    std::vector<Result> results;
    results.reserve(trials);
    for (std::size_t trial = 0; trial < trials; ++trial) {
      results.push_back(std::move(*slots[trial]));
    }
    return results;
  }

  // Warm-prefix branching (docs/SNAPSHOT.md): evaluates `warm()` exactly
  // once on the calling thread, then runs trial(index, shared) across the
  // pool. The intended shape is warm() returning the serialised snapshot of
  // a prefix every trial shares (e.g. Fleet::save_snapshot() after the
  // burn-in), and each trial constructing its own world from the same
  // config and calling restore_snapshot(shared) before diverging — the
  // per-trial cost drops from (prefix + branch) to (restore + branch).
  // The shared value is read-only for the whole run: trials receive it by
  // const reference and must not mutate through it (same aliasing contract
  // as run()'s captured configs).
  template <typename WarmFn, typename TrialFn>
  auto run_forked(std::size_t trials, WarmFn&& warm, TrialFn&& trial)
      -> std::vector<std::invoke_result_t<
          TrialFn&, std::size_t, const std::invoke_result_t<WarmFn&>&>> {
    const auto shared = warm();
    return run(trials, [&trial, &shared](std::size_t index) {
      return trial(index, shared);
    });
  }

 private:
  // All per-job state lives in one heap block that workers snapshot (as a
  // shared_ptr) under the mutex before claiming anything. A worker that
  // oversleeps a job can therefore never claim indices against a later
  // job's bound or invoke a later job's task — it only ever drains the job
  // it was woken for, whose queue is already exhausted.
  struct Job {
    std::function<void(std::size_t)> task;
    std::size_t trials = 0;
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> completed{0};
  };

  // Publishes one job to the pool and blocks until every index is done.
  void dispatch(std::size_t trials, std::function<void(std::size_t)> task);
  void worker_loop();

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable work_ready_;
  std::condition_variable job_done_;
  std::shared_ptr<Job> job_;  // guarded by mutex_; non-null while a job is live
  std::uint64_t epoch_ = 0;   // bumped per job so workers never re-enter one
  bool stop_ = false;
};

}  // namespace gw::runner
