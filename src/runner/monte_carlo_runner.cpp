#include "runner/monte_carlo_runner.h"

#include <algorithm>
#include <cstdint>

namespace gw::runner {

MonteCarloRunner::MonteCarloRunner(unsigned threads) {
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

MonteCarloRunner::~MonteCarloRunner() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void MonteCarloRunner::dispatch(std::size_t trials,
                                std::function<void(std::size_t)> task) {
  auto job = std::make_shared<Job>();
  job->task = std::move(task);
  job->trials = trials;
  std::unique_lock<std::mutex> lock(mutex_);
  job_ = job;
  ++epoch_;
  work_ready_.notify_all();
  job_done_.wait(lock, [&] {
    return job->completed.load(std::memory_order_acquire) >= job->trials;
  });
  job_ = nullptr;
}

void MonteCarloRunner::worker_loop() {
  std::uint64_t seen_epoch = 0;
  for (;;) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_ready_.wait(lock,
                       [&] { return stop_ || epoch_ != seen_epoch; });
      if (stop_) return;
      seen_epoch = epoch_;
      job = job_;
    }
    // The job can already be retired (job_ reset to null) if this worker
    // overslept it entirely; there is nothing left to claim.
    if (!job) continue;
    for (;;) {
      const std::size_t trial =
          job->next.fetch_add(1, std::memory_order_relaxed);
      if (trial >= job->trials) break;
      job->task(trial);
      if (job->completed.fetch_add(1, std::memory_order_acq_rel) + 1 ==
          job->trials) {
        std::lock_guard<std::mutex> lock(mutex_);
        job_done_.notify_all();
      }
    }
  }
}

}  // namespace gw::runner
