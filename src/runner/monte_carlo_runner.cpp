#include "runner/monte_carlo_runner.h"

#include <algorithm>
#include <cstdint>

namespace gw::runner {

MonteCarloRunner::MonteCarloRunner(unsigned threads) {
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

MonteCarloRunner::~MonteCarloRunner() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void MonteCarloRunner::dispatch(std::size_t trials,
                                std::function<void(std::size_t)> task) {
  std::unique_lock<std::mutex> lock(mutex_);
  task_ = std::move(task);
  trials_ = trials;
  next_trial_.store(0, std::memory_order_relaxed);
  completed_.store(0, std::memory_order_relaxed);
  ++epoch_;
  work_ready_.notify_all();
  job_done_.wait(lock, [this] {
    return completed_.load(std::memory_order_acquire) == trials_;
  });
  task_ = nullptr;
}

void MonteCarloRunner::worker_loop() {
  std::uint64_t seen_epoch = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_ready_.wait(lock,
                       [&] { return stop_ || epoch_ != seen_epoch; });
      if (stop_) return;
      seen_epoch = epoch_;
    }
    const std::size_t trials = trials_;
    for (;;) {
      const std::size_t trial =
          next_trial_.fetch_add(1, std::memory_order_relaxed);
      if (trial >= trials) break;
      task_(trial);
      if (completed_.fetch_add(1, std::memory_order_acq_rel) + 1 == trials) {
        std::lock_guard<std::mutex> lock(mutex_);
        job_done_.notify_all();
      }
    }
  }
}

}  // namespace gw::runner
