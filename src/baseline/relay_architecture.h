// The rejected architecture: shared long-range radio link + relay (§II).
//
// Norway's system ran a ppp/IP link over 500 mW 466 MHz radio modems from
// the glacier base station to a café whose end stayed powered all year; the
// café forwarded data onward. Porting that to Iceland would have meant a
// *battery-powered* relay whose radio must be awake exactly when the base
// station transmits, a directional antenna unlikely to survive winter, and
// a single point of failure in front of every byte. This model reproduces
// that architecture faithfully enough to measure what the paper argues:
//
//   * energy per delivered byte — radio modem at 2000 bps/3960 mW loses to
//     GPRS at 5000 bps/2640 mW by ~3.7x, and the relay pays *again* to
//     forward (the "twofold power saving" of §II is the conservative
//     system-level statement);
//   * window synchronisation — both ends must be up simultaneously; RTC
//     skew beyond the guard band misses the whole day;
//   * fate-sharing — a dead relay silences the base station entirely.
//
// bench_architecture runs this against the dual-GPRS station::Deployment.
#pragma once

#include <memory>

#include "env/environment.h"
#include "hw/gprs_modem.h"
#include "hw/radio_modem.h"
#include "power/battery.h"
#include "power/chargers.h"
#include "power/power_system.h"
#include "proto/ppp_link.h"
#include "sim/simulation.h"
#include "util/rng.h"
#include "util/units.h"

namespace gw::baseline {

struct RelayConfig {
  // Daily payload the base station must get off the glacier.
  util::Bytes base_daily_payload = util::kib(400);
  // The relay's own sensing payload, forwarded over its uplink.
  util::Bytes relay_daily_payload = util::kib(180);
  // Daily window the relay keeps its radio powered, waiting for the base.
  sim::Duration relay_listen_window = sim::hours(2);
  // Clock skew between the two stations' windows (std-dev, drawn daily).
  sim::Duration skew_stddev = sim::minutes(2);
  // Guard band: the base must start dialling while the relay listens.
  // If |skew| > listen window the day is lost outright.
  sim::Duration wake_time = sim::hours(12);
  // Relay hard failure (storm damage / battery death) on this day; <0 = never.
  int relay_fails_on_day = -1;
  proto::PppConfig ppp;
  hw::RadioModemConfig radio;
  hw::GprsConfig gprs;  // the relay's uplink (Iceland variant)
};

struct RelayDayOutcome {
  bool window_aligned = false;
  bool link_established = false;
  bool base_data_delivered = false;   // made it all the way to Southampton
  bool relay_data_delivered = false;
  util::Bytes delivered{0};
};

struct RelayStats {
  int days = 0;
  int days_window_missed = 0;   // skew exceeded the listen window
  int days_link_failed = 0;     // dial/interference defeated the transfer
  int days_delivered = 0;
  int days_relay_dead = 0;
  util::Bytes delivered_total{0};
};

// Event-driven enough for energy accounting, day-driven for the protocol:
// each simulated day draws the skew, runs the window, and integrates the
// radio/GPRS on-time into the two PowerSystems.
class RelayDeployment {
 public:
  RelayDeployment(sim::Simulation& simulation, env::Environment& environment,
                  util::Rng rng, RelayConfig config = {});

  // Runs N daily windows (advancing the shared simulation clock).
  void run_days(int days);

  [[nodiscard]] const RelayStats& stats() const { return stats_; }
  [[nodiscard]] power::PowerSystem& base_power() { return *base_power_; }
  [[nodiscard]] power::PowerSystem& relay_power() { return *relay_power_; }

  // Comms energy actually spent (radio modems + relay GPRS), for the
  // architecture comparison.
  [[nodiscard]] util::Joules comms_energy() const;

 private:
  RelayDayOutcome run_window();

  sim::Simulation& simulation_;
  env::Environment& environment_;
  RelayConfig config_;
  util::Rng rng_;
  std::unique_ptr<power::PowerSystem> base_power_;
  std::unique_ptr<power::PowerSystem> relay_power_;
  std::unique_ptr<hw::RadioModem> base_radio_;
  std::unique_ptr<hw::RadioModem> relay_radio_;
  std::unique_ptr<hw::GprsModem> relay_gprs_;
  std::unique_ptr<proto::PppLink> ppp_;
  RelayStats stats_;
  int day_index_ = 0;
};

}  // namespace gw::baseline
