#include "baseline/relay_architecture.h"

#include <cmath>

namespace gw::baseline {

RelayDeployment::RelayDeployment(sim::Simulation& simulation,
                                 env::Environment& environment,
                                 util::Rng rng, RelayConfig config)
    : simulation_(simulation),
      environment_(environment),
      config_(config),
      rng_(rng) {
  power::PowerSystemConfig power_config;
  power_config.battery.initial_soc = 0.9;
  base_power_ = std::make_unique<power::PowerSystem>(simulation, environment,
                                                     power_config);
  relay_power_ = std::make_unique<power::PowerSystem>(simulation, environment,
                                                      power_config);
  base_radio_ = std::make_unique<hw::RadioModem>(
      simulation, *base_power_, environment.interference(), config.radio);
  relay_radio_ = std::make_unique<hw::RadioModem>(
      simulation, *relay_power_, environment.interference(), config.radio);
  relay_gprs_ = std::make_unique<hw::GprsModem>(
      simulation, *relay_power_, rng_.fork("relay_gprs"), config.gprs);
  ppp_ = std::make_unique<proto::PppLink>(*base_radio_, rng_.fork("ppp"),
                                          config.ppp);
}

void RelayDeployment::run_days(int days) {
  for (int i = 0; i < days; ++i) {
    // Advance to the next window.
    const sim::SimTime window =
        sim::start_of_day(simulation_.now()) + sim::days(1) +
        config_.wake_time;
    simulation_.run_until(window);
    const RelayDayOutcome outcome = run_window();
    ++stats_.days;
    if (config_.relay_fails_on_day >= 0 &&
        day_index_ >= config_.relay_fails_on_day) {
      ++stats_.days_relay_dead;
    } else if (!outcome.window_aligned) {
      ++stats_.days_window_missed;
    } else if (!outcome.base_data_delivered) {
      ++stats_.days_link_failed;
    }
    if (outcome.base_data_delivered) {
      ++stats_.days_delivered;
      stats_.delivered_total += outcome.delivered;
    }
    ++day_index_;
  }
}

RelayDayOutcome RelayDeployment::run_window() {
  RelayDayOutcome outcome;

  // Relay dead: nothing listens, nothing forwards — total fate-sharing.
  if (config_.relay_fails_on_day >= 0 &&
      day_index_ >= config_.relay_fails_on_day) {
    return outcome;
  }

  // Draw today's clock skew between the two schedules (§II: even with GPS
  // time both ends run different code paths before the link comes up).
  const double skew_minutes =
      rng_.normal(0.0, config_.skew_stddev.to_minutes());
  const sim::Duration skew = sim::minutes(std::abs(skew_minutes));

  // The relay powers its radio for the whole listen window regardless —
  // that is the cost of being the called party on a battery.
  relay_radio_->power_on();
  const sim::Duration listen = config_.relay_listen_window;

  if (skew >= listen) {
    // Windows never overlapped: the day is lost before a bit moves.
    relay_power_->tick(listen);  // integrate the wasted listen energy
    relay_radio_->power_off();
    return outcome;
  }
  outcome.window_aligned = true;

  // Base dials once the windows overlap.
  base_radio_->power_on();
  const auto ppp_outcome =
      ppp_->transfer(simulation_.now() + skew, config_.base_daily_payload);

  // Integrate energy: base radio for its session; relay radio for the
  // full listen window (it cannot know when to stand down).
  const sim::Duration base_on = skew + ppp_outcome.elapsed;
  base_power_->tick(base_on);
  base_radio_->power_off();

  outcome.link_established = ppp_outcome.connected;
  const bool radio_leg_ok =
      ppp_outcome.reason == proto::PppDisconnectReason::kCompleted;

  // Relay energy, phase 1: radio listening for the whole window.
  relay_power_->tick(listen);

  // The relay now forwards base data + its own over GPRS (Iceland variant).
  if (radio_leg_ok) {
    relay_gprs_->power_on();
    const auto forward = relay_gprs_->attempt_transfer(
        config_.base_daily_payload + config_.relay_daily_payload);
    // Phase 2: integrate the forwarding time with the GPRS load on.
    relay_power_->tick(forward.elapsed);
    relay_gprs_->power_off();
    outcome.base_data_delivered = forward.success;
    outcome.relay_data_delivered = forward.success;
    if (forward.success) {
      outcome.delivered =
          config_.base_daily_payload + config_.relay_daily_payload;
    }
  }
  relay_radio_->power_off();

  return outcome;
}

util::Joules RelayDeployment::comms_energy() const {
  return base_power_->consumed_by("radio_modem") +
         relay_power_->consumed_by("radio_modem") +
         relay_power_->consumed_by("gprs");
}

}  // namespace gw::baseline
