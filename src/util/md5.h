// MD5 message digest (RFC 1321), self-contained.
//
// The deployment verified remote code updates by MD5-summing the downloaded
// file on the station and beaconing the digest back over HTTP GET (§VI).
// core::UpdateManager reproduces that pipeline, so the library carries its
// own MD5 — there is no external crypto dependency in the repository.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>

namespace gw::util {

class Md5 {
 public:
  using Digest = std::array<std::uint8_t, 16>;

  Md5();

  void update(std::span<const std::uint8_t> data);
  void update(std::string_view data);

  // Finalises and returns the digest. The object must not be updated after.
  [[nodiscard]] Digest finish();

  // One-shot helpers.
  [[nodiscard]] static Digest digest(std::string_view data);
  [[nodiscard]] static std::string hex_digest(std::string_view data);
  [[nodiscard]] static std::string to_hex(const Digest& digest);

 private:
  void process_block(const std::uint8_t* block);

  std::uint32_t state_[4];
  std::uint64_t total_bytes_ = 0;
  std::array<std::uint8_t, 64> buffer_{};
  std::size_t buffered_ = 0;
  bool finished_ = false;
};

}  // namespace gw::util
