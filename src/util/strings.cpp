#include "util/strings.h"

#include <cmath>
#include <cstdio>

namespace gw::util {

std::vector<std::string> split(std::string_view text, char sep) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      parts.emplace_back(text.substr(start));
      return parts;
    }
    parts.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string trim(std::string_view text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return std::string(text.substr(begin, end - begin));
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.substr(0, prefix.size()) == prefix;
}

std::string format_fixed(double value, int decimals) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", decimals, value);
  return buffer;
}

std::string pad_left(std::string_view text, std::size_t width) {
  if (text.size() >= width) return std::string(text);
  return std::string(width - text.size(), ' ') + std::string(text);
}

std::string pad_right(std::string_view text, std::size_t width) {
  if (text.size() >= width) return std::string(text);
  return std::string(text) + std::string(width - text.size(), ' ');
}

}  // namespace gw::util
