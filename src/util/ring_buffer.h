// Fixed-capacity ring buffer.
//
// Mirrors the MSP430's RAM-resident sample store: the microcontroller logs a
// battery-voltage sample every 30 minutes (48/day) and the Gumstix drains
// them once a day (§III). Overwrite-oldest semantics match a bounded
// embedded log; contents are lost wholesale on brown-out, which the Msp430
// model exploits by simply clearing the buffer.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <vector>

namespace gw::util {

template <typename T>
class RingBuffer {
 public:
  explicit RingBuffer(std::size_t capacity)
      : storage_(capacity), capacity_(capacity) {
    if (capacity == 0) throw std::invalid_argument("RingBuffer capacity 0");
  }

  void push(T value) {
    storage_[head_] = std::move(value);
    head_ = (head_ + 1) % capacity_;
    if (size_ < capacity_) {
      ++size_;
    } else {
      tail_ = (tail_ + 1) % capacity_;  // overwrote the oldest element
    }
  }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] bool full() const { return size_ == capacity_; }

  // Oldest-first access; index 0 is the oldest retained element.
  [[nodiscard]] const T& at(std::size_t index) const {
    if (index >= size_) throw std::out_of_range("RingBuffer::at");
    return storage_[(tail_ + index) % capacity_];
  }

  // Drain oldest-first into a vector and clear.
  [[nodiscard]] std::vector<T> drain() {
    std::vector<T> out;
    out.reserve(size_);
    for (std::size_t i = 0; i < size_; ++i) out.push_back(at(i));
    clear();
    return out;
  }

  void clear() {
    head_ = 0;
    tail_ = 0;
    size_ = 0;
  }

  // Snapshot support (docs/SNAPSHOT.md): contents are saved oldest-first
  // and replayed through push(), so the restored buffer is observationally
  // identical even if the internal head/tail offsets differ.
  template <class Archive>
  void persist(Archive& ar) {
    if constexpr (Archive::kIsSaver) {
      ar.value(size_);
      for (std::size_t i = 0; i < size_; ++i) ar.value(at(i));
    } else {
      std::size_t n = 0;
      ar.value(n);
      clear();
      for (std::size_t i = 0; i < n; ++i) {
        T item{};
        ar.value(item);
        push(std::move(item));
      }
    }
  }

 private:
  // persist() replays the contents through push(), so everything but
  // size_ is reconstructed rather than named (see the comment above it).
  std::vector<T> storage_;  // gwlint: allow(persist-coverage): replay-rebuilt
  // gwlint: allow(persist-coverage): construction constant, never mutated
  std::size_t capacity_;
  std::size_t head_ = 0;  // gwlint: allow(persist-coverage): replay-rebuilt
  std::size_t tail_ = 0;  // gwlint: allow(persist-coverage): replay-rebuilt
  std::size_t size_ = 0;
};

}  // namespace gw::util
