#include "util/crc32.h"

#include <array>

namespace gw::util {
namespace {

constexpr std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1u) ? (0xedb88320u ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

constexpr auto kTable = make_table();

}  // namespace

std::uint32_t crc32(std::span<const std::uint8_t> data, std::uint32_t seed) {
  std::uint32_t crc = seed ^ 0xffffffffu;
  for (std::uint8_t byte : data) {
    crc = kTable[(crc ^ byte) & 0xffu] ^ (crc >> 8);
  }
  return crc ^ 0xffffffffu;
}

std::uint32_t crc32(std::string_view data, std::uint32_t seed) {
  return crc32(std::span<const std::uint8_t>(
                   reinterpret_cast<const std::uint8_t*>(data.data()),
                   data.size()),
               seed);
}

}  // namespace gw::util
