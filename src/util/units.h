// Strong value types for physical quantities.
//
// Every quantity in the simulator (battery voltage, modem draw, harvested
// energy, data volumes, link rates) is carried in one of these wrappers so a
// Watts value can never silently be added to a Volts value. The wrappers are
// zero-overhead: a single double (or int64 for Bytes) with inline arithmetic.
//
// Cross-type physics (W = V * A, J = W * s, Ah = A * h, ...) is defined
// explicitly below; anything not defined is intentionally a compile error.
#pragma once

#include <cmath>
#include <compare>
#include <cstdint>

namespace gw::util {

// CRTP base for a double-valued quantity: same-type arithmetic, scalar
// scaling, and ordering. Derived types add only cross-type operators.
template <typename Derived>
class Quantity {
 public:
  constexpr Quantity() = default;
  constexpr explicit Quantity(double value) : value_(value) {}

  [[nodiscard]] constexpr double value() const { return value_; }

  friend constexpr Derived operator+(Derived a, Derived b) {
    return Derived{a.value() + b.value()};
  }
  friend constexpr Derived operator-(Derived a, Derived b) {
    return Derived{a.value() - b.value()};
  }
  friend constexpr Derived operator-(Derived a) { return Derived{-a.value()}; }
  friend constexpr Derived operator*(Derived a, double s) {
    return Derived{a.value() * s};
  }
  friend constexpr Derived operator*(double s, Derived a) {
    return Derived{a.value() * s};
  }
  friend constexpr Derived operator/(Derived a, double s) {
    return Derived{a.value() / s};
  }
  // Ratio of two like quantities is a plain number.
  friend constexpr double operator/(Derived a, Derived b) {
    return a.value() / b.value();
  }
  friend constexpr auto operator<=>(Derived a, Derived b) {
    return a.value() <=> b.value();
  }
  friend constexpr bool operator==(Derived a, Derived b) {
    return a.value() == b.value();
  }

  constexpr Derived& operator+=(Derived b) {
    value_ += b.value();
    return static_cast<Derived&>(*this);
  }
  constexpr Derived& operator-=(Derived b) {
    value_ -= b.value();
    return static_cast<Derived&>(*this);
  }

 private:
  double value_ = 0.0;
};

class Volts : public Quantity<Volts> {
  using Quantity::Quantity;
};
class Amps : public Quantity<Amps> {
  using Quantity::Quantity;
};
class Watts : public Quantity<Watts> {
  using Quantity::Quantity;
};
class Joules : public Quantity<Joules> {
  using Quantity::Quantity;
};
class AmpHours : public Quantity<AmpHours> {
  using Quantity::Quantity;
};
class WattHours : public Quantity<WattHours> {
  using Quantity::Quantity;
};
class Celsius : public Quantity<Celsius> {
  using Quantity::Quantity;
};
class Metres : public Quantity<Metres> {
  using Quantity::Quantity;
};
class MetresPerSecond : public Quantity<MetresPerSecond> {
  using Quantity::Quantity;
};
// Irradiance (solar flux density).
class WattsPerSquareMetre : public Quantity<WattsPerSquareMetre> {
  using Quantity::Quantity;
};
// Electrical conductivity of melt water, microsiemens (paper Fig 6).
class MicroSiemens : public Quantity<MicroSiemens> {
  using Quantity::Quantity;
};
class Ohms : public Quantity<Ohms> {
  using Quantity::Quantity;
};
class BitsPerSecond : public Quantity<BitsPerSecond> {
  using Quantity::Quantity;
};

// --- cross-type physics ---------------------------------------------------

constexpr Watts operator*(Volts v, Amps a) { return Watts{v.value() * a.value()}; }
constexpr Watts operator*(Amps a, Volts v) { return v * a; }
constexpr Amps operator/(Watts w, Volts v) { return Amps{w.value() / v.value()}; }
constexpr Volts operator/(Watts w, Amps a) { return Volts{w.value() / a.value()}; }
constexpr Volts operator*(Amps a, Ohms r) { return Volts{a.value() * r.value()}; }
constexpr Volts operator*(Ohms r, Amps a) { return a * r; }

// Energy from power over a duration in seconds.
constexpr Joules energy(Watts p, double seconds) {
  return Joules{p.value() * seconds};
}
// Charge from current over a duration in hours.
constexpr AmpHours charge(Amps i, double hours) {
  return AmpHours{i.value() * hours};
}

constexpr WattHours to_watt_hours(Joules j) { return WattHours{j.value() / 3600.0}; }
constexpr Joules to_joules(WattHours wh) { return Joules{wh.value() * 3600.0}; }
constexpr Joules to_joules(AmpHours ah, Volts nominal) {
  return Joules{ah.value() * nominal.value() * 3600.0};
}

// --- data volumes ----------------------------------------------------------

// Data size in bytes. Integer-valued: a transfer either moved a byte or did
// not; fractional bytes hide accounting bugs.
class Bytes {
 public:
  constexpr Bytes() = default;
  constexpr explicit Bytes(std::int64_t count) : count_(count) {}

  [[nodiscard]] constexpr std::int64_t count() const { return count_; }
  [[nodiscard]] constexpr std::int64_t bits() const { return count_ * 8; }
  [[nodiscard]] constexpr double kib() const { return double(count_) / 1024.0; }
  [[nodiscard]] constexpr double mib() const {
    return double(count_) / (1024.0 * 1024.0);
  }

  friend constexpr Bytes operator+(Bytes a, Bytes b) {
    return Bytes{a.count_ + b.count_};
  }
  friend constexpr Bytes operator-(Bytes a, Bytes b) {
    return Bytes{a.count_ - b.count_};
  }
  friend constexpr auto operator<=>(Bytes, Bytes) = default;
  constexpr Bytes& operator+=(Bytes b) {
    count_ += b.count_;
    return *this;
  }
  constexpr Bytes& operator-=(Bytes b) {
    count_ -= b.count_;
    return *this;
  }

 private:
  std::int64_t count_ = 0;
};

constexpr Bytes kib(double k) { return Bytes{std::int64_t(k * 1024.0)}; }
constexpr Bytes mib(double m) { return Bytes{std::int64_t(m * 1024.0 * 1024.0)}; }

// Ideal transfer time for `size` at `rate`, in seconds.
constexpr double transfer_seconds(Bytes size, BitsPerSecond rate) {
  return double(size.bits()) / rate.value();
}

// --- literals --------------------------------------------------------------

namespace literals {
constexpr Volts operator""_V(long double v) { return Volts{double(v)}; }
constexpr Volts operator""_V(unsigned long long v) { return Volts{double(v)}; }
constexpr Amps operator""_A(long double v) { return Amps{double(v)}; }
constexpr Amps operator""_mA(long double v) { return Amps{double(v) / 1000.0}; }
constexpr Amps operator""_mA(unsigned long long v) {
  return Amps{double(v) / 1000.0};
}
constexpr Watts operator""_W(long double v) { return Watts{double(v)}; }
constexpr Watts operator""_W(unsigned long long v) { return Watts{double(v)}; }
constexpr Watts operator""_mW(long double v) { return Watts{double(v) / 1000.0}; }
constexpr Watts operator""_mW(unsigned long long v) {
  return Watts{double(v) / 1000.0};
}
constexpr AmpHours operator""_Ah(long double v) { return AmpHours{double(v)}; }
constexpr AmpHours operator""_Ah(unsigned long long v) {
  return AmpHours{double(v)};
}
constexpr Celsius operator""_degC(long double v) { return Celsius{double(v)}; }
constexpr Celsius operator""_degC(unsigned long long v) {
  return Celsius{double(v)};
}
constexpr BitsPerSecond operator""_bps(unsigned long long v) {
  return BitsPerSecond{double(v)};
}
constexpr Bytes operator""_B(unsigned long long v) {
  return Bytes{std::int64_t(v)};
}
constexpr Bytes operator""_KiB(unsigned long long v) {
  return Bytes{std::int64_t(v) * 1024};
}
constexpr Bytes operator""_MiB(unsigned long long v) {
  return Bytes{std::int64_t(v) * 1024 * 1024};
}
}  // namespace literals

}  // namespace gw::util
