// Deterministic random number generation.
//
// The whole simulator must be reproducible from a single seed, so no code may
// touch std::random_device or the wall clock. Rng wraps xoshiro256** seeded
// via splitmix64 and provides the handful of distributions the environment
// and fault models need. Forking (`fork`) derives an independent stream so
// subsystems can draw without perturbing each other's sequences.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <numbers>
#include <string_view>

namespace gw::util {

// splitmix64: used for seeding and for cheap hash-like mixing.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// FNV-1a for deriving per-subsystem stream seeds from names.
constexpr std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

// The complete replayable state of one Rng stream: the four xoshiro256**
// words plus the construction seed (which fork() keys off, so a restored
// stream forks exactly like the original). Snapshots persist this verbatim.
struct RngState {
  std::array<std::uint64_t, 4> words{};
  std::uint64_t seed = 0;
};

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : seed_(seed) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  // Independent stream keyed by a subsystem name; deterministic per (seed,
  // name) pair and insensitive to how many draws the parent has made.
  [[nodiscard]] Rng fork(std::string_view name) const {
    std::uint64_t mix = seed_ ^ fnv1a(name);
    return Rng{splitmix64(mix)};
  }

  [[nodiscard]] std::uint64_t seed() const { return seed_; }

  // --- snapshot support (docs/SNAPSHOT.md) ---------------------------------

  // The stream's exact position; restore_state() resumes it mid-stream so
  // the continuation draws the same sequence the original would have.
  [[nodiscard]] RngState state() const {
    RngState s;
    for (int i = 0; i < 4; ++i) s.words[std::size_t(i)] = state_[i];
    s.seed = seed_;
    return s;
  }

  void restore_state(const RngState& s) {
    for (int i = 0; i < 4; ++i) state_[i] = s.words[std::size_t(i)];
    seed_ = s.seed;
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // Uniform in [0, 1).
  double uniform() { return double(next_u64() >> 11) * 0x1.0p-53; }

  // Uniform in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  // Uniform integer in [0, n). Multiply-shift mapping; bias is negligible
  // for the n << 2^64 values used here.
  std::uint64_t uniform_index(std::uint64_t n) {
    return static_cast<std::uint64_t>(
        (static_cast<__uint128_t>(next_u64()) * n) >> 64);
  }

  bool bernoulli(double p) { return uniform() < p; }

  // Standard normal via Box-Muller (single value; no caching keeps state
  // replay simple).
  double normal() {
    double u1 = uniform();
    while (u1 <= 0.0) u1 = uniform();
    const double u2 = uniform();
    return std::sqrt(-2.0 * std::log(u1)) *
           std::cos(2.0 * std::numbers::pi * u2);
  }

  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  double exponential(double rate) {
    double u = uniform();
    while (u <= 0.0) u = uniform();
    return -std::log(u) / rate;
  }

  // Weibull(k shape, lambda scale) — used for wind speed.
  double weibull(double shape, double scale) {
    double u = uniform();
    while (u <= 0.0) u = uniform();
    return scale * std::pow(-std::log(u), 1.0 / shape);
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4] = {};
  std::uint64_t seed_ = 0;
};

}  // namespace gw::util
