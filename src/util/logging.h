// In-memory structured log, modelled on the station logfile.
//
// On the deployed systems "all messages or errors are redirected to a
// standard logfile which is sent back daily with the data" (§VI), and log
// *volume* is an operational cost: a single first-contact with a probe after
// months offline produced >1 MB of log that cost time, power and money to
// transfer. The Logger therefore accounts bytes per severity so
// core::LogManager can budget verbosity, and the daily upload drains the
// buffer exactly like the real logfile.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace gw::util {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

[[nodiscard]] const char* to_string(LogLevel level);

struct LogRecord {
  std::int64_t time_ms = 0;
  LogLevel level = LogLevel::kInfo;
  std::string component;
  std::string message;

  // Approximate on-disk size of the rendered line, which is what the GPRS
  // link has to carry.
  [[nodiscard]] std::size_t rendered_bytes() const;

  template <class Archive>
  void persist(Archive& ar) {
    ar.value(time_ms);
    ar.value(level);
    ar.value(component);
    ar.value(message);
  }
};

class Logger {
 public:
  // Records below `threshold` are discarded at the source (the paper's
  // remedy for excessive binary output: tune verbosity before deployment).
  void set_threshold(LogLevel threshold) { threshold_ = threshold; }
  [[nodiscard]] LogLevel threshold() const { return threshold_; }

  void log(std::int64_t time_ms, LogLevel level, std::string component,
           std::string message);

  void debug(std::int64_t t, std::string c, std::string m) {
    log(t, LogLevel::kDebug, std::move(c), std::move(m));
  }
  void info(std::int64_t t, std::string c, std::string m) {
    log(t, LogLevel::kInfo, std::move(c), std::move(m));
  }
  void warn(std::int64_t t, std::string c, std::string m) {
    log(t, LogLevel::kWarn, std::move(c), std::move(m));
  }
  void error(std::int64_t t, std::string c, std::string m) {
    log(t, LogLevel::kError, std::move(c), std::move(m));
  }

  [[nodiscard]] const std::vector<LogRecord>& records() const {
    return records_;
  }
  [[nodiscard]] std::size_t pending_bytes() const { return pending_bytes_; }
  [[nodiscard]] std::size_t total_bytes_ever() const {
    return total_bytes_ever_;
  }
  [[nodiscard]] std::size_t dropped_records() const { return dropped_; }

  // Count of retained records at or above `level`.
  [[nodiscard]] std::size_t count_at_least(LogLevel level) const;

  // Daily upload: renders and removes everything, returning the text that
  // goes over the GPRS link with the data.
  [[nodiscard]] std::string drain();

  template <class Archive>
  void persist(Archive& ar) {
    ar.value(threshold_);
    ar.value(records_);
    ar.value(pending_bytes_);
    ar.value(total_bytes_ever_);
    ar.value(dropped_);
  }

 private:
  LogLevel threshold_ = LogLevel::kDebug;
  std::vector<LogRecord> records_;
  std::size_t pending_bytes_ = 0;
  std::size_t total_bytes_ever_ = 0;
  std::size_t dropped_ = 0;
};

}  // namespace gw::util
