// Result<T>: expected-style error carrier for recoverable runtime failures.
//
// The field systems the paper describes treat failure as a normal daily
// occurrence (GPRS drop-outs, probe silence, corrupted downloads), so the
// library distinguishes programmer errors (exceptions / assertions at
// construction time) from operational failures, which flow through Result
// and are handled by retry / fallback logic exactly as §III–§VI describe.
#pragma once

#include <stdexcept>
#include <string>
#include <utility>
#include <variant>

namespace gw::util {

struct Error {
  std::string message;
};

template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : storage_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Error error) : storage_(std::move(error)) {}  // NOLINT(google-explicit-constructor)

  [[nodiscard]] bool ok() const { return std::holds_alternative<T>(storage_); }
  explicit operator bool() const { return ok(); }

  [[nodiscard]] const T& value() const& {
    if (!ok()) throw std::logic_error("Result::value on error: " + error().message);
    return std::get<T>(storage_);
  }
  [[nodiscard]] T& value() & {
    if (!ok()) throw std::logic_error("Result::value on error: " + error().message);
    return std::get<T>(storage_);
  }
  [[nodiscard]] T&& take() && {
    if (!ok()) throw std::logic_error("Result::take on error: " + error().message);
    return std::get<T>(std::move(storage_));
  }

  [[nodiscard]] const Error& error() const {
    return std::get<Error>(storage_);
  }

  [[nodiscard]] T value_or(T fallback) const {
    return ok() ? std::get<T>(storage_) : std::move(fallback);
  }

 private:
  std::variant<T, Error> storage_;
};

// Status-like specialisation for operations with no payload.
class [[nodiscard]] Status {
 public:
  Status() = default;
  Status(Error error) : error_(std::move(error)), failed_(true) {}  // NOLINT(google-explicit-constructor)

  static Status ok_status() { return Status{}; }
  static Status failure(std::string message) {
    return Status{Error{std::move(message)}};
  }

  [[nodiscard]] bool ok() const { return !failed_; }
  explicit operator bool() const { return ok(); }
  [[nodiscard]] const Error& error() const { return error_; }

 private:
  Error error_;
  bool failed_ = false;
};

inline Error make_error(std::string message) { return Error{std::move(message)}; }

}  // namespace gw::util
