// CRC-32 (IEEE 802.3 polynomial, reflected).
//
// Used by the probe radio protocol to detect "broken" packets (§V: the base
// station records missing or broken data packets for later re-request) and by
// the storage models to detect CF-card sector corruption.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>

namespace gw::util {

[[nodiscard]] std::uint32_t crc32(std::span<const std::uint8_t> data,
                                  std::uint32_t seed = 0);
[[nodiscard]] std::uint32_t crc32(std::string_view data,
                                  std::uint32_t seed = 0);

}  // namespace gw::util
