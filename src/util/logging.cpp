#include "util/logging.h"

#include <algorithm>

namespace gw::util {

const char* to_string(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

std::size_t LogRecord::rendered_bytes() const {
  // "<time> <LEVEL> <component>: <message>\n" — ms timestamp zero-padded to
  // at least 13 digits, level tag, separators.
  const std::size_t time_digits =
      std::max<std::size_t>(13, std::to_string(time_ms).size());
  const std::size_t level_chars = std::string_view(to_string(level)).size();
  return time_digits + 1 + level_chars + 1 + component.size() + 2 +
         message.size() + 1;
}

void Logger::log(std::int64_t time_ms, LogLevel level, std::string component,
                 std::string message) {
  if (static_cast<int>(level) < static_cast<int>(threshold_)) {
    ++dropped_;
    return;
  }
  LogRecord record{time_ms, level, std::move(component), std::move(message)};
  const std::size_t bytes = record.rendered_bytes();
  pending_bytes_ += bytes;
  total_bytes_ever_ += bytes;
  records_.push_back(std::move(record));
}

std::size_t Logger::count_at_least(LogLevel level) const {
  std::size_t n = 0;
  for (const auto& record : records_) {
    if (static_cast<int>(record.level) >= static_cast<int>(level)) ++n;
  }
  return n;
}

std::string Logger::drain() {
  std::string out;
  out.reserve(pending_bytes_);
  for (const auto& record : records_) {
    std::string time = std::to_string(record.time_ms);
    if (time.size() < 13) time.insert(0, 13 - time.size(), '0');
    out += time;
    out += ' ';
    out += to_string(record.level);
    out += ' ';
    out += record.component;
    out += ": ";
    out += record.message;
    out += '\n';
  }
  records_.clear();
  pending_bytes_ = 0;
  return out;
}

}  // namespace gw::util
