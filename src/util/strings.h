// Small string helpers shared across modules (formatting tables for benches,
// splitting the key=value payloads of the server API, fixed-width numbers).
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace gw::util {

[[nodiscard]] std::vector<std::string> split(std::string_view text, char sep);
[[nodiscard]] std::string join(const std::vector<std::string>& parts,
                               std::string_view sep);
[[nodiscard]] std::string trim(std::string_view text);
[[nodiscard]] bool starts_with(std::string_view text, std::string_view prefix);

// Fixed-precision double formatting ("12.47"), locale-independent.
[[nodiscard]] std::string format_fixed(double value, int decimals);

// Left-pads `text` with spaces to `width` (no-op if already wider).
[[nodiscard]] std::string pad_left(std::string_view text, std::size_t width);
[[nodiscard]] std::string pad_right(std::string_view text, std::size_t width);

}  // namespace gw::util
