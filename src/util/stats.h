// Summary statistics over samples — used by benches (series diagnostics),
// tests (distribution checks) and the field report.
#pragma once

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace gw::util {

class Summary {
 public:
  void add(double x) {
    samples_.push_back(x);
    sorted_ = false;
  }

  [[nodiscard]] std::size_t count() const { return samples_.size(); }
  [[nodiscard]] bool empty() const { return samples_.empty(); }

  [[nodiscard]] double mean() const {
    require_data();
    double sum = 0.0;
    for (const double x : samples_) sum += x;
    return sum / double(samples_.size());
  }

  // Sample standard deviation (n-1); 0 for a single sample.
  [[nodiscard]] double stddev() const {
    require_data();
    if (samples_.size() < 2) return 0.0;
    const double m = mean();
    double sum_sq = 0.0;
    for (const double x : samples_) sum_sq += (x - m) * (x - m);
    return std::sqrt(sum_sq / double(samples_.size() - 1));
  }

  [[nodiscard]] double min() const {
    require_data();
    return *std::min_element(samples_.begin(), samples_.end());
  }

  [[nodiscard]] double max() const {
    require_data();
    return *std::max_element(samples_.begin(), samples_.end());
  }

  // Linear-interpolated percentile, p in [0, 100].
  [[nodiscard]] double percentile(double p) const {
    require_data();
    if (p < 0.0 || p > 100.0) {
      throw std::invalid_argument("percentile out of range");
    }
    sort();
    const double rank = p / 100.0 * double(samples_.size() - 1);
    const auto lo = std::size_t(rank);
    const auto hi = std::min(lo + 1, samples_.size() - 1);
    const double fraction = rank - double(lo);
    return samples_[lo] + fraction * (samples_[hi] - samples_[lo]);
  }

  [[nodiscard]] double median() const { return percentile(50.0); }

 private:
  void require_data() const {
    if (samples_.empty()) throw std::logic_error("Summary: no samples");
  }
  void sort() const {
    if (!sorted_) {
      std::sort(samples_.begin(), samples_.end());
      sorted_ = true;
    }
  }

  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
};

}  // namespace gw::util
