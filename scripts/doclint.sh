#!/usr/bin/env bash
# Documentation lint, runnable standalone, as the `repo_doclint` ctest, or
# as check.sh leg 2. Two checks over the repo's markdown:
#
#   1. link/anchor integrity: every relative file link in README.md,
#      CONTRIBUTING.md, DESIGN.md, EXPERIMENTS.md, ROADMAP.md and
#      docs/*.md must resolve to a real file, and every #anchor into a
#      markdown target must match a heading slug in that file;
#   2. reachability: every docs/*.md must be reachable from README.md by
#      following relative markdown links — a doc nobody can navigate to is
#      a doc nobody reads.
#
# Diagnostics are printed as "file:line: message", sorted, so output is
# deterministic and diffable. Needs python3 (skips with a notice when it
# is missing, like the clang-format leg of check.sh).
set -u

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
cd "$repo_root"

if ! command -v python3 >/dev/null 2>&1; then
  echo "skip: python3 not installed (doclint needs it)"
  exit 0
fi

python3 - README.md CONTRIBUTING.md DESIGN.md EXPERIMENTS.md ROADMAP.md \
  docs/*.md <<'PYEOF'
import os
import re
import sys

def anchors(path):
    """GitHub-style anchor slugs for every heading in a markdown file."""
    slugs = set()
    in_code = False
    for line in open(path, encoding="utf-8"):
        if line.lstrip().startswith("```"):
            in_code = not in_code
            continue
        if in_code:
            continue
        m = re.match(r"#{1,6}\s+(.*)", line)
        if m:
            text = re.sub(r"[`*_]", "", m.group(1)).strip().lower()
            slug = re.sub(r"[^\w\- ]", "", text).replace(" ", "-")
            slugs.add(slug)
    return slugs

def links(doc):
    """(lineno, target) for every markdown link in doc, skipping code."""
    in_code = False
    for lineno, line in enumerate(open(doc, encoding="utf-8"), 1):
        if line.lstrip().startswith("```"):
            in_code = not in_code
            continue
        if in_code:
            continue
        for target in re.findall(r"\[[^\]]*\]\(([^)\s]+)\)", line):
            yield lineno, target

docs = sys.argv[1:]
diagnostics = []

# --- 1. every relative link resolves, every anchor matches a heading -----
edges = {doc: set() for doc in docs}
for doc in docs:
    base = os.path.dirname(doc)
    for lineno, target in links(doc):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        path, _, frag = target.partition("#")
        full = os.path.normpath(os.path.join(base, path)) if path else doc
        if not os.path.exists(full):
            diagnostics.append(f"{doc}:{lineno}: broken link -> {target}")
        elif frag and full.endswith(".md") and frag not in anchors(full):
            diagnostics.append(f"{doc}:{lineno}: broken anchor -> {target}")
        elif full in edges:
            edges[doc].add(full)

# --- 2. every docs/*.md is reachable from README.md ----------------------
reachable = set()
frontier = ["README.md"]
while frontier:
    doc = frontier.pop()
    if doc in reachable:
        continue
    reachable.add(doc)
    frontier.extend(edges.get(doc, ()))
for doc in sorted(docs):
    if doc.startswith("docs/") and doc not in reachable:
        diagnostics.append(
            f"{doc}:1: unreachable from README.md via markdown links")

for diagnostic in sorted(diagnostics):
    print(diagnostic)
print(f"doclint: {len(docs)} files, {len(diagnostics)} problem(s)")
sys.exit(1 if diagnostics else 0)
PYEOF
