#!/usr/bin/env bash
# Repo hygiene checks, runnable standalone or as the `repo_check` ctest:
#
#   1. clang-format --dry-run -Werror over src/ tests/ bench/ examples/
#      tools/ (skipped with a notice when clang-format is not installed —
#      the build container does not ship it);
#   2. documentation lint (scripts/doclint.sh, also the `repo_doclint`
#      ctest): every relative link and #anchor in the repo's markdown must
#      resolve, and every docs/*.md must be reachable from README.md by
#      following links (needs python3, also gated);
#   3. sanitizer leg: with GW_CHECK_SANITIZE=1 in the environment, builds
#      system_test in a separate build-asan/ dir with -DGW_SANITIZE=address
#      (ASan+UBSan) and runs the fault soak under it. Off by default —
#      it is a full extra build — and gated on cmake being available;
#   4. thread-sanitizer leg: with GW_CHECK_TSAN=1, builds runner_test and
#      sim_test in a separate build-tsan/ dir with -DGW_SANITIZE=thread and
#      runs the Monte Carlo runner tests (pool handoff + determinism) plus
#      the sharded-kernel tests (window barriers, cross-shard messages)
#      under TSan. Off by default for the same reason as the ASan leg;
#   5. performance bench export: when build/bench/bench_throughput and
#      build/bench/bench_microbench exist (i.e. the default build has run),
#      runs them and leaves machine-readable results in the repo root as
#      BENCH_throughput.json (schema glacsweb.bench.v1) and
#      BENCH_microbench_raw.json (google-benchmark JSON). Skipped when the
#      binaries are absent; disable explicitly with GW_CHECK_BENCH=0;
#   6. fleet determinism gate: when build/bench/bench_fleet_scale exists,
#      runs the sweep three times — GW_BENCH_THREADS=1, one shard
#      (GW_BENCH_FLEET_SHARDS=1), and the defaults — and byte-diffs the
#      three BENCH_fleet_scale.json exports. Any difference means thread
#      count or partition leaked into the results and fails the check.
#      Leaves the export in the repo root; disabled together with leg 5
#      via GW_CHECK_BENCH=0;
#   7. server load determinism gate: when build/bench/bench_server_load
#      exists, runs the ingest + >1M-query service-core bench twice —
#      GW_BENCH_THREADS=1 and the defaults — and byte-diffs the two
#      BENCH_server_load.json exports. Leaves the export in the repo root;
#      disabled together with leg 5 via GW_CHECK_BENCH=0;
#   8. fork warm-prefix byte-identity gate: when build/bench/
#      bench_fork_warmup exists, runs the branched faulted season four
#      ways — forked from the day-20 snapshot and replayed cold
#      (GW_BENCH_FORK_MODE=cold), each at GW_BENCH_THREADS=1 and the
#      default pool — and byte-diffs the four BENCH_fork_warmup.json
#      exports. Any difference means the snapshot/restore path changed an
#      observable byte and fails the check (docs/SNAPSHOT.md). Leaves the
#      export and the BENCH_fork_warmup.gwsnap container in the repo root;
#      disabled together with leg 5 via GW_CHECK_BENCH=0;
#   9. energy breakdown determinism gate: when build/bench/
#      bench_energy_breakdown exists, runs the threshold × frequency-plan
#      sweep twice — GW_BENCH_THREADS=1 and the defaults — and byte-diffs
#      the two BENCH_energy_breakdown.json exports (docs/ENERGY.md).
#      Leaves the export in the repo root; disabled together with leg 5
#      via GW_CHECK_BENCH=0;
#  10. gwlint (always-on once built — it compiles with the repo): the
#      project's own analyzer (tools/gwlint) over src/ bench/ tests/
#      examples/ tools/ — determinism bans (wall clocks, ambient entropy,
#      getenv), layer-DAG enforcement against tools/gwlint/layers.toml,
#      unordered-container iteration, header hygiene. Rule catalog and
#      suppression policy: docs/STATIC_ANALYSIS.md;
#  11. clang-tidy over the compilation database exported by CMake
#      (build/compile_commands.json, curated checks in .clang-tidy) —
#      gated on clang-tidy being installed, like the clang-format leg.
#
# Exits non-zero on any real failure; missing tools skip their check.
set -u

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
cd "$repo_root"

failures=0

# --- 1. formatting --------------------------------------------------------
if command -v clang-format >/dev/null 2>&1; then
  echo "== clang-format --dry-run -Werror (src tests bench examples tools)"
  files=$(find src tests bench examples tools \
            -name '*.h' -o -name '*.cpp' | sort)
  if ! clang-format --dry-run -Werror $files; then
    echo "FAIL: formatting (run clang-format -i on the files above)"
    failures=$((failures + 1))
  else
    echo "ok: $(echo "$files" | wc -l) files formatted"
  fi
else
  echo "skip: clang-format not installed"
fi

# --- 2. doclint (links, anchors, reachability) ----------------------------
echo "== doclint (scripts/doclint.sh: links, anchors, README reachability)"
if ! scripts/doclint.sh; then
  echo "FAIL: documentation lint"
  failures=$((failures + 1))
fi

# --- 3. sanitizer soak (opt-in: GW_CHECK_SANITIZE=1) ----------------------
if [ "${GW_CHECK_SANITIZE:-0}" = "1" ]; then
  if command -v cmake >/dev/null 2>&1; then
    echo "== ASan+UBSan fault soak (build-asan/)"
    if cmake -B build-asan -S . -DGW_SANITIZE=address >/dev/null &&
       cmake --build build-asan --target system_test -j >/dev/null &&
       ./build-asan/tests/system_test --gtest_filter='FaultSoak.*'; then
      echo "ok: fault soak clean under ASan+UBSan"
    else
      echo "FAIL: sanitizer fault soak"
      failures=$((failures + 1))
    fi
  else
    echo "skip: cmake not installed"
  fi
else
  echo "skip: sanitizer soak (set GW_CHECK_SANITIZE=1 to enable)"
fi

# --- 4. TSan runner leg (opt-in: GW_CHECK_TSAN=1) -------------------------
if [ "${GW_CHECK_TSAN:-0}" = "1" ]; then
  if command -v cmake >/dev/null 2>&1; then
    echo "== TSan runner + sharded kernel tests (build-tsan/)"
    if cmake -B build-tsan -S . -DGW_SANITIZE=thread >/dev/null &&
       cmake --build build-tsan --target runner_test sim_test -j \
         >/dev/null &&
       ./build-tsan/tests/runner_test &&
       ./build-tsan/tests/sim_test --gtest_filter='Sharded*'; then
      echo "ok: runner pool + sharded kernel clean under TSan"
    else
      echo "FAIL: TSan runner/sharded tests"
      failures=$((failures + 1))
    fi
  else
    echo "skip: cmake not installed"
  fi
else
  echo "skip: TSan runner tests (set GW_CHECK_TSAN=1 to enable)"
fi

# --- 5. performance bench export ------------------------------------------
if [ "${GW_CHECK_BENCH:-1}" = "1" ]; then
  if [ -x build/bench/bench_throughput ] &&
     [ -x build/bench/bench_microbench ]; then
    echo "== throughput + microbench export (BENCH_*.json in repo root)"
    if ./build/bench/bench_throughput >/dev/null &&
       ./build/bench/bench_microbench \
         --benchmark_format=json >BENCH_microbench_raw.json; then
      echo "ok: wrote BENCH_throughput.json and BENCH_microbench_raw.json"
    else
      echo "FAIL: bench export"
      failures=$((failures + 1))
    fi
  else
    echo "skip: bench binaries not built (build the default tree first)"
  fi
else
  echo "skip: bench export (GW_CHECK_BENCH=0)"
fi

# --- 6. fleet determinism gate --------------------------------------------
if [ "${GW_CHECK_BENCH:-1}" = "1" ]; then
  if [ -x build/bench/bench_fleet_scale ]; then
    echo "== fleet scale sweep: 1 thread / 1 shard / defaults (byte-diff gate)"
    if GW_BENCH_THREADS=1 ./build/bench/bench_fleet_scale >/dev/null &&
       mv BENCH_fleet_scale.json BENCH_fleet_scale.1thread.json &&
       GW_BENCH_FLEET_SHARDS=1 ./build/bench/bench_fleet_scale >/dev/null &&
       mv BENCH_fleet_scale.json BENCH_fleet_scale.1shard.json &&
       ./build/bench/bench_fleet_scale >/dev/null &&
       cmp -s BENCH_fleet_scale.json BENCH_fleet_scale.1thread.json &&
       cmp -s BENCH_fleet_scale.json BENCH_fleet_scale.1shard.json; then
      rm -f BENCH_fleet_scale.1thread.json BENCH_fleet_scale.1shard.json
      echo "ok: BENCH_fleet_scale.json byte-identical at 1 vs N threads" \
           "and 1 vs N shards"
    else
      echo "FAIL: fleet sweep exports differ across thread or shard counts" \
           "(compare BENCH_fleet_scale.json vs BENCH_fleet_scale.1thread.json" \
           "/ BENCH_fleet_scale.1shard.json)"
      failures=$((failures + 1))
    fi
  else
    echo "skip: bench_fleet_scale not built (build the default tree first)"
  fi
else
  echo "skip: fleet determinism gate (GW_CHECK_BENCH=0)"
fi

# --- 7. server load determinism gate ---------------------------------------
if [ "${GW_CHECK_BENCH:-1}" = "1" ]; then
  if [ -x build/bench/bench_server_load ]; then
    echo "== server load bench: 1 thread vs defaults (byte-diff gate)"
    if GW_BENCH_THREADS=1 ./build/bench/bench_server_load >/dev/null &&
       mv BENCH_server_load.json BENCH_server_load.1thread.json &&
       ./build/bench/bench_server_load >/dev/null &&
       cmp -s BENCH_server_load.json BENCH_server_load.1thread.json; then
      rm -f BENCH_server_load.1thread.json
      echo "ok: BENCH_server_load.json byte-identical at 1 vs N threads"
    else
      echo "FAIL: server load export differs across thread counts" \
           "(compare BENCH_server_load.json vs BENCH_server_load.1thread.json)"
      failures=$((failures + 1))
    fi
  else
    echo "skip: bench_server_load not built (build the default tree first)"
  fi
else
  echo "skip: server load determinism gate (GW_CHECK_BENCH=0)"
fi

# --- 8. fork warm-prefix byte-identity gate --------------------------------
if [ "${GW_CHECK_BENCH:-1}" = "1" ]; then
  if [ -x build/bench/bench_fork_warmup ]; then
    echo "== fork warmup: fork vs cold replay, 1 thread vs defaults (byte-diff gate)"
    if GW_BENCH_FORK_MODE=cold GW_BENCH_THREADS=1 \
         ./build/bench/bench_fork_warmup >/dev/null &&
       mv BENCH_fork_warmup.json BENCH_fork_warmup.cold1.json &&
       GW_BENCH_FORK_MODE=cold ./build/bench/bench_fork_warmup >/dev/null &&
       mv BENCH_fork_warmup.json BENCH_fork_warmup.cold.json &&
       GW_BENCH_THREADS=1 ./build/bench/bench_fork_warmup >/dev/null &&
       mv BENCH_fork_warmup.json BENCH_fork_warmup.fork1.json &&
       ./build/bench/bench_fork_warmup >/dev/null &&
       cmp -s BENCH_fork_warmup.json BENCH_fork_warmup.cold1.json &&
       cmp -s BENCH_fork_warmup.json BENCH_fork_warmup.cold.json &&
       cmp -s BENCH_fork_warmup.json BENCH_fork_warmup.fork1.json; then
      rm -f BENCH_fork_warmup.cold1.json BENCH_fork_warmup.cold.json \
            BENCH_fork_warmup.fork1.json
      echo "ok: BENCH_fork_warmup.json byte-identical forked vs cold," \
           "1 vs N threads"
    else
      echo "FAIL: fork-resumed season differs from cold replay (compare" \
           "BENCH_fork_warmup.json vs BENCH_fork_warmup.cold.json /" \
           "BENCH_fork_warmup.cold1.json / BENCH_fork_warmup.fork1.json;" \
           "docs/SNAPSHOT.md)"
      failures=$((failures + 1))
    fi
  else
    echo "skip: bench_fork_warmup not built (build the default tree first)"
  fi
else
  echo "skip: fork warm-prefix gate (GW_CHECK_BENCH=0)"
fi

# --- 9. energy breakdown determinism gate ----------------------------------
if [ "${GW_CHECK_BENCH:-1}" = "1" ]; then
  if [ -x build/bench/bench_energy_breakdown ]; then
    echo "== energy breakdown sweep: 1 thread vs defaults (byte-diff gate)"
    if GW_BENCH_THREADS=1 ./build/bench/bench_energy_breakdown >/dev/null &&
       mv BENCH_energy_breakdown.json BENCH_energy_breakdown.1thread.json &&
       ./build/bench/bench_energy_breakdown >/dev/null &&
       cmp -s BENCH_energy_breakdown.json BENCH_energy_breakdown.1thread.json; then
      rm -f BENCH_energy_breakdown.1thread.json
      echo "ok: BENCH_energy_breakdown.json byte-identical at 1 vs N threads"
    else
      echo "FAIL: energy breakdown export differs across thread counts" \
           "(compare BENCH_energy_breakdown.json vs" \
           "BENCH_energy_breakdown.1thread.json; docs/ENERGY.md)"
      failures=$((failures + 1))
    fi
  else
    echo "skip: bench_energy_breakdown not built (build the default tree first)"
  fi
else
  echo "skip: energy breakdown gate (GW_CHECK_BENCH=0)"
fi

# --- 10. gwlint ------------------------------------------------------------
if [ -x build/tools/gwlint ]; then
  echo "== gwlint (determinism + layering + hygiene + semantic passes)"
  # Baselined run: fails on fresh findings AND on stale baseline entries,
  # so tools/gwlint/baseline.txt can only ever shrink.
  if ./build/tools/gwlint --root . --config tools/gwlint/layers.toml \
       --baseline tools/gwlint/baseline.txt \
       src bench tests examples tools; then
    echo "ok: gwlint clean"
  else
    echo "FAIL: gwlint (see diagnostics above; docs/STATIC_ANALYSIS.md" \
         "for the rule catalog, baseline workflow and suppression policy)"
    failures=$((failures + 1))
  fi
  # Determinism gate: two JSON runs must be byte-identical — the analyzer
  # is held to the same contract as the exports it polices.
  ./build/tools/gwlint --root . --config tools/gwlint/layers.toml \
    --baseline tools/gwlint/baseline.txt --format=json \
    src bench tests examples tools > build/gwlint_run_a.json || true
  ./build/tools/gwlint --root . --config tools/gwlint/layers.toml \
    --baseline tools/gwlint/baseline.txt --format=json \
    src bench tests examples tools > build/gwlint_run_b.json || true
  if cmp -s build/gwlint_run_a.json build/gwlint_run_b.json; then
    echo "ok: gwlint JSON byte-identical across runs"
  else
    echo "FAIL: gwlint JSON output differs between two identical runs"
    failures=$((failures + 1))
  fi
else
  echo "skip: gwlint not built (build the default tree first)"
fi

# --- 11. clang-tidy --------------------------------------------------------
if command -v clang-tidy >/dev/null 2>&1; then
  if [ -f build/compile_commands.json ]; then
    echo "== clang-tidy (curated checks from .clang-tidy, src/ TUs)"
    tidy_files=$(find src -name '*.cpp' | sort)
    if clang-tidy -p build --quiet $tidy_files; then
      echo "ok: clang-tidy clean"
    else
      echo "FAIL: clang-tidy"
      failures=$((failures + 1))
    fi
  else
    echo "skip: build/compile_commands.json missing (configure the build)"
  fi
else
  echo "skip: clang-tidy not installed"
fi

if [ "$failures" -ne 0 ]; then
  echo "check.sh: $failures check(s) failed"
  exit 1
fi
echo "check.sh: all checks passed"
