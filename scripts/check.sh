#!/usr/bin/env bash
# Repo hygiene checks, runnable standalone or as the `repo_check` ctest:
#
#   1. clang-format --dry-run -Werror over src/ tests/ bench/ examples/
#      (skipped with a notice when clang-format is not installed — the
#      build container does not ship it);
#   2. documentation link/anchor check over docs/*.md and README.md:
#      every relative file link must resolve, every intra-doc #anchor must
#      match a heading in the target file (needs python3, also gated);
#   3. sanitizer leg: with GW_CHECK_SANITIZE=1 in the environment, builds
#      system_test in a separate build-asan/ dir with -DGW_SANITIZE=ON
#      (ASan+UBSan) and runs the fault soak under it. Off by default —
#      it is a full extra build — and gated on cmake being available.
#
# Exits non-zero on any real failure; missing tools skip their check.
set -u

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
cd "$repo_root"

failures=0

# --- 1. formatting --------------------------------------------------------
if command -v clang-format >/dev/null 2>&1; then
  echo "== clang-format --dry-run -Werror (src tests bench examples)"
  files=$(find src tests bench examples -name '*.h' -o -name '*.cpp' | sort)
  if ! clang-format --dry-run -Werror $files; then
    echo "FAIL: formatting (run clang-format -i on the files above)"
    failures=$((failures + 1))
  else
    echo "ok: $(echo "$files" | wc -l) files formatted"
  fi
else
  echo "skip: clang-format not installed"
fi

# --- 2. doc links/anchors -------------------------------------------------
if command -v python3 >/dev/null 2>&1; then
  echo "== markdown link/anchor check (docs/*.md README.md)"
  if ! python3 - docs/*.md README.md <<'PYEOF'; then
import os
import re
import sys

def anchors(path):
    """GitHub-style anchor slugs for every heading in a markdown file."""
    slugs = set()
    in_code = False
    for line in open(path, encoding="utf-8"):
        if line.lstrip().startswith("```"):
            in_code = not in_code
            continue
        if in_code:
            continue
        m = re.match(r"#{1,6}\s+(.*)", line)
        if m:
            text = re.sub(r"[`*_]", "", m.group(1)).strip().lower()
            slug = re.sub(r"[^\w\- ]", "", text).replace(" ", "-")
            slugs.add(slug)
    return slugs

bad = 0
for doc in sys.argv[1:]:
    base = os.path.dirname(doc)
    in_code = False
    for lineno, line in enumerate(open(doc, encoding="utf-8"), 1):
        if line.lstrip().startswith("```"):
            in_code = not in_code
            continue
        if in_code:
            continue
        for target in re.findall(r"\[[^\]]*\]\(([^)\s]+)\)", line):
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            path, _, frag = target.partition("#")
            full = os.path.normpath(os.path.join(base, path)) if path else doc
            if not os.path.exists(full):
                print(f"{doc}:{lineno}: broken link -> {target}")
                bad += 1
            elif frag and full.endswith(".md") and frag not in anchors(full):
                print(f"{doc}:{lineno}: broken anchor -> {target}")
                bad += 1

print(f"checked {len(sys.argv) - 1} files, {bad} broken link(s)")
sys.exit(1 if bad else 0)
PYEOF
    echo "FAIL: documentation links"
    failures=$((failures + 1))
  fi
else
  echo "skip: python3 not installed"
fi

# --- 3. sanitizer soak (opt-in: GW_CHECK_SANITIZE=1) ----------------------
if [ "${GW_CHECK_SANITIZE:-0}" = "1" ]; then
  if command -v cmake >/dev/null 2>&1; then
    echo "== ASan+UBSan fault soak (build-asan/)"
    if cmake -B build-asan -S . -DGW_SANITIZE=ON >/dev/null &&
       cmake --build build-asan --target system_test -j >/dev/null &&
       ./build-asan/tests/system_test --gtest_filter='FaultSoak.*'; then
      echo "ok: fault soak clean under ASan+UBSan"
    else
      echo "FAIL: sanitizer fault soak"
      failures=$((failures + 1))
    fi
  else
    echo "skip: cmake not installed"
  fi
else
  echo "skip: sanitizer soak (set GW_CHECK_SANITIZE=1 to enable)"
fi

if [ "$failures" -ne 0 ]; then
  echo "check.sh: $failures check(s) failed"
  exit 1
fi
echo "check.sh: all checks passed"
