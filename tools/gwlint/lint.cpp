#include "lint.h"

#include <algorithm>
#include <cctype>
#include <functional>
#include <sstream>

#include "index.h"
#include "semantic.h"

namespace gw::lint {
namespace {

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

// Line number (1-based) of byte offset `pos`, via a precomputed table of
// line start offsets.
std::vector<std::size_t> line_starts(const std::string& text) {
  std::vector<std::size_t> starts{0};
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (text[i] == '\n') starts.push_back(i + 1);
  }
  return starts;
}

int line_of(const std::vector<std::size_t>& starts, std::size_t pos) {
  auto it = std::upper_bound(starts.begin(), starts.end(), pos);
  return int(it - starts.begin());
}

// --- banned API table -----------------------------------------------------

// Identifiers that are banned wherever they appear as a whole token.
struct BannedToken {
  const char* token;
  const char* why;
};
constexpr BannedToken kBannedTokens[] = {
    {"random_device", "ambient entropy; seed util::Rng explicitly"},
    {"steady_clock", "wall clock; simulated time comes from sim::SimTime"},
    {"system_clock", "wall clock; simulated time comes from sim::SimTime"},
    {"high_resolution_clock",
     "wall clock; simulated time comes from sim::SimTime"},
    {"getenv", "environment probe; thread plumbing belongs in bench_util.h"},
    {"gettimeofday", "wall clock; simulated time comes from sim::SimTime"},
    {"clock_gettime", "wall clock; simulated time comes from sim::SimTime"},
    {"localtime", "host timezone; format from sim::SimTime instead"},
    {"gmtime", "wall-clock calendar; format from sim::SimTime instead"},
    {"mktime", "host timezone; arithmetic belongs on sim::SimTime"},
    {"srand", "global RNG; seed util::Rng explicitly"},
};

// --- suppression comments -------------------------------------------------

struct Allow {
  std::set<std::string> rules;
  bool has_reason = false;
  bool parse_ok = true;  // false: malformed allow(...) syntax
};

// Parses a suppression comment — the marker word "allow" with a
// parenthesised rule list and a trailing reason — out of one source line.
// Returns true when the marker is present at all.
bool parse_allow(const std::string& line, Allow* out) {
  const auto marker = line.find("gwlint: allow");
  if (marker == std::string::npos) return false;
  const auto open = line.find('(', marker);
  const auto close = line.find(')', marker);
  if (open == std::string::npos || close == std::string::npos ||
      close < open) {
    out->parse_ok = false;
    return true;
  }
  std::string inside = line.substr(open + 1, close - open - 1);
  std::string rule;
  std::istringstream stream(inside);
  while (std::getline(stream, rule, ',')) {
    const auto first = rule.find_first_not_of(" \t");
    const auto last = rule.find_last_not_of(" \t");
    if (first == std::string::npos) continue;
    out->rules.insert(rule.substr(first, last - first + 1));
  }
  if (out->rules.empty()) out->parse_ok = false;
  // Everything after the closing paren (minus separators) is the
  // justification; it is mandatory.
  std::string reason = line.substr(close + 1);
  while (!reason.empty() && (reason.front() == ':' || reason.front() == ' ' ||
                             reason.front() == '-' || reason.front() == '\t')) {
    reason.erase(reason.begin());
  }
  out->has_reason = !reason.empty();
  return true;
}

// --- per-file scan state --------------------------------------------------

struct FileScan {
  const std::string& path;
  const std::string& content;   // original
  const std::string& stripped;  // comments/strings blanked
  const std::vector<std::size_t>& starts;
  std::vector<std::string> lines;  // original, split
  // Strings blanked, comments kept: suppression comments are read from
  // here, so a quoted example of the allow syntax is not a suppression.
  std::vector<std::string> allow_lines;
  std::map<int, Allow> allows;  // marker line -> suppression (for GW005)
  // Lines covered by a *valid* suppression, per rule. A marker on a
  // comment-only line attaches to the next code line (so a multi-line
  // justification block covers the statement it precedes); a trailing
  // marker covers its own line and the next (multi-line statements).
  std::map<int, std::set<std::string>> effective;
  std::vector<Diagnostic> diagnostics;  // pre-suppression
};

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::string current;
  for (char c : text) {
    if (c == '\n') {
      lines.push_back(current);
      current.clear();
    } else {
      current += c;
    }
  }
  lines.push_back(current);
  return lines;
}

void add(FileScan& scan, int line, const char* id, const char* rule,
         std::string message) {
  scan.diagnostics.push_back(
      Diagnostic{scan.path, line, id, rule, std::move(message)});
}

bool starts_with(const std::string& text, const char* prefix) {
  return text.rfind(prefix, 0) == 0;
}

// --- GW001: banned APIs ---------------------------------------------------

// True when the token ending just before `pos` (exclusive) equals `name`,
// i.e. the stripped text reads `...name` with a boundary before it.
bool preceded_by_ident(const std::string& text, std::size_t pos,
                       std::string* out) {
  std::size_t end = pos;
  std::size_t begin = end;
  while (begin > 0 && is_ident_char(text[begin - 1])) --begin;
  if (begin == end) return false;
  *out = text.substr(begin, end - begin);
  return true;
}

// Classifies the characters just before a call-like token at `pos`:
// member access (`.` / `->`) is skipped, `std::` / bare `::` qualification
// is banned, any other `ns::` qualification is someone else's symbol.
enum class Prefix { kBoundary, kMember, kStdQualified, kOtherQualified };

Prefix prefix_kind(const std::string& text, std::size_t pos) {
  std::size_t i = pos;
  while (i > 0 && (text[i - 1] == ' ' || text[i - 1] == '\t')) --i;
  if (i > 0 && text[i - 1] == '.') return Prefix::kMember;
  if (i > 1 && text[i - 2] == '-' && text[i - 1] == '>') return Prefix::kMember;
  if (i > 1 && text[i - 2] == ':' && text[i - 1] == ':') {
    std::string qualifier;
    if (!preceded_by_ident(text, i - 2, &qualifier)) {
      return Prefix::kStdQualified;  // global `::time(...)`
    }
    return qualifier == "std" ? Prefix::kStdQualified
                              : Prefix::kOtherQualified;
  }
  return Prefix::kBoundary;
}

// All whole-token occurrences of `token` in `text`.
std::vector<std::size_t> token_occurrences(const std::string& text,
                                           const std::string& token) {
  std::vector<std::size_t> hits;
  std::size_t pos = 0;
  while ((pos = text.find(token, pos)) != std::string::npos) {
    const bool left_ok = pos == 0 || !is_ident_char(text[pos - 1]);
    const std::size_t after = pos + token.size();
    const bool right_ok = after >= text.size() || !is_ident_char(text[after]);
    if (left_ok && right_ok) hits.push_back(pos);
    pos = after;
  }
  return hits;
}

void check_banned_apis(FileScan& scan) {
  const std::string& text = scan.stripped;
  for (const auto& banned : kBannedTokens) {
    for (std::size_t pos : token_occurrences(text, banned.token)) {
      if (prefix_kind(text, pos) == Prefix::kMember) continue;
      add(scan, line_of(scan.starts, pos), "GW001", "banned-api",
          std::string(banned.token) + " is banned: " + banned.why);
    }
  }
  // `rand(` — any qualification except member access is the C library rand.
  for (std::size_t pos : token_occurrences(text, "rand")) {
    std::size_t after = pos + 4;
    while (after < text.size() && text[after] == ' ') ++after;
    if (after >= text.size() || text[after] != '(') continue;
    if (prefix_kind(text, pos) == Prefix::kMember) continue;
    if (prefix_kind(text, pos) == Prefix::kOtherQualified) continue;
    add(scan, line_of(scan.starts, pos), "GW001", "banned-api",
        "rand() is banned: global RNG; draw from a named util::Rng fork");
  }
  // `time(` — flagged when qualified `std::` / `::`, or when the argument
  // shape is unmistakably the C call (NULL / nullptr / 0 / &tm). A bare
  // method named `time()` does not match either pattern.
  for (std::size_t pos : token_occurrences(text, "time")) {
    std::size_t after = pos + 4;
    while (after < text.size() && text[after] == ' ') ++after;
    if (after >= text.size() || text[after] != '(') continue;
    const Prefix prefix = prefix_kind(text, pos);
    if (prefix == Prefix::kMember || prefix == Prefix::kOtherQualified) {
      continue;
    }
    bool flagged = prefix == Prefix::kStdQualified;
    if (!flagged) {
      std::size_t arg = after + 1;
      while (arg < text.size() && (text[arg] == ' ' || text[arg] == '\t')) {
        ++arg;
      }
      const std::string rest = text.substr(arg, 8);
      flagged = starts_with(rest, "NULL") || starts_with(rest, "nullptr") ||
                starts_with(rest, "0)") || starts_with(rest, "&");
    }
    if (flagged) {
      add(scan, line_of(scan.starts, pos), "GW001", "banned-api",
          "time() is banned: wall clock; simulated time comes from "
          "sim::SimTime");
    }
  }
}

// --- GW002: unordered-container iteration ---------------------------------

// Skips a balanced <...> starting at `pos` (which must point at '<').
// Returns the index just past the matching '>', or npos.
std::size_t skip_template_args(const std::string& text, std::size_t pos) {
  int depth = 0;
  for (std::size_t i = pos; i < text.size(); ++i) {
    if (text[i] == '<') ++depth;
    if (text[i] == '>') {
      --depth;
      if (depth == 0) return i + 1;
    }
    if (text[i] == ';') return std::string::npos;  // not a template arg list
  }
  return std::string::npos;
}

std::string next_identifier(const std::string& text, std::size_t pos,
                            std::size_t* end_out) {
  std::size_t i = pos;
  while (i < text.size() &&
         (text[i] == ' ' || text[i] == '\t' || text[i] == '\n' ||
          text[i] == '&' || text[i] == '*')) {
    ++i;
  }
  std::size_t begin = i;
  while (i < text.size() && is_ident_char(text[i])) ++i;
  if (end_out != nullptr) *end_out = i;
  return text.substr(begin, i - begin);
}

// Collects names bound to unordered containers: direct declarations
// (`std::unordered_map<K, V> name`) and aliases
// (`using Name = ... unordered_map ...`), then declarations via aliases.
std::set<std::string> unordered_names(const std::string& text) {
  std::set<std::string> type_tokens{"unordered_map", "unordered_set",
                                    "unordered_multimap",
                                    "unordered_multiset"};
  // Aliases first, so later declarations through them are tracked too.
  for (std::size_t pos : token_occurrences(text, "using")) {
    const std::size_t line_end = text.find('\n', pos);
    const std::string line =
        text.substr(pos, line_end == std::string::npos ? std::string::npos
                                                       : line_end - pos);
    if (line.find('=') != std::string::npos &&
        line.find("unordered_") != std::string::npos) {
      const std::string name = next_identifier(line, 5, nullptr);
      if (!name.empty()) type_tokens.insert(name);
    }
  }
  std::set<std::string> names;
  for (const auto& type_token : type_tokens) {
    for (std::size_t hit : token_occurrences(text, type_token)) {
      std::size_t i = hit + type_token.size();
      if (i < text.size() && text[i] == '<') {
        i = skip_template_args(text, i);
        if (i == std::string::npos) continue;
      }
      std::size_t end = 0;
      const std::string name = next_identifier(text, i, &end);
      if (!name.empty() && name != "const") names.insert(name);
    }
  }
  return names;
}

bool expression_mentions(const std::string& expr,
                         const std::set<std::string>& names) {
  if (expr.find("unordered_") != std::string::npos) return true;
  for (const auto& name : names) {
    if (!token_occurrences(expr, name).empty()) return true;
  }
  return false;
}

void check_unordered_iteration(FileScan& scan) {
  const bool applies =
      starts_with(scan.path, "src/") || starts_with(scan.path, "bench/");
  if (!applies) return;
  const std::string& text = scan.stripped;
  const auto names = unordered_names(text);

  // Range-for: `for (decl : range)` where the range expression names an
  // unordered container.
  for (std::size_t pos : token_occurrences(text, "for")) {
    std::size_t open = pos + 3;
    while (open < text.size() && (text[open] == ' ' || text[open] == '\n')) {
      ++open;
    }
    if (open >= text.size() || text[open] != '(') continue;
    int depth = 0;
    std::size_t colon = std::string::npos;
    std::size_t close = std::string::npos;
    for (std::size_t i = open; i < text.size(); ++i) {
      const char c = text[i];
      if (c == '(' || c == '[' || c == '{') ++depth;
      if (c == ')' || c == ']' || c == '}') {
        --depth;
        if (depth == 0) {
          close = i;
          break;
        }
      }
      if (c == ':' && depth == 1 && colon == std::string::npos) {
        const bool double_colon = (i + 1 < text.size() && text[i + 1] == ':') ||
                                  (i > 0 && text[i - 1] == ':');
        if (!double_colon) colon = i;
      }
    }
    if (colon == std::string::npos || close == std::string::npos) continue;
    const std::string range = text.substr(colon + 1, close - colon - 1);
    if (expression_mentions(range, names)) {
      add(scan, line_of(scan.starts, pos), "GW002", "unordered-iteration",
          "range-for over an unordered container: iteration order is "
          "unspecified and can leak into exports; iterate a sorted copy or "
          "use an ordered container");
    }
  }
  // Iterator harvesting: name.begin() / name.cbegin() on a tracked name.
  for (const auto& name : names) {
    for (const char* method : {".begin", ".cbegin"}) {
      std::size_t pos = 0;
      const std::string pattern = name + method;
      while ((pos = text.find(pattern, pos)) != std::string::npos) {
        const bool left_ok = pos == 0 || !is_ident_char(text[pos - 1]);
        if (left_ok) {
          add(scan, line_of(scan.starts, pos), "GW002", "unordered-iteration",
              "iterator over an unordered container (" + name + method +
                  "()): iteration order is unspecified; iterate a sorted "
                  "copy or use an ordered container");
        }
        pos += pattern.size();
      }
    }
  }
}

// --- GW003: layering ------------------------------------------------------

void check_layering(FileScan& scan, const Config& config) {
  if (!starts_with(scan.path, "src/")) return;
  const auto first_slash = scan.path.find('/');
  const auto second_slash = scan.path.find('/', first_slash + 1);
  if (second_slash == std::string::npos) return;  // file directly under src/
  const std::string layer =
      scan.path.substr(first_slash + 1, second_slash - first_slash - 1);
  const auto deps = config.layer_closure.find(layer);
  if (deps == config.layer_closure.end()) {
    add(scan, 1, "GW003", "layering",
        "layer '" + layer +
            "' is not declared in tools/gwlint/layers.toml; add it to the "
            "DAG before adding code");
    return;
  }
  for (std::size_t i = 0; i < scan.lines.size(); ++i) {
    const std::string& line = scan.lines[i];
    std::size_t pos = line.find_first_not_of(" \t");
    if (pos == std::string::npos || line[pos] != '#') continue;
    const auto include = line.find("include", pos);
    if (include == std::string::npos) continue;
    const auto quote = line.find('"', include);
    if (quote == std::string::npos) continue;
    const auto end_quote = line.find('"', quote + 1);
    if (end_quote == std::string::npos) continue;
    const std::string target = line.substr(quote + 1, end_quote - quote - 1);
    const auto slash = target.find('/');
    if (slash == std::string::npos) continue;  // same-directory include
    const std::string target_layer = target.substr(0, slash);
    if (target_layer == layer) continue;
    if (config.layer_closure.count(target_layer) == 0) {
      add(scan, int(i + 1), "GW003", "layering",
          "include of undeclared layer '" + target_layer + "' (\"" + target +
              "\"); declare it in tools/gwlint/layers.toml");
      continue;
    }
    if (deps->second.count(target_layer) == 0) {
      add(scan, int(i + 1), "GW003", "layering",
          "upward include: layer '" + layer + "' may not include '" +
              target_layer + "' (\"" + target +
              "\"); the DAG in tools/gwlint/layers.toml only allows " +
              "downward edges");
    }
  }
}

// --- GW004: pragma once ---------------------------------------------------

void check_pragma_once(FileScan& scan) {
  if (scan.path.size() < 2 ||
      scan.path.compare(scan.path.size() - 2, 2, ".h") != 0) {
    return;
  }
  // Scan the comment/string-stripped view: `#pragma once` quoted in a doc
  // comment must not satisfy (or trip) the rule.
  const auto stripped_lines = split_lines(scan.stripped);
  bool has_pragma = false;
  int guard_line = 0;
  for (std::size_t i = 0; i < stripped_lines.size(); ++i) {
    const std::string& line = stripped_lines[i];
    if (line.find("#pragma once") != std::string::npos) has_pragma = true;
    if (guard_line == 0 && line.find("#ifndef") != std::string::npos &&
        i + 1 < stripped_lines.size() &&
        stripped_lines[i + 1].find("#define") != std::string::npos) {
      guard_line = int(i + 1);
    }
  }
  if (!has_pragma) {
    add(scan, 1, "GW004", "pragma-once",
        "header lacks #pragma once (the repo's include-guard convention)");
  } else if (guard_line != 0) {
    add(scan, guard_line, "GW004", "pragma-once",
        "mixed guard style: header has both #pragma once and an "
        "#ifndef/#define guard; keep #pragma once only");
  }
}

// --- suppression application ----------------------------------------------

// Allow markers and config sections may name a rule either way
// (`persist-coverage` or `GW006`); everything downstream works on the
// canonical rule *name*. Returns "" for unknown tokens.
std::string canonical_rule_name(const std::string& token) {
  for (const auto& rule : rule_catalog()) {
    if (token == rule.name || token == rule.id) return rule.name;
  }
  return "";
}

bool known_rule(const std::string& name) {
  return !canonical_rule_name(name).empty();
}

bool comment_or_blank(const std::string& line) {
  const auto first = line.find_first_not_of(" \t\r");
  if (first == std::string::npos) return true;
  return line.compare(first, 2, "//") == 0;
}

void collect_allows(FileScan& scan) {
  for (std::size_t i = 0; i < scan.allow_lines.size(); ++i) {
    Allow allow;
    if (!parse_allow(scan.allow_lines[i], &allow)) continue;
    scan.allows[int(i + 1)] = allow;
    if (!allow.parse_ok || !allow.has_reason) continue;
    // Comment-only marker: attach to the next code line, skipping the rest
    // of the justification block. Trailing marker: attach where it stands.
    std::size_t target = i;
    if (comment_or_blank(scan.lines[i])) {
      std::size_t j = i + 1;
      while (j < scan.lines.size() && comment_or_blank(scan.lines[j])) ++j;
      if (j >= scan.lines.size()) continue;
      target = j;
    }
    for (const auto& rule : allow.rules) {
      const std::string canonical = canonical_rule_name(rule);
      // Unknown tokens suppress nothing (GW005 reports them).
      if (!canonical.empty()) {
        scan.effective[int(target + 1)].insert(canonical);
      }
    }
  }
}

// Emits GW005 for malformed allows, drops diagnostics covered by a valid
// allow on the same or preceding line.
std::vector<Diagnostic> apply_allows(FileScan& scan) {
  for (const auto& [line, allow] : scan.allows) {
    if (!allow.parse_ok) {
      add(scan, line, "GW005", "bad-allow",
          "malformed suppression: expected "
          "`// gwlint: allow(<rule>): <justification>`");
      continue;
    }
    for (const auto& rule : allow.rules) {
      if (!known_rule(rule)) {
        add(scan, line, "GW005", "bad-allow",
            "suppression names unknown rule '" + rule + "'");
      }
    }
    if (!allow.has_reason) {
      add(scan, line, "GW005", "bad-allow",
          "suppression without justification: every gwlint allow must say "
          "why, e.g. `// gwlint: allow(banned-api): wall time is exported "
          "as host_dependent metadata`");
    }
  }
  std::vector<Diagnostic> kept;
  for (auto& diagnostic : scan.diagnostics) {
    if (diagnostic.rule != "bad-allow") {
      bool suppressed = false;
      for (int line : {diagnostic.line, diagnostic.line - 1}) {
        const auto it = scan.effective.find(line);
        if (it != scan.effective.end() &&
            it->second.count(diagnostic.rule) != 0) {
          suppressed = true;
          break;
        }
      }
      if (suppressed) continue;
    }
    kept.push_back(std::move(diagnostic));
  }
  return kept;
}

}  // namespace

// --- public API -----------------------------------------------------------

const std::vector<RuleInfo>& rule_catalog() {
  static const std::vector<RuleInfo> catalog = {
      {"GW001", "banned-api",
       "wall clocks, ambient entropy and environment probes are banned "
       "outside the configured allowlist"},
      {"GW002", "unordered-iteration",
       "no range-for / iterator loops over std::unordered_{map,set} in "
       "src/ or bench/ (unspecified order can reach exports)"},
      {"GW003", "layering",
       "#include edges must point down the layer DAG declared in "
       "tools/gwlint/layers.toml"},
      {"GW004", "pragma-once",
       "headers carry #pragma once, and only #pragma once"},
      {"GW005", "bad-allow",
       "gwlint suppressions must name a known rule and carry a "
       "justification"},
      {"GW006", "persist-coverage",
       "every non-static data member of a type defining persist() must be "
       "named in the persist body (refs/pointers/const/mutable exempt; "
       "transient members need an allow marker)"},
      {"GW007", "obs-registry",
       "metric/journal names must be snake.case.dotted, one instrument "
       "kind per name, and round-trip against docs/OBSERVABILITY.md"},
      {"GW008", "thread-context",
       "worker-context code (gw::context call-graph coloring) must not "
       "reach coordinator-only functions or post_apply"},
  };
  return catalog;
}

namespace {

// Shared lexer for all stripping modes. `strip_comments` blanks comment
// text (when false, comments survive — the suppression scan needs them);
// `strip_strings` blanks string/char contents (when false, literals
// survive — the metric-name scan reads them) — either way literal
// boundaries are tracked so a `//` inside a string is never a comment.
std::string strip_impl(const std::string& content, bool strip_comments,
                       bool strip_strings) {
  std::string out = content;
  enum class State {
    kCode,
    kLineComment,
    kBlockComment,
    kString,
    kChar,
    kRawString
  };
  State state = State::kCode;
  std::string raw_delimiter;  // for R"delim( ... )delim"
  for (std::size_t i = 0; i < out.size(); ++i) {
    const char c = out[i];
    const char next = i + 1 < out.size() ? out[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          if (strip_comments) out[i] = out[i + 1] = ' ';
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          if (strip_comments) out[i] = out[i + 1] = ' ';
          ++i;
        } else if (c == 'R' && next == '"' &&
                   (i == 0 || !is_ident_char(out[i - 1]))) {
          // Raw string literal: read the delimiter up to '('.
          std::size_t paren = i + 2;
          raw_delimiter.clear();
          while (paren < out.size() && out[paren] != '(' &&
                 raw_delimiter.size() < 16) {
            raw_delimiter += out[paren];
            ++paren;
          }
          if (paren < out.size() && out[paren] == '(') {
            if (strip_strings) {
              for (std::size_t j = i; j <= paren; ++j) {
                if (out[j] != '\n') out[j] = ' ';
              }
            }
            i = paren;
            state = State::kRawString;
          }
        } else if (c == '"') {
          state = State::kString;
          if (strip_strings) out[i] = ' ';
        } else if (c == '\'') {
          state = State::kChar;
          if (strip_strings) out[i] = ' ';
        }
        break;
      case State::kLineComment:
        if (c == '\n') {
          state = State::kCode;
        } else if (strip_comments) {
          out[i] = ' ';
        }
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          if (strip_comments) out[i] = out[i + 1] = ' ';
          ++i;
          state = State::kCode;
        } else if (c != '\n' && strip_comments) {
          out[i] = ' ';
        }
        break;
      case State::kString:
        if (c == '\\') {
          if (strip_strings) out[i] = ' ';
          if (next != '\n') {
            if (strip_strings && i + 1 < out.size()) out[i + 1] = ' ';
            ++i;
          }
        } else if (c == '"') {
          if (strip_strings) out[i] = ' ';
          state = State::kCode;
        } else if (c != '\n' && strip_strings) {
          out[i] = ' ';
        }
        break;
      case State::kChar:
        if (c == '\\') {
          if (strip_strings) out[i] = ' ';
          if (strip_strings && i + 1 < out.size()) out[i + 1] = ' ';
          ++i;
        } else if (c == '\'') {
          if (strip_strings) out[i] = ' ';
          state = State::kCode;
        } else if (c != '\n' && strip_strings) {
          out[i] = ' ';
        }
        break;
      case State::kRawString: {
        const std::string terminator = ")" + raw_delimiter + "\"";
        if (out.compare(i, terminator.size(), terminator) == 0) {
          if (strip_strings) {
            for (std::size_t j = 0; j < terminator.size(); ++j) {
              out[i + j] = ' ';
            }
          }
          i += terminator.size() - 1;
          state = State::kCode;
        } else if (c != '\n' && strip_strings) {
          out[i] = ' ';
        }
        break;
      }
    }
  }
  return out;
}

}  // namespace

std::string strip_comments_and_strings(const std::string& content) {
  return strip_impl(content, /*strip_comments=*/true, /*strip_strings=*/true);
}

Config parse_config(const std::string& text) {
  Config config;
  std::istringstream stream(text);
  std::string line;
  std::string section;
  int lineno = 0;
  while (std::getline(stream, line)) {
    ++lineno;
    // Strip comments (the config has no quoted '#').
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos) continue;
    const auto last = line.find_last_not_of(" \t\r");
    line = line.substr(first, last - first + 1);
    if (line.front() == '[') {
      if (line.back() != ']') {
        config.error = "line " + std::to_string(lineno) + ": unclosed section";
        return config;
      }
      section = line.substr(1, line.size() - 2);
      continue;
    }
    const auto eq = line.find('=');
    if (eq == std::string::npos) {
      config.error =
          "line " + std::to_string(lineno) + ": expected `name = [...]`";
      return config;
    }
    std::string key = line.substr(0, eq);
    while (!key.empty() && (key.back() == ' ' || key.back() == '\t')) {
      key.pop_back();
    }
    const auto open = line.find('[', eq);
    const auto close = line.find(']', eq);
    if (open == std::string::npos || close == std::string::npos ||
        close < open) {
      config.error = "line " + std::to_string(lineno) +
                     ": expected a single-line [\"a\", \"b\"] array";
      return config;
    }
    std::vector<std::string> values;
    std::string inside = line.substr(open + 1, close - open - 1);
    std::size_t pos = 0;
    while ((pos = inside.find('"', pos)) != std::string::npos) {
      const auto end = inside.find('"', pos + 1);
      if (end == std::string::npos) {
        config.error =
            "line " + std::to_string(lineno) + ": unterminated string";
        return config;
      }
      values.push_back(inside.substr(pos + 1, end - pos - 1));
      pos = end + 1;
    }
    if (section == "layers") {
      if (config.layer_deps.count(key) != 0) {
        config.error = "layer '" + key + "' declared twice";
        return config;
      }
      config.layer_deps[key] = values;
    } else if (section.rfind("allow.", 0) == 0) {
      if (key != "files") {
        config.error = "section [" + section + "]: only `files = [...]` " +
                       "entries are supported";
        return config;
      }
      const std::string rule = canonical_rule_name(section.substr(6));
      if (rule.empty()) {
        config.error = "section [" + section + "]: unknown rule '" +
                       section.substr(6) + "'";
        return config;
      }
      config.allow_files[rule].insert(values.begin(), values.end());
    } else {
      config.error = "line " + std::to_string(lineno) +
                     ": entry outside a known section";
      return config;
    }
  }
  // Validate deps and compute the transitive closure, detecting cycles.
  for (const auto& [layer, deps] : config.layer_deps) {
    for (const auto& dep : deps) {
      if (config.layer_deps.count(dep) == 0) {
        config.error = "layer '" + layer + "' depends on undeclared layer '" +
                       dep + "'";
        return config;
      }
    }
  }
  // DFS with colors; gray-hit = cycle.
  std::map<std::string, int> color;  // 0 white, 1 gray, 2 black
  std::function<bool(const std::string&)> visit =
      [&](const std::string& layer) -> bool {
    color[layer] = 1;
    auto& closure = config.layer_closure[layer];
    for (const auto& dep : config.layer_deps.at(layer)) {
      if (color[dep] == 1) {
        config.error = "layer cycle through '" + dep + "' and '" + layer +
                       "'; the layer graph must be a DAG";
        return false;
      }
      if (color[dep] == 0 && !visit(dep)) return false;
      closure.insert(dep);
      const auto& dep_closure = config.layer_closure[dep];
      closure.insert(dep_closure.begin(), dep_closure.end());
    }
    color[layer] = 2;
    return true;
  };
  for (const auto& [layer, deps] : config.layer_deps) {
    if (color[layer] == 0 && !visit(layer)) return config;
  }
  return config;
}

namespace {

// Everything derived from one file's text that both the per-file rules
// and the semantic passes need.
struct PreparedFile {
  std::string path;
  std::string content;
  std::string stripped;    // comments + strings blanked
  std::string allow_view;  // strings blanked, comments kept
  std::vector<std::size_t> starts;
  std::vector<std::string> lines;
  std::vector<std::string> allow_lines;
};

PreparedFile prepare_file(const std::string& path,
                          const std::string& content) {
  PreparedFile prep;
  prep.path = path;
  prep.content = content;
  prep.stripped = strip_comments_and_strings(content);
  prep.allow_view =
      strip_impl(content, /*strip_comments=*/false, /*strip_strings=*/true);
  prep.starts = line_starts(content);
  prep.lines = split_lines(content);
  prep.allow_lines = split_lines(prep.allow_view);
  return prep;
}

// Runs the per-file rules and applies suppressions; copies the effective
// allow map out so lint_repo can filter semantic diagnostics through the
// same markers.
std::vector<Diagnostic> run_per_file_rules(
    const PreparedFile& prep, const Config& config,
    std::map<int, std::set<std::string>>* effective_out) {
  FileScan scan{prep.path, prep.content,     prep.stripped,
                prep.starts, prep.lines,     prep.allow_lines,
                {},          {},             {}};
  collect_allows(scan);
  if (effective_out != nullptr) *effective_out = scan.effective;

  // Whole-file allowlist from the config: note which rules to skip. The
  // gate is per-rule — a file allowlisted for banned-api is still checked
  // by every other rule, including the semantic passes.
  std::set<std::string> file_allowed;
  for (const auto& [rule, files] : config.allow_files) {
    if (files.count(prep.path) != 0) file_allowed.insert(rule);
  }

  if (file_allowed.count("banned-api") == 0) check_banned_apis(scan);
  if (file_allowed.count("unordered-iteration") == 0) {
    check_unordered_iteration(scan);
  }
  if (file_allowed.count("layering") == 0) check_layering(scan, config);
  if (file_allowed.count("pragma-once") == 0) check_pragma_once(scan);

  return apply_allows(scan);
}

}  // namespace

std::vector<Diagnostic> lint_file(const std::string& path,
                                  const std::string& content,
                                  const Config& config) {
  const PreparedFile prep = prepare_file(path, content);
  auto kept = run_per_file_rules(prep, config, nullptr);
  sort_diagnostics(kept);
  return kept;
}

std::vector<Diagnostic> lint_repo(const std::vector<SourceFile>& files,
                                  const std::string& obs_doc_path,
                                  const std::string& obs_doc,
                                  const Config& config) {
  std::vector<Diagnostic> all;
  std::map<std::string, std::map<int, std::set<std::string>>> effective;
  std::vector<FileIndex> index;
  for (const auto& file : files) {
    const PreparedFile prep = prepare_file(file.path, file.content);
    auto kept = run_per_file_rules(prep, config, &effective[file.path]);
    all.insert(all.end(), kept.begin(), kept.end());
    // The semantic passes model src/ only — persist contracts, metric
    // registries and shard contexts all live there; tests and benches
    // exercise them but are not part of the contract surface.
    if (prep.path.rfind("src/", 0) == 0) {
      const std::string code_view =
          strip_impl(file.content, /*strip_comments=*/true,
                     /*strip_strings=*/false);
      index.push_back(build_file_index(prep.path, prep.stripped, code_view,
                                       prep.allow_view));
    }
  }
  std::sort(index.begin(), index.end(),
            [](const FileIndex& a, const FileIndex& b) {
              return a.path < b.path;
            });

  std::vector<Diagnostic> semantic;
  check_persist_coverage(index, &semantic);
  if (!obs_doc.empty()) {
    const ObsDoc doc = parse_obs_doc(obs_doc_path, obs_doc);
    check_observability_registry(index, doc, &semantic);
  }
  check_thread_context(index, &semantic);

  for (auto& diagnostic : semantic) {
    const auto allowed = config.allow_files.find(diagnostic.rule);
    if (allowed != config.allow_files.end() &&
        allowed->second.count(diagnostic.file) != 0) {
      continue;
    }
    bool suppressed = false;
    const auto file_it = effective.find(diagnostic.file);
    if (file_it != effective.end()) {
      for (int line : {diagnostic.line, diagnostic.line - 1}) {
        const auto line_it = file_it->second.find(line);
        if (line_it != file_it->second.end() &&
            line_it->second.count(diagnostic.rule) != 0) {
          suppressed = true;
          break;
        }
      }
    }
    if (!suppressed) all.push_back(std::move(diagnostic));
  }
  sort_diagnostics(all);
  return all;
}

std::vector<std::string> parse_baseline(const std::string& text) {
  std::vector<std::string> entries;
  std::istringstream stream(text);
  std::string line;
  while (std::getline(stream, line)) {
    while (!line.empty() && (line.back() == '\r' || line.back() == ' ')) {
      line.pop_back();
    }
    if (line.empty() || line.front() == '#') continue;
    entries.push_back(line);
  }
  return entries;
}

BaselineResult apply_baseline(std::vector<Diagnostic> diagnostics,
                              const std::vector<std::string>& baseline) {
  BaselineResult result;
  std::multiset<std::string> pending(baseline.begin(), baseline.end());
  for (auto& diagnostic : diagnostics) {
    const auto it = pending.find(format_diagnostic(diagnostic));
    if (it != pending.end()) {
      pending.erase(it);
      ++result.suppressed;
    } else {
      result.fresh.push_back(std::move(diagnostic));
    }
  }
  result.stale.assign(pending.begin(), pending.end());
  return result;
}

namespace {

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 8);
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char* hex = "0123456789abcdef";
          out += "\\u00";
          out += hex[(c >> 4) & 0xf];
          out += hex[c & 0xf];
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string format_json(const BaselineResult& result) {
  std::string out = "{\n  \"schema\": \"gwlint.v1\",\n  \"diagnostics\": [";
  for (std::size_t i = 0; i < result.fresh.size(); ++i) {
    const Diagnostic& d = result.fresh[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"file\": \"" + json_escape(d.file) +
           "\", \"line\": " + std::to_string(d.line) + ", \"id\": \"" +
           json_escape(d.id) + "\", \"rule\": \"" + json_escape(d.rule) +
           "\", \"message\": \"" + json_escape(d.message) + "\"}";
  }
  out += result.fresh.empty() ? "],\n" : "\n  ],\n";
  out += "  \"baseline_suppressed\": " + std::to_string(result.suppressed) +
         ",\n  \"stale_baseline\": [";
  for (std::size_t i = 0; i < result.stale.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    out += "    \"" + json_escape(result.stale[i]) + "\"";
  }
  out += result.stale.empty() ? "]\n}\n" : "\n  ]\n}\n";
  return out;
}

void sort_diagnostics(std::vector<Diagnostic>& diagnostics) {
  std::sort(diagnostics.begin(), diagnostics.end(),
            [](const Diagnostic& a, const Diagnostic& b) {
              return std::tie(a.file, a.line, a.id, a.message) <
                     std::tie(b.file, b.line, b.id, b.message);
            });
}

std::string format_diagnostic(const Diagnostic& diagnostic) {
  return diagnostic.file + ":" + std::to_string(diagnostic.line) + ": [" +
         diagnostic.id + "/" + diagnostic.rule + "] " + diagnostic.message;
}

}  // namespace gw::lint
