#include "index.h"

#include <algorithm>
#include <cctype>
#include <map>
#include <set>

namespace gw::lint {
namespace {

bool ends_with(const std::string& text, const std::string& suffix) {
  return text.size() >= suffix.size() &&
         text.compare(text.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

std::vector<std::size_t> line_starts(const std::string& text) {
  std::vector<std::size_t> starts{0};
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (text[i] == '\n') starts.push_back(i + 1);
  }
  return starts;
}

int line_of(const std::vector<std::size_t>& starts, std::size_t pos) {
  auto it = std::upper_bound(starts.begin(), starts.end(), pos);
  return int(it - starts.begin());
}

// --- tokenizer ------------------------------------------------------------

enum class TokKind { kIdent, kNumber, kPunct };

struct Token {
  TokKind kind;
  std::string text;
  std::size_t pos;
};

std::vector<Token> tokenize(const std::string& text) {
  std::vector<Token> toks;
  std::size_t i = 0;
  while (i < text.size()) {
    const char c = text[i];
    if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
      ++i;
      continue;
    }
    if (is_ident_start(c)) {
      std::size_t begin = i;
      while (i < text.size() && is_ident_char(text[i])) ++i;
      toks.push_back({TokKind::kIdent, text.substr(begin, i - begin), begin});
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
      // Numbers are opaque: consume digits, letters (hex/suffixes), dots,
      // and the sign of an exponent.
      std::size_t begin = i;
      while (i < text.size() &&
             (is_ident_char(text[i]) || text[i] == '.' ||
              ((text[i] == '+' || text[i] == '-') && i > begin &&
               (text[i - 1] == 'e' || text[i - 1] == 'E')))) {
        ++i;
      }
      toks.push_back({TokKind::kNumber, text.substr(begin, i - begin), begin});
      continue;
    }
    // `::` is one token (qualification matters); everything else is single.
    if (c == ':' && i + 1 < text.size() && text[i + 1] == ':') {
      toks.push_back({TokKind::kPunct, "::", i});
      i += 2;
      continue;
    }
    toks.push_back({TokKind::kPunct, std::string(1, c), i});
    ++i;
  }
  return toks;
}

// --- keyword tables -------------------------------------------------------

// Can never be a function name at a call or declaration site.
const std::set<std::string>& name_reject_keywords() {
  static const std::set<std::string> kws = {
      "if",        "for",       "while",       "switch",   "return",
      "sizeof",    "alignof",   "decltype",    "new",      "delete",
      "throw",     "catch",     "static_cast", "dynamic_cast",
      "const_cast", "reinterpret_cast", "co_await", "co_return",
      "void",      "int",       "bool",        "char",     "double",
      "float",     "unsigned",  "signed",      "long",     "short",
      "auto",      "const",     "constexpr",   "noexcept", "operator",
      "typename",  "defined",   "alignas",
  };
  return kws;
}

// Declarator modifiers that are transparent to the statement scan.
const std::set<std::string>& transparent_keywords() {
  static const std::set<std::string> kws = {
      "inline",   "virtual", "explicit", "typename", "volatile",
      "register", "extern",  "struct",   "class",    "enum",
  };
  // `struct`/`class`/`enum` here cover elaborated type specifiers inside a
  // declarator (`enum Kind k_;`); definitions are dispatched before the
  // statement scan ever sees them.
  return kws;
}

// --- parser ---------------------------------------------------------------

struct Parser {
  const std::string& stripped;
  std::vector<Token> toks;
  std::vector<std::size_t> starts;
  FileIndex* out;

  int line_at(std::size_t ti) const {
    return line_of(starts, toks[ti].pos);
  }
  bool at(std::size_t i, const char* t) const {
    return i < toks.size() && toks[i].text == t;
  }
  bool ident_at(std::size_t i) const {
    return i < toks.size() && toks[i].kind == TokKind::kIdent;
  }

  // Skips a balanced group. `i` points at the opener; returns the index
  // just past the matching closer (or toks.size() when unbalanced).
  std::size_t skip_group(std::size_t i, char open, char close) const {
    int depth = 0;
    for (; i < toks.size(); ++i) {
      if (toks[i].kind != TokKind::kPunct) continue;
      const char c = toks[i].text[0];
      if (toks[i].text.size() != 1) continue;
      if (c == open) ++depth;
      if (c == close && --depth == 0) return i + 1;
    }
    return toks.size();
  }

  // Skips a template argument list starting at `<`. Angles do not nest with
  // certainty (a `<` can be less-than), so bail out at `;` or `{`.
  std::size_t skip_angles(std::size_t i) const {
    int depth = 0;
    for (; i < toks.size(); ++i) {
      const std::string& t = toks[i].text;
      if (t == "<") ++depth;
      if (t == ">" && --depth == 0) return i + 1;
      if (t == ";" || t == "{") return i;  // not a template arg list
      if (t == "(") {
        i = skip_group(i, '(', ')') - 1;  // e.g. function types in args
      }
    }
    return toks.size();
  }

  // Skips the rest of a preprocessor directive: every token on the same
  // line as the `#` (the repo does not use backslash continuations).
  std::size_t skip_preprocessor(std::size_t i) const {
    const int line = line_at(i);
    while (i < toks.size() && line_at(i) == line) ++i;
    return i;
  }

  // Skips to the `;` that ends a statement, balancing (), [] and {} so
  // semicolons inside lambda bodies or initializer lists do not end it.
  std::size_t skip_to_semi(std::size_t i) const {
    int depth = 0;
    for (; i < toks.size(); ++i) {
      const std::string& t = toks[i].text;
      if (t == "(" || t == "[" || t == "{") ++depth;
      if (t == ")" || t == "]" || t == "}") --depth;
      if (t == ";" && depth <= 0) return i + 1;
      if (depth < 0) return i;  // ran off the enclosing scope
    }
    return toks.size();
  }

  // Records the calls inside a body span (token indices, exclusive end).
  void extract_calls(std::size_t begin, std::size_t end,
                     std::vector<CallSite>* calls) const {
    for (std::size_t i = begin; i + 1 < end; ++i) {
      if (toks[i].kind != TokKind::kIdent) continue;
      if (!at(i + 1, "(")) continue;
      if (name_reject_keywords().count(toks[i].text) != 0) continue;
      calls->push_back({toks[i].text, line_at(i)});
    }
  }

  // --- one declaration statement ------------------------------------------
  //
  // Handles both class-scope member/method declarations and namespace-scope
  // function definitions. Returns the index past the statement. When
  // `record` is false the statement is parsed for its extent only (friend
  // declarations).
  std::size_t scan_statement(std::size_t i, int class_index, bool record) {
    const bool in_class = class_index >= 0;
    bool saw_static = false;
    bool saw_const = false;
    bool saw_mutable = false;
    bool saw_ptr_ref = false;
    bool saw_function_in_args = false;  // std::function inside template args
    bool saw_paren = false;  // a parameter list was consumed
    std::vector<std::size_t> decl_idents;  // top-level identifier tokens

    auto flush_member = [&]() {
      if (!record || !in_class || saw_paren || saw_static) return;
      if (decl_idents.empty()) return;
      const std::size_t name_tok = decl_idents.back();
      const std::string& name = toks[name_tok].text;
      if (name_reject_keywords().count(name) != 0) return;
      // std::function members are callbacks — wiring re-established at
      // construction, never snapshot state. Likewise members whose declared
      // type ends in Config or Hooks: repo convention (docs/SNAPSHOT.md)
      // restores "state minus wiring" into an identically-configured world,
      // so construction configuration is never part of a persist body.
      bool is_callback = saw_function_in_args;
      bool is_wiring_type = false;
      for (std::size_t d = 0; d + 1 < decl_idents.size(); ++d) {
        const std::string& type_ident = toks[decl_idents[d]].text;
        if (type_ident == "function") is_callback = true;
        if (ends_with(type_ident, "Config") || ends_with(type_ident, "Hooks")) {
          is_wiring_type = true;
        }
      }
      MemberDecl member;
      member.name = name;
      member.line = line_at(name_tok);
      member.exempt =
          saw_ptr_ref || saw_const || saw_mutable || is_callback || is_wiring_type;
      out->classes[class_index].members.push_back(member);
    };

    while (i < toks.size()) {
      const Token& tok = toks[i];
      if (tok.kind == TokKind::kIdent) {
        if (tok.text == "static" || tok.text == "constexpr" ||
            tok.text == "thread_local") {
          saw_static = true;
          ++i;
          continue;
        }
        if (tok.text == "mutable") {
          saw_mutable = true;
          ++i;
          continue;
        }
        if (tok.text == "const") {
          saw_const = true;
          ++i;
          continue;
        }
        if (transparent_keywords().count(tok.text) != 0) {
          ++i;
          continue;
        }
        if (tok.text == "operator") {
          // Skip the operator symbol so its punctuation is not mistaken
          // for declarator structure; the call operator's `()` is consumed
          // as the (empty) symbol and the real parameter list follows.
          ++i;
          while (i < toks.size() && toks[i].kind == TokKind::kPunct &&
                 toks[i].text != "(" && toks[i].text != ";") {
            ++i;
          }
          if (at(i, "(") && at(i + 1, ")")) i += 2;  // operator()
          decl_idents.clear();  // not a member declarator
          continue;
        }
        decl_idents.push_back(i);
        ++i;
        continue;
      }
      const std::string& t = tok.text;
      if (t == "::" || t == "," || t == "~" || t == ".") {
        if (t == ",") flush_member();  // `int a_, b_;`
        ++i;
        continue;
      }
      if (tok.kind == TokKind::kNumber) {
        ++i;
        continue;
      }
      if (t == "<") {
        // A raw pointer or std::function anywhere in the template arguments
        // (std::vector<ProbeNode*>, std::vector<std::function<void()>>)
        // makes the member wiring, not state.
        const std::size_t after = skip_angles(i);
        for (std::size_t j = i; j < after; ++j) {
          if (toks[j].text == "*") saw_ptr_ref = true;
          if (toks[j].text == "function") saw_function_in_args = true;
        }
        i = after;
        continue;
      }
      if (t == "[") {
        i = skip_group(i, '[', ']');
        continue;
      }
      if (t == "*" || t == "&") {
        saw_ptr_ref = true;
        ++i;
        continue;
      }
      if (t == ";") {
        flush_member();
        return i + 1;
      }
      if (t == "=") {
        // Member initializer: the declarator is complete; skip the
        // initializer expression (which may contain lambdas) to the `;`.
        i = skip_to_semi(i);
        flush_member();
        return i;
      }
      if (t == "{") {
        if (!decl_idents.empty()) {
          // Brace-initialized member: `util::Rng rng_{seed};`
          i = skip_group(i, '{', '}');
          if (at(i, ";")) ++i;
          flush_member();
          return i;
        }
        // Lost: skip the block conservatively.
        return skip_group(i, '{', '}');
      }
      if (t == "(") {
        return scan_function_tail(i, class_index, record, decl_idents);
      }
      // Unrecognised punctuation: give up on this statement.
      return skip_to_semi(i);
    }
    return i;
  }

  // `i` points at the `(` opening a parameter list (or something shaped
  // like one). Consumes the list, trailing qualifiers, a constructor init
  // list and the body or terminating `;`, recording a FunctionRecord when
  // the preceding tokens named a plausible function.
  std::size_t scan_function_tail(std::size_t i, int class_index, bool record,
                                 const std::vector<std::size_t>& decl_idents) {
    const bool in_class = class_index >= 0;
    // Function name: the identifier directly before the `(`.
    std::string name;
    std::string qualifier = in_class ? out->classes[class_index].name : "";
    int name_line = 0;
    if (!decl_idents.empty() && decl_idents.back() + 1 == i) {
      const std::size_t name_tok = decl_idents.back();
      name = toks[name_tok].text;
      name_line = line_at(name_tok);
      // Out-of-line definition: `void Station::persist(...)`.
      if (name_tok >= 2 && at(name_tok - 1, "::") &&
          toks[name_tok - 2].kind == TokKind::kIdent) {
        qualifier = toks[name_tok - 2].text;
      }
      if (name_reject_keywords().count(name) != 0) name.clear();
    }

    i = skip_group(i, '(', ')');

    // Trailer: cv/ref qualifiers, noexcept, attributes, trailing return
    // type, `= default/delete/0`, constructor init list.
    bool in_ctor_init = false;
    std::size_t body_open = toks.size();
    while (i < toks.size()) {
      const std::string& t = toks[i].text;
      if (t == "const" || t == "override" || t == "final" || t == "&&" ||
          t == "&" || t == "mutable" || t == "volatile") {
        ++i;
        continue;
      }
      if (t == "noexcept") {
        ++i;
        if (at(i, "(")) i = skip_group(i, '(', ')');
        continue;
      }
      if (t == "[") {
        i = skip_group(i, '[', ']');
        continue;
      }
      if (t == "-" && at(i + 1, ">")) {
        i += 2;  // trailing return type: consume its tokens structurally
        continue;
      }
      if (t == "=") {
        i = skip_to_semi(i);
        break;
      }
      if (t == ";") {
        ++i;
        break;
      }
      if (t == ":" && !in_ctor_init) {
        in_ctor_init = true;
        ++i;
        continue;
      }
      if (in_ctor_init) {
        if (toks[i].kind == TokKind::kIdent || t == "::" || t == "," ||
            toks[i].kind == TokKind::kNumber) {
          ++i;
          continue;
        }
        if (t == "<") {
          i = skip_angles(i);
          continue;
        }
        if (t == "(") {
          i = skip_group(i, '(', ')');
          continue;
        }
        if (t == "{") {
          // Brace init of a member (`a_{x}`) when it directly follows an
          // identifier or template args; otherwise this is the body.
          const std::string& prev = toks[i - 1].text;
          if (toks[i - 1].kind == TokKind::kIdent || prev == ">") {
            i = skip_group(i, '{', '}');
            continue;
          }
          body_open = i;
          break;
        }
        // Anything else inside an init list: bail to the body search.
      }
      if (t == "{") {
        body_open = i;
        break;
      }
      if (toks[i].kind == TokKind::kIdent || t == "::" ||
          toks[i].kind == TokKind::kNumber) {
        ++i;  // trailing return type / unknown macro-ish tokens
        continue;
      }
      if (t == "<") {
        i = skip_angles(i);
        continue;
      }
      if (t == "(") {
        i = skip_group(i, '(', ')');
        continue;
      }
      // Lost in the trailer: end the statement.
      return skip_to_semi(i);
    }

    FunctionRecord fn;
    fn.qualifier = qualifier;
    fn.name = name;
    fn.line = name_line;
    if (body_open < toks.size()) {
      const std::size_t body_end = skip_group(body_open, '{', '}');
      fn.has_body = true;
      fn.body_line = line_at(body_open);
      const std::size_t from = toks[body_open].pos;
      const std::size_t to = body_end < toks.size()
                                 ? toks[body_end - 1].pos + 1
                                 : stripped.size();
      fn.body = stripped.substr(from, to - from);
      extract_calls(body_open + 1, body_end > 0 ? body_end - 1 : body_open,
                    &fn.calls);
      i = body_end;
      if (at(i, ";")) ++i;
    }
    if (record && !name.empty()) {
      if (in_class && name == "persist") {
        out->classes[class_index].declares_persist = true;
        out->classes[class_index].persist_line = name_line;
      }
      out->functions.push_back(std::move(fn));
    }
    return i;
  }

  // --- enums ---------------------------------------------------------------

  std::size_t scan_enum(std::size_t i) {
    ++i;  // `enum`
    if (at(i, "class") || at(i, "struct")) ++i;
    EnumDecl decl;
    if (ident_at(i)) {
      decl.name = toks[i].text;
      decl.line = line_at(i);
      ++i;
    }
    if (at(i, ":")) {  // underlying type
      ++i;
      while (i < toks.size() && !at(i, "{") && !at(i, ";")) ++i;
    }
    if (!at(i, "{")) return skip_to_semi(i);  // opaque-enum declaration
    const std::size_t end = skip_group(i, '{', '}');
    ++i;
    while (i < end - 1) {
      if (ident_at(i)) {
        decl.enumerators.push_back(toks[i].text);
        ++i;
        // Skip an optional `= expr` to the next top-level comma.
        int depth = 0;
        while (i < end - 1) {
          const std::string& t = toks[i].text;
          if (t == "(" || t == "{" || t == "[") ++depth;
          if (t == ")" || t == "}" || t == "]") --depth;
          if (t == "," && depth == 0) {
            ++i;
            break;
          }
          ++i;
        }
      } else {
        ++i;
      }
    }
    out->enums.push_back(std::move(decl));
    i = end;
    if (at(i, ";")) ++i;
    return i;
  }

  // --- classes -------------------------------------------------------------

  std::size_t scan_class(std::size_t i) {
    ++i;  // `class` / `struct` / `union`
    while (at(i, "[")) i = skip_group(i, '[', ']');  // attributes
    if (!ident_at(i)) {
      // Anonymous: parse the body for extent only.
      while (i < toks.size() && !at(i, "{") && !at(i, ";")) ++i;
      if (at(i, "{")) i = skip_group(i, '{', '}');
      return skip_to_semi(i);
    }
    ClassDecl decl;
    decl.name = toks[i].text;
    decl.line = line_at(i);
    ++i;
    while (true) {
      if (at(i, "<")) {  // specialization arguments
        i = skip_angles(i);
        continue;
      }
      if (at(i, "final")) {
        ++i;
        continue;
      }
      break;
    }
    if (at(i, ";")) return i + 1;  // forward declaration
    if (at(i, "::")) return skip_to_semi(i);  // `struct A::B x;` oddity
    if (at(i, ":")) {  // base clause
      ++i;
      while (i < toks.size() && !at(i, "{")) {
        if (at(i, "<")) {
          i = skip_angles(i);
          continue;
        }
        if (at(i, ";")) return i + 1;  // lost; treat as declaration
        ++i;
      }
    }
    if (!at(i, "{")) return skip_to_semi(i);
    const std::size_t end = skip_group(i, '{', '}');
    out->classes.push_back(std::move(decl));
    const int class_index = int(out->classes.size()) - 1;
    ++i;
    while (i < end - 1) {
      i = scan_construct(i, class_index);
    }
    i = end;
    // `} name;` member-of-just-defined-type (rare); consume to the `;`.
    while (i < toks.size() && !at(i, ";") && !at(i, "}")) ++i;
    if (at(i, ";")) ++i;
    return i;
  }

  // --- scope dispatch -------------------------------------------------------

  // `class_index` is the enclosing class's slot in out->classes, or -1 at
  // namespace scope.
  std::size_t scan_construct(std::size_t i, int class_index) {
    const bool in_class = class_index >= 0;
    const Token& tok = toks[i];
    if (tok.kind == TokKind::kPunct) {
      if (tok.text == "#") return skip_preprocessor(i);
      if (tok.text == ";") return i + 1;
      if (tok.text == "[") return skip_group(i, '[', ']');
      if (tok.text == "{") return skip_group(i, '{', '}');
      if (tok.text == "}") return i + 1;  // defensive; caller bounds us
      return scan_statement(i, class_index, /*record=*/true);
    }
    const std::string& t = tok.text;
    if (t == "namespace") {
      ++i;
      while (ident_at(i) || at(i, "::")) ++i;
      if (at(i, "=")) return skip_to_semi(i);  // namespace alias
      if (at(i, "{")) {
        const std::size_t end = skip_group(i, '{', '}');
        ++i;
        while (i < end - 1) {
          i = scan_construct(i, /*class_index=*/-1);
        }
        return end;
      }
      return i;
    }
    if (t == "template") {
      ++i;
      if (at(i, "<")) i = skip_angles(i);
      return i;  // the templated declaration follows and is scanned next
    }
    if (t == "class" || t == "struct" || t == "union") {
      // Elaborated forward declarations and definitions both land here;
      // `struct Foo* p;` style declarators do not occur at decl scope in
      // this codebase.
      return scan_class(i);
    }
    if (t == "enum") return scan_enum(i);
    if (t == "using" || t == "typedef" || t == "static_assert") {
      return skip_to_semi(i);
    }
    if (t == "friend") {
      return scan_statement(i + 1, class_index, /*record=*/false);
    }
    if (in_class &&
        (t == "public" || t == "private" || t == "protected") &&
        at(i + 1, ":")) {
      return i + 2;
    }
    return scan_statement(i, class_index, /*record=*/true);
  }

  void run() {
    std::size_t i = 0;
    while (i < toks.size()) {
      const std::size_t next = scan_construct(i, /*class_index=*/-1);
      i = next > i ? next : i + 1;  // never stall
    }
  }
};

// --- metric sites ---------------------------------------------------------
//
// Works on the code view (comments blanked, strings intact) because the
// names live inside string literals.

// Reads a string literal starting at `i` (which must point at `"`).
// Handles adjacent concatenation. Returns the decoded value and leaves
// `*end` just past the final quote; returns false when not a literal.
bool read_string_literal(const std::string& text, std::size_t i,
                         std::string* value, std::size_t* end) {
  if (i >= text.size() || text[i] != '"') return false;
  value->clear();
  while (i < text.size() && text[i] == '"') {
    ++i;
    while (i < text.size() && text[i] != '"') {
      if (text[i] == '\\' && i + 1 < text.size()) {
        value->push_back(text[i + 1]);
        i += 2;
      } else {
        value->push_back(text[i]);
        ++i;
      }
    }
    if (i >= text.size()) return false;
    ++i;  // closing quote
    // Adjacent literal?
    std::size_t j = i;
    while (j < text.size() && (text[j] == ' ' || text[j] == '\t' ||
                               text[j] == '\n' || text[j] == '\r')) {
      ++j;
    }
    if (j < text.size() && text[j] == '"') {
      i = j;
    } else {
      break;
    }
  }
  *end = i;
  return true;
}

std::size_t skip_ws(const std::string& text, std::size_t i) {
  while (i < text.size() && (text[i] == ' ' || text[i] == '\t' ||
                             text[i] == '\n' || text[i] == '\r')) {
    ++i;
  }
  return i;
}

// The extent of one call argument: from `i` to the `,` or `)` that ends it
// at depth 0, balancing brackets and skipping string literals.
std::size_t argument_end(const std::string& text, std::size_t i) {
  int depth = 0;
  while (i < text.size()) {
    const char c = text[i];
    if (c == '"') {
      std::string dummy;
      std::size_t end = i;
      if (!read_string_literal(text, i, &dummy, &end)) return text.size();
      i = end;
      continue;
    }
    if (c == '(' || c == '[' || c == '{') ++depth;
    if (c == ')' || c == ']' || c == '}') {
      if (depth == 0) return i;
      --depth;
    }
    if (c == ',' && depth == 0) return i;
    ++i;
  }
  return i;
}

void scan_metric_sites(const std::string& code_view,
                       const std::vector<std::size_t>& starts,
                       FileIndex* out) {
  static const char* kKinds[] = {"counter", "gauge", "histogram"};
  for (const char* kind : kKinds) {
    const std::string token = kind;
    std::size_t pos = 0;
    while ((pos = code_view.find(token, pos)) != std::string::npos) {
      const std::size_t hit = pos;
      pos += token.size();
      const bool left_ok = hit == 0 || !is_ident_char(code_view[hit - 1]);
      if (!left_ok || (pos < code_view.size() && is_ident_char(code_view[pos]))) {
        continue;
      }
      // Must be a member call: `.kind(` or `->kind(`.
      std::size_t before = hit;
      while (before > 0 && (code_view[before - 1] == ' ' ||
                            code_view[before - 1] == '\t')) {
        --before;
      }
      const bool member_dot = before > 0 && code_view[before - 1] == '.';
      const bool member_arrow = before > 1 && code_view[before - 2] == '-' &&
                                code_view[before - 1] == '>';
      if (!member_dot && !member_arrow) continue;
      std::size_t i = skip_ws(code_view, pos);
      if (i >= code_view.size() || code_view[i] != '(') continue;
      i = skip_ws(code_view, i + 1);
      MetricSite site;
      site.kind = token;
      site.line = line_of(starts, hit);
      std::size_t end = 0;
      if (!read_string_literal(code_view, i, &site.component, &end)) {
        continue;  // dynamic component: out of scope for the registry check
      }
      i = skip_ws(code_view, end);
      if (i >= code_view.size() || code_view[i] != ',') continue;
      i = skip_ws(code_view, i + 1);
      const std::size_t arg_end = argument_end(code_view, i);

      // Classify the name argument.
      std::string head;
      std::size_t head_end = 0;
      bool have_head = read_string_literal(code_view, i, &head, &head_end);
      if (!have_head) {
        // `std::string("lit") + ...` wrapper.
        static const std::string kWrap = "std::string";
        if (code_view.compare(i, kWrap.size(), kWrap) == 0) {
          std::size_t j = skip_ws(code_view, i + kWrap.size());
          if (j < code_view.size() && code_view[j] == '(') {
            j = skip_ws(code_view, j + 1);
            std::size_t lit_end = 0;
            if (read_string_literal(code_view, j, &head, &lit_end)) {
              std::size_t k = skip_ws(code_view, lit_end);
              if (k < code_view.size() && code_view[k] == ')') {
                have_head = true;
                head_end = k + 1;
              }
            }
          }
        }
      }
      if (have_head && skip_ws(code_view, head_end) >= arg_end) {
        site.form = MetricNameForm::kExact;
        site.name = head;
        out->metric_sites.push_back(std::move(site));
        continue;
      }
      // Open or dynamic: look for a literal tail `... + "lit"` at the end.
      std::string tail;
      std::size_t scan = i;
      std::size_t last_lit_begin = std::string::npos;
      std::size_t last_lit_end = 0;
      std::string last_lit;
      while (scan < arg_end) {
        if (code_view[scan] == '"') {
          std::string value;
          std::size_t lit_end = 0;
          if (!read_string_literal(code_view, scan, &value, &lit_end)) break;
          last_lit_begin = scan;
          last_lit_end = lit_end;
          last_lit = value;
          scan = lit_end;
          continue;
        }
        if (code_view[scan] == '(' || code_view[scan] == '[' ||
            code_view[scan] == '{') {
          // Balanced skip so literals inside helper calls don't count as
          // the tail.
          int depth = 0;
          while (scan < arg_end) {
            const char c = code_view[scan];
            if (c == '"') {
              std::string dummy;
              std::size_t lit_end = 0;
              if (!read_string_literal(code_view, scan, &dummy, &lit_end)) {
                break;
              }
              scan = lit_end;
              continue;
            }
            if (c == '(' || c == '[' || c == '{') ++depth;
            if (c == ')' || c == ']' || c == '}') {
              if (--depth == 0) {
                ++scan;
                break;
              }
            }
            ++scan;
          }
          continue;
        }
        ++scan;
      }
      if (last_lit_begin != std::string::npos &&
          skip_ws(code_view, last_lit_end) >= arg_end &&
          (!have_head || last_lit_begin >= head_end)) {
        // The argument ends with a literal; require a `+` before it so a
        // lone literal inside parens is not mistaken for a tail.
        std::size_t before_lit = last_lit_begin;
        while (before_lit > i && (code_view[before_lit - 1] == ' ' ||
                                  code_view[before_lit - 1] == '\t' ||
                                  code_view[before_lit - 1] == '\n')) {
          --before_lit;
        }
        if (before_lit > i && code_view[before_lit - 1] == '+') {
          tail = last_lit;
        }
      }
      if (have_head && head_end <= i) have_head = false;
      if (have_head || !tail.empty()) {
        site.form = MetricNameForm::kOpen;
        site.name = have_head ? head : "";
        site.tail = tail;
      } else {
        site.form = MetricNameForm::kDynamic;
      }
      out->metric_sites.push_back(std::move(site));
    }
  }
  std::sort(out->metric_sites.begin(), out->metric_sites.end(),
            [](const MetricSite& a, const MetricSite& b) {
              return a.line < b.line;
            });
}

// --- gw::context annotations ----------------------------------------------

void scan_annotations(const std::string& comment_view,
                      FileIndex* out) {
  std::size_t line_begin = 0;
  int line = 0;
  while (line_begin <= comment_view.size()) {
    ++line;
    std::size_t line_end = comment_view.find('\n', line_begin);
    if (line_end == std::string::npos) line_end = comment_view.size();
    const std::string text =
        comment_view.substr(line_begin, line_end - line_begin);
    const std::size_t slashes = text.find("//");
    if (slashes != std::string::npos) {
      const std::size_t marker = text.find("gw::context", slashes);
      if (marker != std::string::npos) {
        ContextAnnotation ann;
        ann.line = line;
        const std::size_t open = text.find('(', marker);
        const std::size_t close = text.find(')', marker);
        if (open != std::string::npos && close != std::string::npos &&
            close > open) {
          std::string value = text.substr(open + 1, close - open - 1);
          const auto first = value.find_first_not_of(" \t");
          const auto last = value.find_last_not_of(" \t");
          if (first != std::string::npos) {
            value = value.substr(first, last - first + 1);
          } else {
            value.clear();
          }
          ann.value = value;
        }
        out->annotations.push_back(ann);
      }
    }
    if (line_end == comment_view.size()) break;
    line_begin = line_end + 1;
  }
}

// Attaches each annotation to the nearest function whose name line is in
// [ann.line, ann.line + 3] (trailing annotations share the name line).
void attach_annotations(FileIndex* out) {
  for (auto& ann : out->annotations) {
    int best = -1;
    int best_line = 0;
    for (std::size_t f = 0; f < out->functions.size(); ++f) {
      const int line = out->functions[f].line;
      if (line < ann.line || line > ann.line + 3) continue;
      if (best == -1 || line < best_line) {
        best = int(f);
        best_line = line;
      }
    }
    if (best >= 0) {
      ann.attached = true;
      ann.attached_function = best;
      if (out->functions[best].context.empty()) {
        out->functions[best].context = ann.value;
      }
      // A second annotation on the same function stays in the list with its
      // own value; the GW008 pass reports conflicts from there.
    }
  }
}

}  // namespace

FileIndex build_file_index(const std::string& path,
                           const std::string& stripped,
                           const std::string& code_view,
                           const std::string& comment_view) {
  FileIndex index;
  index.path = path;
  Parser parser{stripped, tokenize(stripped), line_starts(stripped), &index};
  parser.run();
  scan_metric_sites(code_view, parser.starts, &index);
  scan_annotations(comment_view, &index);
  attach_annotations(&index);
  return index;
}

}  // namespace gw::lint
