// gwlint — the repo's own static analyzer.
//
// The paper's stations survived a glacier winter because failure modes were
// designed out, not debugged in the field. This repo's equivalent contract
// is byte-identical exports across thread counts and platforms — and the
// cheapest place to defend it is before the code runs. gwlint scans C++
// sources for the three classes of invariant the test suite can only catch
// probabilistically:
//
//   GW001 banned-api            wall clocks, ambient entropy and environment
//                               probes (std::random_device, time(), the
//                               std::chrono clocks, getenv, ...) outside an
//                               explicit allowlist.
//   GW002 unordered-iteration   range-for / iterator loops over
//                               std::unordered_map / std::unordered_set —
//                               iteration order is unspecified, so anything
//                               downstream of such a loop can leak host
//                               nondeterminism into an export.
//   GW003 layering              #include edges that point *up* the declared
//                               layer DAG (tools/gwlint/layers.toml), or at
//                               layers the DAG does not know.
//   GW004 pragma-once           headers must carry `#pragma once` (the repo
//                               convention; old-style guards are flagged as
//                               inconsistent).
//   GW005 bad-allow             a gwlint allow(<rule>) suppression comment
//                               that names no known rule or carries no
//                               justification text.
//
// Three semantic rules run over a whole-repo declaration index (index.h,
// semantic.h) rather than one file at a time:
//
//   GW006 persist-coverage      every non-static data member of a type that
//                               defines persist() must be named inside the
//                               persist body — snapshot field-list drift
//                               becomes a lint failure, not a golden-CRC
//                               surprise. References, raw pointers, const
//                               and mutable members are exempt (wiring and
//                               caches); anything else transient needs an
//                               allow marker saying why.
//   GW007 obs-registry          metric/journal names at obs:: registration
//                               sites must be snake.case.dotted, one
//                               instrument kind per name, and round-trip
//                               against docs/OBSERVABILITY.md (undocumented
//                               name or stale row — either direction is a
//                               diagnostic).
//   GW008 thread-context        call-graph coloring from gw::context
//                               comment annotations (see
//                               docs/STATIC_ANALYSIS.md): worker-context
//                               code reaching a coordinator-only function
//                               (or any post_apply site) is a diagnostic.
//
// Suppressions are comments of the form "gwlint" + ": allow(<rule>): <one-
// line justification>" on the offending line or the line directly above it
// (spelled out indirectly here so this very header does not register one).
// The justification is mandatory — a bare allow is itself a diagnostic
// (GW005). Whole-file allowlists (for e.g. bench_util.h's thread-count
// probe) live in the config, not in code.
//
// The library is deliberately self-contained (std only, no gw::util) so the
// analyzer can never participate in the layer tangles it polices. Policy
// and usage: docs/STATIC_ANALYSIS.md.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

namespace gw::lint {

// One finding. Formatting and ordering are deterministic: diagnostics sort
// by (file, line, id, message) and render as
//   path:line: [GW00N/rule-name] message
struct Diagnostic {
  std::string file;  // repo-relative, forward slashes
  int line = 0;      // 1-based
  std::string id;    // "GW001"
  std::string rule;  // "banned-api"
  std::string message;

  friend bool operator==(const Diagnostic&, const Diagnostic&) = default;
};

struct RuleInfo {
  const char* id;
  const char* name;
  const char* summary;
};

// The fixed rule catalog (sorted by id).
const std::vector<RuleInfo>& rule_catalog();

// Parsed tools/gwlint/layers.toml. `error` is non-empty when the text was
// malformed or the declared layer graph is not a DAG; no linting should
// happen with a broken config.
struct Config {
  // Declared direct dependencies, layer -> deps (downward edges).
  std::map<std::string, std::vector<std::string>> layer_deps;
  // Transitive closure of layer_deps, computed by parse_config.
  std::map<std::string, std::set<std::string>> layer_closure;
  // Whole-file allowlists, rule name -> repo-relative paths.
  std::map<std::string, std::set<std::string>> allow_files;
  std::string error;
};

// Parses the config text (a small TOML subset: `[layers]` with
// `name = ["dep", ...]` entries and `[allow.<rule>]` with
// `files = ["path", ...]`). Validates that every dependency is a declared
// layer and that the graph is acyclic.
Config parse_config(const std::string& text);

// Lints one file with the per-file rules (GW001-GW005). `path` must be
// repo-relative with forward slashes — rule applicability keys off it
// (layering and unordered-iteration only fire under src/, GW002 also under
// bench/ where exports are written). The semantic passes need the whole
// repo and run only through lint_repo.
std::vector<Diagnostic> lint_file(const std::string& path,
                                  const std::string& content,
                                  const Config& config);

struct SourceFile {
  std::string path;  // repo-relative, forward slashes
  std::string content;
};

// Lints the whole tree: the per-file rules on every file, plus the
// semantic passes (GW006-GW008) over a declaration index built from the
// files under src/. `obs_doc` is the text of docs/OBSERVABILITY.md and
// `obs_doc_path` its repo-relative path for diagnostics; pass an empty
// `obs_doc` to skip GW007 (no doc means no contract to check). Inline
// allow markers and per-rule whole-file config allows apply to the
// semantic diagnostics exactly as to the per-file ones.
std::vector<Diagnostic> lint_repo(const std::vector<SourceFile>& files,
                                  const std::string& obs_doc_path,
                                  const std::string& obs_doc,
                                  const Config& config);

// --- baseline -------------------------------------------------------------
//
// A baseline file holds one formatted diagnostic per line (the exact
// format_diagnostic output); blank lines and '#' comments are skipped.
// Baselined findings are suppressed; baselined lines that no longer fire
// are *stale* and must be pruned — CI fails on them so the baseline only
// ever shrinks.

std::vector<std::string> parse_baseline(const std::string& text);

struct BaselineResult {
  std::vector<Diagnostic> fresh;      // fired and not baselined
  std::vector<std::string> stale;     // baselined but did not fire
  std::size_t suppressed = 0;         // fired and baselined
};

BaselineResult apply_baseline(std::vector<Diagnostic> diagnostics,
                              const std::vector<std::string>& baseline);

// Deterministic JSON rendering of a lint result (schema "gwlint.v1"):
// byte-identical across runs for identical inputs, 2-space indented,
// trailing newline. Diagnostics must already be sorted.
std::string format_json(const BaselineResult& result);

// Canonical ordering (file, line, id, message) — apply before printing.
void sort_diagnostics(std::vector<Diagnostic>& diagnostics);

std::string format_diagnostic(const Diagnostic& diagnostic);

// Replaces comments, string literals and char literals with spaces,
// preserving length and line structure, so token scans cannot match inside
// them. Exposed for the unit tests.
std::string strip_comments_and_strings(const std::string& content);

}  // namespace gw::lint
