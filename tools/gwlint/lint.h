// gwlint — the repo's own static analyzer.
//
// The paper's stations survived a glacier winter because failure modes were
// designed out, not debugged in the field. This repo's equivalent contract
// is byte-identical exports across thread counts and platforms — and the
// cheapest place to defend it is before the code runs. gwlint scans C++
// sources for the three classes of invariant the test suite can only catch
// probabilistically:
//
//   GW001 banned-api            wall clocks, ambient entropy and environment
//                               probes (std::random_device, time(), the
//                               std::chrono clocks, getenv, ...) outside an
//                               explicit allowlist.
//   GW002 unordered-iteration   range-for / iterator loops over
//                               std::unordered_map / std::unordered_set —
//                               iteration order is unspecified, so anything
//                               downstream of such a loop can leak host
//                               nondeterminism into an export.
//   GW003 layering              #include edges that point *up* the declared
//                               layer DAG (tools/gwlint/layers.toml), or at
//                               layers the DAG does not know.
//   GW004 pragma-once           headers must carry `#pragma once` (the repo
//                               convention; old-style guards are flagged as
//                               inconsistent).
//   GW005 bad-allow             a gwlint allow(<rule>) suppression comment
//                               that names no known rule or carries no
//                               justification text.
//
// Suppressions are comments of the form "gwlint" + ": allow(<rule>): <one-
// line justification>" on the offending line or the line directly above it
// (spelled out indirectly here so this very header does not register one).
// The justification is mandatory — a bare allow is itself a diagnostic
// (GW005). Whole-file allowlists (for e.g. bench_util.h's thread-count
// probe) live in the config, not in code.
//
// The library is deliberately self-contained (std only, no gw::util) so the
// analyzer can never participate in the layer tangles it polices. Policy
// and usage: docs/STATIC_ANALYSIS.md.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

namespace gw::lint {

// One finding. Formatting and ordering are deterministic: diagnostics sort
// by (file, line, id, message) and render as
//   path:line: [GW00N/rule-name] message
struct Diagnostic {
  std::string file;  // repo-relative, forward slashes
  int line = 0;      // 1-based
  std::string id;    // "GW001"
  std::string rule;  // "banned-api"
  std::string message;

  friend bool operator==(const Diagnostic&, const Diagnostic&) = default;
};

struct RuleInfo {
  const char* id;
  const char* name;
  const char* summary;
};

// The fixed rule catalog (sorted by id).
const std::vector<RuleInfo>& rule_catalog();

// Parsed tools/gwlint/layers.toml. `error` is non-empty when the text was
// malformed or the declared layer graph is not a DAG; no linting should
// happen with a broken config.
struct Config {
  // Declared direct dependencies, layer -> deps (downward edges).
  std::map<std::string, std::vector<std::string>> layer_deps;
  // Transitive closure of layer_deps, computed by parse_config.
  std::map<std::string, std::set<std::string>> layer_closure;
  // Whole-file allowlists, rule name -> repo-relative paths.
  std::map<std::string, std::set<std::string>> allow_files;
  std::string error;
};

// Parses the config text (a small TOML subset: `[layers]` with
// `name = ["dep", ...]` entries and `[allow.<rule>]` with
// `files = ["path", ...]`). Validates that every dependency is a declared
// layer and that the graph is acyclic.
Config parse_config(const std::string& text);

// Lints one file. `path` must be repo-relative with forward slashes — rule
// applicability keys off it (layering and unordered-iteration only fire
// under src/, GW002 also under bench/ where exports are written).
std::vector<Diagnostic> lint_file(const std::string& path,
                                  const std::string& content,
                                  const Config& config);

// Canonical ordering (file, line, id, message) — apply before printing.
void sort_diagnostics(std::vector<Diagnostic>& diagnostics);

std::string format_diagnostic(const Diagnostic& diagnostic);

// Replaces comments, string literals and char literals with spaces,
// preserving length and line structure, so token scans cannot match inside
// them. Exposed for the unit tests.
std::string strip_comments_and_strings(const std::string& content);

}  // namespace gw::lint
