// The three semantic passes (GW006-GW008) over the declaration index.
//
// These run once per lint invocation, not per file: GW006 resolves
// out-of-line persist() bodies across translation units, GW007 reconciles
// metric sites against docs/OBSERVABILITY.md, and GW008 colors a call
// graph. Diagnostics come back unsuppressed — the caller applies inline
// allow markers and whole-file config allows, exactly as for the per-file
// rules.
#pragma once

#include <string>
#include <vector>

#include "index.h"
#include "lint.h"

namespace gw::lint {

// docs/OBSERVABILITY.md reduced to its contract rows. A metric row is a
// markdown table line whose first cell is a backticked dotted name
// (`component.name`, possibly with `<placeholder>` segments) and whose
// second cell names the instrument kind; a journal row is a backticked
// dot-free snake_case name (an event-type string).
struct ObsDoc {
  std::string path;  // repo-relative, for diagnostics

  struct MetricRow {
    std::string name;
    std::string kind;  // "counter"/"gauge"/"histogram", or "" if unparsed
    int line = 0;
    bool placeholder = false;  // contains a <...> segment
  };
  struct JournalRow {
    std::string name;
    int line = 0;
  };
  std::vector<MetricRow> metrics;
  std::vector<JournalRow> journal;
};

ObsDoc parse_obs_doc(const std::string& path, const std::string& text);

// GW006: every non-exempt data member of a persisting type must be named
// in its persist() body.
void check_persist_coverage(const std::vector<FileIndex>& index,
                            std::vector<Diagnostic>* diagnostics);

// GW007: metric/journal names are snake-case-dotted, kind-consistent, and
// round-trip against the doc (code -> doc and doc -> code).
void check_observability_registry(const std::vector<FileIndex>& index,
                                  const ObsDoc& doc,
                                  std::vector<Diagnostic>* diagnostics);

// GW008: call-graph coloring from gw::context annotations; worker-context
// code must not reach coordinator-only functions.
void check_thread_context(const std::vector<FileIndex>& index,
                          std::vector<Diagnostic>* diagnostics);

}  // namespace gw::lint
