#include "semantic.h"

#include <algorithm>
#include <cctype>
#include <map>
#include <set>

namespace gw::lint {
namespace {

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

// Whole-token occurrence test (same contract as the GW001 scan).
bool contains_token(const std::string& text, const std::string& token) {
  std::size_t pos = 0;
  while ((pos = text.find(token, pos)) != std::string::npos) {
    const bool left_ok = pos == 0 || !is_ident_char(text[pos - 1]);
    const std::size_t after = pos + token.size();
    const bool right_ok = after >= text.size() || !is_ident_char(text[after]);
    if (left_ok && right_ok) return true;
    pos = after;
  }
  return false;
}

void add(std::vector<Diagnostic>* out, std::string file, int line,
         const char* id, const char* rule, std::string message) {
  out->push_back(
      Diagnostic{std::move(file), line, id, rule, std::move(message)});
}

// --- GW006 ----------------------------------------------------------------

// Finds the persist() body for `cls` declared in `file`: an inline method
// first, then an out-of-line `Cls::persist` in the same file, then a
// unique one anywhere in the index.
const FunctionRecord* find_persist_body(const std::vector<FileIndex>& index,
                                        const FileIndex& file,
                                        const ClassDecl& cls) {
  for (const auto& fn : file.functions) {
    if (fn.qualifier == cls.name && fn.name == "persist" && fn.has_body) {
      return &fn;
    }
  }
  const FunctionRecord* found = nullptr;
  for (const auto& other : index) {
    for (const auto& fn : other.functions) {
      if (fn.qualifier == cls.name && fn.name == "persist" && fn.has_body) {
        if (found != nullptr) return nullptr;  // ambiguous: don't guess
        found = &fn;
      }
    }
  }
  return found;
}

}  // namespace

void check_persist_coverage(const std::vector<FileIndex>& index,
                            std::vector<Diagnostic>* diagnostics) {
  for (const auto& file : index) {
    for (const auto& cls : file.classes) {
      if (!cls.declares_persist) continue;
      const FunctionRecord* persist = find_persist_body(index, file, cls);
      if (persist == nullptr) continue;  // body not visible to the index
      for (const auto& member : cls.members) {
        if (member.exempt) continue;
        if (contains_token(persist->body, member.name)) continue;
        add(diagnostics, file.path, member.line, "GW006", "persist-coverage",
            "'" + cls.name + "::" + member.name +
                "' is never named in " + cls.name +
                "::persist(); snapshot restore will silently drop it — "
                "persist it, or mark it `// gwlint: "
                "allow(persist-coverage): <why it is transient>`");
      }
    }
  }
}

// --- GW007 ----------------------------------------------------------------

namespace {

bool snake_dotted(const std::string& name) {
  if (name.empty() || name.front() == '.' || name.back() == '.') return false;
  bool prev_dot = false;
  for (char c : name) {
    if (c == '.') {
      if (prev_dot) return false;
      prev_dot = true;
      continue;
    }
    prev_dot = false;
    const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                    c == '_';
    if (!ok) return false;
  }
  return true;
}

// The literal prefix of a doc row name, up to its first <placeholder>.
std::string row_prefix(const std::string& row) {
  const auto lt = row.find('<');
  return lt == std::string::npos ? row : row.substr(0, lt);
}

// The literal suffix after the last <placeholder>.
std::string row_suffix(const std::string& row) {
  const auto gt = row.rfind('>');
  return gt == std::string::npos ? row : row.substr(gt + 1);
}

// Does the exact metric name `full` match doc row `row` (which may contain
// <placeholder> segments standing for one-or-more name characters)?
bool exact_matches_row(const std::string& full, const ObsDoc::MetricRow& row) {
  if (!row.placeholder) return full == row.name;
  // Greedy in-order match of the literal chunks around placeholders.
  std::vector<std::string> chunks;
  std::size_t i = 0;
  while (i < row.name.size()) {
    const auto lt = row.name.find('<', i);
    if (lt == std::string::npos) {
      chunks.push_back(row.name.substr(i));
      break;
    }
    chunks.push_back(row.name.substr(i, lt - i));
    const auto gt = row.name.find('>', lt);
    if (gt == std::string::npos) return false;  // malformed row
    i = gt + 1;
  }
  if (i >= row.name.size() && (row.name.empty() || row.name.back() == '>')) {
    chunks.push_back("");
  }
  if (chunks.size() < 2) return false;
  std::size_t pos = 0;
  for (std::size_t c = 0; c < chunks.size(); ++c) {
    const std::string& chunk = chunks[c];
    if (c == 0) {
      if (full.compare(0, chunk.size(), chunk) != 0) return false;
      pos = chunk.size();
      continue;
    }
    if (c + 1 == chunks.size()) {
      if (full.size() < pos + chunk.size() + 1) return false;  // placeholder
      // must consume at least one character
      if (full.compare(full.size() - chunk.size(), chunk.size(), chunk) != 0) {
        return false;
      }
      return true;
    }
    const auto found = full.find(chunk, pos + 1);
    if (found == std::string::npos || chunk.empty()) return false;
    pos = found + chunk.size();
  }
  return true;
}

// Does an open site (literal head and/or tail) match placeholder row `row`?
bool open_matches_row(const std::string& component, const std::string& head,
                      const std::string& tail,
                      const ObsDoc::MetricRow& row) {
  if (!row.placeholder) return false;
  const std::string prefix = row_prefix(row.name);
  const std::string suffix = row_suffix(row.name);
  if (!head.empty()) {
    return prefix == component + "." + head &&
           (tail.empty() || suffix == tail);
  }
  if (!tail.empty()) {
    return suffix == tail &&
           row.name.compare(0, component.size() + 1, component + ".") == 0;
  }
  return false;
}

// kCamelCase enumerator -> snake_case journal string (`kStateTransition`
// -> `state_transition`), mirroring obs::to_string(EventType).
std::string enum_to_snake(const std::string& enumerator) {
  std::string name = enumerator;
  if (name.size() > 1 && name[0] == 'k' &&
      std::isupper(static_cast<unsigned char>(name[1])) != 0) {
    name.erase(0, 1);
  }
  std::string out;
  for (std::size_t i = 0; i < name.size(); ++i) {
    const char c = name[i];
    if (std::isupper(static_cast<unsigned char>(c)) != 0) {
      if (i > 0) out.push_back('_');
      out.push_back(char(std::tolower(static_cast<unsigned char>(c))));
    } else {
      out.push_back(c);
    }
  }
  return out;
}

struct SiteRef {
  const FileIndex* file;
  const MetricSite* site;
};

bool site_before(const SiteRef& a, const SiteRef& b) {
  return std::tie(a.file->path, a.site->line) <
         std::tie(b.file->path, b.site->line);
}

}  // namespace

ObsDoc parse_obs_doc(const std::string& path, const std::string& text) {
  ObsDoc doc;
  doc.path = path;
  int line_no = 0;
  std::size_t begin = 0;
  while (begin <= text.size()) {
    ++line_no;
    std::size_t end = text.find('\n', begin);
    if (end == std::string::npos) end = text.size();
    std::string line = text.substr(begin, end - begin);
    const auto first = line.find_first_not_of(" \t");
    if (first != std::string::npos && line[first] == '|') {
      // First cell: between the first two pipes.
      const auto second_pipe = line.find('|', first + 1);
      if (second_pipe != std::string::npos) {
        std::string cell = line.substr(first + 1, second_pipe - first - 1);
        const auto c0 = cell.find_first_not_of(" \t");
        const auto c1 = cell.find_last_not_of(" \t");
        if (c0 != std::string::npos) cell = cell.substr(c0, c1 - c0 + 1);
        else cell.clear();
        // Exactly one backticked name, nothing else in the cell.
        if (cell.size() > 2 && cell.front() == '`' && cell.back() == '`' &&
            cell.find('`', 1) == cell.size() - 1) {
          const std::string name = cell.substr(1, cell.size() - 2);
          const bool chars_ok =
              name.find_first_not_of("abcdefghijklmnopqrstuvwxyz"
                                     "0123456789_.<>") == std::string::npos;
          if (chars_ok && name.find('.') != std::string::npos) {
            ObsDoc::MetricRow row;
            row.name = name;
            row.line = line_no;
            row.placeholder = name.find('<') != std::string::npos;
            // Second cell: the instrument kind.
            const auto third_pipe = line.find('|', second_pipe + 1);
            if (third_pipe != std::string::npos) {
              std::string kind = line.substr(
                  second_pipe + 1, third_pipe - second_pipe - 1);
              const auto k0 = kind.find_first_not_of(" \t`");
              const auto k1 = kind.find_last_not_of(" \t`");
              if (k0 != std::string::npos) {
                kind = kind.substr(k0, k1 - k0 + 1);
                if (kind == "counter" || kind == "gauge" ||
                    kind == "histogram") {
                  row.kind = kind;
                }
              }
            }
            doc.metrics.push_back(std::move(row));
          } else if (chars_ok && !name.empty() &&
                     name.find_first_of("<>") == std::string::npos) {
            doc.journal.push_back({name, line_no});
          }
        }
      }
    }
    if (end == text.size()) break;
    begin = end + 1;
  }
  return doc;
}

void check_observability_registry(const std::vector<FileIndex>& index,
                                  const ObsDoc& doc,
                                  std::vector<Diagnostic>* diagnostics) {
  // Gather all sites, sorted for deterministic "first site" attribution.
  std::vector<SiteRef> sites;
  for (const auto& file : index) {
    for (const auto& site : file.metric_sites) {
      sites.push_back({&file, &site});
    }
  }
  std::sort(sites.begin(), sites.end(), site_before);

  std::set<std::string> matched_rows;  // row names satisfied by some site
  std::map<std::string, std::pair<std::string, SiteRef>> kind_by_name;
  std::set<std::string> reported_names;

  for (const auto& ref : sites) {
    const MetricSite& site = *ref.site;
    if (!snake_dotted(site.component)) {
      add(diagnostics, ref.file->path, site.line, "GW007",
          "obs-registry",
          "metric component '" + site.component +
              "' is not snake_case; the export schema "
              "(docs/OBSERVABILITY.md) requires [a-z0-9_] components");
      continue;
    }
    if (site.form == MetricNameForm::kDynamic) {
      add(diagnostics, ref.file->path, site.line, "GW007", "obs-registry",
          "metric name under component '" + site.component +
              "' is built entirely at runtime; give it a literal head or "
              "tail so gwlint can match it against docs/OBSERVABILITY.md");
      continue;
    }
    if (site.form == MetricNameForm::kExact) {
      const std::string full = site.component + "." + site.name;
      if (!snake_dotted(full)) {
        add(diagnostics, ref.file->path, site.line, "GW007", "obs-registry",
            "metric name '" + full +
                "' is not snake.case.dotted (lowercase [a-z0-9_] segments "
                "joined by single dots)");
        continue;
      }
      // Kind uniqueness per full name.
      auto [it, inserted] = kind_by_name.emplace(
          full, std::make_pair(site.kind, ref));
      if (!inserted && it->second.first != site.kind &&
          reported_names.count("kind:" + full) == 0) {
        reported_names.insert("kind:" + full);
        add(diagnostics, ref.file->path, site.line, "GW007", "obs-registry",
            "metric '" + full + "' is registered as a " + site.kind +
                " here but as a " + it->second.first + " at " +
                it->second.second.file->path + ":" +
                std::to_string(it->second.second.site->line) +
                "; one name, one instrument");
      }
      // Documented?
      const ObsDoc::MetricRow* matched = nullptr;
      for (const auto& row : doc.metrics) {
        if (exact_matches_row(full, row)) {
          matched = &row;
          matched_rows.insert(row.name);
          if (!row.kind.empty() && row.kind == site.kind) break;
        }
      }
      if (matched == nullptr) {
        if (reported_names.insert("doc:" + full).second) {
          add(diagnostics, ref.file->path, site.line, "GW007",
              "obs-registry",
              "metric '" + full + "' has no row in " + doc.path +
                  "; the doc is the export contract — add a row (or a "
                  "<placeholder> row) in the matching table");
        }
      } else if (!matched->kind.empty() && matched->kind != site.kind) {
        if (reported_names.insert("dockind:" + full).second) {
          add(diagnostics, ref.file->path, site.line, "GW007",
              "obs-registry",
              "metric '" + full + "' is a " + site.kind + " in code but " +
                  doc.path + ":" + std::to_string(matched->line) +
                  " documents it as a " + matched->kind);
        }
      }
      continue;
    }
    // Open site: literal head and/or tail around a runtime part.
    const std::string shown =
        site.component + "." + site.name + "<...>" + site.tail;
    if (!site.name.empty() && !snake_dotted(site.component + "." +
                                            site.name + "x")) {
      add(diagnostics, ref.file->path, site.line, "GW007", "obs-registry",
          "metric name head '" + site.component + "." + site.name +
              "' is not snake.case.dotted");
      continue;
    }
    const ObsDoc::MetricRow* matched = nullptr;
    for (const auto& row : doc.metrics) {
      if (open_matches_row(site.component, site.name, site.tail, row)) {
        matched = &row;
        matched_rows.insert(row.name);
        if (!row.kind.empty() && row.kind == site.kind) break;
      }
    }
    if (matched == nullptr) {
      if (reported_names.insert("doc:" + shown).second) {
        add(diagnostics, ref.file->path, site.line, "GW007", "obs-registry",
            "dynamically-keyed metric '" + shown + "' has no <placeholder> "
            "row in " + doc.path + "; document the family (e.g. `" +
                site.component + "." + site.name + "<key>" + site.tail +
                "`)");
      }
    } else if (!matched->kind.empty() && matched->kind != site.kind) {
      if (reported_names.insert("dockind:" + shown).second) {
        add(diagnostics, ref.file->path, site.line, "GW007", "obs-registry",
            "metric family '" + shown + "' is a " + site.kind +
                " in code but " + doc.path + ":" +
                std::to_string(matched->line) + " documents it as a " +
                matched->kind);
      }
    }
  }

  // Doc -> code: every row must be matched by some site; duplicates are
  // drift waiting to happen.
  std::set<std::string> seen_rows;
  for (const auto& row : doc.metrics) {
    if (!seen_rows.insert(row.name).second) {
      add(diagnostics, doc.path, row.line, "GW007", "obs-registry",
          "duplicate row for metric '" + row.name + "' in " + doc.path);
      continue;
    }
    if (matched_rows.count(row.name) != 0) continue;
    add(diagnostics, doc.path, row.line, "GW007", "obs-registry",
        "documented metric '" + row.name +
            "' is not registered anywhere under src/; fix the name or "
            "delete the stale row");
  }

  // Journal leg: EventType enumerators <-> journal rows, both directions.
  std::vector<std::pair<const FileIndex*, const EnumDecl*>> event_enums;
  for (const auto& file : index) {
    for (const auto& decl : file.enums) {
      if (decl.name == "EventType") event_enums.push_back({&file, &decl});
    }
  }
  if (!event_enums.empty()) {
    std::set<std::string> enum_names;
    for (const auto& [file, decl] : event_enums) {
      for (const auto& enumerator : decl->enumerators) {
        const std::string snake = enum_to_snake(enumerator);
        enum_names.insert(snake);
        bool documented = false;
        for (const auto& row : doc.journal) {
          if (row.name == snake) {
            documented = true;
            break;
          }
        }
        if (!documented) {
          add(diagnostics, file->path, decl->line, "GW007", "obs-registry",
              "journal event type '" + snake + "' (EventType::" +
                  enumerator + ") has no row in " + doc.path +
                  "'s event-type table");
        }
      }
    }
    std::set<std::string> seen_journal;
    for (const auto& row : doc.journal) {
      if (!seen_journal.insert(row.name).second) {
        add(diagnostics, doc.path, row.line, "GW007", "obs-registry",
            "duplicate journal event-type row '" + row.name + "'");
        continue;
      }
      if (enum_names.count(row.name) == 0) {
        add(diagnostics, doc.path, row.line, "GW007", "obs-registry",
            "documented journal event type '" + row.name +
                "' has no EventType enumerator; fix the row or the enum");
      }
    }
  }
}

// --- GW008 ----------------------------------------------------------------

namespace {

struct FnRef {
  std::size_t file;
  std::size_t fn;
};

bool fn_ref_less(const FnRef& a, const FnRef& b) {
  return std::tie(a.file, a.fn) < std::tie(b.file, b.fn);
}

std::string display_name(const FunctionRecord& fn) {
  return fn.qualifier.empty() ? fn.name : fn.qualifier + "::" + fn.name;
}

}  // namespace

void check_thread_context(const std::vector<FileIndex>& index,
                          std::vector<Diagnostic>* diagnostics) {
  // Annotation hygiene first: values and attachment.
  for (const auto& file : index) {
    std::map<int, std::pair<int, std::string>> per_function;
    for (const auto& ann : file.annotations) {
      if (ann.value != "worker" && ann.value != "coordinator") {
        add(diagnostics, file.path, ann.line, "GW008", "thread-context",
            "unknown gw::context value '" + ann.value +
                "'; expected `// gw::context(worker)` or "
                "`// gw::context(coordinator)`");
        continue;
      }
      if (!ann.attached) {
        add(diagnostics, file.path, ann.line, "GW008", "thread-context",
            "gw::context annotation is not attached to any function; place "
            "it on, or up to 3 lines above, the function's name line");
        continue;
      }
      const auto it = per_function.find(ann.attached_function);
      if (it == per_function.end()) {
        per_function[ann.attached_function] = {ann.line, ann.value};
      } else if (it->second.second != ann.value) {
        add(diagnostics, file.path, ann.line, "GW008", "thread-context",
            "conflicting gw::context annotations (" + it->second.second +
                " at line " + std::to_string(it->second.first) + ", " +
                ann.value + " here) on the same function");
      }
    }
  }

  // Effective context: explicit annotations, then declaration -> definition
  // propagation by qualified name.
  std::vector<std::vector<std::string>> context(index.size());
  std::map<std::string, std::string> by_qualified_name;
  for (std::size_t f = 0; f < index.size(); ++f) {
    context[f].resize(index[f].functions.size());
    for (std::size_t i = 0; i < index[f].functions.size(); ++i) {
      const FunctionRecord& fn = index[f].functions[i];
      context[f][i] = fn.context;
      if (!fn.context.empty() && !fn.qualifier.empty()) {
        by_qualified_name.emplace(fn.qualifier + "::" + fn.name, fn.context);
      }
    }
  }
  for (std::size_t f = 0; f < index.size(); ++f) {
    for (std::size_t i = 0; i < index[f].functions.size(); ++i) {
      if (!context[f][i].empty()) continue;
      const FunctionRecord& fn = index[f].functions[i];
      if (fn.qualifier.empty()) continue;
      const auto it = by_qualified_name.find(fn.qualifier + "::" + fn.name);
      if (it != by_qualified_name.end()) context[f][i] = it->second;
    }
  }

  // Names that are coordinator-only: every indexed function with that
  // simple name carries coordinator context (so overloaded generic names
  // never fire), plus the hard-wired `post_apply` (the sharded kernel's
  // unsynchronized cross-shard apply, worker-unsafe by construction).
  std::map<std::string, bool> all_coordinator;  // name -> every def/decl is
  for (std::size_t f = 0; f < index.size(); ++f) {
    for (std::size_t i = 0; i < index[f].functions.size(); ++i) {
      const std::string& name = index[f].functions[i].name;
      const bool coord = context[f][i] == "coordinator";
      auto [it, inserted] = all_coordinator.emplace(name, coord);
      if (!inserted) it->second = it->second && coord;
    }
  }
  std::set<std::string> coordinator_names;
  for (const auto& [name, coord] : all_coordinator) {
    if (coord) coordinator_names.insert(name);
  }
  coordinator_names.insert("post_apply");

  // Color the worker set: BFS from worker-annotated bodies through call
  // edges matched by simple name, never entering coordinator functions.
  std::map<std::string, std::vector<FnRef>> bodies_by_name;
  for (std::size_t f = 0; f < index.size(); ++f) {
    for (std::size_t i = 0; i < index[f].functions.size(); ++i) {
      if (!index[f].functions[i].has_body) continue;
      if (context[f][i] == "coordinator") continue;
      bodies_by_name[index[f].functions[i].name].push_back({f, i});
    }
  }
  std::set<std::pair<std::size_t, std::size_t>> colored;
  std::vector<FnRef> worklist;
  for (std::size_t f = 0; f < index.size(); ++f) {
    for (std::size_t i = 0; i < index[f].functions.size(); ++i) {
      if (context[f][i] == "worker" && index[f].functions[i].has_body) {
        if (colored.insert({f, i}).second) worklist.push_back({f, i});
      }
    }
  }
  while (!worklist.empty()) {
    const FnRef ref = worklist.back();
    worklist.pop_back();
    for (const auto& call : index[ref.file].functions[ref.fn].calls) {
      const auto it = bodies_by_name.find(call.name);
      if (it == bodies_by_name.end()) continue;
      for (const FnRef& callee : it->second) {
        if (colored.insert({callee.file, callee.fn}).second) {
          worklist.push_back(callee);
        }
      }
    }
  }

  // Diagnostics: a colored (worker-context) function calling a
  // coordinator-only name.
  std::vector<FnRef> colored_sorted;
  for (const auto& [f, i] : colored) colored_sorted.push_back({f, i});
  std::sort(colored_sorted.begin(), colored_sorted.end(), fn_ref_less);
  for (const FnRef& ref : colored_sorted) {
    const FunctionRecord& fn = index[ref.file].functions[ref.fn];
    for (const auto& call : fn.calls) {
      if (call.name == fn.name) continue;  // recursion, not an escape
      if (coordinator_names.count(call.name) == 0) continue;
      add(diagnostics, index[ref.file].path, call.line, "GW008",
          "thread-context",
          "'" + display_name(fn) + "' runs in worker context but calls "
          "coordinator-only '" + call.name +
              "()'; route cross-shard work through post_from/"
              "post_apply_from or a barrier hook (docs/PARALLELISM.md)");
    }
  }
}

}  // namespace gw::lint
