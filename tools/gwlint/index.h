// Declaration index for gwlint's semantic passes (GW006-GW008).
//
// The token-matching rules (GW001-GW005) need no model of the program; the
// semantic rules do. This header builds a deliberately small one — not an
// AST, just the declarations the passes consume:
//
//   * classes/structs with their non-static data members and whether they
//     define or declare a persist() method         (GW006 persist-coverage)
//   * enums and their enumerators                  (GW007 EventType <-> doc)
//   * metric registration sites — counter()/gauge()/histogram() calls with
//     their (component, name) string-literal arguments, classified exact /
//     open (literal head or tail around a dynamic part) / dynamic
//                                                  (GW007 obs-registry)
//   * function definitions with body spans, the calls inside them, and any
//     `gw::context(worker|coordinator)` comment annotation
//                                                  (GW008 thread-context)
//
// Everything is recognised from the comment/string-stripped token stream by
// a single forward scan with brace/paren/angle matching — no preprocessor,
// no name lookup, no types. The parser is intentionally conservative: when
// a construct is too exotic to classify it is skipped, which can only make
// the passes miss a declaration (a false negative), never invent one.
//
// Self-contained (std only), like the rest of gwlint.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace gw::lint {

// A call site inside a function body: `name(...)` with `name` not a
// keyword. Member calls record the member name (`obj.post_apply(...)`
// records `post_apply`).
struct CallSite {
  std::string name;
  int line = 0;
};

// A function definition or declaration. Methods carry their class as
// `qualifier`; out-of-line definitions (`void Station::persist(...)`)
// carry the written qualifier the same way, which is how the two meet.
struct FunctionRecord {
  std::string qualifier;  // "" for free functions
  std::string name;
  int line = 0;  // line of the function name token
  bool has_body = false;
  std::string body;  // stripped text of the body, braces included
  int body_line = 0;  // line the body opens on
  std::vector<CallSite> calls;
  std::string context;  // "", "worker" or "coordinator" (gw::context)
};

// A non-static data member. Members that persist() cannot meaningfully
// restore are pre-exempted here: references and raw pointers (wiring,
// re-established by construction), const members (unrestorable), and
// mutable members (caches by definition).
struct MemberDecl {
  std::string name;
  int line = 0;
  bool exempt = false;
};

struct ClassDecl {
  std::string name;  // simple name (nested classes are indexed flat)
  int line = 0;
  std::vector<MemberDecl> members;
  bool declares_persist = false;  // a persist() method, with or without body
  int persist_line = 0;
};

struct EnumDecl {
  std::string name;
  int line = 0;
  std::vector<std::string> enumerators;
};

// How much of a metric name the scan could pin down statically.
enum class MetricNameForm {
  kExact,    // both arguments are string literals
  kOpen,     // literal head and/or tail around a runtime part
  kDynamic,  // component is a literal, name is entirely runtime
};

struct MetricSite {
  std::string kind;       // "counter", "gauge" or "histogram"
  std::string component;  // always a literal (else the site is skipped)
  MetricNameForm form = MetricNameForm::kExact;
  std::string name;  // exact: full name; open: literal head (may be empty)
  std::string tail;  // open: literal tail (may be empty)
  int line = 0;
};

// A `gw::context(<value>)` comment annotation, before attachment.
struct ContextAnnotation {
  int line = 0;
  std::string value;
  bool attached = false;
  int attached_function = -1;  // index into FileIndex::functions
};

struct FileIndex {
  std::string path;
  std::vector<ClassDecl> classes;
  std::vector<EnumDecl> enums;
  std::vector<FunctionRecord> functions;  // methods and free functions
  std::vector<MetricSite> metric_sites;
  std::vector<ContextAnnotation> annotations;  // unattached ones survive
};

// Builds the index for one file.
//   stripped      comments and strings blanked (token scans)
//   code_view     comments blanked, string literals kept (metric names)
//   comment_view  strings blanked, comments kept (gw::context annotations)
// All three views preserve byte offsets and line structure exactly.
FileIndex build_file_index(const std::string& path,
                           const std::string& stripped,
                           const std::string& code_view,
                           const std::string& comment_view);

}  // namespace gw::lint
