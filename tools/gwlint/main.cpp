// gwlint CLI — deterministic lint over the repo tree.
//
//   gwlint [--root DIR] [--config FILE] [--list-rules] [path...]
//
// Paths are repo-relative files or directories (directories are walked
// recursively for *.h / *.cpp, in sorted order). Default: src. Exit code is
// 1 when any diagnostic is emitted, 2 on usage/config errors. Output is
// file:line-sorted and byte-stable across runs and machines — the same
// contract the exports it protects are held to.
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "lint.h"

namespace {

namespace fs = std::filesystem;

bool has_lintable_extension(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".h" || ext == ".cpp";
}

// Repo-relative path with forward slashes.
std::string relative_slashes(const fs::path& path, const fs::path& root) {
  std::string rel = fs::relative(path, root).generic_string();
  return rel;
}

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--root DIR] [--config FILE] [--list-rules] [path...]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = fs::current_path();
  std::string config_path;
  std::vector<std::string> inputs;
  bool list_rules = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--config" && i + 1 < argc) {
      config_path = argv[++i];
    } else if (arg == "--list-rules") {
      list_rules = true;
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      return usage(argv[0]);
    } else {
      inputs.push_back(arg);
    }
  }

  if (list_rules) {
    for (const auto& rule : gw::lint::rule_catalog()) {
      std::cout << rule.id << "  " << rule.name << "\n    " << rule.summary
                << "\n";
    }
    return 0;
  }

  root = fs::absolute(root);
  if (config_path.empty()) {
    config_path = (root / "tools/gwlint/layers.toml").string();
  } else if (fs::path(config_path).is_relative()) {
    config_path = (root / config_path).string();
  }

  std::ifstream config_stream(config_path);
  if (!config_stream) {
    std::cerr << "gwlint: cannot open config " << config_path << "\n";
    return 2;
  }
  std::stringstream config_text;
  config_text << config_stream.rdbuf();
  const gw::lint::Config config = gw::lint::parse_config(config_text.str());
  if (!config.error.empty()) {
    std::cerr << "gwlint: bad config " << config_path << ": " << config.error
              << "\n";
    return 2;
  }

  if (inputs.empty()) inputs.push_back("src");

  // Expand inputs to a sorted, de-duplicated file list.
  std::vector<std::string> files;
  for (const auto& input : inputs) {
    const fs::path path =
        fs::path(input).is_absolute() ? fs::path(input) : root / input;
    std::error_code ec;
    if (fs::is_directory(path, ec)) {
      for (fs::recursive_directory_iterator it(path, ec), end; it != end;
           it.increment(ec)) {
        if (ec) break;
        if (it->is_regular_file() && has_lintable_extension(it->path())) {
          files.push_back(relative_slashes(it->path(), root));
        }
      }
    } else if (fs::is_regular_file(path, ec)) {
      files.push_back(relative_slashes(path, root));
    } else {
      std::cerr << "gwlint: no such file or directory: " << input << "\n";
      return 2;
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  std::vector<gw::lint::Diagnostic> diagnostics;
  for (const auto& file : files) {
    std::ifstream stream(root / file);
    if (!stream) {
      std::cerr << "gwlint: cannot read " << file << "\n";
      return 2;
    }
    std::stringstream content;
    content << stream.rdbuf();
    auto file_diagnostics = gw::lint::lint_file(file, content.str(), config);
    diagnostics.insert(diagnostics.end(), file_diagnostics.begin(),
                       file_diagnostics.end());
  }
  gw::lint::sort_diagnostics(diagnostics);

  for (const auto& diagnostic : diagnostics) {
    std::cout << gw::lint::format_diagnostic(diagnostic) << "\n";
  }
  if (!diagnostics.empty()) {
    std::cout << "gwlint: " << diagnostics.size() << " diagnostic(s) in "
              << files.size() << " file(s)\n";
    return 1;
  }
  std::cout << "gwlint: " << files.size() << " file(s) clean\n";
  return 0;
}
