// gwlint CLI — deterministic lint over the repo tree.
//
//   gwlint [--root DIR] [--config FILE] [--list-rules]
//          [--format=text|json] [--baseline FILE] [--write-baseline]
//          [path...]
//
// Paths are repo-relative files or directories (directories are walked
// recursively for *.h / *.cpp, in sorted order). Default: src. The
// semantic passes (GW006-GW008) read docs/OBSERVABILITY.md from the root
// when present. Exit code is 1 when any fresh diagnostic or stale baseline
// entry is emitted, 2 on usage/config errors. Output is file:line-sorted
// and byte-stable across runs and machines — the same contract the exports
// it protects are held to; check.sh byte-diffs two --format=json runs to
// prove it.
//
// --baseline FILE suppresses the exact findings listed in FILE (one
// formatted diagnostic per line, '#' comments allowed) and *fails* on
// entries that no longer fire, so the baseline can only shrink.
// --write-baseline rewrites FILE with the current findings.
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "lint.h"

namespace {

namespace fs = std::filesystem;

bool has_lintable_extension(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".h" || ext == ".cpp";
}

// Repo-relative path with forward slashes.
std::string relative_slashes(const fs::path& path, const fs::path& root) {
  std::string rel = fs::relative(path, root).generic_string();
  return rel;
}

bool read_file(const fs::path& path, std::string* out) {
  std::ifstream stream(path);
  if (!stream) return false;
  std::stringstream buffer;
  buffer << stream.rdbuf();
  *out = buffer.str();
  return true;
}

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--root DIR] [--config FILE] [--list-rules]"
            << " [--format=text|json] [--baseline FILE] [--write-baseline]"
            << " [path...]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = fs::current_path();
  std::string config_path;
  std::string baseline_path;
  std::string format = "text";
  std::vector<std::string> inputs;
  bool list_rules = false;
  bool write_baseline = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--config" && i + 1 < argc) {
      config_path = argv[++i];
    } else if (arg == "--baseline" && i + 1 < argc) {
      baseline_path = argv[++i];
    } else if (arg == "--write-baseline") {
      write_baseline = true;
    } else if (arg.rfind("--format=", 0) == 0) {
      format = arg.substr(9);
      if (format != "text" && format != "json") return usage(argv[0]);
    } else if (arg == "--list-rules") {
      list_rules = true;
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      return usage(argv[0]);
    } else {
      inputs.push_back(arg);
    }
  }
  if (write_baseline && baseline_path.empty()) {
    std::cerr << "gwlint: --write-baseline requires --baseline FILE\n";
    return 2;
  }

  if (list_rules) {
    for (const auto& rule : gw::lint::rule_catalog()) {
      std::cout << rule.id << "  " << rule.name << "\n    " << rule.summary
                << "\n";
    }
    return 0;
  }

  root = fs::absolute(root);
  if (config_path.empty()) {
    config_path = (root / "tools/gwlint/layers.toml").string();
  } else if (fs::path(config_path).is_relative()) {
    config_path = (root / config_path).string();
  }

  std::string config_text;
  if (!read_file(config_path, &config_text)) {
    std::cerr << "gwlint: cannot open config " << config_path << "\n";
    return 2;
  }
  const gw::lint::Config config = gw::lint::parse_config(config_text);
  if (!config.error.empty()) {
    std::cerr << "gwlint: bad config " << config_path << ": " << config.error
              << "\n";
    return 2;
  }

  if (inputs.empty()) inputs.push_back("src");

  // Expand inputs to a sorted, de-duplicated file list.
  std::vector<std::string> paths;
  for (const auto& input : inputs) {
    const fs::path path =
        fs::path(input).is_absolute() ? fs::path(input) : root / input;
    std::error_code ec;
    if (fs::is_directory(path, ec)) {
      for (fs::recursive_directory_iterator it(path, ec), end; it != end;
           it.increment(ec)) {
        if (ec) break;
        if (it->is_regular_file() && has_lintable_extension(it->path())) {
          paths.push_back(relative_slashes(it->path(), root));
        }
      }
    } else if (fs::is_regular_file(path, ec)) {
      paths.push_back(relative_slashes(path, root));
    } else {
      std::cerr << "gwlint: no such file or directory: " << input << "\n";
      return 2;
    }
  }
  std::sort(paths.begin(), paths.end());
  paths.erase(std::unique(paths.begin(), paths.end()), paths.end());

  std::vector<gw::lint::SourceFile> files;
  files.reserve(paths.size());
  for (const auto& file : paths) {
    gw::lint::SourceFile source;
    source.path = file;
    if (!read_file(root / file, &source.content)) {
      std::cerr << "gwlint: cannot read " << file << "\n";
      return 2;
    }
    files.push_back(std::move(source));
  }

  // The observability doc is the GW007 contract; absent doc, absent check.
  const std::string obs_doc_path = "docs/OBSERVABILITY.md";
  std::string obs_doc;
  read_file(root / obs_doc_path, &obs_doc);

  std::vector<gw::lint::Diagnostic> diagnostics =
      gw::lint::lint_repo(files, obs_doc_path, obs_doc, config);

  if (write_baseline) {
    const fs::path out_path = fs::path(baseline_path).is_relative()
                                  ? root / baseline_path
                                  : fs::path(baseline_path);
    std::ofstream out(out_path);
    if (!out) {
      std::cerr << "gwlint: cannot write baseline " << baseline_path << "\n";
      return 2;
    }
    for (const auto& diagnostic : diagnostics) {
      out << gw::lint::format_diagnostic(diagnostic) << "\n";
    }
    std::cout << "gwlint: wrote " << diagnostics.size()
              << " baseline entr" << (diagnostics.size() == 1 ? "y" : "ies")
              << " to " << baseline_path << "\n";
    return 0;
  }

  gw::lint::BaselineResult result;
  if (!baseline_path.empty()) {
    const fs::path in_path = fs::path(baseline_path).is_relative()
                                 ? root / baseline_path
                                 : fs::path(baseline_path);
    std::string baseline_text;
    if (!read_file(in_path, &baseline_text)) {
      std::cerr << "gwlint: cannot read baseline " << baseline_path << "\n";
      return 2;
    }
    result = gw::lint::apply_baseline(std::move(diagnostics),
                                      gw::lint::parse_baseline(baseline_text));
  } else {
    result.fresh = std::move(diagnostics);
  }

  if (format == "json") {
    std::cout << gw::lint::format_json(result);
    return result.fresh.empty() && result.stale.empty() ? 0 : 1;
  }

  for (const auto& diagnostic : result.fresh) {
    std::cout << gw::lint::format_diagnostic(diagnostic) << "\n";
  }
  for (const auto& entry : result.stale) {
    std::cout << "gwlint: stale baseline entry (no longer fires; prune it): "
              << entry << "\n";
  }
  if (!result.fresh.empty() || !result.stale.empty()) {
    std::cout << "gwlint: " << result.fresh.size() << " diagnostic(s), "
              << result.stale.size() << " stale baseline entr"
              << (result.stale.size() == 1 ? "y" : "ies") << " in "
              << files.size() << " file(s)\n";
    return 1;
  }
  std::cout << "gwlint: " << files.size() << " file(s) clean";
  if (result.suppressed != 0) {
    std::cout << " (" << result.suppressed << " baselined)";
  }
  std::cout << "\n";
  return 0;
}
