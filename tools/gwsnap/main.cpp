// gwsnap — inspect and compare GWSNAP fleet snapshots (docs/SNAPSHOT.md).
//
//   gwsnap info <file>            section table + whole-world fingerprint
//   gwsnap diff <file-a> <file-b> per-section CRC comparison
//
// `info` prints one row per section (name, payload bytes, CRC-32) plus the
// container fingerprint — the value the golden-state regression test pins.
// `diff` reports which sections differ between two snapshots, so a drifted
// golden fingerprint turns into a subsystem name instead of a blind hash
// mismatch. Exit status: 0 clean, 1 snapshots differ, 2 usage/read error.
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "snapshot/error.h"
#include "snapshot/state_writer.h"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: gwsnap info <file>\n"
               "       gwsnap diff <file-a> <file-b>\n");
  return 2;
}

bool read_file(const std::string& path, std::vector<std::uint8_t>& bytes) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "gwsnap: cannot open %s\n", path.c_str());
    return false;
  }
  bytes.assign(std::istreambuf_iterator<char>(in),
               std::istreambuf_iterator<char>());
  return true;
}

int info(const std::string& path) {
  std::vector<std::uint8_t> bytes;
  if (!read_file(path, bytes)) return 2;
  try {
    const gw::snapshot::StateReader reader(bytes);
    std::printf("%s: %zu bytes, %zu sections\n", path.c_str(), bytes.size(),
                reader.sections().size());
    std::printf("  %-28s %12s  %s\n", "section", "bytes", "crc32");
    for (const auto& section : reader.sections()) {
      std::printf("  %-28s %12zu  %08x\n", section.name.c_str(),
                  section.payload.size(), section.crc);
    }
    std::printf("  fingerprint %08x\n", reader.fingerprint());
    return 0;
  } catch (const gw::snapshot::SnapshotError& error) {
    std::fprintf(stderr, "gwsnap: %s: %s\n", path.c_str(), error.what());
    return 2;
  }
}

int diff(const std::string& path_a, const std::string& path_b) {
  std::vector<std::uint8_t> bytes_a;
  std::vector<std::uint8_t> bytes_b;
  if (!read_file(path_a, bytes_a) || !read_file(path_b, bytes_b)) return 2;
  try {
    const gw::snapshot::StateReader reader_a(bytes_a);
    const gw::snapshot::StateReader reader_b(bytes_b);
    std::map<std::string, std::uint32_t> crcs_a;
    std::map<std::string, std::uint32_t> crcs_b;
    for (const auto& section : reader_a.sections()) {
      crcs_a[section.name] = section.crc;
    }
    for (const auto& section : reader_b.sections()) {
      crcs_b[section.name] = section.crc;
    }
    int differences = 0;
    for (const auto& [name, crc] : crcs_a) {
      const auto other = crcs_b.find(name);
      if (other == crcs_b.end()) {
        std::printf("only in %s: %s\n", path_a.c_str(), name.c_str());
        ++differences;
      } else if (other->second != crc) {
        std::printf("section differs: %s (%08x vs %08x)\n", name.c_str(),
                    crc, other->second);
        ++differences;
      }
    }
    for (const auto& [name, crc] : crcs_b) {
      if (crcs_a.find(name) == crcs_a.end()) {
        std::printf("only in %s: %s\n", path_b.c_str(), name.c_str());
        ++differences;
      }
    }
    if (differences == 0) {
      std::printf("snapshots identical (fingerprint %08x)\n",
                  reader_a.fingerprint());
      return 0;
    }
    std::printf("%d section(s) differ (fingerprints %08x vs %08x)\n",
                differences, reader_a.fingerprint(), reader_b.fingerprint());
    return 1;
  } catch (const gw::snapshot::SnapshotError& error) {
    std::fprintf(stderr, "gwsnap: %s\n", error.what());
    return 2;
  }
}

}  // namespace

int main(int argc, char** argv) {
  const std::string command = argc > 1 ? argv[1] : "";
  if (command == "info" && argc == 3) return info(argv[2]);
  if (command == "diff" && argc == 4) return diff(argv[2], argv[3]);
  return usage();
}
