// GWSNAP container + archive contract tests (docs/SNAPSHOT.md).
//
// The format's promise is that *no* damaged or mismatched byte stream is
// ever half-restored: wrong magic, wrong version, truncation at any length,
// any single flipped byte, duplicate or missing sections, and persist()
// routines that under- or over-read their section all surface as a typed
// SnapshotError. The corruption cases are property sweeps — every prefix
// length and every byte offset of a real container — not hand-picked
// examples.
#include <gtest/gtest.h>

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "sim/time.h"
#include "snapshot/archive.h"
#include "snapshot/error.h"
#include "snapshot/state_writer.h"
#include "util/rng.h"

namespace gw::snapshot {
namespace {

enum class Color : int { kRed = 1, kBlue = 7 };

struct Point {
  std::int64_t x = 0;
  std::int64_t y = 0;

  bool operator==(const Point&) const = default;

  template <class Archive>
  void persist(Archive& ar) {
    ar.value(x);
    ar.value(y);
  }
};

std::vector<std::uint8_t> sample_container() {
  StateWriter writer;
  Saver alpha;
  alpha.value(std::uint64_t{42});
  alpha.value(std::string("hello"));
  writer.section("alpha", alpha.take());
  Saver beta;
  beta.value(3.25);
  beta.value(true);
  writer.section("beta", beta.take());
  Saver gamma;  // a zero-length payload is legal
  writer.section("gamma", gamma.take());
  return writer.finish();
}

SnapshotErrc code_of(const std::vector<std::uint8_t>& bytes) {
  try {
    const StateReader reader(bytes);
  } catch (const SnapshotError& error) {
    return error.code();
  }
  ADD_FAILURE() << "StateReader accepted a damaged stream";
  return SnapshotErrc::kBadMagic;
}

TEST(StateWriterTest, RoundTripsSections) {
  const auto bytes = sample_container();
  const StateReader reader(bytes);
  EXPECT_EQ(reader.version(), kFormatVersion);
  ASSERT_EQ(reader.sections().size(), 3u);
  EXPECT_EQ(reader.sections()[0].name, "alpha");
  EXPECT_EQ(reader.sections()[1].name, "beta");
  EXPECT_EQ(reader.sections()[2].name, "gamma");
  EXPECT_NE(reader.find("beta"), nullptr);
  EXPECT_EQ(reader.find("delta"), nullptr);

  Loader alpha = reader.open("alpha");
  std::uint64_t answer = 0;
  std::string greeting;
  alpha.value(answer);
  alpha.value(greeting);
  alpha.expect_end();
  EXPECT_EQ(answer, 42u);
  EXPECT_EQ(greeting, "hello");

  Loader beta = reader.open("beta");
  double scale = 0.0;
  bool flag = false;
  beta.value(scale);
  beta.value(flag);
  beta.expect_end();
  EXPECT_EQ(scale, 3.25);
  EXPECT_TRUE(flag);

  Loader gamma = reader.open("gamma");
  gamma.expect_end();
}

TEST(StateWriterTest, DuplicateSectionRefusedAtWriteTime) {
  StateWriter writer;
  writer.section("twice", {});
  try {
    writer.section("twice", {});
    FAIL() << "duplicate section accepted";
  } catch (const SnapshotError& error) {
    EXPECT_EQ(error.code(), SnapshotErrc::kDuplicateSection);
    EXPECT_EQ(error.section(), "twice");
  }
}

TEST(StateReaderTest, MissingSectionIsTyped) {
  const auto bytes = sample_container();
  const StateReader reader(bytes);
  try {
    (void)reader.open("nope");
    FAIL() << "open() found a section that is not there";
  } catch (const SnapshotError& error) {
    EXPECT_EQ(error.code(), SnapshotErrc::kMissingSection);
    EXPECT_EQ(error.section(), "nope");
  }
}

TEST(StateReaderTest, BadMagicRefused) {
  auto bytes = sample_container();
  bytes[0] ^= 0x01;
  EXPECT_EQ(code_of(bytes), SnapshotErrc::kBadMagic);
}

TEST(StateReaderTest, WrongVersionRefused) {
  auto bytes = sample_container();
  // The u16 version sits right after the 6-byte magic.
  bytes[6] += 1;
  EXPECT_EQ(code_of(bytes), SnapshotErrc::kBadVersion);
}

TEST(StateReaderTest, FlippedTrailerIsFileCrcMismatch) {
  auto bytes = sample_container();
  bytes.back() ^= 0x01;
  EXPECT_EQ(code_of(bytes), SnapshotErrc::kFileCrcMismatch);
}

// Property sweep: every truncation length of a real container must refuse.
TEST(StateReaderTest, TruncationAtEveryLengthThrows) {
  const auto bytes = sample_container();
  for (std::size_t length = 0; length < bytes.size(); ++length) {
    const std::vector<std::uint8_t> cut(bytes.begin(),
                                        bytes.begin() +
                                            std::ptrdiff_t(length));
    EXPECT_THROW({ const StateReader reader(cut); }, SnapshotError)
        << "accepted a stream truncated to " << length << " bytes";
  }
}

// Property sweep: every single flipped byte must be caught — the section
// CRCs cover payloads, the trailer CRC covers all framing.
TEST(StateReaderTest, EveryFlippedByteIsCaught) {
  const auto bytes = sample_container();
  for (std::size_t offset = 0; offset < bytes.size(); ++offset) {
    auto damaged = bytes;
    damaged[offset] ^= 0x01;
    EXPECT_THROW({ const StateReader reader(damaged); }, SnapshotError)
        << "accepted a stream with byte " << offset << " flipped";
  }
}

TEST(StateReaderTest, TrailingBytesAfterTrailerRefused) {
  auto bytes = sample_container();
  bytes.push_back(0);
  EXPECT_EQ(code_of(bytes), SnapshotErrc::kTrailingBytes);
}

TEST(StateReaderTest, FingerprintTracksSectionContent) {
  const auto bytes = sample_container();
  const std::uint32_t baseline = fingerprint(bytes);
  EXPECT_EQ(baseline, fingerprint(sample_container()));

  StateWriter writer;
  Saver alpha;
  alpha.value(std::uint64_t{43});  // one different payload word
  alpha.value(std::string("hello"));
  writer.section("alpha", alpha.take());
  Saver beta;
  beta.value(3.25);
  beta.value(true);
  writer.section("beta", beta.take());
  writer.section("gamma", {});
  EXPECT_NE(fingerprint(writer.finish()), baseline);
}

TEST(LoaderTest, UnderrunIsTyped) {
  StateWriter writer;
  Saver saver;
  saver.value(true);  // 1 byte
  writer.section("short", saver.take());
  const auto bytes = writer.finish();
  const StateReader reader(bytes);
  Loader loader = reader.open("short");
  std::uint64_t word = 0;
  try {
    loader.value(word);
    FAIL() << "read 8 bytes from a 1-byte section";
  } catch (const SnapshotError& error) {
    EXPECT_EQ(error.code(), SnapshotErrc::kSectionUnderrun);
  }
}

TEST(LoaderTest, LeftoverBytesAreTyped) {
  Saver saver;
  saver.value(std::uint64_t{1});
  saver.value(std::uint64_t{2});
  const auto payload = saver.take();
  Loader loader(payload);
  std::uint64_t first = 0;
  loader.value(first);
  EXPECT_EQ(loader.remaining(), 8u);
  try {
    loader.expect_end();
    FAIL() << "expect_end ignored leftover bytes";
  } catch (const SnapshotError& error) {
    EXPECT_EQ(error.code(), SnapshotErrc::kTrailingBytes);
  }
}

TEST(ArchiveTest, RoundTripsRepresentativeTypes) {
  Saver saver;
  saver.value(std::int64_t{-5});
  saver.value(std::uint32_t{77});
  saver.value(false);
  saver.value(Color::kBlue);
  saver.value(2.5);
  saver.value(std::string("station/base"));
  const std::vector<double> doubles{1.0, -2.0, 0.25};
  saver.value(doubles);
  const std::deque<std::int64_t> deque_in{9, 8, 7};
  saver.value(deque_in);
  const std::map<std::string, std::int64_t> map_in{{"a", 1}, {"b", 2}};
  saver.value(map_in);
  const std::optional<Point> present = Point{3, 4};
  const std::optional<Point> absent;
  saver.value(present);
  saver.value(absent);
  const std::pair<std::int64_t, double> pair_in{11, 0.5};
  saver.value(pair_in);
  const sim::Duration interval = sim::minutes(30);
  saver.value(interval);
  util::Rng rng{1234};
  (void)rng.uniform();
  saver.value(rng);

  const auto payload = saver.take();
  Loader loader(payload);
  std::int64_t negative = 0;
  std::uint32_t small = 0;
  bool flag = true;
  Color color = Color::kRed;
  double scale = 0.0;
  std::string name;
  std::vector<double> doubles_out;
  std::deque<std::int64_t> deque_out;
  std::map<std::string, std::int64_t> map_out;
  std::optional<Point> present_out;
  std::optional<Point> absent_out = Point{9, 9};
  std::pair<std::int64_t, double> pair_out{0, 0.0};
  sim::Duration interval_out{};
  util::Rng rng_out{1};
  loader.value(negative);
  loader.value(small);
  loader.value(flag);
  loader.value(color);
  loader.value(scale);
  loader.value(name);
  loader.value(doubles_out);
  loader.value(deque_out);
  loader.value(map_out);
  loader.value(present_out);
  loader.value(absent_out);
  loader.value(pair_out);
  loader.value(interval_out);
  loader.value(rng_out);
  loader.expect_end();

  EXPECT_EQ(negative, -5);
  EXPECT_EQ(small, 77u);
  EXPECT_FALSE(flag);
  EXPECT_EQ(color, Color::kBlue);
  EXPECT_EQ(scale, 2.5);
  EXPECT_EQ(name, "station/base");
  EXPECT_EQ(doubles_out, doubles);
  EXPECT_EQ(deque_out, deque_in);
  EXPECT_EQ(map_out, map_in);
  ASSERT_TRUE(present_out.has_value());
  EXPECT_EQ(*present_out, Point(3, 4));
  EXPECT_FALSE(absent_out.has_value());
  EXPECT_EQ(pair_out, pair_in);
  EXPECT_EQ(interval_out, interval);
  // The restored generator must continue the stream, not restart it.
  EXPECT_EQ(rng_out.uniform(), rng.uniform());
}

}  // namespace
}  // namespace gw::snapshot
