// FaultPlan spec grammar + FaultOracle composition semantics
// (docs/FAULTS.md). The oracle is pure — every query here is deterministic.
#include "fault/fault.h"

#include <gtest/gtest.h>

namespace gw::fault {
namespace {

TEST(FaultPlan, ParsesTheDocumentedExample) {
  const auto plan = FaultPlan::parse(
      "# wet-summer season\n"
      "gprs_outage  start=10d  duration=7d   severity=1.0\n"
      "server_down  start=40d  duration=36h\n"
      "\n"
      "dgps_no_fix  start=60d  duration=12h  severity=0.5\n");
  ASSERT_TRUE(plan.ok());
  const auto& windows = plan.value().windows();
  ASSERT_EQ(windows.size(), 3u);
  EXPECT_EQ(windows[0].kind, FaultKind::kGprsOutage);
  EXPECT_EQ(windows[0].start, sim::days(10));
  EXPECT_EQ(windows[0].duration, sim::days(7));
  EXPECT_DOUBLE_EQ(windows[0].severity, 1.0);
  EXPECT_EQ(windows[1].kind, FaultKind::kServerDown);
  EXPECT_EQ(windows[1].duration, sim::hours(36));
  EXPECT_DOUBLE_EQ(windows[1].severity, 1.0);  // defaulted
  EXPECT_EQ(windows[2].kind, FaultKind::kDgpsNoFix);
  EXPECT_DOUBLE_EQ(windows[2].severity, 0.5);
}

TEST(FaultPlan, AllKindsAndUnitsRoundTrip) {
  const auto plan = FaultPlan::parse(
      "gprs_outage      start=1d    duration=1d\n"
      "server_down      start=36h   duration=2h\n"
      "rtc_drift        start=90m   duration=30m\n"
      "cf_write_fail    start=45s   duration=15s\n"
      "dgps_no_fix      start=0.5d  duration=0.25d\n"
      "harvest_blackout start=0d    duration=10d severity=0.75\n");
  ASSERT_TRUE(plan.ok());
  const auto& windows = plan.value().windows();
  ASSERT_EQ(windows.size(), 6u);
  for (int i = 0; i < kFaultKindCount; ++i) {
    EXPECT_EQ(windows[std::size_t(i)].kind, FaultKind(i));
  }
  EXPECT_EQ(windows[2].start, sim::minutes(90));
  EXPECT_EQ(windows[3].duration, sim::seconds(15));
  EXPECT_EQ(windows[4].start, sim::hours(12));
}

TEST(FaultPlan, EmptySpecIsAnEmptyPlan) {
  const auto plan = FaultPlan::parse("  \n# only a comment\n\n");
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(plan.value().empty());
}

TEST(FaultPlan, ErrorsCarryTheLineNumber) {
  const auto plan = FaultPlan::parse(
      "gprs_outage start=1d duration=1d\n"
      "flux_capacitor start=1d duration=1d\n");
  ASSERT_FALSE(plan.ok());
  EXPECT_NE(plan.error().message.find("line 2"), std::string::npos);
  EXPECT_NE(plan.error().message.find("flux_capacitor"), std::string::npos);
}

TEST(FaultPlan, RejectsBadGrammar) {
  EXPECT_FALSE(FaultPlan::parse("gprs_outage start=1d").ok());  // no duration
  EXPECT_FALSE(FaultPlan::parse("gprs_outage duration=1d").ok());  // no start
  EXPECT_FALSE(FaultPlan::parse("gprs_outage start=1w duration=1d").ok());
  EXPECT_FALSE(FaultPlan::parse("gprs_outage start=1d duration=1d bogus").ok());
  EXPECT_FALSE(
      FaultPlan::parse("gprs_outage start=1d duration=1d color=red").ok());
  EXPECT_FALSE(
      FaultPlan::parse("gprs_outage start=-1d duration=1d").ok());
  EXPECT_FALSE(
      FaultPlan::parse("gprs_outage start=1d duration=1d severity=1.5").ok());
  EXPECT_FALSE(
      FaultPlan::parse("gprs_outage start=1d duration=1d severity=-0.1").ok());
}

TEST(FaultOracle, WindowsAreClosedOpen) {
  FaultPlan plan;
  plan.add(FaultWindow{FaultKind::kGprsOutage, sim::days(10), sim::days(7),
                       0.8});
  const auto origin = sim::at_midnight(2008, 7, 1);
  const FaultOracle oracle{plan, origin};
  EXPECT_DOUBLE_EQ(
      oracle.severity(FaultKind::kGprsOutage, origin + sim::days(10) -
                                                  sim::Duration{1}),
      0.0);
  EXPECT_DOUBLE_EQ(
      oracle.severity(FaultKind::kGprsOutage, origin + sim::days(10)), 0.8);
  EXPECT_DOUBLE_EQ(
      oracle.severity(FaultKind::kGprsOutage, origin + sim::days(17) -
                                                  sim::Duration{1}),
      0.8);
  EXPECT_DOUBLE_EQ(
      oracle.severity(FaultKind::kGprsOutage, origin + sim::days(17)), 0.0);
  // Other kinds never see the window.
  EXPECT_FALSE(oracle.active(FaultKind::kServerDown, origin + sim::days(12)));
}

TEST(FaultOracle, OverlappingWindowsTakeTheMaxSeverity) {
  FaultPlan plan;
  plan.add(FaultWindow{FaultKind::kDgpsNoFix, sim::days(0), sim::days(10),
                       0.3});
  plan.add(FaultWindow{FaultKind::kDgpsNoFix, sim::days(5), sim::days(2),
                       0.9});
  const auto origin = sim::at_midnight(2008, 7, 1);
  const FaultOracle oracle{plan, origin};
  EXPECT_DOUBLE_EQ(oracle.severity(FaultKind::kDgpsNoFix, origin + sim::days(1)),
                   0.3);
  EXPECT_DOUBLE_EQ(oracle.severity(FaultKind::kDgpsNoFix, origin + sim::days(6)),
                   0.9);
  EXPECT_DOUBLE_EQ(oracle.severity(FaultKind::kDgpsNoFix, origin + sim::days(8)),
                   0.3);
}

TEST(FaultOracle, HazardIsTheProbabilityUnion) {
  FaultPlan plan;
  plan.add(FaultWindow{FaultKind::kGprsOutage, sim::Duration{0}, sim::days(1),
                       0.5});
  const auto origin = sim::at_midnight(2008, 7, 1);
  const FaultOracle oracle{plan, origin};
  const auto inside = origin + sim::hours(1);
  // 1 - (1 - 0.2)(1 - 0.5) = 0.6
  EXPECT_DOUBLE_EQ(oracle.hazard(FaultKind::kGprsOutage, inside, 0.2), 0.6);
  // Outside the window the base hazard is untouched.
  EXPECT_DOUBLE_EQ(
      oracle.hazard(FaultKind::kGprsOutage, origin + sim::days(2), 0.2), 0.2);
  // Severity 1 would force the failure regardless of base.
  plan.add(FaultWindow{FaultKind::kGprsOutage, sim::Duration{0}, sim::days(1),
                       1.0});
  const FaultOracle hard{plan, origin};
  EXPECT_DOUBLE_EQ(hard.hazard(FaultKind::kGprsOutage, inside, 0.0), 1.0);
}

TEST(FaultOracle, SuccessScalesDownWithSeverity) {
  FaultPlan plan;
  plan.add(FaultWindow{FaultKind::kDgpsNoFix, sim::Duration{0}, sim::days(1),
                       0.75});
  const auto origin = sim::at_midnight(2008, 7, 1);
  const FaultOracle oracle{plan, origin};
  EXPECT_DOUBLE_EQ(
      oracle.success(FaultKind::kDgpsNoFix, origin + sim::hours(2), 0.8), 0.2);
  EXPECT_DOUBLE_EQ(
      oracle.success(FaultKind::kDgpsNoFix, origin + sim::days(3), 0.8), 0.8);
}

TEST(FaultOracle, RecordTripFeedsMetricsAndJournal) {
  FaultPlan plan;
  plan.add(FaultWindow{FaultKind::kCfWriteFail, sim::Duration{0}, sim::days(1),
                       0.4});
  const auto origin = sim::at_midnight(2008, 7, 1);
  FaultOracle oracle{plan, origin};
  obs::MetricsRegistry metrics;
  obs::EventJournal journal;
  oracle.set_hooks({&metrics, &journal});
  oracle.record_trip(FaultKind::kCfWriteFail, origin + sim::hours(3));
  oracle.record_trip(FaultKind::kCfWriteFail, origin + sim::hours(4));
  EXPECT_EQ(oracle.trips(FaultKind::kCfWriteFail), 2);
  EXPECT_EQ(oracle.trips(FaultKind::kGprsOutage), 0);
  EXPECT_EQ(metrics.counter("fault", "trips.cf_write_fail").value(), 2u);
  const auto events = journal.of_type(obs::EventType::kFaultTrip);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].component, "fault");
  EXPECT_DOUBLE_EQ(events[0].a, double(int(FaultKind::kCfWriteFail)));
  EXPECT_DOUBLE_EQ(events[0].b, 0.4);  // severity at trip time
}

TEST(FaultOracle, NamesRoundTripThroughParse) {
  for (int i = 0; i < kFaultKindCount; ++i) {
    const auto kind = FaultKind(i);
    const auto parsed = parse_fault_kind(to_string(kind));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value(), kind);
  }
  EXPECT_FALSE(parse_fault_kind("gremlins").ok());
}

}  // namespace
}  // namespace gw::fault
