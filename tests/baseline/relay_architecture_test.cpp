#include "baseline/relay_architecture.h"

#include <gtest/gtest.h>

namespace gw::baseline {
namespace {

struct Fixture {
  sim::Simulation simulation{sim::at_midnight(2009, 9, 1)};
  env::Environment environment{3};

  RelayConfig reliable_config() {
    RelayConfig config;
    config.ppp.dial_success = 1.0;
    config.gprs.registration_success = 1.0;
    config.gprs.drop_per_minute = 0.0;
    config.skew_stddev = sim::minutes(0.5);
    return config;
  }
};

TEST(RelayArchitecture, DeliversOnGoodDays) {
  Fixture f;
  RelayDeployment relay{f.simulation, f.environment, util::Rng{1},
                        f.reliable_config()};
  relay.run_days(10);
  EXPECT_EQ(relay.stats().days, 10);
  EXPECT_GE(relay.stats().days_delivered, 7);  // interference still bites
  EXPECT_GT(relay.stats().delivered_total.count(), 0);
}

TEST(RelayArchitecture, ExcessiveSkewMissesWindows) {
  Fixture f;
  RelayConfig config = f.reliable_config();
  config.skew_stddev = sim::hours(4);  // hopeless synchronisation
  RelayDeployment relay{f.simulation, f.environment, util::Rng{1}, config};
  relay.run_days(20);
  EXPECT_GT(relay.stats().days_window_missed, 5);
  EXPECT_LT(relay.stats().days_delivered, 15);
}

TEST(RelayArchitecture, DeadRelaySilencesEverything) {
  // §II: "if the reference station failed in any way then all
  // communication with the base station would also cease."
  Fixture f;
  RelayConfig config = f.reliable_config();
  config.relay_fails_on_day = 5;
  RelayDeployment relay{f.simulation, f.environment, util::Rng{1}, config};
  relay.run_days(15);
  EXPECT_EQ(relay.stats().days_relay_dead, 10);
  EXPECT_LE(relay.stats().days_delivered, 5);
}

TEST(RelayArchitecture, RelayPaysListenEnergyEvenOnMissedDays) {
  Fixture f;
  RelayConfig config = f.reliable_config();
  config.skew_stddev = sim::hours(10);  // essentially never aligned
  RelayDeployment relay{f.simulation, f.environment, util::Rng{1}, config};
  relay.run_days(5);
  // 2 h x 3.96 W x missed days of pure listening.
  EXPECT_GT(relay.relay_power().consumed_by("radio_modem").value(),
            4 * 2 * 3600 * 3.96 * 0.9);
}

TEST(RelayArchitecture, CommsEnergyExceedsDualGprsEquivalent) {
  // The §II/§III argument: same payload, direct GPRS from each station
  // costs less than half the relay scheme.
  Fixture f;
  RelayConfig config = f.reliable_config();
  RelayDeployment relay{f.simulation, f.environment, util::Rng{1}, config};
  relay.run_days(10);
  const double relay_joules = relay.comms_energy().value();

  // Dual-GPRS equivalent: each station sends its own payload directly.
  const double seconds_base =
      util::transfer_seconds(config.base_daily_payload,
                             config.gprs.rate) *
      config.gprs.protocol_overhead;
  const double seconds_ref =
      util::transfer_seconds(config.relay_daily_payload, config.gprs.rate) *
      config.gprs.protocol_overhead;
  const double registration = 2 * config.gprs.registration_time.to_seconds();
  const double dual_joules =
      10.0 * (seconds_base + seconds_ref + registration) *
      config.gprs.power.value();

  EXPECT_GT(relay_joules, 2.0 * dual_joules);  // "twofold power saving"
}

TEST(RelayArchitecture, Deterministic) {
  auto run_once = [] {
    sim::Simulation simulation{sim::at_midnight(2009, 9, 1)};
    env::Environment environment{3};
    RelayConfig config;
    RelayDeployment relay{simulation, environment, util::Rng{9}, config};
    relay.run_days(12);
    return std::tuple{relay.stats().days_delivered,
                      relay.comms_energy().value()};
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace gw::baseline
