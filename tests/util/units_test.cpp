#include "util/units.h"

#include <gtest/gtest.h>

namespace gw::util {
namespace {

using namespace gw::util::literals;

TEST(Units, SameTypeArithmetic) {
  EXPECT_DOUBLE_EQ((Volts{12.0} + Volts{0.5}).value(), 12.5);
  EXPECT_DOUBLE_EQ((Volts{12.0} - Volts{0.5}).value(), 11.5);
  EXPECT_DOUBLE_EQ((Volts{12.0} * 2.0).value(), 24.0);
  EXPECT_DOUBLE_EQ((2.0 * Volts{12.0}).value(), 24.0);
  EXPECT_DOUBLE_EQ((Volts{12.0} / 2.0).value(), 6.0);
  EXPECT_DOUBLE_EQ(Volts{12.0} / Volts{6.0}, 2.0);
}

TEST(Units, Comparison) {
  EXPECT_LT(Volts{11.5}, Volts{12.0});
  EXPECT_GE(Watts{3.6}, Watts{3.6});
  EXPECT_EQ(Amps{0.3}, Amps{0.3});
}

TEST(Units, CompoundAssignment) {
  Joules total{10.0};
  total += Joules{5.0};
  EXPECT_DOUBLE_EQ(total.value(), 15.0);
  total -= Joules{3.0};
  EXPECT_DOUBLE_EQ(total.value(), 12.0);
}

TEST(Units, OhmsLaw) {
  // Table 1 sanity: the dGPS draws 3.6 W, i.e. 300 mA at 12 V.
  const Amps current = Watts{3.6} / Volts{12.0};
  EXPECT_DOUBLE_EQ(current.value(), 0.3);
  EXPECT_DOUBLE_EQ((Volts{12.0} * Amps{0.3}).value(), 3.6);
  EXPECT_DOUBLE_EQ((Watts{3.6} / Amps{0.3}).value(), 12.0);
}

TEST(Units, IrDrop) {
  const Volts drop = Amps{0.3} * Ohms{0.25};
  EXPECT_DOUBLE_EQ(drop.value(), 0.075);
}

TEST(Units, EnergyAndCharge) {
  EXPECT_DOUBLE_EQ(energy(Watts{3.6}, 3600.0).value(), 12960.0);
  EXPECT_DOUBLE_EQ(charge(Amps{0.3}, 120.0).value(), 36.0);
  EXPECT_DOUBLE_EQ(to_watt_hours(Joules{3600.0}).value(), 1.0);
  EXPECT_DOUBLE_EQ(to_joules(WattHours{1.0}).value(), 3600.0);
  EXPECT_DOUBLE_EQ(to_joules(AmpHours{1.0}, Volts{12.0}).value(), 43200.0);
}

TEST(Units, PaperDepletionArithmetic) {
  // §III: continuous dGPS (3.6 W) depletes 36 Ah in 5 days.
  const Amps gps = Watts{3.6} / Volts{12.0};
  const double hours = AmpHours{36.0}.value() / gps.value();
  EXPECT_DOUBLE_EQ(hours / 24.0, 5.0);
}

TEST(Units, BytesBasics) {
  EXPECT_EQ((165_KiB).count(), 165 * 1024);
  EXPECT_EQ((1_MiB).count(), 1024 * 1024);
  EXPECT_DOUBLE_EQ((512_B).kib(), 0.5);
  EXPECT_EQ((100_B + 28_B).count(), 128);
  EXPECT_EQ((100_B - 28_B).count(), 72);
  Bytes accumulator{0};
  accumulator += 165_KiB;
  EXPECT_EQ(accumulator, 165_KiB);
}

TEST(Units, TransferSeconds) {
  // A 165 KiB dGPS file over 5000 bps GPRS takes ~270 s (§III numbers).
  const double s = transfer_seconds(165_KiB, 5000_bps);
  EXPECT_NEAR(s, 270.3, 0.1);
}

TEST(Units, Literals) {
  EXPECT_DOUBLE_EQ((900_mW).value(), 0.9);
  EXPECT_DOUBLE_EQ((12.5_V).value(), 12.5);
  EXPECT_DOUBLE_EQ((300_mA).value(), 0.3);
  EXPECT_DOUBLE_EQ((36_Ah).value(), 36.0);
  EXPECT_DOUBLE_EQ((5000_bps).value(), 5000.0);
}

}  // namespace
}  // namespace gw::util
