#include "util/ring_buffer.h"

#include <gtest/gtest.h>

namespace gw::util {
namespace {

TEST(RingBuffer, ZeroCapacityRejected) {
  EXPECT_THROW(RingBuffer<int>{0}, std::invalid_argument);
}

TEST(RingBuffer, PushAndSize) {
  RingBuffer<int> buffer{4};
  EXPECT_TRUE(buffer.empty());
  buffer.push(1);
  buffer.push(2);
  EXPECT_EQ(buffer.size(), 2u);
  EXPECT_FALSE(buffer.full());
}

TEST(RingBuffer, OldestFirstAccess) {
  RingBuffer<int> buffer{4};
  for (int i = 1; i <= 3; ++i) buffer.push(i);
  EXPECT_EQ(buffer.at(0), 1);
  EXPECT_EQ(buffer.at(1), 2);
  EXPECT_EQ(buffer.at(2), 3);
  EXPECT_THROW(buffer.at(3), std::out_of_range);
}

TEST(RingBuffer, OverwritesOldestWhenFull) {
  RingBuffer<int> buffer{3};
  for (int i = 1; i <= 5; ++i) buffer.push(i);
  EXPECT_TRUE(buffer.full());
  EXPECT_EQ(buffer.size(), 3u);
  EXPECT_EQ(buffer.at(0), 3);
  EXPECT_EQ(buffer.at(1), 4);
  EXPECT_EQ(buffer.at(2), 5);
}

TEST(RingBuffer, DrainReturnsOldestFirstAndClears) {
  RingBuffer<double> buffer{48};  // one day of 30-minute voltage samples
  for (int i = 0; i < 48; ++i) buffer.push(12.0 + 0.01 * i);
  const auto samples = buffer.drain();
  ASSERT_EQ(samples.size(), 48u);
  EXPECT_DOUBLE_EQ(samples.front(), 12.0);
  EXPECT_DOUBLE_EQ(samples.back(), 12.47);
  EXPECT_TRUE(buffer.empty());
}

TEST(RingBuffer, ClearEmulatesBrownOut) {
  RingBuffer<int> buffer{8};
  buffer.push(42);
  buffer.clear();
  EXPECT_TRUE(buffer.empty());
  buffer.push(7);
  EXPECT_EQ(buffer.at(0), 7);
}

TEST(RingBuffer, WrapAroundManyTimes) {
  RingBuffer<int> buffer{5};
  for (int i = 0; i < 1000; ++i) buffer.push(i);
  for (int k = 0; k < 5; ++k) EXPECT_EQ(buffer.at(std::size_t(k)), 995 + k);
}

}  // namespace
}  // namespace gw::util
